// Deterministic, fast PRNG (xoshiro256++) with the distributions the
// simulator and the statistics kernels need. std::mt19937 is avoided so that
// streams are reproducible across standard libraries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace explainit {

/// xoshiro256++ generator (Blackman & Vigna). Satisfies
/// UniformRandomBitGenerator so it can be used with <algorithm> shuffles.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the state via SplitMix64 so that nearby seeds give unrelated
  /// streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit value.
  uint64_t Next();
  result_type operator()() { return Next(); }

  /// Uniform double in [0, 1).
  double Uniform();
  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);
  /// Uniform integer in [0, n). n must be > 0.
  uint64_t UniformInt(uint64_t n);
  /// Standard normal via Box–Muller (cached second value).
  double Normal();
  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);
  /// Exponential with the given rate.
  double Exponential(double rate);
  /// Bernoulli trial.
  bool Bernoulli(double p);
  /// Poisson-distributed count (Knuth for small mean, normal approx above).
  int64_t Poisson(double mean);

  /// A fresh generator whose stream is independent of this one.
  Rng Fork();

  /// Fills `out` with i.i.d. standard normal values.
  void FillNormal(double* out, size_t n);

 private:
  uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Returns a shuffled copy of 0..n-1.
std::vector<size_t> RandomPermutation(size_t n, Rng& rng);

}  // namespace explainit
