#include "common/time_util.h"

#include <chrono>
#include <cstdio>
#include <ctime>

namespace explainit {

std::string FormatTimestamp(EpochSeconds t) {
  std::time_t tt = static_cast<std::time_t>(t);
  std::tm tm_utc;
  gmtime_r(&tt, &tm_utc);
  char buf[64];  // %04d can widen to 11 chars for out-of-range years
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min);
  return buf;
}

double MonotonicSeconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

int64_t MonotonicNanos() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

}  // namespace explainit
