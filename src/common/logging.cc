#include "common/logging.h"

#include <atomic>
#include <mutex>

namespace explainit {
namespace internal {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level));
}

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), file, line,
               msg.c_str());
}

void FatalMessage(const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "[FATAL %s:%d] %s\n", file, line, msg.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace explainit
