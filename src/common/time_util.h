// Time helpers. The whole system works on a minute-aligned epoch grid, as in
// the paper ("time series observations are taken every minute").
#pragma once

#include <cstdint>
#include <string>

namespace explainit {

/// Seconds since the Unix epoch.
using EpochSeconds = int64_t;

inline constexpr int64_t kSecondsPerMinute = 60;
inline constexpr int64_t kMinutesPerHour = 60;
inline constexpr int64_t kMinutesPerDay = 24 * 60;
inline constexpr int64_t kMinutesPerWeek = 7 * kMinutesPerDay;

/// A half-open time range [start, end) in epoch seconds. Mirrors Figure 2's
/// "total time range" and "range to explain".
struct TimeRange {
  EpochSeconds start = 0;
  EpochSeconds end = 0;

  bool Contains(EpochSeconds t) const { return t >= start && t < end; }
  int64_t DurationSeconds() const { return end - start; }
  int64_t NumMinutes() const { return DurationSeconds() / kSecondsPerMinute; }
  bool Overlaps(const TimeRange& other) const {
    return start < other.end && other.start < end;
  }
  bool operator==(const TimeRange& other) const = default;
};

/// Floors `t` to its minute boundary.
inline EpochSeconds AlignToMinute(EpochSeconds t) {
  return t - (t % kSecondsPerMinute + kSecondsPerMinute) % kSecondsPerMinute;
}

/// Renders epoch seconds as "YYYY-mm-dd HH:MM" (UTC).
std::string FormatTimestamp(EpochSeconds t);

/// Monotonic wall time in seconds, for measuring scorer runtimes (Fig. 10).
double MonotonicSeconds();

/// Monotonic wall time in nanoseconds — the per-stage scorer timers
/// (gram/factor/solve/predict) accumulate these.
int64_t MonotonicNanos();

}  // namespace explainit
