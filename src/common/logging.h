// Minimal logging and invariant-checking macros.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace explainit {
namespace internal {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg);

[[noreturn]] void FatalMessage(const char* file, int line,
                               const std::string& msg);

}  // namespace internal

#define EXPLAINIT_LOG_AT(level, msg_expr)                                  \
  do {                                                                     \
    if (static_cast<int>(level) >=                                         \
        static_cast<int>(::explainit::internal::GetLogLevel())) {          \
      std::ostringstream _oss;                                             \
      _oss << msg_expr;                                                    \
      ::explainit::internal::LogMessage(level, __FILE__, __LINE__,         \
                                        _oss.str());                       \
    }                                                                      \
  } while (0)

#define LOG_DEBUG(msg) \
  EXPLAINIT_LOG_AT(::explainit::internal::LogLevel::kDebug, msg)
#define LOG_INFO(msg) \
  EXPLAINIT_LOG_AT(::explainit::internal::LogLevel::kInfo, msg)
#define LOG_WARN(msg) \
  EXPLAINIT_LOG_AT(::explainit::internal::LogLevel::kWarn, msg)
#define LOG_ERROR(msg) \
  EXPLAINIT_LOG_AT(::explainit::internal::LogLevel::kError, msg)

/// CHECK aborts (in all build modes) when an invariant does not hold.
/// Reserved for programmer errors; recoverable conditions return Status.
#define EXPLAINIT_CHECK(cond, msg)                                      \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream _oss;                                          \
      _oss << "CHECK failed: " #cond ": " << msg;                       \
      ::explainit::internal::FatalMessage(__FILE__, __LINE__, _oss.str()); \
    }                                                                   \
  } while (0)

}  // namespace explainit
