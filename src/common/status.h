// Status: RocksDB/Arrow-style error handling for library code paths.
//
// Library functions that can fail return Status (or Result<T> for functions
// that produce a value). Exceptions are not used on library paths.
#pragma once

#include <string>
#include <string_view>
#include <utility>

namespace explainit {

/// Error categories used across the library.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kIOError = 8,
  kParseError = 9,
  kCancelled = 10,
  kDeadlineExceeded = 11,
  kUnavailable = 12,
};

/// Returns a short human-readable name for a status code ("InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// A Status captures whether an operation succeeded, and if not, which
/// category of error occurred plus a human-readable message.
///
/// Status is cheap to copy in the OK case (no allocation) and movable.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  /// Rebuilds a status from a transported (code, message) pair — the
  /// server protocol ships errors by code. Unknown codes map to kInternal
  /// so a corrupt code can never impersonate OK.
  static Status FromCode(int code, std::string msg) {
    if (code == static_cast<int>(StatusCode::kOk)) return OK();
    if (code < static_cast<int>(StatusCode::kInvalidArgument) ||
        code > static_cast<int>(StatusCode::kUnavailable)) {
      return Internal(std::move(msg));
    }
    return Status(static_cast<StatusCode>(code), std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const {
    return code_ == StatusCode::kAlreadyExists;
  }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK status to the caller.
#define EXPLAINIT_RETURN_IF_ERROR(expr)            \
  do {                                             \
    ::explainit::Status _st = (expr);              \
    if (!_st.ok()) return _st;                     \
  } while (0)

}  // namespace explainit
