// Small string helpers used by the SQL layer, the tsdb tag model, and the
// feature-family grouping (SPLIT/CONCAT/pattern matching in Appendix C).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace explainit {

/// Splits `s` on `sep`, keeping empty pieces ("a--b" on '-' -> {"a","","b"}).
std::vector<std::string> StrSplit(std::string_view s, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// ASCII lower/upper-casing (locale independent).
std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

/// Strips ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view s);

/// Glob match supporting '*' (any run, including empty) and '?' (one char).
/// Used for family patterns such as "disk{host=datanode*}".
bool GlobMatch(std::string_view pattern, std::string_view text);

/// Case-insensitive equality for SQL keywords and identifiers.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace explainit
