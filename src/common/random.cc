#include "common/random.h"

#include <cmath>
#include <numeric>

namespace explainit {

namespace {
inline uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  // All-zero state is invalid for xoshiro; SplitMix64 cannot produce four
  // zeros from any seed, but keep a belt-and-braces guard.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * Uniform();
}

uint64_t Rng::UniformInt(uint64_t n) {
  // Lemire's bounded generation with rejection for uniformity.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < n) {
    uint64_t t = -n % n;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::Exponential(double rate) {
  double u = 0.0;
  do {
    u = Uniform();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

int64_t Rng::Poisson(double mean) {
  if (mean <= 0) return 0;
  if (mean < 30.0) {
    const double l = std::exp(-mean);
    int64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= Uniform();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation for large means.
  const double v = Normal(mean, std::sqrt(mean));
  return v < 0 ? 0 : static_cast<int64_t>(v + 0.5);
}

Rng Rng::Fork() { return Rng(Next()); }

void Rng::FillNormal(double* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = Normal();
}

std::vector<size_t> RandomPermutation(size_t n, Rng& rng) {
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), size_t{0});
  for (size_t i = n; i > 1; --i) {
    const size_t j = rng.UniformInt(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace explainit
