// Result<T>: value-or-Status, the return type for fallible producers.
#pragma once

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace explainit {

/// Result<T> holds either a value of type T or a non-OK Status.
///
/// Usage:
///   Result<Table> r = ParseCsv(path);
///   if (!r.ok()) return r.status();
///   Table t = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value (implicit by design, mirroring
  /// absl::StatusOr, so `return value;` works).
  Result(T value) : var_(std::move(value)) {}
  /// Constructs a Result holding an error. `status` must not be OK.
  Result(Status status) : var_(std::move(status)) {
    assert(!std::get<Status>(var_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(var_); }

  /// Returns the error (OK if a value is held).
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(var_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(var_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(var_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(var_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> var_;
};

/// Assigns the value of a Result expression to `lhs` or propagates the error.
#define EXPLAINIT_ASSIGN_OR_RETURN(lhs, expr)      \
  auto EXPLAINIT_CONCAT_(_res_, __LINE__) = (expr);            \
  if (!EXPLAINIT_CONCAT_(_res_, __LINE__).ok())                \
    return EXPLAINIT_CONCAT_(_res_, __LINE__).status();        \
  lhs = std::move(EXPLAINIT_CONCAT_(_res_, __LINE__)).value()

#define EXPLAINIT_CONCAT_IMPL_(a, b) a##b
#define EXPLAINIT_CONCAT_(a, b) EXPLAINIT_CONCAT_IMPL_(a, b)

}  // namespace explainit
