// Persisted score-table history for standing EXPLAIN queries: every run
// of a monitor appends its Score Table rows, stamped with the run index
// and the window's as-of timestamp, into one growing relational table.
// The table registers in the engine catalog under the monitor's INTO
// name, so ordinary SELECTs can diff rankings across runs (TSEXPLAIN's
// evolving-contributors view).
#pragma once

#include <cstdint>
#include <mutex>

#include "common/time_util.h"
#include "core/ranking.h"
#include "table/table.h"

namespace explainit::monitor {

/// Append-only, mutex-guarded history of one monitor's Score Tables.
/// Schema:
///   (run: INT64, run_ts: TIMESTAMP, rank: INT64, family: STRING,
///    score: DOUBLE, num_features: INT64, best_lambda: DOUBLE,
///    score_seconds: DOUBLE)
/// run_ts is the run's window end (the "as of" data time), so a self-join
/// on family across consecutive run values diffs the rankings.
class ScoreHistory {
 public:
  ScoreHistory();

  /// Appends one run's rows. `run` is the monitor's 0-based run index;
  /// `run_ts` the window's inclusive end in data time.
  void Append(int64_t run, EpochSeconds run_ts, const core::ScoreTable& st);

  /// Copy of the whole history (the catalog provider's body).
  table::Table Snapshot() const;

  size_t num_runs() const;
  size_t num_rows() const;

 private:
  mutable std::mutex mutex_;
  table::Table table_;
  size_t runs_ = 0;
};

}  // namespace explainit::monitor
