#include "monitor/anomaly.h"

#include <cmath>
#include <functional>

namespace explainit::monitor {

EwmaAnomalyDetector::EwmaAnomalyDetector(AnomalyOptions options)
    : options_(options) {}

EwmaAnomalyDetector::Shard& EwmaAnomalyDetector::ShardFor(
    const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % kShards];
}

double EwmaAnomalyDetector::Observe(const std::string& series_key,
                                    double value) {
  Shard& shard = ShardFor(series_key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  State& s = shard.states[series_key];
  double z = 0.0;
  if (s.count == 0) {
    s.mean = value;
  } else if (s.count >= options_.warmup_points) {
    // Score against the pre-update state: a genuine level shift should
    // not dampen its own z-score.
    const double sd = std::sqrt(s.var);
    if (sd > 0.0) {
      z = std::fabs(value - s.mean) / sd;
    } else if (value != s.mean) {
      // A constant series that suddenly moves is maximally anomalous.
      z = options_.z_threshold;
    }
  }
  // EWMA mean/variance update (West 1979 incremental form).
  const double diff = value - s.mean;
  const double incr = options_.alpha * diff;
  s.mean += incr;
  s.var = (1.0 - options_.alpha) * (s.var + diff * incr);
  ++s.count;
  return z;
}

size_t EwmaAnomalyDetector::num_series() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.states.size();
  }
  return total;
}

}  // namespace explainit::monitor
