// Online per-series anomaly detection for the continuous-monitoring
// subsystem: an exponentially-weighted mean/variance per series with a
// z-score threshold, in the netdata style of scoring every metric on
// every sample. O(1) state and time per observation, so the store's
// write tap can call it on the ingest path.
#pragma once

#include <array>
#include <cstddef>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/time_util.h"

namespace explainit::monitor {

struct AnomalyOptions {
  /// EWMA weight for the running mean/variance (higher = faster to
  /// adapt, quicker to forgive a level shift).
  double alpha = 0.05;
  /// |z| at or above which an observation is anomalous.
  double z_threshold = 6.0;
  /// Observations per series before it may trigger (the EWMA needs a
  /// baseline; during warmup Observe returns 0).
  size_t warmup_points = 32;
};

/// Tracks every observed series independently and scores each new point
/// against the series' running EWMA mean/variance. Thread-safe: state is
/// sharded by series key so concurrent writers on different series
/// rarely contend.
class EwmaAnomalyDetector {
 public:
  explicit EwmaAnomalyDetector(AnomalyOptions options = {});

  /// Folds one observation into the series' state and returns its |z|
  /// score against the state *before* the update (0 during warmup).
  double Observe(const std::string& series_key, double value);

  bool IsAnomalous(double z) const { return z >= options_.z_threshold; }

  const AnomalyOptions& options() const { return options_; }
  size_t num_series() const;

 private:
  struct State {
    double mean = 0.0;
    double var = 0.0;
    size_t count = 0;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, State> states;
  };
  static constexpr size_t kShards = 8;

  Shard& ShardFor(const std::string& key);

  AnomalyOptions options_;
  std::array<Shard, kShards> shards_;
};

}  // namespace explainit::monitor
