// The standing query's shared, incrementally-maintained window scan.
//
// A monitor's target / GIVEN / USING sub-selects all reference the same
// store-backed table; one-shot EXPLAIN scans it once per sub-select. A
// SharedWindowScan instead materialises the current window once per run
// (multi-consumer: every sub-select reads the same materialisation
// through a catalog provider overlay), and carries the per-series point
// vectors across window slides — only the delta interval beyond what is
// already cached is decoded from the store; the overlap is spliced.
//
// Correctness contract (documented, asserted by the parity bench): the
// splice is exact under *store-monotone arrival* — every new write's
// data timestamp is >= the highest timestamp the cache has seen (the
// collector-tick model; the simulator's StreamTo streams time-major).
// The delta scan starts at min(previous window end, cached high-water),
// so a window that ran ahead of the ingest frontier is re-fetched from
// the frontier, and per-series dedupe keeps re-fetched points unique. A
// series appearing for the first time inside the delta forces one full
// rescan (its older in-window points were never decoded).
//
// The materialised table is byte-identical to SeriesStore::ScanToTable
// over the same window: same series order (store creation order), same
// per-series point order, same cell construction.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/time_util.h"
#include "table/table.h"
#include "tsdb/store.h"

namespace explainit::monitor {

struct SharedScanStats {
  size_t store_scans = 0;   // Scan() calls issued to the store
  size_t full_scans = 0;    // windows materialised from scratch
  size_t delta_scans = 0;   // windows spliced from cache + delta
  size_t rows_reused = 0;   // cached points carried across slides
  size_t rows_delta = 0;    // points decoded from delta scans
  size_t consumer_reads = 0;  // Get() calls served from one window
};

/// One monitor's cached scan over a store table. Not tied to a catalog
/// name: the monitor overlays it as a (non-hinted) provider, so the
/// planner keeps every WHERE conjunct in residual filters and the cache
/// only has to reproduce the raw window contents.
class SharedWindowScan {
 public:
  /// `store` is borrowed and must outlive this object (the owning
  /// monitor service already requires the engine to outlive it).
  SharedWindowScan(tsdb::SeriesStore* store, std::string metric_glob = "*");

  /// Positions the cache on the half-open window [window.start,
  /// window.end): first call scans fully; subsequent forward slides
  /// splice the overlap and scan only the delta.
  Status SetWindow(const TimeRange& window);

  /// The materialised window table (schema: timestamp, metric_name, tag,
  /// value). Built lazily once per window; every consumer gets a copy of
  /// the same materialisation. Thread-safe.
  Result<table::Table> Get();

  const TimeRange& window() const { return window_; }
  SharedScanStats stats() const;

 private:
  Status RefreshFull(const TimeRange& window);
  Status RefreshDelta(const TimeRange& window);
  void ReindexAndRecount();

  tsdb::SeriesStore* store_;
  std::string metric_glob_;

  mutable std::mutex mutex_;
  TimeRange window_{0, 0};
  bool have_cache_ = false;
  /// Highest timestamp the cache has observed (across full + delta
  /// scans) — the monotone-arrival frontier.
  EpochSeconds frontier_ = 0;
  /// Per-series cached points within the current window, in store
  /// creation order. Series whose points all slid out stay (empty) so
  /// their cache slot and order survive; empty series are skipped when
  /// materialising, matching a fresh store scan.
  std::vector<tsdb::SeriesData> series_;
  std::unordered_map<std::string, size_t> index_;  // series key -> slot
  std::optional<table::Table> table_;              // lazy materialisation
  SharedScanStats stats_;
};

}  // namespace explainit::monitor
