#include "monitor/shared_scan.h"

#include <algorithm>
#include <limits>

namespace explainit::monitor {

namespace {

std::string SeriesKey(const tsdb::SeriesMeta& meta) { return meta.ToString(); }

/// Replicates SeriesStore::ScanToTable's no-projection materialisation
/// exactly (column order, cell construction, series-major row order) so
/// the cached window is byte-identical to a fresh store scan.
table::Table MaterialiseWindow(const std::vector<tsdb::SeriesData>& series) {
  size_t total = 0;
  for (const tsdb::SeriesData& s : series) total += s.timestamps.size();

  table::Schema schema;
  schema.AddField({"timestamp", table::DataType::kTimestamp});
  schema.AddField({"metric_name", table::DataType::kString});
  schema.AddField({"tag", table::DataType::kMap});
  schema.AddField({"value", table::DataType::kDouble});

  std::vector<std::vector<table::Value>> columns(4);
  for (auto& col : columns) col.reserve(total);

  for (const tsdb::SeriesData& s : series) {
    const size_t n = s.timestamps.size();
    if (n == 0) continue;  // fresh scans omit point-less series
    for (size_t i = 0; i < n; ++i) {
      columns[0].push_back(table::Value::Timestamp(s.timestamps[i]));
    }
    const table::Value name = table::Value::String(s.meta.metric_name);
    columns[1].insert(columns[1].end(), n, name);
    columns[2].insert(columns[2].end(), n, s.tags_value);
    for (size_t i = 0; i < n; ++i) {
      columns[3].push_back(table::Value::Double(s.values[i]));
    }
  }
  auto result = table::Table::FromColumns(std::move(schema),
                                          std::move(columns));
  // FromColumns only fails on column-count/length mismatches, which the
  // construction above rules out.
  return std::move(result).value();
}

}  // namespace

SharedWindowScan::SharedWindowScan(tsdb::SeriesStore* store,
                                   std::string metric_glob)
    : store_(store), metric_glob_(std::move(metric_glob)) {}

Status SharedWindowScan::SetWindow(const TimeRange& window) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (window.end < window.start) {
    return Status::InvalidArgument("shared scan window is inverted");
  }
  const bool forward_overlap =
      have_cache_ && window.start >= window_.start &&
      window.end >= window_.end && window.start < window_.end;
  if (forward_overlap) return RefreshDelta(window);
  return RefreshFull(window);
}

Status SharedWindowScan::RefreshFull(const TimeRange& window) {
  tsdb::ScanRequest req;
  req.metric_glob = metric_glob_;
  req.range = window;
  EXPLAINIT_ASSIGN_OR_RETURN(series_, store_->Scan(req));
  ++stats_.store_scans;
  ++stats_.full_scans;
  ReindexAndRecount();
  window_ = window;
  have_cache_ = true;
  table_.reset();
  return Status::OK();
}

void SharedWindowScan::ReindexAndRecount() {
  index_.clear();
  frontier_ = std::numeric_limits<EpochSeconds>::min();
  for (size_t i = 0; i < series_.size(); ++i) {
    index_[SeriesKey(series_[i].meta)] = i;
    if (!series_[i].timestamps.empty()) {
      frontier_ = std::max(frontier_, series_[i].timestamps.back());
    }
  }
}

Status SharedWindowScan::RefreshDelta(const TimeRange& window) {
  // Trim points that slid out of the new window's front.
  size_t reused = 0;
  for (tsdb::SeriesData& s : series_) {
    size_t drop = 0;
    while (drop < s.timestamps.size() && s.timestamps[drop] < window.start) {
      ++drop;
    }
    if (drop > 0) {
      s.timestamps.erase(s.timestamps.begin(),
                         s.timestamps.begin() + static_cast<long>(drop));
      s.values.erase(s.values.begin(),
                     s.values.begin() + static_cast<long>(drop));
    }
    reused += s.timestamps.size();
  }

  // Delta interval: everything past what the cache is guaranteed to hold.
  // A window that outran the ingest frontier re-fetches from the
  // frontier; per-series dedupe below keeps re-fetched points unique.
  EpochSeconds delta_lo = window_.end;
  if (frontier_ != std::numeric_limits<EpochSeconds>::min()) {
    delta_lo = std::min(delta_lo, frontier_);
  } else {
    delta_lo = window_.start;  // cache never saw a point
  }
  delta_lo = std::max(delta_lo, window.start);

  size_t appended = 0;
  if (delta_lo < window.end) {
    tsdb::ScanRequest req;
    req.metric_glob = metric_glob_;
    req.range = TimeRange{delta_lo, window.end};
    EXPLAINIT_ASSIGN_OR_RETURN(auto delta, store_->Scan(req));
    ++stats_.store_scans;
    for (tsdb::SeriesData& d : delta) {
      auto it = index_.find(SeriesKey(d.meta));
      if (it == index_.end()) {
        // First sighting of this series: its points older than delta_lo
        // (but inside the window) were never decoded — fall back to one
        // full rescan, which also restores store creation order.
        return RefreshFull(window);
      }
      tsdb::SeriesData& s = series_[it->second];
      const EpochSeconds last = s.timestamps.empty()
                                    ? std::numeric_limits<EpochSeconds>::min()
                                    : s.timestamps.back();
      for (size_t i = 0; i < d.timestamps.size(); ++i) {
        if (d.timestamps[i] <= last) continue;  // re-fetched overlap
        s.timestamps.push_back(d.timestamps[i]);
        s.values.push_back(d.values[i]);
        ++appended;
        frontier_ = frontier_ == std::numeric_limits<EpochSeconds>::min()
                        ? d.timestamps[i]
                        : std::max(frontier_, d.timestamps[i]);
      }
    }
  }

  ++stats_.delta_scans;
  stats_.rows_reused += reused;
  stats_.rows_delta += appended;
  window_ = window;
  table_.reset();
  return Status::OK();
}

Result<table::Table> SharedWindowScan::Get() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!have_cache_) {
    return Status::FailedPrecondition(
        "shared scan read before SetWindow positioned it");
  }
  if (!table_.has_value()) table_ = MaterialiseWindow(series_);
  ++stats_.consumer_reads;
  return *table_;
}

SharedScanStats SharedWindowScan::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace explainit::monitor
