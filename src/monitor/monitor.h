// The continuous-monitoring subsystem: standing EXPLAIN queries.
//
// `EXPLAIN ... EVERY 30s [TRIGGERED] INTO history` registers a monitor
// instead of running once. A MonitorService owns the registered
// monitors, schedules their runs on the shared worker pool with per-run
// CancelToken deadlines, slides each monitor's BETWEEN window
// incrementally (the target/GIVEN/USING sub-selects share one
// multi-consumer SharedWindowScan, with the window's point vectors
// carried across slides), appends every run's Score Table into a
// catalog-registered ScoreHistory table, and — for TRIGGERED monitors —
// arms a per-series EWMA anomaly detector on the store's write tap so
// RCA fires when the target series goes anomalous rather than on a
// timer. This is the paper's always-on deployment story.
//
// Window semantics: the statement's BETWEEN [t0, t1] is run 0's window.
// A periodic monitor's k-th run explains [t0 + k*EVERY, t1 + k*EVERY] —
// the EVERY interval is both the wall-clock cadence and the data-time
// stride, matching a collector that ticks in real time. A triggered
// monitor keeps the window's *width*: an anomaly at data time T explains
// [T - (t1 - t0), T].
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/time_util.h"
#include "core/engine.h"
#include "exec/cancel.h"
#include "exec/worker_pool.h"
#include "monitor/anomaly.h"
#include "monitor/history.h"
#include "monitor/shared_scan.h"
#include "sql/ast.h"
#include "sql/executor.h"
#include "table/table.h"

namespace explainit::monitor {

struct MonitorOptions {
  /// Pool the runs are scheduled on (borrowed); null = the process-wide
  /// exec::WorkerPool::Global().
  exec::WorkerPool* worker_pool = nullptr;
  /// Parallelism of each monitor's private executor.
  size_t sql_parallelism = 1;
  /// Per-run deadline enforced via CancelToken (0 = none).
  double run_deadline_seconds = 30.0;
  /// Scheduler poll granularity in wall seconds.
  double tick_seconds = 0.02;
  /// Wall seconds per EVERY-second: the scheduler fires a monitor every
  /// every_seconds * wall_scale wall seconds. 1.0 = real time; tests and
  /// benches compress time with small values. The *data-time* stride is
  /// always every_seconds.
  double wall_scale = 1.0;
  /// Online detector tuning for TRIGGERED monitors.
  AnomalyOptions anomaly;
  /// Minimum wall seconds between triggered runs of one monitor when it
  /// has no EVERY interval of its own.
  double trigger_cooldown_seconds = 5.0;
};

enum class MonitorMode { kPeriodic, kTriggered };

/// Point-in-time status of one monitor (one SHOW MONITORS row).
struct MonitorStatus {
  std::string name;
  MonitorMode mode = MonitorMode::kPeriodic;
  int64_t every_seconds = 0;  // 0 = none (triggered without cooldown)
  std::string into_table;
  uint64_t runs_ok = 0;
  uint64_t runs_error = 0;
  uint64_t triggers = 0;  // anomaly activations accepted
  std::string last_error;
  TimeRange last_window{0, 0};  // half-open window of the last run
  double last_run_seconds = 0.0;
};

/// Owns the standing queries of one engine. Thread-safe. The engine (and
/// its store/catalog) must outlive the service; call Stop() — or let the
/// destructor — before tearing the engine down.
class MonitorService {
 public:
  explicit MonitorService(core::Engine* engine, MonitorOptions options = {});
  ~MonitorService();

  MonitorService(const MonitorService&) = delete;
  MonitorService& operator=(const MonitorService&) = delete;

  /// Statement front door: handles the monitor statements (standing
  /// EXPLAIN, DROP MONITOR, SHOW MONITORS) and forwards everything else
  /// to Engine::ExecuteStatement on `executor`. The server routes every
  /// query through this when a monitor service is attached.
  Result<core::QueryResult> Query(sql::Executor& executor,
                                  std::string_view sql);

  /// Registers a standing query; returns the monitor name (the INTO
  /// table name, or a generated one). The statement must carry EVERY or
  /// TRIGGERED plus a BETWEEN window; its INTO history table registers
  /// in the engine catalog immediately.
  Result<std::string> Register(const sql::ExplainStatement& stmt);

  /// Unregisters a monitor, cancelling its in-flight run (if any). The
  /// history table stays registered so past runs remain queryable.
  Status Drop(const std::string& name);

  std::vector<MonitorStatus> Statuses() const;
  /// SHOW MONITORS as a relational table.
  table::Table StatusTable() const;
  size_t active_monitors() const;

  /// Runs one slide of `name` synchronously on the calling thread: a
  /// periodic monitor advances to its next window; a triggered monitor
  /// consumes its pending anomaly. FailedPrecondition when a run is
  /// already in flight (or nothing is pending). Benches and tests use
  /// this for deterministic sequencing; the scheduler thread does the
  /// same thing on its own cadence.
  Status RunOnce(const std::string& name);

  /// Starts the scheduler thread and installs the store write tap.
  /// Idempotent. Registration works before Start(); only scheduling and
  /// triggering need it.
  void Start();

  /// Cancels in-flight runs, drains them, stops the scheduler and
  /// removes the write tap. Idempotent; the destructor calls it.
  void Stop();

  /// Aggregated shared-scan statistics across a monitor's overlaid
  /// store tables.
  Result<SharedScanStats> ScanStats(const std::string& name) const;

  /// The monitor's score history (alive as long as any reference is —
  /// DROP keeps it queryable).
  Result<std::shared_ptr<ScoreHistory>> History(const std::string& name) const;

 private:
  struct Monitor;

  Result<core::QueryResult> RegisterAsResult(const sql::ExplainStatement&);
  Result<std::shared_ptr<Monitor>> BuildMonitor(
      const sql::ExplainStatement& stmt, std::string name);
  Status RunWindow(const std::shared_ptr<Monitor>& m, int64_t run_index,
                   TimeRange inclusive_window);
  void SchedulerLoop();
  void OnWrite(const tsdb::SeriesMeta& meta, EpochSeconds ts, double value);
  Result<std::shared_ptr<Monitor>> FindLocked(const std::string& name) const;

  core::Engine* engine_;
  MonitorOptions options_;
  exec::WorkerPool* pool_;
  EwmaAnomalyDetector detector_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::unordered_map<std::string, std::shared_ptr<Monitor>> monitors_;
  /// History tables this service registered (a re-registered monitor may
  /// rebind these; anything else in the catalog is off limits).
  std::unordered_set<std::string> history_tables_;
  std::unordered_set<exec::CancelToken*> active_tokens_;
  uint64_t name_counter_ = 0;
  std::atomic<size_t> triggered_count_{0};
  bool started_ = false;
  bool stopping_ = false;

  std::thread scheduler_;
  std::unique_ptr<exec::TaskGroup> runs_group_;
};

}  // namespace explainit::monitor
