#include "monitor/history.h"

namespace explainit::monitor {

ScoreHistory::ScoreHistory() {
  table::Schema schema;
  schema.AddField({"run", table::DataType::kInt64});
  schema.AddField({"run_ts", table::DataType::kTimestamp});
  schema.AddField({"rank", table::DataType::kInt64});
  schema.AddField({"family", table::DataType::kString});
  schema.AddField({"score", table::DataType::kDouble});
  schema.AddField({"num_features", table::DataType::kInt64});
  schema.AddField({"best_lambda", table::DataType::kDouble});
  schema.AddField({"score_seconds", table::DataType::kDouble});
  table_ = table::Table(std::move(schema));
}

void ScoreHistory::Append(int64_t run, EpochSeconds run_ts,
                          const core::ScoreTable& st) {
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t rank = 1;
  for (const core::ScoredHypothesis& row : st.rows) {
    table_.AppendRow({table::Value::Int(run), table::Value::Timestamp(run_ts),
                      table::Value::Int(rank++),
                      table::Value::String(row.family_name),
                      table::Value::Double(row.score),
                      table::Value::Int(static_cast<int64_t>(row.num_features)),
                      table::Value::Double(row.best_lambda),
                      table::Value::Double(row.score_seconds)});
  }
  ++runs_;
}

table::Table ScoreHistory::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return table_;
}

size_t ScoreHistory::num_runs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return runs_;
}

size_t ScoreHistory::num_rows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return table_.num_rows();
}

}  // namespace explainit::monitor
