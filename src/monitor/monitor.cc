#include "monitor/monitor.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/strings.h"
#include "core/explain.h"
#include "sql/parser.h"

namespace explainit::monitor {

namespace {

const char* ModeName(MonitorMode mode) {
  return mode == MonitorMode::kPeriodic ? "PERIODIC" : "TRIGGERED";
}

/// Table names a sub-select (and its joins/subqueries/unions) reads.
void CollectTables(const sql::SelectStatement& stmt,
                   std::vector<std::string>* out) {
  if (stmt.from.has_value()) {
    if (!stmt.from->table_name.empty()) out->push_back(stmt.from->table_name);
    if (stmt.from->subquery) CollectTables(*stmt.from->subquery, out);
  }
  for (const sql::JoinClause& join : stmt.joins) {
    if (!join.right.table_name.empty()) out->push_back(join.right.table_name);
    if (join.right.subquery) CollectTables(*join.right.subquery, out);
  }
  for (const auto& term : stmt.union_all) CollectTables(*term, out);
}

/// The metric glob a triggered monitor watches: a top-level
/// `metric_name = '<literal>'` conjunct in the target sub-select's WHERE
/// (either operand order), else every metric.
std::string ExtractMetricGlob(const sql::SelectStatement& stmt) {
  if (!stmt.where) return "*";
  std::vector<const sql::Expr*> conjuncts;
  sql::CollectConjuncts(stmt.where.get(), &conjuncts);
  for (const sql::Expr* c : conjuncts) {
    if (c->kind != sql::ExprKind::kBinary ||
        c->binary_op != sql::BinaryOp::kEq) {
      continue;
    }
    const sql::Expr* col = c->left.get();
    const sql::Expr* lit = c->right.get();
    if (col->kind != sql::ExprKind::kColumnRef) std::swap(col, lit);
    if (col == nullptr || lit == nullptr ||
        col->kind != sql::ExprKind::kColumnRef ||
        lit->kind != sql::ExprKind::kLiteral) {
      continue;
    }
    if (!EqualsIgnoreCase(col->column, "metric_name")) continue;
    if (const std::string* s = lit->literal.TryString()) return *s;
  }
  return "*";
}

}  // namespace

/// One standing query. Shared-ptr-held so an in-flight run survives a
/// concurrent Drop. The private executor/statement/scans are only ever
/// touched by the single in-flight run (guarded by `in_flight`); the
/// counters and scheduling state are guarded by the service mutex.
struct MonitorService::Monitor {
  std::string name;
  MonitorMode mode = MonitorMode::kPeriodic;
  int64_t every_seconds = 0;  // data-time stride; 0 = triggered-only
  std::string into_table;

  /// Service-owned deep copy (printer/parser round-trip); RunWindow
  /// mutates its BETWEEN bounds per slide.
  std::unique_ptr<sql::ExplainStatement> stmt;
  /// Engine-catalog snapshot with shared-scan overlays on store tables.
  sql::Catalog catalog;
  std::unique_ptr<sql::Executor> executor;
  std::vector<std::shared_ptr<SharedWindowScan>> scans;
  std::shared_ptr<ScoreHistory> history;
  std::string target_glob = "*";

  int64_t base_start = 0;  // run 0's inclusive BETWEEN window
  int64_t base_end = 0;
  int64_t window_width = 0;

  std::atomic<bool> in_flight{false};

  // --- guarded by MonitorService::mutex_ ---
  exec::CancelToken* active_token = nullptr;
  int64_t scheduled_runs = 0;
  std::optional<EpochSeconds> pending_trigger;
  double last_trigger_wall = -1e300;
  double next_due_wall = 0.0;
  uint64_t runs_ok = 0;
  uint64_t runs_error = 0;
  uint64_t triggers = 0;
  std::string last_error;
  TimeRange last_window{0, 0};
  double last_run_seconds = 0.0;
};

MonitorService::MonitorService(core::Engine* engine, MonitorOptions options)
    : engine_(engine),
      options_(options),
      pool_(options.worker_pool != nullptr ? options.worker_pool
                                           : &exec::WorkerPool::Global()),
      detector_(options.anomaly) {}

MonitorService::~MonitorService() { Stop(); }

Result<core::QueryResult> MonitorService::Query(sql::Executor& executor,
                                                std::string_view sql_text) {
  EXPLAINIT_ASSIGN_OR_RETURN(auto stmt, sql::ParseStatement(sql_text));
  switch (stmt->kind()) {
    case sql::StatementKind::kExplain: {
      const auto& explain = static_cast<const sql::ExplainStatement&>(*stmt);
      if (explain.is_monitor()) return RegisterAsResult(explain);
      break;
    }
    case sql::StatementKind::kDropMonitor: {
      const auto& drop = static_cast<const sql::DropMonitorStatement&>(*stmt);
      EXPLAINIT_RETURN_IF_ERROR(Drop(drop.name));
      core::QueryResult out;
      out.kind = sql::StatementKind::kDropMonitor;
      table::Table t(table::Schema({{"monitor", table::DataType::kString},
                                    {"status", table::DataType::kString}}));
      t.AppendRow({table::Value::String(drop.name),
                   table::Value::String("dropped")});
      out.table = std::move(t);
      return out;
    }
    case sql::StatementKind::kShowMonitors: {
      core::QueryResult out;
      out.kind = sql::StatementKind::kShowMonitors;
      out.table = StatusTable();
      return out;
    }
    default:
      break;
  }
  return engine_->ExecuteStatement(executor, *stmt);
}

Result<core::QueryResult> MonitorService::RegisterAsResult(
    const sql::ExplainStatement& stmt) {
  EXPLAINIT_ASSIGN_OR_RETURN(std::string name, Register(stmt));
  core::QueryResult out;
  out.kind = sql::StatementKind::kExplain;
  table::Table t(table::Schema({{"monitor", table::DataType::kString},
                                {"mode", table::DataType::kString},
                                {"status", table::DataType::kString}}));
  MonitorMode mode =
      stmt.triggered ? MonitorMode::kTriggered : MonitorMode::kPeriodic;
  t.AppendRow({table::Value::String(name),
               table::Value::String(ModeName(mode)),
               table::Value::String("registered")});
  out.table = std::move(t);
  return out;
}

Result<std::string> MonitorService::Register(
    const sql::ExplainStatement& stmt) {
  if (!stmt.every_seconds.has_value() && !stmt.triggered) {
    return Status::InvalidArgument(
        "a standing EXPLAIN needs EVERY and/or TRIGGERED");
  }
  if (!stmt.between_start.has_value() || !stmt.between_end.has_value()) {
    return Status::InvalidArgument(
        "a standing EXPLAIN needs a BETWEEN window (run 0's "
        "range-to-explain; its width is kept across slides)");
  }
  std::string name;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return Status::Cancelled("monitor service stopping");
    name = !stmt.into_table.empty()
               ? stmt.into_table
               : "monitor_" + std::to_string(++name_counter_);
    if (monitors_.count(name) != 0) {
      return Status::AlreadyExists("monitor '" + name + "' already exists");
    }
  }
  // The INTO name must be free (or a history table this service owns —
  // re-registering after DROP MONITOR rebinds it).
  if (!stmt.into_table.empty()) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (engine_->catalog().HasTable(stmt.into_table) &&
        history_tables_.count(stmt.into_table) == 0) {
      return Status::AlreadyExists("INTO table '" + stmt.into_table +
                                   "' already exists in the catalog");
    }
  }

  EXPLAINIT_ASSIGN_OR_RETURN(std::shared_ptr<Monitor> m,
                             BuildMonitor(stmt, name));
  // Dry-run plan: surfaces unknown scorers/tables/columns at
  // registration instead of on the first scheduled run.
  {
    EXPLAINIT_ASSIGN_OR_RETURN(
        auto plan, core::PlanExplain(*m->stmt, engine_, m->executor.get()));
    plan.reset();
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return Status::Cancelled("monitor service stopping");
    if (monitors_.count(name) != 0) {
      return Status::AlreadyExists("monitor '" + name + "' already exists");
    }
    if (!m->into_table.empty()) {
      std::shared_ptr<ScoreHistory> history = m->history;
      engine_->catalog().RegisterProvider(
          m->into_table,
          [history]() -> Result<table::Table> { return history->Snapshot(); });
      history_tables_.insert(m->into_table);
    }
    if (m->mode == MonitorMode::kPeriodic) {
      m->next_due_wall = MonotonicSeconds() +
                         static_cast<double>(m->every_seconds) *
                             options_.wall_scale;
    } else {
      triggered_count_.fetch_add(1, std::memory_order_relaxed);
    }
    monitors_.emplace(name, std::move(m));
    cv_.notify_all();
  }
  return name;
}

Result<std::shared_ptr<MonitorService::Monitor>> MonitorService::BuildMonitor(
    const sql::ExplainStatement& stmt, std::string name) {
  auto m = std::make_shared<Monitor>();
  m->name = std::move(name);
  m->mode = stmt.triggered ? MonitorMode::kTriggered : MonitorMode::kPeriodic;
  m->every_seconds = stmt.every_seconds.value_or(0);
  m->into_table = stmt.into_table;
  m->base_start = *stmt.between_start;
  m->base_end = *stmt.between_end;
  m->window_width = m->base_end - m->base_start;

  // The service's own deep copy of the statement, via the printer/parser
  // fixpoint (the AST has no deep-copy ctor; round-tripping is exact).
  EXPLAINIT_ASSIGN_OR_RETURN(auto parsed,
                             sql::ParseStatement(sql::ToSql(stmt)));
  if (parsed->kind() != sql::StatementKind::kExplain) {
    return Status::Internal("EXPLAIN round-trip changed the statement kind");
  }
  m->stmt.reset(static_cast<sql::ExplainStatement*>(parsed.release()));

  // Private catalog snapshot; overlay every store-backed table (the
  // hint-aware providers) with this monitor's shared window scan. The
  // overlay registers as a NON-hinted provider, so the planner keeps all
  // WHERE conjuncts as residual filters and the cache only has to
  // reproduce the raw window contents — hints cost rows, not correctness.
  m->catalog = engine_->catalog();
  std::vector<std::string> tables;
  if (m->stmt->target) CollectTables(*m->stmt->target, &tables);
  if (m->stmt->given) CollectTables(*m->stmt->given, &tables);
  if (m->stmt->search_space) CollectTables(*m->stmt->search_space, &tables);
  std::sort(tables.begin(), tables.end());
  tables.erase(std::unique(tables.begin(), tables.end()), tables.end());
  for (const std::string& t : tables) {
    if (!engine_->catalog().SupportsHints(t)) continue;
    auto scan = std::make_shared<SharedWindowScan>(&engine_->store());
    m->catalog.RegisterProvider(
        t, [scan]() -> Result<table::Table> { return scan->Get(); });
    m->scans.push_back(std::move(scan));
  }

  m->executor = std::make_unique<sql::Executor>(
      &m->catalog, &engine_->functions(), options_.sql_parallelism, pool_);
  m->history = std::make_shared<ScoreHistory>();
  if (m->stmt->target) m->target_glob = ExtractMetricGlob(*m->stmt->target);
  return m;
}

Status MonitorService::Drop(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = monitors_.find(name);
  if (it == monitors_.end()) {
    return Status::NotFound("no monitor named '" + name + "'");
  }
  Monitor& m = *it->second;
  if (m.active_token != nullptr) m.active_token->Cancel();
  if (m.mode == MonitorMode::kTriggered) {
    triggered_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  // The in-flight run (if any) holds its own shared_ptr and finishes on
  // its own; the history table stays registered in the engine catalog so
  // past runs remain queryable.
  monitors_.erase(it);
  return Status::OK();
}

Result<std::shared_ptr<MonitorService::Monitor>> MonitorService::FindLocked(
    const std::string& name) const {
  auto it = monitors_.find(name);
  if (it == monitors_.end()) {
    return Status::NotFound("no monitor named '" + name + "'");
  }
  return it->second;
}

std::vector<MonitorStatus> MonitorService::Statuses() const {
  std::vector<MonitorStatus> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(monitors_.size());
    for (const auto& [name, m] : monitors_) {
      MonitorStatus s;
      s.name = name;
      s.mode = m->mode;
      s.every_seconds = m->every_seconds;
      s.into_table = m->into_table;
      s.runs_ok = m->runs_ok;
      s.runs_error = m->runs_error;
      s.triggers = m->triggers;
      s.last_error = m->last_error;
      s.last_window = m->last_window;
      s.last_run_seconds = m->last_run_seconds;
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MonitorStatus& a, const MonitorStatus& b) {
              return a.name < b.name;
            });
  return out;
}

table::Table MonitorService::StatusTable() const {
  table::Schema schema({{"monitor", table::DataType::kString},
                        {"mode", table::DataType::kString},
                        {"every", table::DataType::kString},
                        {"into", table::DataType::kString},
                        {"runs_ok", table::DataType::kInt64},
                        {"runs_error", table::DataType::kInt64},
                        {"triggers", table::DataType::kInt64},
                        {"window_start", table::DataType::kTimestamp},
                        {"window_end", table::DataType::kTimestamp},
                        {"last_run_seconds", table::DataType::kDouble},
                        {"last_error", table::DataType::kString}});
  table::Table out(schema);
  for (const MonitorStatus& s : Statuses()) {
    out.AppendRow({table::Value::String(s.name),
                   table::Value::String(ModeName(s.mode)),
                   table::Value::String(s.every_seconds > 0
                                            ? sql::FormatDuration(
                                                  s.every_seconds)
                                            : ""),
                   table::Value::String(s.into_table),
                   table::Value::Int(static_cast<int64_t>(s.runs_ok)),
                   table::Value::Int(static_cast<int64_t>(s.runs_error)),
                   table::Value::Int(static_cast<int64_t>(s.triggers)),
                   table::Value::Timestamp(s.last_window.start),
                   table::Value::Timestamp(s.last_window.end),
                   table::Value::Double(s.last_run_seconds),
                   table::Value::String(s.last_error)});
  }
  return out;
}

size_t MonitorService::active_monitors() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return monitors_.size();
}

Result<SharedScanStats> MonitorService::ScanStats(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  EXPLAINIT_ASSIGN_OR_RETURN(std::shared_ptr<Monitor> m, FindLocked(name));
  SharedScanStats total;
  for (const auto& scan : m->scans) {
    const SharedScanStats s = scan->stats();
    total.store_scans += s.store_scans;
    total.full_scans += s.full_scans;
    total.delta_scans += s.delta_scans;
    total.rows_reused += s.rows_reused;
    total.rows_delta += s.rows_delta;
    total.consumer_reads += s.consumer_reads;
  }
  return total;
}

Result<std::shared_ptr<ScoreHistory>> MonitorService::History(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  EXPLAINIT_ASSIGN_OR_RETURN(std::shared_ptr<Monitor> m, FindLocked(name));
  return m->history;
}

Status MonitorService::RunOnce(const std::string& name) {
  std::shared_ptr<Monitor> m;
  int64_t run = 0;
  TimeRange window{0, 0};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    EXPLAINIT_ASSIGN_OR_RETURN(m, FindLocked(name));
    bool expected = false;
    if (!m->in_flight.compare_exchange_strong(expected, true)) {
      return Status::FailedPrecondition("monitor '" + name +
                                        "' already has a run in flight");
    }
    if (m->mode == MonitorMode::kPeriodic) {
      run = m->scheduled_runs++;
      window = TimeRange{m->base_start + run * m->every_seconds,
                         m->base_end + run * m->every_seconds};
      m->next_due_wall = MonotonicSeconds() +
                         static_cast<double>(m->every_seconds) *
                             options_.wall_scale;
    } else {
      if (!m->pending_trigger.has_value()) {
        m->in_flight.store(false, std::memory_order_release);
        return Status::FailedPrecondition(
            "monitor '" + name + "' has no pending anomaly trigger");
      }
      run = m->scheduled_runs++;
      const EpochSeconds t = *m->pending_trigger;
      m->pending_trigger.reset();
      window = TimeRange{t - m->window_width, t};
    }
  }
  Status status = RunWindow(m, run, window);
  m->in_flight.store(false, std::memory_order_release);
  return status;
}

Status MonitorService::RunWindow(const std::shared_ptr<Monitor>& m,
                                 int64_t run_index,
                                 TimeRange inclusive_window) {
  exec::CancelToken token;
  if (options_.run_deadline_seconds > 0) {
    token.SetDeadlineAfter(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::duration<double>(options_.run_deadline_seconds)));
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Same re-check-under-the-mutex pattern as Server::Stop(): a run
    // racing a concurrent Stop() must not register a token Stop's cancel
    // loop already walked past.
    if (stopping_) return Status::Cancelled("monitor service stopping");
    active_tokens_.insert(&token);
    m->active_token = &token;
  }

  const double wall_start = MonotonicSeconds();
  Status status = [&]() -> Status {
    // BETWEEN is inclusive; scans/stores speak half-open.
    const TimeRange half_open{inclusive_window.start,
                              inclusive_window.end + 1};
    for (const auto& scan : m->scans) {
      EXPLAINIT_RETURN_IF_ERROR(scan->SetWindow(half_open));
    }
    m->stmt->between_start = inclusive_window.start;
    m->stmt->between_end = inclusive_window.end;
    m->executor->set_cancel_token(&token);
    Status run = [&]() -> Status {
      EXPLAINIT_ASSIGN_OR_RETURN(
          auto root, core::PlanExplain(*m->stmt, engine_, m->executor.get()));
      EXPLAINIT_ASSIGN_OR_RETURN(table::Table result,
                                 m->executor->ExecuteTree(root.get()));
      (void)result;  // the history rows carry everything downstream reads
      m->history->Append(run_index, inclusive_window.end,
                         root->score_table());
      return Status::OK();
    }();
    m->executor->set_cancel_token(nullptr);
    return run;
  }();
  const double elapsed = MonotonicSeconds() - wall_start;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    active_tokens_.erase(&token);
    m->active_token = nullptr;
    m->last_window =
        TimeRange{inclusive_window.start, inclusive_window.end + 1};
    m->last_run_seconds = elapsed;
    if (status.ok()) {
      ++m->runs_ok;
      m->last_error.clear();
    } else {
      ++m->runs_error;
      m->last_error = status.ToString();
    }
  }
  return status;
}

void MonitorService::Start() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (started_) return;
    started_ = true;
    stopping_ = false;
    runs_group_ = std::make_unique<exec::TaskGroup>(pool_);
    scheduler_ = std::thread([this] { SchedulerLoop(); });
  }
  // Install the ingest tap outside the service mutex: SetWriteObserver
  // takes the store's observer lock, which writer threads hold while
  // calling OnWrite — and OnWrite takes the service mutex.
  engine_->store().SetWriteObserver(
      [this](const tsdb::SeriesMeta& meta, EpochSeconds ts, double value) {
        OnWrite(meta, ts, value);
      });
}

void MonitorService::Stop() {
  bool was_started = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    was_started = started_;
    stopping_ = true;
    for (exec::CancelToken* token : active_tokens_) token->Cancel();
    cv_.notify_all();
  }
  if (was_started) {
    scheduler_.join();
    runs_group_->Wait();
    runs_group_.reset();
    // Quiescence barrier: once this returns no writer thread is still
    // inside OnWrite, so the service may be destroyed.
    engine_->store().SetWriteObserver(nullptr);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  started_ = false;
  stopping_ = false;
}

void MonitorService::SchedulerLoop() {
  struct Fire {
    std::shared_ptr<Monitor> m;
    int64_t run;
    TimeRange window;
  };
  const auto tick = std::chrono::duration<double>(options_.tick_seconds);
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    cv_.wait_for(lock, tick);
    if (stopping_) break;
    const double now = MonotonicSeconds();
    std::vector<Fire> fires;
    for (auto& [name, m] : monitors_) {
      if (m->in_flight.load(std::memory_order_acquire)) continue;
      if (m->mode == MonitorMode::kPeriodic) {
        if (now + 1e-9 < m->next_due_wall) continue;
        m->in_flight.store(true, std::memory_order_release);
        const int64_t k = m->scheduled_runs++;
        fires.push_back({m, k,
                         TimeRange{m->base_start + k * m->every_seconds,
                                   m->base_end + k * m->every_seconds}});
        m->next_due_wall = now + static_cast<double>(m->every_seconds) *
                                     options_.wall_scale;
      } else if (m->pending_trigger.has_value()) {
        m->in_flight.store(true, std::memory_order_release);
        const int64_t k = m->scheduled_runs++;
        const EpochSeconds t = *m->pending_trigger;
        m->pending_trigger.reset();
        fires.push_back({m, k, TimeRange{t - m->window_width, t}});
      }
    }
    if (fires.empty()) continue;
    lock.unlock();
    for (Fire& f : fires) {
      std::shared_ptr<Monitor> m = f.m;
      const int64_t run = f.run;
      const TimeRange window = f.window;
      runs_group_->Submit(
          [this, m, run, window] {
            (void)RunWindow(m, run, window);
            m->in_flight.store(false, std::memory_order_release);
          },
          "monitor");
    }
    lock.lock();
  }
}

void MonitorService::OnWrite(const tsdb::SeriesMeta& meta, EpochSeconds ts,
                             double value) {
  // Fast exit on the ingest path when nothing can trigger.
  if (triggered_count_.load(std::memory_order_relaxed) == 0) return;
  const double z = detector_.Observe(meta.ToString(), value);
  if (!detector_.IsAnomalous(z)) return;

  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_) return;
  const double now = MonotonicSeconds();
  for (auto& [name, m] : monitors_) {
    if (m->mode != MonitorMode::kTriggered) continue;
    if (!GlobMatch(m->target_glob, meta.metric_name)) continue;
    if (m->pending_trigger.has_value() ||
        m->in_flight.load(std::memory_order_acquire)) {
      continue;
    }
    // EVERY on a triggered monitor is its re-fire rate limit; without
    // one the service-wide cooldown applies.
    const double cooldown =
        m->every_seconds > 0
            ? static_cast<double>(m->every_seconds) * options_.wall_scale
            : options_.trigger_cooldown_seconds;
    if (now - m->last_trigger_wall < cooldown) continue;
    m->pending_trigger = ts;
    m->last_trigger_wall = now;
    ++m->triggers;
  }
  cv_.notify_all();
}

}  // namespace explainit::monitor
