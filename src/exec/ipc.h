// Matrix wire codec. The production system ships feature matrices from
// Spark (JVM) to Python scikit kernels over gRPC; §6.2 measures that
// serialisation at ~25% of univariate and ~5% of multivariate score time.
// This codec reproduces that code path so the Figure 10 bench can account
// for serialisation separately.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "la/matrix.h"

namespace explainit::exec {

/// Decode-side sanity caps. The header's rows/cols are untrusted once
/// buffers arrive over a socket; dimensions or element counts beyond
/// these are rejected as InvalidArgument before any size arithmetic
/// (which would otherwise wrap uint64) or allocation.
constexpr uint64_t kMaxMatrixDim = uint64_t{1} << 24;        // 16M rows/cols
constexpr uint64_t kMaxMatrixElements = uint64_t{1} << 27;   // 1 GiB of f64

/// Serialises a matrix into a length-prefixed little-endian buffer.
std::vector<uint8_t> EncodeMatrix(const la::Matrix& m);

/// Parses a buffer produced by EncodeMatrix. Rejects truncated buffers,
/// bad magic, dimension/element counts past the caps above, and any
/// size mismatch — with checked multiplication throughout, so hostile
/// headers cannot wrap the expected size onto a short buffer.
Result<la::Matrix> DecodeMatrix(const std::vector<uint8_t>& buffer);

/// Round-trips a matrix through the codec, returning the decode result and
/// accumulating elapsed seconds into *seconds (when non-null). Emulates the
/// executor -> kernel IPC hop.
Result<la::Matrix> RoundTripMatrix(const la::Matrix& m,
                                   double* seconds = nullptr);

}  // namespace explainit::exec
