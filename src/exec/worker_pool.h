// Process-wide worker pool with per-caller task groups.
//
// The seed grew one private exec::ThreadPool per component (the SQL
// executor's morsel pool, the store's scan + maintenance pools, a
// throwaway pool per RankFamilies call). That is fine for one session but
// oversubscribes the box the moment a server runs N sessions: every
// session would spin its own hardware_concurrency() threads. WorkerPool
// replaces all of those creation sites with one shared, affinity-aware
// pool that callers *borrow*:
//
//   - WorkerPool::Global() is the process-wide instance every component
//     defaults to; constructors take an optional WorkerPool* injection
//     point so tests can isolate. WorkerPool::constructions() counts
//     pool creations, letting tests assert that serving 64 sessions
//     creates no per-component pools.
//   - TaskGroup scopes a batch of submitted tasks: Wait() blocks only on
//     *this group's* tasks and rethrows only this group's first
//     exception, so concurrent sessions sharing the pool never observe
//     each other's work or errors (ThreadPool::Wait was pool-global).
//   - A Wait()ing thread HELPS: it runs its own group's queued tasks
//     inline instead of blocking on a saturated pool. Combined with
//     caller participation in ParallelFor/ParallelForChunks (the calling
//     thread pulls work from the same atomic cursor as the workers),
//     nested fan-out — a store scan inside a morsel task inside a
//     session — can never deadlock: a waiter only ever blocks on tasks
//     that are actually executing.
//   - TaskGroup(pool, /*max_concurrency=*/1) serialises a group's tasks
//     (the store's background maintenance ordering) without dedicating a
//     thread to it.
//   - Tasks carry a tag ("sql", "scan", "rank", ...); the pool keeps
//     per-tag completion counters for observability.
//
// Sizing is affinity-aware: the default thread count is the number of
// CPUs the process is actually allowed to run on (sched_getaffinity on
// Linux — container/cgroup masks respected), not hardware_concurrency().
// Options::pin_threads additionally pins worker i to the i-th allowed
// CPU round-robin, which spreads workers across NUMA nodes on hosts
// whose CPUs enumerate node-major.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace explainit::exec {

class TaskGroup;

struct WorkerPoolOptions {
  /// Worker count; 0 = one per schedulable CPU.
  size_t num_threads = 0;
  /// Pin worker i to the i-th allowed CPU (round-robin).
  bool pin_threads = false;
};

class WorkerPool {
 public:
  using Options = WorkerPoolOptions;

  explicit WorkerPool(Options options = Options());
  explicit WorkerPool(size_t num_threads)
      : WorkerPool(Options{num_threads, false}) {}
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Tasks completed per tag since construction.
  std::map<std::string, uint64_t> TagCounts() const;

  /// The process-wide pool. Created on first use, sized to the
  /// schedulable CPUs, never destroyed (it must outlive every static
  /// whose destructor might still submit work).
  static WorkerPool& Global();

  /// Total WorkerPool constructions in this process. Integration tests
  /// pin this across a serving run to prove no component grew a
  /// private pool.
  static size_t constructions();

 private:
  friend class TaskGroup;

  struct Entry {
    TaskGroup* group;
    std::function<void()> fn;
    const char* tag;
  };

  /// True when the entry's group has concurrency budget left.
  bool RunnableLocked(const Entry& e) const;
  /// Pops the first runnable entry (restricted to `only_group` when
  /// non-null). Returns false when none qualifies.
  bool PopRunnableLocked(TaskGroup* only_group, Entry* out);
  /// Runs one entry. `lock` must be held on entry and is held again on
  /// return; the task itself executes unlocked.
  void Execute(Entry entry, std::unique_lock<std::mutex>& lock);
  void WorkerLoop(size_t index);

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<Entry> queue_;
  std::map<std::string, uint64_t> tag_counts_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// A batch of related tasks on a shared pool. Waiting and error capture
/// are group-local; the destructor blocks until every task of the group
/// has finished (discarding errors), so tasks may capture the caller's
/// stack by reference.
class TaskGroup {
 public:
  /// max_concurrency bounds how many of this group's tasks run at once;
  /// 0 = pool-wide. 1 gives strict FIFO serialisation.
  explicit TaskGroup(WorkerPool* pool, size_t max_concurrency = 0);
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void Submit(std::function<void()> fn, const char* tag = "task");

  /// Blocks until every task submitted to this group has finished,
  /// helping to run queued (not yet started) group tasks inline. If any
  /// task threw since the last Wait(), rethrows the first captured
  /// exception; the group stays usable.
  void Wait();

  /// Tasks submitted but not yet finished.
  size_t pending() const;

 private:
  friend class WorkerPool;

  void WaitImpl(bool rethrow);

  WorkerPool* pool_;
  const size_t max_concurrency_;
  size_t pending_ = 0;  // queued + running   (guarded by pool_->mutex_)
  size_t active_ = 0;   // running right now  (guarded by pool_->mutex_)
  std::exception_ptr first_error_;  //         (guarded by pool_->mutex_)
  std::condition_variable done_;    // waits on pool_->mutex_
};

/// Runs fn(i) for i in [0, n), blocking until done. The calling thread
/// participates (it pulls indices from the same cursor as the workers),
/// so progress is guaranteed even on a saturated pool and nesting cannot
/// deadlock. max_workers (0 = pool size) caps the fan-out.
void ParallelFor(WorkerPool& pool, size_t n,
                 const std::function<void(size_t)>& fn,
                 size_t max_workers = 0);

/// Runs fn(begin, end) over contiguous chunks covering [0, n), blocking
/// until done. Chunk boundaries depend only on (n, min_grain,
/// pool.num_threads()) — never on scheduling — matching the seed
/// ThreadPool helper so sharded output stays deterministic. One inline
/// call when n <= min_grain.
void ParallelForChunks(WorkerPool& pool, size_t n, size_t min_grain,
                       const std::function<void(size_t, size_t)>& fn);

}  // namespace explainit::exec
