#include "exec/worker_pool.h"

#include <algorithm>
#include <utility>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace explainit::exec {

namespace {

std::atomic<size_t> g_constructions{0};

/// CPUs this process may actually run on (cgroup/taskset masks count);
/// hardware_concurrency as the portable fallback.
std::vector<int> SchedulableCpus() {
  std::vector<int> cpus;
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
      if (CPU_ISSET(cpu, &set)) cpus.push_back(cpu);
    }
  }
#endif
  if (cpus.empty()) {
    const unsigned n = std::max(1u, std::thread::hardware_concurrency());
    for (unsigned i = 0; i < n; ++i) cpus.push_back(static_cast<int>(i));
  }
  return cpus;
}

void MaybePin([[maybe_unused]] std::thread& t, [[maybe_unused]] int cpu) {
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  // Best effort: a shrinking affinity mask between sizing and pinning
  // just leaves the worker unpinned.
  pthread_setaffinity_np(t.native_handle(), sizeof(set), &set);
#endif
}

}  // namespace

WorkerPool::WorkerPool(Options options) {
  g_constructions.fetch_add(1, std::memory_order_relaxed);
  const std::vector<int> cpus = SchedulableCpus();
  size_t n = options.num_threads;
  if (n == 0) n = cpus.size();
  n = std::max<size_t>(1, n);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
    if (options.pin_threads) {
      MaybePin(workers_.back(), cpus[i % cpus.size()]);
    }
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::map<std::string, uint64_t> WorkerPool::TagCounts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tag_counts_;
}

WorkerPool& WorkerPool::Global() {
  // Leaked on purpose: the global pool must outlive every static whose
  // destructor might still fan work out (store impls, engines held in
  // function-local statics).
  static WorkerPool* pool = new WorkerPool();
  return *pool;
}

size_t WorkerPool::constructions() {
  return g_constructions.load(std::memory_order_relaxed);
}

bool WorkerPool::RunnableLocked(const Entry& e) const {
  return e.group->max_concurrency_ == 0 ||
         e.group->active_ < e.group->max_concurrency_;
}

bool WorkerPool::PopRunnableLocked(TaskGroup* only_group, Entry* out) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (only_group != nullptr && it->group != only_group) continue;
    if (!RunnableLocked(*it)) continue;
    *out = std::move(*it);
    queue_.erase(it);
    return true;
  }
  return false;
}

void WorkerPool::Execute(Entry entry, std::unique_lock<std::mutex>& lock) {
  TaskGroup* group = entry.group;
  ++group->active_;
  lock.unlock();
  std::exception_ptr error;
  try {
    entry.fn();
  } catch (...) {
    error = std::current_exception();
  }
  entry.fn = nullptr;  // destroy the closure outside the lock
  lock.lock();
  --group->active_;
  --group->pending_;
  if (error && !group->first_error_) group->first_error_ = std::move(error);
  if (entry.tag != nullptr) ++tag_counts_[entry.tag];
  // Wake waiters of this group (it may be done, or — for bounded groups —
  // capacity just freed so a queued task became runnable) and, when a
  // bounded group freed capacity, workers parked with an unrunnable queue.
  group->done_.notify_all();
  if (group->max_concurrency_ != 0) wake_.notify_all();
}

void WorkerPool::WorkerLoop(size_t /*index*/) {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    Entry entry;
    if (PopRunnableLocked(nullptr, &entry)) {
      Execute(std::move(entry), lock);
      continue;
    }
    if (stopping_) return;
    wake_.wait(lock);
  }
}

TaskGroup::TaskGroup(WorkerPool* pool, size_t max_concurrency)
    : pool_(pool), max_concurrency_(max_concurrency) {}

TaskGroup::~TaskGroup() { WaitImpl(/*rethrow=*/false); }

void TaskGroup::Submit(std::function<void()> fn, const char* tag) {
  {
    std::lock_guard<std::mutex> lock(pool_->mutex_);
    pool_->queue_.push_back(WorkerPool::Entry{this, std::move(fn), tag});
    ++pending_;
  }
  pool_->wake_.notify_one();
  // A thread already help-waiting on this group can run the new task.
  done_.notify_all();
}

size_t TaskGroup::pending() const {
  std::lock_guard<std::mutex> lock(pool_->mutex_);
  return pending_;
}

void TaskGroup::Wait() { WaitImpl(/*rethrow=*/true); }

void TaskGroup::WaitImpl(bool rethrow) {
  std::unique_lock<std::mutex> lock(pool_->mutex_);
  while (pending_ > 0) {
    WorkerPool::Entry entry;
    if (pool_->PopRunnableLocked(this, &entry)) {
      pool_->Execute(std::move(entry), lock);
      continue;
    }
    // Only running tasks remain (or queued ones gated by
    // max_concurrency behind them): block until one finishes.
    done_.wait(lock);
  }
  if (!rethrow) {
    first_error_ = nullptr;
    return;
  }
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ParallelFor(WorkerPool& pool, size_t n,
                 const std::function<void(size_t)>& fn, size_t max_workers) {
  if (n == 0) return;
  size_t workers = pool.num_threads();
  if (max_workers != 0) workers = std::min(workers, max_workers);
  if (n == 1 || workers <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Declared before `group` so they outlive the destructor's drain when
  // the caller's inline run() throws.
  std::atomic<size_t> next{0};
  const auto run = [&next, n, &fn] {
    for (size_t i = next.fetch_add(1, std::memory_order_relaxed); i < n;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      fn(i);
    }
  };
  TaskGroup group(&pool);
  const size_t copies = std::min(workers, n) - 1;  // caller is one worker
  for (size_t i = 0; i < copies; ++i) group.Submit(run, "parallel_for");
  run();
  group.Wait();
}

void ParallelForChunks(WorkerPool& pool, size_t n, size_t min_grain,
                       const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  min_grain = std::max<size_t>(1, min_grain);
  if (n <= min_grain || pool.num_threads() <= 1) {
    fn(0, n);
    return;
  }
  const size_t chunks = std::min(pool.num_threads(), n / min_grain);
  const size_t base = n / chunks;
  const size_t extra = n % chunks;
  std::atomic<size_t> next{0};
  const auto run = [&next, chunks, base, extra, &fn] {
    for (size_t c = next.fetch_add(1, std::memory_order_relaxed); c < chunks;
         c = next.fetch_add(1, std::memory_order_relaxed)) {
      const size_t begin = c * base + std::min(c, extra);
      const size_t end = begin + base + (c < extra ? 1 : 0);
      fn(begin, end);
    }
  };
  TaskGroup group(&pool);
  for (size_t i = 0; i + 1 < chunks; ++i) group.Submit(run, "parallel_chunks");
  run();
  group.Wait();
}

}  // namespace explainit::exec
