#include "exec/thread_pool.h"

#include <algorithm>
#include <utility>

namespace explainit::exec {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  wake_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // A throwing task must not unwind out of the worker thread (that would
    // call std::terminate) and must still decrement in_flight_, or every
    // concurrent Wait() would hang forever.
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error && !first_error_) first_error_ = std::move(error);
      --in_flight_;
      if (in_flight_ == 0) idle_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  for (size_t i = 0; i < n; ++i) {
    pool.Submit([i, &fn] { fn(i); });
  }
  pool.Wait();
}

void ParallelForChunks(ThreadPool& pool, size_t n, size_t min_grain,
                       const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  min_grain = std::max<size_t>(1, min_grain);
  if (n <= min_grain || pool.num_threads() <= 1) {
    fn(0, n);
    return;
  }
  const size_t chunks = std::min(pool.num_threads(), n / min_grain);
  const size_t base = n / chunks;
  const size_t extra = n % chunks;
  size_t begin = 0;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t end = begin + base + (c < extra ? 1 : 0);
    pool.Submit([begin, end, &fn] { fn(begin, end); });
    begin = end;
  }
  pool.Wait();
}

}  // namespace explainit::exec
