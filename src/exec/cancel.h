// Cooperative cancellation + per-query deadlines.
//
// A CancelToken is owned by whoever controls the query's lifetime (a
// server session, a test) and threaded through sql::ExecContext /
// core::RankingOptions by pointer. Execution checks it at batch
// boundaries (Operator::Next, the executor's drain loop) and per
// hypothesis in the ranking fan-out; a tripped token surfaces as a
// Cancelled / DeadlineExceeded Status through the normal error path, so
// a remote query can be abandoned without tearing down the pipeline.
//
// Thread safety: Cancel()/Check() may race freely; SetDeadline* should
// happen-before the query starts (the server sets it before executing).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/status.h"

namespace explainit::exec {

class CancelToken {
 public:
  /// Trips the token; every subsequent Check() fails with Cancelled.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  /// Absolute deadline; Check() fails with DeadlineExceeded once passed.
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_release);
  }
  /// Relative convenience: now + duration.
  void SetDeadlineAfter(std::chrono::nanoseconds duration) {
    SetDeadline(std::chrono::steady_clock::now() + duration);
  }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// OK while the query may keep running.
  Status Check() const {
    if (cancelled()) return Status::Cancelled("query cancelled");
    const int64_t deadline = deadline_ns_.load(std::memory_order_acquire);
    if (deadline != 0 &&
        std::chrono::steady_clock::now().time_since_epoch().count() >=
            deadline) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    return Status::OK();
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_ns_{0};  // steady_clock ns; 0 = none
};

}  // namespace explainit::exec
