#include "exec/ipc.h"

#include <cstring>

#include "common/time_util.h"

namespace explainit::exec {

namespace {
constexpr uint32_t kMagic = 0x4D545845;  // "EXTM"
}

std::vector<uint8_t> EncodeMatrix(const la::Matrix& m) {
  const uint64_t rows = m.rows(), cols = m.cols();
  std::vector<uint8_t> out(sizeof(uint32_t) + 2 * sizeof(uint64_t) +
                           m.size() * sizeof(double));
  uint8_t* p = out.data();
  std::memcpy(p, &kMagic, sizeof(kMagic));
  p += sizeof(kMagic);
  std::memcpy(p, &rows, sizeof(rows));
  p += sizeof(rows);
  std::memcpy(p, &cols, sizeof(cols));
  p += sizeof(cols);
  std::memcpy(p, m.data(), m.size() * sizeof(double));
  return out;
}

Result<la::Matrix> DecodeMatrix(const std::vector<uint8_t>& buffer) {
  if (buffer.size() < sizeof(uint32_t) + 2 * sizeof(uint64_t)) {
    return Status::InvalidArgument("matrix buffer too short");
  }
  const uint8_t* p = buffer.data();
  uint32_t magic = 0;
  std::memcpy(&magic, p, sizeof(magic));
  p += sizeof(magic);
  if (magic != kMagic) {
    return Status::InvalidArgument("bad matrix buffer magic");
  }
  uint64_t rows = 0, cols = 0;
  std::memcpy(&rows, p, sizeof(rows));
  p += sizeof(rows);
  std::memcpy(&cols, p, sizeof(cols));
  p += sizeof(cols);
  const size_t expected = sizeof(uint32_t) + 2 * sizeof(uint64_t) +
                          static_cast<size_t>(rows * cols) * sizeof(double);
  if (buffer.size() != expected) {
    return Status::InvalidArgument("matrix buffer size mismatch");
  }
  la::Matrix m(rows, cols);
  std::memcpy(m.data(), p, static_cast<size_t>(rows * cols) * sizeof(double));
  return m;
}

Result<la::Matrix> RoundTripMatrix(const la::Matrix& m, double* seconds) {
  const double start = MonotonicSeconds();
  std::vector<uint8_t> wire = EncodeMatrix(m);
  Result<la::Matrix> back = DecodeMatrix(wire);
  if (seconds != nullptr) *seconds += MonotonicSeconds() - start;
  return back;
}

}  // namespace explainit::exec
