#include "exec/ipc.h"

#include <cstring>

#include "common/time_util.h"

namespace explainit::exec {

namespace {
constexpr uint32_t kMagic = 0x4D545845;  // "EXTM"

/// out = a * b, or false on uint64 wraparound. Header dimensions are
/// untrusted bytes once frames arrive over a socket: a wrapped product
/// can make the expected size match a short buffer and turn the payload
/// memcpy into a heap overflow.
bool CheckedMul(uint64_t a, uint64_t b, uint64_t* out) {
#if defined(__GNUC__) || defined(__clang__)
  return !__builtin_mul_overflow(a, b, out);
#else
  if (b != 0 && a > UINT64_MAX / b) return false;
  *out = a * b;
  return true;
#endif
}
}

std::vector<uint8_t> EncodeMatrix(const la::Matrix& m) {
  const uint64_t rows = m.rows(), cols = m.cols();
  std::vector<uint8_t> out(sizeof(uint32_t) + 2 * sizeof(uint64_t) +
                           m.size() * sizeof(double));
  uint8_t* p = out.data();
  std::memcpy(p, &kMagic, sizeof(kMagic));
  p += sizeof(kMagic);
  std::memcpy(p, &rows, sizeof(rows));
  p += sizeof(rows);
  std::memcpy(p, &cols, sizeof(cols));
  p += sizeof(cols);
  std::memcpy(p, m.data(), m.size() * sizeof(double));
  return out;
}

Result<la::Matrix> DecodeMatrix(const std::vector<uint8_t>& buffer) {
  if (buffer.size() < sizeof(uint32_t) + 2 * sizeof(uint64_t)) {
    return Status::InvalidArgument("matrix buffer too short");
  }
  const uint8_t* p = buffer.data();
  uint32_t magic = 0;
  std::memcpy(&magic, p, sizeof(magic));
  p += sizeof(magic);
  if (magic != kMagic) {
    return Status::InvalidArgument("bad matrix buffer magic");
  }
  uint64_t rows = 0, cols = 0;
  std::memcpy(&rows, p, sizeof(rows));
  p += sizeof(rows);
  std::memcpy(&cols, p, sizeof(cols));
  p += sizeof(cols);
  // Validate untrusted dimensions before any arithmetic that could wrap:
  // rows * cols and the * sizeof(double) below both overflow uint64 for
  // hostile headers, making `expected` match a short buffer.
  if (rows > kMaxMatrixDim || cols > kMaxMatrixDim) {
    return Status::InvalidArgument(
        "matrix dimensions exceed the decode cap (" +
        std::to_string(kMaxMatrixDim) + "): rows=" + std::to_string(rows) +
        " cols=" + std::to_string(cols));
  }
  uint64_t elements = 0, payload = 0;
  if (!CheckedMul(rows, cols, &elements) || elements > kMaxMatrixElements ||
      !CheckedMul(elements, sizeof(double), &payload)) {
    return Status::InvalidArgument(
        "matrix element count exceeds the decode cap (" +
        std::to_string(kMaxMatrixElements) + "): rows=" +
        std::to_string(rows) + " cols=" + std::to_string(cols));
  }
  const uint64_t expected =
      sizeof(uint32_t) + 2 * sizeof(uint64_t) + payload;
  if (buffer.size() != expected) {
    return Status::InvalidArgument("matrix buffer size mismatch");
  }
  la::Matrix m(rows, cols);
  std::memcpy(m.data(), p, static_cast<size_t>(payload));
  return m;
}

Result<la::Matrix> RoundTripMatrix(const la::Matrix& m, double* seconds) {
  const double start = MonotonicSeconds();
  std::vector<uint8_t> wire = EncodeMatrix(m);
  Result<la::Matrix> back = DecodeMatrix(wire);
  if (seconds != nullptr) *seconds += MonotonicSeconds() - start;
  return back;
}

}  // namespace explainit::exec
