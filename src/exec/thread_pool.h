// Fixed-size thread pool. The scheduling unit throughout ExplainIt! is one
// hypothesis (§4: "our unit of parallelisation is the hypothesis"), which
// avoids distributed-ML complexity entirely.
#pragma once

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace explainit::exec {

/// A minimal fixed-size worker pool with a shared FIFO queue.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (defaults to hardware concurrency).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. A task that throws does not kill the worker: the first
  /// exception is captured and rethrown from the next Wait().
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. If any task threw since
  /// the last Wait(), rethrows the first captured exception (later ones are
  /// dropped); the pool stays usable afterwards. Errors still pending at
  /// destruction are discarded.
  ///
  /// Submit/Wait are safe to call concurrently from multiple threads; the
  /// in-flight count is pool-global, so a Wait() returns only once *every*
  /// submitter's tasks have drained. Never Wait() from inside a task on
  /// the same pool: the waiting task counts as in flight and deadlocks.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  size_t in_flight_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

/// Runs fn(i) for i in [0, n) across the pool, blocking until done.
void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t)>& fn);

/// Runs fn(begin, end) over contiguous chunks covering [0, n), blocking
/// until done. At most pool.num_threads() chunks of at least `min_grain`
/// items each; one inline call when n <= min_grain. Use instead of
/// ParallelFor when n is large and per-item work is small: one task per
/// chunk instead of one queue round-trip per item.
void ParallelForChunks(ThreadPool& pool, size_t n, size_t min_grain,
                       const std::function<void(size_t, size_t)>& fn);

}  // namespace explainit::exec
