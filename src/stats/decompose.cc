#include "stats/decompose.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace explainit::stats {

std::vector<double> Decomposition::Systematic() const {
  std::vector<double> out(trend.size());
  for (size_t i = 0; i < out.size(); ++i) out[i] = trend[i] + seasonal[i];
  return out;
}

std::vector<double> MovingAverage(const std::vector<double>& y, size_t w) {
  const size_t n = y.size();
  std::vector<double> out(n, 0.0);
  if (n == 0) return out;
  if (w < 1) w = 1;
  if (w % 2 == 0) ++w;  // force odd for a centred window
  const size_t half = w / 2;
  // Prefix sums for O(n) windows.
  std::vector<double> prefix(n + 1, 0.0);
  for (size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + y[i];
  for (size_t i = 0; i < n; ++i) {
    const size_t lo = i >= half ? i - half : 0;
    const size_t hi = std::min(n - 1, i + half);
    out[i] = (prefix[hi + 1] - prefix[lo]) / static_cast<double>(hi - lo + 1);
  }
  return out;
}

Decomposition DecomposeAdditive(const std::vector<double>& y, size_t period) {
  EXPLAINIT_CHECK(period >= 2, "period must be >= 2");
  const size_t n = y.size();
  Decomposition d;
  d.trend = MovingAverage(y, period | 1);
  // Periodic means of the detrended series.
  std::vector<double> sums(period, 0.0);
  std::vector<size_t> counts(period, 0);
  for (size_t i = 0; i < n; ++i) {
    sums[i % period] += y[i] - d.trend[i];
    ++counts[i % period];
  }
  std::vector<double> seasonal_profile(period, 0.0);
  double grand = 0.0;
  for (size_t k = 0; k < period; ++k) {
    seasonal_profile[k] =
        counts[k] > 0 ? sums[k] / static_cast<double>(counts[k]) : 0.0;
    grand += seasonal_profile[k];
  }
  grand /= static_cast<double>(period);
  for (double& s : seasonal_profile) s -= grand;  // centre to zero mean
  d.seasonal.resize(n);
  d.residual.resize(n);
  for (size_t i = 0; i < n; ++i) {
    d.seasonal[i] = seasonal_profile[i % period];
    d.residual[i] = y[i] - d.trend[i] - d.seasonal[i];
  }
  return d;
}

Decomposition DecomposeTrend(const std::vector<double>& y, size_t window) {
  Decomposition d;
  d.trend = MovingAverage(y, window);
  d.seasonal.assign(y.size(), 0.0);
  d.residual.resize(y.size());
  for (size_t i = 0; i < y.size(); ++i) d.residual[i] = y[i] - d.trend[i];
  return d;
}

std::vector<double> RunningMedian(const std::vector<double>& y, size_t w) {
  const size_t n = y.size();
  std::vector<double> out(n, 0.0);
  if (n == 0) return out;
  if (w < 1) w = 1;
  if (w % 2 == 0) ++w;
  const size_t half = w / 2;
  std::vector<double> window;
  for (size_t i = 0; i < n; ++i) {
    const size_t lo = i >= half ? i - half : 0;
    const size_t hi = std::min(n - 1, i + half);
    window.assign(y.begin() + lo, y.begin() + hi + 1);
    out[i] = Median(std::move(window));
  }
  return out;
}

Decomposition DecomposeRobust(const std::vector<double>& y, size_t period,
                              size_t trend_window) {
  EXPLAINIT_CHECK(period >= 2, "period must be >= 2");
  const size_t n = y.size();
  Decomposition d;
  // Periodic median profile, centred to zero mean.
  std::vector<std::vector<double>> phases(period);
  for (size_t i = 0; i < n; ++i) phases[i % period].push_back(y[i]);
  std::vector<double> profile(period, 0.0);
  double grand = 0.0;
  for (size_t k = 0; k < period; ++k) {
    profile[k] = Median(phases[k]);
    grand += profile[k];
  }
  grand /= static_cast<double>(period);
  for (double& p : profile) p -= grand;
  d.seasonal.resize(n);
  std::vector<double> deseasonalised(n);
  for (size_t i = 0; i < n; ++i) {
    d.seasonal[i] = profile[i % period];
    deseasonalised[i] = y[i] - d.seasonal[i];
  }
  d.trend = RunningMedian(deseasonalised, trend_window);
  d.residual.resize(n);
  for (size_t i = 0; i < n; ++i) {
    d.residual[i] = y[i] - d.trend[i] - d.seasonal[i];
  }
  return d;
}

double Autocorrelation(const std::vector<double>& y, size_t lag) {
  const size_t n = y.size();
  if (lag >= n || n < 2) return 0.0;
  double mean = 0.0;
  for (double v : y) mean += v;
  mean /= static_cast<double>(n);
  double num = 0.0, den = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = y[i] - mean;
    den += d * d;
    if (i + lag < n) num += d * (y[i + lag] - mean);
  }
  if (den <= 1e-24) return 0.0;
  return num / den;
}

size_t DetectPeriod(const std::vector<double>& y, size_t min_period,
                    size_t max_period, double threshold) {
  const size_t n = y.size();
  if (n < 4 || min_period < 2) return 0;
  max_period = std::min(max_period, n / 2);
  // Linearly detrend first: a ramp keeps the autocorrelation high at every
  // lag, which would masquerade as periodicity.
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double xi = static_cast<double>(i);
    sx += xi;
    sy += y[i];
    sxx += xi * xi;
    sxy += xi * y[i];
  }
  const double denom = static_cast<double>(n) * sxx - sx * sx;
  const double slope = denom > 1e-12
                           ? (static_cast<double>(n) * sxy - sx * sy) / denom
                           : 0.0;
  const double intercept = (sy - slope * sx) / static_cast<double>(n);
  std::vector<double> detrended(n);
  for (size_t i = 0; i < n; ++i) {
    detrended[i] = y[i] - (intercept + slope * static_cast<double>(i));
  }
  size_t best_lag = 0;
  double best_acf = threshold;
  for (size_t lag = min_period; lag <= max_period; ++lag) {
    const double acf = Autocorrelation(detrended, lag);
    if (acf <= best_acf) continue;
    // A true period's autocorrelation is a local peak...
    if (acf < Autocorrelation(detrended, lag - 1) ||
        acf < Autocorrelation(detrended, lag + 1)) {
      continue;
    }
    // ... and repeats at its harmonic (2x lag). Noise humps do not.
    if (2 * lag < n &&
        Autocorrelation(detrended, 2 * lag) < threshold / 2.0) {
      continue;
    }
    best_acf = acf;
    best_lag = lag;
  }
  return best_lag;
}

double Median(std::vector<double> y) {
  if (y.empty()) return 0.0;
  const size_t mid = y.size() / 2;
  std::nth_element(y.begin(), y.begin() + mid, y.end());
  double m = y[mid];
  if (y.size() % 2 == 0) {
    std::nth_element(y.begin(), y.begin() + mid - 1, y.begin() + mid);
    m = 0.5 * (m + y[mid - 1]);
  }
  return m;
}

std::vector<size_t> DetectSpikes(const std::vector<double>& y,
                                 double k_sigma) {
  std::vector<size_t> out;
  if (y.size() < 4) return out;
  const double med = Median(y);
  std::vector<double> absdev(y.size());
  for (size_t i = 0; i < y.size(); ++i) absdev[i] = std::abs(y[i] - med);
  const double mad = Median(absdev);
  // 1.4826 converts MAD to a sigma-equivalent under normality.
  const double sigma = std::max(1.4826 * mad, 1e-12);
  for (size_t i = 0; i < y.size(); ++i) {
    if (y[i] > med + k_sigma * sigma) out.push_back(i);
  }
  return out;
}

}  // namespace explainit::stats
