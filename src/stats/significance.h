// False-positive control (Appendix A.2): approximate p-values for r2 scores
// via Chebyshev's inequality on the null variance of the adjusted r2, plus
// Bonferroni and Benjamini–Hochberg corrections for scoring many hypotheses
// simultaneously.
#pragma once

#include <cstddef>
#include <vector>

namespace explainit::stats {

/// Variance of the adjusted r2 under the null with p predictors and n data
/// points: (2(p-1)/(n-p)) * (1/(n+1)) (Appendix A.1).
double NullAdjustedR2Variance(size_t n, size_t p);

/// Chebyshev upper bound on P(r2_adj >= s | H0) ~= var / s^2, clipped to 1.
/// The paper's example: n = 1440, p = 50 gives p(s) ~= 4.9e-5 / s^2.
double ChebyshevPValue(double score, size_t n, size_t p);

/// Exact upper-tail p-value from the Beta null distribution of plain r2
/// (sharper than Chebyshev when the OLS assumptions hold).
double BetaPValue(double r2, size_t n, size_t p);

/// Bonferroni correction: p_i' = min(1, m * p_i).
std::vector<double> BonferroniCorrect(const std::vector<double>& pvalues);

/// Benjamini–Hochberg step-up FDR procedure. Returns, for each input, the
/// adjusted p-value (q-value); entries with q <= alpha are "discoveries".
std::vector<double> BenjaminiHochbergAdjust(
    const std::vector<double>& pvalues);

/// Indices of discoveries at FDR level alpha under BH.
std::vector<size_t> BenjaminiHochbergDiscoveries(
    const std::vector<double>& pvalues, double alpha);

/// Effective degrees of freedom of ridge regression at penalty lambda given
/// the eigenvalues of X^T X: sum(2 d2/(d2+l) - (d2/(d2+l))^2) - 1/n terms as
/// derived in Appendix A (monotonically decreasing in lambda; -> p-1 as
/// lambda -> 0, -> 0 as lambda -> inf).
double RidgeEffectiveDof(const std::vector<double>& eigenvalues,
                         double lambda, size_t n);

}  // namespace explainit::stats
