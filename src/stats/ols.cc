#include "stats/ols.h"

#include "la/blas.h"
#include "la/cholesky.h"
#include "la/standardize.h"
#include "stats/ridge.h"

namespace explainit::stats {

double AdjustedR2(double r2, size_t n, size_t p) {
  if (n <= p) return r2;  // adjustment undefined; fall back to plain r2
  const double nn = static_cast<double>(n);
  const double pp = static_cast<double>(p);
  return 1.0 - (1.0 - r2) * (nn - 1.0) / (nn - pp);
}

Result<OlsResult> OlsFit(const la::Matrix& x, const la::Matrix& y) {
  if (x.rows() != y.rows()) {
    return Status::InvalidArgument("ols: X/Y row mismatch");
  }
  if (x.rows() <= x.cols()) {
    return Status::InvalidArgument(
        "ols: need more data points than predictors (T > p)");
  }
  la::Matrix xc = la::CenterColumns(x);
  la::Matrix yc = la::CenterColumns(y);
  la::Matrix g = la::Gram(xc);
  la::Matrix xty = la::MatTMul(xc, yc);
  EXPLAINIT_ASSIGN_OR_RETURN(la::Matrix beta, la::SolveSpd(g, xty));

  OlsResult out;
  out.coefficients = std::move(beta);
  la::Matrix fitted_c = la::MatMul(xc, out.coefficients);
  // Fitted values in original units: add back the Y column means.
  la::ColumnStats ystats = la::ComputeColumnStats(y);
  out.fitted = la::Matrix(y.rows(), y.cols());
  for (size_t r = 0; r < y.rows(); ++r) {
    for (size_t c = 0; c < y.cols(); ++c) {
      out.fitted(r, c) = fitted_c(r, c) + ystats.mean[c];
    }
  }
  out.residuals = y;
  out.residuals.SubInPlace(out.fitted);
  out.r2 = RSquared(y, out.fitted);
  out.r2_adjusted = AdjustedR2(out.r2, x.rows(), x.cols());
  return out;
}

}  // namespace explainit::stats
