// Principal component analysis via power iteration with deflation.
// Included to reproduce the §4.2 observation that PCA-based dimensionality
// reduction can hurt scoring (it models normal behaviour and discards the
// anomaly directions needed to explain the target).
#pragma once

#include "common/result.h"
#include "la/matrix.h"

namespace explainit::stats {

/// Result of a truncated PCA.
struct PcaResult {
  la::Matrix components;            // n x k, orthonormal columns
  std::vector<double> eigenvalues;  // k, descending
};

/// Computes the top-k principal components of the columns of X (T x n)
/// using power iteration with deflation on the covariance matrix.
Result<PcaResult> ComputePca(const la::Matrix& x, size_t k,
                             size_t max_iterations = 300,
                             double tolerance = 1e-9);

/// Projects X (T x n) onto the top-k components: returns X_c * components.
la::Matrix PcaTransform(const la::Matrix& x, const PcaResult& pca);

/// Eigenvalues of X^T X (all of them) via Jacobi rotations — used for the
/// ridge effective-degrees-of-freedom computation (Appendix A). Suitable
/// for the moderate p used in significance analysis.
std::vector<double> SymmetricEigenvalues(la::Matrix a,
                                         size_t max_sweeps = 30);

}  // namespace explainit::stats
