#include "stats/pca.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "la/blas.h"
#include "la/standardize.h"

namespace explainit::stats {

Result<PcaResult> ComputePca(const la::Matrix& x, size_t k,
                             size_t max_iterations, double tolerance) {
  if (x.rows() < 2 || x.cols() == 0) {
    return Status::InvalidArgument("pca: need at least 2 rows, 1 column");
  }
  k = std::min(k, x.cols());
  la::Matrix xc = la::CenterColumns(x);
  la::Matrix cov = la::Gram(xc);
  cov.ScaleInPlace(1.0 / static_cast<double>(x.rows()));
  const size_t n = cov.rows();

  PcaResult out;
  out.components = la::Matrix(n, k);
  out.eigenvalues.resize(k, 0.0);

  std::vector<double> v(n), w(n);
  uint64_t seed_state = 0x5bf03635ULL;
  for (size_t comp = 0; comp < k; ++comp) {
    // Deterministic quasi-random start.
    for (size_t i = 0; i < n; ++i) {
      seed_state = seed_state * 6364136223846793005ULL + 1442695040888963407ULL;
      v[i] = static_cast<double>((seed_state >> 33) % 1000) / 1000.0 + 1e-3;
    }
    double eigenvalue = 0.0;
    for (size_t iter = 0; iter < max_iterations; ++iter) {
      // w = cov * v
      for (size_t i = 0; i < n; ++i) {
        const double* row = cov.Row(i);
        double acc = 0.0;
        for (size_t j = 0; j < n; ++j) acc += row[j] * v[j];
        w[i] = acc;
      }
      double norm = 0.0;
      for (double val : w) norm += val * val;
      norm = std::sqrt(norm);
      if (norm <= 1e-30) break;  // null space
      double diff = 0.0;
      for (size_t i = 0; i < n; ++i) {
        const double nv = w[i] / norm;
        diff += std::abs(nv - v[i]);
        v[i] = nv;
      }
      eigenvalue = norm;
      if (diff < tolerance) break;
    }
    out.eigenvalues[comp] = eigenvalue;
    for (size_t i = 0; i < n; ++i) out.components(i, comp) = v[i];
    // Deflate: cov -= eigenvalue * v v^T.
    for (size_t i = 0; i < n; ++i) {
      double* row = cov.Row(i);
      const double vi = v[i];
      for (size_t j = 0; j < n; ++j) row[j] -= eigenvalue * vi * v[j];
    }
  }
  return out;
}

la::Matrix PcaTransform(const la::Matrix& x, const PcaResult& pca) {
  la::Matrix xc = la::CenterColumns(x);
  return la::MatMul(xc, pca.components);
}

std::vector<double> SymmetricEigenvalues(la::Matrix a, size_t max_sweeps) {
  const size_t n = a.rows();
  EXPLAINIT_CHECK(n == a.cols(), "eigenvalues need a square matrix");
  for (size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) off += a(i, j) * a(i, j);
    }
    if (off < 1e-22) break;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double app = a(p, p), aqq = a(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (size_t i = 0; i < n; ++i) {
          const double aip = a(i, p), aiq = a(i, q);
          a(i, p) = c * aip - s * aiq;
          a(i, q) = s * aip + c * aiq;
        }
        for (size_t i = 0; i < n; ++i) {
          const double api = a(p, i), aqi = a(q, i);
          a(p, i) = c * api - s * aqi;
          a(q, i) = s * api + c * aqi;
        }
      }
    }
  }
  std::vector<double> eig(n);
  for (size_t i = 0; i < n; ++i) eig[i] = a(i, i);
  std::sort(eig.begin(), eig.end(), std::greater<double>());
  return eig;
}

}  // namespace explainit::stats
