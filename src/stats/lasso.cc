#include "stats/lasso.h"

#include <algorithm>
#include <cmath>

#include "la/blas.h"
#include "la/standardize.h"
#include "stats/kfold.h"
#include "stats/ridge.h"

namespace explainit::stats {

namespace {
inline double SoftThreshold(double z, double gamma) {
  if (z > gamma) return z - gamma;
  if (z < -gamma) return z + gamma;
  return 0.0;
}

la::Matrix GatherRows(const la::Matrix& m, const std::vector<size_t>& rows) {
  la::Matrix out(rows.size(), m.cols());
  for (size_t i = 0; i < rows.size(); ++i) {
    std::copy(m.Row(rows[i]), m.Row(rows[i]) + m.cols(), out.Row(i));
  }
  return out;
}
}  // namespace

la::Matrix LassoRegression::Solve(const la::Matrix& x, const la::Matrix& y,
                                  double lambda, size_t max_iterations,
                                  double tolerance) {
  const size_t t = x.rows(), p = x.cols(), q = y.cols();
  la::Matrix beta(p, q);
  if (t == 0 || p == 0 || q == 0) return beta;
  // Column norms (squared) of X, used in the coordinate update.
  std::vector<double> col_sq(p, 0.0);
  for (size_t r = 0; r < t; ++r) {
    const double* row = x.Row(r);
    for (size_t j = 0; j < p; ++j) col_sq[j] += row[j] * row[j];
  }
  const double tt = static_cast<double>(t);
  // Per-target cyclic coordinate descent with residual maintenance.
  for (size_t c = 0; c < q; ++c) {
    std::vector<double> resid(t);
    for (size_t r = 0; r < t; ++r) resid[r] = y(r, c);
    for (size_t iter = 0; iter < max_iterations; ++iter) {
      double max_delta = 0.0;
      for (size_t j = 0; j < p; ++j) {
        if (col_sq[j] <= 1e-24) continue;
        const double old = beta(j, c);
        // rho = x_j . (resid + x_j * old) / T
        double dot = 0.0;
        for (size_t r = 0; r < t; ++r) dot += x(r, j) * resid[r];
        const double rho = dot / tt + old * col_sq[j] / tt;
        const double bnew =
            SoftThreshold(rho, lambda) / (col_sq[j] / tt);
        const double delta = bnew - old;
        if (delta != 0.0) {
          for (size_t r = 0; r < t; ++r) resid[r] -= delta * x(r, j);
          beta(j, c) = bnew;
          max_delta = std::max(max_delta, std::abs(delta));
        }
      }
      if (max_delta < tolerance) break;
    }
  }
  return beta;
}

LassoRegression::LassoRegression(LassoOptions options)
    : options_(std::move(options)) {
  EXPLAINIT_CHECK(!options_.lambdas.empty(), "empty lasso lambda grid");
}

Result<LassoCvResult> LassoRegression::FitCv(const la::Matrix& x,
                                             const la::Matrix& y) const {
  if (x.rows() != y.rows()) {
    return Status::InvalidArgument("lasso: X/Y row mismatch");
  }
  if (x.rows() < 8) {
    return Status::InvalidArgument("lasso: need at least 8 data points");
  }
  const size_t t = x.rows();
  const size_t num_lambdas = options_.lambdas.size();
  std::vector<double> r2_sum(num_lambdas, 0.0);
  const std::vector<Fold> folds = ContiguousKFold(t, options_.num_folds);
  for (const Fold& fold : folds) {
    const std::vector<size_t> train_idx = TrainIndices(fold, t);
    la::Matrix xtr = GatherRows(x, train_idx);
    la::Matrix ytr = GatherRows(y, train_idx);
    la::Matrix xval = x.SliceRows(fold.val_begin, fold.val_end);
    la::Matrix yval = y.SliceRows(fold.val_begin, fold.val_end);
    la::ColumnStats xs = la::ComputeColumnStats(xtr);
    la::ColumnStats ys = la::ComputeColumnStats(ytr);
    xtr = la::StandardizeWith(xtr, xs);
    ytr = la::StandardizeWith(ytr, ys);
    xval = la::StandardizeWith(xval, xs);
    yval = la::StandardizeWith(yval, ys);
    for (size_t li = 0; li < num_lambdas; ++li) {
      la::Matrix beta = Solve(xtr, ytr, options_.lambdas[li],
                              options_.max_iterations, options_.tolerance);
      la::Matrix pred = la::MatMul(xval, beta);
      r2_sum[li] += RSquared(yval, pred);
    }
  }
  LassoCvResult out;
  out.per_lambda_r2.resize(num_lambdas);
  size_t best = 0;
  for (size_t li = 0; li < num_lambdas; ++li) {
    out.per_lambda_r2[li] = r2_sum[li] / static_cast<double>(folds.size());
    if (out.per_lambda_r2[li] > out.per_lambda_r2[best]) best = li;
  }
  out.best_lambda = options_.lambdas[best];
  out.cv_r2 = out.per_lambda_r2[best];
  la::Matrix xs = la::Standardize(x);
  la::Matrix ys = la::Standardize(y);
  out.coefficients = Solve(xs, ys, out.best_lambda, options_.max_iterations,
                           options_.tolerance);
  for (size_t i = 0; i < out.coefficients.size(); ++i) {
    if (out.coefficients.data()[i] != 0.0) ++out.support_size;
  }
  return out;
}

}  // namespace explainit::stats
