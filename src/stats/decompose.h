// Seasonal/trend decomposition and periodicity detection — the machinery
// behind pseudocauses (§3.4, Figure 3): split Y into Ys (seasonal + trend)
// and Yr (residual), then condition on Ys to search for causes specific to
// the residual variation.
#pragma once

#include <cstddef>
#include <vector>

namespace explainit::stats {

/// Decomposition of a series into trend + seasonal + residual
/// (additive model: y = trend + seasonal + residual).
struct Decomposition {
  std::vector<double> trend;
  std::vector<double> seasonal;
  std::vector<double> residual;

  /// The pseudocause series Ys = trend + seasonal of §3.4.
  std::vector<double> Systematic() const;
};

/// Centred moving average of window `w` (w forced odd; edges use shrunken
/// windows so the output has the same length).
std::vector<double> MovingAverage(const std::vector<double>& y, size_t w);

/// Classical additive decomposition with a known period: the trend is a
/// centred moving average over one period; the seasonal component is the
/// periodic mean of the detrended series (re-centred to sum to zero).
Decomposition DecomposeAdditive(const std::vector<double>& y, size_t period);

/// Trend-only decomposition (no seasonality): trend = moving average of the
/// given window, seasonal = 0.
Decomposition DecomposeTrend(const std::vector<double>& y, size_t window);

/// Running median of window `w` (forced odd; shrunken windows at edges).
/// Unlike the moving average, transient spikes shorter than w/2 do not
/// leak into the output.
std::vector<double> RunningMedian(const std::vector<double>& y, size_t w);

/// Robust decomposition for pseudocauses (§3.4): the seasonal profile is
/// the periodic *median* and the trend is a running median of the
/// deseasonalised series, so anomalous spikes stay in the residual rather
/// than contaminating the systematic component Ys.
Decomposition DecomposeRobust(const std::vector<double>& y, size_t period,
                              size_t trend_window);

/// Sample autocorrelation at the given lag (biased estimator).
double Autocorrelation(const std::vector<double>& y, size_t lag);

/// Detects the dominant period by scanning autocorrelation peaks in
/// [min_period, max_period]. Returns 0 when no lag has autocorrelation
/// above `threshold`.
size_t DetectPeriod(const std::vector<double>& y, size_t min_period,
                    size_t max_period, double threshold = 0.3);

/// Simple spike detector: indices where y exceeds median + k * MAD-derived
/// sigma. Used by the case-study benches (Figures 5, 7, 8).
std::vector<size_t> DetectSpikes(const std::vector<double>& y,
                                 double k_sigma = 3.0);

/// Median of a series (copy; series may be unsorted).
double Median(std::vector<double> y);

}  // namespace explainit::stats
