#include "stats/pearson.h"

#include <cmath>

#include "la/blas.h"
#include "la/standardize.h"

namespace explainit::stats {

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  EXPLAINIT_CHECK(a.size() == b.size(), "correlation length mismatch");
  const size_t n = a.size();
  if (n < 2) return 0.0;
  double ma = 0.0, mb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double sab = 0.0, saa = 0.0, sbb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    sab += da * db;
    saa += da * da;
    sbb += db * db;
  }
  if (saa <= 1e-24 || sbb <= 1e-24) return 0.0;
  double r = sab / std::sqrt(saa * sbb);
  if (r > 1.0) r = 1.0;
  if (r < -1.0) r = -1.0;
  return r;
}

la::Matrix CorrelationMatrix(const la::Matrix& x, const la::Matrix& y) {
  EXPLAINIT_CHECK(x.rows() == y.rows(), "correlation rows mismatch");
  const double t = static_cast<double>(x.rows());
  la::ColumnStats xs = la::ComputeColumnStats(x);
  la::ColumnStats ys = la::ComputeColumnStats(y);
  la::Matrix xstd = la::StandardizeWith(x, xs);
  la::Matrix ystd = la::StandardizeWith(y, ys);
  la::Matrix corr = la::MatTMul(xstd, ystd);
  corr.ScaleInPlace(1.0 / t);
  // Clamp numerical overshoot; standardised constant columns give 0 already.
  for (size_t i = 0; i < corr.rows(); ++i) {
    double* row = corr.Row(i);
    for (size_t j = 0; j < corr.cols(); ++j) {
      if (row[j] > 1.0) row[j] = 1.0;
      if (row[j] < -1.0) row[j] = -1.0;
    }
  }
  return corr;
}

CorrSummary CorrelationSummary(const la::Matrix& x, const la::Matrix& y) {
  la::Matrix corr = CorrelationMatrix(x, y);
  CorrSummary s;
  if (corr.size() == 0) return s;
  double sum = 0.0;
  for (size_t i = 0; i < corr.rows(); ++i) {
    const double* row = corr.Row(i);
    for (size_t j = 0; j < corr.cols(); ++j) {
      const double a = std::abs(row[j]);
      sum += a;
      if (a > s.max_abs) s.max_abs = a;
    }
  }
  s.mean_abs = sum / static_cast<double>(corr.size());
  return s;
}

}  // namespace explainit::stats
