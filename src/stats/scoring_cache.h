// Cross-hypothesis scoring cache and per-stage scorer counters.
//
// One RankFamilies call scores hundreds of candidate families against the
// same target/condition. After §3.4 pseudocause decomposition the families
// share feature columns heavily — and every conditional score repeats the
// identical FitCv(Z, Y) regression. The ScoringCache deduplicates that
// work *by content*: values (standardized designs + Gram blocks, Cholesky
// factors, whole CV fits) are keyed on a 128-bit hash of the participating
// feature columns, so any two hypotheses whose matrices agree bytewise
// reuse one computation, whatever family they came from.
//
// Thread-safety: GetOrCompute is compute-once — the first thread to touch
// a key computes while later arrivals wait on the result and count as
// hits. All cached values are immutable once published and every producer
// is deterministic, so rankings stay byte-identical at every parallelism
// level.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "la/matrix.h"

namespace explainit::stats {

/// 128-bit content key. Built from per-column FNV-1a hashes of the raw
/// matrix bytes (HashMatrix) and mixed with scalar context (fold index,
/// lambda bits, option fingerprints) via Mixed().
struct CacheKey {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool operator==(const CacheKey& other) const = default;

  /// Derives a new key by folding a scalar into this one (order sensitive).
  CacheKey Mixed(uint64_t salt) const;
};

struct CacheKeyHash {
  size_t operator()(const CacheKey& k) const {
    return static_cast<size_t>(k.hi ^ (k.lo * 0x9E3779B97F4A7C15ULL));
  }
};

/// One pass over the matrix maintaining a running FNV-1a hash per column,
/// then mixing the column hashes (order sensitive) with the shape. Two
/// matrices collide only if every column agrees bytewise in order.
CacheKey HashMatrix(const la::Matrix& m);

/// Folds a double's bit pattern into a salt value for CacheKey::Mixed.
uint64_t SaltFromDouble(double v);

/// Wall-time accumulated per scoring stage, in nanoseconds. Shared by every
/// scorer invocation of one RankFamilies call (atomics: candidates score in
/// parallel).
struct StageCounters {
  std::atomic<int64_t> gram_ns{0};     // design build: stats + standardize + Gram
  std::atomic<int64_t> factor_ns{0};   // Cholesky factors over the lambda grid
  std::atomic<int64_t> solve_ns{0};    // triangular solves
  std::atomic<int64_t> predict_ns{0};  // validation GEMMs + fused R^2
};

/// Content-addressed, compute-once cache shared across the hypotheses of
/// one ranking call.
class ScoringCache {
 public:
  enum class Slot {
    kDesign = 0,  // standardized design + column stats + Gram blocks
    kFactor = 1,  // Cholesky factors per (design, fold, lambda)
    kFit = 2,     // whole FitCv results (the repeated conditional Z fits)
  };
  static constexpr size_t kNumSlots = 3;

  /// `byte_budget` caps resident cached bytes; once exceeded, further
  /// values are computed but not retained (never evicts — one ranking
  /// call is short-lived).
  explicit ScoringCache(size_t byte_budget = size_t{256} << 20);

  ScoringCache(const ScoringCache&) = delete;
  ScoringCache& operator=(const ScoringCache&) = delete;

  using ValuePtr = std::shared_ptr<const void>;

  /// The stored value plus its retained-size estimate.
  struct Entry {
    ValuePtr value;
    size_t bytes = 0;
  };

  /// Returns the cached value for (slot, key), computing it via `fn` on
  /// first touch. Concurrent callers of the same key block until the
  /// computing thread publishes (they count as hits). `fn` must be
  /// deterministic in the key.
  ValuePtr GetOrCompute(Slot slot, const CacheKey& key,
                        const std::function<Entry()>& fn);

  /// Typed convenience over GetOrCompute: `fn` returns shared_ptr<T>,
  /// `bytes` estimates its retained size.
  template <typename T, typename Fn>
  std::shared_ptr<const T> Get(Slot slot, const CacheKey& key, size_t bytes,
                               Fn&& fn) {
    ValuePtr v = GetOrCompute(slot, key, [&]() -> Entry {
      return Entry{std::static_pointer_cast<const void>(
                       std::shared_ptr<const T>(fn())),
                   bytes};
    });
    return std::static_pointer_cast<const T>(std::move(v));
  }

  size_t hits(Slot slot) const {
    return hits_[static_cast<size_t>(slot)].load(std::memory_order_relaxed);
  }
  size_t misses(Slot slot) const {
    return misses_[static_cast<size_t>(slot)].load(std::memory_order_relaxed);
  }
  size_t total_hits() const;
  size_t total_misses() const;
  size_t bytes_used() const {
    return bytes_used_.load(std::memory_order_relaxed);
  }

 private:
  struct Pending;

  struct MapEntry {
    ValuePtr value;                     // set once ready
    std::shared_ptr<Pending> pending;   // set while computing
  };

  const size_t byte_budget_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<CacheKey, MapEntry, CacheKeyHash> maps_[kNumSlots];
  std::atomic<size_t> bytes_used_{0};
  std::atomic<size_t> hits_[kNumSlots];
  std::atomic<size_t> misses_[kNumSlots];
};

/// Per-fit plumbing handed down from the ranking layer into
/// RidgeRegression::FitCv. Null members disable the corresponding feature
/// (standalone FitCv calls pass no context at all).
struct FitContext {
  ScoringCache* cache = nullptr;
  StageCounters* counters = nullptr;
};

/// Scope timer adding elapsed nanoseconds to `sink` (no-op when null).
class StageTimer {
 public:
  explicit StageTimer(std::atomic<int64_t>* sink);
  ~StageTimer();

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  std::atomic<int64_t>* sink_;
  int64_t start_ns_;
};

}  // namespace explainit::stats
