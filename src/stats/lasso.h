// L1-penalised regression (Lasso) by cyclic coordinate descent. §3.5: "we
// experimented with both L1 penalty (Lasso) and L2 penalty (Ridge)"; the
// paper prefers Ridge for speed, and our benchmarks reproduce that, but the
// Lasso scorer is provided for parity.
#pragma once

#include <vector>

#include "common/result.h"
#include "la/matrix.h"

namespace explainit::stats {

/// Options for the coordinate-descent Lasso solver.
struct LassoOptions {
  /// L1 penalty grid for cross-validation.
  std::vector<double> lambdas = {0.001, 0.01, 0.1};
  size_t num_folds = 5;
  size_t max_iterations = 200;
  double tolerance = 1e-6;
};

/// Result of a cross-validated Lasso fit (single- or multi-target; targets
/// are fit independently, matching scikit-learn's multi-task-free Lasso).
struct LassoCvResult {
  double best_lambda = 0.0;
  double cv_r2 = 0.0;
  std::vector<double> per_lambda_r2;
  la::Matrix coefficients;  // p x q (standardised coordinates)
  /// Number of non-zero coefficients at the selected penalty.
  size_t support_size = 0;
};

class LassoRegression {
 public:
  explicit LassoRegression(LassoOptions options = {});

  /// Cross-validated fit of Y (T x q) on X (T x p); contiguous time folds.
  Result<LassoCvResult> FitCv(const la::Matrix& x, const la::Matrix& y) const;

  /// Solves one standardised Lasso problem at a fixed penalty, returning
  /// the coefficient matrix (p x q). `lambda` scales the L1 term of
  /// (1/2T)||Y - XB||^2 + lambda ||B||_1.
  static la::Matrix Solve(const la::Matrix& x, const la::Matrix& y,
                          double lambda, size_t max_iterations = 200,
                          double tolerance = 1e-6);

 private:
  LassoOptions options_;
};

}  // namespace explainit::stats
