// Time-aware k-fold splits. §3.5: "we ensure that the validation set's time
// range does not overlap the training set's time range" — folds are
// contiguous blocks of the time axis, never shuffled.
#pragma once

#include <cstddef>
#include <vector>

namespace explainit::stats {

/// One cross-validation fold over a contiguous time axis: the validation
/// rows are [val_begin, val_end); every other row is training.
struct Fold {
  size_t val_begin = 0;
  size_t val_end = 0;
};

/// Splits `n` time-ordered rows into k contiguous validation blocks.
/// If n < 2k the split degrades gracefully to fewer folds (at least 1 with
/// a trailing validation block).
std::vector<Fold> ContiguousKFold(size_t n, size_t k);

/// Returns the training-row indices for a fold (all rows outside the block).
std::vector<size_t> TrainIndices(const Fold& fold, size_t n);

}  // namespace explainit::stats
