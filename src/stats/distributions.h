// Probability distributions for the Appendix A false-positive analysis:
// under the null, the OLS r2 statistic is Beta((p-1)/2, (n-p)/2)
// distributed; ridge RSS is chi-squared with data-dependent effective
// degrees of freedom.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace explainit::stats {

/// Natural log of the gamma function (Lanczos approximation).
double LogGamma(double x);

/// Regularised incomplete beta function I_x(a, b) via the continued
/// fraction expansion (Numerical Recipes style). Domain: x in [0,1],
/// a, b > 0.
double RegularizedIncompleteBeta(double a, double b, double x);

/// Regularised lower incomplete gamma P(a, x).
double RegularizedLowerGamma(double a, double x);

/// Beta(a, b) distribution.
class BetaDistribution {
 public:
  BetaDistribution(double a, double b);
  double Pdf(double x) const;
  double Cdf(double x) const;
  /// Upper-tail probability P(X >= x).
  double Sf(double x) const { return 1.0 - Cdf(x); }
  double Mean() const;
  double Variance() const;

 private:
  double a_;
  double b_;
  double log_norm_;  // log B(a,b)
};

/// The null distribution of the OLS r2 statistic with p predictors and n
/// data points: Beta((p-1)/2, (n-p)/2) (Appendix A.1).
BetaDistribution NullR2Distribution(size_t n, size_t p);

/// Chi-squared distribution with (possibly fractional, for ridge effective
/// df) degrees of freedom.
class ChiSquaredDistribution {
 public:
  explicit ChiSquaredDistribution(double df);
  double Cdf(double x) const;
  double Mean() const { return df_; }
  double Variance() const { return 2.0 * df_; }

 private:
  double df_;
};

/// Standard normal pdf/cdf.
double NormalPdf(double x);
double NormalCdf(double x);

/// Kolmogorov–Smirnov statistic between an empirical sample and a reference
/// CDF; used by the Figure 12 bench to check r2 ~ Beta under the null.
template <typename CdfFn>
double KolmogorovSmirnovStatistic(std::vector<double> sample, CdfFn cdf) {
  std::sort(sample.begin(), sample.end());
  const double n = static_cast<double>(sample.size());
  double d = 0.0;
  for (size_t i = 0; i < sample.size(); ++i) {
    const double f = cdf(sample[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max(d, std::max(f - lo, hi - f));
  }
  return d;
}

}  // namespace explainit::stats
