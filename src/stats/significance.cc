#include "stats/significance.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "stats/distributions.h"

namespace explainit::stats {

double NullAdjustedR2Variance(size_t n, size_t p) {
  EXPLAINIT_CHECK(n > p && p >= 1, "need n > p >= 1");
  const double nn = static_cast<double>(n);
  const double pp = static_cast<double>(p);
  return (2.0 * (pp - 1.0) / (nn - pp)) * (1.0 / (nn + 1.0));
}

double ChebyshevPValue(double score, size_t n, size_t p) {
  if (score <= 0.0) return 1.0;
  const double var = NullAdjustedR2Variance(n, p);
  return std::min(1.0, var / (score * score));
}

double BetaPValue(double r2, size_t n, size_t p) {
  if (r2 <= 0.0) return 1.0;
  if (r2 >= 1.0) return 0.0;
  return NullR2Distribution(n, p).Sf(r2);
}

std::vector<double> BonferroniCorrect(const std::vector<double>& pvalues) {
  const double m = static_cast<double>(pvalues.size());
  std::vector<double> out(pvalues.size());
  for (size_t i = 0; i < pvalues.size(); ++i) {
    out[i] = std::min(1.0, pvalues[i] * m);
  }
  return out;
}

std::vector<double> BenjaminiHochbergAdjust(
    const std::vector<double>& pvalues) {
  const size_t m = pvalues.size();
  std::vector<size_t> order(m);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return pvalues[a] < pvalues[b]; });
  std::vector<double> adjusted(m, 1.0);
  double running_min = 1.0;
  // Step-up from the largest p-value: q_(i) = min over j >= i of m p_(j)/j.
  for (size_t k = m; k-- > 0;) {
    const size_t idx = order[k];
    const double q =
        pvalues[idx] * static_cast<double>(m) / static_cast<double>(k + 1);
    running_min = std::min(running_min, std::min(1.0, q));
    adjusted[idx] = running_min;
  }
  return adjusted;
}

std::vector<size_t> BenjaminiHochbergDiscoveries(
    const std::vector<double>& pvalues, double alpha) {
  std::vector<double> q = BenjaminiHochbergAdjust(pvalues);
  std::vector<size_t> out;
  for (size_t i = 0; i < q.size(); ++i) {
    if (q[i] <= alpha) out.push_back(i);
  }
  return out;
}

double RidgeEffectiveDof(const std::vector<double>& eigenvalues, double lambda,
                         size_t n) {
  double df = 0.0;
  for (double d2 : eigenvalues) {
    if (d2 <= 0.0) continue;
    const double s = d2 / (d2 + lambda);
    df += 2.0 * s - s * s - 1.0 / static_cast<double>(n);
  }
  return std::max(0.0, df);
}

}  // namespace explainit::stats
