// Pearson product-moment correlation — the univariate scoring kernel
// (CorrMean / CorrMax in §3.5).
#pragma once

#include <vector>

#include "la/matrix.h"

namespace explainit::stats {

/// Pearson correlation of two equal-length series. Returns 0 when either
/// series is (numerically) constant — a constant metric carries no signal.
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

/// Full cross-correlation matrix between the columns of X (T x nx) and the
/// columns of Y (T x ny); the result is (nx x ny). Computed as a single
/// GEMM over standardised columns, which is the "dense arrays" fast path.
la::Matrix CorrelationMatrix(const la::Matrix& x, const la::Matrix& y);

/// Summary statistics of the absolute correlation matrix.
struct CorrSummary {
  double mean_abs = 0.0;  // CorrMean
  double max_abs = 0.0;   // CorrMax
};

/// Computes both CorrMean and CorrMax in one pass without materialising the
/// (nx x ny) matrix when not needed.
CorrSummary CorrelationSummary(const la::Matrix& x, const la::Matrix& y);

}  // namespace explainit::stats
