#include "stats/scoring_cache.h"

#include <cstring>
#include <vector>

#include "common/time_util.h"

namespace explainit::stats {

namespace {

constexpr uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001B3ULL;

inline uint64_t FnvMix(uint64_t h, uint64_t v) {
  // Byte-at-a-time FNV-1a over the 8 bytes of v.
  for (int i = 0; i < 8; ++i) {
    h = (h ^ (v & 0xFF)) * kFnvPrime;
    v >>= 8;
  }
  return h;
}

inline uint64_t DoubleBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

}  // namespace

CacheKey CacheKey::Mixed(uint64_t salt) const {
  CacheKey out;
  out.hi = FnvMix(hi ^ 0x9E3779B97F4A7C15ULL, salt);
  out.lo = FnvMix(lo + 0xD1B54A32D192ED03ULL, salt ^ 0xA24BAED4963EE407ULL);
  return out;
}

uint64_t SaltFromDouble(double v) { return DoubleBits(v); }

CacheKey HashMatrix(const la::Matrix& m) {
  const size_t rows = m.rows(), cols = m.cols();
  std::vector<uint64_t> colh(cols, kFnvOffset);
  for (size_t r = 0; r < rows; ++r) {
    const double* row = m.Row(r);
    for (size_t c = 0; c < cols; ++c) {
      colh[c] = FnvMix(colh[c], DoubleBits(row[c]));
    }
  }
  CacheKey key;
  key.hi = FnvMix(kFnvOffset, rows);
  key.lo = FnvMix(kFnvOffset ^ 0x2545F4914F6CDD1DULL, cols);
  for (size_t c = 0; c < cols; ++c) {
    key.hi = FnvMix(key.hi, colh[c]);
    key.lo = FnvMix(key.lo, colh[c] * 0xFF51AFD7ED558CCDULL + c);
  }
  return key;
}

struct ScoringCache::Pending {
  bool done = false;
};

ScoringCache::ScoringCache(size_t byte_budget) : byte_budget_(byte_budget) {
  for (size_t s = 0; s < kNumSlots; ++s) {
    hits_[s].store(0, std::memory_order_relaxed);
    misses_[s].store(0, std::memory_order_relaxed);
  }
}

ScoringCache::ValuePtr ScoringCache::GetOrCompute(
    Slot slot, const CacheKey& key, const std::function<Entry()>& fn) {
  const size_t s = static_cast<size_t>(slot);
  auto& map = maps_[s];
  std::shared_ptr<Pending> to_wait;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = map.find(key);
    if (it == map.end()) {
      // First toucher: claim the key and compute outside the lock.
      auto pending = std::make_shared<Pending>();
      map.emplace(key, MapEntry{nullptr, pending});
      lock.unlock();
      misses_[s].fetch_add(1, std::memory_order_relaxed);
      Entry entry = fn();
      lock.lock();
      auto claimed = map.find(key);
      const bool keep =
          bytes_used_.load(std::memory_order_relaxed) + entry.bytes <=
          byte_budget_;
      if (claimed != map.end()) {
        if (keep) {
          claimed->second.value = entry.value;
          bytes_used_.fetch_add(entry.bytes, std::memory_order_relaxed);
        } else {
          // Over budget: drop the claim so later callers recompute instead
          // of waiting on a value that never arrives.
          map.erase(claimed);
        }
      }
      pending->done = true;
      cv_.notify_all();
      return entry.value;
    }
    if (it->second.value != nullptr) {
      hits_[s].fetch_add(1, std::memory_order_relaxed);
      return it->second.value;
    }
    to_wait = it->second.pending;
  }
  // A peer is computing this key; wait for it to publish. Counted as a hit:
  // the work was shared even though we blocked.
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return to_wait->done; });
    auto it = map.find(key);
    if (it != map.end() && it->second.value != nullptr) {
      hits_[s].fetch_add(1, std::memory_order_relaxed);
      return it->second.value;
    }
  }
  // The computing thread could not retain the value (budget); recompute.
  misses_[s].fetch_add(1, std::memory_order_relaxed);
  return fn().value;
}

size_t ScoringCache::total_hits() const {
  size_t total = 0;
  for (size_t s = 0; s < kNumSlots; ++s)
    total += hits_[s].load(std::memory_order_relaxed);
  return total;
}

size_t ScoringCache::total_misses() const {
  size_t total = 0;
  for (size_t s = 0; s < kNumSlots; ++s)
    total += misses_[s].load(std::memory_order_relaxed);
  return total;
}

StageTimer::StageTimer(std::atomic<int64_t>* sink)
    : sink_(sink), start_ns_(sink != nullptr ? MonotonicNanos() : 0) {}

StageTimer::~StageTimer() {
  if (sink_ != nullptr) {
    sink_->fetch_add(MonotonicNanos() - start_ns_, std::memory_order_relaxed);
  }
}

}  // namespace explainit::stats
