#include "stats/distributions.h"

#include <cmath>
#include <limits>

#include "common/logging.h"

namespace explainit::stats {

double LogGamma(double x) {
  // Lanczos approximation, g = 7, n = 9.
  static const double kCoeffs[9] = {
      0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
      771.32342877765313,   -176.61502916214059, 12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula.
    return std::log(M_PI / std::sin(M_PI * x)) - LogGamma(1.0 - x);
  }
  x -= 1.0;
  double a = kCoeffs[0];
  const double t = x + 7.5;
  for (int i = 1; i < 9; ++i) a += kCoeffs[i] / (x + i);
  return 0.5 * std::log(2.0 * M_PI) + (x + 0.5) * std::log(t) - t +
         std::log(a);
}

namespace {
// Continued fraction for the incomplete beta function (NR 6.4).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEps) break;
  }
  return h;
}
}  // namespace

double RegularizedIncompleteBeta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_bt = LogGamma(a + b) - LogGamma(a) - LogGamma(b) +
                       a * std::log(x) + b * std::log(1.0 - x);
  const double bt = std::exp(ln_bt);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return bt * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - bt * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double RegularizedLowerGamma(double a, double x) {
  if (x <= 0.0) return 0.0;
  if (a <= 0.0) return 1.0;
  if (x < a + 1.0) {
    // Series representation.
    double sum = 1.0 / a;
    double term = sum;
    double ap = a;
    for (int i = 0; i < 500; ++i) {
      ap += 1.0;
      term *= x / ap;
      sum += term;
      if (std::abs(term) < std::abs(sum) * 1e-15) break;
    }
    return sum * std::exp(-x + a * std::log(x) - LogGamma(a));
  }
  // Continued fraction for the upper tail.
  constexpr double kFpMin = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < 1e-15) break;
  }
  const double q = std::exp(-x + a * std::log(x) - LogGamma(a)) * h;
  return 1.0 - q;
}

BetaDistribution::BetaDistribution(double a, double b) : a_(a), b_(b) {
  EXPLAINIT_CHECK(a > 0.0 && b > 0.0, "Beta parameters must be positive");
  log_norm_ = LogGamma(a) + LogGamma(b) - LogGamma(a + b);
}

double BetaDistribution::Pdf(double x) const {
  if (x <= 0.0 || x >= 1.0) {
    // Allow the boundary when the shape admits it.
    if (x == 0.0 && a_ < 1.0) return std::numeric_limits<double>::infinity();
    if (x == 1.0 && b_ < 1.0) return std::numeric_limits<double>::infinity();
    return 0.0;
  }
  return std::exp((a_ - 1.0) * std::log(x) + (b_ - 1.0) * std::log(1.0 - x) -
                  log_norm_);
}

double BetaDistribution::Cdf(double x) const {
  return RegularizedIncompleteBeta(a_, b_, x);
}

double BetaDistribution::Mean() const { return a_ / (a_ + b_); }

double BetaDistribution::Variance() const {
  const double s = a_ + b_;
  return a_ * b_ / (s * s * (s + 1.0));
}

BetaDistribution NullR2Distribution(size_t n, size_t p) {
  EXPLAINIT_CHECK(p >= 2 && n > p, "NullR2Distribution needs 2 <= p < n");
  return BetaDistribution((static_cast<double>(p) - 1.0) / 2.0,
                          (static_cast<double>(n) - static_cast<double>(p)) /
                              2.0);
}

ChiSquaredDistribution::ChiSquaredDistribution(double df) : df_(df) {
  EXPLAINIT_CHECK(df > 0.0, "chi-squared df must be positive");
}

double ChiSquaredDistribution::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return RegularizedLowerGamma(df_ / 2.0, x / 2.0);
}

double NormalPdf(double x) {
  return std::exp(-0.5 * x * x) / std::sqrt(2.0 * M_PI);
}

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

}  // namespace explainit::stats
