// Ordinary least squares with in-sample r2 and Wherry-adjusted r2 —
// needed for the Appendix A analysis (Figure 12) and as the exposition
// baseline for the conditional-independence proof of Appendix B.
#pragma once

#include "common/result.h"
#include "la/matrix.h"

namespace explainit::stats {

/// Result of an OLS fit of a univariate or multi-output target.
struct OlsResult {
  la::Matrix coefficients;  // p x q
  la::Matrix fitted;        // T x q
  la::Matrix residuals;     // T x q
  /// Plain in-sample r2 = 1 - RSS/TSS (column averaged).
  double r2 = 0.0;
  /// Wherry's adjustment: 1 - (1 - r2) (n - 1) / (n - p) (Appendix A).
  double r2_adjusted = 0.0;
};

/// Fits Y ~ X by ordinary least squares on centred data (an intercept is
/// handled implicitly by centring; coefficients refer to centred inputs).
/// Requires T > p; a tiny diagonal jitter guards rank deficiency.
Result<OlsResult> OlsFit(const la::Matrix& x, const la::Matrix& y);

/// Wherry's adjusted r2 given plain r2, n data points, p predictors.
double AdjustedR2(double r2, size_t n, size_t p);

}  // namespace explainit::stats
