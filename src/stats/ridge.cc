#include "stats/ridge.h"

#include <algorithm>
#include <cmath>

#include "la/blas.h"
#include "la/cholesky.h"
#include "la/standardize.h"

namespace explainit::stats {

namespace {

// Gathers the given rows of m into a new matrix.
la::Matrix GatherRows(const la::Matrix& m, const std::vector<size_t>& rows) {
  la::Matrix out(rows.size(), m.cols());
  for (size_t i = 0; i < rows.size(); ++i) {
    std::copy(m.Row(rows[i]), m.Row(rows[i]) + m.cols(), out.Row(i));
  }
  return out;
}

// Adds lambda to the diagonal of a square matrix (copy).
la::Matrix AddRidge(const la::Matrix& g, double lambda) {
  la::Matrix a = g;
  for (size_t i = 0; i < a.rows(); ++i) a(i, i) += lambda;
  return a;
}

}  // namespace

double RSquared(const la::Matrix& observed, const la::Matrix& predicted) {
  EXPLAINIT_CHECK(observed.rows() == predicted.rows() &&
                      observed.cols() == predicted.cols(),
                  "RSquared shape mismatch");
  const size_t t = observed.rows(), q = observed.cols();
  if (t == 0 || q == 0) return 0.0;
  std::vector<double> mean(q, 0.0);
  for (size_t r = 0; r < t; ++r) {
    const double* row = observed.Row(r);
    for (size_t c = 0; c < q; ++c) mean[c] += row[c];
  }
  for (double& m : mean) m /= static_cast<double>(t);
  std::vector<double> rss(q, 0.0), tss(q, 0.0);
  for (size_t r = 0; r < t; ++r) {
    const double* obs = observed.Row(r);
    const double* pred = predicted.Row(r);
    for (size_t c = 0; c < q; ++c) {
      const double e = obs[c] - pred[c];
      const double d = obs[c] - mean[c];
      rss[c] += e * e;
      tss[c] += d * d;
    }
  }
  double acc = 0.0;
  size_t used = 0;
  for (size_t c = 0; c < q; ++c) {
    if (tss[c] <= 1e-24) continue;  // constant target: no variance to explain
    acc += 1.0 - rss[c] / tss[c];
    ++used;
  }
  return used == 0 ? 0.0 : acc / static_cast<double>(used);
}

RidgeRegression::RidgeRegression(RidgeOptions options)
    : options_(std::move(options)) {
  EXPLAINIT_CHECK(!options_.lambdas.empty(), "empty lambda grid");
}

Result<la::Matrix> RidgeRegression::Solve(const la::Matrix& x,
                                          const la::Matrix& y, double lambda) {
  if (x.rows() != y.rows()) {
    return Status::InvalidArgument("ridge: X/Y row mismatch");
  }
  const size_t t = x.rows(), p = x.cols();
  if (p <= t) {
    la::Matrix g = la::Gram(x);                 // p x p
    la::Matrix xty = la::MatTMul(x, y);         // p x q
    return la::SolveSpd(AddRidge(g, lambda), xty);
  }
  // Dual form: beta = X^T (X X^T + lambda I)^{-1} Y.
  la::Matrix k = la::GramT(x);                  // t x t
  EXPLAINIT_ASSIGN_OR_RETURN(la::Matrix alpha,
                             la::SolveSpd(AddRidge(k, lambda), y));
  return la::MatTMul(x, alpha);                 // p x q
}

Result<RidgeCvResult> RidgeRegression::FitCv(const la::Matrix& x,
                                             const la::Matrix& y) const {
  if (x.rows() != y.rows()) {
    return Status::InvalidArgument("ridge: X/Y row mismatch");
  }
  if (x.rows() < 8) {
    return Status::InvalidArgument("ridge: need at least 8 data points");
  }
  if (x.cols() == 0 || y.cols() == 0) {
    return Status::InvalidArgument("ridge: empty feature or target matrix");
  }
  const size_t t = x.rows();
  const size_t num_lambdas = options_.lambdas.size();
  std::vector<double> lambda_r2_sum(num_lambdas, 0.0);

  const std::vector<Fold> folds = ContiguousKFold(t, options_.num_folds);
  for (const Fold& fold : folds) {
    const std::vector<size_t> train_idx = TrainIndices(fold, t);
    la::Matrix xtr = GatherRows(x, train_idx);
    la::Matrix ytr = GatherRows(y, train_idx);
    la::Matrix xval = x.SliceRows(fold.val_begin, fold.val_end);
    la::Matrix yval = y.SliceRows(fold.val_begin, fold.val_end);

    la::ColumnStats xstats, ystats;
    if (options_.standardize) {
      xstats = la::ComputeColumnStats(xtr);
      ystats = la::ComputeColumnStats(ytr);
      xtr = la::StandardizeWith(xtr, xstats);
      ytr = la::StandardizeWith(ytr, ystats);
      xval = la::StandardizeWith(xval, xstats);
      yval = la::StandardizeWith(yval, ystats);
    }

    const size_t ttr = xtr.rows(), p = xtr.cols();
    if (p <= ttr) {
      // Primal path: Gram and X^T Y computed once, reused for every lambda.
      la::Matrix g = la::Gram(xtr);
      la::Matrix xty = la::MatTMul(xtr, ytr);
      for (size_t li = 0; li < num_lambdas; ++li) {
        Result<la::Matrix> beta =
            la::SolveSpd(AddRidge(g, options_.lambdas[li]), xty);
        if (!beta.ok()) return beta.status();
        la::Matrix pred = la::MatMul(xval, beta.value());
        lambda_r2_sum[li] += RSquared(yval, pred);
      }
    } else {
      // Dual path: kernel matrices computed once, reused for every lambda.
      la::Matrix k = la::GramT(xtr);          // ttr x ttr
      la::Matrix kval = la::MatMulT(xval, xtr);  // tval x ttr
      for (size_t li = 0; li < num_lambdas; ++li) {
        Result<la::Matrix> alpha =
            la::SolveSpd(AddRidge(k, options_.lambdas[li]), ytr);
        if (!alpha.ok()) return alpha.status();
        la::Matrix pred = la::MatMul(kval, alpha.value());
        lambda_r2_sum[li] += RSquared(yval, pred);
      }
    }
  }

  RidgeCvResult out;
  out.per_lambda_r2.resize(num_lambdas);
  size_t best = 0;
  for (size_t li = 0; li < num_lambdas; ++li) {
    out.per_lambda_r2[li] =
        lambda_r2_sum[li] / static_cast<double>(folds.size());
    if (out.per_lambda_r2[li] > out.per_lambda_r2[best]) best = li;
  }
  out.best_lambda = options_.lambdas[best];
  out.cv_r2 = out.per_lambda_r2[best];

  // Final refit on all data at the selected penalty, for residuals.
  la::Matrix xfull = x, yfull = y;
  la::ColumnStats xstats, ystats;
  if (options_.standardize) {
    xfull = la::Standardize(x, &xstats);
    yfull = la::Standardize(y, &ystats);
  }
  EXPLAINIT_ASSIGN_OR_RETURN(out.coefficients,
                             Solve(xfull, yfull, out.best_lambda));
  la::Matrix fitted_std = la::MatMul(xfull, out.coefficients);
  // Map fitted values back to original Y units.
  out.fitted = la::Matrix(t, y.cols());
  for (size_t r = 0; r < t; ++r) {
    const double* src = fitted_std.Row(r);
    double* dst = out.fitted.Row(r);
    for (size_t c = 0; c < y.cols(); ++c) {
      dst[c] = options_.standardize
                   ? src[c] * ystats.stddev[c] + ystats.mean[c]
                   : src[c];
    }
  }
  out.residuals = y;
  out.residuals.SubInPlace(out.fitted);
  return out;
}

}  // namespace explainit::stats
