#include "stats/ridge.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "la/blas.h"
#include "la/cholesky.h"
#include "la/simd.h"
#include "la/standardize.h"

namespace explainit::stats {

namespace {

using la::Matrix;

// Gathers the given rows of m into a new matrix.
Matrix GatherRows(const Matrix& m, const std::vector<size_t>& rows) {
  Matrix out(rows.size(), m.cols());
  for (size_t i = 0; i < rows.size(); ++i) {
    std::copy(m.Row(rows[i]), m.Row(rows[i]) + m.cols(), out.Row(i));
  }
  return out;
}

// Scratch-reusing variants for the dual fold path.
void GatherRowsInto(const Matrix& m, const std::vector<size_t>& rows,
                    Matrix* out) {
  if (out->rows() != rows.size() || out->cols() != m.cols()) {
    *out = Matrix(rows.size(), m.cols());
  }
  for (size_t i = 0; i < rows.size(); ++i) {
    std::copy(m.Row(rows[i]), m.Row(rows[i]) + m.cols(), out->Row(i));
  }
}

void CopyBlockInto(const Matrix& m, size_t row_begin, size_t row_end,
                   Matrix* out) {
  const size_t n = row_end - row_begin;
  if (out->rows() != n || out->cols() != m.cols()) {
    *out = Matrix(n, m.cols());
  }
  std::copy(m.Row(row_begin), m.Row(row_begin) + n * m.cols(), out->data());
}

void StandardizeInPlace(Matrix* m, const la::ColumnStats& stats) {
  const auto& kernels = la::simd::Active();
  const size_t cols = m->cols();
  std::vector<double> inv(cols);
  for (size_t c = 0; c < cols; ++c) inv[c] = 1.0 / stats.stddev[c];
  for (size_t r = 0; r < m->rows(); ++r) {
    kernels.sub_scale(m->Row(r), stats.mean.data(), inv.data(), m->Row(r),
                      cols);
  }
}

// Adds lambda to the diagonal of a square matrix (copy).
Matrix AddRidge(const Matrix& g, double lambda) {
  Matrix a = g;
  for (size_t i = 0; i < a.rows(); ++i) a(i, i) += lambda;
  return a;
}

// --------------------------------------------------------------------------
// The per-matrix "design": everything FitCv needs about one side of a
// regression that depends only on the matrix content and the fold layout.
// The per-fold *training* Gram, mean and variance are never computed over
// gathered rows; they derive from the full-data quantities by subtraction:
//
//   sum_train = sum_full - sum_val
//   G~_train  = G~_full  - G~_val            (G~ = Gram of full-mean-centered)
//   train-centered Gram = G~_train - ttr * delta delta^T,
//       delta = train mean in centered coordinates
//   train variance[c]   = G~_train[c][c]/ttr - delta[c]^2
//
// so one full pass plus k small validation-block passes replace k
// near-full-size gathers, standardisations and Gram products. Designs are
// content-addressed in the ScoringCache and shared across hypotheses.
// --------------------------------------------------------------------------

struct FoldPlan {
  Fold fold;
  size_t ttr = 0;
  std::vector<double> val_mean;  // mean of centered rows over the val block
  std::vector<double> delta;     // train mean, centered coords (0 w/o stdize)
  std::vector<double> inv_sd;    // 1/sd of training columns (1 w/o stdize)
};

struct RidgeDesign {
  size_t t = 0;
  size_t p = 0;
  bool standardize = true;
  Matrix centered;                  // X - full mean (plain copy w/o stdize)
  std::vector<double> full_mean;    // zeros w/o standardize
  std::vector<double> full_sd;      // guarded stddev; ones w/o standardize
  std::vector<double> full_inv_sd;  // 1 / full_sd
  Matrix gram_full;                 // centered^T centered
  std::vector<Matrix> gram_val;     // per fold, over the contiguous val block
  std::vector<FoldPlan> folds;
};

size_t DesignBytes(size_t t, size_t p, size_t k) {
  return (t * p + (k + 1) * p * p + 5 * (k + 1) * p) * sizeof(double);
}

std::shared_ptr<RidgeDesign> BuildDesign(const Matrix& m, bool standardize,
                                         size_t num_folds) {
  auto d = std::make_shared<RidgeDesign>();
  const size_t t = m.rows(), p = m.cols();
  d->t = t;
  d->p = p;
  d->standardize = standardize;
  d->full_mean.assign(p, 0.0);
  d->full_sd.assign(p, 1.0);
  d->full_inv_sd.assign(p, 1.0);
  const auto& kernels = la::simd::Active();
  if (standardize) {
    la::ColumnStats stats = la::ComputeColumnStats(m);
    d->full_mean = stats.mean;
    d->full_sd = stats.stddev;
    for (size_t c = 0; c < p; ++c) d->full_inv_sd[c] = 1.0 / d->full_sd[c];
    d->centered = Matrix(t, p);
    const std::vector<double> ones(p, 1.0);
    for (size_t r = 0; r < t; ++r) {
      kernels.sub_scale(m.Row(r), d->full_mean.data(), ones.data(),
                        d->centered.Row(r), p);
    }
  } else {
    d->centered = m;
  }
  d->gram_full = la::Gram(d->centered);
  // Column sums of the centered matrix: near zero when standardising, but
  // carried exactly so the train-mean identity holds to rounding.
  std::vector<double> sum_full(p, 0.0);
  for (size_t r = 0; r < t; ++r) {
    kernels.add(d->centered.Row(r), sum_full.data(), p);
  }

  const std::vector<Fold> folds = ContiguousKFold(t, num_folds);
  d->folds.resize(folds.size());
  d->gram_val.resize(folds.size());
  for (size_t f = 0; f < folds.size(); ++f) {
    FoldPlan& plan = d->folds[f];
    plan.fold = folds[f];
    const size_t b = folds[f].val_begin, e = folds[f].val_end;
    const size_t nval = e - b;
    plan.ttr = t - nval;
    la::GramInto(d->centered.Row(b), nval, p, p, &d->gram_val[f]);
    std::vector<double> sum_val(p, 0.0);
    for (size_t r = b; r < e; ++r) {
      kernels.add(d->centered.Row(r), sum_val.data(), p);
    }
    plan.val_mean = sum_val;
    if (nval > 0) {
      kernels.scale(plan.val_mean.data(), 1.0 / static_cast<double>(nval), p);
    }
    plan.delta.assign(p, 0.0);
    plan.inv_sd.assign(p, 1.0);
    if (standardize && plan.ttr > 0) {
      const double ttr_d = static_cast<double>(plan.ttr);
      const Matrix& gv = d->gram_val[f];
      for (size_t c = 0; c < p; ++c) {
        plan.delta[c] = (sum_full[c] - sum_val[c]) / ttr_d;
        const double gtr = d->gram_full(c, c) - gv(c, c);
        const double var =
            std::max(0.0, gtr / ttr_d - plan.delta[c] * plan.delta[c]);
        const double sd = std::sqrt(var);
        plan.inv_sd[c] = sd > 1e-12 ? 1.0 / sd : 1.0;
      }
    }
  }
  return d;
}

std::shared_ptr<const RidgeDesign> GetDesign(const Matrix& m,
                                             const RidgeOptions& opt,
                                             const FitContext* ctx,
                                             CacheKey* key_out,
                                             bool* have_key) {
  ScoringCache* cache = ctx != nullptr ? ctx->cache : nullptr;
  if (cache == nullptr) {
    *have_key = false;
    return BuildDesign(m, opt.standardize, opt.num_folds);
  }
  const CacheKey key = HashMatrix(m)
                           .Mixed(opt.standardize ? 1 : 2)
                           .Mixed(opt.num_folds);
  *key_out = key;
  *have_key = true;
  return cache->Get<RidgeDesign>(
      ScoringCache::Slot::kDesign, key,
      DesignBytes(m.rows(), m.cols(), opt.num_folds),
      [&] { return BuildDesign(m, opt.standardize, opt.num_folds); });
}

// Cholesky factors carry their (rare) failure so they can live in the
// cache: a factorisation that failed for one hypothesis fails identically
// for every other one touching the same (design, fold, lambda).
struct FactorValue {
  Result<Matrix> result;
};

// Salt distinguishing refit factors from fold factors in the cache key.
constexpr uint64_t kRefitTag = 0xF1F2F3F4F5F6F7F8ULL;

std::shared_ptr<const FactorValue> GetFactor(const Matrix& g_std,
                                             double lambda,
                                             const CacheKey& design_key,
                                             bool have_key, uint64_t fold_tag,
                                             ScoringCache* cache) {
  auto compute = [&] {
    return std::make_shared<FactorValue>(
        FactorValue{la::FactorSpdJittered(AddRidge(g_std, lambda))});
  };
  if (cache == nullptr || !have_key) return compute();
  const CacheKey key =
      design_key.Mixed(fold_tag).Mixed(SaltFromDouble(lambda));
  return cache->Get<FactorValue>(ScoringCache::Slot::kFactor, key,
                                 g_std.rows() * g_std.rows() *
                                     sizeof(double),
                                 compute);
}

}  // namespace

double RSquared(const la::Matrix& observed, const la::Matrix& predicted) {
  EXPLAINIT_CHECK(observed.rows() == predicted.rows() &&
                      observed.cols() == predicted.cols(),
                  "RSquared shape mismatch");
  const size_t t = observed.rows(), q = observed.cols();
  if (t == 0 || q == 0) return 0.0;
  std::vector<double> mean(q, 0.0);
  for (size_t r = 0; r < t; ++r) {
    const double* row = observed.Row(r);
    for (size_t c = 0; c < q; ++c) mean[c] += row[c];
  }
  for (double& m : mean) m /= static_cast<double>(t);
  std::vector<double> rss(q, 0.0), tss(q, 0.0);
  for (size_t r = 0; r < t; ++r) {
    const double* obs = observed.Row(r);
    const double* pred = predicted.Row(r);
    for (size_t c = 0; c < q; ++c) {
      const double e = obs[c] - pred[c];
      const double d = obs[c] - mean[c];
      rss[c] += e * e;
      tss[c] += d * d;
    }
  }
  double acc = 0.0;
  size_t used = 0;
  for (size_t c = 0; c < q; ++c) {
    if (tss[c] <= 1e-24) continue;  // constant target: no variance to explain
    acc += 1.0 - rss[c] / tss[c];
    ++used;
  }
  return used == 0 ? 0.0 : acc / static_cast<double>(used);
}

RidgeRegression::RidgeRegression(RidgeOptions options)
    : options_(std::move(options)) {
  EXPLAINIT_CHECK(!options_.lambdas.empty(), "empty lambda grid");
}

Result<la::Matrix> RidgeRegression::Solve(const la::Matrix& x,
                                          const la::Matrix& y, double lambda) {
  if (x.rows() != y.rows()) {
    return Status::InvalidArgument("ridge: X/Y row mismatch");
  }
  const size_t t = x.rows(), p = x.cols();
  if (p <= t) {
    la::Matrix g = la::Gram(x);                 // p x p
    la::Matrix xty = la::MatTMul(x, y);         // p x q
    return la::SolveSpd(AddRidge(g, lambda), xty);
  }
  // Dual form: beta = X^T (X X^T + lambda I)^{-1} Y.
  la::Matrix k = la::GramT(x);                  // t x t
  EXPLAINIT_ASSIGN_OR_RETURN(la::Matrix alpha,
                             la::SolveSpd(AddRidge(k, lambda), y));
  return la::MatTMul(x, alpha);                 // p x q
}

Result<RidgeCvResult> RidgeRegression::FitCv(const la::Matrix& x,
                                             const la::Matrix& y,
                                             const FitContext* ctx) const {
  if (x.rows() != y.rows()) {
    return Status::InvalidArgument("ridge: X/Y row mismatch");
  }
  if (x.rows() < 8) {
    return Status::InvalidArgument("ridge: need at least 8 data points");
  }
  if (x.cols() == 0 || y.cols() == 0) {
    return Status::InvalidArgument("ridge: empty feature or target matrix");
  }
  const size_t t = x.rows(), p = x.cols(), q = y.cols();
  const size_t num_lambdas = options_.lambdas.size();
  StageCounters* counters = ctx != nullptr ? ctx->counters : nullptr;
  ScoringCache* cache = ctx != nullptr ? ctx->cache : nullptr;
  std::atomic<int64_t>* gram_sink = counters ? &counters->gram_ns : nullptr;
  std::atomic<int64_t>* factor_sink =
      counters ? &counters->factor_ns : nullptr;
  std::atomic<int64_t>* solve_sink = counters ? &counters->solve_ns : nullptr;
  std::atomic<int64_t>* predict_sink =
      counters ? &counters->predict_ns : nullptr;

  std::shared_ptr<const RidgeDesign> xd, yd;
  CacheKey xkey{};
  bool have_xkey = false;
  Matrix c_full;  // centered X^T Y over the full data (p x q)
  {
    StageTimer timer(gram_sink);
    xd = GetDesign(x, options_, ctx, &xkey, &have_xkey);
    CacheKey ykey{};
    bool have_ykey = false;
    yd = GetDesign(y, options_, ctx, &ykey, &have_ykey);
    la::CrossInto(xd->centered.data(), t, p, p, yd->centered.data(), q, q,
                  &c_full);
  }

  std::vector<double> lambda_r2_sum(num_lambdas, 0.0);

  // Fold scratch, reused across the loop (no per-fold allocations on the
  // primal path once shapes settle).
  Matrix g_std, c_std, c_val, ball, pred_all, beta, solve_scratch;
  std::vector<double> offsets(num_lambdas * q, 0.0);
  std::vector<double> rss(num_lambdas * q, 0.0);
  std::vector<double> tss(q, 0.0);
  std::vector<double> obs(q, 0.0), mean_obs(q, 0.0);
  // Dual-path scratch.
  Matrix xtr_s, ytr_s, xval_s, yval_s, alpha_all, alpha;

  const size_t num_folds = xd->folds.size();
  for (size_t f = 0; f < num_folds; ++f) {
    const FoldPlan& fx = xd->folds[f];
    const FoldPlan& fy = yd->folds[f];
    const size_t b = fx.fold.val_begin, e = fx.fold.val_end;
    const size_t nval = e - b, ttr = fx.ttr;
    if (nval == 0 || ttr == 0) continue;

    if (p <= ttr) {
      // ---- Primal path: everything from the subtraction identities. ----
      {
        StageTimer timer(gram_sink);
        const Matrix& gv = xd->gram_val[f];
        if (g_std.rows() != p || g_std.cols() != p) g_std = Matrix(p, p);
        const double ttr_d = static_cast<double>(ttr);
        for (size_t i = 0; i < p; ++i) {
          const double* gf = xd->gram_full.Row(i);
          const double* gvr = gv.Row(i);
          double* out = g_std.Row(i);
          const double di = fx.delta[i], si = fx.inv_sd[i];
          for (size_t j = 0; j < p; ++j) {
            out[j] = (gf[j] - gvr[j] - ttr_d * di * fx.delta[j]) * si *
                     fx.inv_sd[j];
          }
        }
        la::CrossInto(xd->centered.Row(b), nval, p, p, yd->centered.Row(b),
                      q, q, &c_val);
        if (c_std.rows() != p || c_std.cols() != q) c_std = Matrix(p, q);
        for (size_t i = 0; i < p; ++i) {
          const double* cf = c_full.Row(i);
          const double* cv = c_val.Row(i);
          double* out = c_std.Row(i);
          const double di = fx.delta[i], si = fx.inv_sd[i];
          for (size_t j = 0; j < q; ++j) {
            out[j] = (cf[j] - cv[j] - ttr_d * di * fy.delta[j]) * si *
                     fy.inv_sd[j];
          }
        }
      }
      // Solve the whole lambda grid, stacking the rescaled coefficient
      // panels so prediction is one GEMM over the validation block.
      if (ball.rows() != p || ball.cols() != q * num_lambdas) {
        ball = Matrix(p, q * num_lambdas);
      }
      for (size_t li = 0; li < num_lambdas; ++li) {
        std::shared_ptr<const FactorValue> fv;
        {
          StageTimer timer(factor_sink);
          fv = GetFactor(g_std, options_.lambdas[li], xkey, have_xkey, f,
                         cache);
        }
        if (!fv->result.ok()) return fv->result.status();
        {
          StageTimer timer(solve_sink);
          la::CholeskySolveInto(fv->result.value(), c_std, &beta,
                                &solve_scratch);
        }
        // beta is in per-fold standardized coordinates; fold the feature
        // scaling into the stacked panel so prediction reads the centered
        // data directly, and precompute the train-mean offsets.
        for (size_t j = 0; j < q; ++j) offsets[li * q + j] = 0.0;
        for (size_t c = 0; c < p; ++c) {
          const double scale = fx.inv_sd[c];
          const double dc = fx.delta[c];
          const double* brow = beta.Row(c);
          double* dst = ball.Row(c) + li * q;
          for (size_t j = 0; j < q; ++j) {
            const double bprime = brow[j] * scale;
            dst[j] = bprime;
            offsets[li * q + j] += dc * bprime;
          }
        }
      }
      {
        StageTimer timer(predict_sink);
        la::MatMulInto(xd->centered.Row(b), nval, p, p, ball.data(),
                       q * num_lambdas, q * num_lambdas, &pred_all);
        // Fused prediction + r2: one pass over the validation rows
        // accumulates RSS for every lambda and TSS once, with the observed
        // mean recovered analytically from the fold plan.
        for (size_t j = 0; j < q; ++j) {
          mean_obs[j] = (fy.val_mean[j] - fy.delta[j]) * fy.inv_sd[j];
          tss[j] = 0.0;
        }
        std::fill(rss.begin(), rss.end(), 0.0);
        for (size_t r = 0; r < nval; ++r) {
          const double* yrow = yd->centered.Row(b + r);
          const double* prow = pred_all.Row(r);
          for (size_t j = 0; j < q; ++j) {
            obs[j] = (yrow[j] - fy.delta[j]) * fy.inv_sd[j];
            const double d = obs[j] - mean_obs[j];
            tss[j] += d * d;
          }
          for (size_t li = 0; li < num_lambdas; ++li) {
            const double* pl = prow + li * q;
            const double* ol = offsets.data() + li * q;
            double* rl = rss.data() + li * q;
            for (size_t j = 0; j < q; ++j) {
              const double err = obs[j] - (pl[j] - ol[j]);
              rl[j] += err * err;
            }
          }
        }
        for (size_t li = 0; li < num_lambdas; ++li) {
          double acc = 0.0;
          size_t used = 0;
          for (size_t j = 0; j < q; ++j) {
            if (tss[j] <= 1e-24) continue;
            acc += 1.0 - rss[li * q + j] / tss[j];
            ++used;
          }
          lambda_r2_sum[li] +=
              used == 0 ? 0.0 : acc / static_cast<double>(used);
        }
      }
    } else {
      // ---- Dual path (p > ttr): kernel solves over gathered rows. Rare
      // (only when features outnumber training points); scratch matrices
      // are reused but kernel products still allocate. ----
      Matrix kmat, kval;
      {
        StageTimer timer(gram_sink);
        const std::vector<size_t> train_idx = TrainIndices(fx.fold, t);
        GatherRowsInto(x, train_idx, &xtr_s);
        GatherRowsInto(y, train_idx, &ytr_s);
        CopyBlockInto(x, b, e, &xval_s);
        CopyBlockInto(y, b, e, &yval_s);
        if (options_.standardize) {
          const la::ColumnStats xstats = la::ComputeColumnStats(xtr_s);
          const la::ColumnStats ystats = la::ComputeColumnStats(ytr_s);
          StandardizeInPlace(&xtr_s, xstats);
          StandardizeInPlace(&ytr_s, ystats);
          StandardizeInPlace(&xval_s, xstats);
          StandardizeInPlace(&yval_s, ystats);
        }
        kmat = la::GramT(xtr_s);           // ttr x ttr
        kval = la::MatMulT(xval_s, xtr_s); // nval x ttr
      }
      if (alpha_all.rows() != ttr || alpha_all.cols() != q * num_lambdas) {
        alpha_all = Matrix(ttr, q * num_lambdas);
      }
      for (size_t li = 0; li < num_lambdas; ++li) {
        Result<Matrix> lfac = [&] {
          StageTimer timer(factor_sink);
          return la::FactorSpdJittered(AddRidge(kmat, options_.lambdas[li]));
        }();
        if (!lfac.ok()) return lfac.status();
        {
          StageTimer timer(solve_sink);
          la::CholeskySolveInto(lfac.value(), ytr_s, &alpha, &solve_scratch);
        }
        for (size_t r = 0; r < ttr; ++r) {
          std::copy(alpha.Row(r), alpha.Row(r) + q,
                    alpha_all.Row(r) + li * q);
        }
      }
      {
        StageTimer timer(predict_sink);
        la::MatMulInto(kval.data(), nval, ttr, ttr, alpha_all.data(),
                       q * num_lambdas, q * num_lambdas, &pred_all);
        for (size_t j = 0; j < q; ++j) {
          mean_obs[j] = 0.0;
          tss[j] = 0.0;
        }
        for (size_t r = 0; r < nval; ++r) {
          const double* yrow = yval_s.Row(r);
          for (size_t j = 0; j < q; ++j) mean_obs[j] += yrow[j];
        }
        for (size_t j = 0; j < q; ++j) {
          mean_obs[j] /= static_cast<double>(nval);
        }
        std::fill(rss.begin(), rss.end(), 0.0);
        for (size_t r = 0; r < nval; ++r) {
          const double* yrow = yval_s.Row(r);
          const double* prow = pred_all.Row(r);
          for (size_t j = 0; j < q; ++j) {
            const double d = yrow[j] - mean_obs[j];
            tss[j] += d * d;
          }
          for (size_t li = 0; li < num_lambdas; ++li) {
            const double* pl = prow + li * q;
            double* rl = rss.data() + li * q;
            for (size_t j = 0; j < q; ++j) {
              const double err = yrow[j] - pl[j];
              rl[j] += err * err;
            }
          }
        }
        for (size_t li = 0; li < num_lambdas; ++li) {
          double acc = 0.0;
          size_t used = 0;
          for (size_t j = 0; j < q; ++j) {
            if (tss[j] <= 1e-24) continue;
            acc += 1.0 - rss[li * q + j] / tss[j];
            ++used;
          }
          lambda_r2_sum[li] +=
              used == 0 ? 0.0 : acc / static_cast<double>(used);
        }
      }
    }
  }

  RidgeCvResult out;
  out.per_lambda_r2.resize(num_lambdas);
  size_t best = 0;
  for (size_t li = 0; li < num_lambdas; ++li) {
    out.per_lambda_r2[li] =
        lambda_r2_sum[li] / static_cast<double>(num_folds);
    if (out.per_lambda_r2[li] > out.per_lambda_r2[best]) best = li;
  }
  out.best_lambda = options_.lambdas[best];
  out.cv_r2 = out.per_lambda_r2[best];

  // ---- Final refit on all data at the selected penalty. The full-data
  // Gram, cross product and column stats already live in the designs: the
  // standardized system is a rescale, not a recomputation. ----
  Matrix fitted_std;
  if (p <= t) {
    Matrix g_fstd(p, p), c_fstd(p, q);
    {
      StageTimer timer(gram_sink);
      for (size_t i = 0; i < p; ++i) {
        const double* gf = xd->gram_full.Row(i);
        double* out_row = g_fstd.Row(i);
        const double si = xd->full_inv_sd[i];
        for (size_t j = 0; j < p; ++j) {
          out_row[j] = gf[j] * si * xd->full_inv_sd[j];
        }
      }
      for (size_t i = 0; i < p; ++i) {
        const double* cf = c_full.Row(i);
        double* out_row = c_fstd.Row(i);
        const double si = xd->full_inv_sd[i];
        for (size_t j = 0; j < q; ++j) {
          out_row[j] = cf[j] * si * yd->full_inv_sd[j];
        }
      }
    }
    std::shared_ptr<const FactorValue> fv;
    {
      StageTimer timer(factor_sink);
      fv = GetFactor(g_fstd, out.best_lambda, xkey, have_xkey, kRefitTag,
                     cache);
    }
    if (!fv->result.ok()) return fv->result.status();
    {
      StageTimer timer(solve_sink);
      la::CholeskySolveInto(fv->result.value(), c_fstd, &out.coefficients,
                            &solve_scratch);
    }
    {
      StageTimer timer(predict_sink);
      // fitted_std = (X~ Dx^-1) B = X~ (Dx^-1 B): fold the scaling into
      // the coefficients and predict straight off the centered data.
      Matrix scaled = out.coefficients;
      for (size_t c = 0; c < p; ++c) {
        la::simd::Active().scale(scaled.Row(c), xd->full_inv_sd[c], q);
      }
      la::MatMulInto(xd->centered.data(), t, p, p, scaled.data(), q, q,
                     &fitted_std);
    }
  } else {
    // Dual refit: the standardized full matrices are a rescale of the
    // centered designs.
    Matrix xf(t, p), yf(t, q);
    Matrix kfull;
    {
      StageTimer timer(gram_sink);
      const std::vector<double> zeros_p(p, 0.0), zeros_q(q, 0.0);
      const auto& kernels = la::simd::Active();
      for (size_t r = 0; r < t; ++r) {
        kernels.sub_scale(xd->centered.Row(r), zeros_p.data(),
                          xd->full_inv_sd.data(), xf.Row(r), p);
        kernels.sub_scale(yd->centered.Row(r), zeros_q.data(),
                          yd->full_inv_sd.data(), yf.Row(r), q);
      }
      kfull = la::GramT(xf);  // t x t
    }
    Result<Matrix> lfac = [&] {
      StageTimer timer(factor_sink);
      return la::FactorSpdJittered(AddRidge(kfull, out.best_lambda));
    }();
    if (!lfac.ok()) return lfac.status();
    Matrix alpha_full;
    {
      StageTimer timer(solve_sink);
      la::CholeskySolveInto(lfac.value(), yf, &alpha_full, &solve_scratch);
    }
    {
      StageTimer timer(predict_sink);
      out.coefficients = la::MatTMul(xf, alpha_full);       // p x q
      la::MatMulInto(kfull.data(), t, t, t, alpha_full.data(), q, q,
                     &fitted_std);
    }
  }

  // Map fitted values back to original Y units.
  out.fitted = Matrix(t, q);
  for (size_t r = 0; r < t; ++r) {
    const double* src = fitted_std.Row(r);
    double* dst = out.fitted.Row(r);
    for (size_t c = 0; c < q; ++c) {
      dst[c] = options_.standardize
                   ? src[c] * yd->full_sd[c] + yd->full_mean[c]
                   : src[c];
    }
  }
  out.residuals = y;
  out.residuals.SubInPlace(out.fitted);
  return out;
}

}  // namespace explainit::stats
