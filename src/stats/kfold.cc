#include "stats/kfold.h"

#include <algorithm>

namespace explainit::stats {

std::vector<Fold> ContiguousKFold(size_t n, size_t k) {
  std::vector<Fold> folds;
  if (n == 0) return folds;
  k = std::max<size_t>(1, k);
  if (n < 2 * k) {
    // Too few points for the requested fold count: a single trailing
    // validation block of ~25% keeps train/validation disjoint in time.
    const size_t val = std::max<size_t>(1, n / 4);
    folds.push_back(Fold{n - val, n});
    return folds;
  }
  const size_t base = n / k;
  size_t rem = n % k;
  size_t begin = 0;
  for (size_t i = 0; i < k; ++i) {
    size_t len = base + (i < rem ? 1 : 0);
    folds.push_back(Fold{begin, begin + len});
    begin += len;
  }
  return folds;
}

std::vector<size_t> TrainIndices(const Fold& fold, size_t n) {
  std::vector<size_t> idx;
  idx.reserve(n - (fold.val_end - fold.val_begin));
  for (size_t i = 0; i < fold.val_begin; ++i) idx.push_back(i);
  for (size_t i = fold.val_end; i < n; ++i) idx.push_back(i);
  return idx;
}

}  // namespace explainit::stats
