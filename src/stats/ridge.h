// Penalised (L2 / Ridge) multi-output linear regression with time-aware
// k-fold cross-validation and a grid search over the penalty — the joint
// scoring engine of §3.5.
//
// Cost model (paper §4.3, Table 2): per regression the dominant term is
// O(ny * min(T * nx^2, T^2 * nx)); the implementation switches between the
// primal normal equations (nx <= T_train) and the dual/kernel form
// (nx > T_train) to realise the min(). The Gram matrix is formed once per
// fold and reused across the whole lambda grid.
#pragma once

#include <vector>

#include "common/result.h"
#include "la/matrix.h"
#include "stats/kfold.h"
#include "stats/scoring_cache.h"

namespace explainit::stats {

/// Options for cross-validated ridge regression.
struct RidgeOptions {
  /// Penalty grid; the paper grid-searches over L ~ 3-5 values.
  std::vector<double> lambdas = {0.1, 10.0, 1000.0};
  /// k in k-fold cross-validation (paper: k = 5), contiguous time blocks.
  size_t num_folds = 5;
  /// Standardise X and Y per fold using training-set statistics (no
  /// leakage of validation data into scaling).
  bool standardize = true;
};

/// Result of a cross-validated fit.
struct RidgeCvResult {
  /// Penalty selected by cross-validation (max mean validation r2).
  double best_lambda = 0.0;
  /// Mean out-of-sample r2 at the best lambda. This is the paper's score:
  /// an estimate of variance explained on unseen data, which behaves like
  /// the adjusted r2 (Appendix A). May be negative when X predicts worse
  /// than the validation mean; callers clip to [0, 1] for ranking.
  double cv_r2 = 0.0;
  /// Mean validation r2 per grid entry (parallel to options.lambdas).
  std::vector<double> per_lambda_r2;
  /// Coefficients (p x q) of a final fit on all data at best_lambda, in
  /// standardised coordinates.
  la::Matrix coefficients;
  /// Fitted values on the full data, in original Y units (T x q).
  la::Matrix fitted;
  /// Residuals Y - fitted, in original Y units (T x q). These are the
  /// R_{Y;X} inputs of the conditional procedure (§3.5, Appendix B).
  la::Matrix residuals;
};

/// Cross-validated multi-output ridge regression.
class RidgeRegression {
 public:
  explicit RidgeRegression(RidgeOptions options = {});

  /// Fits Y (T x q) on X (T x p) with k-fold CV over the lambda grid and a
  /// final full-data refit at the selected penalty.
  ///
  /// The per-fold training Gram/cross-product blocks are derived from one
  /// full-data pass via the centered-Gram subtraction identity (train =
  /// full - validation - mean correction), so no per-fold row gathering or
  /// re-standardisation happens on the primal path, lambda-grid solves
  /// batch into one validation GEMM per fold, and the final refit reuses
  /// the full-data Gram instead of recomputing it.
  ///
  /// `ctx` (optional) plugs in the cross-hypothesis ScoringCache — designs
  /// and Cholesky factors are then shared content-addressed across FitCv
  /// calls — and the per-stage nanosecond counters.
  ///
  /// Fails with InvalidArgument on shape mismatch or fewer than 8 rows.
  Result<RidgeCvResult> FitCv(const la::Matrix& x, const la::Matrix& y,
                              const FitContext* ctx = nullptr) const;

  /// Single ridge solve at a fixed penalty on given (already prepared)
  /// data; returns the coefficient matrix (p x q). Exposed for tests and
  /// for the null-distribution experiments (Figure 13).
  static Result<la::Matrix> Solve(const la::Matrix& x, const la::Matrix& y,
                                  double lambda);

  const RidgeOptions& options() const { return options_; }

 private:
  RidgeOptions options_;
};

/// r2 = 1 - RSS/TSS of predictions vs observations, column-averaged.
/// TSS is measured around the observation mean (per column). Columns whose
/// observations are constant are skipped; returns 0 if all are.
double RSquared(const la::Matrix& observed, const la::Matrix& predicted);

}  // namespace explainit::stats
