#include "la/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"

namespace explainit::la::simd {

namespace {

// ---------------------------------------------------------------------------
// Scalar kernels. The GEMM picks a loop order per operand layout so the
// innermost loop always streams contiguously over at least one operand —
// these mirror the historical MatMul/MatTMul/MatMulT shapes, minus the
// zero-skip branches.
// ---------------------------------------------------------------------------

// A row-major (no trans), B row-major: saxpy over rows of B.
void GemmScalarNN(size_t m, size_t n, size_t k, const GemmOperand& a,
                  const GemmOperand& b, double* c, size_t ldc,
                  bool upper_only) {
  constexpr size_t kMc = 64, kKc = 256;
  for (size_t ib = 0; ib < m; ib += kMc) {
    const size_t ie = ib + kMc < m ? ib + kMc : m;
    for (size_t pb = 0; pb < k; pb += kKc) {
      const size_t pe = pb + kKc < k ? pb + kKc : k;
      for (size_t i = ib; i < ie; ++i) {
        const double* arow = a.data + i * a.ld;
        double* crow = c + i * ldc;
        const size_t j0 = upper_only ? i : 0;
        for (size_t p = pb; p < pe; ++p) {
          const double av = arow[p];
          const double* brow = b.data + p * b.ld;
          for (size_t j = j0; j < n; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

// A transposed view over a row-major buffer (k x m), B row-major: rank-1
// updates streaming rows of both buffers.
void GemmScalarTN(size_t m, size_t n, size_t k, const GemmOperand& a,
                  const GemmOperand& b, double* c, size_t ldc,
                  bool upper_only) {
  for (size_t p = 0; p < k; ++p) {
    const double* arow = a.data + p * a.ld;  // a.At(i, p) = arow[i]
    const double* brow = b.data + p * b.ld;
    for (size_t i = 0; i < m; ++i) {
      const double av = arow[i];
      double* crow = c + i * ldc;
      const size_t j0 = upper_only ? i : 0;
      for (size_t j = j0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

// B transposed view (n x k buffer): dot products over contiguous rows.
void GemmScalarXT(size_t m, size_t n, size_t k, const GemmOperand& a,
                  const GemmOperand& b, double* c, size_t ldc,
                  bool upper_only) {
  for (size_t i = 0; i < m; ++i) {
    double* crow = c + i * ldc;
    const size_t j0 = upper_only ? i : 0;
    for (size_t j = j0; j < n; ++j) {
      const double* bj = b.data + j * b.ld;  // b.At(p, j) = bj[p]
      double acc = 0.0;
      if (!a.trans) {
        const double* arow = a.data + i * a.ld;
        for (size_t p = 0; p < k; ++p) acc += arow[p] * bj[p];
      } else {
        for (size_t p = 0; p < k; ++p) acc += a.data[p * a.ld + i] * bj[p];
      }
      crow[j] += acc;
    }
  }
}

void GemmScalar(size_t m, size_t n, size_t k, GemmOperand a, GemmOperand b,
                double* c, size_t ldc, bool upper_only) {
  if (m == 0 || n == 0) return;
  if (k == 0) return;  // caller pre-zeroed C
  if (b.trans) {
    GemmScalarXT(m, n, k, a, b, c, ldc, upper_only);
  } else if (a.trans) {
    GemmScalarTN(m, n, k, a, b, c, ldc, upper_only);
  } else {
    GemmScalarNN(m, n, k, a, b, c, ldc, upper_only);
  }
}

double DotScalar(const double* a, const double* b, size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

void AxpyScalar(double alpha, const double* x, double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void ScaleScalar(double* x, double s, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] *= s;
}

void AddScalar(const double* x, double* acc, size_t n) {
  for (size_t i = 0; i < n; ++i) acc[i] += x[i];
}

void SqDiffAccumScalar(const double* x, const double* mean, double* acc,
                       size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const double d = x[i] - mean[i];
    acc[i] += d * d;
  }
}

void SubScaleScalar(const double* src, const double* sub, const double* scale,
                    double* dst, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] = (src[i] - sub[i]) * scale[i];
}

const KernelTable kScalarTable = {
    Isa::kScalar,   GemmScalar,        DotScalar,     AxpyScalar,
    ScaleScalar,    AddScalar,         SqDiffAccumScalar,
    SubScaleScalar,
};

// ---------------------------------------------------------------------------
// Dispatch state.
// ---------------------------------------------------------------------------

bool g_env_override_present = false;

Isa InitialIsa() {
  const char* env = std::getenv("EXPLAINIT_SIMD");
  if (env != nullptr) {
    bool recognized = false;
    const Isa chosen = ParseIsaOverride(env, &recognized);
    g_env_override_present = recognized;
    if (recognized) return chosen;
  }
  return Avx2Table() != nullptr ? Isa::kAvx2 : Isa::kScalar;
}

std::atomic<Isa>& ActiveIsaSlot() {
  static std::atomic<Isa> active{InitialIsa()};
  return active;
}

}  // namespace

bool CpuSupportsAvx2() {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

const KernelTable& ScalarTable() { return kScalarTable; }

const KernelTable& Table(Isa isa) {
  if (isa == Isa::kAvx2) {
    const KernelTable* t = Avx2Table();
    EXPLAINIT_CHECK(t != nullptr, "AVX2 kernel table unavailable");
    return *t;
  }
  return kScalarTable;
}

Isa ActiveIsa() { return ActiveIsaSlot().load(std::memory_order_relaxed); }

const KernelTable& Active() { return Table(ActiveIsa()); }

bool ForceIsa(Isa isa) {
  if (isa == Isa::kAvx2 && Avx2Table() == nullptr) return false;
  ActiveIsaSlot().store(isa, std::memory_order_relaxed);
  return true;
}

bool EnvOverridePresent() {
  ActiveIsaSlot();  // ensure env parsed
  return g_env_override_present;
}

Isa ParseIsaOverride(const char* value, bool* recognized) {
  const Isa best = Avx2Table() != nullptr ? Isa::kAvx2 : Isa::kScalar;
  if (value == nullptr) {
    if (recognized != nullptr) *recognized = false;
    return best;
  }
  if (std::strcmp(value, "scalar") == 0) {
    if (recognized != nullptr) *recognized = true;
    return Isa::kScalar;
  }
  if (std::strcmp(value, "avx2") == 0) {
    if (recognized != nullptr) *recognized = true;
    // Requesting avx2 on an incapable host falls back to scalar rather than
    // crashing on the first kernel call.
    return best;
  }
  if (std::strcmp(value, "auto") == 0) {
    if (recognized != nullptr) *recognized = true;
    return best;
  }
  if (recognized != nullptr) *recognized = false;
  return best;
}

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
  }
  return "unknown";
}

}  // namespace explainit::la::simd
