#include "la/matrix.h"

#include <cstdio>

namespace explainit::la {

std::vector<double> Matrix::Col(size_t c) const {
  std::vector<double> out(rows_);
  for (size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

void Matrix::SetCol(size_t c, const std::vector<double>& v) {
  EXPLAINIT_CHECK(v.size() == rows_, "SetCol size mismatch");
  for (size_t r = 0; r < rows_; ++r) (*this)(r, c) = v[r];
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  // Blocked transpose for cache friendliness on large matrices.
  constexpr size_t kBlock = 32;
  for (size_t rb = 0; rb < rows_; rb += kBlock) {
    const size_t re = std::min(rows_, rb + kBlock);
    for (size_t cb = 0; cb < cols_; cb += kBlock) {
      const size_t ce = std::min(cols_, cb + kBlock);
      for (size_t r = rb; r < re; ++r) {
        for (size_t c = cb; c < ce; ++c) {
          out(c, r) = (*this)(r, c);
        }
      }
    }
  }
  return out;
}

Matrix Matrix::SliceRows(size_t row_begin, size_t row_end) const {
  EXPLAINIT_CHECK(row_begin <= row_end && row_end <= rows_,
                  "bad slice [" << row_begin << "," << row_end << ")");
  Matrix out(row_end - row_begin, cols_);
  std::copy(data_.begin() + row_begin * cols_, data_.begin() + row_end * cols_,
            out.data_.begin());
  return out;
}

Matrix Matrix::SelectCols(const std::vector<size_t>& cols) const {
  Matrix out(rows_, cols.size());
  for (size_t r = 0; r < rows_; ++r) {
    const double* src = Row(r);
    double* dst = out.Row(r);
    for (size_t i = 0; i < cols.size(); ++i) {
      EXPLAINIT_CHECK(cols[i] < cols_, "column index out of range");
      dst[i] = src[cols[i]];
    }
  }
  return out;
}

Matrix Matrix::ConcatCols(const Matrix& other) const {
  if (empty()) return other;
  if (other.empty()) return *this;
  EXPLAINIT_CHECK(rows_ == other.rows_, "ConcatCols row mismatch");
  Matrix out(rows_, cols_ + other.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    std::copy(Row(r), Row(r) + cols_, out.Row(r));
    std::copy(other.Row(r), other.Row(r) + other.cols_, out.Row(r) + cols_);
  }
  return out;
}

void Matrix::AddInPlace(const Matrix& other) {
  EXPLAINIT_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
                  "AddInPlace shape mismatch");
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::SubInPlace(const Matrix& other) {
  EXPLAINIT_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
                  "SubInPlace shape mismatch");
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
}

void Matrix::ScaleInPlace(double s) {
  for (double& v : data_) v *= s;
}

double Matrix::FrobeniusSquared() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return acc;
}

Matrix Matrix::Identity(size_t n) {
  Matrix out(n, n);
  for (size_t i = 0; i < n; ++i) out(i, i) = 1.0;
  return out;
}

std::string Matrix::ToString(int max_rows, int max_cols) const {
  std::string out = "Matrix(" + std::to_string(rows_) + "x" +
                    std::to_string(cols_) + ")\n";
  const size_t rshow = std::min<size_t>(rows_, max_rows);
  const size_t cshow = std::min<size_t>(cols_, max_cols);
  char buf[64];
  for (size_t r = 0; r < rshow; ++r) {
    out += "  [";
    for (size_t c = 0; c < cshow; ++c) {
      std::snprintf(buf, sizeof(buf), "%s%.4g", c ? ", " : "", (*this)(r, c));
      out += buf;
    }
    if (cshow < cols_) out += ", ...";
    out += "]\n";
  }
  if (rshow < rows_) out += "  ...\n";
  return out;
}

}  // namespace explainit::la
