// Column standardisation (zero mean, unit variance). Scorers standardise
// features and targets before regression so the r-squared and correlation
// statistics are scale free.
#pragma once

#include <vector>

#include "la/matrix.h"

namespace explainit::la {

/// Per-column mean and standard deviation of a matrix.
struct ColumnStats {
  std::vector<double> mean;
  std::vector<double> stddev;  // 1.0 is substituted for constant columns
};

/// Computes per-column mean/stddev (population, ddof=0).
ColumnStats ComputeColumnStats(const Matrix& m);

/// Returns (m - mean) / stddev per column, using precomputed stats.
Matrix StandardizeWith(const Matrix& m, const ColumnStats& stats);

/// Standardises in one step and also returns the stats used.
Matrix Standardize(const Matrix& m, ColumnStats* stats_out = nullptr);

/// Centres columns (subtracts mean) without scaling.
Matrix CenterColumns(const Matrix& m);

}  // namespace explainit::la
