#include "la/cholesky.h"

#include <cmath>

namespace explainit::la {

Result<Matrix> CholeskyFactor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky needs a square matrix");
  }
  const size_t n = a.rows();
  Matrix l(n, n);
  for (size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    const double* lrow_j = l.Row(j);
    for (size_t k = 0; k < j; ++k) diag -= lrow_j[k] * lrow_j[k];
    if (!(diag > 0.0) || !std::isfinite(diag)) {
      return Status::InvalidArgument("matrix not positive definite at pivot " +
                                     std::to_string(j));
    }
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    const double inv = 1.0 / ljj;
    for (size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      const double* lrow_i = l.Row(i);
      for (size_t k = 0; k < j; ++k) acc -= lrow_i[k] * lrow_j[k];
      l(i, j) = acc * inv;
    }
  }
  return l;
}

Matrix CholeskySolve(const Matrix& l, const Matrix& b) {
  const size_t n = l.rows();
  EXPLAINIT_CHECK(b.rows() == n, "CholeskySolve shape mismatch");
  const size_t m = b.cols();
  // Forward substitution: L Z = B.
  Matrix z(n, m);
  for (size_t i = 0; i < n; ++i) {
    const double* lrow = l.Row(i);
    double* zrow = z.Row(i);
    for (size_t c = 0; c < m; ++c) zrow[c] = b(i, c);
    for (size_t k = 0; k < i; ++k) {
      const double lik = lrow[k];
      if (lik == 0.0) continue;
      const double* zk = z.Row(k);
      for (size_t c = 0; c < m; ++c) zrow[c] -= lik * zk[c];
    }
    const double inv = 1.0 / lrow[i];
    for (size_t c = 0; c < m; ++c) zrow[c] *= inv;
  }
  // Back substitution: L^T X = Z.
  Matrix x(n, m);
  for (size_t ii = n; ii-- > 0;) {
    double* xrow = x.Row(ii);
    const double* zrow = z.Row(ii);
    for (size_t c = 0; c < m; ++c) xrow[c] = zrow[c];
    for (size_t k = ii + 1; k < n; ++k) {
      const double lki = l(k, ii);
      if (lki == 0.0) continue;
      const double* xk = x.Row(k);
      for (size_t c = 0; c < m; ++c) xrow[c] -= lki * xk[c];
    }
    const double inv = 1.0 / l(ii, ii);
    for (size_t c = 0; c < m; ++c) xrow[c] *= inv;
  }
  return x;
}

Result<Matrix> SolveSpd(Matrix a, const Matrix& b, double jitter) {
  for (int attempt = 0; attempt < 4; ++attempt) {
    Result<Matrix> l = CholeskyFactor(a);
    if (l.ok()) return CholeskySolve(l.value(), b);
    // Escalate the diagonal regulariser and retry.
    double bump = jitter;
    for (int k = 0; k < attempt; ++k) bump *= 1e3;
    double max_diag = 0.0;
    for (size_t i = 0; i < a.rows(); ++i)
      max_diag = std::max(max_diag, std::abs(a(i, i)));
    const double add = bump * std::max(1.0, max_diag);
    for (size_t i = 0; i < a.rows(); ++i) a(i, i) += add;
  }
  return Status::Internal("SolveSpd: matrix not PD even after jitter");
}

}  // namespace explainit::la
