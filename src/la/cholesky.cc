#include "la/cholesky.h"

#include <algorithm>
#include <cmath>

#include "la/simd.h"

namespace explainit::la {

Result<Matrix> CholeskyFactor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky needs a square matrix");
  }
  const auto& kernels = simd::Active();
  const size_t n = a.rows();
  Matrix l(n, n);
  for (size_t j = 0; j < n; ++j) {
    const double* lrow_j = l.Row(j);
    const double diag = a(j, j) - kernels.dot(lrow_j, lrow_j, j);
    if (!(diag > 0.0) || !std::isfinite(diag)) {
      return Status::InvalidArgument("matrix not positive definite at pivot " +
                                     std::to_string(j));
    }
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    const double inv = 1.0 / ljj;
    for (size_t i = j + 1; i < n; ++i) {
      l(i, j) = (a(i, j) - kernels.dot(l.Row(i), lrow_j, j)) * inv;
    }
  }
  return l;
}

void CholeskySolveInto(const Matrix& l, const Matrix& b, Matrix* x,
                       Matrix* scratch) {
  const size_t n = l.rows();
  EXPLAINIT_CHECK(b.rows() == n, "CholeskySolve shape mismatch");
  const auto& kernels = simd::Active();
  const size_t m = b.cols();
  Matrix& z = *scratch;
  if (z.rows() != n || z.cols() != m) z = Matrix(n, m);
  // Forward substitution: L Z = B. Each eliminated row is one axpy over
  // the full panel of right-hand sides.
  for (size_t i = 0; i < n; ++i) {
    const double* lrow = l.Row(i);
    double* zrow = z.Row(i);
    std::copy(b.Row(i), b.Row(i) + m, zrow);
    for (size_t k = 0; k < i; ++k) {
      kernels.axpy(-lrow[k], z.Row(k), zrow, m);
    }
    kernels.scale(zrow, 1.0 / lrow[i], m);
  }
  // Back substitution: L^T X = Z.
  if (x->rows() != n || x->cols() != m) *x = Matrix(n, m);
  for (size_t ii = n; ii-- > 0;) {
    double* xrow = x->Row(ii);
    std::copy(z.Row(ii), z.Row(ii) + m, xrow);
    for (size_t k = ii + 1; k < n; ++k) {
      kernels.axpy(-l(k, ii), x->Row(k), xrow, m);
    }
    kernels.scale(xrow, 1.0 / l(ii, ii), m);
  }
}

Matrix CholeskySolve(const Matrix& l, const Matrix& b) {
  Matrix x, scratch;
  CholeskySolveInto(l, b, &x, &scratch);
  return x;
}

Result<Matrix> FactorSpdJittered(Matrix a, double jitter) {
  for (int attempt = 0; attempt < 4; ++attempt) {
    Result<Matrix> l = CholeskyFactor(a);
    if (l.ok()) return l;
    // Escalate the diagonal regulariser and retry.
    double bump = jitter;
    for (int k = 0; k < attempt; ++k) bump *= 1e3;
    double max_diag = 0.0;
    for (size_t i = 0; i < a.rows(); ++i)
      max_diag = std::max(max_diag, std::abs(a(i, i)));
    const double add = bump * std::max(1.0, max_diag);
    for (size_t i = 0; i < a.rows(); ++i) a(i, i) += add;
  }
  return Status::Internal("SolveSpd: matrix not PD even after jitter");
}

Result<Matrix> SolveSpd(Matrix a, const Matrix& b, double jitter) {
  Result<Matrix> l = FactorSpdJittered(std::move(a), jitter);
  if (!l.ok()) return l.status();
  return CholeskySolve(l.value(), b);
}

}  // namespace explainit::la
