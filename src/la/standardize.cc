#include "la/standardize.h"

#include <cmath>

namespace explainit::la {

ColumnStats ComputeColumnStats(const Matrix& m) {
  ColumnStats stats;
  const size_t rows = m.rows(), cols = m.cols();
  stats.mean.assign(cols, 0.0);
  stats.stddev.assign(cols, 1.0);
  if (rows == 0 || cols == 0) return stats;
  for (size_t r = 0; r < rows; ++r) {
    const double* row = m.Row(r);
    for (size_t c = 0; c < cols; ++c) stats.mean[c] += row[c];
  }
  for (size_t c = 0; c < cols; ++c) stats.mean[c] /= static_cast<double>(rows);
  std::vector<double> var(cols, 0.0);
  for (size_t r = 0; r < rows; ++r) {
    const double* row = m.Row(r);
    for (size_t c = 0; c < cols; ++c) {
      const double d = row[c] - stats.mean[c];
      var[c] += d * d;
    }
  }
  for (size_t c = 0; c < cols; ++c) {
    const double sd = std::sqrt(var[c] / static_cast<double>(rows));
    // Constant columns carry no signal; dividing by 1.0 leaves them at zero
    // after centring rather than producing NaNs.
    stats.stddev[c] = sd > 1e-12 ? sd : 1.0;
  }
  return stats;
}

Matrix StandardizeWith(const Matrix& m, const ColumnStats& stats) {
  Matrix out(m.rows(), m.cols());
  for (size_t r = 0; r < m.rows(); ++r) {
    const double* src = m.Row(r);
    double* dst = out.Row(r);
    for (size_t c = 0; c < m.cols(); ++c) {
      dst[c] = (src[c] - stats.mean[c]) / stats.stddev[c];
    }
  }
  return out;
}

Matrix Standardize(const Matrix& m, ColumnStats* stats_out) {
  ColumnStats stats = ComputeColumnStats(m);
  Matrix out = StandardizeWith(m, stats);
  if (stats_out != nullptr) *stats_out = std::move(stats);
  return out;
}

Matrix CenterColumns(const Matrix& m) {
  ColumnStats stats = ComputeColumnStats(m);
  Matrix out(m.rows(), m.cols());
  for (size_t r = 0; r < m.rows(); ++r) {
    const double* src = m.Row(r);
    double* dst = out.Row(r);
    for (size_t c = 0; c < m.cols(); ++c) dst[c] = src[c] - stats.mean[c];
  }
  return out;
}

}  // namespace explainit::la
