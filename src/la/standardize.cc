#include "la/standardize.h"

#include <cmath>

#include "la/simd.h"

namespace explainit::la {

ColumnStats ComputeColumnStats(const Matrix& m) {
  ColumnStats stats;
  const size_t rows = m.rows(), cols = m.cols();
  stats.mean.assign(cols, 0.0);
  stats.stddev.assign(cols, 1.0);
  if (rows == 0 || cols == 0) return stats;
  const auto& kernels = simd::Active();
  for (size_t r = 0; r < rows; ++r) {
    kernels.add(m.Row(r), stats.mean.data(), cols);
  }
  kernels.scale(stats.mean.data(), 1.0 / static_cast<double>(rows), cols);
  std::vector<double> var(cols, 0.0);
  for (size_t r = 0; r < rows; ++r) {
    kernels.sq_diff_accum(m.Row(r), stats.mean.data(), var.data(), cols);
  }
  for (size_t c = 0; c < cols; ++c) {
    const double sd = std::sqrt(var[c] / static_cast<double>(rows));
    // Constant columns carry no signal; dividing by 1.0 leaves them at zero
    // after centring rather than producing NaNs.
    stats.stddev[c] = sd > 1e-12 ? sd : 1.0;
  }
  return stats;
}

Matrix StandardizeWith(const Matrix& m, const ColumnStats& stats) {
  const auto& kernels = simd::Active();
  const size_t cols = m.cols();
  std::vector<double> inv(cols);
  for (size_t c = 0; c < cols; ++c) inv[c] = 1.0 / stats.stddev[c];
  Matrix out(m.rows(), cols);
  for (size_t r = 0; r < m.rows(); ++r) {
    kernels.sub_scale(m.Row(r), stats.mean.data(), inv.data(), out.Row(r),
                      cols);
  }
  return out;
}

Matrix Standardize(const Matrix& m, ColumnStats* stats_out) {
  ColumnStats stats = ComputeColumnStats(m);
  Matrix out = StandardizeWith(m, stats);
  if (stats_out != nullptr) *stats_out = std::move(stats);
  return out;
}

Matrix CenterColumns(const Matrix& m) {
  ColumnStats stats = ComputeColumnStats(m);
  const auto& kernels = simd::Active();
  const size_t cols = m.cols();
  const std::vector<double> ones(cols, 1.0);
  Matrix out(m.rows(), cols);
  for (size_t r = 0; r < m.rows(); ++r) {
    kernels.sub_scale(m.Row(r), stats.mean.data(), ones.data(), out.Row(r),
                      cols);
  }
  return out;
}

}  // namespace explainit::la
