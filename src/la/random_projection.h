// Gaussian random projections (§4.2): reduce feature dimensionality from n
// to d before penalised regression. Preferred over PCA by the paper because
// it is cheaper and does not discard anomaly directions.
#pragma once

#include "common/random.h"
#include "la/matrix.h"

namespace explainit::la {

/// Samples an (n x d) projection matrix with i.i.d. N(0, 1/d) entries.
/// The 1/sqrt(d) scaling makes the projection approximately norm preserving
/// (Johnson–Lindenstrauss).
Matrix SampleProjectionMatrix(size_t n, size_t d, Rng& rng);

/// Projects X (T x n) to (T x min(n, d)): returns X unchanged when n <= d,
/// otherwise X * P for a freshly sampled P. Mirrors the paper's rule
/// P(X) = X if nx <= d else X Pd.
Matrix ProjectIfWide(const Matrix& x, size_t d, Rng& rng);

}  // namespace explainit::la
