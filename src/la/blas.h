// BLAS-lite: the dense kernels that dominate scoring cost. All products
// route through the runtime-dispatched kernel table in la/simd.h — a
// packed, register-blocked AVX2+FMA GEMM when the host supports it, a
// portable scalar path otherwise (EXPLAINIT_SIMD=scalar|avx2|auto picks
// explicitly). Shapes follow the feature-matrix convention
// (rows = observations T, cols = features n).
#pragma once

#include "la/matrix.h"

namespace explainit::la {

/// C = A * B. A is (m x k), B is (k x n).
Matrix MatMul(const Matrix& a, const Matrix& b);

/// C = A^T * B. A is (k x m), B is (k x n); result (m x n). This is the Gram
/// cross-product kernel used to form X^T X and X^T Y without materialising
/// transposes.
Matrix MatTMul(const Matrix& a, const Matrix& b);

/// C = A * B^T. A is (m x k), B is (n x k); result (m x n).
Matrix MatMulT(const Matrix& a, const Matrix& b);

/// Symmetric rank-k update: returns A^T A (n x n) for A (m x n), exploiting
/// symmetry (computes upper triangle, mirrors).
Matrix Gram(const Matrix& a);

/// Returns A A^T (m x m) for A (m x n) — the dual-form kernel matrix.
Matrix GramT(const Matrix& a);

/// Allocation-reusing variants over raw row-major buffers (lda/ldb are the
/// strides between rows, allowing sub-blocks of larger matrices). `out` is
/// resized and overwritten. The ridge CV fast path uses these to form
/// per-fold Gram/cross-product blocks over contiguous row ranges without
/// gathering rows first.
///
/// out = A^T A for the (rows x cols) block at `a`.
void GramInto(const double* a, size_t rows, size_t cols, size_t lda,
              Matrix* out);
/// out = A^T B for blocks sharing `rows`.
void CrossInto(const double* a, size_t rows, size_t acols, size_t lda,
               const double* b, size_t bcols, size_t ldb, Matrix* out);
/// out = A * B over blocks: A (m x k, stride lda), B (k x n, stride ldb).
void MatMulInto(const double* a, size_t m, size_t k, size_t lda,
                const double* b, size_t n, size_t ldb, Matrix* out);

/// y = A * x for x of length A.cols().
std::vector<double> MatVec(const Matrix& a, const std::vector<double>& x);

/// y = A^T * x for x of length A.rows().
std::vector<double> MatTVec(const Matrix& a, const std::vector<double>& x);

/// Dot product.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// y += alpha * x.
void Axpy(double alpha, const std::vector<double>& x, std::vector<double>& y);

}  // namespace explainit::la
