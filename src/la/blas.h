// BLAS-lite: the dense kernels that dominate scoring cost. Hand-blocked,
// no external dependency. Shapes follow the feature-matrix convention
// (rows = observations T, cols = features n).
#pragma once

#include "la/matrix.h"

namespace explainit::la {

/// C = A * B. A is (m x k), B is (k x n).
Matrix MatMul(const Matrix& a, const Matrix& b);

/// C = A^T * B. A is (k x m), B is (k x n); result (m x n). This is the Gram
/// cross-product kernel used to form X^T X and X^T Y without materialising
/// transposes.
Matrix MatTMul(const Matrix& a, const Matrix& b);

/// C = A * B^T. A is (m x k), B is (n x k); result (m x n).
Matrix MatMulT(const Matrix& a, const Matrix& b);

/// Symmetric rank-k update: returns A^T A (n x n) for A (m x n), exploiting
/// symmetry (computes upper triangle, mirrors).
Matrix Gram(const Matrix& a);

/// Returns A A^T (m x m) for A (m x n) — the dual-form kernel matrix.
Matrix GramT(const Matrix& a);

/// y = A * x for x of length A.cols().
std::vector<double> MatVec(const Matrix& a, const std::vector<double>& x);

/// y = A^T * x for x of length A.rows().
std::vector<double> MatTVec(const Matrix& a, const std::vector<double>& x);

/// Dot product.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// y += alpha * x.
void Axpy(double alpha, const std::vector<double>& x, std::vector<double>& y);

}  // namespace explainit::la
