// AVX2+FMA kernel table: a packed, register-blocked GEMM micro-kernel plus
// vectorised reductions. Compiled as its own translation unit with
// -mavx2 -mfma (see src/la/CMakeLists.txt); everything is guarded so the
// file degrades to a nullptr table on non-x86 builds or compilers without
// AVX2 support, keeping the scalar path the only hard requirement.
#include "la/simd.h"

#if defined(EXPLAINIT_HAVE_AVX2) && (defined(__x86_64__) || defined(_M_X64))

#include <immintrin.h>

#include <algorithm>
#include <vector>

namespace explainit::la::simd {

namespace {

// Register blocking: a 4x8 micro-tile of C lives in 8 ymm accumulators,
// leaving registers for the broadcast A value and two B loads. Cache
// blocking keeps one packed A block (kMc x kKc, 192KB) and the B panel
// stripe streaming through L2.
constexpr size_t kMr = 4;
constexpr size_t kNr = 8;
constexpr size_t kMc = 96;   // multiple of kMr
constexpr size_t kKc = 256;
constexpr size_t kNc = 512;  // multiple of kNr

// Packs the (mc x kc) block of A at (i0, p0) into kMr-row micro-panels:
// panel q holds rows [i0 + q*kMr, ...), laid out p-major so the kernel
// reads kMr contiguous values per k step. Short final panels zero-pad.
void PackA(const GemmOperand& a, size_t i0, size_t mc, size_t p0, size_t kc,
           double* dst) {
  for (size_t ip = 0; ip < mc; ip += kMr) {
    const size_t mr = std::min(kMr, mc - ip);
    if (!a.trans) {
      for (size_t p = 0; p < kc; ++p) {
        double* out = dst + p * kMr;
        for (size_t r = 0; r < mr; ++r)
          out[r] = a.data[(i0 + ip + r) * a.ld + (p0 + p)];
        for (size_t r = mr; r < kMr; ++r) out[r] = 0.0;
      }
    } else {
      // a.At(i, p) = data[p * ld + i]: each k step is contiguous in i.
      for (size_t p = 0; p < kc; ++p) {
        const double* src = a.data + (p0 + p) * a.ld + (i0 + ip);
        double* out = dst + p * kMr;
        for (size_t r = 0; r < mr; ++r) out[r] = src[r];
        for (size_t r = mr; r < kMr; ++r) out[r] = 0.0;
      }
    }
    dst += kc * kMr;
  }
}

// Packs the (kc x nc) block of B at (p0, j0) into kNr-column panels,
// p-major, zero-padding short final panels.
void PackB(const GemmOperand& b, size_t p0, size_t kc, size_t j0, size_t nc,
           double* dst) {
  for (size_t jp = 0; jp < nc; jp += kNr) {
    const size_t nr = std::min(kNr, nc - jp);
    if (!b.trans) {
      for (size_t p = 0; p < kc; ++p) {
        const double* src = b.data + (p0 + p) * b.ld + (j0 + jp);
        double* out = dst + p * kNr;
        for (size_t c = 0; c < nr; ++c) out[c] = src[c];
        for (size_t c = nr; c < kNr; ++c) out[c] = 0.0;
      }
    } else {
      // b.At(p, j) = data[j * ld + p]: each column is contiguous in p.
      for (size_t c = 0; c < nr; ++c) {
        const double* src = b.data + (j0 + jp + c) * b.ld + p0;
        for (size_t p = 0; p < kc; ++p) dst[p * kNr + c] = src[p];
      }
      for (size_t c = nr; c < kNr; ++c)
        for (size_t p = 0; p < kc; ++p) dst[p * kNr + c] = 0.0;
    }
    dst += kc * kNr;
  }
}

// The 4x8 micro-kernel: C_tile (+)= A_panel * B_panel over kc steps.
// With `accumulate` the tile is added into C (leading dimension ldc);
// otherwise it overwrites (used with a local buffer for edge tiles).
void MicroKernel4x8(size_t kc, const double* ap, const double* bp, double* c,
                    size_t ldc, bool accumulate) {
  __m256d c00 = _mm256_setzero_pd(), c01 = _mm256_setzero_pd();
  __m256d c10 = _mm256_setzero_pd(), c11 = _mm256_setzero_pd();
  __m256d c20 = _mm256_setzero_pd(), c21 = _mm256_setzero_pd();
  __m256d c30 = _mm256_setzero_pd(), c31 = _mm256_setzero_pd();
  for (size_t p = 0; p < kc; ++p) {
    const __m256d b0 = _mm256_loadu_pd(bp + p * kNr);
    const __m256d b1 = _mm256_loadu_pd(bp + p * kNr + 4);
    const __m256d a0 = _mm256_broadcast_sd(ap + p * kMr + 0);
    c00 = _mm256_fmadd_pd(a0, b0, c00);
    c01 = _mm256_fmadd_pd(a0, b1, c01);
    const __m256d a1 = _mm256_broadcast_sd(ap + p * kMr + 1);
    c10 = _mm256_fmadd_pd(a1, b0, c10);
    c11 = _mm256_fmadd_pd(a1, b1, c11);
    const __m256d a2 = _mm256_broadcast_sd(ap + p * kMr + 2);
    c20 = _mm256_fmadd_pd(a2, b0, c20);
    c21 = _mm256_fmadd_pd(a2, b1, c21);
    const __m256d a3 = _mm256_broadcast_sd(ap + p * kMr + 3);
    c30 = _mm256_fmadd_pd(a3, b0, c30);
    c31 = _mm256_fmadd_pd(a3, b1, c31);
  }
  double* r0 = c;
  double* r1 = c + ldc;
  double* r2 = c + 2 * ldc;
  double* r3 = c + 3 * ldc;
  if (accumulate) {
    _mm256_storeu_pd(r0, _mm256_add_pd(_mm256_loadu_pd(r0), c00));
    _mm256_storeu_pd(r0 + 4, _mm256_add_pd(_mm256_loadu_pd(r0 + 4), c01));
    _mm256_storeu_pd(r1, _mm256_add_pd(_mm256_loadu_pd(r1), c10));
    _mm256_storeu_pd(r1 + 4, _mm256_add_pd(_mm256_loadu_pd(r1 + 4), c11));
    _mm256_storeu_pd(r2, _mm256_add_pd(_mm256_loadu_pd(r2), c20));
    _mm256_storeu_pd(r2 + 4, _mm256_add_pd(_mm256_loadu_pd(r2 + 4), c21));
    _mm256_storeu_pd(r3, _mm256_add_pd(_mm256_loadu_pd(r3), c30));
    _mm256_storeu_pd(r3 + 4, _mm256_add_pd(_mm256_loadu_pd(r3 + 4), c31));
  } else {
    _mm256_storeu_pd(r0, c00);
    _mm256_storeu_pd(r0 + 4, c01);
    _mm256_storeu_pd(r1, c10);
    _mm256_storeu_pd(r1 + 4, c11);
    _mm256_storeu_pd(r2, c20);
    _mm256_storeu_pd(r2 + 4, c21);
    _mm256_storeu_pd(r3, c30);
    _mm256_storeu_pd(r3 + 4, c31);
  }
}

void GemmAvx2(size_t m, size_t n, size_t k, GemmOperand a, GemmOperand b,
              double* c, size_t ldc, bool upper_only) {
  if (m == 0 || n == 0 || k == 0) return;
  // Tiny products don't amortise packing; the scalar path wins and keeps
  // the choice a pure function of shape (determinism across threads).
  if (m * n * k < 8 * 8 * 8) {
    ScalarTable().gemm(m, n, k, a, b, c, ldc, upper_only);
    return;
  }
  thread_local std::vector<double> apack;
  thread_local std::vector<double> bpack;
  apack.resize(kMc * kKc);
  bpack.resize(kKc * kNc);
  for (size_t jc = 0; jc < n; jc += kNc) {
    const size_t nc = std::min(kNc, n - jc);
    for (size_t pc = 0; pc < k; pc += kKc) {
      const size_t kc = std::min(kKc, k - pc);
      PackB(b, pc, kc, jc, nc, bpack.data());
      for (size_t ic = 0; ic < m; ic += kMc) {
        const size_t mc = std::min(kMc, m - ic);
        // Row panels entirely below the needed triangle contribute nothing.
        if (upper_only && ic >= jc + nc) continue;
        PackA(a, ic, mc, pc, kc, apack.data());
        for (size_t ip = 0; ip < mc; ip += kMr) {
          const size_t it = ic + ip;
          const size_t mr = std::min(kMr, mc - ip);
          const double* ap = apack.data() + (ip / kMr) * kc * kMr;
          for (size_t jp = 0; jp < nc; jp += kNr) {
            const size_t jt = jc + jp;
            // Micro-tiles whose every column sits strictly below the
            // diagonal are skipped; straddling tiles compute in full (the
            // below-diagonal entries are unspecified per the contract).
            if (upper_only && jt + kNr <= it) continue;
            const size_t nr = std::min(kNr, nc - jp);
            const double* bp = bpack.data() + (jp / kNr) * kc * kNr;
            if (mr == kMr && nr == kNr) {
              MicroKernel4x8(kc, ap, bp, c + it * ldc + jt, ldc, true);
            } else {
              double tile[kMr * kNr];
              MicroKernel4x8(kc, ap, bp, tile, kNr, false);
              for (size_t r = 0; r < mr; ++r) {
                double* crow = c + (it + r) * ldc + jt;
                for (size_t q = 0; q < nr; ++q) crow[q] += tile[r * kNr + q];
              }
            }
          }
        }
      }
    }
  }
}

double DotAvx2(const double* a, const double* b, size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4),
                           _mm256_loadu_pd(b + i + 4), acc1);
    acc2 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 8),
                           _mm256_loadu_pd(b + i + 8), acc2);
    acc3 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 12),
                           _mm256_loadu_pd(b + i + 12), acc3);
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
  }
  const __m256d sum =
      _mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3));
  double buf[4];
  _mm256_storeu_pd(buf, sum);
  double r = buf[0] + buf[1] + buf[2] + buf[3];
  for (; i < n; ++i) r += a[i] * b[i];
  return r;
}

void AxpyAvx2(double alpha, const double* x, double* y, size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_pd(
        y + i, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i),
                               _mm256_loadu_pd(y + i)));
    _mm256_storeu_pd(
        y + i + 4, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i + 4),
                                   _mm256_loadu_pd(y + i + 4)));
  }
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i),
                               _mm256_loadu_pd(y + i)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void ScaleAvx2(double* x, double s, size_t n) {
  const __m256d vs = _mm256_set1_pd(s);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(x + i, _mm256_mul_pd(_mm256_loadu_pd(x + i), vs));
  }
  for (; i < n; ++i) x[i] *= s;
}

void AddAvx2(const double* x, double* acc, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        acc + i, _mm256_add_pd(_mm256_loadu_pd(acc + i),
                               _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) acc[i] += x[i];
}

void SqDiffAccumAvx2(const double* x, const double* mean, double* acc,
                     size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(x + i),
                                    _mm256_loadu_pd(mean + i));
    _mm256_storeu_pd(acc + i,
                     _mm256_fmadd_pd(d, d, _mm256_loadu_pd(acc + i)));
  }
  for (; i < n; ++i) {
    const double d = x[i] - mean[i];
    acc[i] += d * d;
  }
}

void SubScaleAvx2(const double* src, const double* sub, const double* scale,
                  double* dst, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        dst + i,
        _mm256_mul_pd(_mm256_sub_pd(_mm256_loadu_pd(src + i),
                                    _mm256_loadu_pd(sub + i)),
                      _mm256_loadu_pd(scale + i)));
  }
  for (; i < n; ++i) dst[i] = (src[i] - sub[i]) * scale[i];
}

const KernelTable kAvx2Table = {
    Isa::kAvx2,  GemmAvx2,        DotAvx2,     AxpyAvx2,
    ScaleAvx2,   AddAvx2,         SqDiffAccumAvx2,
    SubScaleAvx2,
};

}  // namespace

const KernelTable* Avx2Table() {
  static const KernelTable* table = CpuSupportsAvx2() ? &kAvx2Table : nullptr;
  return table;
}

}  // namespace explainit::la::simd

#else  // no AVX2 build support

namespace explainit::la::simd {

const KernelTable* Avx2Table() { return nullptr; }

}  // namespace explainit::la::simd

#endif
