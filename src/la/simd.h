// Runtime-dispatched SIMD kernel table for the dense linear-algebra layer.
//
// Two implementations of every kernel are always compiled: a portable
// scalar path, and (on x86-64 with a capable compiler) an AVX2+FMA path
// built around a packed, register-blocked GEMM micro-kernel. The active
// table is chosen once, on first use: the `EXPLAINIT_SIMD` environment
// variable ("scalar" | "avx2" | "auto") overrides CPU detection, and
// ForceIsa() lets tests and benches switch tables inside one process.
//
// Kernels are single-threaded and deterministic: the same inputs produce
// bit-identical outputs for a given table, regardless of the calling
// thread. Results *between* tables agree only to rounding (FMA contracts
// differently), which is why the differential test suite compares with
// tolerances rather than bit equality.
#pragma once

#include <cstddef>

namespace explainit::la::simd {

enum class Isa {
  kScalar = 0,
  kAvx2 = 1,
};

/// One GEMM operand: a logical (rows x cols) view over a row-major buffer
/// with leading dimension `ld`; `trans` reads the buffer transposed, so
/// element (i, j) is data[j * ld + i]. This lets one kernel serve
/// A*B, A^T*B, A*B^T and the symmetric Gram products without
/// materialising any transpose.
struct GemmOperand {
  const double* data = nullptr;
  size_t ld = 0;
  bool trans = false;

  double At(size_t i, size_t j) const {
    return trans ? data[j * ld + i] : data[i * ld + j];
  }
};

/// The dispatchable kernel set. All dense: no zero-skipping branches (the
/// historical `if (v == 0.0) continue;` guards were pure mispredict cost
/// on scoring matrices and are gone from every path).
struct KernelTable {
  Isa isa;

  /// C (m x n, leading dimension ldc) += A_eff (m x k) * B_eff (k x n).
  /// C must be zero-initialised by the caller when a plain product is
  /// wanted. With upper_only set, only tiles intersecting the upper
  /// triangle (j >= i) are computed — entries strictly below the
  /// diagonal are unspecified and the caller mirrors; used by the
  /// symmetric Gram kernels to halve the work.
  void (*gemm)(size_t m, size_t n, size_t k, GemmOperand a, GemmOperand b,
               double* c, size_t ldc, bool upper_only);

  /// sum_i a[i] * b[i].
  double (*dot)(const double* a, const double* b, size_t n);
  /// y += alpha * x.
  void (*axpy)(double alpha, const double* x, double* y, size_t n);
  /// x *= s.
  void (*scale)(double* x, double s, size_t n);
  /// acc += x (element-wise). The column-sum reduction of ComputeColumnStats.
  void (*add)(const double* x, double* acc, size_t n);
  /// acc += (x - mean)^2 element-wise. The column-variance reduction.
  void (*sq_diff_accum)(const double* x, const double* mean, double* acc,
                        size_t n);
  /// dst = (src - sub) * scale element-wise. The standardize kernel.
  void (*sub_scale)(const double* src, const double* sub, const double* scale,
                    double* dst, size_t n);
};

/// True when the running CPU supports AVX2 and FMA.
bool CpuSupportsAvx2();

/// The portable scalar table (always available).
const KernelTable& ScalarTable();

/// The AVX2+FMA table, or nullptr when it was not compiled in (non-x86
/// build or compiler without -mavx2) or the CPU lacks support.
const KernelTable* Avx2Table();

/// Table for an explicit ISA. CHECK-fails when unavailable; tests guard
/// with Avx2Table() != nullptr.
const KernelTable& Table(Isa isa);

/// The process-wide active ISA. Decided once on first call: the
/// EXPLAINIT_SIMD env override when present and recognised, otherwise the
/// best supported ISA. ForceIsa() changes it afterwards.
Isa ActiveIsa();
const KernelTable& Active();

/// Overrides the active ISA (tests, benches, the microbench's scalar-vs-
/// SIMD sweep). Returns false (and leaves the dispatch unchanged) when the
/// requested ISA is not available on this host/build.
bool ForceIsa(Isa isa);

/// True when EXPLAINIT_SIMD was set (to any recognised value) at startup.
/// The microbench's silent-fallback gate skips hosts that asked for the
/// scalar path explicitly.
bool EnvOverridePresent();

/// Parses an EXPLAINIT_SIMD value: "scalar", "avx2" or "auto"
/// (case-sensitive). Sets *recognized accordingly; unrecognised values
/// return the auto choice. Exposed for the differential test suite.
Isa ParseIsaOverride(const char* value, bool* recognized);

const char* IsaName(Isa isa);

}  // namespace explainit::la::simd
