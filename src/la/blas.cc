#include "la/blas.h"

#include <algorithm>

namespace explainit::la {

namespace {
// Micro-kernel blocking parameters tuned for ~32KB L1D.
constexpr size_t kMc = 64;   // rows of A per block
constexpr size_t kKc = 256;  // shared dimension per block
}  // namespace

Matrix MatMul(const Matrix& a, const Matrix& b) {
  EXPLAINIT_CHECK(a.cols() == b.rows(),
                  "MatMul shape mismatch " << a.cols() << " vs " << b.rows());
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  Matrix c(m, n);
  for (size_t ib = 0; ib < m; ib += kMc) {
    const size_t ie = std::min(m, ib + kMc);
    for (size_t pb = 0; pb < k; pb += kKc) {
      const size_t pe = std::min(k, pb + kKc);
      for (size_t i = ib; i < ie; ++i) {
        const double* arow = a.Row(i);
        double* crow = c.Row(i);
        for (size_t p = pb; p < pe; ++p) {
          const double av = arow[p];
          if (av == 0.0) continue;
          const double* brow = b.Row(p);
          for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
  return c;
}

Matrix MatTMul(const Matrix& a, const Matrix& b) {
  EXPLAINIT_CHECK(a.rows() == b.rows(),
                  "MatTMul shape mismatch " << a.rows() << " vs " << b.rows());
  const size_t k = a.rows(), m = a.cols(), n = b.cols();
  Matrix c(m, n);
  // Accumulate rank-1 updates row by row of A/B: cache-friendly since both
  // are row-major.
  for (size_t p = 0; p < k; ++p) {
    const double* arow = a.Row(p);
    const double* brow = b.Row(p);
    for (size_t i = 0; i < m; ++i) {
      const double av = arow[i];
      if (av == 0.0) continue;
      double* crow = c.Row(i);
      for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Matrix MatMulT(const Matrix& a, const Matrix& b) {
  EXPLAINIT_CHECK(a.cols() == b.cols(),
                  "MatMulT shape mismatch " << a.cols() << " vs " << b.cols());
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  Matrix c(m, n);
  for (size_t i = 0; i < m; ++i) {
    const double* arow = a.Row(i);
    double* crow = c.Row(i);
    for (size_t j = 0; j < n; ++j) {
      const double* brow = b.Row(j);
      double acc = 0.0;
      for (size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = acc;
    }
  }
  return c;
}

Matrix Gram(const Matrix& a) {
  const size_t k = a.rows(), n = a.cols();
  Matrix c(n, n);
  for (size_t p = 0; p < k; ++p) {
    const double* arow = a.Row(p);
    for (size_t i = 0; i < n; ++i) {
      const double av = arow[i];
      if (av == 0.0) continue;
      double* crow = c.Row(i);
      // Upper triangle only.
      for (size_t j = i; j < n; ++j) crow[j] += av * arow[j];
    }
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < i; ++j) c(i, j) = c(j, i);
  }
  return c;
}

Matrix GramT(const Matrix& a) {
  const size_t m = a.rows(), k = a.cols();
  Matrix c(m, m);
  for (size_t i = 0; i < m; ++i) {
    const double* ai = a.Row(i);
    double* crow = c.Row(i);
    for (size_t j = i; j < m; ++j) {
      const double* aj = a.Row(j);
      double acc = 0.0;
      for (size_t p = 0; p < k; ++p) acc += ai[p] * aj[p];
      crow[j] = acc;
    }
  }
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < i; ++j) c(i, j) = c(j, i);
  }
  return c;
}

std::vector<double> MatVec(const Matrix& a, const std::vector<double>& x) {
  EXPLAINIT_CHECK(a.cols() == x.size(), "MatVec shape mismatch");
  std::vector<double> y(a.rows(), 0.0);
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.Row(i);
    double acc = 0.0;
    for (size_t j = 0; j < a.cols(); ++j) acc += arow[j] * x[j];
    y[i] = acc;
  }
  return y;
}

std::vector<double> MatTVec(const Matrix& a, const std::vector<double>& x) {
  EXPLAINIT_CHECK(a.rows() == x.size(), "MatTVec shape mismatch");
  std::vector<double> y(a.cols(), 0.0);
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.Row(i);
    const double xv = x[i];
    if (xv == 0.0) continue;
    for (size_t j = 0; j < a.cols(); ++j) y[j] += xv * arow[j];
  }
  return y;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  EXPLAINIT_CHECK(a.size() == b.size(), "Dot size mismatch");
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

void Axpy(double alpha, const std::vector<double>& x, std::vector<double>& y) {
  EXPLAINIT_CHECK(x.size() == y.size(), "Axpy size mismatch");
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

}  // namespace explainit::la
