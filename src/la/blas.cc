#include "la/blas.h"

#include <algorithm>

#include "la/simd.h"

namespace explainit::la {

namespace {

using simd::GemmOperand;

inline GemmOperand Plain(const Matrix& m) {
  return GemmOperand{m.data(), m.cols(), false};
}

inline GemmOperand Trans(const Matrix& m) {
  return GemmOperand{m.data(), m.cols(), true};
}

void MirrorLower(Matrix* c) {
  const size_t n = c->rows();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < i; ++j) (*c)(i, j) = (*c)(j, i);
  }
}

}  // namespace

Matrix MatMul(const Matrix& a, const Matrix& b) {
  EXPLAINIT_CHECK(a.cols() == b.rows(),
                  "MatMul shape mismatch " << a.cols() << " vs " << b.rows());
  Matrix c(a.rows(), b.cols());
  simd::Active().gemm(a.rows(), b.cols(), a.cols(), Plain(a), Plain(b),
                      c.data(), c.cols(), false);
  return c;
}

Matrix MatTMul(const Matrix& a, const Matrix& b) {
  EXPLAINIT_CHECK(a.rows() == b.rows(),
                  "MatTMul shape mismatch " << a.rows() << " vs " << b.rows());
  Matrix c(a.cols(), b.cols());
  simd::Active().gemm(a.cols(), b.cols(), a.rows(), Trans(a), Plain(b),
                      c.data(), c.cols(), false);
  return c;
}

Matrix MatMulT(const Matrix& a, const Matrix& b) {
  EXPLAINIT_CHECK(a.cols() == b.cols(),
                  "MatMulT shape mismatch " << a.cols() << " vs " << b.cols());
  Matrix c(a.rows(), b.rows());
  simd::Active().gemm(a.rows(), b.rows(), a.cols(), Plain(a), Trans(b),
                      c.data(), c.cols(), false);
  return c;
}

Matrix Gram(const Matrix& a) {
  Matrix c(a.cols(), a.cols());
  simd::Active().gemm(a.cols(), a.cols(), a.rows(), Trans(a), Plain(a),
                      c.data(), c.cols(), true);
  MirrorLower(&c);
  return c;
}

Matrix GramT(const Matrix& a) {
  Matrix c(a.rows(), a.rows());
  simd::Active().gemm(a.rows(), a.rows(), a.cols(), Plain(a), Trans(a),
                      c.data(), c.cols(), true);
  MirrorLower(&c);
  return c;
}

void GramInto(const double* a, size_t rows, size_t cols, size_t lda,
              Matrix* out) {
  if (out->rows() != cols || out->cols() != cols) {
    *out = Matrix(cols, cols);
  } else {
    std::fill(out->data(), out->data() + cols * cols, 0.0);
  }
  simd::Active().gemm(cols, cols, rows, GemmOperand{a, lda, true},
                      GemmOperand{a, lda, false}, out->data(), cols, true);
  MirrorLower(out);
}

void CrossInto(const double* a, size_t rows, size_t acols, size_t lda,
               const double* b, size_t bcols, size_t ldb, Matrix* out) {
  if (out->rows() != acols || out->cols() != bcols) {
    *out = Matrix(acols, bcols);
  } else {
    std::fill(out->data(), out->data() + acols * bcols, 0.0);
  }
  simd::Active().gemm(acols, bcols, rows, GemmOperand{a, lda, true},
                      GemmOperand{b, ldb, false}, out->data(), bcols, false);
}

void MatMulInto(const double* a, size_t m, size_t k, size_t lda,
                const double* b, size_t n, size_t ldb, Matrix* out) {
  if (out->rows() != m || out->cols() != n) {
    *out = Matrix(m, n);
  } else {
    std::fill(out->data(), out->data() + m * n, 0.0);
  }
  simd::Active().gemm(m, n, k, GemmOperand{a, lda, false},
                      GemmOperand{b, ldb, false}, out->data(), n, false);
}

std::vector<double> MatVec(const Matrix& a, const std::vector<double>& x) {
  EXPLAINIT_CHECK(a.cols() == x.size(), "MatVec shape mismatch");
  const auto& kernels = simd::Active();
  std::vector<double> y(a.rows(), 0.0);
  for (size_t i = 0; i < a.rows(); ++i) {
    y[i] = kernels.dot(a.Row(i), x.data(), a.cols());
  }
  return y;
}

std::vector<double> MatTVec(const Matrix& a, const std::vector<double>& x) {
  EXPLAINIT_CHECK(a.rows() == x.size(), "MatTVec shape mismatch");
  const auto& kernels = simd::Active();
  std::vector<double> y(a.cols(), 0.0);
  for (size_t i = 0; i < a.rows(); ++i) {
    kernels.axpy(x[i], a.Row(i), y.data(), a.cols());
  }
  return y;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  EXPLAINIT_CHECK(a.size() == b.size(), "Dot size mismatch");
  return simd::Active().dot(a.data(), b.data(), a.size());
}

void Axpy(double alpha, const std::vector<double>& x, std::vector<double>& y) {
  EXPLAINIT_CHECK(x.size() == y.size(), "Axpy size mismatch");
  simd::Active().axpy(alpha, x.data(), y.data(), x.size());
}

}  // namespace explainit::la
