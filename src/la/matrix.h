// Dense row-major matrix of doubles — the "dense arrays" optimisation of
// §4.2. Feature matrices are (T data points) x (n features).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/logging.h"

namespace explainit::la {

/// Dense, row-major, heap-allocated matrix of doubles.
///
/// Row-major layout matches the paper's numpy arrays and makes per-timestep
/// access (a row = one observation across features) cache friendly.
class Matrix {
 public:
  /// An empty 0x0 matrix.
  Matrix() = default;
  /// A rows x cols matrix, zero initialised.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}
  /// A rows x cols matrix initialised from `values` (row-major).
  Matrix(size_t rows, size_t cols, std::vector<double> values)
      : rows_(rows), cols_(cols), data_(std::move(values)) {
    EXPLAINIT_CHECK(data_.size() == rows_ * cols_,
                    "value count " << data_.size() << " != " << rows_ << "x"
                                   << cols_);
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Pointer to the start of row r.
  double* Row(size_t r) { return data_.data() + r * cols_; }
  const double* Row(size_t r) const { return data_.data() + r * cols_; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Returns column c as a vector (strided copy).
  std::vector<double> Col(size_t c) const;
  /// Overwrites column c from `v` (v.size() must equal rows()).
  void SetCol(size_t c, const std::vector<double>& v);

  /// Returns the transpose.
  Matrix Transposed() const;

  /// Returns rows [row_begin, row_end) as a new matrix.
  Matrix SliceRows(size_t row_begin, size_t row_end) const;
  /// Returns the listed columns (in order) as a new matrix.
  Matrix SelectCols(const std::vector<size_t>& cols) const;

  /// Horizontal concatenation: [this | other]. Row counts must match.
  Matrix ConcatCols(const Matrix& other) const;

  /// Elementwise in-place operations.
  void AddInPlace(const Matrix& other);
  void SubInPlace(const Matrix& other);
  void ScaleInPlace(double s);

  /// Frobenius-norm squared (sum of squared entries).
  double FrobeniusSquared() const;

  /// Identity matrix of size n.
  static Matrix Identity(size_t n);

  /// Human-readable rendering (small matrices; for tests/debugging).
  std::string ToString(int max_rows = 8, int max_cols = 8) const;

  bool operator==(const Matrix& other) const = default;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace explainit::la
