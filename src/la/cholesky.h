// Cholesky factorisation and positive-definite solves — the inner solver of
// Ridge regression ((X^T X + lambda I) beta = X^T Y). Panel updates run
// through the dispatched SIMD kernels (la/simd.h).
#pragma once

#include "common/result.h"
#include "la/matrix.h"

namespace explainit::la {

/// Cholesky factor of a symmetric positive-definite matrix: A = L L^T with L
/// lower triangular. Fails with InvalidArgument when A is not (numerically)
/// positive definite.
Result<Matrix> CholeskyFactor(const Matrix& a);

/// Solves A X = B given the Cholesky factor L of A (forward + back
/// substitution per column of B).
Matrix CholeskySolve(const Matrix& l, const Matrix& b);

/// Allocation-reusing CholeskySolve: `x` receives the solution, `scratch`
/// holds the forward-substitution intermediate. Both are resized as needed;
/// repeated solves against same-shaped systems reuse their storage.
void CholeskySolveInto(const Matrix& l, const Matrix& b, Matrix* x,
                       Matrix* scratch);

/// Factors the SPD matrix A, adding `jitter` * max(1, max|diag|) * 1000^i to
/// the diagonal on failure (up to 3 escalations, cumulative). The separated
/// factor step of SolveSpd: callers that reuse one factor across many
/// right-hand sides (the ridge CV cache) factor once and CholeskySolve
/// repeatedly.
Result<Matrix> FactorSpdJittered(Matrix a, double jitter = 1e-10);

/// Convenience: solves the SPD system A X = B, adding `jitter` * I to the
/// diagonal on failure (up to 3 escalations). Used where A is a Gram matrix
/// that may be rank deficient (duplicate metrics are common in monitoring
/// data).
Result<Matrix> SolveSpd(Matrix a, const Matrix& b, double jitter = 1e-10);

}  // namespace explainit::la
