// Cholesky factorisation and positive-definite solves — the inner solver of
// Ridge regression ((X^T X + lambda I) beta = X^T Y).
#pragma once

#include "common/result.h"
#include "la/matrix.h"

namespace explainit::la {

/// Cholesky factor of a symmetric positive-definite matrix: A = L L^T with L
/// lower triangular. Fails with InvalidArgument when A is not (numerically)
/// positive definite.
Result<Matrix> CholeskyFactor(const Matrix& a);

/// Solves A X = B given the Cholesky factor L of A (forward + back
/// substitution per column of B).
Matrix CholeskySolve(const Matrix& l, const Matrix& b);

/// Convenience: solves the SPD system A X = B, adding `jitter` * I to the
/// diagonal on failure (up to 3 escalations). Used where A is a Gram matrix
/// that may be rank deficient (duplicate metrics are common in monitoring
/// data).
Result<Matrix> SolveSpd(Matrix a, const Matrix& b, double jitter = 1e-10);

}  // namespace explainit::la
