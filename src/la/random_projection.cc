#include "la/random_projection.h"

#include <cmath>

#include "la/blas.h"

namespace explainit::la {

Matrix SampleProjectionMatrix(size_t n, size_t d, Rng& rng) {
  Matrix p(n, d);
  rng.FillNormal(p.data(), p.size());
  const double scale = 1.0 / std::sqrt(static_cast<double>(d));
  p.ScaleInPlace(scale);
  return p;
}

Matrix ProjectIfWide(const Matrix& x, size_t d, Rng& rng) {
  if (x.cols() <= d) return x;
  Matrix p = SampleProjectionMatrix(x.cols(), d, rng);
  return MatMul(x, p);
}

}  // namespace explainit::la
