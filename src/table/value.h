// Dynamically typed cell values for the columnar table layer. The paper's
// Feature Family Table schema (Figure 4) is {ts: datetime, name: string,
// v: map<string, double>}; tags are map<string, string>. A single Value
// variant with a nested-map case covers both.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>

#include "common/time_util.h"

namespace explainit::table {

/// Runtime type of a Value / column.
enum class DataType {
  kNull,
  kDouble,
  kInt64,
  kTimestamp,  // epoch seconds, distinct from plain integers in SQL
  kString,
  kMap,  // string -> Value (used for tags and feature vectors)
};

std::string_view DataTypeName(DataType t);

class Value;
using ValueMap = std::map<std::string, Value>;

/// A dynamically typed value. Maps are held behind shared_ptr so copying a
/// Value (pervasive in the vectorised executor) stays O(1).
class Value {
 public:
  /// Null value.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Double(double v) { return Value(v); }
  static Value Int(int64_t v) { return Value(v); }
  static Value Timestamp(EpochSeconds t) { return Value(TimestampTag{t}); }
  static Value String(std::string s) { return Value(std::move(s)); }
  static Value Bool(bool b) { return Value(static_cast<int64_t>(b)); }
  static Value Map(ValueMap m) {
    return Value(std::make_shared<ValueMap>(std::move(m)));
  }

  DataType type() const;
  bool is_null() const { return type() == DataType::kNull; }

  /// Numeric access: doubles, ints and timestamps all convert; anything
  /// else yields 0 (SQL-style permissive arithmetic, callers that need
  /// strictness check type() first).
  double AsDouble() const;
  int64_t AsInt() const;
  EpochSeconds AsTimestamp() const { return AsInt(); }
  /// Truthiness: non-zero numeric, non-empty string; null is false.
  bool AsBool() const;
  /// String access; numeric values render to decimal text.
  std::string AsString() const;
  /// Borrowed pointer to the underlying string storage; nullptr when the
  /// value is not a string. Lets hot loops key on strings without copies.
  const std::string* TryString() const {
    return std::get_if<std::string>(&data_);
  }
  /// Map access; returns nullptr when not a map.
  const ValueMap* AsMap() const;

  /// SQL equality (null != anything, numeric types compare by value).
  bool Equals(const Value& other) const;
  /// SQL ordering for ORDER BY / comparisons: null sorts first; numerics
  /// compare numerically; strings lexicographically. Returns <0, 0, >0.
  int Compare(const Value& other) const;

  std::string ToString() const;

 private:
  struct TimestampTag {
    EpochSeconds t;
  };
  explicit Value(double v) : data_(v) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(TimestampTag t) : data_(t) {}
  explicit Value(std::string s) : data_(std::move(s)) {}
  explicit Value(std::shared_ptr<ValueMap> m) : data_(std::move(m)) {}

  std::variant<std::monostate, double, int64_t, TimestampTag, std::string,
               std::shared_ptr<ValueMap>>
      data_;
};

}  // namespace explainit::table
