#include "table/column_batch.h"

#include "common/logging.h"

namespace explainit::table {

ColumnBatch ColumnBatch::View(const Table& t, size_t row_begin, size_t rows,
                              const Schema* schema_override) {
  const Schema* schema =
      schema_override != nullptr ? schema_override : &t.schema();
  EXPLAINIT_CHECK(schema->num_fields() == t.num_columns(),
                  "schema override width " << schema->num_fields()
                                           << " != table width "
                                           << t.num_columns());
  EXPLAINIT_CHECK(row_begin + rows <= t.num_rows(),
                  "batch window [" << row_begin << ", " << row_begin + rows
                                   << ") exceeds " << t.num_rows()
                                   << " rows");
  ColumnBatch batch(schema, rows);
  for (size_t c = 0; c < t.num_columns(); ++c) {
    batch.AddBorrowedColumn(t.column(c).data() + row_begin);
  }
  return batch;
}

void ColumnBatch::AddOwnedColumn(std::vector<Value> data) {
  EXPLAINIT_CHECK(data.size() == num_rows_,
                  "owned column size " << data.size() << " != batch rows "
                                       << num_rows_);
  owned_.push_back(std::move(data));
  cols_.push_back(owned_.back().data());
}

ColumnBatch ColumnBatch::Gather(const std::vector<uint32_t>& indices) const {
  ColumnBatch out(schema_, indices.size());
  for (size_t c = 0; c < cols_.size(); ++c) {
    std::vector<Value> col;
    col.reserve(indices.size());
    const Value* src = cols_[c];
    for (uint32_t i : indices) col.push_back(src[i]);
    out.AddOwnedColumn(std::move(col));
  }
  return out;
}

void ColumnBatch::Truncate(size_t n) {
  if (n < num_rows_) num_rows_ = n;
}

void ColumnBatch::AppendTo(Table* out) const {
  out->AppendColumns(cols_, num_rows_);
}

}  // namespace explainit::table
