#include "table/table.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/strings.h"

namespace explainit::table {

void Schema::AddField(Field f) {
  index_.try_emplace(ToLower(f.name), fields_.size());
  fields_.push_back(std::move(f));
}

std::optional<size_t> Schema::FieldIndex(std::string_view name) const {
  const auto it = index_.find(ToLower(std::string(name)));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ": ";
    out += DataTypeName(fields_[i].type);
  }
  out += ")";
  return out;
}

void Table::AppendRow(std::vector<Value> row) {
  EXPLAINIT_CHECK(row.size() == columns_.size(),
                  "row width " << row.size() << " != schema width "
                               << columns_.size());
  for (size_t c = 0; c < row.size(); ++c) {
    columns_[c].push_back(std::move(row[c]));
  }
  ++num_rows_;
}

void Table::AppendColumns(const std::vector<const Value*>& cols, size_t n) {
  EXPLAINIT_CHECK(cols.size() == columns_.size(),
                  "batch width " << cols.size() << " != schema width "
                                 << columns_.size());
  for (size_t c = 0; c < cols.size(); ++c) {
    columns_[c].insert(columns_[c].end(), cols[c], cols[c] + n);
  }
  num_rows_ += n;
}

Result<Table> Table::FromColumns(Schema schema,
                                 std::vector<std::vector<Value>> columns) {
  if (columns.size() != schema.num_fields()) {
    return Status::InvalidArgument(
        "column count " + std::to_string(columns.size()) +
        " != schema width " + std::to_string(schema.num_fields()));
  }
  const size_t rows = columns.empty() ? 0 : columns[0].size();
  for (const auto& col : columns) {
    if (col.size() != rows) {
      return Status::InvalidArgument("FromColumns requires equal lengths");
    }
  }
  Table out(std::move(schema));
  out.columns_ = std::move(columns);
  out.num_rows_ = rows;
  return out;
}

std::vector<Value> Table::Row(size_t row) const {
  std::vector<Value> out;
  out.reserve(columns_.size());
  for (const auto& col : columns_) out.push_back(col[row]);
  return out;
}

Result<Table> Table::SelectColumns(
    const std::vector<std::string>& names) const {
  Schema out_schema;
  std::vector<size_t> indices;
  for (const std::string& name : names) {
    auto idx = schema_.FieldIndex(name);
    if (!idx.has_value()) {
      return Status::NotFound("column not found: " + name);
    }
    indices.push_back(*idx);
    out_schema.AddField(schema_.field(*idx));
  }
  Table out(out_schema);
  for (size_t i = 0; i < indices.size(); ++i) {
    out.columns_[i] = columns_[indices[i]];
  }
  out.num_rows_ = num_rows_;
  return out;
}

Result<Table> Table::SortBy(const std::string& column_name,
                            bool ascending) const {
  auto idx = schema_.FieldIndex(column_name);
  if (!idx.has_value()) {
    return Status::NotFound("sort column not found: " + column_name);
  }
  std::vector<size_t> order(num_rows_);
  std::iota(order.begin(), order.end(), size_t{0});
  const std::vector<Value>& key = columns_[*idx];
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const int cmp = key[a].Compare(key[b]);
    return ascending ? cmp < 0 : cmp > 0;
  });
  Table out(schema_);
  out.num_rows_ = num_rows_;
  for (size_t c = 0; c < columns_.size(); ++c) {
    out.columns_[c].reserve(num_rows_);
    for (size_t r : order) out.columns_[c].push_back(columns_[c][r]);
  }
  return out;
}

Status Table::UnionAll(const Table& other) {
  if (other.num_columns() != num_columns()) {
    return Status::InvalidArgument(
        "UNION ALL requires equal column counts: " +
        std::to_string(num_columns()) + " vs " +
        std::to_string(other.num_columns()));
  }
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].insert(columns_[c].end(), other.columns_[c].begin(),
                       other.columns_[c].end());
  }
  num_rows_ += other.num_rows_;
  return Status::OK();
}

void Table::Truncate(size_t n) {
  if (n >= num_rows_) return;
  for (auto& col : columns_) col.resize(n);
  num_rows_ = n;
}

std::string Table::ToString(size_t max_rows) const {
  const size_t show = std::min(num_rows_, max_rows);
  // Compute column widths.
  std::vector<size_t> widths(columns_.size());
  std::vector<std::vector<std::string>> cells(show);
  for (size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = schema_.field(c).name.size();
  }
  for (size_t r = 0; r < show; ++r) {
    cells[r].resize(columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) {
      cells[r][c] = columns_[c][r].ToString();
      widths[c] = std::max(widths[c], cells[r][c].size());
    }
  }
  std::string out;
  for (size_t c = 0; c < columns_.size(); ++c) {
    out += StrFormat("%-*s  ", static_cast<int>(widths[c]),
                     schema_.field(c).name.c_str());
  }
  out += "\n";
  for (size_t r = 0; r < show; ++r) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      out += StrFormat("%-*s  ", static_cast<int>(widths[c]),
                       cells[r][c].c_str());
    }
    out += "\n";
  }
  if (show < num_rows_) {
    out += StrFormat("... (%zu more rows)\n", num_rows_ - show);
  }
  return out;
}

}  // namespace explainit::table
