// ColumnBatch: the fixed-size unit of exchange between physical SQL
// operators. A batch is a columnar *view*: each column is a contiguous
// Value array that is either borrowed (zero-copy slices of a backing
// Table, star pass-through in projections) or owned by the batch
// (filter compaction, computed projections, join/aggregate outputs).
//
// Lifetime contract: a borrowed column (and the borrowed schema pointer)
// must outlive the batch. In the operator pipeline the producing operator
// keeps its backing storage alive until the consumer has processed the
// batch, so a batch is valid until the next Next() call on its producer.
#pragma once

#include <cstdint>
#include <vector>

#include "table/table.h"

namespace explainit::table {

/// A lightweight columnar view over a run of rows. Move-only: owned
/// columns carry heap buffers whose addresses must stay stable.
class ColumnBatch {
 public:
  ColumnBatch() = default;
  /// An empty batch with `num_rows` rows and no columns yet (columns are
  /// attached with AddBorrowedColumn / AddOwnedColumn). `num_rows` may be
  /// non-zero with zero columns: SELECT without FROM has one such row.
  ColumnBatch(const Schema* schema, size_t num_rows)
      : schema_(schema), num_rows_(num_rows) {}

  ColumnBatch(ColumnBatch&&) = default;
  ColumnBatch& operator=(ColumnBatch&&) = default;
  ColumnBatch(const ColumnBatch&) = delete;
  ColumnBatch& operator=(const ColumnBatch&) = delete;

  /// Zero-copy view over rows [row_begin, row_begin + rows) of `t`.
  /// `schema_override` substitutes a different schema of equal width
  /// (column qualification in joins renames without copying).
  static ColumnBatch View(const Table& t, size_t row_begin, size_t rows,
                          const Schema* schema_override = nullptr);

  const Schema& schema() const { return *schema_; }
  void set_schema(const Schema* schema) { schema_ = schema; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return cols_.size(); }

  const Value& At(size_t row, size_t col) const { return cols_[col][row]; }
  /// Raw contiguous cell array for one column (num_rows() cells).
  const Value* column(size_t col) const { return cols_[col]; }

  /// Attaches a column borrowed from external storage (caller keeps it
  /// alive; must hold at least num_rows() cells).
  void AddBorrowedColumn(const Value* data) { cols_.push_back(data); }

  /// Attaches a column owned by this batch (size must equal num_rows()).
  void AddOwnedColumn(std::vector<Value> data);

  /// New batch (same schema) holding only the rows at `indices`; all
  /// columns become owned. The filter compaction step.
  ColumnBatch Gather(const std::vector<uint32_t>& indices) const;

  /// Keeps rows [0, n). Borrowed/owned storage is untouched; only the
  /// visible row count shrinks (LIMIT).
  void Truncate(size_t n);

  /// Bulk-appends every row of this batch to `out` (schema widths must
  /// match; column-wise, no per-row vectors).
  void AppendTo(Table* out) const;

 private:
  const Schema* schema_ = nullptr;
  std::vector<const Value*> cols_;
  std::vector<std::vector<Value>> owned_;  // backing for owned columns
  size_t num_rows_ = 0;
};

/// Default number of rows exchanged per batch.
inline constexpr size_t kDefaultBatchRows = 1024;

}  // namespace explainit::table
