// Columnar in-memory tables: the exchange format between the tsdb scan
// layer, the SQL executor, and the feature-family builder (Figure 4's
// Feature Family / Hypothesis / Score tables).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "table/value.h"

namespace explainit::table {

/// A named, typed column in a schema.
struct Field {
  std::string name;
  DataType type = DataType::kNull;

  bool operator==(const Field& other) const = default;
};

/// An ordered list of fields.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) {
    for (Field& f : fields) AddField(std::move(f));
  }

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field with the given name (case-insensitive, SQL style);
  /// nullopt when absent. O(1): a lowercase name -> index map is kept in
  /// step with fields_, so lookups are pure reads (safe for concurrent
  /// const access, unlike a lazily built cache).
  std::optional<size_t> FieldIndex(std::string_view name) const;

  void AddField(Field f);

  std::string ToString() const;
  bool operator==(const Schema& other) const {
    return fields_ == other.fields_;
  }

 private:
  std::vector<Field> fields_;
  /// Lookup index maintained by AddField. Duplicate lowercase names keep
  /// the first index, matching the original linear first-match scan.
  std::unordered_map<std::string, size_t> index_;
};

/// A column-major table of Values.
///
/// Cells are dynamically typed; the declared column type is advisory (the
/// SQL layer uses it for planning) and kNull-typed columns accept anything.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema)
      : schema_(std::move(schema)), columns_(schema_.num_fields()) {}

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  /// Appends one row; the value count must match the schema width.
  void AppendRow(std::vector<Value> row);

  /// Bulk-appends `n` rows given one contiguous cell array per column (the
  /// vectorised pipeline's materialisation path; avoids per-row vectors).
  void AppendColumns(const std::vector<const Value*>& cols, size_t n);

  /// Builds a table by *moving* fully formed columns in (no cell copies).
  /// Column count must match the schema width and all columns must share
  /// one length. The zero-copy construction path for bulk producers
  /// (tsdb scan materialisation).
  static Result<Table> FromColumns(Schema schema,
                                   std::vector<std::vector<Value>> columns);

  const Value& At(size_t row, size_t col) const {
    return columns_[col][row];
  }
  const std::vector<Value>& column(size_t col) const { return columns_[col]; }

  /// Full row as a vector (copies cells; cells are cheap to copy).
  std::vector<Value> Row(size_t row) const;

  /// Returns a table with only the named columns, in the given order.
  Result<Table> SelectColumns(const std::vector<std::string>& names) const;

  /// Stable sort of rows by a column (ascending or descending).
  Result<Table> SortBy(const std::string& column_name,
                       bool ascending = true) const;

  /// Appends all rows of `other` (schemas must be the same width; field
  /// names of `this` win — SQL UNION ALL semantics).
  Status UnionAll(const Table& other);

  /// Keeps rows [0, n).
  void Truncate(size_t n);

  /// Renders up to max_rows as an aligned text table.
  std::string ToString(size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<std::vector<Value>> columns_;
  size_t num_rows_ = 0;
};

}  // namespace explainit::table
