#include "table/value.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace explainit::table {

std::string_view DataTypeName(DataType t) {
  switch (t) {
    case DataType::kNull:
      return "NULL";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kInt64:
      return "INT64";
    case DataType::kTimestamp:
      return "TIMESTAMP";
    case DataType::kString:
      return "STRING";
    case DataType::kMap:
      return "MAP";
  }
  return "?";
}

DataType Value::type() const {
  switch (data_.index()) {
    case 0:
      return DataType::kNull;
    case 1:
      return DataType::kDouble;
    case 2:
      return DataType::kInt64;
    case 3:
      return DataType::kTimestamp;
    case 4:
      return DataType::kString;
    case 5:
      return DataType::kMap;
  }
  return DataType::kNull;
}

double Value::AsDouble() const {
  switch (data_.index()) {
    case 1:
      return std::get<double>(data_);
    case 2:
      return static_cast<double>(std::get<int64_t>(data_));
    case 3:
      return static_cast<double>(std::get<TimestampTag>(data_).t);
    case 4: {
      const std::string& s = std::get<std::string>(data_);
      double out = 0.0;
      std::from_chars(s.data(), s.data() + s.size(), out);
      return out;
    }
    default:
      return 0.0;
  }
}

int64_t Value::AsInt() const {
  switch (data_.index()) {
    case 1:
      return static_cast<int64_t>(std::get<double>(data_));
    case 2:
      return std::get<int64_t>(data_);
    case 3:
      return std::get<TimestampTag>(data_).t;
    case 4: {
      const std::string& s = std::get<std::string>(data_);
      int64_t out = 0;
      std::from_chars(s.data(), s.data() + s.size(), out);
      return out;
    }
    default:
      return 0;
  }
}

bool Value::AsBool() const {
  switch (data_.index()) {
    case 1:
      return std::get<double>(data_) != 0.0;
    case 2:
      return std::get<int64_t>(data_) != 0;
    case 3:
      return true;
    case 4:
      return !std::get<std::string>(data_).empty();
    case 5:
      return true;
    default:
      return false;
  }
}

std::string Value::AsString() const {
  switch (data_.index()) {
    case 4:
      return std::get<std::string>(data_);
    default:
      return ToString();
  }
}

const ValueMap* Value::AsMap() const {
  if (data_.index() != 5) return nullptr;
  return std::get<std::shared_ptr<ValueMap>>(data_).get();
}

bool Value::Equals(const Value& other) const {
  if (is_null() || other.is_null()) return false;  // SQL null semantics
  const bool this_num = type() == DataType::kDouble ||
                        type() == DataType::kInt64 ||
                        type() == DataType::kTimestamp;
  const bool other_num = other.type() == DataType::kDouble ||
                         other.type() == DataType::kInt64 ||
                         other.type() == DataType::kTimestamp;
  if (this_num && other_num) return AsDouble() == other.AsDouble();
  if (type() != other.type()) return false;
  if (type() == DataType::kString) {
    return std::get<std::string>(data_) == std::get<std::string>(other.data_);
  }
  if (type() == DataType::kMap) {
    const ValueMap* a = AsMap();
    const ValueMap* b = other.AsMap();
    if (a->size() != b->size()) return false;
    auto it_b = b->begin();
    for (auto it_a = a->begin(); it_a != a->end(); ++it_a, ++it_b) {
      if (it_a->first != it_b->first || !it_a->second.Equals(it_b->second)) {
        return false;
      }
    }
    return true;
  }
  return false;
}

int Value::Compare(const Value& other) const {
  // Nulls sort first.
  if (is_null() && other.is_null()) return 0;
  if (is_null()) return -1;
  if (other.is_null()) return 1;
  const bool this_num = type() != DataType::kString && type() != DataType::kMap;
  const bool other_num =
      other.type() != DataType::kString && other.type() != DataType::kMap;
  if (this_num && other_num) {
    const double a = AsDouble(), b = other.AsDouble();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  const std::string a = AsString(), b = other.AsString();
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

std::string Value::ToString() const {
  switch (data_.index()) {
    case 0:
      return "NULL";
    case 1: {
      char buf[32];
      const double v = std::get<double>(data_);
      if (v == std::floor(v) && std::abs(v) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%.1f", v);
      } else {
        std::snprintf(buf, sizeof(buf), "%.6g", v);
      }
      return buf;
    }
    case 2:
      return std::to_string(std::get<int64_t>(data_));
    case 3:
      return FormatTimestamp(std::get<TimestampTag>(data_).t);
    case 4:
      return std::get<std::string>(data_);
    case 5: {
      std::string out = "{";
      bool first = true;
      for (const auto& [k, v] : *AsMap()) {
        if (!first) out += ", ";
        first = false;
        out += k + "=" + v.ToString();
      }
      out += "}";
      return out;
    }
  }
  return "?";
}

}  // namespace explainit::table
