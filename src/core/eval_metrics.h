// Ranking-quality metrics from §6.1: discounted gain with a Zipfian 1/r
// discount (plus the 1/log2(1+r) variant), success@k, and the Table 6
// summary statistics (arithmetic mean, harmonic mean with a 0.001 floor
// for failures).
#pragma once

#include <set>
#include <string>
#include <vector>

namespace explainit::core {

/// Ground truth for one scenario: which families are causes and which are
/// merely effects of the target.
struct ScenarioLabels {
  std::set<std::string> causes;
  std::set<std::string> effects;  // labelled but irrelevant for gain
};

/// Metrics of one ranking against its labels.
struct RankingMetrics {
  /// 1-based rank of the first cause within the top-k cutoff; 0 = failure
  /// ("-" in Table 6).
  size_t first_cause_rank = 0;
  /// Discounted gain 1/r (0 on failure).
  double discounted_gain = 0.0;
  /// Log-discount variant 1/log2(1+r) (0 on failure).
  double log_discounted_gain = 0.0;
  bool failed = true;
};

/// Evaluates an ordered list of family names against labels, with the
/// paper's top-k cutoff (default 20).
RankingMetrics EvaluateRanking(const std::vector<std::string>& ranking,
                               const ScenarioLabels& labels,
                               size_t top_k_cutoff = 20);

/// success@k: 1 when a cause appears within the top k, else 0.
double SuccessAtK(const std::vector<std::string>& ranking,
                  const ScenarioLabels& labels, size_t k);

/// Summary across scenarios for one scoring method (Table 6 bottom).
struct MethodSummary {
  double harmonic_mean_gain = 0.0;    // failures floored at 0.001
  double average_gain = 0.0;          // failures contribute 0
  double stdev_gain = 0.0;
  double success_top1 = 0.0;
  double success_top5 = 0.0;
  double success_top10 = 0.0;
  double success_top20 = 0.0;
};

/// Aggregates per-scenario metrics the way Table 6 does: the harmonic mean
/// substitutes 0.001 for failures; the average uses 0.
MethodSummary SummarizeMethod(
    const std::vector<RankingMetrics>& per_scenario,
    const std::vector<std::vector<std::string>>& rankings,
    const std::vector<ScenarioLabels>& labels);

}  // namespace explainit::core
