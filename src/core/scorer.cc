#include "core/scorer.h"

#include <algorithm>
#include <cmath>

#include "la/random_projection.h"
#include "stats/lasso.h"
#include "stats/pca.h"
#include "stats/pearson.h"

namespace explainit::core {

namespace {

double Clip01(double v) { return std::clamp(v, 0.0, 1.0); }

Status CheckShapes(const la::Matrix& x, const la::Matrix& y,
                   const la::Matrix& z) {
  if (x.rows() != y.rows()) {
    return Status::InvalidArgument("X/Y row mismatch");
  }
  if (!z.empty() && z.rows() != y.rows()) {
    return Status::InvalidArgument("Z/Y row mismatch");
  }
  if (x.cols() == 0 || y.cols() == 0) {
    return Status::InvalidArgument("X and Y must each have >= 1 feature");
  }
  return Status::OK();
}

// Whole cross-validated fits carry their Result so failures cache too
// (an ill-conditioned Y~Z fit fails identically for every hypothesis).
struct FitValue {
  Result<stats::RidgeCvResult> result;
};

stats::CacheKey FitKey(const la::Matrix& x, const la::Matrix& y,
                       const stats::RidgeOptions& options) {
  stats::CacheKey key = stats::HashMatrix(x);
  const stats::CacheKey ykey = stats::HashMatrix(y);
  key = key.Mixed(ykey.hi).Mixed(ykey.lo);
  key = key.Mixed(options.num_folds).Mixed(options.standardize ? 1 : 2);
  for (double lambda : options.lambdas) {
    key = key.Mixed(stats::SaltFromDouble(lambda));
  }
  return key;
}

}  // namespace

Result<ScoreResult> CorrMeanScorer::DoScore(const la::Matrix& x,
                                            const la::Matrix& y,
                                            const la::Matrix& z,
                                            const ScoringContext* /*ctx*/)
    const {
  EXPLAINIT_RETURN_IF_ERROR(CheckShapes(x, y, z));
  ScoreResult out;
  out.score = Clip01(stats::CorrelationSummary(x, y).mean_abs);
  return out;
}

Result<ScoreResult> CorrMaxScorer::DoScore(const la::Matrix& x,
                                           const la::Matrix& y,
                                           const la::Matrix& z,
                                           const ScoringContext* /*ctx*/)
    const {
  EXPLAINIT_RETURN_IF_ERROR(CheckShapes(x, y, z));
  ScoreResult out;
  out.score = Clip01(stats::CorrelationSummary(x, y).max_abs);
  return out;
}

Result<ScoreResult> ConditionalRidgeScore(const la::Matrix& x,
                                          const la::Matrix& y,
                                          const la::Matrix& z,
                                          const stats::RidgeOptions& options,
                                          const ScoringContext* ctx) {
  stats::RidgeRegression ridge(options);
  stats::FitContext fit_ctx;
  const stats::FitContext* fit = nullptr;
  if (ctx != nullptr) {
    fit_ctx = ctx->fit_context();
    fit = &fit_ctx;
  }
  // Regress Y ~ Z and X ~ Z; score the residual-on-residual regression.
  // The Y~Z fit does not depend on the candidate: under a shared cache the
  // first hypothesis computes it and every other one reuses the result.
  std::shared_ptr<const FitValue> yz;
  auto fit_yz = [&] {
    return std::make_shared<FitValue>(FitValue{ridge.FitCv(z, y, fit)});
  };
  if (ctx != nullptr && ctx->cache != nullptr) {
    const size_t bytes =
        (2 * y.rows() * y.cols() + z.cols() * y.cols()) * sizeof(double);
    yz = ctx->cache->Get<FitValue>(stats::ScoringCache::Slot::kFit,
                                   FitKey(z, y, options), bytes, fit_yz);
  } else {
    yz = fit_yz();
  }
  if (!yz->result.ok()) return yz->result.status();
  EXPLAINIT_ASSIGN_OR_RETURN(stats::RidgeCvResult xz, ridge.FitCv(z, x, fit));
  EXPLAINIT_ASSIGN_OR_RETURN(
      stats::RidgeCvResult final_fit,
      ridge.FitCv(xz.residuals, yz->result.value().residuals, fit));
  ScoreResult out;
  out.score = Clip01(final_fit.cv_r2);
  out.best_lambda = final_fit.best_lambda;
  // Diagnostic overlay: E[Y | X, Z] = E[Y|Z] + E[RY;Z | RX;Z].
  out.fitted = yz->result.value().fitted;
  out.fitted.AddInPlace(final_fit.fitted);
  return out;
}

RidgeScorer::RidgeScorer(RidgeScorerOptions options)
    : options_(std::move(options)) {}

std::string RidgeScorer::name() const {
  if (options_.projection_dim == 0) return "L2";
  return "L2-P" + std::to_string(options_.projection_dim);
}

Result<ScoreResult> RidgeScorer::ScoreOnce(const la::Matrix& x,
                                           const la::Matrix& y,
                                           const la::Matrix& z, Rng& rng,
                                           const ScoringContext* ctx) const {
  const size_t d = options_.projection_dim;
  la::Matrix px = x, py = y, pz = z;
  if (d > 0) {
    // §4.2: project each input that exceeds d columns.
    px = la::ProjectIfWide(x, d, rng);
    py = la::ProjectIfWide(y, d, rng);
    if (!z.empty()) pz = la::ProjectIfWide(z, d, rng);
  }
  if (pz.empty() || pz.cols() == 0) {
    stats::RidgeRegression ridge(options_.ridge);
    stats::FitContext fit_ctx;
    const stats::FitContext* fit = nullptr;
    if (ctx != nullptr) {
      fit_ctx = ctx->fit_context();
      fit = &fit_ctx;
    }
    EXPLAINIT_ASSIGN_OR_RETURN(stats::RidgeCvResult res,
                               ridge.FitCv(px, py, fit));
    ScoreResult out;
    out.score = Clip01(res.cv_r2);
    out.best_lambda = res.best_lambda;
    // Report the overlay only for unprojected Y (projected targets are not
    // in Y units).
    if (d == 0 || y.cols() <= d) out.fitted = res.fitted;
    return out;
  }
  return ConditionalRidgeScore(px, py, pz, options_.ridge, ctx);
}

Result<ScoreResult> RidgeScorer::DoScore(const la::Matrix& x,
                                         const la::Matrix& y,
                                         const la::Matrix& z,
                                         const ScoringContext* ctx) const {
  EXPLAINIT_RETURN_IF_ERROR(CheckShapes(x, y, z));
  const bool projecting =
      options_.projection_dim > 0 &&
      (x.cols() > options_.projection_dim ||
       y.cols() > options_.projection_dim ||
       (!z.empty() && z.cols() > options_.projection_dim));
  const size_t samples =
      projecting ? std::max<size_t>(1, options_.projection_samples) : 1;
  // Fork a per-call generator keyed by the data shape so concurrent calls
  // do not share mutable state.
  Rng rng(options_.seed ^ (x.cols() * 0x9E3779B97F4A7C15ULL) ^
          (y.cols() << 17) ^ x.rows());
  ScoreResult acc;
  double score_sum = 0.0;
  for (size_t s = 0; s < samples; ++s) {
    EXPLAINIT_ASSIGN_OR_RETURN(ScoreResult one, ScoreOnce(x, y, z, rng, ctx));
    score_sum += one.score;
    if (s == 0) acc = std::move(one);
  }
  acc.score = Clip01(score_sum / static_cast<double>(samples));
  return acc;
}

Result<ScoreResult> LassoScorer::DoScore(const la::Matrix& x,
                                         const la::Matrix& y,
                                         const la::Matrix& z,
                                         const ScoringContext* ctx) const {
  EXPLAINIT_RETURN_IF_ERROR(CheckShapes(x, y, z));
  if (!z.empty() && z.cols() > 0) {
    // Conditional queries share the ridge residualisation path.
    return ConditionalRidgeScore(x, y, z, stats::RidgeOptions{}, ctx);
  }
  stats::LassoRegression lasso;
  EXPLAINIT_ASSIGN_OR_RETURN(stats::LassoCvResult fit, lasso.FitCv(x, y));
  ScoreResult out;
  out.score = std::clamp(fit.cv_r2, 0.0, 1.0);
  out.best_lambda = fit.best_lambda;
  return out;
}

Result<ScoreResult> PcaRidgeScorer::DoScore(const la::Matrix& x,
                                            const la::Matrix& y,
                                            const la::Matrix& z,
                                            const ScoringContext* ctx) const {
  EXPLAINIT_RETURN_IF_ERROR(CheckShapes(x, y, z));
  la::Matrix px = x;
  if (x.cols() > dim_) {
    EXPLAINIT_ASSIGN_OR_RETURN(stats::PcaResult pca,
                               stats::ComputePca(x, dim_));
    px = stats::PcaTransform(x, pca);
  }
  RidgeScorer inner;
  return ctx != nullptr ? inner.Score(px, y, z, *ctx) : inner.Score(px, y, z);
}

Result<std::unique_ptr<Scorer>> MakeScorer(const std::string& name) {
  if (name == "CorrMean") return std::unique_ptr<Scorer>(new CorrMeanScorer());
  if (name == "CorrMax") return std::unique_ptr<Scorer>(new CorrMaxScorer());
  if (name == "L2") return std::unique_ptr<Scorer>(new RidgeScorer());
  if (name == "L2-P50") {
    RidgeScorerOptions opts;
    opts.projection_dim = 50;
    return std::unique_ptr<Scorer>(new RidgeScorer(opts));
  }
  if (name == "L2-P500") {
    RidgeScorerOptions opts;
    opts.projection_dim = 500;
    return std::unique_ptr<Scorer>(new RidgeScorer(opts));
  }
  if (name == "L1") return std::unique_ptr<Scorer>(new LassoScorer());
  if (name == "L2-PCA50") {
    return std::unique_ptr<Scorer>(new PcaRidgeScorer(50));
  }
  return Status::NotFound("unknown scorer: " + name);
}

}  // namespace explainit::core
