#include "core/feature_family.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>

#include "common/strings.h"

namespace explainit::core {

int FeatureFamily::FindFeature(const std::string& feature_name) const {
  for (size_t i = 0; i < feature_names.size(); ++i) {
    if (feature_names[i] == feature_name) return static_cast<int>(i);
  }
  return -1;
}

namespace {

Status CheckAligned(const std::vector<tsdb::SeriesData>& series) {
  if (series.empty()) return Status::OK();
  const auto& grid = series[0].timestamps;
  for (const tsdb::SeriesData& s : series) {
    if (s.timestamps != grid) {
      return Status::InvalidArgument(
          "series are not aligned to a common grid; use ScanAligned");
    }
  }
  return Status::OK();
}

FeatureFamily BuildOne(const std::string& name,
                       const std::vector<const tsdb::SeriesData*>& members) {
  FeatureFamily fam;
  fam.name = name;
  fam.timestamps = members.front()->timestamps;
  fam.feature_names.reserve(members.size());
  fam.data = la::Matrix(fam.timestamps.size(), members.size());
  for (size_t c = 0; c < members.size(); ++c) {
    fam.feature_names.push_back(members[c]->meta.ToString());
    for (size_t r = 0; r < fam.timestamps.size(); ++r) {
      fam.data(r, c) = members[c]->values[r];
    }
  }
  return fam;
}

}  // namespace

Result<std::vector<FeatureFamily>> BuildFamilies(
    const std::vector<tsdb::SeriesData>& series,
    const GroupingOptions& options) {
  EXPLAINIT_RETURN_IF_ERROR(CheckAligned(series));
  std::vector<FeatureFamily> out;
  if (series.empty()) return out;

  // Ordered map keeps family order deterministic.
  std::map<std::string, std::vector<const tsdb::SeriesData*>> groups;
  switch (options.key) {
    case GroupingKey::kMetricName:
      for (const tsdb::SeriesData& s : series) {
        groups[s.meta.metric_name].push_back(&s);
      }
      break;
    case GroupingKey::kTag: {
      if (options.tag_key.empty()) {
        return Status::InvalidArgument("tag grouping requires tag_key");
      }
      for (const tsdb::SeriesData& s : series) {
        const std::string& v = s.meta.tags.Get(options.tag_key);
        const std::string family_name =
            "*{" + options.tag_key + "=" + (v.empty() ? "NULL" : v) + "}";
        groups[family_name].push_back(&s);
      }
      break;
    }
    case GroupingKey::kPattern: {
      if (options.patterns.empty()) {
        return Status::InvalidArgument(
            "pattern grouping requires at least one pattern");
      }
      for (const std::string& pattern : options.patterns) {
        for (const tsdb::SeriesData& s : series) {
          if (GlobMatch(pattern, s.meta.ToString())) {
            groups[pattern].push_back(&s);
          }
        }
      }
      break;
    }
  }
  for (const auto& [name, members] : groups) {
    if (members.empty()) continue;
    out.push_back(BuildOne(name, members));
  }
  return out;
}

Result<std::vector<FeatureFamily>> FamiliesFromTable(
    const table::Table& t) {
  const auto ts_idx = t.schema().FieldIndex("ts");
  const auto name_idx = t.schema().FieldIndex("name");
  const auto v_idx = t.schema().FieldIndex("v");
  if (!ts_idx || !name_idx || !v_idx) {
    return Status::InvalidArgument(
        "feature family table must have columns (ts, name, v); got " +
        t.schema().ToString());
  }
  // family -> (feature -> (ts -> value)); ordered for determinism.
  struct FamilyAccum {
    std::vector<std::string> feature_order;
    std::map<std::string, std::map<EpochSeconds, double>> cells;
  };
  std::map<std::string, FamilyAccum> families;
  std::vector<std::string> family_order;
  std::set<EpochSeconds> grid_set;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    const table::Value& name_v = t.At(r, *name_idx);
    const table::Value& ts_v = t.At(r, *ts_idx);
    const table::ValueMap* v = t.At(r, *v_idx).AsMap();
    if (name_v.is_null() || ts_v.is_null() || v == nullptr) continue;
    const std::string fam_name = name_v.AsString();
    auto [it, inserted] = families.try_emplace(fam_name);
    if (inserted) family_order.push_back(fam_name);
    const EpochSeconds ts = ts_v.AsTimestamp();
    grid_set.insert(ts);
    for (const auto& [feature, val] : *v) {
      auto [cit, cinserted] = it->second.cells.try_emplace(feature);
      if (cinserted) it->second.feature_order.push_back(feature);
      if (!val.is_null()) cit->second[ts] = val.AsDouble();
    }
  }
  const std::vector<EpochSeconds> grid(grid_set.begin(), grid_set.end());
  std::vector<FeatureFamily> out;
  for (const std::string& fam_name : family_order) {
    const FamilyAccum& acc = families[fam_name];
    FeatureFamily fam;
    fam.name = fam_name;
    fam.timestamps = grid;
    fam.feature_names = acc.feature_order;
    fam.data = la::Matrix(grid.size(), acc.feature_order.size());
    for (size_t c = 0; c < acc.feature_order.size(); ++c) {
      const auto& cells = acc.cells.at(acc.feature_order[c]);
      std::vector<double> col(grid.size(),
                              std::numeric_limits<double>::quiet_NaN());
      for (size_t r = 0; r < grid.size(); ++r) {
        auto cit = cells.find(grid[r]);
        if (cit != cells.end()) col[r] = cit->second;
      }
      tsdb::InterpolateMissing(col);
      fam.data.SetCol(c, col);
    }
    out.push_back(std::move(fam));
  }
  return out;
}

table::Table FamilyToTable(const FeatureFamily& family) {
  table::Schema schema({{"ts", table::DataType::kTimestamp},
                        {"name", table::DataType::kString},
                        {"v", table::DataType::kMap}});
  table::Table out(schema);
  for (size_t r = 0; r < family.num_timestamps(); ++r) {
    table::ValueMap v;
    for (size_t c = 0; c < family.num_features(); ++c) {
      v[family.feature_names[c]] = table::Value::Double(family.data(r, c));
    }
    out.AppendRow({table::Value::Timestamp(family.timestamps[r]),
                   table::Value::String(family.name),
                   table::Value::Map(std::move(v))});
  }
  return out;
}

FeatureFamily SliceFamily(const FeatureFamily& family,
                          const TimeRange& range) {
  FeatureFamily out;
  out.name = family.name;
  out.feature_names = family.feature_names;
  std::vector<size_t> rows;
  for (size_t r = 0; r < family.num_timestamps(); ++r) {
    if (range.Contains(family.timestamps[r])) {
      rows.push_back(r);
      out.timestamps.push_back(family.timestamps[r]);
    }
  }
  out.data = la::Matrix(rows.size(), family.num_features());
  for (size_t i = 0; i < rows.size(); ++i) {
    std::copy(family.data.Row(rows[i]),
              family.data.Row(rows[i]) + family.num_features(),
              out.data.Row(i));
  }
  return out;
}

}  // namespace explainit::core
