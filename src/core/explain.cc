#include "core/explain.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"
#include "core/pseudocause.h"
#include "core/scorer.h"
#include "table/column_batch.h"

namespace explainit::core {

RankOperator::RankOperator(Engine* engine, const sql::ExecContext* ctx,
                           std::unique_ptr<sql::Operator> target,
                           std::unique_ptr<sql::Operator> given,
                           std::unique_ptr<sql::Operator> search_space,
                           Params params)
    : engine_(engine), ctx_(ctx), params_(std::move(params)) {
  AddChild(std::move(target));
  if (given != nullptr) {
    has_given_ = true;
    AddChild(std::move(given));
  }
  AddChild(std::move(search_space));
}

Result<table::Table> RankOperator::DrainChild(size_t i) {
  table::Table out(child(i)->output_schema());
  EXPLAINIT_RETURN_IF_ERROR(Drain(child(i), &out));
  return out;
}

Status RankOperator::OpenImpl() {
  for (size_t i = 0; i < num_children(); ++i) {
    EXPLAINIT_RETURN_IF_ERROR(child(i)->Open());
  }

  // Target (Y): same construction as Session::SetTargetByQuery.
  EXPLAINIT_ASSIGN_OR_RETURN(table::Table target_rows, DrainChild(0));
  EXPLAINIT_ASSIGN_OR_RETURN(
      table::Table target_ff,
      NormalizeToFeatureFamilyTable(target_rows, "target"));
  EXPLAINIT_ASSIGN_OR_RETURN(auto target_fams, FamiliesFromTable(target_ff));
  if (target_fams.empty()) {
    return Status::InvalidArgument(
        "EXPLAIN target query produced no families");
  }
  RankRequest req;
  req.target = MergeFamilies(target_fams, "target");

  // Conditioning set (Z): GIVEN <select> or GIVEN PSEUDOCAUSE (§3.4).
  if (has_given_) {
    EXPLAINIT_ASSIGN_OR_RETURN(table::Table given_rows, DrainChild(1));
    EXPLAINIT_ASSIGN_OR_RETURN(
        table::Table given_ff,
        NormalizeToFeatureFamilyTable(given_rows, "condition"));
    EXPLAINIT_ASSIGN_OR_RETURN(auto given_fams, FamiliesFromTable(given_ff));
    if (given_fams.empty()) {
      return Status::InvalidArgument(
          "EXPLAIN GIVEN query produced no families");
    }
    req.condition = MergeFamilies(given_fams, "Z:query");
  } else if (params_.given_pseudocause) {
    EXPLAINIT_ASSIGN_OR_RETURN(Pseudocause pc,
                               BuildPseudocause(req.target));
    req.condition = std::move(pc.systematic);
  }

  // Search space (X families): same construction as
  // Session::SetSearchSpaceByQuery.
  EXPLAINIT_ASSIGN_OR_RETURN(table::Table space_rows,
                             DrainChild(num_children() - 1));
  EXPLAINIT_ASSIGN_OR_RETURN(
      table::Table space_ff,
      NormalizeToFeatureFamilyTable(space_rows, "family"));
  EXPLAINIT_ASSIGN_OR_RETURN(req.candidates, FamiliesFromTable(space_ff));

  req.scorer_name = params_.scorer_name;
  req.ranking.top_k = params_.top_k;
  req.ranking.render_viz = true;
  req.ranking.explain_range = params_.explain_range;
  // The hypothesis fan-out rides the executor's (shared) pool; a serial
  // pipeline scores inline, so `parallelism` governs the Rank stage too.
  // The query's cancellation token gates each hypothesis.
  if (ctx_ != nullptr && ctx_->parallel()) {
    req.ranking.pool = ctx_->pool;
    req.ranking.num_threads = ctx_->parallelism;
  } else {
    req.ranking.num_threads = 1;
  }
  if (ctx_ != nullptr) req.ranking.cancel = ctx_->cancel;
  const size_t num_candidates = req.candidates.size();
  EXPLAINIT_ASSIGN_OR_RETURN(score_table_,
                             AlignAndRank(engine_, std::move(req)));
  result_ = score_table_.ToTable();
  stats_.detail = StrFormat(
      "scorer=%s candidates=%zu threads=%zu", params_.scorer_name.c_str(),
      num_candidates,
      ctx_ != nullptr && ctx_->parallel() ? ctx_->parallelism : size_t{1});
  return Status::OK();
}

void RankOperator::AccumulateExecStats(sql::ExecStats* stats) const {
  const RankStageStats& s = score_table_.stage;
  stats->rank_gram_ns += s.gram_ns;
  stats->rank_factor_ns += s.factor_ns;
  stats->rank_solve_ns += s.solve_ns;
  stats->rank_predict_ns += s.predict_ns;
  stats->rank_cache_hits += s.total_hits();
  stats->rank_cache_misses += s.total_misses();
}

Result<table::ColumnBatch> RankOperator::NextImpl(bool* eof) {
  if (pos_ >= result_.num_rows()) {
    *eof = true;
    return table::ColumnBatch{};
  }
  const size_t n =
      std::min(table::kDefaultBatchRows, result_.num_rows() - pos_);
  table::ColumnBatch batch = table::ColumnBatch::View(result_, pos_, n);
  pos_ += n;
  return batch;
}

Result<std::unique_ptr<RankOperator>> PlanExplain(
    const sql::ExplainStatement& stmt, Engine* engine,
    sql::Executor* executor) {
  RankOperator::Params params;
  if (!stmt.scorer.empty()) params.scorer_name = stmt.scorer;
  {
    // Fail before any sub-select runs when the scorer name is unknown.
    EXPLAINIT_ASSIGN_OR_RETURN(auto probe, MakeScorer(params.scorer_name));
    (void)probe;
  }
  if (stmt.top_k.has_value()) {
    params.top_k = static_cast<size_t>(*stmt.top_k);
  }
  if (stmt.between_start.has_value() && stmt.between_end.has_value()) {
    // SQL BETWEEN is inclusive; TimeRange's end is exclusive (saturate
    // rather than overflow at the INT64_MAX edge).
    const int64_t end = *stmt.between_end < INT64_MAX
                            ? *stmt.between_end + 1
                            : INT64_MAX;
    params.explain_range = TimeRange{*stmt.between_start, end};
  }
  params.given_pseudocause = stmt.given_pseudocause;

  EXPLAINIT_ASSIGN_OR_RETURN(auto target_op,
                             executor->PlanSelect(*stmt.target));
  std::unique_ptr<sql::Operator> given_op;
  if (stmt.given != nullptr) {
    EXPLAINIT_ASSIGN_OR_RETURN(given_op, executor->PlanSelect(*stmt.given));
  }
  EXPLAINIT_ASSIGN_OR_RETURN(auto space_op,
                             executor->PlanSelect(*stmt.search_space));
  return std::make_unique<RankOperator>(
      engine, executor->exec_context(), std::move(target_op),
      std::move(given_op), std::move(space_op), std::move(params));
}

}  // namespace explainit::core
