#include "core/ranking.h"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "common/logging.h"
#include "common/strings.h"
#include "common/time_util.h"
#include "exec/ipc.h"
#include "stats/ridge.h"
#include "stats/significance.h"

namespace explainit::core {

std::string ScoreTable::ToString(size_t max_rows) const {
  std::string out = StrFormat("%-4s %-48s %8s %10s %8s\n", "rank", "family",
                              "score", "features", "sec");
  const size_t n = std::min(rows.size(), max_rows);
  for (size_t i = 0; i < n; ++i) {
    const ScoredHypothesis& h = rows[i];
    out += StrFormat("%-4zu %-48s %8.3f %10zu %8.3f\n", i + 1,
                     h.family_name.c_str(), h.score, h.num_features,
                     h.score_seconds);
    if (!h.viz.empty()) {
      out += "     " + h.viz + "\n";
    }
  }
  if (rows.size() > n) {
    out += StrFormat("... (%zu more)\n", rows.size() - n);
  }
  return out;
}

table::Table ScoreTable::ToTable() const {
  table::Schema schema({{"rank", table::DataType::kInt64},
                        {"family", table::DataType::kString},
                        {"score", table::DataType::kDouble},
                        {"num_features", table::DataType::kInt64},
                        {"best_lambda", table::DataType::kDouble},
                        {"score_seconds", table::DataType::kDouble},
                        {"viz", table::DataType::kString}});
  table::Table out(schema);
  for (size_t i = 0; i < rows.size(); ++i) {
    const ScoredHypothesis& h = rows[i];
    out.AppendRow({table::Value::Int(static_cast<int64_t>(i + 1)),
                   table::Value::String(h.family_name),
                   table::Value::Double(h.score),
                   table::Value::Int(static_cast<int64_t>(h.num_features)),
                   table::Value::Double(h.best_lambda),
                   table::Value::Double(h.score_seconds),
                   table::Value::String(h.viz)});
  }
  return out;
}

size_t ScoreTable::RankOf(const std::string& family_name) const {
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].family_name == family_name) return i + 1;
  }
  return 0;
}

std::string RenderSparkline(const std::vector<double>& series, size_t width) {
  static const char* kLevels[] = {" ", "_", ".", "-", "=", "*", "^", "#"};
  if (series.empty() || width == 0) return "";
  double lo = series[0], hi = series[0];
  for (double v : series) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double span = hi - lo > 1e-12 ? hi - lo : 1.0;
  std::string out;
  const size_t n = series.size();
  for (size_t i = 0; i < std::min(width, n); ++i) {
    // Downsample by taking the max within each bucket (spikes must stay
    // visible — that is the whole point of the plot).
    const size_t begin = i * n / std::min(width, n);
    const size_t end = std::max(begin + 1, (i + 1) * n / std::min(width, n));
    double v = series[begin];
    for (size_t j = begin; j < end && j < n; ++j) v = std::max(v, series[j]);
    const int level = static_cast<int>(std::floor((v - lo) / span * 7.999));
    out += kLevels[std::clamp(level, 0, 7)];
  }
  return out;
}

namespace {

// r2 of the overlay restricted to a window of rows (Figure 2's
// range-to-explain view on a fitted model).
double WindowScore(const FeatureFamily& target, const la::Matrix& fitted,
                   const TimeRange& range) {
  if (fitted.empty() || fitted.rows() != target.num_timestamps()) return 0.0;
  std::vector<size_t> rows;
  for (size_t r = 0; r < target.num_timestamps(); ++r) {
    if (range.Contains(target.timestamps[r])) rows.push_back(r);
  }
  if (rows.size() < 3) return 0.0;
  la::Matrix obs(rows.size(), target.num_features());
  la::Matrix pred(rows.size(), target.num_features());
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t c = 0; c < target.num_features(); ++c) {
      obs(i, c) = target.data(rows[i], c);
      pred(i, c) = fitted(rows[i], c);
    }
  }
  return std::clamp(stats::RSquared(obs, pred), 0.0, 1.0);
}

}  // namespace

Result<ScoreTable> RankFamilies(const Scorer& scorer,
                                const FeatureFamily& target,
                                const FeatureFamily* condition,
                                const std::vector<FeatureFamily>& candidates,
                                const RankingOptions& options) {
  if (target.num_features() == 0 || target.num_timestamps() == 0) {
    return Status::InvalidArgument("target family is empty");
  }
  const double start = MonotonicSeconds();
  la::Matrix z;  // empty = marginal
  if (condition != nullptr) {
    if (condition->num_timestamps() != target.num_timestamps()) {
      return Status::InvalidArgument(
          "condition family is not aligned with the target");
    }
    z = condition->data;
  }

  // Shared cross-hypothesis scoring state for this call: candidates with
  // the same condition/target reuse standardized designs, Cholesky factors
  // and the conditional Y~Z fit instead of recomputing them per hypothesis.
  std::unique_ptr<stats::ScoringCache> cache;
  if (options.share_scoring_cache) {
    cache = std::make_unique<stats::ScoringCache>(options.scoring_cache_bytes);
  }
  stats::StageCounters counters;
  ScoringContext ctx;
  ctx.cache = cache.get();
  ctx.counters = &counters;

  std::vector<ScoredHypothesis> scored(candidates.size());
  // NOT vector<bool>: workers write concurrently, and vector<bool> packs
  // bits so adjacent writes would race. One byte per flag is safe.
  std::vector<char> ok(candidates.size(), 0);
  std::mutex log_mutex;
  auto score_one = [&](size_t i) {
    // Cooperative cancellation: a tripped token skips the remaining
    // hypotheses; the post-fan-out check turns it into an error.
    if (options.cancel != nullptr && !options.cancel->Check().ok()) return;
    const FeatureFamily& cand = candidates[i];
    ScoredHypothesis& row = scored[i];
    row.family_name = cand.name;
    row.num_features = cand.num_features();
    if (cand.num_timestamps() != target.num_timestamps() ||
        cand.num_features() == 0) {
      return;  // skip misaligned/empty candidate
    }
    // No overlap between X and (Y, Z) is a hypothesis precondition (§3.3);
    // the engine filters by family name.
    const double t0 = MonotonicSeconds();
    double ser_seconds = 0.0;
    la::Matrix x = cand.data;
    if (options.simulate_ipc) {
      Result<la::Matrix> rt = exec::RoundTripMatrix(x, &ser_seconds);
      if (rt.ok()) x = std::move(rt).value();
    }
    Result<ScoreResult> res = scorer.Score(x, target.data, z, ctx);
    row.score_seconds = MonotonicSeconds() - t0;
    row.serialization_seconds = ser_seconds;
    if (!res.ok()) {
      std::lock_guard<std::mutex> lock(log_mutex);
      LOG_WARN("scoring " << cand.name
                          << " failed: " << res.status().ToString());
      return;
    }
    row.score = res->score;
    row.best_lambda = res->best_lambda;
    row.explain_window_score = row.score;
    if (options.explain_range.has_value()) {
      row.explain_window_score =
          WindowScore(target, res->fitted, *options.explain_range);
    }
    if (options.render_viz && !res->fitted.empty()) {
      row.viz = "Y: " + RenderSparkline(target.data.Col(0)) + " | E[Y|X]: " +
                RenderSparkline(res->fitted.Col(0));
    }
    ok[i] = 1;
  };
  if (options.num_threads == 1 && options.pool == nullptr) {
    for (size_t i = 0; i < candidates.size(); ++i) score_one(i);
  } else {
    // Hypothesis fan-out over the shared pool (the caller's, or the
    // process-wide one) — never a private pool per call. num_threads
    // caps the fan-out; the calling thread participates.
    exec::WorkerPool& pool = options.pool != nullptr
                                 ? *options.pool
                                 : exec::WorkerPool::Global();
    exec::ParallelFor(pool, candidates.size(), score_one,
                      options.num_threads);
  }
  if (options.cancel != nullptr) {
    EXPLAINIT_RETURN_IF_ERROR(options.cancel->Check());
  }

  ScoreTable out;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (ok[i]) out.rows.push_back(std::move(scored[i]));
  }
  if (options.significance_fdr > 0.0 && !out.rows.empty()) {
    // Appendix A: p-value each score against the no-dependence null (the
    // Beta tail with the regression's effective predictor count, capped at
    // T-1 so the distribution stays defined), then run Benjamini–Hochberg
    // across all hypotheses scored in this pass.
    const size_t n = target.num_timestamps();
    std::vector<double> pvalues;
    pvalues.reserve(out.rows.size());
    for (ScoredHypothesis& row : out.rows) {
      const size_t p =
          std::clamp<size_t>(row.num_features, size_t{2}, n > 2 ? n - 2 : 2);
      row.p_value = n > p + 1 ? stats::BetaPValue(row.score, n, p) : 1.0;
      pvalues.push_back(row.p_value);
    }
    const std::vector<double> q = stats::BenjaminiHochbergAdjust(pvalues);
    for (size_t i = 0; i < out.rows.size(); ++i) {
      out.rows[i].significant = q[i] <= options.significance_fdr;
    }
  }
  // Equal scores are ordered by family name so the Score Table is stable
  // across parallelism levels and candidate enumeration order.
  std::stable_sort(out.rows.begin(), out.rows.end(),
                   [](const ScoredHypothesis& a, const ScoredHypothesis& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.family_name < b.family_name;
                   });
  if (options.top_k > 0 && out.rows.size() > options.top_k) {
    out.rows.resize(options.top_k);
  }
  out.stage.gram_ns = counters.gram_ns.load(std::memory_order_relaxed);
  out.stage.factor_ns = counters.factor_ns.load(std::memory_order_relaxed);
  out.stage.solve_ns = counters.solve_ns.load(std::memory_order_relaxed);
  out.stage.predict_ns = counters.predict_ns.load(std::memory_order_relaxed);
  if (cache != nullptr) {
    using Slot = stats::ScoringCache::Slot;
    out.stage.design_hits = cache->hits(Slot::kDesign);
    out.stage.design_misses = cache->misses(Slot::kDesign);
    out.stage.factor_hits = cache->hits(Slot::kFactor);
    out.stage.factor_misses = cache->misses(Slot::kFactor);
    out.stage.fit_hits = cache->hits(Slot::kFit);
    out.stage.fit_misses = cache->misses(Slot::kFit);
  }
  out.total_seconds = MonotonicSeconds() - start;
  return out;
}

}  // namespace explainit::core
