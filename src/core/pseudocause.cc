#include "core/pseudocause.h"

#include "stats/decompose.h"

namespace explainit::core {

Result<Pseudocause> BuildPseudocause(const FeatureFamily& target,
                                     const PseudocauseOptions& options) {
  if (target.num_timestamps() < 8) {
    return Status::InvalidArgument("pseudocause needs at least 8 samples");
  }
  Pseudocause out;
  out.systematic.name = target.name + ":systematic";
  out.residual.name = target.name + ":residual";
  out.systematic.timestamps = target.timestamps;
  out.residual.timestamps = target.timestamps;
  const size_t t = target.num_timestamps();
  const size_t f = target.num_features();
  out.systematic.data = la::Matrix(t, f);
  out.residual.data = la::Matrix(t, f);
  for (size_t c = 0; c < f; ++c) {
    out.systematic.feature_names.push_back(target.feature_names[c] + ":Ys");
    out.residual.feature_names.push_back(target.feature_names[c] + ":Yr");
    std::vector<double> y = target.data.Col(c);
    size_t period = options.period;
    if (period == 0) {
      period = stats::DetectPeriod(
          y, options.min_period,
          std::min(options.max_period, y.size() / 2));
    }
    // Robust decomposition: anomalous spikes must stay in the residual
    // (they are what the user wants explained), so the trend window spans
    // several periods and uses medians.
    stats::Decomposition d;
    if (period >= 2) {
      // Window of several periods: a transient spike must cover more than
      // half the window to leak into the (median) trend.
      const size_t window = std::max(options.trend_window, 5 * period + 1);
      d = stats::DecomposeRobust(y, period, window);
    } else {
      d.trend = stats::RunningMedian(y, options.trend_window);
      d.seasonal.assign(y.size(), 0.0);
      d.residual.resize(y.size());
      for (size_t r = 0; r < y.size(); ++r) {
        d.residual[r] = y[r] - d.trend[r];
      }
    }
    if (c == 0) out.period = period;
    for (size_t r = 0; r < t; ++r) {
      out.systematic.data(r, c) = d.trend[r] + d.seasonal[r];
      out.residual.data(r, c) = d.residual[r];
    }
  }
  return out;
}

}  // namespace explainit::core
