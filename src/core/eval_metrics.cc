#include "core/eval_metrics.h"

#include <cmath>

#include "common/logging.h"

namespace explainit::core {

RankingMetrics EvaluateRanking(const std::vector<std::string>& ranking,
                               const ScenarioLabels& labels,
                               size_t top_k_cutoff) {
  RankingMetrics m;
  const size_t limit = top_k_cutoff == 0
                           ? ranking.size()
                           : std::min(ranking.size(), top_k_cutoff);
  for (size_t i = 0; i < limit; ++i) {
    if (labels.causes.count(ranking[i]) > 0) {
      m.first_cause_rank = i + 1;
      m.discounted_gain = 1.0 / static_cast<double>(i + 1);
      m.log_discounted_gain = 1.0 / std::log2(static_cast<double>(i + 2));
      m.failed = false;
      break;
    }
  }
  return m;
}

double SuccessAtK(const std::vector<std::string>& ranking,
                  const ScenarioLabels& labels, size_t k) {
  const size_t limit = std::min(ranking.size(), k);
  for (size_t i = 0; i < limit; ++i) {
    if (labels.causes.count(ranking[i]) > 0) return 1.0;
  }
  return 0.0;
}

MethodSummary SummarizeMethod(
    const std::vector<RankingMetrics>& per_scenario,
    const std::vector<std::vector<std::string>>& rankings,
    const std::vector<ScenarioLabels>& labels) {
  EXPLAINIT_CHECK(per_scenario.size() == rankings.size() &&
                      rankings.size() == labels.size(),
                  "summary input size mismatch");
  MethodSummary s;
  const size_t n = per_scenario.size();
  if (n == 0) return s;
  // Harmonic mean with the paper's 0.001 failure floor.
  double inv_sum = 0.0, sum = 0.0;
  for (const RankingMetrics& m : per_scenario) {
    const double gain = m.failed ? 0.001 : m.discounted_gain;
    inv_sum += 1.0 / gain;
    sum += m.failed ? 0.0 : m.discounted_gain;
  }
  s.harmonic_mean_gain = static_cast<double>(n) / inv_sum;
  s.average_gain = sum / static_cast<double>(n);
  double var = 0.0;
  for (const RankingMetrics& m : per_scenario) {
    const double g = m.failed ? 0.0 : m.discounted_gain;
    var += (g - s.average_gain) * (g - s.average_gain);
  }
  s.stdev_gain = std::sqrt(var / static_cast<double>(n));
  for (size_t i = 0; i < n; ++i) {
    s.success_top1 += SuccessAtK(rankings[i], labels[i], 1);
    s.success_top5 += SuccessAtK(rankings[i], labels[i], 5);
    s.success_top10 += SuccessAtK(rankings[i], labels[i], 10);
    s.success_top20 += SuccessAtK(rankings[i], labels[i], 20);
  }
  s.success_top1 /= static_cast<double>(n);
  s.success_top5 /= static_cast<double>(n);
  s.success_top10 /= static_cast<double>(n);
  s.success_top20 /= static_cast<double>(n);
  return s;
}

}  // namespace explainit::core
