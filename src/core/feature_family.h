// Feature families (§3.2): groups of univariate metrics organised into
// human-relatable units — "grouping is a critical operation that precedes
// hypothesis generation".
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "common/time_util.h"
#include "la/matrix.h"
#include "table/table.h"
#include "tsdb/store.h"

namespace explainit::core {

/// A named group of univariate metrics sampled on a shared time grid.
/// The data matrix is (T timestamps) x (F features) — the paper's dense
/// array representation (§4.2).
struct FeatureFamily {
  std::string name;
  std::vector<std::string> feature_names;  // size F
  std::vector<EpochSeconds> timestamps;    // size T
  la::Matrix data;                         // T x F

  size_t num_features() const { return data.cols(); }
  size_t num_timestamps() const { return data.rows(); }

  /// Column index of a feature name; -1 when absent.
  int FindFeature(const std::string& feature_name) const;
};

/// How to group a population of series into families.
enum class GroupingKey {
  kMetricName,  // one family per metric name: input_rate{*}, disk{*}, ...
  kTag,         // one family per value of a tag key: *{host=datanode-1}, ...
  kPattern,     // user-supplied glob patterns over "name{tags}" strings
};

/// Options for BuildFamilies.
struct GroupingOptions {
  GroupingKey key = GroupingKey::kMetricName;
  /// For kTag: which tag key to group on (series missing the key group
  /// under "NULL", matching §3.2's *{host=NULL} family).
  std::string tag_key;
  /// For kPattern: each glob becomes one family of every matching series.
  std::vector<std::string> patterns;
};

/// Groups aligned series (same grid) into feature families. Series must
/// come from SeriesStore::ScanAligned so all timestamp vectors agree.
Result<std::vector<FeatureFamily>> BuildFamilies(
    const std::vector<tsdb::SeriesData>& series,
    const GroupingOptions& options);

/// Builds feature families from a Feature Family Table in the Figure 4
/// schema: (ts TIMESTAMP, name STRING, v MAP<string,double>). Rows sharing
/// `name` form one family; map keys become feature names; missing
/// (ts, key) cells are interpolated to the nearest observation.
Result<std::vector<FeatureFamily>> FamiliesFromTable(
    const table::Table& feature_family_table);

/// Renders a family back to the Figure 4 schema (one row per timestamp).
table::Table FamilyToTable(const FeatureFamily& family);

/// Returns a family restricted to rows whose timestamp lies in `range`.
FeatureFamily SliceFamily(const FeatureFamily& family, const TimeRange& range);

}  // namespace explainit::core
