#include "core/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "common/strings.h"
#include "core/explain.h"
#include "sql/parser.h"

namespace explainit::core {

FeatureFamily MergeFamilies(const std::vector<FeatureFamily>& families,
                            const std::string& name) {
  FeatureFamily out;
  out.name = name;
  if (families.empty()) return out;
  out.timestamps = families[0].timestamps;
  size_t total_features = 0;
  for (const FeatureFamily& f : families) total_features += f.num_features();
  out.data = la::Matrix(out.timestamps.size(), total_features);
  size_t col = 0;
  for (const FeatureFamily& f : families) {
    for (size_t c = 0; c < f.num_features(); ++c, ++col) {
      out.feature_names.push_back(f.name + "/" + f.feature_names[c]);
      for (size_t r = 0; r < out.timestamps.size() && r < f.num_timestamps();
           ++r) {
        out.data(r, col) = f.data(r, c);
      }
    }
  }
  return out;
}

Status AlignFamilies(std::vector<FeatureFamily>* families) {
  if (families == nullptr || families->empty()) return Status::OK();
  // Union grid.
  std::set<EpochSeconds> grid_set;
  for (const FeatureFamily& f : *families) {
    grid_set.insert(f.timestamps.begin(), f.timestamps.end());
  }
  const std::vector<EpochSeconds> grid(grid_set.begin(), grid_set.end());
  for (FeatureFamily& f : *families) {
    if (f.timestamps == grid) continue;
    la::Matrix data(grid.size(), f.num_features());
    // Map existing rows onto the new grid, NaN elsewhere, then interpolate
    // per column.
    std::map<EpochSeconds, size_t> row_of;
    for (size_t r = 0; r < f.timestamps.size(); ++r) {
      row_of[f.timestamps[r]] = r;
    }
    for (size_t c = 0; c < f.num_features(); ++c) {
      std::vector<double> col(grid.size(),
                              std::numeric_limits<double>::quiet_NaN());
      for (size_t r = 0; r < grid.size(); ++r) {
        auto it = row_of.find(grid[r]);
        if (it != row_of.end()) col[r] = f.data(it->second, c);
      }
      tsdb::InterpolateMissing(col);
      data.SetCol(c, col);
    }
    f.timestamps = grid;
    f.data = std::move(data);
  }
  return Status::OK();
}

Result<table::Table> NormalizeToFeatureFamilyTable(
    const table::Table& query_result, const std::string& default_family) {
  if (query_result.num_columns() == 0) {
    return Status::InvalidArgument("empty query result");
  }
  // Locate the ts column.
  std::optional<size_t> ts_idx = query_result.schema().FieldIndex("ts");
  if (!ts_idx) ts_idx = query_result.schema().FieldIndex("timestamp");
  if (!ts_idx) {
    for (size_t c = 0; c < query_result.num_columns() && !ts_idx; ++c) {
      for (size_t r = 0; r < query_result.num_rows(); ++r) {
        if (query_result.At(r, c).is_null()) continue;
        if (query_result.At(r, c).type() == table::DataType::kTimestamp) {
          ts_idx = c;
        }
        break;
      }
    }
  }
  if (!ts_idx) {
    return Status::InvalidArgument(
        "query result has no timestamp column (expected 'ts'/'timestamp' or "
        "a TIMESTAMP-typed column)");
  }
  // Locate the family-name column: first string-valued non-ts column.
  std::optional<size_t> name_idx = query_result.schema().FieldIndex("name");
  if (name_idx.has_value() && *name_idx == *ts_idx) name_idx.reset();
  if (!name_idx) {
    for (size_t c = 0; c < query_result.num_columns() && !name_idx; ++c) {
      if (c == *ts_idx) continue;
      for (size_t r = 0; r < query_result.num_rows(); ++r) {
        if (query_result.At(r, c).is_null()) continue;
        if (query_result.At(r, c).type() == table::DataType::kString) {
          name_idx = c;
        }
        break;
      }
    }
  }
  table::Schema schema({{"ts", table::DataType::kTimestamp},
                        {"name", table::DataType::kString},
                        {"v", table::DataType::kMap}});
  table::Table out(schema);
  const size_t ts_col = *ts_idx;
  const size_t name_col = name_idx.value_or(std::numeric_limits<size_t>::max());
  for (size_t r = 0; r < query_result.num_rows(); ++r) {
    const table::Value& ts = query_result.At(r, ts_col);
    if (ts.is_null()) continue;
    std::string family = default_family;
    if (name_col != std::numeric_limits<size_t>::max()) {
      const table::Value& nv = query_result.At(r, name_col);
      if (!nv.is_null()) family = nv.AsString();
    }
    table::ValueMap v;
    for (size_t c = 0; c < query_result.num_columns(); ++c) {
      if (c == ts_col || c == name_col) continue;
      const table::Value& cell = query_result.At(r, c);
      if (cell.AsMap() != nullptr) {
        // Flatten nested maps (a query may project an existing v column).
        for (const auto& [k, mv] : *cell.AsMap()) v[k] = mv;
        continue;
      }
      v[query_result.schema().field(c).name] = cell;
    }
    out.AppendRow({table::Value::Timestamp(ts.AsTimestamp()),
                   table::Value::String(family),
                   table::Value::Map(std::move(v))});
  }
  return out;
}

Engine::Engine(std::shared_ptr<tsdb::SeriesStore> store, EngineOptions options)
    : store_(std::move(store)),
      options_(options),
      functions_(sql::FunctionRegistry::Builtins()),
      executor_(&catalog_, &functions_, options.sql_parallelism,
                options.worker_pool) {
  executor_.set_optimizer(options.sql_optimizer);
}

void Engine::RegisterStoreTable(const std::string& table_name,
                                const TimeRange& range) {
  std::shared_ptr<tsdb::SeriesStore> store = store_;
  sql::HintedProviderOptions provider_options;
  // Live cardinality for the cost-based planner. The whole-store count
  // over-estimates range-restricted tables, but relative magnitudes (the
  // fact table dwarfs dimension tables) are what join ordering needs.
  provider_options.estimated_rows = [store] { return store->num_points(); };
  // Hints forward verbatim to SeriesStore::Scan, so count-rollup routing
  // (RollupAggregate::kCount + the COUNT -> __SUM_COUNT rewrite) is exact.
  provider_options.exact_rollups = true;
  catalog_.RegisterHintedProvider(
      table_name,
      [store, range](const tsdb::ScanHints& hints) -> Result<table::Table> {
        tsdb::ScanRequest req;
        req.range = range;
        req.hints = hints;
        return store->ScanToTable(req);
      },
      std::move(provider_options));
}

Result<QueryResult> Engine::Query(std::string_view statement) {
  return QueryWith(executor_, statement);
}

Result<QueryResult> Engine::QueryWith(sql::Executor& executor,
                                      std::string_view statement) {
  EXPLAINIT_ASSIGN_OR_RETURN(auto stmt, sql::ParseStatement(statement));
  return ExecuteStatement(executor, *stmt);
}

Result<QueryResult> Engine::ExecuteStatement(sql::Executor& executor,
                                             const sql::Statement& stmt) {
  QueryResult out;
  out.kind = stmt.kind();
  switch (out.kind) {
    case sql::StatementKind::kSelect: {
      EXPLAINIT_ASSIGN_OR_RETURN(
          out.table,
          executor.Execute(static_cast<const sql::SelectStatement&>(stmt)));
      break;
    }
    case sql::StatementKind::kExplain: {
      const auto& explain = static_cast<const sql::ExplainStatement&>(stmt);
      if (explain.is_monitor()) {
        return Status::InvalidArgument(
            "standing EXPLAIN (EVERY/TRIGGERED/INTO) requires a "
            "monitor::MonitorService — route the statement through it "
            "(the server does this when one is attached)");
      }
      EXPLAINIT_ASSIGN_OR_RETURN(auto root,
                                 PlanExplain(explain, this, &executor));
      EXPLAINIT_ASSIGN_OR_RETURN(out.table, executor.ExecuteTree(root.get()));
      out.score_table = root->score_table();
      break;
    }
    case sql::StatementKind::kDropMonitor:
    case sql::StatementKind::kShowMonitors:
      return Status::InvalidArgument(
          "monitor statements require a monitor::MonitorService — route "
          "the statement through it (the server does this when one is "
          "attached)");
  }
  out.stats = executor.last_stats();
  return out;
}

Result<table::Table> Engine::Sql(std::string_view query) {
  EXPLAINIT_ASSIGN_OR_RETURN(QueryResult result, Query(query));
  return std::move(result.table);
}

Result<std::vector<FeatureFamily>> Engine::FamiliesFromStore(
    const TimeRange& range, const GroupingOptions& grouping,
    const tsdb::ScanRequest& base_filter) {
  tsdb::ScanRequest req = base_filter;
  req.range = range;
  tsdb::GridOptions grid;
  grid.step_seconds = options_.grid_step_seconds;
  EXPLAINIT_ASSIGN_OR_RETURN(auto series, store_->ScanAligned(req, grid));
  return BuildFamilies(series, grouping);
}

Result<std::vector<FeatureFamily>> Engine::FamiliesFromQuery(
    std::string_view query, const std::string& default_family) {
  EXPLAINIT_ASSIGN_OR_RETURN(table::Table result, Sql(query));
  EXPLAINIT_ASSIGN_OR_RETURN(table::Table ff,
                             NormalizeToFeatureFamilyTable(result,
                                                           default_family));
  return FamiliesFromTable(ff);
}

Result<FeatureFamily> Engine::FamilyFromMetric(const std::string& metric_glob,
                                               const TimeRange& range,
                                               const std::string& family_name) {
  tsdb::ScanRequest req;
  req.metric_glob = metric_glob;
  req.range = range;
  tsdb::GridOptions grid;
  grid.step_seconds = options_.grid_step_seconds;
  EXPLAINIT_ASSIGN_OR_RETURN(auto series, store_->ScanAligned(req, grid));
  if (series.empty()) {
    return Status::NotFound("no series match metric glob: " + metric_glob);
  }
  GroupingOptions g;
  g.key = GroupingKey::kMetricName;
  EXPLAINIT_ASSIGN_OR_RETURN(auto families, BuildFamilies(series, g));
  return MergeFamilies(families, family_name);
}

Result<ScoreTable> Engine::Rank(const RankRequest& request) {
  EXPLAINIT_ASSIGN_OR_RETURN(std::unique_ptr<Scorer> scorer,
                             MakeScorer(request.scorer_name));
  // §3.3: X must not overlap Y or Z — drop candidates sharing their names.
  std::vector<FeatureFamily> candidates;
  candidates.reserve(request.candidates.size());
  for (const FeatureFamily& f : request.candidates) {
    if (f.name == request.target.name) continue;
    if (request.condition.has_value() && f.name == request.condition->name) {
      continue;
    }
    candidates.push_back(f);
  }
  RankingOptions opts = request.ranking;
  if (opts.top_k == 0) opts.top_k = options_.top_k;
  if (opts.num_threads == 0) opts.num_threads = options_.num_threads;
  return RankFamilies(
      *scorer, request.target,
      request.condition.has_value() ? &*request.condition : nullptr,
      candidates, opts);
}

Result<ScoreTable> AlignAndRank(Engine* engine, RankRequest req) {
  // Align everything onto a common grid before ranking.
  std::vector<FeatureFamily> all;
  all.push_back(std::move(req.target));
  if (req.condition.has_value()) all.push_back(std::move(*req.condition));
  for (FeatureFamily& f : req.candidates) all.push_back(std::move(f));
  EXPLAINIT_RETURN_IF_ERROR(AlignFamilies(&all));
  size_t idx = 0;
  req.target = std::move(all[idx++]);
  if (req.condition.has_value()) req.condition = std::move(all[idx++]);
  for (size_t i = 0; idx < all.size(); ++i, ++idx) {
    req.candidates[i] = std::move(all[idx]);
  }
  return engine->Rank(req);
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

Session::Session(Engine* engine, TimeRange total_range)
    : engine_(engine), total_range_(total_range) {}

Status Session::SetTargetByMetric(const std::string& metric_glob) {
  EXPLAINIT_ASSIGN_OR_RETURN(
      FeatureFamily fam,
      engine_->FamilyFromMetric(metric_glob, total_range_, metric_glob));
  target_ = std::move(fam);
  return Status::OK();
}

Status Session::SetTargetByQuery(std::string_view sql) {
  EXPLAINIT_ASSIGN_OR_RETURN(auto families,
                             engine_->FamiliesFromQuery(sql, "target"));
  if (families.empty()) {
    return Status::InvalidArgument("target query produced no families");
  }
  target_ = MergeFamilies(families, "target");
  return Status::OK();
}

void Session::SetTarget(FeatureFamily target) { target_ = std::move(target); }

Status Session::SetExplainRange(const TimeRange& range) {
  if (!range.Overlaps(total_range_)) {
    return Status::InvalidArgument(
        "explain range must overlap the total range");
  }
  explain_range_ = range;
  return Status::OK();
}

Status Session::SetConditionByMetric(const std::string& metric_glob) {
  EXPLAINIT_ASSIGN_OR_RETURN(
      FeatureFamily fam,
      engine_->FamilyFromMetric(metric_glob, total_range_,
                                "Z:" + metric_glob));
  condition_ = std::move(fam);
  return Status::OK();
}

Status Session::SetConditionByQuery(std::string_view sql) {
  EXPLAINIT_ASSIGN_OR_RETURN(auto families,
                             engine_->FamiliesFromQuery(sql, "condition"));
  if (families.empty()) {
    return Status::InvalidArgument("condition query produced no families");
  }
  condition_ = MergeFamilies(families, "Z:query");
  return Status::OK();
}

Status Session::ConditionOnPseudocause(const PseudocauseOptions& options) {
  if (!target_.has_value()) {
    return Status::FailedPrecondition("set a target before conditioning");
  }
  EXPLAINIT_ASSIGN_OR_RETURN(Pseudocause pc,
                             BuildPseudocause(*target_, options));
  condition_ = std::move(pc.systematic);
  return Status::OK();
}

void Session::ClearCondition() { condition_.reset(); }

Status Session::SetSearchSpaceByGrouping(const GroupingOptions& grouping) {
  EXPLAINIT_ASSIGN_OR_RETURN(
      candidates_, engine_->FamiliesFromStore(total_range_, grouping));
  return Status::OK();
}

Status Session::SetSearchSpaceByQuery(std::string_view sql) {
  EXPLAINIT_ASSIGN_OR_RETURN(candidates_,
                             engine_->FamiliesFromQuery(sql, "family"));
  return Status::OK();
}

Status Session::DrillDown(const std::vector<std::string>& family_globs) {
  std::vector<FeatureFamily> kept;
  for (FeatureFamily& f : candidates_) {
    for (const std::string& glob : family_globs) {
      if (GlobMatch(glob, f.name)) {
        kept.push_back(std::move(f));
        break;
      }
    }
  }
  if (kept.empty()) {
    return Status::InvalidArgument("drill-down matched no families");
  }
  candidates_ = std::move(kept);
  return Status::OK();
}

Status Session::SetScorer(const std::string& name) {
  EXPLAINIT_ASSIGN_OR_RETURN(auto scorer, MakeScorer(name));
  (void)scorer;
  scorer_name_ = name;
  return Status::OK();
}

Result<ScoreTable> Session::Run() {
  if (!target_.has_value()) {
    return Status::FailedPrecondition("no target selected (step 1)");
  }
  if (candidates_.empty()) {
    return Status::FailedPrecondition("no search space selected (step 2)");
  }
  RankRequest req;
  req.target = *target_;
  req.condition = condition_;
  req.candidates = candidates_;
  req.scorer_name = scorer_name_;
  req.ranking.render_viz = true;
  if (explain_range_.has_value()) req.ranking.explain_range = explain_range_;
  // Session::Run and the declarative EXPLAIN path share one engine tail:
  // align onto a common grid, then rank.
  EXPLAINIT_ASSIGN_OR_RETURN(ScoreTable table,
                             AlignAndRank(engine_, std::move(req)));
  history_.push_back(table);
  return table;
}

}  // namespace explainit::core
