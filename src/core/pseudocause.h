// Pseudocauses (§3.4, Figure 3): decompose the target Y1 = Ys + Yr and
// condition on Ys to "block" the unknown causes of the systematic
// component, revealing causes specific to the residual.
#pragma once

#include "common/result.h"
#include "core/feature_family.h"

namespace explainit::core {

/// Options for deriving a pseudocause from a target family.
struct PseudocauseOptions {
  /// Seasonal period in samples; 0 = auto-detect from autocorrelation.
  size_t period = 0;
  /// Trend window (samples) used when no period is found.
  size_t trend_window = 61;
  /// Autocorrelation search bounds for auto-detection.
  size_t min_period = 4;
  size_t max_period = 2048;
};

/// Result of a pseudocause derivation.
struct Pseudocause {
  /// The Ys family (trend + seasonal per feature) to condition on.
  FeatureFamily systematic;
  /// The residual Yr family the user wants explained.
  FeatureFamily residual;
  /// Detected (or supplied) period; 0 when only a trend was removed.
  size_t period = 0;
};

/// Splits every feature of `target` into systematic + residual parts.
/// The systematic family is the Z of Figure 3's conditioning trick.
Result<Pseudocause> BuildPseudocause(const FeatureFamily& target,
                                     const PseudocauseOptions& options = {});

}  // namespace explainit::core
