// First-class EXPLAIN statements: planning and execution of the
// declarative RCA statement
//
//   EXPLAIN <select> [GIVEN <select> | GIVEN PSEUDOCAUSE] USING <select>
//   [SCORE BY '<scorer>'] [TOP k] [BETWEEN t0 AND t1]
//
// on top of the SQL operator pipeline. Each sub-select compiles through
// the regular planner (pushdown and pruning apply unchanged); their
// results are normalised to the Figure 4 Feature Family Table schema and
// fed into a Rank physical operator that fans hypothesis scoring out over
// the executor's worker pool (reusing core::RankFamilies) and emits the
// Score Table as an ordinary table::Table — so EXPLAIN results compose:
// they can be inspected, joined, or re-queried like any other relation.
//
// This lives in core (not sql) because ranking, family building and
// pseudocauses are core concepts; the operator plugs into the sql
// pipeline through the sql::Operator interface.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "common/result.h"
#include "core/engine.h"
#include "core/ranking.h"
#include "sql/ast.h"
#include "sql/executor.h"
#include "sql/operators/operator.h"

namespace explainit::core {

/// The Rank physical operator: the root of every planned EXPLAIN
/// statement. Children are the planned target, (optional) GIVEN and USING
/// sub-select trees; Open() drains them, builds feature families, ranks,
/// and Next() streams the Score Table:
///   (rank, family, score, num_features, best_lambda, score_seconds, viz).
class RankOperator : public sql::Operator {
 public:
  struct Params {
    std::string scorer_name = "L2-P50";
    /// Score Table cutoff; 0 = the engine default.
    size_t top_k = 0;
    /// BETWEEN t0 AND t1, converted to a half-open range (Figure 2's
    /// range-to-explain).
    std::optional<TimeRange> explain_range;
    /// GIVEN PSEUDOCAUSE: condition on the target's systematic component.
    bool given_pseudocause = false;
  };

  /// `given` may be null. `ctx` is the executor's execution context; the
  /// ranking fan-out rides its pool when parallelism > 1 and runs inline
  /// when the pipeline is serial.
  RankOperator(Engine* engine, const sql::ExecContext* ctx,
               std::unique_ptr<sql::Operator> target,
               std::unique_ptr<sql::Operator> given,
               std::unique_ptr<sql::Operator> search_space, Params params);

  const table::Schema& output_schema() const override {
    return result_.schema();
  }
  std::string name() const override { return "Rank"; }
  bool StableBatches() const override { return true; }

  /// The typed Score Table behind the relational output (valid after
  /// Open): sparklines, RankOf() and the rank-stage wall time.
  const ScoreTable& score_table() const { return score_table_; }

  /// Publishes the ranking-stage timing breakdown and scoring-cache
  /// counters into the executor's ExecStats.
  void AccumulateExecStats(sql::ExecStats* stats) const override;

 protected:
  Status OpenImpl() override;
  Result<table::ColumnBatch> NextImpl(bool* eof) override;

 private:
  /// Drains child `i` into a materialised table.
  Result<table::Table> DrainChild(size_t i);

  Engine* engine_;
  const sql::ExecContext* ctx_;
  Params params_;
  bool has_given_ = false;
  ScoreTable score_table_;
  table::Table result_;
  size_t pos_ = 0;
};

/// Compiles an EXPLAIN statement into a Rank-rooted physical tree using
/// `executor`'s planner/context (scorer name and window validated up
/// front). The statement must outlive the returned tree; execute it with
/// Executor::ExecuteTree.
Result<std::unique_ptr<RankOperator>> PlanExplain(
    const sql::ExplainStatement& stmt, Engine* engine,
    sql::Executor* executor);

}  // namespace explainit::core
