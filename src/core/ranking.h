// The ranking engine: scores every candidate family against the target
// (optionally conditioned) in parallel — Algorithm 1's inner loop — and
// returns the Top-K Score Table of Figure 4.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/feature_family.h"
#include "core/scorer.h"
#include "exec/cancel.h"
#include "exec/worker_pool.h"
#include "table/table.h"

namespace explainit::core {

/// One ranked hypothesis in the Score Table.
struct ScoredHypothesis {
  std::string family_name;
  double score = 0.0;
  double best_lambda = 0.0;
  size_t num_features = 0;
  /// Wall time spent scoring this hypothesis (Figure 10's unit).
  double score_seconds = 0.0;
  /// Serialisation share of score_seconds (simulated executor->kernel hop).
  double serialization_seconds = 0.0;
  /// ASCII sparkline of the target next to its prediction (the `viz` field
  /// of the Score Table schema); empty when the scorer has no overlay.
  std::string viz;
  /// Score restricted to the user's range-to-explain (Figure 2); equals
  /// `score` when no explain range was given.
  double explain_window_score = 0.0;
  /// Approximate p-value of the score under the no-dependence null
  /// (Appendix A: exact Beta tail with the scorer's effective predictor
  /// count); 1.0 when significance annotation is off.
  double p_value = 1.0;
  /// True when the Benjamini–Hochberg procedure at the requested FDR keeps
  /// this hypothesis (Appendix A.2's multiple-testing control).
  bool significant = true;
};

/// Per-stage breakdown of the linear-algebra work inside one ranking pass,
/// plus cross-hypothesis cache effectiveness. Nanoseconds are summed over
/// worker threads, so they can exceed total_seconds under parallelism.
struct RankStageStats {
  int64_t gram_ns = 0;     // standardize + Gram/cross-product construction
  int64_t factor_ns = 0;   // Cholesky factorizations
  int64_t solve_ns = 0;    // triangular solves
  int64_t predict_ns = 0;  // validation predict + r2 passes
  size_t design_hits = 0;  // standardized design + fold plans served cached
  size_t design_misses = 0;
  size_t factor_hits = 0;  // Cholesky factors served cached
  size_t factor_misses = 0;
  size_t fit_hits = 0;  // whole conditional Y~Z fits served cached
  size_t fit_misses = 0;

  size_t total_hits() const { return design_hits + factor_hits + fit_hits; }
  size_t total_misses() const {
    return design_misses + factor_misses + fit_misses;
  }
};

/// The result of one ranking pass.
struct ScoreTable {
  std::vector<ScoredHypothesis> rows;  // sorted by decreasing score
  double total_seconds = 0.0;
  /// Stage timings and cache counters (zeros when the scoring cache is
  /// disabled and the scorer does no regression).
  RankStageStats stage;

  /// Renders as an aligned text table (rank, family, score, ...).
  std::string ToString(size_t max_rows = 20) const;
  /// Converts to a relational table for further SQL processing.
  table::Table ToTable() const;
  /// Position (1-based) of the named family, or 0 when absent.
  size_t RankOf(const std::string& family_name) const;
};

/// Options for RankFamilies.
struct RankingOptions {
  /// Top-K cutoff (paper default 20). 0 keeps everything.
  size_t top_k = 20;
  /// Hypothesis fan-out cap. 0 = the pool's full width; 1 scores inline
  /// on the calling thread (no pool).
  size_t num_threads = 0;
  /// Shared worker pool to fan hypotheses out over (borrowed); null =
  /// exec::WorkerPool::Global(). RankFamilies never constructs a pool of
  /// its own, and the calling thread participates in the fan-out, so
  /// calling from inside a pool task is safe.
  exec::WorkerPool* pool = nullptr;
  /// Cooperative cancellation/deadline checked before each hypothesis;
  /// null = none. A tripped token fails the whole call.
  const exec::CancelToken* cancel = nullptr;
  /// Round-trip matrices through the IPC codec before scoring, charging
  /// the time to serialization_seconds (reproduces §6.2's measurement).
  bool simulate_ipc = false;
  /// Optional range-to-explain (Figure 2): scores are also evaluated on
  /// this window and reported as explain_window_score.
  std::optional<TimeRange> explain_range;
  /// Render sparkline overlays into ScoredHypothesis::viz.
  bool render_viz = false;
  /// Annotate rows with Appendix A p-values and apply Benjamini–Hochberg
  /// across all scored hypotheses at this FDR (0 disables annotation).
  double significance_fdr = 0.0;
  /// Share one ScoringCache across all hypotheses of this call: the
  /// condition/target designs, their Cholesky factors and the Y~Z fit are
  /// identical for every candidate, so the first scorer computes them and
  /// the rest hit the cache. Does not change any score.
  bool share_scoring_cache = true;
  /// Byte budget for the shared cache; entries past the budget are
  /// recomputed by later hypotheses instead of stored.
  size_t scoring_cache_bytes = size_t{256} << 20;
};

/// Scores `candidates` against `target` given optional `condition`,
/// in parallel (one hypothesis per task). Families whose scoring fails
/// (e.g. degenerate data) are skipped with a warning rather than failing
/// the whole ranking. The output order is deterministic at every
/// parallelism level: decreasing score, ties broken by family name.
Result<ScoreTable> RankFamilies(const Scorer& scorer,
                                const FeatureFamily& target,
                                const FeatureFamily* condition,
                                const std::vector<FeatureFamily>& candidates,
                                const RankingOptions& options = {});

/// Renders `series` (and optionally `overlay`) as a one-line ASCII
/// sparkline; used for the Score Table viz field.
std::string RenderSparkline(const std::vector<double>& series,
                            size_t width = 60);

}  // namespace explainit::core
