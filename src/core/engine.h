// The ExplainIt! engine: ties the tsdb, the SQL layer, family grouping and
// the parallel ranking engine together behind the three-step workflow of
// §1/§3 — (1) pick a target and time range, (2) declare a search space,
// (3) rank candidate causes — and the interactive loop of Algorithm 1.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/feature_family.h"
#include "core/pseudocause.h"
#include "core/ranking.h"
#include "core/scorer.h"
#include "sql/catalog.h"
#include "sql/executor.h"
#include "sql/functions.h"
#include "tsdb/store.h"

namespace explainit::core {

/// Engine-wide options.
struct EngineOptions {
  size_t top_k = 20;        // paper default
  size_t num_threads = 0;   // ranking fan-out; 0 = hardware concurrency
  /// Degree of parallelism of the SQL pipeline (morsel-parallel
  /// Filter/Project/HashAggregate). 1 = serial streaming operators;
  /// 0 = hardware concurrency.
  size_t sql_parallelism = 0;
  int64_t grid_step_seconds = kSecondsPerMinute;
  /// Shared worker pool the engine's executor (and ranking fan-out)
  /// borrows; null = exec::WorkerPool::Global(). Injection point for
  /// tests — production engines all share the process-wide pool.
  exec::WorkerPool* worker_pool = nullptr;
  /// Cost-based SQL optimiser knobs (join reordering, aggregate pushdown,
  /// COUNT rollup routing). All on by default; `enabled = false`
  /// reproduces statement-order plans exactly.
  sql::PlannerOptions sql_optimizer;
};

/// One ranking request (Algorithm 1, one iteration).
struct RankRequest {
  FeatureFamily target;                      // Y
  std::optional<FeatureFamily> condition;    // Z (empty = marginal)
  std::vector<FeatureFamily> candidates;     // search space
  std::string scorer_name = "L2-P50";
  RankingOptions ranking;
};

/// Result of one statement through the unified Engine::Query facade.
struct QueryResult {
  /// SELECT rows, or the EXPLAIN Score Table
  /// (rank, family, score, num_features, best_lambda, score_seconds, viz).
  table::Table table;
  /// The statement's own execution breakdown (per-operator rows/ns; for
  /// EXPLAIN the root operator is "Rank").
  sql::ExecStats stats;
  sql::StatementKind kind = sql::StatementKind::kSelect;
  /// Populated for EXPLAIN statements: the typed Score Table behind
  /// `table` (sparkline viz, RankOf, the rank-stage wall time).
  std::optional<ScoreTable> score_table;
};

/// Merges families into one (features renamed "family/feature").
FeatureFamily MergeFamilies(const std::vector<FeatureFamily>& families,
                            const std::string& name);

/// Reindexes every family onto the union of their time grids, filling
/// holes with nearest-observation interpolation. Makes families from
/// different sources (SQL results, store scans) rankable together.
Status AlignFamilies(std::vector<FeatureFamily>* families);

/// Normalises an arbitrary SQL result into the Figure 4 Feature Family
/// Table schema (ts, name, v):
///  - the ts column is the first TIMESTAMP-typed column (or one named
///    ts/timestamp);
///  - the name column is the first remaining string column (when absent
///    every row falls into `default_family`);
///  - every remaining column becomes a map entry keyed by its column name
///    ("the second stage interprets the aggregated columns as a map whose
///    keys are the column names", Appendix C).
Result<table::Table> NormalizeToFeatureFamilyTable(
    const table::Table& query_result,
    const std::string& default_family = "family");

/// The engine facade. Holds one persistent sql::Executor for its
/// lifetime, so execution statistics accumulate across queries.
/// Not copyable/movable: the executor points into the engine's own
/// catalog and function registry.
class Engine {
 public:
  explicit Engine(std::shared_ptr<tsdb::SeriesStore> store,
                  EngineOptions options = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  tsdb::SeriesStore& store() { return *store_; }
  sql::Catalog& catalog() { return catalog_; }
  sql::FunctionRegistry& functions() { return functions_; }
  const EngineOptions& options() const { return options_; }

  /// Store lifecycle hooks. FlushStore seals every mutable head and
  /// drains background maintenance (quiescing the tiered store so
  /// subsequent scans hit sealed segments and their rollup tiers);
  /// CompactStore additionally merges each series' segments into one.
  Status FlushStore() { return store_->Flush(); }
  Status CompactStore() { return store_->Compact(); }

  /// Exposes the store as a SQL table (schema: timestamp, metric_name,
  /// tag, value) restricted to `range` — the paper's `tsdb` table. The
  /// provider honours planner pushdown hints, so WHERE clauses on
  /// timestamp / metric_name / tag narrow the actual store scan.
  void RegisterStoreTable(const std::string& table_name,
                          const TimeRange& range);

  /// Runs one statement against the catalog: a SELECT through the
  /// vectorised pipeline, or an EXPLAIN statement planned into a
  /// Rank-rooted operator tree (core/explain.h) — one statement API from
  /// the parser down to the ranking engine.
  Result<QueryResult> Query(std::string_view statement);

  /// As Query(), but runs through a caller-supplied executor instead of
  /// the engine's own. The server gives each session a private executor
  /// (stats and cancellation are per-session state) while every session
  /// shares this engine's catalog, functions, store and worker pool; the
  /// executor must have been constructed over this engine's catalog()
  /// and functions(). Safe to call from concurrent sessions.
  Result<QueryResult> QueryWith(sql::Executor& executor,
                                std::string_view statement);

  /// As QueryWith, on an already-parsed statement (the monitor service
  /// parses once to dispatch and forwards the non-monitor statements
  /// here). Monitor statements (EVERY/TRIGGERED/INTO, DROP MONITOR,
  /// SHOW MONITORS) are InvalidArgument: they need a MonitorService.
  Result<QueryResult> ExecuteStatement(sql::Executor& executor,
                                       const sql::Statement& stmt);

  /// DEPRECATED: thin shim over Query() that drops everything but the
  /// result table. Prefer Query(), which also reports the statement kind,
  /// execution stats and (for EXPLAIN) the typed Score Table.
  Result<table::Table> Sql(std::string_view query);

  /// Cumulative execution statistics across every Sql() call.
  const sql::ExecStats& exec_stats() const { return executor_.stats(); }
  /// Statistics (with the per-operator breakdown) of the last query.
  const sql::ExecStats& last_exec_stats() const {
    return executor_.last_stats();
  }
  void ResetExecStats() { executor_.ResetStats(); }

  /// Builds families by scanning the store over `range` and grouping.
  Result<std::vector<FeatureFamily>> FamiliesFromStore(
      const TimeRange& range, const GroupingOptions& grouping,
      const tsdb::ScanRequest& base_filter = {});

  /// Runs a SQL query, normalises the result to the FF schema, and builds
  /// families from it (stage 1+2 of the Figure 4 pipeline).
  Result<std::vector<FeatureFamily>> FamiliesFromQuery(
      std::string_view query, const std::string& default_family = "family");

  /// Builds a single (possibly multi-feature) family from all series
  /// matching a metric glob, merged under `family_name`.
  Result<FeatureFamily> FamilyFromMetric(const std::string& metric_glob,
                                         const TimeRange& range,
                                         const std::string& family_name);

  /// Scores and ranks (Algorithm 1's loop body). Candidates sharing the
  /// target's or condition's name are excluded, honouring §3.3's "no
  /// overlap between X, Y and Z".
  Result<ScoreTable> Rank(const RankRequest& request);

  /// The SQL executor behind Query()/Sql() (parallelism knob, stats).
  sql::Executor& executor() { return executor_; }

 private:
  std::shared_ptr<tsdb::SeriesStore> store_;
  EngineOptions options_;
  sql::Catalog catalog_;
  sql::FunctionRegistry functions_;
  sql::Executor executor_;  // must follow catalog_ / functions_
};

/// Reindexes the request's families onto a common grid (AlignFamilies)
/// and ranks through Engine::Rank — the shared tail of Session::Run and
/// the EXPLAIN Rank operator, so programmatic and declarative RCA produce
/// identical Score Tables.
Result<ScoreTable> AlignAndRank(Engine* engine, RankRequest request);

/// The interactive loop (Algorithm 1): a Session accumulates the target,
/// conditioning set, search space and scorer across iterations; each Run()
/// produces a Score Table, and the user narrows the search (drill-down)
/// until satisfied.
class Session {
 public:
  Session(Engine* engine, TimeRange total_range);

  /// Step 1: target selection.
  Status SetTargetByMetric(const std::string& metric_glob);
  Status SetTargetByQuery(std::string_view sql);
  void SetTarget(FeatureFamily target);

  /// Figure 2: optional range-to-explain inside the total range.
  Status SetExplainRange(const TimeRange& range);

  /// Conditioning (Z): explicit metrics, a SQL query, or a pseudocause
  /// derived from the target (§3.4).
  Status SetConditionByMetric(const std::string& metric_glob);
  Status SetConditionByQuery(std::string_view sql);
  Status ConditionOnPseudocause(const PseudocauseOptions& options = {});
  void SetCondition(FeatureFamily condition) {
    condition_ = std::move(condition);
  }
  void ClearCondition();

  /// Step 2: search space.
  Status SetSearchSpaceByGrouping(const GroupingOptions& grouping);
  Status SetSearchSpaceByQuery(std::string_view sql);
  /// Restricts the current search space to families matching any glob —
  /// the "fork off further analyses and drill down" loop.
  Status DrillDown(const std::vector<std::string>& family_globs);

  Status SetScorer(const std::string& name);

  /// Step 3: rank. Appends to history().
  Result<ScoreTable> Run();

  const std::vector<ScoreTable>& history() const { return history_; }
  const TimeRange& total_range() const { return total_range_; }
  size_t num_candidates() const { return candidates_.size(); }

 private:
  Engine* engine_;
  TimeRange total_range_;
  std::optional<TimeRange> explain_range_;
  std::optional<FeatureFamily> target_;
  std::optional<FeatureFamily> condition_;
  std::vector<FeatureFamily> candidates_;
  std::string scorer_name_ = "L2-P50";
  std::vector<ScoreTable> history_;
};

}  // namespace explainit::core
