// Hypothesis scoring (§3.5): given a triple (X, Y, Z), quantify the
// dependence Y ~ X | Z on a 0..1 scale. Five scorers from the paper's
// evaluation (CorrMean, CorrMax, L2, L2-P50, L2-P500) plus two extensions
// (L1/Lasso, PCA-projected ridge for the §4.2 ablation).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "la/matrix.h"
#include "stats/ridge.h"
#include "stats/scoring_cache.h"

namespace explainit::core {

/// Shared per-ranking-call scoring state handed to Scorer::Score by the
/// ranking engine: the cross-hypothesis ScoringCache (standardized designs,
/// Cholesky factors and conditional fits keyed on feature-column content)
/// and the per-stage nanosecond counters. Both optional; scorers that do no
/// regression ignore it.
struct ScoringContext {
  stats::ScoringCache* cache = nullptr;
  stats::StageCounters* counters = nullptr;

  stats::FitContext fit_context() const {
    return stats::FitContext{cache, counters};
  }
};

/// Output of scoring one hypothesis.
struct ScoreResult {
  /// Dependence score in [0, 1]; 0 = independent, 1 = fully explains.
  double score = 0.0;
  /// Penalty chosen by CV (ridge/lasso scorers; 0 otherwise).
  double best_lambda = 0.0;
  /// Fitted values E[Y | X(, Z)] on the full range, in Y units (empty for
  /// univariate scorers). One column per Y feature. Feeds the Score
  /// Table's diagnostic plots (Figure 14/15).
  la::Matrix fitted;
};

/// A scoring function for hypothesis triples. X is (T x nx); Y is
/// (T x ny); Z is (T x nz) and may be empty (marginal scoring).
///
/// Implementations must be thread-compatible: Score() is called
/// concurrently from the ranking engine with distinct hypotheses.
class Scorer {
 public:
  virtual ~Scorer() = default;

  virtual std::string name() const = 0;

  /// Scores Y ~ X | Z. Z may be a 0x0 matrix for marginal queries.
  Result<ScoreResult> Score(const la::Matrix& x, const la::Matrix& y,
                            const la::Matrix& z) const {
    return DoScore(x, y, z, nullptr);
  }

  /// Same, with the ranking engine's shared scoring context (cache +
  /// stage counters).
  Result<ScoreResult> Score(const la::Matrix& x, const la::Matrix& y,
                            const la::Matrix& z,
                            const ScoringContext& ctx) const {
    return DoScore(x, y, z, &ctx);
  }

 protected:
  /// Implementation hook. `ctx` is null for standalone calls.
  virtual Result<ScoreResult> DoScore(const la::Matrix& x, const la::Matrix& y,
                                      const la::Matrix& z,
                                      const ScoringContext* ctx) const = 0;
};

/// CorrMean: mean |Pearson correlation| across all (Xi, Yj) pairs.
/// Univariate (§3.5); Z is ignored by construction.
class CorrMeanScorer : public Scorer {
 public:
  std::string name() const override { return "CorrMean"; }

 protected:
  Result<ScoreResult> DoScore(const la::Matrix& x, const la::Matrix& y,
                              const la::Matrix& z,
                              const ScoringContext* ctx) const override;
};

/// CorrMax: max |Pearson correlation| across all (Xi, Yj) pairs.
class CorrMaxScorer : public Scorer {
 public:
  std::string name() const override { return "CorrMax"; }

 protected:
  Result<ScoreResult> DoScore(const la::Matrix& x, const la::Matrix& y,
                              const la::Matrix& z,
                              const ScoringContext* ctx) const override;
};

/// Options shared by the regression scorers.
struct RidgeScorerOptions {
  stats::RidgeOptions ridge;
  /// Projection dimension d; 0 disables projection (plain L2).
  size_t projection_dim = 0;
  /// Number of random projection samples averaged (§4.2: "we sample a new
  /// matrix every time we project and take the average of three scores").
  size_t projection_samples = 3;
  /// Seed for projection sampling (forked per call for thread safety).
  uint64_t seed = 0xE781A17;
};

/// L2 (and L2-Pd): cross-validated ridge regression score. With Z empty the
/// score is the CV r2 of Y ~ X; with Z non-empty it is the conditional
/// score of the three-regression residual procedure (§3.5, Appendix B).
class RidgeScorer : public Scorer {
 public:
  explicit RidgeScorer(RidgeScorerOptions options = {});

  std::string name() const override;

  const RidgeScorerOptions& options() const { return options_; }

 protected:
  Result<ScoreResult> DoScore(const la::Matrix& x, const la::Matrix& y,
                              const la::Matrix& z,
                              const ScoringContext* ctx) const override;

 private:
  Result<ScoreResult> ScoreOnce(const la::Matrix& x, const la::Matrix& y,
                                const la::Matrix& z, Rng& rng,
                                const ScoringContext* ctx) const;

  RidgeScorerOptions options_;
};

/// L1 extension: cross-validated Lasso score (marginal only; conditional
/// queries delegate residualisation to ridge for speed, as the paper
/// prefers ridge "as its implementation is often faster").
class LassoScorer : public Scorer {
 public:
  std::string name() const override { return "L1"; }

 protected:
  Result<ScoreResult> DoScore(const la::Matrix& x, const la::Matrix& y,
                              const la::Matrix& z,
                              const ScoringContext* ctx) const override;
};

/// Ablation scorer: project X onto its top-d principal components before
/// ridge. Reproduces the §4.2 observation that PCA can discard the anomaly
/// directions needed to explain Y.
class PcaRidgeScorer : public Scorer {
 public:
  explicit PcaRidgeScorer(size_t dim) : dim_(dim) {}
  std::string name() const override {
    return "L2-PCA" + std::to_string(dim_);
  }

 protected:
  Result<ScoreResult> DoScore(const la::Matrix& x, const la::Matrix& y,
                              const la::Matrix& z,
                              const ScoringContext* ctx) const override;

 private:
  size_t dim_;
};

/// Builds one of the paper's five scorers by name: "CorrMean", "CorrMax",
/// "L2", "L2-P50", "L2-P500" (plus "L1", "L2-PCA50"). NotFound otherwise.
Result<std::unique_ptr<Scorer>> MakeScorer(const std::string& name);

/// The conditional three-regression procedure (§3.5): residualise Y and X
/// on Z with cross-validated ridge, then score RY;Z ~ RX;Z. Exposed for
/// tests of the Appendix B property. With a context, the Y~Z fit — which
/// is identical for every candidate sharing a target/condition — is
/// served from the cross-hypothesis cache.
Result<ScoreResult> ConditionalRidgeScore(
    const la::Matrix& x, const la::Matrix& y, const la::Matrix& z,
    const stats::RidgeOptions& options, const ScoringContext* ctx = nullptr);

}  // namespace explainit::core
