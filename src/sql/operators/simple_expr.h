// Compiled accessors for the expression shapes the morsel-parallel
// kernels specialise on: a plain column reference, or a string-literal
// subscript of a map column (`tag['host']`). The generic Evaluator pays
// a name resolution, a dispatch and one or more Value copies per row per
// node; a bound SimpleExpr is one array index plus (for map keys) one
// map lookup, returning a borrowed cell pointer.
//
// Semantics exactly mirror Evaluator::Eval for the covered shapes —
// including "subscript on non-map value" errors and missing-key NULLs —
// so kernels built on these accessors cannot diverge from the serial
// pipeline. Anything that fails to compile or bind falls back to the
// generic path.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"
#include "sql/evaluator.h"
#include "table/column_batch.h"

namespace explainit::sql {

/// A recognised simple expression (not yet bound to a relation).
struct SimpleExpr {
  enum class Kind { kColumn, kMapKey };
  Kind kind = Kind::kColumn;
  const Expr* column = nullptr;  // the column-reference node
  std::string map_key;           // Kind::kMapKey only
};

/// Recognises `col` and `col['key']`; nullopt for anything else.
std::optional<SimpleExpr> CompileSimpleExpr(const Expr& e);

/// A SimpleExpr bound to one relation's schema (column index resolved).
struct BoundSimpleExpr {
  SimpleExpr::Kind kind = SimpleExpr::Kind::kColumn;
  size_t col = 0;
  std::string map_key;

  /// Fetches the cell for `row` from a batch's raw column arrays.
  /// Missing map keys and NULL map cells yield the shared null cell.
  Status Get(const table::ColumnBatch& batch, size_t row,
             const table::Value** out) const {
    const table::Value& cell = batch.column(col)[row];
    if (kind == SimpleExpr::Kind::kColumn) {
      *out = &cell;
      return Status::OK();
    }
    const table::ValueMap* map = cell.AsMap();
    if (map == nullptr) {
      if (cell.is_null()) {
        *out = &NullCell();
        return Status::OK();
      }
      return Status::InvalidArgument("subscript on non-map value");
    }
    auto it = map->find(map_key);
    *out = it == map->end() ? &NullCell() : &it->second;
    return Status::OK();
  }

  static const table::Value& NullCell() {
    static const table::Value kNull;
    return kNull;
  }
};

/// Binds against `schema_ev` (a schema-only Evaluator); fails when the
/// column does not resolve — callers fall back to the generic path so
/// the Evaluator reports the error with its usual message.
Result<BoundSimpleExpr> BindSimpleExpr(const SimpleExpr& simple,
                                       const Evaluator& schema_ev);

}  // namespace explainit::sql
