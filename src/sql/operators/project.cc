#include "sql/operators/project.h"

namespace explainit::sql {

using table::ColumnBatch;
using table::DataType;
using table::Field;
using table::Value;

ProjectOperator::ProjectOperator(std::unique_ptr<Operator> input,
                                 const SelectStatement* stmt,
                                 const FunctionRegistry* functions,
                                 bool retain_input, const ExecContext* ctx)
    : stmt_(stmt),
      functions_(functions),
      retain_input_(retain_input),
      ctx_(ctx) {
  input_ = AddChild(std::move(input));
}

Status ProjectOperator::OpenImpl() {
  EXPLAINIT_RETURN_IF_ERROR(input_->Open());
  const table::Schema& in = input_->output_schema();
  for (const SelectItem& item : stmt_->items) {
    if (item.is_star) {
      for (size_t c = 0; c < in.num_fields(); ++c) {
        schema_.AddField(in.field(c));
        columns_.push_back(OutputColumn{nullptr, c});
      }
      continue;
    }
    schema_.AddField(Field{ItemName(item), DataType::kNull});
    columns_.push_back(OutputColumn{item.expr.get(), 0});
    if (ContainsLag(*item.expr)) materialize_ = true;
  }
  parallel_ = !materialize_ && ctx_ != nullptr && ctx_->parallel();
  // The parallel path may also drain into retained_ (its fallback morsel
  // source when the child's storage is not borrowable).
  if (retain_input_ || materialize_ || parallel_) {
    retained_ = table::Table(in);
  }
  return Status::OK();
}

Result<ColumnBatch> ProjectOperator::ProjectRows(
    const Evaluator& ev, size_t rows, const ColumnBatch* borrow) {
  ColumnBatch out(&schema_, rows);
  for (const OutputColumn& col : columns_) {
    if (col.expr == nullptr) {
      if (borrow != nullptr) {
        out.AddBorrowedColumn(borrow->column(col.pass_through));
      } else {
        out.AddBorrowedColumn(retained_.column(col.pass_through).data());
      }
      continue;
    }
    std::vector<Value> values;
    values.reserve(rows);
    for (size_t r = 0; r < rows; ++r) {
      EXPLAINIT_ASSIGN_OR_RETURN(Value v, ev.Eval(*col.expr, r));
      values.push_back(std::move(v));
    }
    out.AddOwnedColumn(std::move(values));
  }
  return out;
}

Result<ColumnBatch> ProjectOperator::ParallelNext(bool* eof) {
  if (!done_) {
    done_ = true;
    // Morsel source: borrow the child's materialised table when its
    // schema object is the child's output schema, else drain once. The
    // source doubles as the retained pre-projection rows (1:1).
    const table::Table* source = input_->MaterializedTable();
    if (source == nullptr ||
        &source->schema() != &input_->output_schema()) {
      EXPLAINIT_RETURN_IF_ERROR(Drain(input_, &retained_));
      source = &retained_;
    }
    retained_ptr_ = source;
    const std::vector<RowRange> shards =
        ShardRows(source->num_rows(), ctx_->parallelism);
    std::vector<ColumnBatch> outputs(shards.size());
    EXPLAINIT_RETURN_IF_ERROR(RunSharded(
        ctx_, shards.size(), [&](size_t s) -> Status {
          const RowRange& range = shards[s];
          ColumnBatch out(&schema_, range.size());
          Evaluator ev(source, functions_);
          for (const OutputColumn& col : columns_) {
            if (col.expr == nullptr) {
              out.AddBorrowedColumn(
                  source->column(col.pass_through).data() + range.begin);
              continue;
            }
            std::vector<Value> values;
            values.reserve(range.size());
            for (size_t r = range.begin; r < range.end; ++r) {
              EXPLAINIT_ASSIGN_OR_RETURN(Value v, ev.Eval(*col.expr, r));
              values.push_back(std::move(v));
            }
            out.AddOwnedColumn(std::move(values));
          }
          outputs[s] = std::move(out);
          return Status::OK();
        }));
    shard_output_ = std::move(outputs);
    stats_.detail = std::to_string(shards.size()) + " shards";
  }
  while (emit_pos_ < shard_output_.size()) {
    ColumnBatch batch = std::move(shard_output_[emit_pos_]);
    ++emit_pos_;
    if (batch.num_rows() == 0) continue;
    *eof = false;
    return batch;
  }
  *eof = true;
  return ColumnBatch{};
}

Result<ColumnBatch> ProjectOperator::NextImpl(bool* eof) {
  if (parallel_) return ParallelNext(eof);
  if (materialize_) {
    // LAG window: evaluate over the whole input at once. The retained
    // table doubles as the materialised input.
    if (done_) {
      *eof = true;
      return ColumnBatch{};
    }
    done_ = true;
    EXPLAINIT_RETURN_IF_ERROR(Drain(input_, &retained_));
    Evaluator ev(&retained_, functions_);
    *eof = false;
    return ProjectRows(ev, retained_.num_rows(), nullptr);
  }
  bool child_eof = false;
  EXPLAINIT_ASSIGN_OR_RETURN(ColumnBatch batch, input_->Next(&child_eof));
  if (child_eof) {
    *eof = true;
    return ColumnBatch{};
  }
  if (retain_input_) batch.AppendTo(&retained_);
  current_input_ = std::move(batch);
  Evaluator ev(&current_input_, functions_);
  *eof = false;
  return ProjectRows(ev, current_input_.num_rows(), &current_input_);
}

}  // namespace explainit::sql
