// Filter: vectorised predicate evaluation over batches, compacting the
// survivors. Predicates containing LAG (which reads neighbouring rows)
// first materialise the whole input so the window sees the full relation.
#pragma once

#include "sql/evaluator.h"
#include "sql/operators/operator.h"

namespace explainit::sql {

class FilterOperator : public Operator {
 public:
  /// `predicate` is owned (the planner hands a clone or a rebuilt
  /// residual after pushdown).
  FilterOperator(std::unique_ptr<Operator> input, ExprPtr predicate,
                 const FunctionRegistry* functions);

  const table::Schema& output_schema() const override {
    return input_->output_schema();
  }
  std::string name() const override { return "Filter"; }

 protected:
  Status OpenImpl() override;
  Result<table::ColumnBatch> NextImpl(bool* eof) override;

 private:
  Operator* input_;
  ExprPtr predicate_;
  const FunctionRegistry* functions_;
  bool materialize_ = false;  // LAG present: evaluate over the whole input

  table::Table materialized_;
  bool materialized_done_ = false;
};

}  // namespace explainit::sql
