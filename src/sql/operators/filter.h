// Filter: vectorised predicate evaluation over batches, compacting the
// survivors. Predicates containing LAG (which reads neighbouring rows)
// first materialise the whole input so the window sees the full relation.
//
// With a parallel ExecContext the filter becomes morsel-parallel: the
// input is materialised once (borrowing the child's backing table when it
// is already materialised, e.g. a catalog scan), contiguous row shards
// are evaluated across the pool, and per-shard survivors are emitted in
// shard order — all-pass shards as zero-copy views, partial shards as
// owned compactions — so output order matches the serial pipeline.
// When every top-level WHERE conjunct is a simple comparison
// (`col OP literal`, `tag['k'] OP literal`, `col [NOT] BETWEEN lit AND
// lit`), the predicate compiles to a vector of flat matchers evaluated
// straight off the column arrays — no per-row Evaluator dispatch, name
// resolution or Value copies. Keep/drop decisions are identical to the
// Evaluator's three-valued AND (a row passes iff every conjunct is
// true); any other shape falls back to generic evaluation.
#pragma once

#include "sql/evaluator.h"
#include "sql/operators/operator.h"
#include "sql/operators/simple_expr.h"

namespace explainit::sql {

class FilterOperator : public Operator {
 public:
  /// `predicate` is owned (the planner hands a clone or a rebuilt
  /// residual after pushdown). `ctx` may be null (serial).
  FilterOperator(std::unique_ptr<Operator> input, ExprPtr predicate,
                 const FunctionRegistry* functions,
                 const ExecContext* ctx = nullptr);

  const table::Schema& output_schema() const override {
    return input_->output_schema();
  }
  std::string name() const override { return "Filter"; }
  bool StableBatches() const override {
    return materialize_ || parallel_ || input_->StableBatches();
  }

 protected:
  Status OpenImpl() override;
  Result<table::ColumnBatch> NextImpl(bool* eof) override;

 private:
  /// One compiled conjunct: a bound accessor compared against a literal.
  struct Matcher {
    enum class Op { kEq, kNe, kLt, kLe, kGt, kGe, kBetween };
    BoundSimpleExpr lhs;
    Op op = Op::kEq;
    bool negated = false;  // BETWEEN only
    table::Value rhs;      // comparison / BETWEEN lo
    table::Value hi;       // BETWEEN hi
  };

  Result<table::ColumnBatch> ParallelNext(bool* eof);
  /// Tries to compile+bind the whole predicate; fills matchers_ and
  /// returns true only when every conjunct compiled.
  bool CompileMatchers();
  /// Evaluates the compiled conjuncts at one row (all-true semantics).
  static Result<bool> MatchRow(const std::vector<Matcher>& matchers,
                               const table::ColumnBatch& batch, size_t row);

  Operator* input_;
  ExprPtr predicate_;
  const FunctionRegistry* functions_;
  const ExecContext* ctx_;
  bool materialize_ = false;  // LAG present: evaluate over the whole input
  bool parallel_ = false;     // sharded morsel path

  table::Table materialized_;
  bool materialized_done_ = false;

  // Parallel path state: the morsel source (borrowed child table or the
  // drained copy), per-shard survivor batches, and the emit cursor.
  table::Table drained_;
  std::vector<table::ColumnBatch> shard_output_;
  size_t emit_pos_ = 0;
  bool sharded_done_ = false;

  std::vector<Matcher> matchers_;
  bool use_matchers_ = false;
};

}  // namespace explainit::sql
