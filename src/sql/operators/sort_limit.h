// Sort/Limit: ORDER BY is a pipeline breaker (materialises its input and
// sorts); LIMIT without ORDER BY streams and stops pulling its child as
// soon as enough rows arrived.
//
// Each ORDER BY item resolves its evaluation side *once* — the output
// schema (aliases, expression names) or the retained pre-projection rows
// (ORDER BY on an unprojected column) — and every row's key then
// evaluates against that one side. (The old per-row fallback could mix
// values from the two schemas within a single item when evaluation
// errored on only some rows.)
//
// Parallelism (ExecContext with parallelism > 1): sort keys evaluate in
// row shards, each shard sorts its range (a bounded top-K heap when
// LIMIT is present), and a k-way merge assembles the order. The
// comparator totally orders rows (input index breaks ties), so the
// result is byte-identical to the serial stable sort at every level.
// The sorted table materialises column-wise in parallel (a gather, not
// row-at-a-time appends).
#pragma once

#include <algorithm>

#include "sql/evaluator.h"
#include "sql/operators/operator.h"

namespace explainit::sql {

class SortLimitOperator : public Operator {
 public:
  /// The input's retained_input() rows (when it retains any) resolve
  /// ORDER BY expressions that name unprojected columns; `aggregated`
  /// flips the resolution order exactly as the row interpreter did.
  SortLimitOperator(std::unique_ptr<Operator> input,
                    const SelectStatement* stmt,
                    const FunctionRegistry* functions, bool aggregated,
                    const ExecContext* ctx = nullptr);

  const table::Schema& output_schema() const override {
    return input_->output_schema();
  }
  std::string name() const override { return "SortLimit"; }
  void AccumulateExecStats(ExecStats* stats) const override {
    if (!stmt_->order_by.empty()) {
      stats->sort_shards = std::max(stats->sort_shards, sort_shards_);
    }
  }
  bool StableBatches() const override {
    return !stmt_->order_by.empty() || input_->StableBatches();
  }

 protected:
  Status OpenImpl() override;
  Result<table::ColumnBatch> NextImpl(bool* eof) override;

 private:
  /// Evaluates every ORDER BY item into column-major key vectors,
  /// resolving each item's evaluation side once.
  Status BuildSortKeys(const table::Table& output,
                       std::vector<std::vector<table::Value>>* keys) const;
  /// Materialises `output`'s rows in `order` into sorted_ (columnar
  /// gather, sharded).
  Status GatherSorted(const table::Table& output,
                      const std::vector<size_t>& order);

  Operator* input_;
  const SelectStatement* stmt_;
  const FunctionRegistry* functions_;
  const bool aggregated_;
  const ExecContext* ctx_;

  table::Table sorted_;
  size_t pos_ = 0;
  size_t emitted_ = 0;  // streaming LIMIT
  size_t sort_shards_ = 1;
  bool sorted_done_ = false;
};

}  // namespace explainit::sql
