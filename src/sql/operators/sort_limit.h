// Sort/Limit: ORDER BY is a pipeline breaker (materialises its input and
// sorts); LIMIT without ORDER BY streams and stops pulling its child as
// soon as enough rows arrived. Sort keys resolve against the output
// schema first (aliases), then fall back to the retained pre-projection
// rows (ORDER BY on an unprojected column).
#pragma once

#include "sql/evaluator.h"
#include "sql/operators/operator.h"

namespace explainit::sql {

class SortLimitOperator : public Operator {
 public:
  /// The input's retained_input() rows (when it retains any) resolve
  /// ORDER BY expressions that name unprojected columns; `aggregated`
  /// flips the resolution order exactly as the row interpreter did.
  SortLimitOperator(std::unique_ptr<Operator> input,
                    const SelectStatement* stmt,
                    const FunctionRegistry* functions, bool aggregated);

  const table::Schema& output_schema() const override {
    return input_->output_schema();
  }
  std::string name() const override { return "SortLimit"; }
  bool StableBatches() const override {
    return !stmt_->order_by.empty() || input_->StableBatches();
  }

 protected:
  Status OpenImpl() override;
  Result<table::ColumnBatch> NextImpl(bool* eof) override;

 private:
  Operator* input_;
  const SelectStatement* stmt_;
  const FunctionRegistry* functions_;
  const bool aggregated_;

  table::Table sorted_;
  size_t pos_ = 0;
  size_t emitted_ = 0;  // streaming LIMIT
  bool sorted_done_ = false;
};

}  // namespace explainit::sql
