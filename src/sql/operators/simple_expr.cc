#include "sql/operators/simple_expr.h"

namespace explainit::sql {

std::optional<SimpleExpr> CompileSimpleExpr(const Expr& e) {
  SimpleExpr out;
  if (e.kind == ExprKind::kColumnRef) {
    out.kind = SimpleExpr::Kind::kColumn;
    out.column = &e;
    return out;
  }
  if (e.kind == ExprKind::kSubscript && e.left != nullptr &&
      e.left->kind == ExprKind::kColumnRef && e.right != nullptr &&
      e.right->kind == ExprKind::kLiteral &&
      e.right->literal.type() == table::DataType::kString) {
    out.kind = SimpleExpr::Kind::kMapKey;
    out.column = e.left.get();
    out.map_key = e.right->literal.AsString();
    return out;
  }
  return std::nullopt;
}

Result<BoundSimpleExpr> BindSimpleExpr(const SimpleExpr& simple,
                                       const Evaluator& schema_ev) {
  EXPLAINIT_ASSIGN_OR_RETURN(size_t idx,
                             schema_ev.ResolveColumn(*simple.column));
  BoundSimpleExpr bound;
  bound.kind = simple.kind;
  bound.col = idx;
  bound.map_key = simple.map_key;
  return bound;
}

}  // namespace explainit::sql
