// HashAggregate: incremental hash grouping over input batches (group keys
// are evaluated vectorised per batch), then per-group evaluation of the
// select list / HAVING. A pipeline breaker: groups can only close once
// the input is exhausted.
#pragma once

#include <unordered_map>

#include "sql/evaluator.h"
#include "sql/operators/operator.h"

namespace explainit::sql {

class HashAggregateOperator : public Operator {
 public:
  HashAggregateOperator(std::unique_ptr<Operator> input,
                        const SelectStatement* stmt,
                        const FunctionRegistry* functions);

  const table::Schema& output_schema() const override { return schema_; }
  std::string name() const override { return "HashAggregate"; }

  /// The accumulated input rows (the aggregate materialises its input
  /// anyway); ORDER BY's last-resort resolution path reads them.
  const table::Table* retained_input() const { return &acc_; }

 protected:
  Status OpenImpl() override;
  Result<table::ColumnBatch> NextImpl(bool* eof) override;

 private:
  Operator* input_;
  const SelectStatement* stmt_;
  const FunctionRegistry* functions_;

  table::Schema schema_;
  table::Table acc_;  // all input rows, grouped by row index
  std::unordered_map<std::string, std::vector<size_t>> groups_;
  std::vector<std::string> group_order_;
  bool done_ = false;
};

}  // namespace explainit::sql
