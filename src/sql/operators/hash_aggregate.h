// HashAggregate: incremental hash grouping over input batches (group keys
// are evaluated vectorised per batch), then per-group evaluation of the
// select list / HAVING. A pipeline breaker: groups can only close once
// the input is exhausted.
//
// With a parallel ExecContext the operator is morsel-parallel. Two modes:
//
//  * partial mode — every aggregate call decomposes (COUNT/SUM/MIN/MAX/
//    AVG): workers build per-shard hash tables of flat partial states
//    (sum, non-null count, min, max, row count), a merge stage combines
//    partials in shard order (so a given parallelism level is
//    deterministic), and finalisation substitutes merged values for the
//    aggregate nodes. Input morsels are the child's own batches when the
//    child emits stable storage (no re-materialisation), else row shards
//    of a one-time drain.
//  * index mode — non-decomposable aggregates (STDDEV, PERCENTILE, or
//    malformed calls whose error messages the serial path owns): workers
//    group row indices per shard, the merge concatenates them in shard
//    order (preserving ascending row order), and the serial per-group
//    evaluation runs in parallel across groups.
//
// Stages whose expressions contain LAG stay on the serial materialised
// path: LAG reads neighbouring rows of the whole relation.
#pragma once

#include <algorithm>
#include <optional>
#include <string_view>
#include <unordered_map>

#include "sql/evaluator.h"
#include "sql/operators/operator.h"
#include "sql/operators/simple_expr.h"

namespace explainit::sql {

class HashAggregateOperator : public Operator {
 public:
  HashAggregateOperator(std::unique_ptr<Operator> input,
                        const SelectStatement* stmt,
                        const FunctionRegistry* functions,
                        const ExecContext* ctx = nullptr,
                        bool retain_input = true);

  const table::Schema& output_schema() const override { return schema_; }
  std::string name() const override { return "HashAggregate"; }
  bool StableBatches() const override { return true; }

  /// The accumulated input rows (the aggregate materialises its input
  /// on every path that retains); ORDER BY's last-resort resolution path
  /// reads them. Null when constructed with retain_input == false and
  /// the parallel partial path skipped materialisation.
  const table::Table* retained_input() const override {
    return retained_ptr_;
  }

 protected:
  Status OpenImpl() override;
  Result<table::ColumnBatch> NextImpl(bool* eof) override;

 private:
  /// Flat partial state of one decomposable aggregate in one group.
  /// Argument-evaluation errors are captured per slot instead of failing
  /// the whole phase: the serial pipeline only surfaces them when the
  /// group survives HAVING, so eager partial evaluation must too.
  struct PartialState {
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    int64_t non_null = 0;
    Status error;

    /// Folds one non-null argument value in (kernel and generic
    /// accumulation share this so their numerics cannot diverge).
    void Accumulate(double d) {
      if (non_null == 0) {
        min = d;
        max = d;
      } else {
        min = std::min(min, d);
        max = std::max(max, d);
      }
      sum += d;
      ++non_null;
    }
  };
  struct GroupPartial {
    uint32_t first_batch = 0;  // representative row for non-aggregate parts
    uint32_t first_row = 0;
    size_t rows = 0;
  };
  /// Heterogeneous-lookup hash (group probes use string_view keys built
  /// in reused buffers; only insertions construct a std::string).
  struct TransparentStringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  using GroupIndexMap =
      std::unordered_map<std::string, size_t, TransparentStringHash,
                         std::equal_to<>>;

  /// One worker's hash table plus first-seen key order. Groups and their
  /// flat slot states live in contiguous arrays (groups[i]'s slot j is
  /// slots[i * num_slots + j]) — no per-group heap allocation — and the
  /// order vector borrows the map's node-stable key storage.
  struct ShardGroups {
    GroupIndexMap index;
    std::vector<const std::string*> order;  // keys in first-seen order
    std::vector<GroupPartial> groups;       // parallel to `order`
    std::vector<PartialState> slots;        // groups.size() * num_slots
  };

  Result<table::ColumnBatch> SerialNext(bool* eof);
  Result<table::ColumnBatch> PartialNext(bool* eof);
  Result<table::ColumnBatch> IndexNext(bool* eof);
  /// Generic per-batch partial accumulation (Evaluator-based).
  Status PartialAccumulateGeneric(const table::ColumnBatch& batch,
                                  uint32_t batch_index, ShardGroups* local);
  /// Compiled kernel: direct column accessors for group keys and
  /// aggregate arguments, string_view group probes, no per-row Evaluator.
  /// Returns false (without touching `local`) when the batch's schema
  /// does not bind — the caller falls back to the generic path.
  Result<bool> PartialAccumulateKernel(const table::ColumnBatch& batch,
                                       uint32_t batch_index,
                                       ShardGroups* local);
  /// Drains the input into acc_ and exposes it as one view batch per row
  /// shard (the morsel source for the drained parallel variants).
  Status MaterializeInputShards();
  /// Builds the final output batch given per-group item/HAVING values.
  table::ColumnBatch EmitRows(std::vector<std::vector<table::Value>> cols,
                              size_t rows);

  Operator* input_;
  const SelectStatement* stmt_;
  const FunctionRegistry* functions_;
  const ExecContext* ctx_;
  bool retain_input_;

  table::Schema schema_;
  table::Table acc_;  // all input rows, grouped by row index
  const table::Table* retained_ptr_ = nullptr;
  std::unordered_map<std::string, std::vector<size_t>> groups_;
  std::vector<std::string> group_order_;
  bool done_ = false;

  // Parallel-mode state, resolved at Open().
  bool lag_anywhere_ = false;
  bool partial_ok_ = false;
  std::vector<const Expr*> agg_nodes_;  // topmost aggregate calls
  std::unordered_map<const Expr*, size_t> slot_of_;
  std::vector<table::ColumnBatch> morsels_;  // buffered/viewed input

  // Kernel eligibility: every group key and aggregate argument is a
  // plain column or tag-subscript (COUNT(*) needs no argument).
  struct SlotArg {
    bool star = false;
    SimpleExpr expr;
  };
  bool kernel_ok_ = false;
  std::vector<SimpleExpr> simple_keys_;
  std::vector<SlotArg> simple_args_;
};

}  // namespace explainit::sql
