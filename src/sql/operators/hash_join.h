// HashJoin: §4.2's "broadcast join". The build side (chosen by the
// planner: the smaller input for symmetric joins) is fully materialised
// into a hash table; the probe side streams through batch-wise. Equi
// conjuncts become hash keys; the remaining conjuncts evaluate as a
// residual over candidate rows. A condition whose equality conjuncts
// turn out not to split across the inputs degenerates to a single-key
// cross product with the full condition as residual (the nested-loop
// equivalent).
#pragma once

#include <unordered_map>
#include <vector>

#include "sql/evaluator.h"
#include "sql/operators/operator.h"

namespace explainit::sql {

/// A join condition split into equi-conjunct key pairs and a residual.
/// (CollectConjuncts / HasEqualityConjunct live in operator.h.)
struct EquiKeys {
  std::vector<const Expr*> left_exprs;
  std::vector<const Expr*> right_exprs;
  std::vector<const Expr*> residual;
};

/// Splits `condition` by resolving each equality's sides against the two
/// input schemas (schema-only Evaluators are sufficient).
EquiKeys SplitJoinCondition(const Expr* condition, const Evaluator& left_ev,
                            const Evaluator& right_ev);

class HashJoinOperator : public Operator {
 public:
  /// `build_left` builds the hash table on the left input (planner picks
  /// the smaller side; only for symmetric join types). Output columns are
  /// always left fields then right fields.
  HashJoinOperator(std::unique_ptr<Operator> left,
                   std::unique_ptr<Operator> right, const JoinClause* join,
                   const FunctionRegistry* functions, bool build_left);

  const table::Schema& output_schema() const override { return schema_; }
  std::string name() const override { return "HashJoin"; }
  void AccumulateExecStats(ExecStats* stats) const override {
    ++stats->hash_joins;
  }
  /// Every emitted batch is owned (gathered candidates / outer pads).
  bool StableBatches() const override { return true; }

 protected:
  Status OpenImpl() override;
  Result<table::ColumnBatch> NextImpl(bool* eof) override;

 private:
  Result<table::ColumnBatch> FinishFullOuter(bool* eof);

  Operator* left_;
  Operator* right_;
  const JoinClause* join_;
  const FunctionRegistry* functions_;
  const bool build_left_;

  table::Schema schema_;          // left fields + right fields
  table::Table build_table_;      // materialised build side
  EquiKeys keys_;
  std::unordered_multimap<std::string, size_t> build_index_;
  std::vector<const Expr*> probe_exprs_;  // key exprs of the probe side
  std::vector<bool> build_matched_;       // for FULL OUTER
  size_t left_width_ = 0;
  size_t right_width_ = 0;
  bool probe_done_ = false;
  bool outer_emitted_ = false;
};

}  // namespace explainit::sql
