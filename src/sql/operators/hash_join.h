// HashJoin: §4.2's "broadcast join". The build side (chosen by the
// planner: the smaller input when row counts are known) is fully
// materialised into a partitioned hash index; the probe side streams
// through batch-wise. Equi conjuncts become hash keys; the remaining
// conjuncts evaluate as a residual over candidate rows. A condition
// whose equality conjuncts turn out not to split across the inputs
// degenerates to a single-key cross product with the full condition as
// residual (the nested-loop equivalent).
//
// Parallelism (ExecContext with parallelism > 1): the build side is
// partitioned by key hash, per-partition indexes are built across the
// pool, and each probe batch is sharded into contiguous row ranges that
// probe concurrently. Per-shard candidates and build-side match sets
// are merged in shard order, so output row order and match bookkeeping
// are identical to the serial path (matches enumerate in ascending
// build-row order at every parallelism level).
//
// Outer joins pad by the *actual* build side: unmatched probe rows pad
// per batch (nulls on the build side's columns), unmatched build rows
// pad once after the probe is exhausted (nulls on the probe side's
// columns). Either input may be the build side for LEFT / FULL OUTER.
#pragma once

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "sql/evaluator.h"
#include "sql/operators/operator.h"

namespace explainit::sql {

/// A join condition split into equi-conjunct key pairs and a residual.
/// (CollectConjuncts / HasEqualityConjunct live in operator.h.)
struct EquiKeys {
  std::vector<const Expr*> left_exprs;
  std::vector<const Expr*> right_exprs;
  std::vector<const Expr*> residual;
};

/// Splits `condition` by resolving each equality's sides against the two
/// input schemas (schema-only Evaluators are sufficient).
EquiKeys SplitJoinCondition(const Expr* condition, const Evaluator& left_ev,
                            const Evaluator& right_ev);

class HashJoinOperator : public Operator {
 public:
  /// `build_left` builds the hash index on the left input (planner picks
  /// the smaller side). Output columns are always left fields then right
  /// fields regardless of orientation.
  HashJoinOperator(std::unique_ptr<Operator> left,
                   std::unique_ptr<Operator> right, const JoinClause* join,
                   const FunctionRegistry* functions, bool build_left,
                   const ExecContext* ctx = nullptr);

  const table::Schema& output_schema() const override { return schema_; }
  std::string name() const override { return "HashJoin"; }
  void AccumulateExecStats(ExecStats* stats) const override {
    ++stats->hash_joins;
    stats->join_build_partitions =
        std::max(stats->join_build_partitions, num_partitions_);
  }
  /// Every emitted batch is owned (gathered candidates / outer pads).
  bool StableBatches() const override { return true; }

 protected:
  Status OpenImpl() override;
  Result<table::ColumnBatch> NextImpl(bool* eof) override;

 private:
  /// Rows of one hash partition, keyed by encoded join key. Row vectors
  /// are ascending build-row order, so match enumeration is deterministic.
  struct BuildPartition {
    std::unordered_map<std::string, std::vector<size_t>> index;
  };

  /// True when unmatched build rows must be emitted after the probe
  /// (FULL OUTER, or LEFT when the left input is the build side).
  bool NeedsBuildPads() const;
  /// True when unmatched probe rows pad per batch (FULL OUTER, or LEFT
  /// when the left input is the probe side).
  bool NeedsProbePads() const;
  /// Appends one combined output row built from a probe row (i) and a
  /// build row (j) to `cols`, honouring the orientation.
  void AppendCandidate(std::vector<std::vector<table::Value>>* cols,
                       const table::ColumnBatch& batch, size_t i,
                       size_t j) const;
  Result<table::ColumnBatch> FinishBuildPads(bool* eof);

  Operator* left_;
  Operator* right_;
  const JoinClause* join_;
  const FunctionRegistry* functions_;
  const bool build_left_;
  const ExecContext* ctx_;

  table::Schema schema_;          // left fields + right fields
  table::Table build_table_;      // materialised build side
  EquiKeys keys_;
  std::vector<BuildPartition> partitions_;
  size_t num_partitions_ = 1;
  std::vector<const Expr*> probe_exprs_;  // key exprs of the probe side
  std::vector<char> build_matched_;       // for outer pads
  size_t left_width_ = 0;
  size_t right_width_ = 0;
  size_t build_offset_ = 0;  // column offset of the build side's fields
  size_t probe_offset_ = 0;  // column offset of the probe side's fields
  size_t build_width_ = 0;
  size_t probe_width_ = 0;
  bool lag_in_condition_ = false;  // LAG reads neighbours: probe serially
  bool parallel_ = false;          // set once in Open, as Filter/Project do
  bool probe_done_ = false;
  size_t pad_pos_ = 0;  // build-row cursor of the chunked pad emission
  bool pads_emitted_ = false;
};

}  // namespace explainit::sql
