// Project: evaluates the select list over batches. `SELECT *` columns
// pass through as borrowed (zero-copy) columns; computed items become
// owned columns. Items containing LAG materialise the whole input first.
// When ORDER BY may reference unprojected columns, the operator also
// retains its input rows (1:1 with the output) for the sort to consult.
#pragma once

#include "sql/evaluator.h"
#include "sql/operators/operator.h"

namespace explainit::sql {

class ProjectOperator : public Operator {
 public:
  ProjectOperator(std::unique_ptr<Operator> input,
                  const SelectStatement* stmt,
                  const FunctionRegistry* functions, bool retain_input);

  const table::Schema& output_schema() const override { return schema_; }
  std::string name() const override { return "Project"; }

  /// The retained pre-projection rows (valid after execution, only when
  /// constructed with retain_input). Rows map 1:1 to output rows.
  const table::Table* retained_input() const {
    return retain_input_ ? &retained_ : nullptr;
  }

 protected:
  Status OpenImpl() override;
  Result<table::ColumnBatch> NextImpl(bool* eof) override;

 private:
  struct OutputColumn {
    const Expr* expr = nullptr;  // null = star pass-through
    size_t pass_through = 0;     // input column index when expr == null
  };

  Result<table::ColumnBatch> ProjectRows(const Evaluator& ev, size_t rows,
                                         const table::ColumnBatch* borrow);

  Operator* input_;
  const SelectStatement* stmt_;
  const FunctionRegistry* functions_;
  bool retain_input_;
  bool materialize_ = false;  // LAG in a select item

  table::Schema schema_;
  std::vector<OutputColumn> columns_;
  table::ColumnBatch current_input_;  // keeps pass-through storage alive
  table::Table materialized_;
  table::Table retained_;
  bool done_ = false;
};

}  // namespace explainit::sql
