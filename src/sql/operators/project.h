// Project: evaluates the select list over batches. `SELECT *` columns
// pass through as borrowed (zero-copy) columns; computed items become
// owned columns. Items containing LAG materialise the whole input first.
// When ORDER BY may reference unprojected columns, the operator also
// retains its input rows (1:1 with the output) for the sort to consult.
//
// With a parallel ExecContext the projection is morsel-parallel: the
// input is materialised once (borrowed from an already-materialised
// child when possible), row shards evaluate the computed columns across
// the pool, and per-shard batches are emitted in shard order with
// pass-through columns still borrowed from the source table.
#pragma once

#include "sql/evaluator.h"
#include "sql/operators/operator.h"

namespace explainit::sql {

class ProjectOperator : public Operator {
 public:
  ProjectOperator(std::unique_ptr<Operator> input,
                  const SelectStatement* stmt,
                  const FunctionRegistry* functions, bool retain_input,
                  const ExecContext* ctx = nullptr);

  const table::Schema& output_schema() const override { return schema_; }
  std::string name() const override { return "Project"; }
  bool StableBatches() const override { return materialize_ || parallel_; }

  /// The retained pre-projection rows (valid after execution, only when
  /// constructed with retain_input). Rows map 1:1 to output rows.
  const table::Table* retained_input() const override {
    return retain_input_ ? retained_ptr_ : nullptr;
  }

 protected:
  Status OpenImpl() override;
  Result<table::ColumnBatch> NextImpl(bool* eof) override;

 private:
  struct OutputColumn {
    const Expr* expr = nullptr;  // null = star pass-through
    size_t pass_through = 0;     // input column index when expr == null
  };

  Result<table::ColumnBatch> ProjectRows(const Evaluator& ev, size_t rows,
                                         const table::ColumnBatch* borrow);
  Result<table::ColumnBatch> ParallelNext(bool* eof);

  Operator* input_;
  const SelectStatement* stmt_;
  const FunctionRegistry* functions_;
  bool retain_input_;
  const ExecContext* ctx_;
  bool materialize_ = false;  // LAG in a select item
  bool parallel_ = false;     // sharded morsel path

  table::Schema schema_;
  std::vector<OutputColumn> columns_;
  table::ColumnBatch current_input_;  // keeps pass-through storage alive
  table::Table materialized_;
  table::Table retained_;
  const table::Table* retained_ptr_ = &retained_;
  bool done_ = false;

  std::vector<table::ColumnBatch> shard_output_;
  size_t emit_pos_ = 0;
};

}  // namespace explainit::sql
