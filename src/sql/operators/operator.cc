#include "sql/operators/operator.h"

namespace explainit::sql {

namespace {
int64_t NowNs() {
  return static_cast<int64_t>(MonotonicSeconds() * 1e9);
}
}  // namespace

Status Operator::Open() {
  stats_.name = name();
  const int64_t t0 = NowNs();
  Status s = OpenImpl();
  stats_.elapsed_ns += NowNs() - t0;
  return s;
}

Result<table::ColumnBatch> Operator::Next(bool* eof) {
  const int64_t t0 = NowNs();
  auto r = NextImpl(eof);
  stats_.elapsed_ns += NowNs() - t0;
  if (r.ok() && !*eof) {
    stats_.rows_output += r->num_rows();
    ++stats_.batches_output;
  }
  return r;
}

void Operator::CollectStats(std::vector<OperatorStats>* out) const {
  stats_.name = name();
  out->push_back(stats_);
  for (const auto& c : children_) c->CollectStats(out);
}

void Operator::AccumulateExecStatsTree(ExecStats* stats) const {
  AccumulateExecStats(stats);
  for (const auto& c : children_) c->AccumulateExecStatsTree(stats);
}

Status Operator::Drain(Operator* op, table::Table* out) {
  bool eof = false;
  while (true) {
    EXPLAINIT_ASSIGN_OR_RETURN(table::ColumnBatch batch, op->Next(&eof));
    if (eof) return Status::OK();
    batch.AppendTo(out);
  }
}

std::string EncodeKey(const std::vector<table::Value>& values,
                      bool* has_null) {
  std::string key;
  for (const table::Value& v : values) {
    if (v.is_null() && has_null != nullptr) *has_null = true;
    key += v.ToString();
    key += '\x1f';
  }
  return key;
}

bool ContainsLag(const Expr& e) {
  if (e.kind == ExprKind::kFunction && e.function_name == "LAG") return true;
  auto check = [](const ExprPtr& c) {
    return c != nullptr && ContainsLag(*c);
  };
  if (check(e.left) || check(e.right) || check(e.between_lo) ||
      check(e.between_hi) || check(e.case_else)) {
    return true;
  }
  for (const ExprPtr& a : e.args) {
    if (check(a)) return true;
  }
  for (const ExprPtr& a : e.list) {
    if (check(a)) return true;
  }
  for (const CaseBranch& b : e.case_branches) {
    if (check(b.condition) || check(b.result)) return true;
  }
  return false;
}

std::string ItemName(const SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  return item.expr->ToString();
}

}  // namespace explainit::sql
