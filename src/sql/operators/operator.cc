#include "sql/operators/operator.h"

#include <algorithm>

namespace explainit::sql {

namespace {
int64_t NowNs() {
  return static_cast<int64_t>(MonotonicSeconds() * 1e9);
}
}  // namespace

Status Operator::Open() {
  stats_.name = name();
  const int64_t t0 = NowNs();
  Status s = OpenImpl();
  stats_.elapsed_ns += NowNs() - t0;
  return s;
}

void Operator::BindExecContext(const ExecContext* ctx) {
  bound_ctx_ = ctx;
  for (const auto& c : children_) c->BindExecContext(ctx);
}

Result<table::ColumnBatch> Operator::Next(bool* eof) {
  if (bound_ctx_ != nullptr) {
    EXPLAINIT_RETURN_IF_ERROR(bound_ctx_->CheckCancel());
  }
  const int64_t t0 = NowNs();
  auto r = NextImpl(eof);
  stats_.elapsed_ns += NowNs() - t0;
  if (r.ok() && !*eof) {
    stats_.rows_output += r->num_rows();
    ++stats_.batches_output;
  }
  return r;
}

void Operator::CollectStats(std::vector<OperatorStats>* out) const {
  stats_.name = name();
  out->push_back(stats_);
  for (const auto& c : children_) c->CollectStats(out);
}

void Operator::AccumulateExecStatsTree(ExecStats* stats) const {
  AccumulateExecStats(stats);
  for (const auto& c : children_) c->AccumulateExecStatsTree(stats);
}

Status Operator::Drain(Operator* op, table::Table* out) {
  bool eof = false;
  while (true) {
    EXPLAINIT_ASSIGN_OR_RETURN(table::ColumnBatch batch, op->Next(&eof));
    if (eof) return Status::OK();
    batch.AppendTo(out);
  }
}

std::vector<RowRange> ShardRows(size_t num_rows, size_t parallelism,
                                size_t min_shard_rows) {
  // Below min_shard_rows rows per shard the fan-out overhead beats the
  // work.
  if (min_shard_rows == 0) min_shard_rows = 1;
  size_t shards = parallelism == 0 ? 1 : parallelism;
  if (num_rows / min_shard_rows < shards) {
    shards = std::max<size_t>(1, num_rows / min_shard_rows);
  }
  std::vector<RowRange> out;
  out.reserve(shards);
  const size_t base = num_rows / shards;
  const size_t extra = num_rows % shards;
  size_t begin = 0;
  for (size_t i = 0; i < shards; ++i) {
    const size_t len = base + (i < extra ? 1 : 0);
    out.push_back(RowRange{begin, begin + len});
    begin += len;
  }
  return out;
}

Status RunSharded(const ExecContext* ctx, size_t num_shards,
                  const std::function<Status(size_t)>& fn) {
  if (num_shards == 0) return Status::OK();
  if (num_shards == 1 || ctx == nullptr || !ctx->parallel()) {
    for (size_t i = 0; i < num_shards; ++i) {
      EXPLAINIT_RETURN_IF_ERROR(fn(i));
    }
    return Status::OK();
  }
  std::vector<Status> statuses(num_shards, Status::OK());
  exec::ParallelFor(*ctx->pool, num_shards,
                    [&](size_t i) { statuses[i] = fn(i); });
  for (Status& s : statuses) {
    EXPLAINIT_RETURN_IF_ERROR(std::move(s));
  }
  return Status::OK();
}

std::string EncodeKey(const std::vector<table::Value>& values,
                      bool* has_null) {
  std::string key;
  for (const table::Value& v : values) {
    if (v.is_null() && has_null != nullptr) *has_null = true;
    key += v.ToString();
    key += '\x1f';
  }
  return key;
}

void CollectConjuncts(const Expr* e, std::vector<const Expr*>* out) {
  if (e->kind == ExprKind::kBinary && e->binary_op == BinaryOp::kAnd) {
    CollectConjuncts(e->left.get(), out);
    CollectConjuncts(e->right.get(), out);
    return;
  }
  out->push_back(e);
}

bool HasEqualityConjunct(const Expr* condition) {
  if (condition == nullptr) return false;
  std::vector<const Expr*> conjuncts;
  CollectConjuncts(condition, &conjuncts);
  for (const Expr* c : conjuncts) {
    if (c->kind == ExprKind::kBinary && c->binary_op == BinaryOp::kEq) {
      return true;
    }
  }
  return false;
}

bool ContainsLag(const Expr& e) {
  if (e.kind == ExprKind::kFunction && e.function_name == "LAG") return true;
  auto check = [](const ExprPtr& c) {
    return c != nullptr && ContainsLag(*c);
  };
  if (check(e.left) || check(e.right) || check(e.between_lo) ||
      check(e.between_hi) || check(e.case_else)) {
    return true;
  }
  for (const ExprPtr& a : e.args) {
    if (check(a)) return true;
  }
  for (const ExprPtr& a : e.list) {
    if (check(a)) return true;
  }
  for (const CaseBranch& b : e.case_branches) {
    if (check(b.condition) || check(b.result)) return true;
  }
  return false;
}

std::string ItemName(const SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  return item.expr->ToString();
}

}  // namespace explainit::sql
