// The physical operator interface of the vectorised SQL pipeline.
//
// Operators form a tree (children owned by parents) and exchange
// table::ColumnBatch chunks through a pull interface:
//
//   Open()  — recursively prepares the subtree: resolves catalog tables,
//             finalises output schemas, builds join hash tables. Schemas
//             are only known after Open (catalog tables materialise
//             lazily), so parents derive their schema from children here.
//   Next()  — produces the next batch; sets *eof instead when exhausted.
//
// A produced batch may borrow column storage from its operator; it stays
// valid until that operator's next Next()/destruction (see ColumnBatch).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/time_util.h"
#include "sql/ast.h"
#include "sql/exec_context.h"
#include "table/column_batch.h"
#include "table/table.h"

namespace explainit::sql {

/// Per-operator execution counters (ISSUE: rows/batches/ns).
struct OperatorStats {
  std::string name;    // operator kind, e.g. "Scan", "HashJoin"
  std::string detail;  // instance detail, e.g. "tsdb cols=2/4", "build=left"
  size_t rows_output = 0;
  size_t batches_output = 0;
  /// Wall time spent inside Open()+Next(), *inclusive* of children (a
  /// pull-based operator's clock runs while its input produces).
  int64_t elapsed_ns = 0;
};

/// Execution statistics for observability and the scalability benches.
/// Scalar counters accumulate across queries (ResetStats clears); the
/// `operators` vector holds the per-operator breakdown of one query.
struct ExecStats {
  size_t tables_scanned = 0;
  size_t rows_scanned = 0;
  /// Scans that carried a rollup resolution hint (min_step_seconds set by
  /// the planner's grid-shape detection) to a hint-aware provider.
  size_t rollup_hinted_scans = 0;
  size_t hash_joins = 0;
  size_t nested_loop_joins = 0;
  size_t rows_output = 0;
  /// Degree of parallelism the query executed with (the executor knob).
  size_t parallelism = 1;
  /// Shard/partition fan-out of the parallel operators in the last query
  /// (maximum across operator instances; 1 when the path ran serially,
  /// 0 when the operator did not appear in the plan).
  size_t join_build_partitions = 0;
  size_t sort_shards = 0;
  /// Chunks the executor assembled the final result table from (1 = the
  /// classic serial drain-and-append path).
  size_t materialize_chunks = 0;
  /// Linear-algebra stage breakdown of EXPLAIN/rank operators (summed over
  /// scoring worker threads): Gram/standardize construction, Cholesky
  /// factorization, triangular solves, validation predict + r2.
  int64_t rank_gram_ns = 0;
  int64_t rank_factor_ns = 0;
  int64_t rank_solve_ns = 0;
  int64_t rank_predict_ns = 0;
  /// Cross-hypothesis scoring-cache effectiveness (designs + factors +
  /// whole conditional fits served cached vs computed).
  size_t rank_cache_hits = 0;
  size_t rank_cache_misses = 0;
  /// The logical plan (LogicalPlan::ToString) behind the last query, and
  /// the optimiser rewrites that fired: statements whose join order left
  /// statement order, partial aggregates placed below joins, and
  /// COUNT -> count-rollup-tier rewrites.
  std::string plan_text;
  size_t joins_reordered = 0;
  size_t agg_pushdowns = 0;
  size_t count_rollup_rewrites = 0;
  std::vector<OperatorStats> operators;
};

/// Base class of every physical operator.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Prepares the subtree; after a successful Open, output_schema() is
  /// valid. Must be called exactly once, before the first Next().
  Status Open();

  /// Pulls the next batch. On end of stream sets *eof = true and returns
  /// an empty batch. Operators may emit empty (0-row) batches mid-stream;
  /// consumers must tolerate them.
  Result<table::ColumnBatch> Next(bool* eof);

  virtual const table::Schema& output_schema() const = 0;
  virtual std::string name() const = 0;

  /// The operator's complete output as one materialised table, when it has
  /// one (catalog scans). Valid after Open(); null otherwise. Parallel
  /// consumers shard directly over this storage instead of re-draining
  /// the batch stream. The schema is the operator's *unqualified* backing
  /// schema; callers pair it with output_schema() when they match.
  virtual const table::Table* MaterializedTable() const { return nullptr; }

  /// True when every batch this operator emits stays valid until the
  /// operator is destroyed (owned storage or views into long-lived
  /// member tables), rather than only until the next Next() call.
  /// Valid after Open(). Parallel aggregation buffers such batches as
  /// morsels without copying.
  virtual bool StableBatches() const { return false; }

  /// Pre-projection input rows retained 1:1 with this operator's output
  /// (Project) or the accumulated aggregate input (HashAggregate); the
  /// ORDER BY resolution fallback reads them. Null when not retained.
  /// The pointed-to table fills during execution; callers dereference
  /// only after the operator has been drained.
  virtual const table::Table* retained_input() const { return nullptr; }

  /// Adds this operator's contribution to the scalar ExecStats counters
  /// (scans report tables/rows scanned, joins their strategy). Self only.
  virtual void AccumulateExecStats(ExecStats* stats) const { (void)stats; }

  /// Depth-first collection over the subtree.
  void CollectStats(std::vector<OperatorStats>* out) const;
  void AccumulateExecStatsTree(ExecStats* stats) const;

  /// Threads the executor's context through the subtree (called by
  /// ExecuteTree before Open). Every Next() then checks the context's
  /// cancellation token at its batch boundary, so a cancelled or
  /// deadline-expired query unwinds through the normal Status path
  /// within one batch of work per pipeline stage.
  void BindExecContext(const ExecContext* ctx);

  const OperatorStats& stats() const { return stats_; }

  /// Ties an external object's lifetime to this operator. The planner
  /// uses it to keep optimiser-synthesised AST (owned by the LogicalPlan)
  /// alive exactly as long as the operators that reference it.
  void RetainArtifact(std::shared_ptr<const void> artifact) {
    artifacts_.push_back(std::move(artifact));
  }

 protected:
  virtual Status OpenImpl() = 0;
  virtual Result<table::ColumnBatch> NextImpl(bool* eof) = 0;

  Operator* AddChild(std::unique_ptr<Operator> child) {
    children_.push_back(std::move(child));
    return children_.back().get();
  }
  Operator* child(size_t i) const { return children_[i].get(); }
  size_t num_children() const { return children_.size(); }

  /// Pulls everything a child has into `out` (appending column-wise).
  /// The materialisation step of pipeline breakers (sort, join build).
  static Status Drain(Operator* op, table::Table* out);

  mutable OperatorStats stats_;

 private:
  // Declared before children_ so children (which may reference retained
  // artifacts, e.g. synthesised AST) are destroyed first.
  std::vector<std::shared_ptr<const void>> artifacts_;
  std::vector<std::unique_ptr<Operator>> children_;
  const ExecContext* bound_ctx_ = nullptr;  // set by BindExecContext
};

/// Encodes a composite group/join key. '\x1f' never occurs in metric data.
std::string EncodeKey(const std::vector<table::Value>& values,
                      bool* has_null);

/// A contiguous run of input rows processed by one worker.
struct RowRange {
  size_t begin = 0;
  size_t end = 0;
  size_t size() const { return end - begin; }
};

/// Splits [0, num_rows) into at most `parallelism` contiguous shards of at
/// least `min_shard_rows` rows (one shard when the input is small).
/// Boundaries depend only on the arguments so a parallelism level is
/// deterministic regardless of scheduling. The default grain suits
/// morsel stages over materialised inputs; per-batch stages (join
/// probing) pass a smaller grain, since a batch is at most
/// table::kDefaultBatchRows rows to begin with.
std::vector<RowRange> ShardRows(size_t num_rows, size_t parallelism,
                                size_t min_shard_rows = 1024);

/// Runs fn(shard_index) for every shard over ctx->pool (inline when the
/// context is serial or there is a single shard). Statuses are collected
/// per shard and the first failure *in shard order* is returned, keeping
/// error reporting deterministic under concurrency.
Status RunSharded(const ExecContext* ctx, size_t num_shards,
                  const std::function<Status(size_t)>& fn);

/// Parallelism the context actually provides: ctx->parallelism when a
/// live pool backs it, 1 for null or serial contexts. The value every
/// parallel operator hands to ShardRows.
inline size_t EffectiveParallelism(const ExecContext* ctx) {
  return ctx != nullptr && ctx->parallel() ? ctx->parallelism : 1;
}

/// True when the expression tree contains a LAG call (which must see the
/// whole input, so batching is disabled for that stage).
bool ContainsLag(const Expr& e);

/// Flattens an AND tree into its conjuncts (any other node is one
/// conjunct). Order is evaluation (left-to-right) order.
void CollectConjuncts(const Expr* e, std::vector<const Expr*>* out);

/// True when any top-level conjunct is an equality — the hash-join
/// eligibility test.
bool HasEqualityConjunct(const Expr* condition);

/// Output column name for a select item: alias, else the expression text.
std::string ItemName(const SelectItem& item);

}  // namespace explainit::sql
