#include "sql/operators/nested_loop_join.h"

namespace explainit::sql {

using table::ColumnBatch;
using table::Field;
using table::Schema;
using table::Value;

NestedLoopJoinOperator::NestedLoopJoinOperator(
    std::unique_ptr<Operator> left, std::unique_ptr<Operator> right,
    const JoinClause* join, const FunctionRegistry* functions)
    : join_(join), functions_(functions) {
  left_ = AddChild(std::move(left));
  right_ = AddChild(std::move(right));
}

Status NestedLoopJoinOperator::OpenImpl() {
  EXPLAINIT_RETURN_IF_ERROR(left_->Open());
  EXPLAINIT_RETURN_IF_ERROR(right_->Open());
  const Schema& ls = left_->output_schema();
  const Schema& rs = right_->output_schema();
  left_width_ = ls.num_fields();
  right_width_ = rs.num_fields();
  for (const Field& f : ls.fields()) schema_.AddField(f);
  for (const Field& f : rs.fields()) schema_.AddField(f);
  right_table_ = table::Table(rs);
  EXPLAINIT_RETURN_IF_ERROR(Drain(right_, &right_table_));
  right_matched_.assign(right_table_.num_rows(), false);
  stats_.detail = "right rows=" + std::to_string(right_table_.num_rows());
  return Status::OK();
}

Result<ColumnBatch> NestedLoopJoinOperator::FinishFullOuter(bool* eof) {
  outer_emitted_ = true;
  std::vector<std::vector<Value>> cols(schema_.num_fields());
  size_t rows = 0;
  for (size_t j = 0; j < right_table_.num_rows(); ++j) {
    if (right_matched_[j]) continue;
    for (size_t c = 0; c < left_width_; ++c) cols[c].push_back(Value::Null());
    for (size_t c = 0; c < right_width_; ++c) {
      cols[left_width_ + c].push_back(right_table_.At(j, c));
    }
    ++rows;
  }
  ColumnBatch out(&schema_, rows);
  for (auto& col : cols) out.AddOwnedColumn(std::move(col));
  *eof = false;
  return out;
}

Result<ColumnBatch> NestedLoopJoinOperator::NextImpl(bool* eof) {
  while (true) {
    if (!left_active_) {
      if (left_done_) {
        if (join_->type == JoinType::kFullOuter && !outer_emitted_) {
          return FinishFullOuter(eof);
        }
        *eof = true;
        return ColumnBatch{};
      }
      bool child_eof = false;
      EXPLAINIT_ASSIGN_OR_RETURN(ColumnBatch batch, left_->Next(&child_eof));
      if (child_eof) {
        left_done_ = true;
        continue;
      }
      if (batch.num_rows() == 0) continue;
      left_batch_ = std::move(batch);
      left_row_ = 0;
      left_active_ = true;
    }

    // One left row per output batch: pair it with every right row.
    const size_t i = left_row_;
    const size_t rn = right_table_.num_rows();
    std::vector<std::vector<Value>> cand(schema_.num_fields());
    for (size_t c = 0; c < left_width_; ++c) {
      cand[c].assign(rn, left_batch_.At(i, c));
    }
    for (size_t c = 0; c < right_width_; ++c) {
      cand[left_width_ + c].reserve(rn);
      for (size_t j = 0; j < rn; ++j) {
        cand[left_width_ + c].push_back(right_table_.At(j, c));
      }
    }
    ColumnBatch cand_batch(&schema_, rn);
    for (auto& col : cand) cand_batch.AddOwnedColumn(std::move(col));

    std::vector<uint32_t> kept;
    bool matched = false;
    if (join_->condition == nullptr) {
      // CROSS JOIN: every pair survives.
      kept.resize(rn);
      for (size_t j = 0; j < rn; ++j) kept[j] = static_cast<uint32_t>(j);
      matched = rn > 0;
      for (size_t j = 0; j < rn; ++j) right_matched_[j] = true;
    } else {
      Evaluator ev(&cand_batch, functions_);
      for (size_t j = 0; j < rn; ++j) {
        EXPLAINIT_ASSIGN_OR_RETURN(Value v, ev.Eval(*join_->condition, j));
        if (v.is_null() || !v.AsBool()) continue;
        kept.push_back(static_cast<uint32_t>(j));
        matched = true;
        right_matched_[j] = true;
      }
    }
    ColumnBatch out = cand_batch.Gather(kept);
    out.set_schema(&schema_);
    if (!matched && (join_->type == JoinType::kLeft ||
                     join_->type == JoinType::kFullOuter)) {
      std::vector<std::vector<Value>> pad(schema_.num_fields());
      for (size_t c = 0; c < left_width_; ++c) {
        pad[c].push_back(left_batch_.At(i, c));
      }
      for (size_t c = 0; c < right_width_; ++c) {
        pad[left_width_ + c].push_back(Value::Null());
      }
      ColumnBatch padded(&schema_, 1);
      for (auto& col : pad) padded.AddOwnedColumn(std::move(col));
      out = std::move(padded);
    }

    ++left_row_;
    if (left_row_ >= left_batch_.num_rows()) left_active_ = false;
    if (out.num_rows() == 0) continue;
    *eof = false;
    return out;
  }
}

}  // namespace explainit::sql
