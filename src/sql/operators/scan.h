// Source operators: catalog table scans (with pushdown hints, projection
// pruning and zero-copy column qualification), subquery scans, the
// synthetic single-row source for FROM-less SELECTs, and UNION ALL
// concatenation.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sql/catalog.h"
#include "sql/operators/operator.h"

namespace explainit::sql {

/// Scans one catalog table, streaming fixed-size zero-copy batches.
///
/// The planner attaches tsdb::ScanHints (applied by hint-aware providers
/// at the store), a projection (columns the query references; others are
/// dropped right after materialisation) and, inside joins, a qualifier
/// that renames columns to "qualifier.name" without copying any cells.
class CatalogScanOperator : public Operator {
 public:
  CatalogScanOperator(const Catalog* catalog, std::string table_name,
                      tsdb::ScanHints hints, std::string qualifier,
                      std::optional<std::vector<std::string>> projection)
      : catalog_(catalog),
        table_name_(std::move(table_name)),
        hints_(std::move(hints)),
        qualifier_(std::move(qualifier)),
        projection_(std::move(projection)) {}

  const table::Schema& output_schema() const override { return *schema_; }
  std::string name() const override { return "Scan"; }
  void AccumulateExecStats(ExecStats* stats) const override {
    ++stats->tables_scanned;
    stats->rows_scanned += table_.num_rows();
    if (hints_.min_step_seconds > 0) ++stats->rollup_hinted_scans;
  }
  /// The scan's batches are views into table_, which lives as long as
  /// the operator; parallel consumers shard over it directly.
  const table::Table* MaterializedTable() const override { return &table_; }
  bool StableBatches() const override { return true; }

 protected:
  Status OpenImpl() override;
  Result<table::ColumnBatch> NextImpl(bool* eof) override;

 private:
  const Catalog* catalog_;
  std::string table_name_;
  tsdb::ScanHints hints_;
  std::string qualifier_;
  std::optional<std::vector<std::string>> projection_;

  table::Table table_;
  table::Schema qualified_schema_;
  const table::Schema* schema_ = nullptr;  // table_'s or qualified_
  size_t pos_ = 0;
};

/// Adapts a planned subquery (its operator tree) as a FROM source,
/// optionally qualifying its column names for join scoping.
class SubqueryScanOperator : public Operator {
 public:
  SubqueryScanOperator(std::unique_ptr<Operator> input,
                       std::string qualifier);

  const table::Schema& output_schema() const override { return *schema_; }
  std::string name() const override { return "SubqueryScan"; }
  bool StableBatches() const override { return input_->StableBatches(); }

 protected:
  Status OpenImpl() override;
  Result<table::ColumnBatch> NextImpl(bool* eof) override;

 private:
  Operator* input_;
  std::string qualifier_;
  table::Schema qualified_schema_;
  const table::Schema* schema_ = nullptr;
};

/// SELECT without FROM: one synthetic zero-column row.
class SingleRowOperator : public Operator {
 public:
  const table::Schema& output_schema() const override { return schema_; }
  std::string name() const override { return "SingleRow"; }
  bool StableBatches() const override { return true; }

 protected:
  Status OpenImpl() override { return Status::OK(); }
  Result<table::ColumnBatch> NextImpl(bool* eof) override;

 private:
  table::Schema schema_;
  bool done_ = false;
};

/// Streams each input in turn (UNION ALL): widths must match, field names
/// of the first branch win.
class UnionAllOperator : public Operator {
 public:
  explicit UnionAllOperator(
      std::vector<std::unique_ptr<Operator>> branches);

  const table::Schema& output_schema() const override {
    return child(0)->output_schema();
  }
  std::string name() const override { return "UnionAll"; }
  bool StableBatches() const override {
    for (size_t i = 0; i < num_children(); ++i) {
      if (!child(i)->StableBatches()) return false;
    }
    return true;
  }

 protected:
  Status OpenImpl() override;
  Result<table::ColumnBatch> NextImpl(bool* eof) override;

 private:
  size_t current_ = 0;
};

/// "qualifier.name" rename of every field (fields already containing a
/// dot keep their name). The zero-copy successor of the old QualifySchema.
table::Schema QualifyFields(const table::Schema& schema,
                            const std::string& qualifier);

}  // namespace explainit::sql
