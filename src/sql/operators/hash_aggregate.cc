#include "sql/operators/hash_aggregate.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace explainit::sql {

using table::ColumnBatch;
using table::DataType;
using table::Field;
using table::Value;

namespace {

// Computes one aggregate over a set of row indices.
Result<Value> ComputeAggregate(const Expr& agg, const Evaluator& ev,
                               const std::vector<size_t>& rows) {
  const std::string& name = agg.function_name;
  if (name == "COUNT") {
    if (agg.args.size() != 1) {
      return Status::InvalidArgument("COUNT expects 1 argument");
    }
    if (agg.args[0]->kind == ExprKind::kStar) {
      return Value::Int(static_cast<int64_t>(rows.size()));
    }
    int64_t n = 0;
    for (size_t r : rows) {
      EXPLAINIT_ASSIGN_OR_RETURN(Value v, ev.Eval(*agg.args[0], r));
      if (!v.is_null()) ++n;
    }
    return Value::Int(n);
  }
  if (name == "__SUM_COUNT") {
    // COUNT partial: sums pre-counted values (rollup bucket counts, or
    // partial-aggregate counts), finalising with COUNT's integer type.
    if (agg.args.size() != 1 || agg.args[0] == nullptr ||
        agg.args[0]->kind == ExprKind::kStar) {
      return Status::InvalidArgument("__SUM_COUNT expects 1 argument");
    }
    double acc = 0.0;
    for (size_t r : rows) {
      EXPLAINIT_ASSIGN_OR_RETURN(Value v, ev.Eval(*agg.args[0], r));
      if (!v.is_null()) acc += v.AsDouble();
    }
    return Value::Int(std::llround(acc));
  }
  if (agg.args.empty()) {
    return Status::InvalidArgument(name + " expects an argument");
  }
  std::vector<double> values;
  values.reserve(rows.size());
  for (size_t r : rows) {
    EXPLAINIT_ASSIGN_OR_RETURN(Value v, ev.Eval(*agg.args[0], r));
    if (!v.is_null()) values.push_back(v.AsDouble());
  }
  if (values.empty()) return Value::Null();
  if (name == "SUM" || name == "AVG") {
    double acc = 0.0;
    for (double v : values) acc += v;
    if (name == "SUM") return Value::Double(acc);
    return Value::Double(acc / static_cast<double>(values.size()));
  }
  if (name == "MIN") {
    return Value::Double(*std::min_element(values.begin(), values.end()));
  }
  if (name == "MAX") {
    return Value::Double(*std::max_element(values.begin(), values.end()));
  }
  if (name == "STDDEV") {
    double mean = 0.0;
    for (double v : values) mean += v;
    mean /= static_cast<double>(values.size());
    double var = 0.0;
    for (double v : values) var += (v - mean) * (v - mean);
    var /= static_cast<double>(values.size());
    return Value::Double(std::sqrt(var));
  }
  if (name == "PERCENTILE") {
    if (agg.args.size() != 2) {
      return Status::InvalidArgument("PERCENTILE expects (expr, p)");
    }
    EXPLAINIT_ASSIGN_OR_RETURN(Value pv, ev.Eval(*agg.args[1], rows[0]));
    double p = pv.AsDouble();
    if (p > 1.0) p /= 100.0;  // accept both 0.99 and 99
    p = std::clamp(p, 0.0, 1.0);
    std::sort(values.begin(), values.end());
    const double idx = p * static_cast<double>(values.size() - 1);
    const size_t lo = static_cast<size_t>(idx);
    const size_t hi = std::min(values.size() - 1, lo + 1);
    const double frac = idx - static_cast<double>(lo);
    return Value::Double(values[lo] * (1.0 - frac) + values[hi] * frac);
  }
  return Status::Unimplemented("aggregate not implemented: " + name);
}

/// Computes one aggregate node's value in group context.
using AggEvalFn = std::function<Result<Value>(const Expr&)>;

// Evaluates a select-item expression in group context: aggregate calls go
// through `agg_eval`; everything else is evaluated at the representative
// row. Mixed scalar-of-aggregate (e.g. AVG(x) / AVG(y) or AVG(x) + 1)
// recursively rebuilds around aggregate leaves.
Result<Value> EvalGroupExpr(const Expr& e, const Evaluator& ev,
                            size_t rep_row, const AggEvalFn& agg_eval) {
  if (e.kind == ExprKind::kFunction && IsAggregateFunction(e.function_name)) {
    return agg_eval(e);
  }
  if (!e.ContainsAggregate()) {
    return ev.Eval(e, rep_row);
  }
  Expr copy;
  copy.kind = e.kind;
  copy.binary_op = e.binary_op;
  copy.unary_op = e.unary_op;
  copy.negated = e.negated;
  copy.function_name = e.function_name;
  copy.qualifier = e.qualifier;
  copy.column = e.column;
  copy.literal = e.literal;
  auto lift = [&](const ExprPtr& child) -> Result<ExprPtr> {
    if (child == nullptr) return ExprPtr{};
    EXPLAINIT_ASSIGN_OR_RETURN(Value v,
                               EvalGroupExpr(*child, ev, rep_row, agg_eval));
    return MakeLiteral(std::move(v));
  };
  EXPLAINIT_ASSIGN_OR_RETURN(copy.left, lift(e.left));
  EXPLAINIT_ASSIGN_OR_RETURN(copy.right, lift(e.right));
  EXPLAINIT_ASSIGN_OR_RETURN(copy.between_lo, lift(e.between_lo));
  EXPLAINIT_ASSIGN_OR_RETURN(copy.between_hi, lift(e.between_hi));
  EXPLAINIT_ASSIGN_OR_RETURN(copy.case_else, lift(e.case_else));
  for (const ExprPtr& a : e.args) {
    EXPLAINIT_ASSIGN_OR_RETURN(ExprPtr la, lift(a));
    copy.args.push_back(std::move(la));
  }
  for (const ExprPtr& a : e.list) {
    EXPLAINIT_ASSIGN_OR_RETURN(ExprPtr la, lift(a));
    copy.list.push_back(std::move(la));
  }
  for (const CaseBranch& b : e.case_branches) {
    CaseBranch nb;
    EXPLAINIT_ASSIGN_OR_RETURN(nb.condition, lift(b.condition));
    EXPLAINIT_ASSIGN_OR_RETURN(nb.result, lift(b.result));
    copy.case_branches.push_back(std::move(nb));
  }
  return ev.Eval(copy, rep_row);
}

// Evaluates a select-item expression over the rows of one group.
Result<Value> EvalInGroup(const Expr& e, const Evaluator& ev,
                          const std::vector<size_t>& rows) {
  return EvalGroupExpr(e, ev, rows[0], [&](const Expr& agg) {
    return ComputeAggregate(agg, ev, rows);
  });
}

/// Collects the topmost aggregate call nodes of an expression tree (the
/// granularity EvalGroupExpr substitutes at; nested aggregates inside an
/// argument are the serial path's runtime error to report).
void CollectTopAggregates(const Expr& e, std::vector<const Expr*>* out) {
  if (e.kind == ExprKind::kFunction && IsAggregateFunction(e.function_name)) {
    out->push_back(&e);
    return;
  }
  auto walk = [&](const ExprPtr& c) {
    if (c != nullptr) CollectTopAggregates(*c, out);
  };
  walk(e.left);
  walk(e.right);
  walk(e.between_lo);
  walk(e.between_hi);
  walk(e.case_else);
  for (const ExprPtr& a : e.args) walk(a);
  for (const ExprPtr& a : e.list) walk(a);
  for (const CaseBranch& b : e.case_branches) {
    walk(b.condition);
    walk(b.result);
  }
}

/// True when the aggregate call decomposes into flat partial states whose
/// merged finalisation matches ComputeAggregate exactly.
bool IsDecomposable(const Expr& agg) {
  const std::string& n = agg.function_name;
  if (n == "COUNT") {
    return agg.args.size() == 1 && agg.args[0] != nullptr;
  }
  if (n == "SUM" || n == "AVG" || n == "MIN" || n == "MAX" ||
      n == "__SUM_COUNT") {
    return !agg.args.empty() && agg.args[0] != nullptr &&
           agg.args[0]->kind != ExprKind::kStar;
  }
  return false;
}

}  // namespace

HashAggregateOperator::HashAggregateOperator(
    std::unique_ptr<Operator> input, const SelectStatement* stmt,
    const FunctionRegistry* functions, const ExecContext* ctx,
    bool retain_input)
    : stmt_(stmt), functions_(functions), ctx_(ctx),
      retain_input_(retain_input) {
  input_ = AddChild(std::move(input));
}

Status HashAggregateOperator::OpenImpl() {
  EXPLAINIT_RETURN_IF_ERROR(input_->Open());
  for (const SelectItem& item : stmt_->items) {
    if (item.is_star) {
      return Status::InvalidArgument("SELECT * with GROUP BY is not allowed");
    }
    schema_.AddField(Field{ItemName(item), DataType::kNull});
    if (ContainsLag(*item.expr)) lag_anywhere_ = true;
    CollectTopAggregates(*item.expr, &agg_nodes_);
  }
  for (const ExprPtr& g : stmt_->group_by) {
    if (ContainsLag(*g)) lag_anywhere_ = true;
  }
  if (stmt_->having != nullptr) {
    if (ContainsLag(*stmt_->having)) lag_anywhere_ = true;
    CollectTopAggregates(*stmt_->having, &agg_nodes_);
  }
  partial_ok_ = std::all_of(
      agg_nodes_.begin(), agg_nodes_.end(),
      [](const Expr* a) { return IsDecomposable(*a); });
  for (size_t i = 0; i < agg_nodes_.size(); ++i) slot_of_[agg_nodes_[i]] = i;

  // Kernel eligibility: group keys and aggregate arguments that are all
  // plain columns / tag-subscripts accumulate without the Evaluator.
  kernel_ok_ = partial_ok_;
  for (const ExprPtr& g : stmt_->group_by) {
    auto simple = CompileSimpleExpr(*g);
    if (!simple.has_value()) {
      kernel_ok_ = false;
      break;
    }
    simple_keys_.push_back(std::move(*simple));
  }
  if (kernel_ok_) {
    for (const Expr* node : agg_nodes_) {
      SlotArg arg;
      if (node->args[0]->kind == ExprKind::kStar) {
        arg.star = true;
      } else {
        auto simple = CompileSimpleExpr(*node->args[0]);
        if (!simple.has_value()) {
          kernel_ok_ = false;
          break;
        }
        arg.expr = std::move(*simple);
      }
      simple_args_.push_back(std::move(arg));
    }
  }
  acc_ = table::Table(input_->output_schema());
  return Status::OK();
}

Result<ColumnBatch> HashAggregateOperator::NextImpl(bool* eof) {
  if (done_) {
    *eof = true;
    return ColumnBatch{};
  }
  done_ = true;
  const bool parallel =
      ctx_ != nullptr && ctx_->parallel() && !lag_anywhere_;
  if (!parallel) return SerialNext(eof);
  if (partial_ok_) return PartialNext(eof);
  return IndexNext(eof);
}

table::ColumnBatch HashAggregateOperator::EmitRows(
    std::vector<std::vector<Value>> cols, size_t rows) {
  ColumnBatch out(&schema_, rows);
  for (auto& col : cols) out.AddOwnedColumn(std::move(col));
  return out;
}

Status HashAggregateOperator::MaterializeInputShards() {
  EXPLAINIT_RETURN_IF_ERROR(Drain(input_, &acc_));
  retained_ptr_ = &acc_;
  morsels_.clear();
  for (const RowRange& range :
       ShardRows(acc_.num_rows(), ctx_->parallelism)) {
    if (range.size() == 0) continue;
    morsels_.push_back(
        ColumnBatch::View(acc_, range.begin, range.size()));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Parallel partial-aggregation mode
// ---------------------------------------------------------------------------

Status HashAggregateOperator::PartialAccumulateGeneric(
    const ColumnBatch& batch, uint32_t batch_index, ShardGroups* local) {
  const size_t num_slots = agg_nodes_.size();
  Evaluator ev(&batch, functions_);
  std::vector<Value> key;
  std::string encoded;
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    if (stmt_->group_by.empty()) {
      encoded.clear();
    } else if (stmt_->group_by.size() == 1) {
      // Single key: the bare rendered value, exactly as the kernel path
      // encodes it (the two must agree group-for-group).
      EXPLAINIT_ASSIGN_OR_RETURN(Value v, ev.Eval(*stmt_->group_by[0], r));
      encoded = v.ToString();
    } else {
      key.clear();
      for (const ExprPtr& g : stmt_->group_by) {
        EXPLAINIT_ASSIGN_OR_RETURN(Value v, ev.Eval(*g, r));
        key.push_back(std::move(v));
      }
      encoded = EncodeKey(key, nullptr);
    }
    auto [it, inserted] =
        local->index.try_emplace(encoded, local->groups.size());
    if (inserted) {
      local->order.push_back(&it->first);
      GroupPartial g;
      g.first_batch = batch_index;
      g.first_row = static_cast<uint32_t>(r);
      local->groups.push_back(g);
      local->slots.resize(local->slots.size() + num_slots);
    }
    GroupPartial& g = local->groups[it->second];
    PartialState* slots = local->slots.data() + it->second * num_slots;
    ++g.rows;
    for (size_t i = 0; i < num_slots; ++i) {
      const Expr& agg = *agg_nodes_[i];
      if (agg.args[0]->kind == ExprKind::kStar) continue;
      PartialState& st = slots[i];
      if (!st.error.ok()) continue;
      Result<Value> rv = ev.Eval(*agg.args[0], r);
      if (!rv.ok()) {
        // Deferred like the serial path: only surfaces if the group
        // survives HAVING and the slot is consulted.
        st.error = rv.status();
        continue;
      }
      const Value v = std::move(rv).value();
      if (v.is_null()) continue;
      st.Accumulate(v.AsDouble());
    }
  }
  return Status::OK();
}

Result<bool> HashAggregateOperator::PartialAccumulateKernel(
    const ColumnBatch& batch, uint32_t batch_index, ShardGroups* local) {
  // Bind every accessor against this batch's schema; any miss (unknown
  // column) falls back to the generic path, which reports the error with
  // the Evaluator's wording.
  Evaluator schema_ev(&batch.schema(), functions_);
  std::vector<BoundSimpleExpr> keys;
  keys.reserve(simple_keys_.size());
  for (const SimpleExpr& k : simple_keys_) {
    auto bound = BindSimpleExpr(k, schema_ev);
    if (!bound.ok()) return false;
    keys.push_back(std::move(bound).value());
  }
  struct BoundArg {
    bool star = false;
    BoundSimpleExpr expr;
  };
  std::vector<BoundArg> args;
  args.reserve(simple_args_.size());
  for (const SlotArg& a : simple_args_) {
    BoundArg bound;
    bound.star = a.star;
    if (!a.star) {
      auto b = BindSimpleExpr(a.expr, schema_ev);
      if (!b.ok()) return false;
      bound.expr = std::move(b).value();
    }
    args.push_back(std::move(bound));
  }

  const size_t num_slots = args.size();
  const bool single_key = keys.size() == 1;
  std::string keybuf;
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    // Build the group key as a string_view over reused storage; only a
    // first-seen key pays a std::string construction.
    std::string_view key_view;
    if (keys.empty()) {
      key_view = std::string_view{};
    } else if (single_key) {
      const Value* cell = nullptr;
      EXPLAINIT_RETURN_IF_ERROR(keys[0].Get(batch, r, &cell));
      const std::string* s = cell->TryString();
      if (s != nullptr) {
        key_view = *s;
      } else {
        keybuf = cell->ToString();
        key_view = keybuf;
      }
    } else {
      keybuf.clear();
      for (const BoundSimpleExpr& k : keys) {
        const Value* cell = nullptr;
        EXPLAINIT_RETURN_IF_ERROR(k.Get(batch, r, &cell));
        const std::string* s = cell->TryString();
        if (s != nullptr) {
          keybuf += *s;
        } else {
          keybuf += cell->ToString();
        }
        keybuf += '\x1f';
      }
      key_view = keybuf;
    }
    auto it = local->index.find(key_view);
    if (it == local->index.end()) {
      it = local->index
               .emplace(std::string(key_view), local->groups.size())
               .first;
      local->order.push_back(&it->first);
      GroupPartial g;
      g.first_batch = batch_index;
      g.first_row = static_cast<uint32_t>(r);
      local->groups.push_back(g);
      local->slots.resize(local->slots.size() + num_slots);
    }
    GroupPartial& g = local->groups[it->second];
    PartialState* slots = local->slots.data() + it->second * num_slots;
    ++g.rows;
    for (size_t i = 0; i < num_slots; ++i) {
      if (args[i].star) continue;
      PartialState& st = slots[i];
      if (!st.error.ok()) continue;
      const Value* cell = nullptr;
      Status s = args[i].expr.Get(batch, r, &cell);
      if (!s.ok()) {
        st.error = std::move(s);  // deferred, as in the generic path
        continue;
      }
      if (cell->is_null()) continue;
      st.Accumulate(cell->AsDouble());
    }
  }
  return true;
}

Result<ColumnBatch> HashAggregateOperator::PartialNext(bool* eof) {
  // Morsel source: buffer the child's own batches when their storage is
  // stable (and the pre-aggregation rows need not be retained), else
  // drain once and shard the materialised rows.
  if (input_->StableBatches() && !retain_input_) {
    bool child_eof = false;
    while (true) {
      EXPLAINIT_ASSIGN_OR_RETURN(ColumnBatch batch, input_->Next(&child_eof));
      if (child_eof) break;
      if (batch.num_rows() > 0) morsels_.push_back(std::move(batch));
    }
  } else {
    EXPLAINIT_RETURN_IF_ERROR(MaterializeInputShards());
  }
  size_t total_rows = 0;
  for (const ColumnBatch& m : morsels_) total_rows += m.num_rows();

  if (total_rows == 0 && !stmt_->group_by.empty()) {
    *eof = false;
    stats_.detail = "0 groups (partial)";
    return EmitRows(std::vector<std::vector<Value>>(schema_.num_fields()), 0);
  }
  if (total_rows == 0) {
    // Global aggregate over an empty input: aggregates yield NULL/0.
    std::vector<std::vector<Value>> cols(schema_.num_fields());
    for (size_t i = 0; i < stmt_->items.size(); ++i) {
      const SelectItem& item = stmt_->items[i];
      if (item.expr->kind == ExprKind::kFunction &&
          (item.expr->function_name == "COUNT" ||
           item.expr->function_name == "__SUM_COUNT")) {
        cols[i].push_back(Value::Int(0));
      } else {
        cols[i].push_back(Value::Null());
      }
    }
    *eof = false;
    stats_.detail = "1 group (partial)";
    return EmitRows(std::move(cols), 1);
  }

  // Assign contiguous batch runs to shards, balancing by row count. The
  // assignment depends only on the batch layout and the parallelism knob,
  // so merges happen in a deterministic order.
  const size_t want_shards = std::max<size_t>(
      1, std::min<size_t>(ctx_->parallelism,
                          std::max<size_t>(1, total_rows / 1024)));
  std::vector<std::pair<size_t, size_t>> runs;  // [batch_begin, batch_end)
  {
    size_t cum = 0;
    size_t start = 0;
    for (size_t b = 0; b < morsels_.size(); ++b) {
      cum += morsels_[b].num_rows();
      if (cum * want_shards >= total_rows * (runs.size() + 1) ||
          b + 1 == morsels_.size()) {
        runs.emplace_back(start, b + 1);
        start = b + 1;
      }
    }
  }

  // Phase 1: per-shard grouping with flat partial states.
  std::vector<ShardGroups> shards(runs.size());
  EXPLAINIT_RETURN_IF_ERROR(RunSharded(
      ctx_, runs.size(), [&](size_t s) -> Status {
        ShardGroups& local = shards[s];
        size_t run_rows = 0;
        for (size_t b = runs[s].first; b < runs[s].second; ++b) {
          run_rows += morsels_[b].num_rows();
        }
        // Upper bound on this shard's group count: no rehash mid-shard.
        local.index.reserve(run_rows);
        for (size_t b = runs[s].first; b < runs[s].second; ++b) {
          const ColumnBatch& batch = morsels_[b];
          bool done = false;
          if (kernel_ok_) {
            EXPLAINIT_ASSIGN_OR_RETURN(
                done, PartialAccumulateKernel(
                          batch, static_cast<uint32_t>(b), &local));
          }
          if (!done) {
            EXPLAINIT_RETURN_IF_ERROR(PartialAccumulateGeneric(
                batch, static_cast<uint32_t>(b), &local));
          }
        }
        return Status::OK();
      }));

  // Merge stage: combine per-shard partials in shard order (shard order
  // is row order, so first-appearance order and first-error-wins both
  // match the serial pipeline).
  const size_t num_slots = agg_nodes_.size();
  size_t total_groups = 0;
  for (const ShardGroups& local : shards) total_groups += local.groups.size();
  ShardGroups merged;
  for (ShardGroups& local : shards) {
    if (merged.groups.empty()) {
      merged = std::move(local);
      merged.index.reserve(total_groups);
      continue;
    }
    for (size_t li = 0; li < local.groups.size(); ++li) {
      const GroupPartial& lg = local.groups[li];
      const PartialState* lslots = local.slots.data() + li * num_slots;
      auto [it, inserted] =
          merged.index.try_emplace(*local.order[li], merged.groups.size());
      if (inserted) {
        merged.order.push_back(&it->first);
        merged.groups.push_back(lg);
        merged.slots.insert(merged.slots.end(), lslots,
                            lslots + num_slots);
        continue;
      }
      GroupPartial& g = merged.groups[it->second];
      PartialState* slots = merged.slots.data() + it->second * num_slots;
      g.rows += lg.rows;
      for (size_t i = 0; i < num_slots; ++i) {
        const PartialState& a = lslots[i];
        PartialState& st = slots[i];
        if (st.error.ok() && !a.error.ok()) st.error = a.error;
        if (a.non_null == 0) continue;
        if (st.non_null == 0) {
          st.min = a.min;
          st.max = a.max;
        } else {
          st.min = std::min(st.min, a.min);
          st.max = std::max(st.max, a.max);
        }
        st.sum += a.sum;
        st.non_null += a.non_null;
      }
    }
  }

  // Finalisation: substitute merged partials for the aggregate nodes and
  // evaluate HAVING + the select list per group, in parallel over groups.
  // Items that are exactly one aggregate call or one simple column /
  // tag-subscript bypass the expression walk entirely (when every morsel
  // shares a schema the simple accessors bind once, up front).
  const size_t num_groups = merged.groups.size();
  std::vector<char> keep(num_groups, 1);
  std::vector<std::vector<Value>> values(schema_.num_fields());
  for (auto& col : values) col.resize(num_groups);

  auto finalize_slot = [&](const Expr& agg, const GroupPartial& g,
                           const PartialState& st) -> Result<Value> {
    if (!st.error.ok()) return st.error;
    const std::string& n = agg.function_name;
    if (n == "COUNT") {
      return agg.args[0]->kind == ExprKind::kStar
                 ? Value::Int(static_cast<int64_t>(g.rows))
                 : Value::Int(st.non_null);
    }
    if (n == "__SUM_COUNT") {
      return st.non_null == 0 ? Value::Int(0)
                              : Value::Int(std::llround(st.sum));
    }
    if (st.non_null == 0) return Value::Null();
    if (n == "SUM") return Value::Double(st.sum);
    if (n == "AVG") {
      return Value::Double(st.sum / static_cast<double>(st.non_null));
    }
    if (n == "MIN") return Value::Double(st.min);
    return Value::Double(st.max);  // MAX
  };

  bool uniform_schema = true;
  for (const ColumnBatch& m : morsels_) {
    if (&m.schema() != &morsels_[0].schema()) {
      uniform_schema = false;
      break;
    }
  }
  struct ItemPlan {
    enum class Kind { kAggSlot, kSimple, kGeneric } kind = Kind::kGeneric;
    size_t slot = 0;
    BoundSimpleExpr bound;
  };
  std::vector<ItemPlan> plans(stmt_->items.size());
  for (size_t i = 0; i < stmt_->items.size(); ++i) {
    const Expr& e = *stmt_->items[i].expr;
    ItemPlan& plan = plans[i];
    auto slot_it = slot_of_.find(&e);
    if (slot_it != slot_of_.end()) {
      plan.kind = ItemPlan::Kind::kAggSlot;
      plan.slot = slot_it->second;
      continue;
    }
    if (!uniform_schema || e.ContainsAggregate()) continue;
    auto simple = CompileSimpleExpr(e);
    if (!simple.has_value()) continue;
    Evaluator schema_ev(&morsels_[0].schema(), functions_);
    auto bound = BindSimpleExpr(*simple, schema_ev);
    if (!bound.ok()) continue;
    plan.kind = ItemPlan::Kind::kSimple;
    plan.bound = std::move(bound).value();
  }

  const std::vector<RowRange> group_shards =
      ShardRows(num_groups, ctx_->parallelism);
  EXPLAINIT_RETURN_IF_ERROR(RunSharded(
      ctx_, group_shards.size(), [&](size_t s) -> Status {
        for (size_t gi = group_shards[s].begin; gi < group_shards[s].end;
             ++gi) {
          const GroupPartial& g = merged.groups[gi];
          const PartialState* slots =
              merged.slots.data() + gi * num_slots;
          AggEvalFn agg_eval = [&](const Expr& agg) -> Result<Value> {
            auto it = slot_of_.find(&agg);
            if (it == slot_of_.end()) {
              return Status::Internal("unregistered aggregate node");
            }
            return finalize_slot(agg, g, slots[it->second]);
          };
          if (stmt_->having != nullptr) {
            Evaluator ev(&morsels_[g.first_batch], functions_);
            EXPLAINIT_ASSIGN_OR_RETURN(
                Value v, EvalGroupExpr(*stmt_->having, ev, g.first_row,
                                       agg_eval));
            if (v.is_null() || !v.AsBool()) {
              keep[gi] = 0;
              continue;
            }
          }
          for (size_t i = 0; i < stmt_->items.size(); ++i) {
            const ItemPlan& plan = plans[i];
            if (plan.kind == ItemPlan::Kind::kAggSlot) {
              EXPLAINIT_ASSIGN_OR_RETURN(
                  Value v, finalize_slot(*stmt_->items[i].expr, g,
                                         slots[plan.slot]));
              values[i][gi] = std::move(v);
              continue;
            }
            if (plan.kind == ItemPlan::Kind::kSimple) {
              const Value* cell = nullptr;
              EXPLAINIT_RETURN_IF_ERROR(plan.bound.Get(
                  morsels_[g.first_batch], g.first_row, &cell));
              values[i][gi] = *cell;
              continue;
            }
            Evaluator ev(&morsels_[g.first_batch], functions_);
            EXPLAINIT_ASSIGN_OR_RETURN(
                Value v, EvalGroupExpr(*stmt_->items[i].expr, ev,
                                       g.first_row, agg_eval));
            values[i][gi] = std::move(v);
          }
        }
        return Status::OK();
      }));

  *eof = false;
  stats_.detail = std::to_string(num_groups) + " groups (partial, " +
                  std::to_string(runs.size()) + " shards)";
  if (stmt_->having == nullptr) {
    // Nothing can drop a group: the per-group arrays are the output.
    return EmitRows(std::move(values), num_groups);
  }
  // Compact kept groups in first-appearance order.
  std::vector<std::vector<Value>> cols(schema_.num_fields());
  size_t out_rows = 0;
  for (size_t gi = 0; gi < num_groups; ++gi) {
    if (!keep[gi]) continue;
    for (size_t c = 0; c < cols.size(); ++c) {
      cols[c].push_back(std::move(values[c][gi]));
    }
    ++out_rows;
  }
  return EmitRows(std::move(cols), out_rows);
}

// ---------------------------------------------------------------------------
// Parallel index mode (non-decomposable aggregates)
// ---------------------------------------------------------------------------

Result<ColumnBatch> HashAggregateOperator::IndexNext(bool* eof) {
  EXPLAINIT_RETURN_IF_ERROR(MaterializeInputShards());
  const std::vector<RowRange> shards =
      ShardRows(acc_.num_rows(), ctx_->parallelism);

  // Phase 1: per-shard grouping of row indices (ascending within a
  // shard); the order vector borrows the map's node-stable keys.
  struct ShardIndex {
    std::unordered_map<std::string, std::vector<size_t>> groups;
    std::vector<const std::string*> order;
  };
  std::vector<ShardIndex> locals(shards.size());
  if (!stmt_->group_by.empty()) {
    EXPLAINIT_RETURN_IF_ERROR(RunSharded(
        ctx_, shards.size(), [&](size_t s) -> Status {
          ShardIndex& local = locals[s];
          Evaluator ev(&acc_, functions_);
          std::vector<Value> key;
          for (size_t r = shards[s].begin; r < shards[s].end; ++r) {
            key.clear();
            for (const ExprPtr& g : stmt_->group_by) {
              EXPLAINIT_ASSIGN_OR_RETURN(Value v, ev.Eval(*g, r));
              key.push_back(std::move(v));
            }
            auto [it, inserted] =
                local.groups.try_emplace(EncodeKey(key, nullptr));
            if (inserted) local.order.push_back(&it->first);
            it->second.push_back(r);
          }
          return Status::OK();
        }));
    // Merge in shard order: concatenation keeps row indices ascending and
    // first-appearance order identical to the serial pipeline.
    for (ShardIndex& local : locals) {
      for (const std::string* k : local.order) {
        std::vector<size_t>& rows = local.groups.at(*k);
        auto [it, inserted] = groups_.try_emplace(*k);
        if (inserted) {
          group_order_.push_back(*k);
          it->second = std::move(rows);
        } else {
          it->second.insert(it->second.end(), rows.begin(), rows.end());
        }
      }
    }
  } else {
    std::vector<size_t> all(acc_.num_rows());
    std::iota(all.begin(), all.end(), size_t{0});
    groups_[""] = std::move(all);
    group_order_.push_back("");
  }

  // Phase 2: the serial per-group evaluation, fanned out across groups.
  Evaluator ev(&acc_, functions_);
  const size_t num_groups = group_order_.size();
  std::vector<char> keep(num_groups, 1);
  std::vector<std::vector<Value>> values(schema_.num_fields());
  for (auto& col : values) col.resize(num_groups);
  const std::vector<RowRange> group_shards =
      ShardRows(num_groups, ctx_->parallelism);
  EXPLAINIT_RETURN_IF_ERROR(RunSharded(
      ctx_, group_shards.size(), [&](size_t s) -> Status {
        for (size_t gi = group_shards[s].begin; gi < group_shards[s].end;
             ++gi) {
          const std::vector<size_t>& rows = groups_.at(group_order_[gi]);
          if (rows.empty() && !stmt_->group_by.empty()) {
            keep[gi] = 0;
            continue;
          }
          if (stmt_->having != nullptr && !rows.empty()) {
            EXPLAINIT_ASSIGN_OR_RETURN(
                Value v, EvalInGroup(*stmt_->having, ev, rows));
            if (v.is_null() || !v.AsBool()) {
              keep[gi] = 0;
              continue;
            }
          }
          if (rows.empty()) {
            // Global aggregate over an empty table: NULL/0 per item.
            for (size_t i = 0; i < stmt_->items.size(); ++i) {
              const SelectItem& item = stmt_->items[i];
              values[i][gi] =
                  item.expr->kind == ExprKind::kFunction &&
                          (item.expr->function_name == "COUNT" ||
                           item.expr->function_name == "__SUM_COUNT")
                      ? Value::Int(0)
                      : Value::Null();
            }
            continue;
          }
          for (size_t i = 0; i < stmt_->items.size(); ++i) {
            EXPLAINIT_ASSIGN_OR_RETURN(
                Value v, EvalInGroup(*stmt_->items[i].expr, ev, rows));
            values[i][gi] = std::move(v);
          }
        }
        return Status::OK();
      }));

  *eof = false;
  stats_.detail = std::to_string(num_groups) + " groups (" +
                  std::to_string(shards.size()) + " shards)";
  if (stmt_->having == nullptr && !stmt_->group_by.empty()) {
    // No HAVING and every group holds at least one row: nothing drops.
    return EmitRows(std::move(values), num_groups);
  }
  std::vector<std::vector<Value>> cols(schema_.num_fields());
  size_t out_rows = 0;
  for (size_t gi = 0; gi < num_groups; ++gi) {
    if (!keep[gi]) continue;
    for (size_t c = 0; c < cols.size(); ++c) {
      cols[c].push_back(std::move(values[c][gi]));
    }
    ++out_rows;
  }
  return EmitRows(std::move(cols), out_rows);
}

// ---------------------------------------------------------------------------
// Serial mode (parallelism 1, or LAG anywhere in the grouped stages)
// ---------------------------------------------------------------------------

Result<ColumnBatch> HashAggregateOperator::SerialNext(bool* eof) {
  // Phase 1: consume batches, grouping rows incrementally. Keys are
  // evaluated against each batch; row payloads accumulate column-wise.
  // Keys containing LAG read neighbouring rows, so they are evaluated
  // only after the whole input has accumulated.
  retained_ptr_ = &acc_;
  bool lag_in_keys = false;
  for (const ExprPtr& g : stmt_->group_by) {
    if (ContainsLag(*g)) lag_in_keys = true;
  }
  bool child_eof = false;
  while (true) {
    EXPLAINIT_ASSIGN_OR_RETURN(ColumnBatch batch, input_->Next(&child_eof));
    if (child_eof) break;
    if (!stmt_->group_by.empty() && !lag_in_keys) {
      Evaluator ev(&batch, functions_);
      const size_t base = acc_.num_rows();
      std::vector<Value> key;
      for (size_t r = 0; r < batch.num_rows(); ++r) {
        key.clear();
        for (const ExprPtr& g : stmt_->group_by) {
          EXPLAINIT_ASSIGN_OR_RETURN(Value v, ev.Eval(*g, r));
          key.push_back(std::move(v));
        }
        const std::string encoded = EncodeKey(key, nullptr);
        auto [it, inserted] = groups_.try_emplace(encoded);
        if (inserted) group_order_.push_back(encoded);
        it->second.push_back(base + r);
      }
    }
    batch.AppendTo(&acc_);
  }
  if (lag_in_keys) {
    Evaluator full_ev(&acc_, functions_);
    std::vector<Value> key;
    for (size_t r = 0; r < acc_.num_rows(); ++r) {
      key.clear();
      for (const ExprPtr& g : stmt_->group_by) {
        EXPLAINIT_ASSIGN_OR_RETURN(Value v, full_ev.Eval(*g, r));
        key.push_back(std::move(v));
      }
      const std::string encoded = EncodeKey(key, nullptr);
      auto [it, inserted] = groups_.try_emplace(encoded);
      if (inserted) group_order_.push_back(encoded);
      it->second.push_back(r);
    }
  }
  if (stmt_->group_by.empty()) {
    // Global aggregate: one group with every row (even zero rows).
    std::vector<size_t> all(acc_.num_rows());
    std::iota(all.begin(), all.end(), size_t{0});
    groups_[""] = std::move(all);
    group_order_.push_back("");
  }

  // Phase 2: evaluate the select list per group.
  Evaluator ev(&acc_, functions_);
  std::vector<std::vector<Value>> out_cols(schema_.num_fields());
  size_t out_rows = 0;
  for (const std::string& key : group_order_) {
    const std::vector<size_t>& rows = groups_[key];
    if (rows.empty() && !stmt_->group_by.empty()) continue;
    // HAVING runs in group context so it can reference aggregates that are
    // not in the select list.
    if (stmt_->having != nullptr && !rows.empty()) {
      EXPLAINIT_ASSIGN_OR_RETURN(Value keep,
                                 EvalInGroup(*stmt_->having, ev, rows));
      if (keep.is_null() || !keep.AsBool()) continue;
    }
    if (rows.empty()) {
      // Global aggregate over an empty table: aggregates yield NULL/0.
      for (size_t i = 0; i < stmt_->items.size(); ++i) {
        const SelectItem& item = stmt_->items[i];
        if (item.expr->kind == ExprKind::kFunction &&
            (item.expr->function_name == "COUNT" ||
             item.expr->function_name == "__SUM_COUNT")) {
          out_cols[i].push_back(Value::Int(0));
        } else {
          out_cols[i].push_back(Value::Null());
        }
      }
    } else {
      for (size_t i = 0; i < stmt_->items.size(); ++i) {
        EXPLAINIT_ASSIGN_OR_RETURN(
            Value v, EvalInGroup(*stmt_->items[i].expr, ev, rows));
        out_cols[i].push_back(std::move(v));
      }
    }
    ++out_rows;
  }
  *eof = false;
  stats_.detail = std::to_string(group_order_.size()) + " groups";
  return EmitRows(std::move(out_cols), out_rows);
}

}  // namespace explainit::sql
