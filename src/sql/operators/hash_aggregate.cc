#include "sql/operators/hash_aggregate.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace explainit::sql {

using table::ColumnBatch;
using table::DataType;
using table::Field;
using table::Value;

namespace {

// Computes one aggregate over a set of row indices.
Result<Value> ComputeAggregate(const Expr& agg, const Evaluator& ev,
                               const std::vector<size_t>& rows) {
  const std::string& name = agg.function_name;
  if (name == "COUNT") {
    if (agg.args.size() != 1) {
      return Status::InvalidArgument("COUNT expects 1 argument");
    }
    if (agg.args[0]->kind == ExprKind::kStar) {
      return Value::Int(static_cast<int64_t>(rows.size()));
    }
    int64_t n = 0;
    for (size_t r : rows) {
      EXPLAINIT_ASSIGN_OR_RETURN(Value v, ev.Eval(*agg.args[0], r));
      if (!v.is_null()) ++n;
    }
    return Value::Int(n);
  }
  if (agg.args.empty()) {
    return Status::InvalidArgument(name + " expects an argument");
  }
  std::vector<double> values;
  values.reserve(rows.size());
  for (size_t r : rows) {
    EXPLAINIT_ASSIGN_OR_RETURN(Value v, ev.Eval(*agg.args[0], r));
    if (!v.is_null()) values.push_back(v.AsDouble());
  }
  if (values.empty()) return Value::Null();
  if (name == "SUM" || name == "AVG") {
    double acc = 0.0;
    for (double v : values) acc += v;
    if (name == "SUM") return Value::Double(acc);
    return Value::Double(acc / static_cast<double>(values.size()));
  }
  if (name == "MIN") {
    return Value::Double(*std::min_element(values.begin(), values.end()));
  }
  if (name == "MAX") {
    return Value::Double(*std::max_element(values.begin(), values.end()));
  }
  if (name == "STDDEV") {
    double mean = 0.0;
    for (double v : values) mean += v;
    mean /= static_cast<double>(values.size());
    double var = 0.0;
    for (double v : values) var += (v - mean) * (v - mean);
    var /= static_cast<double>(values.size());
    return Value::Double(std::sqrt(var));
  }
  if (name == "PERCENTILE") {
    if (agg.args.size() != 2) {
      return Status::InvalidArgument("PERCENTILE expects (expr, p)");
    }
    EXPLAINIT_ASSIGN_OR_RETURN(Value pv, ev.Eval(*agg.args[1], rows[0]));
    double p = pv.AsDouble();
    if (p > 1.0) p /= 100.0;  // accept both 0.99 and 99
    p = std::clamp(p, 0.0, 1.0);
    std::sort(values.begin(), values.end());
    const double idx = p * static_cast<double>(values.size() - 1);
    const size_t lo = static_cast<size_t>(idx);
    const size_t hi = std::min(values.size() - 1, lo + 1);
    const double frac = idx - static_cast<double>(lo);
    return Value::Double(values[lo] * (1.0 - frac) + values[hi] * frac);
  }
  return Status::Unimplemented("aggregate not implemented: " + name);
}

// Evaluates a select-item expression in group context: aggregate calls are
// computed over `rows`; everything else is evaluated at the first row.
Result<Value> EvalInGroup(const Expr& e, const Evaluator& ev,
                          const std::vector<size_t>& rows) {
  if (e.kind == ExprKind::kFunction && IsAggregateFunction(e.function_name)) {
    return ComputeAggregate(e, ev, rows);
  }
  if (!e.ContainsAggregate()) {
    return ev.Eval(e, rows[0]);
  }
  // Mixed scalar-of-aggregate (e.g. AVG(x) / AVG(y) or AVG(x) + 1):
  // recursively rebuild around aggregate leaves.
  Expr copy;
  copy.kind = e.kind;
  copy.binary_op = e.binary_op;
  copy.unary_op = e.unary_op;
  copy.negated = e.negated;
  copy.function_name = e.function_name;
  copy.qualifier = e.qualifier;
  copy.column = e.column;
  copy.literal = e.literal;
  auto lift = [&](const ExprPtr& child) -> Result<ExprPtr> {
    if (child == nullptr) return ExprPtr{};
    EXPLAINIT_ASSIGN_OR_RETURN(Value v, EvalInGroup(*child, ev, rows));
    return MakeLiteral(std::move(v));
  };
  EXPLAINIT_ASSIGN_OR_RETURN(copy.left, lift(e.left));
  EXPLAINIT_ASSIGN_OR_RETURN(copy.right, lift(e.right));
  EXPLAINIT_ASSIGN_OR_RETURN(copy.between_lo, lift(e.between_lo));
  EXPLAINIT_ASSIGN_OR_RETURN(copy.between_hi, lift(e.between_hi));
  EXPLAINIT_ASSIGN_OR_RETURN(copy.case_else, lift(e.case_else));
  for (const ExprPtr& a : e.args) {
    EXPLAINIT_ASSIGN_OR_RETURN(ExprPtr la, lift(a));
    copy.args.push_back(std::move(la));
  }
  for (const ExprPtr& a : e.list) {
    EXPLAINIT_ASSIGN_OR_RETURN(ExprPtr la, lift(a));
    copy.list.push_back(std::move(la));
  }
  for (const CaseBranch& b : e.case_branches) {
    CaseBranch nb;
    EXPLAINIT_ASSIGN_OR_RETURN(nb.condition, lift(b.condition));
    EXPLAINIT_ASSIGN_OR_RETURN(nb.result, lift(b.result));
    copy.case_branches.push_back(std::move(nb));
  }
  return ev.Eval(copy, rows[0]);
}

}  // namespace

HashAggregateOperator::HashAggregateOperator(
    std::unique_ptr<Operator> input, const SelectStatement* stmt,
    const FunctionRegistry* functions)
    : stmt_(stmt), functions_(functions) {
  input_ = AddChild(std::move(input));
}

Status HashAggregateOperator::OpenImpl() {
  EXPLAINIT_RETURN_IF_ERROR(input_->Open());
  for (const SelectItem& item : stmt_->items) {
    if (item.is_star) {
      return Status::InvalidArgument("SELECT * with GROUP BY is not allowed");
    }
    schema_.AddField(Field{ItemName(item), DataType::kNull});
  }
  acc_ = table::Table(input_->output_schema());
  return Status::OK();
}

Result<ColumnBatch> HashAggregateOperator::NextImpl(bool* eof) {
  if (done_) {
    *eof = true;
    return ColumnBatch{};
  }
  done_ = true;

  // Phase 1: consume batches, grouping rows incrementally. Keys are
  // evaluated against each batch; row payloads accumulate column-wise.
  // Keys containing LAG read neighbouring rows, so they are evaluated
  // only after the whole input has accumulated.
  bool lag_in_keys = false;
  for (const ExprPtr& g : stmt_->group_by) {
    if (ContainsLag(*g)) lag_in_keys = true;
  }
  bool child_eof = false;
  while (true) {
    EXPLAINIT_ASSIGN_OR_RETURN(ColumnBatch batch, input_->Next(&child_eof));
    if (child_eof) break;
    if (!stmt_->group_by.empty() && !lag_in_keys) {
      Evaluator ev(&batch, functions_);
      const size_t base = acc_.num_rows();
      std::vector<Value> key;
      for (size_t r = 0; r < batch.num_rows(); ++r) {
        key.clear();
        for (const ExprPtr& g : stmt_->group_by) {
          EXPLAINIT_ASSIGN_OR_RETURN(Value v, ev.Eval(*g, r));
          key.push_back(std::move(v));
        }
        const std::string encoded = EncodeKey(key, nullptr);
        auto [it, inserted] = groups_.try_emplace(encoded);
        if (inserted) group_order_.push_back(encoded);
        it->second.push_back(base + r);
      }
    }
    batch.AppendTo(&acc_);
  }
  if (lag_in_keys) {
    Evaluator full_ev(&acc_, functions_);
    std::vector<Value> key;
    for (size_t r = 0; r < acc_.num_rows(); ++r) {
      key.clear();
      for (const ExprPtr& g : stmt_->group_by) {
        EXPLAINIT_ASSIGN_OR_RETURN(Value v, full_ev.Eval(*g, r));
        key.push_back(std::move(v));
      }
      const std::string encoded = EncodeKey(key, nullptr);
      auto [it, inserted] = groups_.try_emplace(encoded);
      if (inserted) group_order_.push_back(encoded);
      it->second.push_back(r);
    }
  }
  if (stmt_->group_by.empty()) {
    // Global aggregate: one group with every row (even zero rows).
    std::vector<size_t> all(acc_.num_rows());
    std::iota(all.begin(), all.end(), size_t{0});
    groups_[""] = std::move(all);
    group_order_.push_back("");
  }

  // Phase 2: evaluate the select list per group.
  Evaluator ev(&acc_, functions_);
  std::vector<std::vector<Value>> out_cols(schema_.num_fields());
  size_t out_rows = 0;
  for (const std::string& key : group_order_) {
    const std::vector<size_t>& rows = groups_[key];
    if (rows.empty() && !stmt_->group_by.empty()) continue;
    // HAVING runs in group context so it can reference aggregates that are
    // not in the select list.
    if (stmt_->having != nullptr && !rows.empty()) {
      EXPLAINIT_ASSIGN_OR_RETURN(Value keep,
                                 EvalInGroup(*stmt_->having, ev, rows));
      if (keep.is_null() || !keep.AsBool()) continue;
    }
    if (rows.empty()) {
      // Global aggregate over an empty table: aggregates yield NULL/0.
      for (size_t i = 0; i < stmt_->items.size(); ++i) {
        const SelectItem& item = stmt_->items[i];
        if (item.expr->kind == ExprKind::kFunction &&
            item.expr->function_name == "COUNT") {
          out_cols[i].push_back(Value::Int(0));
        } else {
          out_cols[i].push_back(Value::Null());
        }
      }
    } else {
      for (size_t i = 0; i < stmt_->items.size(); ++i) {
        EXPLAINIT_ASSIGN_OR_RETURN(
            Value v, EvalInGroup(*stmt_->items[i].expr, ev, rows));
        out_cols[i].push_back(std::move(v));
      }
    }
    ++out_rows;
  }
  ColumnBatch out(&schema_, out_rows);
  for (auto& col : out_cols) out.AddOwnedColumn(std::move(col));
  *eof = false;
  stats_.detail = std::to_string(group_order_.size()) + " groups";
  return out;
}

}  // namespace explainit::sql
