#include "sql/operators/scan.h"

#include <algorithm>

namespace explainit::sql {

using table::ColumnBatch;
using table::Field;
using table::Schema;
using table::Table;

table::Schema QualifyFields(const Schema& schema,
                            const std::string& qualifier) {
  if (qualifier.empty()) return schema;
  Schema out;
  for (const Field& f : schema.fields()) {
    if (f.name.find('.') != std::string::npos) {
      out.AddField(f);
    } else {
      out.AddField(Field{qualifier + "." + f.name, f.type});
    }
  }
  return out;
}

Status CatalogScanOperator::OpenImpl() {
  EXPLAINIT_ASSIGN_OR_RETURN(table_,
                             catalog_->GetTable(table_name_, hints_));
  const size_t full_width = table_.num_columns();
  if (projection_.has_value()) {
    // Prune to the referenced columns that actually exist; unknown
    // references keep flowing so the evaluator reports them properly.
    std::vector<std::string> keep;
    for (const std::string& col : *projection_) {
      if (table_.schema().FieldIndex(col).has_value()) keep.push_back(col);
    }
    if (!keep.empty() && keep.size() < full_width) {
      EXPLAINIT_ASSIGN_OR_RETURN(table_, table_.SelectColumns(keep));
    }
  }
  if (!qualifier_.empty()) {
    qualified_schema_ = QualifyFields(table_.schema(), qualifier_);
    schema_ = &qualified_schema_;
  } else {
    schema_ = &table_.schema();
  }
  stats_.detail = table_name_ + " cols=" +
                  std::to_string(table_.num_columns()) + "/" +
                  std::to_string(full_width);
  if (!hints_.empty()) stats_.detail += " hinted";
  if (hints_.min_step_seconds > 0) {
    stats_.detail +=
        " rollup_step=" + std::to_string(hints_.min_step_seconds);
  }
  return Status::OK();
}

Result<ColumnBatch> CatalogScanOperator::NextImpl(bool* eof) {
  if (pos_ >= table_.num_rows()) {
    *eof = true;
    return ColumnBatch{};
  }
  const size_t n =
      std::min(table::kDefaultBatchRows, table_.num_rows() - pos_);
  ColumnBatch batch = ColumnBatch::View(
      table_, pos_, n, schema_ == &table_.schema() ? nullptr : schema_);
  pos_ += n;
  *eof = false;
  return batch;
}

SubqueryScanOperator::SubqueryScanOperator(std::unique_ptr<Operator> input,
                                           std::string qualifier)
    : qualifier_(std::move(qualifier)) {
  input_ = AddChild(std::move(input));
}

Status SubqueryScanOperator::OpenImpl() {
  EXPLAINIT_RETURN_IF_ERROR(input_->Open());
  if (qualifier_.empty()) {
    schema_ = &input_->output_schema();
  } else {
    qualified_schema_ = QualifyFields(input_->output_schema(), qualifier_);
    schema_ = &qualified_schema_;
  }
  return Status::OK();
}

Result<ColumnBatch> SubqueryScanOperator::NextImpl(bool* eof) {
  EXPLAINIT_ASSIGN_OR_RETURN(ColumnBatch batch, input_->Next(eof));
  if (*eof) return batch;
  batch.set_schema(schema_);
  return batch;
}

Result<ColumnBatch> SingleRowOperator::NextImpl(bool* eof) {
  if (done_) {
    *eof = true;
    return ColumnBatch{};
  }
  done_ = true;
  *eof = false;
  return ColumnBatch(&schema_, 1);
}

UnionAllOperator::UnionAllOperator(
    std::vector<std::unique_ptr<Operator>> branches) {
  for (auto& b : branches) AddChild(std::move(b));
}

Status UnionAllOperator::OpenImpl() {
  for (size_t i = 0; i < num_children(); ++i) {
    EXPLAINIT_RETURN_IF_ERROR(child(i)->Open());
  }
  const size_t width = child(0)->output_schema().num_fields();
  for (size_t i = 1; i < num_children(); ++i) {
    const size_t w = child(i)->output_schema().num_fields();
    if (w != width) {
      return Status::InvalidArgument(
          "UNION ALL requires equal column counts: " +
          std::to_string(width) + " vs " + std::to_string(w));
    }
  }
  return Status::OK();
}

Result<ColumnBatch> UnionAllOperator::NextImpl(bool* eof) {
  while (current_ < num_children()) {
    bool branch_eof = false;
    EXPLAINIT_ASSIGN_OR_RETURN(ColumnBatch batch,
                               child(current_)->Next(&branch_eof));
    if (!branch_eof) {
      batch.set_schema(&child(0)->output_schema());
      *eof = false;
      return batch;
    }
    ++current_;
  }
  *eof = true;
  return ColumnBatch{};
}

}  // namespace explainit::sql
