#include "sql/operators/filter.h"

namespace explainit::sql {

using table::ColumnBatch;
using table::Value;

FilterOperator::FilterOperator(std::unique_ptr<Operator> input,
                               ExprPtr predicate,
                               const FunctionRegistry* functions,
                               const ExecContext* ctx)
    : predicate_(std::move(predicate)), functions_(functions), ctx_(ctx) {
  input_ = AddChild(std::move(input));
  materialize_ = predicate_ != nullptr && ContainsLag(*predicate_);
  parallel_ = !materialize_ && ctx_ != nullptr && ctx_->parallel();
}

Status FilterOperator::OpenImpl() {
  EXPLAINIT_RETURN_IF_ERROR(input_->Open());
  use_matchers_ = !materialize_ && CompileMatchers();
  return Status::OK();
}

bool FilterOperator::CompileMatchers() {
  std::vector<const Expr*> conjuncts;
  CollectConjuncts(predicate_.get(), &conjuncts);
  Evaluator schema_ev(&input_->output_schema(), functions_);
  std::vector<Matcher> matchers;
  matchers.reserve(conjuncts.size());
  for (const Expr* c : conjuncts) {
    Matcher m;
    if (c->kind == ExprKind::kBetween) {
      if (c->left == nullptr || c->between_lo == nullptr ||
          c->between_hi == nullptr ||
          c->between_lo->kind != ExprKind::kLiteral ||
          c->between_hi->kind != ExprKind::kLiteral) {
        return false;
      }
      auto simple = CompileSimpleExpr(*c->left);
      if (!simple.has_value()) return false;
      auto bound = BindSimpleExpr(*simple, schema_ev);
      if (!bound.ok()) return false;
      m.lhs = std::move(bound).value();
      m.op = Matcher::Op::kBetween;
      m.negated = c->negated;
      m.rhs = c->between_lo->literal;
      m.hi = c->between_hi->literal;
      matchers.push_back(std::move(m));
      continue;
    }
    if (c->kind != ExprKind::kBinary || c->left == nullptr ||
        c->right == nullptr) {
      return false;
    }
    BinaryOp op = c->binary_op;
    const Expr* simple_side = c->left.get();
    const Expr* literal_side = c->right.get();
    if (simple_side->kind == ExprKind::kLiteral) {
      // literal OP expr: flip the comparison.
      std::swap(simple_side, literal_side);
      op = op == BinaryOp::kLt   ? BinaryOp::kGt
           : op == BinaryOp::kLe ? BinaryOp::kGe
           : op == BinaryOp::kGt ? BinaryOp::kLt
           : op == BinaryOp::kGe ? BinaryOp::kLe
                                 : op;
    }
    if (literal_side->kind != ExprKind::kLiteral) return false;
    switch (op) {
      case BinaryOp::kEq: m.op = Matcher::Op::kEq; break;
      case BinaryOp::kNe: m.op = Matcher::Op::kNe; break;
      case BinaryOp::kLt: m.op = Matcher::Op::kLt; break;
      case BinaryOp::kLe: m.op = Matcher::Op::kLe; break;
      case BinaryOp::kGt: m.op = Matcher::Op::kGt; break;
      case BinaryOp::kGe: m.op = Matcher::Op::kGe; break;
      default: return false;
    }
    auto simple = CompileSimpleExpr(*simple_side);
    if (!simple.has_value()) return false;
    auto bound = BindSimpleExpr(*simple, schema_ev);
    if (!bound.ok()) return false;
    m.lhs = std::move(bound).value();
    m.rhs = literal_side->literal;
    matchers.push_back(std::move(m));
  }
  matchers_ = std::move(matchers);
  return true;
}

Result<bool> FilterOperator::MatchRow(const std::vector<Matcher>& matchers,
                                      const ColumnBatch& batch, size_t row) {
  // Mirrors the Evaluator's left-to-right AND: the first *false* conjunct
  // stops evaluation; a NULL conjunct drops the row but keeps evaluating
  // (so later errors still surface exactly as they would serially).
  bool null_seen = false;
  for (const Matcher& m : matchers) {
    const Value* cell = nullptr;
    EXPLAINIT_RETURN_IF_ERROR(m.lhs.Get(batch, row, &cell));
    if (cell->is_null() || m.rhs.is_null() ||
        (m.op == Matcher::Op::kBetween && m.hi.is_null())) {
      null_seen = true;
      continue;
    }
    bool pass = false;
    switch (m.op) {
      case Matcher::Op::kEq: pass = cell->Equals(m.rhs); break;
      case Matcher::Op::kNe: pass = !cell->Equals(m.rhs); break;
      case Matcher::Op::kLt: pass = cell->Compare(m.rhs) < 0; break;
      case Matcher::Op::kLe: pass = cell->Compare(m.rhs) <= 0; break;
      case Matcher::Op::kGt: pass = cell->Compare(m.rhs) > 0; break;
      case Matcher::Op::kGe: pass = cell->Compare(m.rhs) >= 0; break;
      case Matcher::Op::kBetween: {
        const bool in =
            cell->Compare(m.rhs) >= 0 && cell->Compare(m.hi) <= 0;
        pass = m.negated ? !in : in;
        break;
      }
    }
    if (!pass) return false;
  }
  return !null_seen;
}

Result<ColumnBatch> FilterOperator::ParallelNext(bool* eof) {
  if (!sharded_done_) {
    sharded_done_ = true;
    // Morsel source: the child's backing table when it is already
    // materialised with the same schema object (a catalog scan outside a
    // join), else a one-time drain.
    const table::Table* source = input_->MaterializedTable();
    if (source == nullptr ||
        &source->schema() != &input_->output_schema()) {
      drained_ = table::Table(input_->output_schema());
      EXPLAINIT_RETURN_IF_ERROR(Drain(input_, &drained_));
      source = &drained_;
    }
    const std::vector<RowRange> shards =
        ShardRows(source->num_rows(), ctx_->parallelism);
    std::vector<ColumnBatch> outputs(shards.size());
    EXPLAINIT_RETURN_IF_ERROR(RunSharded(
        ctx_, shards.size(), [&](size_t s) -> Status {
          const RowRange& range = shards[s];
          ColumnBatch view =
              ColumnBatch::View(*source, 0, source->num_rows());
          std::vector<uint32_t> selected;
          selected.reserve(range.size());
          if (use_matchers_) {
            for (size_t r = range.begin; r < range.end; ++r) {
              EXPLAINIT_ASSIGN_OR_RETURN(bool keep,
                                         MatchRow(matchers_, view, r));
              if (keep) selected.push_back(static_cast<uint32_t>(r));
            }
          } else {
            Evaluator ev(source, functions_);
            for (size_t r = range.begin; r < range.end; ++r) {
              EXPLAINIT_ASSIGN_OR_RETURN(Value v, ev.Eval(*predicate_, r));
              if (!v.is_null() && v.AsBool()) {
                selected.push_back(static_cast<uint32_t>(r));
              }
            }
          }
          if (selected.empty()) return Status::OK();
          if (selected.size() == range.size()) {
            // All pass: a zero-copy view over the shard's rows.
            outputs[s] = ColumnBatch::View(*source, range.begin,
                                           range.size());
          } else {
            outputs[s] = view.Gather(selected);
          }
          return Status::OK();
        }));
    shard_output_ = std::move(outputs);
    stats_.detail = std::to_string(shards.size()) + " shards";
    if (use_matchers_) stats_.detail += " compiled";
  }
  while (emit_pos_ < shard_output_.size()) {
    ColumnBatch batch = std::move(shard_output_[emit_pos_]);
    ++emit_pos_;
    if (batch.num_rows() == 0) continue;  // empty or fully filtered shard
    *eof = false;
    return batch;
  }
  *eof = true;
  return ColumnBatch{};
}

Result<ColumnBatch> FilterOperator::NextImpl(bool* eof) {
  if (parallel_) return ParallelNext(eof);
  if (materialize_) {
    // LAG window: one pass over the fully materialised input.
    if (materialized_done_) {
      *eof = true;
      return ColumnBatch{};
    }
    materialized_ = table::Table(input_->output_schema());
    EXPLAINIT_RETURN_IF_ERROR(Drain(input_, &materialized_));
    materialized_done_ = true;
    Evaluator ev(&materialized_, functions_);
    std::vector<uint32_t> selected;
    for (size_t r = 0; r < materialized_.num_rows(); ++r) {
      EXPLAINIT_ASSIGN_OR_RETURN(Value v, ev.Eval(*predicate_, r));
      if (!v.is_null() && v.AsBool()) {
        selected.push_back(static_cast<uint32_t>(r));
      }
    }
    *eof = false;
    return ColumnBatch::View(materialized_, 0, materialized_.num_rows())
        .Gather(selected);
  }
  // Vectorised path: evaluate the predicate over each pulled batch and
  // gather the surviving rows; fully filtered batches are skipped. The
  // compiled-conjunct fast path skips the Evaluator entirely.
  while (true) {
    bool child_eof = false;
    EXPLAINIT_ASSIGN_OR_RETURN(ColumnBatch batch, input_->Next(&child_eof));
    if (child_eof) {
      *eof = true;
      return ColumnBatch{};
    }
    std::vector<uint32_t> selected;
    selected.reserve(batch.num_rows());
    if (use_matchers_) {
      for (size_t r = 0; r < batch.num_rows(); ++r) {
        EXPLAINIT_ASSIGN_OR_RETURN(bool keep,
                                   MatchRow(matchers_, batch, r));
        if (keep) selected.push_back(static_cast<uint32_t>(r));
      }
    } else {
      Evaluator ev(&batch, functions_);
      for (size_t r = 0; r < batch.num_rows(); ++r) {
        EXPLAINIT_ASSIGN_OR_RETURN(Value v, ev.Eval(*predicate_, r));
        if (!v.is_null() && v.AsBool()) {
          selected.push_back(static_cast<uint32_t>(r));
        }
      }
    }
    if (selected.empty()) continue;
    *eof = false;
    if (selected.size() == batch.num_rows()) return batch;  // all pass
    return batch.Gather(selected);
  }
}

}  // namespace explainit::sql
