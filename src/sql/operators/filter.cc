#include "sql/operators/filter.h"

namespace explainit::sql {

using table::ColumnBatch;
using table::Value;

FilterOperator::FilterOperator(std::unique_ptr<Operator> input,
                               ExprPtr predicate,
                               const FunctionRegistry* functions)
    : predicate_(std::move(predicate)), functions_(functions) {
  input_ = AddChild(std::move(input));
  materialize_ = predicate_ != nullptr && ContainsLag(*predicate_);
}

Status FilterOperator::OpenImpl() { return input_->Open(); }

Result<ColumnBatch> FilterOperator::NextImpl(bool* eof) {
  if (materialize_) {
    // LAG window: one pass over the fully materialised input.
    if (materialized_done_) {
      *eof = true;
      return ColumnBatch{};
    }
    materialized_ = table::Table(input_->output_schema());
    EXPLAINIT_RETURN_IF_ERROR(Drain(input_, &materialized_));
    materialized_done_ = true;
    Evaluator ev(&materialized_, functions_);
    std::vector<uint32_t> selected;
    for (size_t r = 0; r < materialized_.num_rows(); ++r) {
      EXPLAINIT_ASSIGN_OR_RETURN(Value v, ev.Eval(*predicate_, r));
      if (!v.is_null() && v.AsBool()) {
        selected.push_back(static_cast<uint32_t>(r));
      }
    }
    *eof = false;
    return ColumnBatch::View(materialized_, 0, materialized_.num_rows())
        .Gather(selected);
  }
  // Vectorised path: evaluate the predicate over each pulled batch and
  // gather the surviving rows; fully filtered batches are skipped.
  while (true) {
    bool child_eof = false;
    EXPLAINIT_ASSIGN_OR_RETURN(ColumnBatch batch, input_->Next(&child_eof));
    if (child_eof) {
      *eof = true;
      return ColumnBatch{};
    }
    Evaluator ev(&batch, functions_);
    std::vector<uint32_t> selected;
    selected.reserve(batch.num_rows());
    for (size_t r = 0; r < batch.num_rows(); ++r) {
      EXPLAINIT_ASSIGN_OR_RETURN(Value v, ev.Eval(*predicate_, r));
      if (!v.is_null() && v.AsBool()) {
        selected.push_back(static_cast<uint32_t>(r));
      }
    }
    if (selected.empty()) continue;
    *eof = false;
    if (selected.size() == batch.num_rows()) return batch;  // all pass
    return batch.Gather(selected);
  }
}

}  // namespace explainit::sql
