// NestedLoopJoin: the fallback for non-equi conditions (and CROSS JOIN).
// The right side is materialised; the left streams through, one probe row
// per output batch (bounding candidate memory to |right| rows), with the
// condition evaluated vectorised over the candidate batch.
#pragma once

#include <vector>

#include "sql/evaluator.h"
#include "sql/operators/operator.h"

namespace explainit::sql {

class NestedLoopJoinOperator : public Operator {
 public:
  NestedLoopJoinOperator(std::unique_ptr<Operator> left,
                         std::unique_ptr<Operator> right,
                         const JoinClause* join,
                         const FunctionRegistry* functions);

  const table::Schema& output_schema() const override { return schema_; }
  std::string name() const override { return "NestedLoopJoin"; }
  void AccumulateExecStats(ExecStats* stats) const override {
    if (join_->type != JoinType::kCross) ++stats->nested_loop_joins;
  }
  /// Every emitted batch is owned (gathered candidates / outer pads).
  bool StableBatches() const override { return true; }

 protected:
  Status OpenImpl() override;
  Result<table::ColumnBatch> NextImpl(bool* eof) override;

 private:
  Result<table::ColumnBatch> FinishFullOuter(bool* eof);

  Operator* left_;
  Operator* right_;
  const JoinClause* join_;
  const FunctionRegistry* functions_;

  table::Schema schema_;
  table::Table right_table_;
  std::vector<bool> right_matched_;
  size_t left_width_ = 0;
  size_t right_width_ = 0;

  table::ColumnBatch left_batch_;
  size_t left_row_ = 0;
  bool left_active_ = false;
  bool left_done_ = false;
  bool outer_emitted_ = false;
};

}  // namespace explainit::sql
