#include "sql/operators/sort_limit.h"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <queue>
#include <utility>

namespace explainit::sql {

using table::ColumnBatch;
using table::Table;
using table::Value;

SortLimitOperator::SortLimitOperator(std::unique_ptr<Operator> input,
                                     const SelectStatement* stmt,
                                     const FunctionRegistry* functions,
                                     bool aggregated, const ExecContext* ctx)
    : stmt_(stmt), functions_(functions), aggregated_(aggregated),
      ctx_(ctx) {
  input_ = AddChild(std::move(input));
}

Status SortLimitOperator::OpenImpl() { return input_->Open(); }

Status SortLimitOperator::BuildSortKeys(
    const Table& output, std::vector<std::vector<Value>>* keys) const {
  // Each item resolves its evaluation side once: the output schema
  // (alias or expression name, and always for aggregated inputs where
  // pre-projection rows are not 1:1) or the retained pre-projection
  // rows. A primary-side failure on *any* row switches the whole item
  // to the other side, so one item never mixes values from two schemas
  // across rows.
  const size_t n = output.num_rows();
  Evaluator out_ev(&output, functions_);
  const Table empty_pre;
  const Table* preprojection = input_->retained_input();
  const Table* pre = preprojection != nullptr ? preprojection : &empty_pre;
  Evaluator pre_ev(pre, functions_);
  const std::vector<RowRange> shards =
      ShardRows(n, EffectiveParallelism(ctx_));
  keys->resize(stmt_->order_by.size());
  for (size_t k = 0; k < stmt_->order_by.size(); ++k) {
    const OrderByItem& item = stmt_->order_by[k];
    bool resolved_on_output = false;
    if (item.expr->kind == ExprKind::kColumnRef &&
        out_ev.ResolveColumn(*item.expr).ok()) {
      resolved_on_output = true;
    }
    const Evaluator* primary =
        (resolved_on_output || aggregated_) ? &out_ev : &pre_ev;
    const Evaluator* fallback = primary == &out_ev ? &pre_ev : &out_ev;
    std::vector<Value>& col = (*keys)[k];
    col.assign(n, Value());
    // Pass 1: the primary side for every row. Whether any row fails is
    // a property of the data, not of the shard layout, so the side
    // choice is identical at every parallelism level.
    std::atomic<bool> failed{false};
    Status first_pass = RunSharded(
        ctx_, shards.size(), [&](size_t s) -> Status {
          for (size_t r = shards[s].begin; r < shards[s].end; ++r) {
            if (failed.load(std::memory_order_relaxed)) break;
            Result<Value> v = primary->Eval(*item.expr, r);
            if (!v.ok()) {
              failed.store(true, std::memory_order_relaxed);
              break;
            }
            col[r] = std::move(v).value();
          }
          return Status::OK();
        });
    EXPLAINIT_RETURN_IF_ERROR(std::move(first_pass));
    if (failed.load(std::memory_order_relaxed)) {
      EXPLAINIT_RETURN_IF_ERROR(RunSharded(
          ctx_, shards.size(), [&](size_t s) -> Status {
            for (size_t r = shards[s].begin; r < shards[s].end; ++r) {
              EXPLAINIT_ASSIGN_OR_RETURN(Value v,
                                         fallback->Eval(*item.expr, r));
              col[r] = std::move(v);
            }
            return Status::OK();
          }));
    }
  }
  return Status::OK();
}

Status SortLimitOperator::GatherSorted(const Table& output,
                                       const std::vector<size_t>& order) {
  const size_t m = order.size();
  const size_t width = output.num_columns();
  if (width == 0) {
    // Zero-column relations cannot round-trip through FromColumns (the
    // row count would be lost); appending empty rows is trivial anyway.
    sorted_ = Table(output.schema());
    for (size_t r = 0; r < m; ++r) sorted_.AppendRow({});
    return Status::OK();
  }
  std::vector<std::vector<Value>> cols(width);
  for (auto& c : cols) c.resize(m);
  const std::vector<RowRange> shards =
      ShardRows(m, EffectiveParallelism(ctx_));
  EXPLAINIT_RETURN_IF_ERROR(RunSharded(
      ctx_, shards.size(), [&](size_t s) -> Status {
        for (size_t c = 0; c < width; ++c) {
          const std::vector<Value>& src = output.column(c);
          std::vector<Value>& dst = cols[c];
          for (size_t r = shards[s].begin; r < shards[s].end; ++r) {
            dst[r] = src[order[r]];
          }
        }
        return Status::OK();
      }));
  EXPLAINIT_ASSIGN_OR_RETURN(
      sorted_, Table::FromColumns(output.schema(), std::move(cols)));
  return Status::OK();
}

Result<ColumnBatch> SortLimitOperator::NextImpl(bool* eof) {
  if (stmt_->order_by.empty()) {
    // Streaming LIMIT: stop pulling once enough rows arrived.
    const size_t limit = stmt_->limit.has_value() && *stmt_->limit >= 0
                             ? static_cast<size_t>(*stmt_->limit)
                             : static_cast<size_t>(-1);
    if (emitted_ >= limit) {
      *eof = true;
      return ColumnBatch{};
    }
    bool child_eof = false;
    EXPLAINIT_ASSIGN_OR_RETURN(ColumnBatch batch, input_->Next(&child_eof));
    if (child_eof) {
      *eof = true;
      return ColumnBatch{};
    }
    if (emitted_ + batch.num_rows() > limit) {
      batch.Truncate(limit - emitted_);
    }
    emitted_ += batch.num_rows();
    *eof = false;
    return batch;
  }

  if (!sorted_done_) {
    sorted_done_ = true;
    Table output(input_->output_schema());
    EXPLAINIT_RETURN_IF_ERROR(Drain(input_, &output));
    const size_t n = output.num_rows();
    std::vector<std::vector<Value>> sort_keys;
    EXPLAINIT_RETURN_IF_ERROR(BuildSortKeys(output, &sort_keys));

    // Strict total order: sort keys in ORDER BY sequence, then the input
    // row index — exactly the order a stable sort produces, but usable
    // by per-shard plain sorts, heaps and the merge alike.
    auto less = [&](size_t a, size_t b) {
      for (size_t k = 0; k < stmt_->order_by.size(); ++k) {
        const int cmp = sort_keys[k][a].Compare(sort_keys[k][b]);
        if (cmp != 0) return stmt_->order_by[k].ascending ? cmp < 0
                                                          : cmp > 0;
      }
      return a < b;
    };
    const bool has_limit =
        stmt_->limit.has_value() && *stmt_->limit >= 0;
    const size_t limit =
        has_limit ? std::min<size_t>(static_cast<size_t>(*stmt_->limit), n)
                  : n;
    const std::vector<RowRange> shards =
        ShardRows(n, EffectiveParallelism(ctx_));
    sort_shards_ = shards.size();
    std::vector<size_t> order;
    if (shards.size() <= 1) {
      order.resize(n);
      std::iota(order.begin(), order.end(), size_t{0});
      std::sort(order.begin(), order.end(), less);
      order.resize(limit);
    } else {
      // Per-shard sort — a bounded top-K heap when LIMIT keeps fewer
      // rows than the shard holds (the heap root is the worst kept
      // row) — then a k-way merge over the shard fronts.
      std::vector<std::vector<size_t>> local(shards.size());
      EXPLAINIT_RETURN_IF_ERROR(RunSharded(
          ctx_, shards.size(), [&](size_t s) -> Status {
            std::vector<size_t>& idx = local[s];
            const RowRange& range = shards[s];
            if (has_limit && limit < range.size()) {
              idx.reserve(limit + 1);
              for (size_t r = range.begin; r < range.end; ++r) {
                if (idx.size() < limit) {
                  idx.push_back(r);
                  std::push_heap(idx.begin(), idx.end(), less);
                } else if (limit > 0 && less(r, idx.front())) {
                  std::pop_heap(idx.begin(), idx.end(), less);
                  idx.back() = r;
                  std::push_heap(idx.begin(), idx.end(), less);
                }
              }
              std::sort_heap(idx.begin(), idx.end(), less);
            } else {
              idx.resize(range.size());
              std::iota(idx.begin(), idx.end(), range.begin);
              std::sort(idx.begin(), idx.end(), less);
            }
            return Status::OK();
          }));
      using HeapItem = std::pair<size_t, size_t>;  // (row, shard)
      auto heap_greater = [&](const HeapItem& a, const HeapItem& b) {
        return less(b.first, a.first);
      };
      std::priority_queue<HeapItem, std::vector<HeapItem>,
                          decltype(heap_greater)>
          heap(heap_greater);
      std::vector<size_t> cursor(local.size(), 0);
      for (size_t s = 0; s < local.size(); ++s) {
        if (!local[s].empty()) heap.emplace(local[s][0], s);
      }
      order.reserve(limit);
      while (!heap.empty() && order.size() < limit) {
        const auto [row, s] = heap.top();
        heap.pop();
        order.push_back(row);
        if (++cursor[s] < local[s].size()) {
          heap.emplace(local[s][cursor[s]], s);
        }
      }
    }
    EXPLAINIT_RETURN_IF_ERROR(GatherSorted(output, order));
    stats_.detail = "rows=" + std::to_string(n) +
                    " shards=" + std::to_string(sort_shards_) +
                    (has_limit && sort_shards_ > 1 && limit < n ? " top-k"
                                                                : "");
  }
  if (pos_ >= sorted_.num_rows()) {
    *eof = true;
    return ColumnBatch{};
  }
  const size_t n = std::min(table::kDefaultBatchRows,
                            sorted_.num_rows() - pos_);
  ColumnBatch batch = ColumnBatch::View(sorted_, pos_, n);
  pos_ += n;
  *eof = false;
  return batch;
}

}  // namespace explainit::sql
