#include "sql/operators/sort_limit.h"

#include <algorithm>
#include <numeric>

namespace explainit::sql {

using table::ColumnBatch;
using table::Table;
using table::Value;

SortLimitOperator::SortLimitOperator(std::unique_ptr<Operator> input,
                                     const SelectStatement* stmt,
                                     const FunctionRegistry* functions,
                                     bool aggregated)
    : stmt_(stmt), functions_(functions), aggregated_(aggregated) {
  input_ = AddChild(std::move(input));
}

Status SortLimitOperator::OpenImpl() { return input_->Open(); }

Result<ColumnBatch> SortLimitOperator::NextImpl(bool* eof) {
  if (stmt_->order_by.empty()) {
    // Streaming LIMIT: stop pulling once enough rows arrived.
    const size_t limit = stmt_->limit.has_value() && *stmt_->limit >= 0
                             ? static_cast<size_t>(*stmt_->limit)
                             : static_cast<size_t>(-1);
    if (emitted_ >= limit) {
      *eof = true;
      return ColumnBatch{};
    }
    bool child_eof = false;
    EXPLAINIT_ASSIGN_OR_RETURN(ColumnBatch batch, input_->Next(&child_eof));
    if (child_eof) {
      *eof = true;
      return ColumnBatch{};
    }
    if (emitted_ + batch.num_rows() > limit) {
      batch.Truncate(limit - emitted_);
    }
    emitted_ += batch.num_rows();
    *eof = false;
    return batch;
  }

  if (!sorted_done_) {
    sorted_done_ = true;
    Table output(input_->output_schema());
    EXPLAINIT_RETURN_IF_ERROR(Drain(input_, &output));
    // Build sort keys: prefer resolving against the output schema (alias
    // or expression name); otherwise evaluate against the pre-projection
    // rows (valid only when rows map 1:1, i.e. no aggregation).
    const size_t n = output.num_rows();
    std::vector<std::vector<Value>> sort_keys(n);
    Evaluator out_ev(&output, functions_);
    const Table empty_pre;
    const Table* preprojection = input_->retained_input();
    const Table* pre = preprojection != nullptr ? preprojection : &empty_pre;
    Evaluator pre_ev(pre, functions_);
    for (const OrderByItem& item : stmt_->order_by) {
      // Try output-schema resolution by name first.
      bool resolved_on_output = false;
      if (item.expr->kind == ExprKind::kColumnRef) {
        if (out_ev.ResolveColumn(*item.expr).ok()) resolved_on_output = true;
      }
      for (size_t r = 0; r < n; ++r) {
        Result<Value> v = resolved_on_output ? out_ev.Eval(*item.expr, r)
                          : aggregated_      ? out_ev.Eval(*item.expr, r)
                                             : pre_ev.Eval(*item.expr, r);
        if (!v.ok()) {
          // Last resort: try the other side.
          v = resolved_on_output || aggregated_ ? pre_ev.Eval(*item.expr, r)
                                                : out_ev.Eval(*item.expr, r);
        }
        if (!v.ok()) return v.status();
        sort_keys[r].push_back(std::move(v).value());
      }
    }
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), size_t{0});
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      for (size_t k = 0; k < stmt_->order_by.size(); ++k) {
        const int cmp = sort_keys[a][k].Compare(sort_keys[b][k]);
        if (cmp != 0) return stmt_->order_by[k].ascending ? cmp < 0 : cmp > 0;
      }
      return false;
    });
    if (stmt_->limit.has_value() && *stmt_->limit >= 0 &&
        static_cast<size_t>(*stmt_->limit) < order.size()) {
      order.resize(static_cast<size_t>(*stmt_->limit));
    }
    sorted_ = Table(output.schema());
    for (size_t r : order) sorted_.AppendRow(output.Row(r));
  }
  if (pos_ >= sorted_.num_rows()) {
    *eof = true;
    return ColumnBatch{};
  }
  const size_t n = std::min(table::kDefaultBatchRows,
                            sorted_.num_rows() - pos_);
  ColumnBatch batch = ColumnBatch::View(sorted_, pos_, n);
  pos_ += n;
  *eof = false;
  return batch;
}

}  // namespace explainit::sql
