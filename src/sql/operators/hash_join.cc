#include "sql/operators/hash_join.h"

#include <functional>

namespace explainit::sql {

using table::ColumnBatch;
using table::Field;
using table::Schema;
using table::Value;

namespace {

/// Probe batches are at most table::kDefaultBatchRows rows, so the
/// morsel default grain (1024) would never split them.
constexpr size_t kProbeShardMinRows = 128;

bool ResolvesAgainst(const Expr& e, const Evaluator& ev) {
  // An expression "belongs" to a side when every column it references
  // resolves there.
  switch (e.kind) {
    case ExprKind::kColumnRef:
      return ev.ResolveColumn(e).ok();
    case ExprKind::kLiteral:
    case ExprKind::kStar:
      return true;
    default: {
      auto check = [&](const ExprPtr& c) {
        return c == nullptr || ResolvesAgainst(*c, ev);
      };
      if (!check(e.left) || !check(e.right) || !check(e.between_lo) ||
          !check(e.between_hi) || !check(e.case_else)) {
        return false;
      }
      for (const ExprPtr& a : e.args) {
        if (!check(a)) return false;
      }
      for (const ExprPtr& a : e.list) {
        if (!check(a)) return false;
      }
      for (const CaseBranch& b : e.case_branches) {
        if (!check(b.condition) || !check(b.result)) return false;
      }
      return true;
    }
  }
}

}  // namespace

EquiKeys SplitJoinCondition(const Expr* condition, const Evaluator& left_ev,
                            const Evaluator& right_ev) {
  EquiKeys keys;
  if (condition == nullptr) return keys;
  std::vector<const Expr*> conjuncts;
  CollectConjuncts(condition, &conjuncts);
  for (const Expr* c : conjuncts) {
    if (c->kind == ExprKind::kBinary && c->binary_op == BinaryOp::kEq) {
      const Expr* l = c->left.get();
      const Expr* r = c->right.get();
      if (ResolvesAgainst(*l, left_ev) && ResolvesAgainst(*r, right_ev)) {
        keys.left_exprs.push_back(l);
        keys.right_exprs.push_back(r);
        continue;
      }
      if (ResolvesAgainst(*r, left_ev) && ResolvesAgainst(*l, right_ev)) {
        keys.left_exprs.push_back(r);
        keys.right_exprs.push_back(l);
        continue;
      }
    }
    keys.residual.push_back(c);
  }
  return keys;
}

HashJoinOperator::HashJoinOperator(std::unique_ptr<Operator> left,
                                   std::unique_ptr<Operator> right,
                                   const JoinClause* join,
                                   const FunctionRegistry* functions,
                                   bool build_left, const ExecContext* ctx)
    : join_(join), functions_(functions), build_left_(build_left),
      ctx_(ctx) {
  left_ = AddChild(std::move(left));
  right_ = AddChild(std::move(right));
}

bool HashJoinOperator::NeedsBuildPads() const {
  return join_->type == JoinType::kFullOuter ||
         (join_->type == JoinType::kLeft && build_left_);
}

bool HashJoinOperator::NeedsProbePads() const {
  return join_->type == JoinType::kFullOuter ||
         (join_->type == JoinType::kLeft && !build_left_);
}

void HashJoinOperator::AppendCandidate(
    std::vector<std::vector<Value>>* cols, const ColumnBatch& batch,
    size_t i, size_t j) const {
  for (size_t c = 0; c < build_width_; ++c) {
    (*cols)[build_offset_ + c].push_back(build_table_.At(j, c));
  }
  for (size_t c = 0; c < probe_width_; ++c) {
    (*cols)[probe_offset_ + c].push_back(batch.At(i, c));
  }
}

Status HashJoinOperator::OpenImpl() {
  EXPLAINIT_RETURN_IF_ERROR(left_->Open());
  EXPLAINIT_RETURN_IF_ERROR(right_->Open());
  const Schema& ls = left_->output_schema();
  const Schema& rs = right_->output_schema();
  left_width_ = ls.num_fields();
  right_width_ = rs.num_fields();
  for (const Field& f : ls.fields()) schema_.AddField(f);
  for (const Field& f : rs.fields()) schema_.AddField(f);
  build_offset_ = build_left_ ? 0 : left_width_;
  probe_offset_ = build_left_ ? left_width_ : 0;
  build_width_ = build_left_ ? left_width_ : right_width_;
  probe_width_ = build_left_ ? right_width_ : left_width_;

  Evaluator left_ev(&ls, functions_);
  Evaluator right_ev(&rs, functions_);
  keys_ = SplitJoinCondition(join_->condition.get(), left_ev, right_ev);
  for (const Expr* e : keys_.residual) {
    if (ContainsLag(*e)) lag_in_condition_ = true;
  }
  for (const Expr* e : keys_.left_exprs) {
    if (ContainsLag(*e)) lag_in_condition_ = true;
  }
  for (const Expr* e : keys_.right_exprs) {
    if (ContainsLag(*e)) lag_in_condition_ = true;
  }

  // Materialise and index the build side. Empty key lists (no resolvable
  // equi conjunct) hash everything under one key: a cross product with
  // the whole condition as residual.
  Operator* build = build_left_ ? left_ : right_;
  build_table_ = table::Table(build->output_schema());
  EXPLAINIT_RETURN_IF_ERROR(Drain(build, &build_table_));
  const std::vector<const Expr*>& build_exprs =
      build_left_ ? keys_.left_exprs : keys_.right_exprs;
  probe_exprs_ = build_left_ ? keys_.right_exprs : keys_.left_exprs;

  const size_t n = build_table_.num_rows();
  parallel_ = ctx_ != nullptr && ctx_->parallel() && !lag_in_condition_;
  const bool parallel = parallel_;
  num_partitions_ = parallel ? std::max<size_t>(
                                   1, std::min(ctx_->parallelism,
                                               std::max<size_t>(1, n / 1024)))
                             : 1;

  // Phase 1: encode every build row's key (sharded; shards write
  // disjoint ranges) and bucket non-null rows by partition per shard.
  // The hash only routes rows to partitions, so it never affects
  // results.
  std::vector<std::string> keys(n);
  std::vector<char> null_key(n, 0);
  const std::vector<RowRange> shards = ShardRows(n, parallel
                                                        ? ctx_->parallelism
                                                        : 1);
  // buckets[s][p]: this shard's rows for partition p, ascending.
  std::vector<std::vector<std::vector<size_t>>> buckets(
      num_partitions_ > 1 ? shards.size() : 0);
  EXPLAINIT_RETURN_IF_ERROR(RunSharded(
      ctx_, shards.size(), [&](size_t s) -> Status {
        Evaluator build_ev(&build_table_, functions_);
        std::vector<Value> kv;
        if (num_partitions_ > 1) buckets[s].resize(num_partitions_);
        for (size_t j = shards[s].begin; j < shards[s].end; ++j) {
          kv.clear();
          bool has_null = false;
          for (const Expr* e : build_exprs) {
            EXPLAINIT_ASSIGN_OR_RETURN(Value v, build_ev.Eval(*e, j));
            kv.push_back(std::move(v));
          }
          keys[j] = EncodeKey(kv, &has_null);
          null_key[j] = has_null ? 1 : 0;
          if (num_partitions_ > 1 && !has_null) {
            buckets[s][std::hash<std::string>{}(keys[j]) % num_partitions_]
                .push_back(j);
          }
        }
        return Status::OK();
      }));

  // Phase 2: build per-partition indexes, one task per partition; each
  // task walks only its own buckets (O(n) total across partitions).
  // Shards are contiguous ascending ranges, so visiting them in order
  // keeps rows inserting ascending: equal-key matches enumerate in
  // build order at every parallelism level (the serial path is the
  // single partition, which scans rows directly).
  partitions_.assign(num_partitions_, BuildPartition{});
  EXPLAINIT_RETURN_IF_ERROR(RunSharded(
      ctx_, num_partitions_, [&](size_t p) -> Status {
        BuildPartition& partition = partitions_[p];
        partition.index.reserve(n / num_partitions_ + 1);
        if (num_partitions_ == 1) {
          for (size_t j = 0; j < n; ++j) {
            if (!null_key[j]) partition.index[keys[j]].push_back(j);
          }
          return Status::OK();
        }
        for (const auto& shard_buckets : buckets) {
          for (const size_t j : shard_buckets[p]) {
            partition.index[keys[j]].push_back(j);
          }
        }
        return Status::OK();
      }));

  build_matched_.assign(n, 0);
  stats_.detail = std::string("build=") + (build_left_ ? "left" : "right") +
                  " rows=" + std::to_string(n) +
                  " parts=" + std::to_string(num_partitions_);
  return Status::OK();
}

Result<ColumnBatch> HashJoinOperator::FinishBuildPads(bool* eof) {
  // Build-side rows that never matched, padded with nulls on the probe
  // side's columns and emitted in batch-sized chunks — a large build side
  // with few matches would otherwise materialise one giant batch and
  // undo the pipeline's bounded-memory batching. Pads follow the actual
  // build orientation: the build side's values land on its own columns
  // whichever input it is. pad_pos_ persists the scan cursor between
  // calls; pads_emitted_ flips once the cursor exhausts the build table.
  const size_t total = build_table_.num_rows();
  std::vector<std::vector<Value>> cols(schema_.num_fields());
  size_t rows = 0;
  while (pad_pos_ < total && rows < table::kDefaultBatchRows) {
    const size_t j = pad_pos_++;
    if (build_matched_[j]) continue;
    for (size_t c = 0; c < build_width_; ++c) {
      cols[build_offset_ + c].push_back(build_table_.At(j, c));
    }
    for (size_t c = 0; c < probe_width_; ++c) {
      cols[probe_offset_ + c].push_back(Value::Null());
    }
    ++rows;
  }
  if (pad_pos_ >= total) pads_emitted_ = true;
  if (rows == 0) {
    // Every remaining build row matched: report end of stream directly
    // instead of burning a Next() round-trip on an empty non-eof batch.
    *eof = true;
    return ColumnBatch{};
  }
  ColumnBatch out(&schema_, rows);
  for (auto& col : cols) out.AddOwnedColumn(std::move(col));
  *eof = false;
  return out;
}

Result<ColumnBatch> HashJoinOperator::NextImpl(bool* eof) {
  if (probe_done_) {
    if (NeedsBuildPads() && !pads_emitted_) {
      return FinishBuildPads(eof);
    }
    *eof = true;
    return ColumnBatch{};
  }
  Operator* probe = build_left_ ? right_ : left_;
  while (true) {
    bool probe_eof = false;
    EXPLAINIT_ASSIGN_OR_RETURN(ColumnBatch batch, probe->Next(&probe_eof));
    if (probe_eof) {
      probe_done_ = true;
      if (NeedsBuildPads() && !pads_emitted_) {
        return FinishBuildPads(eof);
      }
      *eof = true;
      return ColumnBatch{};
    }

    // Shard the probe batch into contiguous row ranges. Each shard
    // assembles its candidate rows, applies the residual, and records
    // its matches locally; shard-order merge then reproduces the serial
    // order (ascending probe row, matches ascending by build row).
    const size_t rows = batch.num_rows();
    const std::vector<RowRange> shards =
        ShardRows(rows, parallel_ ? ctx_->parallelism : 1,
                  kProbeShardMinRows);
    struct ProbeShard {
      ColumnBatch out;                    // kept candidates, owned
      std::vector<size_t> matched_build;  // build rows kept by residual
    };
    std::vector<ProbeShard> locals(shards.size());
    std::vector<char> probe_matched(rows, 0);  // disjoint writes per shard
    EXPLAINIT_RETURN_IF_ERROR(RunSharded(
        ctx_, shards.size(), [&](size_t s) -> Status {
          ProbeShard& local = locals[s];
          Evaluator probe_ev(&batch, functions_);
          std::vector<std::vector<Value>> cand(schema_.num_fields());
          std::vector<uint32_t> cand_probe;
          std::vector<size_t> cand_build;
          std::vector<Value> kv;
          for (size_t i = shards[s].begin; i < shards[s].end; ++i) {
            kv.clear();
            bool has_null = false;
            for (const Expr* e : probe_exprs_) {
              EXPLAINIT_ASSIGN_OR_RETURN(Value v, probe_ev.Eval(*e, i));
              kv.push_back(std::move(v));
            }
            const std::string key = EncodeKey(kv, &has_null);
            if (has_null) continue;
            const size_t p =
                num_partitions_ > 1
                    ? std::hash<std::string>{}(key) % num_partitions_
                    : 0;
            const auto it = partitions_[p].index.find(key);
            if (it == partitions_[p].index.end()) continue;
            for (const size_t j : it->second) {
              AppendCandidate(&cand, batch, i, j);
              cand_probe.push_back(static_cast<uint32_t>(i));
              cand_build.push_back(j);
            }
          }
          ColumnBatch cand_batch(&schema_, cand_probe.size());
          for (auto& col : cand) cand_batch.AddOwnedColumn(std::move(col));

          // Residual conjuncts filter the candidates; only passing rows
          // count as matches.
          if (keys_.residual.empty()) {
            for (size_t k = 0; k < cand_probe.size(); ++k) {
              probe_matched[cand_probe[k]] = 1;
              local.matched_build.push_back(cand_build[k]);
            }
            local.out = std::move(cand_batch);
            return Status::OK();
          }
          std::vector<uint32_t> kept;
          Evaluator cand_ev(&cand_batch, functions_);
          for (size_t k = 0; k < cand_batch.num_rows(); ++k) {
            bool ok = true;
            for (const Expr* r : keys_.residual) {
              EXPLAINIT_ASSIGN_OR_RETURN(Value v, cand_ev.Eval(*r, k));
              if (v.is_null() || !v.AsBool()) {
                ok = false;
                break;
              }
            }
            if (!ok) continue;
            kept.push_back(static_cast<uint32_t>(k));
            probe_matched[cand_probe[k]] = 1;
            local.matched_build.push_back(cand_build[k]);
          }
          local.out = cand_batch.Gather(kept);
          local.out.set_schema(&schema_);
          return Status::OK();
        }));

    // Merge match bookkeeping in shard order (deterministic, and the
    // only writer of build_matched_ once the shards have joined).
    size_t match_rows = 0;
    for (ProbeShard& local : locals) {
      for (const size_t j : local.matched_build) build_matched_[j] = 1;
      match_rows += local.out.num_rows();
    }

    // Pad unmatched probe rows for LEFT (probe = left) / FULL OUTER:
    // probe values on the probe side's columns, nulls on the build
    // side's.
    std::vector<std::vector<Value>> pad(schema_.num_fields());
    size_t pad_rows = 0;
    if (NeedsProbePads()) {
      for (size_t i = 0; i < rows; ++i) {
        if (probe_matched[i]) continue;
        for (size_t c = 0; c < probe_width_; ++c) {
          pad[probe_offset_ + c].push_back(batch.At(i, c));
        }
        for (size_t c = 0; c < build_width_; ++c) {
          pad[build_offset_ + c].push_back(Value::Null());
        }
        ++pad_rows;
      }
    }

    const size_t out_rows = match_rows + pad_rows;
    if (out_rows == 0) continue;  // fully filtered batch: pull more
    if (locals.size() == 1 && pad_rows == 0) {
      *eof = false;
      return std::move(locals[0].out);
    }
    std::vector<std::vector<Value>> merged(schema_.num_fields());
    for (size_t c = 0; c < schema_.num_fields(); ++c) {
      merged[c].reserve(out_rows);
      for (const ProbeShard& local : locals) {
        if (local.out.num_rows() == 0) continue;
        const Value* src = local.out.column(c);
        merged[c].insert(merged[c].end(), src,
                         src + local.out.num_rows());
      }
      for (auto& v : pad[c]) merged[c].push_back(std::move(v));
    }
    ColumnBatch out(&schema_, out_rows);
    for (auto& col : merged) out.AddOwnedColumn(std::move(col));
    *eof = false;
    return out;
  }
}

}  // namespace explainit::sql
