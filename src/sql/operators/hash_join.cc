#include "sql/operators/hash_join.h"

namespace explainit::sql {

using table::ColumnBatch;
using table::Field;
using table::Schema;
using table::Value;

namespace {

bool ResolvesAgainst(const Expr& e, const Evaluator& ev) {
  // An expression "belongs" to a side when every column it references
  // resolves there.
  switch (e.kind) {
    case ExprKind::kColumnRef:
      return ev.ResolveColumn(e).ok();
    case ExprKind::kLiteral:
    case ExprKind::kStar:
      return true;
    default: {
      auto check = [&](const ExprPtr& c) {
        return c == nullptr || ResolvesAgainst(*c, ev);
      };
      if (!check(e.left) || !check(e.right) || !check(e.between_lo) ||
          !check(e.between_hi) || !check(e.case_else)) {
        return false;
      }
      for (const ExprPtr& a : e.args) {
        if (!check(a)) return false;
      }
      for (const ExprPtr& a : e.list) {
        if (!check(a)) return false;
      }
      for (const CaseBranch& b : e.case_branches) {
        if (!check(b.condition) || !check(b.result)) return false;
      }
      return true;
    }
  }
}

}  // namespace

EquiKeys SplitJoinCondition(const Expr* condition, const Evaluator& left_ev,
                            const Evaluator& right_ev) {
  EquiKeys keys;
  if (condition == nullptr) return keys;
  std::vector<const Expr*> conjuncts;
  CollectConjuncts(condition, &conjuncts);
  for (const Expr* c : conjuncts) {
    if (c->kind == ExprKind::kBinary && c->binary_op == BinaryOp::kEq) {
      const Expr* l = c->left.get();
      const Expr* r = c->right.get();
      if (ResolvesAgainst(*l, left_ev) && ResolvesAgainst(*r, right_ev)) {
        keys.left_exprs.push_back(l);
        keys.right_exprs.push_back(r);
        continue;
      }
      if (ResolvesAgainst(*r, left_ev) && ResolvesAgainst(*l, right_ev)) {
        keys.left_exprs.push_back(r);
        keys.right_exprs.push_back(l);
        continue;
      }
    }
    keys.residual.push_back(c);
  }
  return keys;
}

HashJoinOperator::HashJoinOperator(std::unique_ptr<Operator> left,
                                   std::unique_ptr<Operator> right,
                                   const JoinClause* join,
                                   const FunctionRegistry* functions,
                                   bool build_left)
    : join_(join), functions_(functions), build_left_(build_left) {
  left_ = AddChild(std::move(left));
  right_ = AddChild(std::move(right));
}

Status HashJoinOperator::OpenImpl() {
  EXPLAINIT_RETURN_IF_ERROR(left_->Open());
  EXPLAINIT_RETURN_IF_ERROR(right_->Open());
  const Schema& ls = left_->output_schema();
  const Schema& rs = right_->output_schema();
  left_width_ = ls.num_fields();
  right_width_ = rs.num_fields();
  for (const Field& f : ls.fields()) schema_.AddField(f);
  for (const Field& f : rs.fields()) schema_.AddField(f);

  Evaluator left_ev(&ls, functions_);
  Evaluator right_ev(&rs, functions_);
  keys_ = SplitJoinCondition(join_->condition.get(), left_ev, right_ev);

  // Materialise and index the build side. Empty key lists (no resolvable
  // equi conjunct) hash everything under one key: a cross product with
  // the whole condition as residual.
  Operator* build = build_left_ ? left_ : right_;
  build_table_ = table::Table(build->output_schema());
  EXPLAINIT_RETURN_IF_ERROR(Drain(build, &build_table_));
  const std::vector<const Expr*>& build_exprs =
      build_left_ ? keys_.left_exprs : keys_.right_exprs;
  probe_exprs_ = build_left_ ? keys_.right_exprs : keys_.left_exprs;
  Evaluator build_ev(&build_table_, functions_);
  build_index_.reserve(build_table_.num_rows() * 2);
  std::vector<Value> kv;
  for (size_t j = 0; j < build_table_.num_rows(); ++j) {
    kv.clear();
    bool has_null = false;
    for (const Expr* e : build_exprs) {
      EXPLAINIT_ASSIGN_OR_RETURN(Value v, build_ev.Eval(*e, j));
      kv.push_back(std::move(v));
    }
    const std::string key = EncodeKey(kv, &has_null);
    if (!has_null) build_index_.emplace(key, j);
  }
  build_matched_.assign(build_table_.num_rows(), false);
  stats_.detail = std::string("build=") + (build_left_ ? "left" : "right") +
                  " rows=" + std::to_string(build_table_.num_rows());
  return Status::OK();
}

Result<ColumnBatch> HashJoinOperator::FinishFullOuter(bool* eof) {
  outer_emitted_ = true;
  // Build-side rows that never matched, padded with nulls on the probe
  // side. The build side is `right` for outer joins (no swap), so pads go
  // on the left.
  std::vector<std::vector<Value>> cols(schema_.num_fields());
  size_t rows = 0;
  for (size_t j = 0; j < build_table_.num_rows(); ++j) {
    if (build_matched_[j]) continue;
    for (size_t c = 0; c < left_width_; ++c) cols[c].push_back(Value::Null());
    for (size_t c = 0; c < right_width_; ++c) {
      cols[left_width_ + c].push_back(build_table_.At(j, c));
    }
    ++rows;
  }
  ColumnBatch out(&schema_, rows);
  for (auto& col : cols) out.AddOwnedColumn(std::move(col));
  *eof = false;
  return out;
}

Result<ColumnBatch> HashJoinOperator::NextImpl(bool* eof) {
  if (probe_done_) {
    if (join_->type == JoinType::kFullOuter && !outer_emitted_) {
      return FinishFullOuter(eof);
    }
    *eof = true;
    return ColumnBatch{};
  }
  Operator* probe = build_left_ ? right_ : left_;
  while (true) {
    bool probe_eof = false;
    EXPLAINIT_ASSIGN_OR_RETURN(ColumnBatch batch, probe->Next(&probe_eof));
    if (probe_eof) {
      probe_done_ = true;
      if (join_->type == JoinType::kFullOuter && !outer_emitted_) {
        return FinishFullOuter(eof);
      }
      *eof = true;
      return ColumnBatch{};
    }
    Evaluator probe_ev(&batch, functions_);

    // Assemble all candidate rows for this probe batch (column-wise),
    // remembering which (probe row, build row) produced each candidate.
    std::vector<std::vector<Value>> cand(schema_.num_fields());
    std::vector<uint32_t> cand_probe;
    std::vector<size_t> cand_build;
    std::vector<Value> kv;
    for (size_t i = 0; i < batch.num_rows(); ++i) {
      kv.clear();
      bool has_null = false;
      for (const Expr* e : probe_exprs_) {
        EXPLAINIT_ASSIGN_OR_RETURN(Value v, probe_ev.Eval(*e, i));
        kv.push_back(std::move(v));
      }
      const std::string key = EncodeKey(kv, &has_null);
      if (has_null) continue;
      auto [lo, hi] = build_index_.equal_range(key);
      for (auto it = lo; it != hi; ++it) {
        const size_t j = it->second;
        if (build_left_) {
          for (size_t c = 0; c < left_width_; ++c) {
            cand[c].push_back(build_table_.At(j, c));
          }
          for (size_t c = 0; c < right_width_; ++c) {
            cand[left_width_ + c].push_back(batch.At(i, c));
          }
        } else {
          for (size_t c = 0; c < left_width_; ++c) {
            cand[c].push_back(batch.At(i, c));
          }
          for (size_t c = 0; c < right_width_; ++c) {
            cand[left_width_ + c].push_back(build_table_.At(j, c));
          }
        }
        cand_probe.push_back(static_cast<uint32_t>(i));
        cand_build.push_back(j);
      }
    }
    ColumnBatch cand_batch(&schema_, cand_probe.size());
    for (auto& col : cand) cand_batch.AddOwnedColumn(std::move(col));

    // Residual conjuncts filter the candidates; only passing rows count
    // as matches.
    std::vector<uint32_t> kept;
    std::vector<bool> probe_matched(batch.num_rows(), false);
    Evaluator cand_ev(&cand_batch, functions_);
    for (size_t k = 0; k < cand_batch.num_rows(); ++k) {
      bool ok = true;
      for (const Expr* r : keys_.residual) {
        EXPLAINIT_ASSIGN_OR_RETURN(Value v, cand_ev.Eval(*r, k));
        if (v.is_null() || !v.AsBool()) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      kept.push_back(static_cast<uint32_t>(k));
      probe_matched[cand_probe[k]] = true;
      build_matched_[cand_build[k]] = true;
    }
    ColumnBatch out = cand_batch.Gather(kept);
    out.set_schema(&schema_);

    // Pad unmatched probe rows for LEFT / FULL OUTER (probe side is the
    // left input for those join types).
    if (join_->type == JoinType::kLeft ||
        join_->type == JoinType::kFullOuter) {
      std::vector<std::vector<Value>> pad(schema_.num_fields());
      size_t pad_rows = 0;
      for (size_t i = 0; i < batch.num_rows(); ++i) {
        if (probe_matched[i]) continue;
        for (size_t c = 0; c < left_width_; ++c) {
          pad[c].push_back(batch.At(i, c));
        }
        for (size_t c = 0; c < right_width_; ++c) {
          pad[left_width_ + c].push_back(Value::Null());
        }
        ++pad_rows;
      }
      if (pad_rows > 0) {
        // Merge kept candidates and pads into one owned batch.
        std::vector<std::vector<Value>> merged(schema_.num_fields());
        for (size_t c = 0; c < schema_.num_fields(); ++c) {
          merged[c].reserve(out.num_rows() + pad_rows);
          const Value* src = out.column(c);
          merged[c].assign(src, src + out.num_rows());
          for (auto& v : pad[c]) merged[c].push_back(std::move(v));
        }
        ColumnBatch with_pads(&schema_, out.num_rows() + pad_rows);
        for (auto& col : merged) with_pads.AddOwnedColumn(std::move(col));
        out = std::move(with_pads);
      }
    }
    if (out.num_rows() == 0) continue;  // fully filtered batch: pull more
    *eof = false;
    return out;
  }
}

}  // namespace explainit::sql
