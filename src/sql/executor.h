// SQL executor: interprets a parsed SelectStatement over catalog tables.
//
// Join strategy mirrors §4.2's "broadcast join" optimisation: equi-join
// conditions execute as hash joins with the build (broadcast) side chosen
// as the smaller input; non-equi conditions fall back to nested loops.
#pragma once

#include <string_view>

#include "common/result.h"
#include "sql/ast.h"
#include "sql/catalog.h"
#include "sql/functions.h"
#include "table/table.h"

namespace explainit::sql {

/// Execution statistics for observability and the scalability benches.
struct ExecStats {
  size_t tables_scanned = 0;
  size_t rows_scanned = 0;
  size_t hash_joins = 0;
  size_t nested_loop_joins = 0;
  size_t rows_output = 0;
};

/// Executes SELECT statements against a catalog.
class Executor {
 public:
  Executor(const Catalog* catalog, const FunctionRegistry* functions)
      : catalog_(catalog), functions_(functions) {}

  /// Parses and executes `sql`.
  Result<table::Table> Query(std::string_view sql);

  /// Executes an already-parsed statement.
  Result<table::Table> Execute(const SelectStatement& stmt);

  const ExecStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ExecStats{}; }

 private:
  Result<table::Table> ExecuteSingle(const SelectStatement& stmt);
  Result<table::Table> ResolveFrom(const SelectStatement& stmt);
  Result<table::Table> ExecuteJoin(table::Table left, const JoinClause& join,
                                   const std::string& right_name);
  Result<table::Table> Project(const table::Table& input,
                               const SelectStatement& stmt);
  Result<table::Table> Aggregate(const table::Table& input,
                                 const SelectStatement& stmt);
  Result<table::Table> OrderAndLimit(table::Table output,
                                     const table::Table& preprojection,
                                     const SelectStatement& stmt,
                                     bool aggregated);

  const Catalog* catalog_;
  const FunctionRegistry* functions_;
  ExecStats stats_;
};

/// Renames every field of `t` to "qualifier.name" (skipping fields already
/// containing a dot). Used to scope join inputs.
table::Table QualifySchema(table::Table t, const std::string& qualifier);

}  // namespace explainit::sql
