// SQL executor: plans a parsed SelectStatement (sql/planner.h) into a
// physical operator tree (sql/operators/) and drives the pull-based,
// vectorised pipeline to a materialised result table.
//
// Join strategy mirrors §4.2's "broadcast join" optimisation: equi-join
// conditions execute as hash joins with the build (broadcast) side chosen
// as the smaller input; non-equi conditions fall back to nested loops.
// Time-range, metric and tag predicates push down into hint-aware
// catalog providers (tsdb::SeriesStore scans).
#pragma once

#include <string_view>

#include "common/result.h"
#include "sql/ast.h"
#include "sql/catalog.h"
#include "sql/functions.h"
#include "sql/operators/operator.h"
#include "table/table.h"

namespace explainit::sql {

/// Executes SELECT statements against a catalog. Engines hold one
/// executor for their lifetime: the scalar ExecStats counters accumulate
/// across queries, and last_stats() breaks down the most recent one.
class Executor {
 public:
  Executor(const Catalog* catalog, const FunctionRegistry* functions)
      : catalog_(catalog), functions_(functions) {}

  /// Parses and executes `sql`.
  Result<table::Table> Query(std::string_view sql);

  /// Executes an already-parsed statement.
  Result<table::Table> Execute(const SelectStatement& stmt);

  /// Cumulative counters since construction / ResetStats(). The
  /// `operators` breakdown always describes the most recent query.
  const ExecStats& stats() const { return stats_; }

  /// Counters and per-operator breakdown of the most recent query only.
  const ExecStats& last_stats() const { return last_stats_; }

  void ResetStats() {
    stats_ = ExecStats{};
    last_stats_ = ExecStats{};
  }

 private:
  const Catalog* catalog_;
  const FunctionRegistry* functions_;
  ExecStats stats_;       // cumulative
  ExecStats last_stats_;  // most recent query
};

}  // namespace explainit::sql
