// SQL executor: plans a parsed SelectStatement (sql/planner.h) into a
// physical operator tree (sql/operators/) and drives the pull-based,
// vectorised pipeline to a materialised result table.
//
// Join strategy mirrors §4.2's "broadcast join" optimisation: equi-join
// conditions execute as hash joins with the build (broadcast) side chosen
// as the smaller input; non-equi conditions fall back to nested loops.
// Time-range, metric and tag predicates push down into hint-aware
// catalog providers (tsdb::SeriesStore scans) — on both sides of joins.
//
// Parallelism: set_parallelism(n) switches Filter/Project/HashAggregate
// to their morsel-parallel paths, HashJoin to its partitioned
// build/probe, SortLimit to its sharded sort, and the final drain to
// chunked column assembly — all over a *borrowed* worker pool, by
// default the process-wide exec::WorkerPool::Global() shared with every
// other executor, store scan and ranking fan-out (n == 1 keeps the
// streaming single-threaded operators; n == 0 means hardware
// concurrency). Join, sort and materialisation output is
// byte-identical across levels; aggregation is identical up to
// floating-point summation order. The differential suite pins both.
#pragma once

#include <memory>
#include <string_view>

#include "common/result.h"
#include "exec/cancel.h"
#include "exec/worker_pool.h"
#include "sql/ast.h"
#include "sql/catalog.h"
#include "sql/exec_context.h"
#include "sql/functions.h"
#include "sql/logical_plan.h"
#include "sql/operators/operator.h"
#include "table/table.h"

namespace explainit::sql {

/// Executes SELECT statements against a catalog. Engines hold one
/// executor for their lifetime: the scalar ExecStats counters accumulate
/// across queries, and last_stats() breaks down the most recent one.
class Executor {
 public:
  /// `pool` is the shared worker pool parallel queries borrow; null means
  /// exec::WorkerPool::Global() (bound on the first parallel query).
  /// Executors never own a pool — a box full of concurrent sessions
  /// shares one process-wide set of workers.
  Executor(const Catalog* catalog, const FunctionRegistry* functions,
           size_t parallelism = 1, exec::WorkerPool* pool = nullptr)
      : catalog_(catalog), functions_(functions), pool_(pool) {
    set_parallelism(parallelism);
  }

  /// Sets the degree of parallelism for subsequent queries. 1 = serial
  /// streaming pipeline; 0 = hardware concurrency.
  void set_parallelism(size_t parallelism);
  size_t parallelism() const { return parallelism_; }

  /// Optimiser knobs for subsequent queries (cost-based join reordering,
  /// aggregate pushdown, COUNT rollup routing — sql/logical_plan.h).
  void set_optimizer(PlannerOptions options) { optimizer_ = options; }
  const PlannerOptions& optimizer() const { return optimizer_; }

  /// Sets the cancellation token subsequent queries check at batch
  /// boundaries (null = none). The token must outlive every query run
  /// while it is installed; callers typically install per query and
  /// clear afterwards.
  void set_cancel_token(const exec::CancelToken* token) {
    ctx_.cancel = token;
  }

  /// Parses and executes `sql` (SELECT statements only; EXPLAIN goes
  /// through the engine's statement API, which plans its sub-selects
  /// here via PlanSelect/ExecuteTree).
  Result<table::Table> Query(std::string_view sql);

  /// Executes an already-parsed statement.
  Result<table::Table> Execute(const SelectStatement& stmt);

  /// Plans a parsed SELECT into a physical operator tree sharing this
  /// executor's catalog, function registry and execution context (so
  /// pushdown, pruning and the morsel-parallel paths apply unchanged).
  /// The statement must outlive the returned tree.
  Result<std::unique_ptr<Operator>> PlanSelect(const SelectStatement& stmt);

  /// Opens and drains an operator tree built against this executor —
  /// PlanSelect output, or an externally assembled root such as core's
  /// Rank operator — materialising the result and recording the same
  /// per-query + cumulative statistics as Execute().
  Result<table::Table> ExecuteTree(Operator* root);

  /// The execution context morsel-parallel operators (and the EXPLAIN
  /// Rank stage) fan out over. Address is stable for the executor's
  /// lifetime; its pool is live whenever parallelism() > 1 and a plan or
  /// tree execution has started.
  const ExecContext* exec_context() const { return &ctx_; }

  /// Cumulative counters since construction / ResetStats(). The
  /// `operators` breakdown always describes the most recent query.
  const ExecStats& stats() const { return stats_; }

  /// Counters and per-operator breakdown of the most recent query only.
  const ExecStats& last_stats() const { return last_stats_; }

  void ResetStats() {
    const size_t p = parallelism_;
    stats_ = ExecStats{};
    last_stats_ = ExecStats{};
    stats_.parallelism = p;
    last_stats_.parallelism = p;
  }

 private:
  /// Binds the shared pool into ctx_ when parallelism_ > 1 (defaulting
  /// pool_ to the process-wide pool on first use).
  void EnsurePool();

  const Catalog* catalog_;
  const FunctionRegistry* functions_;
  size_t parallelism_ = 1;
  exec::WorkerPool* pool_ = nullptr;  // borrowed, never owned
  ExecContext ctx_;
  PlannerOptions optimizer_;
  ExecStats stats_;       // cumulative
  ExecStats last_stats_;  // most recent query
  /// Logical plan of the most recent PlanSelect, consumed by the next
  /// ExecuteTree into last_stats_.plan_text (externally assembled trees
  /// have no logical plan and clear it).
  std::shared_ptr<const LogicalPlan> pending_plan_;
};

}  // namespace explainit::sql
