// The planner's cardinality/cost model. Deliberately coarse: the point is
// to order joins and place aggregates sensibly, not to predict runtimes.
// All estimates are doubles in "rows"; kUnknownRows (< 0) marks a node the
// catalog has no estimate for, and consumers substitute kDefaultRows so a
// single unknown relation does not disable optimisation.
//
// Scan estimates start from Catalog::EstimatedRows (live for store-backed
// tables, see Engine::RegisterStoreTable) and apply fixed selectivity
// factors per pushdown hint (time window, metric glob, tag equality).
// Join estimates use the textbook independence model: the cross product
// of the input estimates times 1/max(|L|,|R|) per distinct equality
// conjunct connecting the two sides. Join *cost* is build + probe +
// output rows — the work a hash join actually does.
#pragma once

#include <cstddef>
#include <cstdint>

#include "tsdb/store.h"

namespace explainit::sql::cost {

/// Sentinel for "the catalog has no estimate".
inline constexpr double kUnknownRows = -1.0;
/// Stand-in row count for relations without an estimate (subqueries,
/// unregistered providers). Big enough that a known-small dimension table
/// sorts before it, small enough that a known-huge fact table sorts after.
inline constexpr double kDefaultRows = 1000.0;

/// Clamps an estimate to at least one row (an empty estimate would zero
/// out every product it participates in and make all orders tie).
double ClampRows(double rows);

/// `rows` if known (>= 0), else kDefaultRows; always clamped to >= 1.
double KnownOrDefault(double rows);

/// Fraction of a table a hinted scan is expected to materialise.
/// A bounded time window keeps 1/4, a metric-name glob 1/5, and each tag
/// equality 1/5 (independent). Resolution hints (rollup tiers) keep
/// 1/min_step: a 60 s tier over 1 s-ish raw data is a 60x reduction, and
/// over-estimating the reduction only ever makes the planner favour the
/// scan that carries the hint, which is the scan that got cheaper.
double ScanSelectivity(const tsdb::ScanHints& hints);

/// Estimated output rows of `left_rows x right_rows` joined across
/// `num_equalities` distinct equality conjuncts. With zero equalities this
/// is the cross product. Inputs may be kUnknownRows.
double JoinOutputRows(double left_rows, double right_rows,
                      size_t num_equalities);

/// Cost of one hash join step: build + probe + output.
double JoinStepCost(double build_rows, double probe_rows, double output_rows);

/// Estimated output rows of a grouping aggregate over `input_rows`
/// (the usual 10x reduction guess).
double AggregateOutputRows(double input_rows);

/// Estimated output rows of a filter over `input_rows` (selectivity 1/2).
double FilterOutputRows(double input_rows);

}  // namespace explainit::sql::cost
