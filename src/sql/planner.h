// The logical -> physical query planner. Turns a parsed SelectStatement
// into a tree of physical operators (src/sql/operators/), applying
// rule-based rewrites on the way down:
//
//   * predicate pushdown — WHERE conjuncts over the time column
//     (ts/timestamp BETWEEN / comparisons), `metric_name = '...'` and
//     `tag['k'] = '...'` become tsdb::ScanHints on the table scan for
//     hint-aware providers (Catalog::SupportsHints). With joins, the
//     top-level WHERE conjuncts are split per join input: a conjunct
//     whose column references all bind to one side's qualifier narrows
//     that side's scan (qualifiers stripped first). The full predicate
//     always stays in the filter: hints shrink what the provider
//     materialises, never what the query means.
//   * rollup resolution hints — a grid-aligned aggregation over a single
//     hinted table (GROUP BY date_trunc(...)/ts - ts % k keys with one
//     SUM/MIN/MAX(value) aggregate kind and tier-aligned time bounds)
//     sets ScanHints::min_step_seconds/rollup, licensing the store to
//     serve sealed segments from its downsampled tiers. Advisory: the
//     store re-proves exactness per segment and falls back to raw.
//   * projection pruning — single-table queries scan only the columns the
//     statement references; join inputs receive the union of the columns
//     referenced under their qualifier plus all unqualified references
//     (which may bind to either side).
//   * join strategy + build side — conditions with an equality conjunct
//     become hash joins, built on the smaller side when row counts are
//     known (the §4.2 broadcast heuristic). Outer joins swap too: the
//     join pads unmatched rows by the actual build side, so orientation
//     only affects cost. Others fall back to nested loops.
//
// An ExecContext with parallelism > 1 plans Filter/Project/HashAggregate
// onto their morsel-parallel paths, a partitioned parallel build/probe
// for HashJoin, and the sharded sort/top-K path for SortLimit.
//
// The planned tree references the statement's AST nodes: the statement
// must outlive execution.
#pragma once

#include <memory>

#include "sql/ast.h"
#include "sql/catalog.h"
#include "sql/exec_context.h"
#include "sql/functions.h"
#include "sql/operators/operator.h"

namespace explainit::sql {

class Planner {
 public:
  Planner(const Catalog* catalog, const FunctionRegistry* functions,
          const ExecContext* ctx = nullptr)
      : catalog_(catalog), functions_(functions), ctx_(ctx) {}

  /// Plans a full statement (UNION ALL chains become a UnionAll root).
  Result<std::unique_ptr<Operator>> Plan(const SelectStatement& stmt) const;

 private:
  Result<std::unique_ptr<Operator>> PlanSingle(
      const SelectStatement& stmt) const;
  Result<std::unique_ptr<Operator>> PlanFrom(const SelectStatement& stmt,
                                             tsdb::ScanHints base_hints,
                                             ExprPtr* residual_where) const;
  Result<std::unique_ptr<Operator>> PlanSource(const TableRef& ref,
                                               const std::string& qualifier,
                                               tsdb::ScanHints hints) const;
  /// Hints for one join input: pushable WHERE conjuncts fully qualified
  /// to `qualifier` (stripped), plus the input's pruned projection.
  tsdb::ScanHints JoinInputHints(const SelectStatement& stmt,
                                 const TableRef& ref,
                                 const std::string& qualifier) const;

  const Catalog* catalog_;
  const FunctionRegistry* functions_;
  const ExecContext* ctx_;
};

}  // namespace explainit::sql
