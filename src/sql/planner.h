// The cost-based query planner. Planning a parsed SelectStatement is now
// three stages:
//
//   1. *Build* — the AST becomes a logical plan IR (sql/logical_plan.h):
//      one LogicalNode per prospective physical operator, in statement
//      order, annotated with cardinality estimates from the live catalog
//      (Catalog::EstimatedRows) and the cost model (sql/cost.h). The
//      single-pass rewrites of the previous planner happen here and are
//      unchanged:
//        * predicate pushdown — WHERE conjuncts over the time column,
//          `metric_name = '...'` and `tag['k'] = '...'` become
//          tsdb::ScanHints on hint-aware scans (per join input, split by
//          qualifier); the full predicate always stays in the filter;
//        * rollup resolution hints — grid-aligned SUM/MIN/MAX(value)
//          aggregations set ScanHints::min_step_seconds/rollup;
//        * projection pruning — scans materialise only referenced columns;
//        * join strategy + build side — equality conjuncts choose hash
//          joins, built on the smaller side when row counts are known.
//   2. *Optimise* — rule passes rewrite the IR (PlannerOptions gates each;
//      `enabled = false` skips the stage, reproducing statement-order
//      plans exactly):
//        * join reordering — left-deep DP over the equality-conjunct join
//          graph (<= kJoinReorderDpLimit relations; greedy beyond),
//          inner/cross joins only, every column reference qualified, and
//          unique aliases; conjuncts re-attach at the earliest join with
//          all sides available. Outer joins and ambiguous references keep
//          statement order.
//        * aggregate pushdown below joins — SUM/COUNT/MIN/MAX/AVG whose
//          arguments live on one relation partially aggregate *below* the
//          join (group keys: that relation's GROUP BY expressions plus its
//          join/filter attributes) and finalise above through rewritten
//          aggregates (COUNT/AVG recombine via the internal __SUM_COUNT).
//        * COUNT rollup routing — grid-aligned COUNT(*)/COUNT(value) over
//          a store-backed table (Catalog::SupportsExactRollups) rewrites
//          to __SUM_COUNT(value) and scans the count rollup tier.
//   3. *Lower* — each LogicalNode maps 1:1 onto the existing physical
//      operators; synthesised AST is owned by the LogicalPlan, which the
//      root operator retains.
//
// The planned tree references the statement's AST nodes: the statement
// must outlive execution. last_plan() exposes the logical plan (printable
// via LogicalPlan::ToString()) of the most recent Plan() call.
#pragma once

#include <memory>

#include "sql/ast.h"
#include "sql/catalog.h"
#include "sql/exec_context.h"
#include "sql/functions.h"
#include "sql/logical_plan.h"
#include "sql/operators/operator.h"

namespace explainit::sql {

class Planner {
 public:
  Planner(const Catalog* catalog, const FunctionRegistry* functions,
          const ExecContext* ctx = nullptr, PlannerOptions options = {})
      : catalog_(catalog),
        functions_(functions),
        ctx_(ctx),
        options_(options) {}

  /// Plans a full statement (UNION ALL chains become a UnionAll root).
  Result<std::unique_ptr<Operator>> Plan(const SelectStatement& stmt) const;

  /// The logical plan behind the most recent successful Plan() call (null
  /// before the first). The lowered operator tree keeps it alive too.
  std::shared_ptr<const LogicalPlan> last_plan() const { return last_plan_; }

  const PlannerOptions& options() const { return options_; }

 private:
  // Stage 1: AST -> logical IR (statement order).
  Result<std::unique_ptr<LogicalNode>> BuildStatement(
      const SelectStatement& stmt, LogicalPlan* plan) const;
  Result<std::unique_ptr<LogicalNode>> BuildSingle(
      const SelectStatement& stmt, LogicalPlan* plan) const;
  Result<std::unique_ptr<LogicalNode>> BuildFrom(const SelectStatement& stmt,
                                                 tsdb::ScanHints base_hints,
                                                 LogicalPlan* plan) const;
  Result<std::unique_ptr<LogicalNode>> BuildSource(
      const TableRef& ref, const std::string& qualifier,
      tsdb::ScanHints hints, LogicalPlan* plan) const;
  /// Hints for one join input: pushable WHERE conjuncts fully qualified
  /// to `qualifier` (stripped), plus the input's pruned projection.
  tsdb::ScanHints JoinInputHints(const SelectStatement& stmt,
                                 const TableRef& ref,
                                 const std::string& qualifier) const;

  // Stage 2: rule passes over one single-select subtree.
  void OptimizeSingle(LogicalNode* root, const SelectStatement& stmt,
                      LogicalPlan* plan) const;
  void ReorderJoins(LogicalNode* root, const SelectStatement& stmt,
                    LogicalPlan* plan) const;
  void PushdownAggregate(LogicalNode* root, const SelectStatement& stmt,
                         LogicalPlan* plan) const;

  // Stage 3: logical IR -> physical operators.
  Result<std::unique_ptr<Operator>> Lower(const LogicalNode& node) const;

  const Catalog* catalog_;
  const FunctionRegistry* functions_;
  const ExecContext* ctx_;
  PlannerOptions options_;
  mutable std::shared_ptr<const LogicalPlan> last_plan_;
};

}  // namespace explainit::sql
