// Recursive-descent SQL parser producing the AST of ast.h.
#pragma once

#include <memory>

#include "common/result.h"
#include "sql/ast.h"
#include "sql/lexer.h"

namespace explainit::sql {

/// Parses a full statement: a SELECT (with optional UNION ALL chain) or
/// an EXPLAIN statement. Fails with ParseError carrying the offending
/// token's line/column.
Result<std::unique_ptr<Statement>> ParseStatement(std::string_view query);

/// Parses a single SELECT statement (with optional UNION ALL chain).
/// EXPLAIN input is rejected — statement-level callers use
/// ParseStatement. Fails with ParseError carrying the offending token
/// position.
Result<std::unique_ptr<SelectStatement>> Parse(std::string_view query);

/// Parses a standalone scalar expression (used by tests and the engine's
/// family-pattern mini-queries).
Result<ExprPtr> ParseExpression(std::string_view text);

}  // namespace explainit::sql
