// The planner's logical plan IR. Planning is now three stages
// (sql/planner.h): the AST is first *built* into this tree of logical
// nodes (statement order, one node per prospective physical operator),
// then *optimised* by rule passes that rewrite the tree (join reordering,
// aggregate pushdown below joins, COUNT rollup routing), and finally
// *lowered* node-by-node onto the existing physical operators.
//
// Nodes carry per-node cardinality (`est_rows`) and cumulative cost
// (`est_cost`) annotations from sql/cost.h, and the whole plan prints via
// LogicalPlan::ToString() — surfaced as ExecStats::plan_text so plan
// shapes are debuggable and golden-testable.
//
// Rewrites synthesise AST (statements for partial aggregates, join
// clauses and expressions for reordered joins); the LogicalPlan owns all
// of it in arenas, and the lowered operator tree retains the plan
// (Operator::RetainArtifact), so synthesised AST lives exactly as long
// as the operators that reference it.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sql/ast.h"
#include "tsdb/store.h"

namespace explainit::sql {

/// Optimiser knobs, threaded Engine -> Executor -> Planner. All passes
/// default on; `enabled = false` reproduces the pre-optimiser
/// statement-order plans exactly (the differential harness runs both).
struct PlannerOptions {
  bool enabled = true;
  /// Cost-based join reordering (DP <= kJoinReorderDpLimit relations,
  /// greedy beyond). Inner/cross joins only.
  bool reorder_joins = true;
  /// Partial-aggregate pushdown below inner/cross joins.
  bool pushdown_aggregates = true;
  /// COUNT(*)/COUNT(value) routing onto count rollup tiers for providers
  /// with Catalog::SupportsExactRollups.
  bool count_rollups = true;
};

/// Relations up to which join reordering runs exhaustive left-deep DP;
/// larger join graphs fall back to a greedy order.
inline constexpr size_t kJoinReorderDpLimit = 6;

enum class LogicalOp : uint8_t {
  kScan,       // catalog table (hints + projection)
  kSubquery,   // derived table: child plan re-qualified under an alias
  kSingleRow,  // FROM-less SELECT
  kFilter,     // residual WHERE
  kJoin,       // one left-deep join step
  kAggregate,  // HashAggregate over the child
  kProject,    // non-aggregated SELECT list
  kSortLimit,  // ORDER BY / LIMIT
  kUnion,      // UNION ALL branches
};

struct LogicalNode {
  explicit LogicalNode(LogicalOp o) : op(o) {}

  LogicalOp op;
  std::vector<std::unique_ptr<LogicalNode>> children;

  /// Estimated output rows (cost::kUnknownRows when the catalog offers no
  /// estimate) and cumulative cost of producing them.
  double est_rows = -1.0;
  double est_cost = 0.0;

  // kScan
  std::string table_name;
  std::string qualifier;  // also kSubquery ("" = unqualified)
  tsdb::ScanHints hints;
  std::optional<std::vector<std::string>> projection;

  // kFilter: owned by the source statement or the plan arena; lowering
  // clones it into the FilterOperator.
  const Expr* predicate = nullptr;

  // kJoin: operators read only join->type and join->condition; synthesised
  // clauses (plan arena) leave join->right defaulted.
  const JoinClause* join = nullptr;
  bool equi = false;        // hash join vs nested loop
  bool build_left = false;  // hash join build side
  bool reordered = false;   // this join was moved off statement order

  // kAggregate / kProject / kSortLimit / kSubquery: the statement the
  // physical operator evaluates (original AST or plan arena).
  const SelectStatement* stmt = nullptr;
  bool partial = false;     // kAggregate pushed below a join
  bool retain = false;      // kAggregate/kProject keep pre-projection rows
  bool aggregated = false;  // kSortLimit input is an aggregate
};

/// One planned statement: the logical tree, the arena of AST the optimiser
/// synthesised, and counters for the rewrites that fired.
class LogicalPlan {
 public:
  std::unique_ptr<LogicalNode> root;

  // Arena: AST owned by the plan (referenced by nodes and, after
  // lowering, by physical operators).
  std::vector<std::unique_ptr<SelectStatement>> owned_statements;
  std::vector<std::unique_ptr<JoinClause>> owned_joins;
  std::vector<ExprPtr> owned_exprs;

  // Rewrite counters (statements whose join order changed / partial
  // aggregates placed below joins / COUNT->rollup-tier rewrites).
  size_t joins_reordered = 0;
  size_t agg_pushdowns = 0;
  size_t count_rollup_rewrites = 0;

  /// Indented plan tree, one node per line, root first. Example:
  ///   SortLimit keys=1
  ///     Aggregate group_by=[h.grp] rows~24
  ///       HashJoin inner on (f.tag['host'] = h.host) build=right
  ///                rows~240 [reordered]
  ///         ...
  std::string ToString() const;

  SelectStatement* AddStatement(std::unique_ptr<SelectStatement> stmt) {
    owned_statements.push_back(std::move(stmt));
    return owned_statements.back().get();
  }
  JoinClause* AddJoin(std::unique_ptr<JoinClause> join) {
    owned_joins.push_back(std::move(join));
    return owned_joins.back().get();
  }
  const Expr* AddExpr(ExprPtr expr) {
    owned_exprs.push_back(std::move(expr));
    return owned_exprs.back().get();
  }
};

/// Deep clone of one SELECT branch (items/from/joins/where/group
/// by/having/order by/limit). UNION ALL continuations are *not* cloned:
/// rewrites run per branch.
std::unique_ptr<SelectStatement> CloneSelect(const SelectStatement& stmt);

/// Structural expression identity for the optimiser: ToString of a clone
/// with every column reference's qualifier and column lowercased (SQL
/// identifiers are case-insensitive; literals are not touched).
std::string NormalizedExprText(const Expr& e);

}  // namespace explainit::sql
