#include "sql/ast.h"

#include "common/strings.h"

namespace explainit::sql {

bool IsAggregateFunction(std::string_view upper_name) {
  return upper_name == "AVG" || upper_name == "SUM" || upper_name == "MIN" ||
         upper_name == "MAX" || upper_name == "COUNT" ||
         upper_name == "STDDEV" || upper_name == "PERCENTILE" ||
         upper_name == "__SUM_COUNT";
}

namespace {
const char* BinaryOpText(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return " + ";
    case BinaryOp::kSub: return " - ";
    case BinaryOp::kMul: return " * ";
    case BinaryOp::kDiv: return " / ";
    case BinaryOp::kMod: return " % ";
    case BinaryOp::kEq: return " = ";
    case BinaryOp::kNe: return " != ";
    case BinaryOp::kLt: return " < ";
    case BinaryOp::kLe: return " <= ";
    case BinaryOp::kGt: return " > ";
    case BinaryOp::kGe: return " >= ";
    case BinaryOp::kAnd: return " AND ";
    case BinaryOp::kOr: return " OR ";
    case BinaryOp::kLike: return " LIKE ";
  }
  return " ? ";
}
}  // namespace

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.type() == table::DataType::kString
                 ? "'" + literal.AsString() + "'"
                 : literal.ToString();
    case ExprKind::kColumnRef:
      return qualifier.empty() ? column : qualifier + "." + column;
    case ExprKind::kStar:
      return "*";
    case ExprKind::kFunction: {
      std::string out = function_name + "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i]->ToString();
      }
      return out + ")";
    }
    case ExprKind::kBinary:
      return "(" + left->ToString() + BinaryOpText(binary_op) +
             right->ToString() + ")";
    case ExprKind::kUnary:
      return unary_op == UnaryOp::kNot ? "NOT " + left->ToString()
                                       : "-" + left->ToString();
    case ExprKind::kSubscript:
      return left->ToString() + "[" + right->ToString() + "]";
    case ExprKind::kInList: {
      std::string out = left->ToString() + (negated ? " NOT IN (" : " IN (");
      for (size_t i = 0; i < list.size(); ++i) {
        if (i > 0) out += ", ";
        out += list[i]->ToString();
      }
      return out + ")";
    }
    case ExprKind::kBetween:
      return left->ToString() + (negated ? " NOT BETWEEN " : " BETWEEN ") +
             between_lo->ToString() + " AND " + between_hi->ToString();
    case ExprKind::kIsNull:
      return left->ToString() + (negated ? " IS NOT NULL" : " IS NULL");
    case ExprKind::kCase: {
      std::string out = "CASE";
      for (const CaseBranch& b : case_branches) {
        out += " WHEN " + b.condition->ToString() + " THEN " +
               b.result->ToString();
      }
      if (case_else) out += " ELSE " + case_else->ToString();
      return out + " END";
    }
  }
  return "?";
}

bool Expr::ContainsAggregate() const {
  if (kind == ExprKind::kFunction && IsAggregateFunction(function_name)) {
    return true;
  }
  auto check = [](const ExprPtr& e) {
    return e != nullptr && e->ContainsAggregate();
  };
  if (check(left) || check(right) || check(between_lo) || check(between_hi) ||
      check(case_else)) {
    return true;
  }
  for (const ExprPtr& a : args) {
    if (check(a)) return true;
  }
  for (const ExprPtr& a : list) {
    if (check(a)) return true;
  }
  for (const CaseBranch& b : case_branches) {
    if (check(b.condition) || check(b.result)) return true;
  }
  return false;
}

ExprPtr Expr::Clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->literal = literal;
  out->qualifier = qualifier;
  out->column = column;
  out->function_name = function_name;
  for (const ExprPtr& a : args) out->args.push_back(a->Clone());
  out->binary_op = binary_op;
  out->unary_op = unary_op;
  if (left) out->left = left->Clone();
  if (right) out->right = right->Clone();
  for (const ExprPtr& a : list) out->list.push_back(a->Clone());
  if (between_lo) out->between_lo = between_lo->Clone();
  if (between_hi) out->between_hi = between_hi->Clone();
  out->negated = negated;
  for (const CaseBranch& b : case_branches) {
    CaseBranch nb;
    nb.condition = b.condition->Clone();
    nb.result = b.result->Clone();
    out->case_branches.push_back(std::move(nb));
  }
  if (case_else) out->case_else = case_else->Clone();
  return out;
}

namespace {

std::string TableRefToSql(const TableRef& ref) {
  std::string out = ref.subquery != nullptr
                        ? "(" + ToSql(*ref.subquery) + ")"
                        : ref.table_name;
  if (!ref.alias.empty()) out += " AS " + ref.alias;
  return out;
}

}  // namespace

std::string ToSql(const SelectStatement& stmt) {
  std::string out = "SELECT ";
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    if (i > 0) out += ", ";
    const SelectItem& item = stmt.items[i];
    if (item.is_star) {
      out += "*";
      continue;
    }
    out += item.expr->ToString();
    if (!item.alias.empty()) out += " AS " + item.alias;
  }
  if (stmt.from.has_value()) {
    out += " FROM " + TableRefToSql(*stmt.from);
    for (const JoinClause& join : stmt.joins) {
      switch (join.type) {
        case JoinType::kInner: out += " JOIN "; break;
        case JoinType::kLeft: out += " LEFT JOIN "; break;
        case JoinType::kFullOuter: out += " FULL OUTER JOIN "; break;
        case JoinType::kCross: out += " CROSS JOIN "; break;
      }
      out += TableRefToSql(join.right);
      if (join.condition != nullptr) {
        out += " ON " + join.condition->ToString();
      }
    }
  }
  if (stmt.where != nullptr) out += " WHERE " + stmt.where->ToString();
  if (!stmt.group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < stmt.group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += stmt.group_by[i]->ToString();
    }
  }
  if (stmt.having != nullptr) out += " HAVING " + stmt.having->ToString();
  if (!stmt.order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < stmt.order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += stmt.order_by[i].expr->ToString();
      if (!stmt.order_by[i].ascending) out += " DESC";
    }
  }
  if (stmt.limit.has_value()) {
    out += " LIMIT " + std::to_string(*stmt.limit);
  }
  for (const auto& next : stmt.union_all) {
    out += " UNION ALL " + ToSql(*next);
  }
  return out;
}

std::string ToSql(const ExplainStatement& stmt) {
  std::string out = "EXPLAIN (" + ToSql(*stmt.target) + ")";
  if (stmt.given_pseudocause) {
    out += " GIVEN PSEUDOCAUSE";
  } else if (stmt.given != nullptr) {
    out += " GIVEN (" + ToSql(*stmt.given) + ")";
  }
  out += " USING (" + ToSql(*stmt.search_space) + ")";
  if (!stmt.scorer.empty()) out += " SCORE BY '" + stmt.scorer + "'";
  if (stmt.top_k.has_value()) out += " TOP " + std::to_string(*stmt.top_k);
  if (stmt.between_start.has_value() && stmt.between_end.has_value()) {
    out += " BETWEEN " + std::to_string(*stmt.between_start) + " AND " +
           std::to_string(*stmt.between_end);
  }
  if (stmt.every_seconds.has_value()) {
    out += " EVERY " + FormatDuration(*stmt.every_seconds);
  }
  if (stmt.triggered) out += " TRIGGERED";
  if (!stmt.into_table.empty()) out += " INTO " + stmt.into_table;
  return out;
}

std::string ToSql(const DropMonitorStatement& stmt) {
  return "DROP MONITOR " + stmt.name;
}

std::string ToSql(const ShowMonitorsStatement&) { return "SHOW MONITORS"; }

std::string ToSql(const Statement& stmt) {
  switch (stmt.kind()) {
    case StatementKind::kExplain:
      return ToSql(static_cast<const ExplainStatement&>(stmt));
    case StatementKind::kDropMonitor:
      return ToSql(static_cast<const DropMonitorStatement&>(stmt));
    case StatementKind::kShowMonitors:
      return ToSql(static_cast<const ShowMonitorsStatement&>(stmt));
    case StatementKind::kSelect:
      break;
  }
  return ToSql(static_cast<const SelectStatement&>(stmt));
}

std::string FormatDuration(int64_t seconds) {
  constexpr int64_t kHour = kSecondsPerMinute * kMinutesPerHour;
  constexpr int64_t kDay = kSecondsPerMinute * kMinutesPerDay;
  if (seconds != 0 && seconds % kDay == 0) {
    return std::to_string(seconds / kDay) + "d";
  }
  if (seconds != 0 && seconds % kHour == 0) {
    return std::to_string(seconds / kHour) + "h";
  }
  if (seconds != 0 && seconds % kSecondsPerMinute == 0) {
    return std::to_string(seconds / kSecondsPerMinute) + "m";
  }
  return std::to_string(seconds) + "s";
}

ExprPtr MakeLiteral(table::Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeColumnRef(std::string qualifier, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->qualifier = std::move(qualifier);
  e->column = std::move(column);
  return e;
}

ExprPtr MakeStar() {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kStar;
  return e;
}

ExprPtr MakeFunction(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFunction;
  e->function_name = ToUpper(name);
  e->args = std::move(args);
  return e;
}

ExprPtr MakeBinary(BinaryOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->binary_op = op;
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

ExprPtr MakeUnary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->unary_op = op;
  e->left = std::move(operand);
  return e;
}

ExprPtr MakeSubscript(ExprPtr base, ExprPtr index) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kSubscript;
  e->left = std::move(base);
  e->right = std::move(index);
  return e;
}

}  // namespace explainit::sql
