// Row-at-a-time expression evaluation against a Table. LAG windows see the
// whole table (rows are time-ordered by convention, matching the paper's
// "user could specify lagged features ... by using LAG function in SQL").
#pragma once

#include "common/result.h"
#include "sql/ast.h"
#include "sql/functions.h"
#include "table/table.h"

namespace explainit::sql {

/// Evaluates expressions against rows of one input table.
class Evaluator {
 public:
  Evaluator(const table::Table* input, const FunctionRegistry* functions)
      : input_(input), functions_(functions) {}

  /// Evaluates `expr` at `row`. Aggregate calls are an error here; the
  /// executor handles them at the GROUP BY level.
  Result<table::Value> Eval(const Expr& expr, size_t row) const;

  /// Resolves a column reference against the input schema:
  ///   - qualified a.b: field "a.b", else field "b" (single-relation case);
  ///   - unqualified b: field "b", else a unique field ending in ".b".
  Result<size_t> ResolveColumn(const Expr& expr) const;

  const table::Table* input() const { return input_; }

 private:
  const table::Table* input_;
  const FunctionRegistry* functions_;
};

/// True when the value of a LIKE pattern matches the text (SQL '%'/'_'
/// wildcards).
bool SqlLikeMatch(const std::string& pattern, const std::string& text);

}  // namespace explainit::sql
