// Row-at-a-time expression evaluation against a Table or a ColumnBatch.
// LAG windows see the whole input (rows are time-ordered by convention,
// matching the paper's "user could specify lagged features ... by using
// LAG function in SQL"); the planner materialises full-table batches for
// stages whose expressions contain LAG.
#pragma once

#include "common/result.h"
#include "sql/ast.h"
#include "sql/functions.h"
#include "table/column_batch.h"
#include "table/table.h"

namespace explainit::sql {

/// Evaluates expressions against rows of one input relation.
class Evaluator {
 public:
  Evaluator(const table::Table* input, const FunctionRegistry* functions)
      : schema_(&input->schema()), table_(input), functions_(functions) {}

  Evaluator(const table::ColumnBatch* batch, const FunctionRegistry* functions)
      : schema_(&batch->schema()), batch_(batch), functions_(functions) {}

  /// Schema-only evaluator: ResolveColumn works, Eval of column refs does
  /// not (used by the planner/join operators to classify expressions).
  Evaluator(const table::Schema* schema, const FunctionRegistry* functions)
      : schema_(schema), functions_(functions) {}

  /// Evaluates `expr` at `row`. Aggregate calls are an error here; the
  /// HashAggregate operator handles them at the GROUP BY level.
  Result<table::Value> Eval(const Expr& expr, size_t row) const;

  /// Resolves a column reference against the input schema:
  ///   - qualified a.b: field "a.b", else field "b" (single-relation case);
  ///   - unqualified b: field "b", else a unique field ending in ".b".
  Result<size_t> ResolveColumn(const Expr& expr) const;

  const table::Schema& schema() const { return *schema_; }
  size_t num_rows() const {
    return table_ != nullptr ? table_->num_rows()
           : batch_ != nullptr ? batch_->num_rows()
                               : 0;
  }

 private:
  const table::Value& Cell(size_t row, size_t col) const {
    return table_ != nullptr ? table_->At(row, col) : batch_->At(row, col);
  }

  const table::Schema* schema_;
  const table::Table* table_ = nullptr;
  const table::ColumnBatch* batch_ = nullptr;
  const FunctionRegistry* functions_;
};

/// True when the value of a LIKE pattern matches the text (SQL '%'/'_'
/// wildcards).
bool SqlLikeMatch(const std::string& pattern, const std::string& text);

}  // namespace explainit::sql
