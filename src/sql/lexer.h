// SQL lexer. Tokenises the dialect used throughout Appendix C: SELECT /
// FROM / WHERE / GROUP BY / ORDER BY / JOIN / UNION / BETWEEN / IN / LIKE,
// map subscripts (tag['k']), string literals, numbers and operators.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"

namespace explainit::sql {

enum class TokenType {
  kIdentifier,   // unquoted name (case preserved; matching is insensitive)
  kKeyword,      // recognised SQL keyword, normalised to upper case
  kString,       // 'single quoted'
  kNumber,       // integer or decimal literal
  kOperator,     // = != < <= > >= + - * / % ( ) , . [ ]
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // normalised: keywords upper-cased, strings unquoted
  size_t position = 0;  // byte offset in the query (for error messages)

  bool IsKeyword(std::string_view kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsOperator(std::string_view op) const {
    return type == TokenType::kOperator && text == op;
  }
};

/// Splits `query` into tokens; fails with ParseError on malformed input
/// (unterminated string, unexpected character).
Result<std::vector<Token>> Tokenize(std::string_view query);

/// True if `word` (upper-cased) is a reserved keyword.
bool IsReservedKeyword(std::string_view upper_word);

}  // namespace explainit::sql
