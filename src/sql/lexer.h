// SQL lexer. Tokenises the dialect used throughout Appendix C: SELECT /
// FROM / WHERE / GROUP BY / ORDER BY / JOIN / UNION / BETWEEN / IN / LIKE,
// the EXPLAIN statement keywords (EXPLAIN / GIVEN / USING / PSEUDOCAUSE /
// SCORE / TOP), map subscripts (tag['k']), string literals, numbers and
// operators.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"

namespace explainit::sql {

enum class TokenType {
  kIdentifier,   // unquoted name (case preserved; matching is insensitive)
  kKeyword,      // recognised SQL keyword, normalised to upper case
  kString,       // 'single quoted'
  kNumber,       // integer or decimal literal
  kDuration,     // duration literal: integer + unit (30s, 5m, 1h, 2d)
  kOperator,     // = != < <= > >= + - * / % ( ) , . [ ]
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // normalised: keywords upper-cased, strings unquoted
  std::string raw;    // original spelling (keywords only; empty otherwise)
  int64_t seconds = 0;  // kDuration only: the literal converted to seconds
  size_t position = 0;  // byte offset in the query
  size_t line = 1;      // 1-based line of `position` (for error messages)
  size_t column = 1;    // 1-based column within that line

  bool IsKeyword(std::string_view kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsOperator(std::string_view op) const {
    return type == TokenType::kOperator && text == op;
  }
};

/// Splits `query` into tokens; fails with ParseError on malformed input
/// (unterminated string, unexpected character, malformed duration unit).
/// A number immediately followed by a letter lexes as a duration literal:
/// a plain-integer magnitude plus a unit in {s, m, h, d}
/// (case-insensitive). `30x` or `1.5h` are ParseErrors with line/column.
Result<std::vector<Token>> Tokenize(std::string_view query);

/// True if `word` (upper-cased) is a reserved keyword.
bool IsReservedKeyword(std::string_view upper_word);

/// True for the EXPLAIN/monitor statement clause keywords (EXPLAIN, GIVEN,
/// USING, PSEUDOCAUSE, SCORE, TOP, EVERY, TRIGGERED, INTO, DROP, SHOW,
/// MONITOR, MONITORS). They are reserved so statement clause boundaries
/// parse unambiguously, but the parser still accepts them as plain
/// identifiers in expression and alias positions — the Score Table itself
/// has a `score` column that queries must keep addressing.
bool IsSoftKeyword(std::string_view upper_word);

}  // namespace explainit::sql
