#include "sql/cost.h"

#include <algorithm>

namespace explainit::sql::cost {

double ClampRows(double rows) { return std::max(rows, 1.0); }

double KnownOrDefault(double rows) {
  return ClampRows(rows >= 0.0 ? rows : kDefaultRows);
}

double ScanSelectivity(const tsdb::ScanHints& hints) {
  double factor = 1.0;
  if (hints.range.has_value()) factor *= 0.25;
  if (!hints.metric_glob.empty()) factor *= 0.2;
  for (size_t i = 0; i < hints.tag_filter.size(); ++i) factor *= 0.2;
  if (hints.min_step_seconds > 1) {
    factor /= static_cast<double>(hints.min_step_seconds);
  }
  return factor;
}

double JoinOutputRows(double left_rows, double right_rows,
                      size_t num_equalities) {
  const double l = KnownOrDefault(left_rows);
  const double r = KnownOrDefault(right_rows);
  double rows = l * r;
  for (size_t i = 0; i < num_equalities; ++i) rows /= std::max(l, r);
  return ClampRows(rows);
}

double JoinStepCost(double build_rows, double probe_rows,
                    double output_rows) {
  return KnownOrDefault(build_rows) + KnownOrDefault(probe_rows) +
         ClampRows(output_rows);
}

double AggregateOutputRows(double input_rows) {
  if (input_rows < 0.0) return kUnknownRows;
  return ClampRows(input_rows * 0.1);
}

double FilterOutputRows(double input_rows) {
  if (input_rows < 0.0) return kUnknownRows;
  return ClampRows(input_rows * 0.5);
}

}  // namespace explainit::sql::cost
