// Scalar function registry. Builtins cover the Appendix C workload
// (CONCAT, SPLIT, GREATEST, ...); users add UDFs (e.g. HOSTGROUP) exactly
// as the paper describes for Spark SQL.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "table/value.h"

namespace explainit::sql {

/// A scalar SQL function: pure mapping from argument values to a value.
using ScalarFn =
    std::function<Result<table::Value>(const std::vector<table::Value>&)>;

/// The bucket width DATE_TRUNC(unit, ts) floors to, in seconds; 0 for
/// unsupported units. Shared with the planner's grid-shape detection.
int64_t DateTruncStepSeconds(const std::string& unit);

/// Case-insensitive name -> function map. Copyable; engines typically hold
/// one registry seeded with the builtins plus domain UDFs.
class FunctionRegistry {
 public:
  /// A registry pre-loaded with every builtin.
  static FunctionRegistry Builtins();

  /// Registers (or replaces) a function under an upper-cased name.
  void Register(const std::string& name, ScalarFn fn);

  /// Looks up a function; nullptr when unknown.
  const ScalarFn* Find(const std::string& name) const;

  std::vector<std::string> ListFunctions() const;

 private:
  std::map<std::string, ScalarFn> fns_;
};

}  // namespace explainit::sql
