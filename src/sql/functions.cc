#include "sql/functions.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "common/time_util.h"

namespace explainit::sql {

using table::Value;
using table::ValueMap;

int64_t DateTruncStepSeconds(const std::string& unit) {
  const std::string u = ToLower(unit);
  if (u == "second") return 1;
  if (u == "minute") return kSecondsPerMinute;
  if (u == "hour") return kSecondsPerMinute * kMinutesPerHour;
  if (u == "day") return kSecondsPerMinute * kMinutesPerHour * 24;
  return 0;
}

void FunctionRegistry::Register(const std::string& name, ScalarFn fn) {
  fns_[ToUpper(name)] = std::move(fn);
}

const ScalarFn* FunctionRegistry::Find(const std::string& name) const {
  auto it = fns_.find(ToUpper(name));
  return it == fns_.end() ? nullptr : &it->second;
}

std::vector<std::string> FunctionRegistry::ListFunctions() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : fns_) out.push_back(k);
  return out;
}

namespace {

Status Arity(const std::vector<Value>& args, size_t n, const char* name) {
  if (args.size() != n) {
    return Status::InvalidArgument(std::string(name) + " expects " +
                                   std::to_string(n) + " arguments, got " +
                                   std::to_string(args.size()));
  }
  return Status::OK();
}

Result<Value> Concat(const std::vector<Value>& args) {
  std::string out;
  for (const Value& v : args) {
    if (!v.is_null()) out += v.AsString();
  }
  return Value::String(std::move(out));
}

Result<Value> Split(const std::vector<Value>& args) {
  EXPLAINIT_RETURN_IF_ERROR(Arity(args, 2, "SPLIT"));
  const std::string s = args[0].AsString();
  const std::string sep = args[1].AsString();
  if (sep.size() != 1) {
    return Status::InvalidArgument("SPLIT expects a single-char separator");
  }
  // Returns a map keyed "0", "1", ... so SPLIT(x, '-')[0] works with the
  // generic subscript operator.
  ValueMap out;
  auto parts = StrSplit(s, sep[0]);
  for (size_t i = 0; i < parts.size(); ++i) {
    out[std::to_string(i)] = Value::String(parts[i]);
  }
  return Value::Map(std::move(out));
}

Result<Value> Lower(const std::vector<Value>& args) {
  EXPLAINIT_RETURN_IF_ERROR(Arity(args, 1, "LOWER"));
  return Value::String(ToLower(args[0].AsString()));
}

Result<Value> Upper(const std::vector<Value>& args) {
  EXPLAINIT_RETURN_IF_ERROR(Arity(args, 1, "UPPER"));
  return Value::String(ToUpper(args[0].AsString()));
}

Result<Value> Length(const std::vector<Value>& args) {
  EXPLAINIT_RETURN_IF_ERROR(Arity(args, 1, "LENGTH"));
  return Value::Int(static_cast<int64_t>(args[0].AsString().size()));
}

Result<Value> Abs(const std::vector<Value>& args) {
  EXPLAINIT_RETURN_IF_ERROR(Arity(args, 1, "ABS"));
  return Value::Double(std::abs(args[0].AsDouble()));
}

Result<Value> Sqrt(const std::vector<Value>& args) {
  EXPLAINIT_RETURN_IF_ERROR(Arity(args, 1, "SQRT"));
  return Value::Double(std::sqrt(args[0].AsDouble()));
}

Result<Value> Log(const std::vector<Value>& args) {
  EXPLAINIT_RETURN_IF_ERROR(Arity(args, 1, "LOG"));
  return Value::Double(std::log(args[0].AsDouble()));
}

Result<Value> Exp(const std::vector<Value>& args) {
  EXPLAINIT_RETURN_IF_ERROR(Arity(args, 1, "EXP"));
  return Value::Double(std::exp(args[0].AsDouble()));
}

Result<Value> Pow(const std::vector<Value>& args) {
  EXPLAINIT_RETURN_IF_ERROR(Arity(args, 2, "POW"));
  return Value::Double(std::pow(args[0].AsDouble(), args[1].AsDouble()));
}

Result<Value> Round(const std::vector<Value>& args) {
  if (args.size() == 1) {
    return Value::Double(std::round(args[0].AsDouble()));
  }
  EXPLAINIT_RETURN_IF_ERROR(Arity(args, 2, "ROUND"));
  const double scale = std::pow(10.0, args[1].AsDouble());
  return Value::Double(std::round(args[0].AsDouble() * scale) / scale);
}

Result<Value> Floor(const std::vector<Value>& args) {
  EXPLAINIT_RETURN_IF_ERROR(Arity(args, 1, "FLOOR"));
  return Value::Double(std::floor(args[0].AsDouble()));
}

Result<Value> Ceil(const std::vector<Value>& args) {
  EXPLAINIT_RETURN_IF_ERROR(Arity(args, 1, "CEIL"));
  return Value::Double(std::ceil(args[0].AsDouble()));
}

Result<Value> Greatest(const std::vector<Value>& args) {
  if (args.empty()) {
    return Status::InvalidArgument("GREATEST expects at least 1 argument");
  }
  double best = args[0].AsDouble();
  for (const Value& v : args) best = std::max(best, v.AsDouble());
  return Value::Double(best);
}

Result<Value> Least(const std::vector<Value>& args) {
  if (args.empty()) {
    return Status::InvalidArgument("LEAST expects at least 1 argument");
  }
  double best = args[0].AsDouble();
  for (const Value& v : args) best = std::min(best, v.AsDouble());
  return Value::Double(best);
}

Result<Value> Coalesce(const std::vector<Value>& args) {
  for (const Value& v : args) {
    if (!v.is_null()) return v;
  }
  return Value::Null();
}

Result<Value> If(const std::vector<Value>& args) {
  EXPLAINIT_RETURN_IF_ERROR(Arity(args, 3, "IF"));
  return args[0].AsBool() ? args[1] : args[2];
}

Result<Value> NullIf(const std::vector<Value>& args) {
  EXPLAINIT_RETURN_IF_ERROR(Arity(args, 2, "NULLIF"));
  if (args[0].Equals(args[1])) return Value::Null();
  return args[0];
}

// DATE_TRUNC('minute'|'hour'|'day', ts): floors a timestamp to the unit
// boundary — the canonical grid expression the planner recognises when
// deriving a rollup resolution hint for the store.
Result<Value> DateTrunc(const std::vector<Value>& args) {
  EXPLAINIT_RETURN_IF_ERROR(Arity(args, 2, "DATE_TRUNC"));
  if (args[1].is_null()) return Value::Null();
  const int64_t step = DateTruncStepSeconds(args[0].AsString());
  if (step <= 0) {
    return Status::InvalidArgument("DATE_TRUNC: unsupported unit '" +
                                   args[0].AsString() + "'");
  }
  const EpochSeconds t = args[1].AsTimestamp();
  return Value::Timestamp(t - ((t % step) + step) % step);
}

// HOSTGROUP('web-13') = 'web'. The UDF the paper suggests instead of
// SPLIT(hostname, '-')[0].
Result<Value> HostGroup(const std::vector<Value>& args) {
  EXPLAINIT_RETURN_IF_ERROR(Arity(args, 1, "HOSTGROUP"));
  const std::string h = args[0].AsString();
  return Value::String(StrSplit(h, '-')[0]);
}

}  // namespace

FunctionRegistry FunctionRegistry::Builtins() {
  FunctionRegistry r;
  r.Register("CONCAT", Concat);
  r.Register("SPLIT", Split);
  r.Register("LOWER", Lower);
  r.Register("UPPER", Upper);
  r.Register("LENGTH", Length);
  r.Register("ABS", Abs);
  r.Register("SQRT", Sqrt);
  r.Register("LOG", Log);
  r.Register("EXP", Exp);
  r.Register("POW", Pow);
  r.Register("ROUND", Round);
  r.Register("FLOOR", Floor);
  r.Register("CEIL", Ceil);
  r.Register("GREATEST", Greatest);
  r.Register("LEAST", Least);
  r.Register("COALESCE", Coalesce);
  r.Register("IF", If);
  r.Register("NULLIF", NullIf);
  r.Register("DATE_TRUNC", DateTrunc);
  r.Register("HOSTGROUP", HostGroup);
  return r;
}

}  // namespace explainit::sql
