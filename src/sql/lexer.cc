#include "sql/lexer.h"

#include <cctype>
#include <charconv>
#include <limits>
#include <unordered_set>

#include "common/strings.h"
#include "common/time_util.h"

namespace explainit::sql {

namespace {
/// EXPLAIN and monitor statement clause keywords. One definition: every
/// entry is both reserved (unioned into Keywords()) and soft
/// (IsSoftKeyword), so the two sets cannot drift apart.
constexpr const char* kSoftKeywords[] = {
    "EXPLAIN", "GIVEN",     "USING", "PSEUDOCAUSE", "SCORE",   "TOP",
    "EVERY",   "TRIGGERED", "INTO",  "DROP",        "MONITOR", "MONITORS",
    "SHOW"};

const std::unordered_set<std::string>& Keywords() {
  static const auto* kKeywords = [] {
    auto* set = new std::unordered_set<std::string>{
        "SELECT", "FROM",  "WHERE",  "GROUP",  "BY",    "ORDER",  "ASC",
        "DESC",   "LIMIT", "AS",     "AND",    "OR",    "NOT",    "IN",
        "BETWEEN", "LIKE", "JOIN",   "INNER",  "LEFT",  "RIGHT",  "FULL",
        "OUTER",  "CROSS", "ON",     "UNION",  "ALL",   "NULL",   "IS",
        "HAVING", "DISTINCT", "CASE", "WHEN",  "THEN",  "ELSE",   "END",
        "TRUE",   "FALSE",
    };
    for (const char* kw : kSoftKeywords) set->insert(kw);
    return set;
  }();
  return *kKeywords;
}

/// Line/column (1-based) of byte `offset` within `query`.
void LineColumnAt(std::string_view query, size_t offset, size_t* line,
                  size_t* column) {
  *line = 1;
  size_t line_start = 0;
  const size_t n = std::min(offset, query.size());
  for (size_t i = 0; i < n; ++i) {
    if (query[i] == '\n') {
      ++*line;
      line_start = i + 1;
    }
  }
  *column = offset - line_start + 1;
}

std::string PositionText(std::string_view query, size_t offset) {
  size_t line = 1, column = 1;
  LineColumnAt(query, offset, &line, &column);
  return "line " + std::to_string(line) + ", column " +
         std::to_string(column) + ", offset " + std::to_string(offset);
}
}  // namespace

bool IsReservedKeyword(std::string_view upper_word) {
  return Keywords().count(std::string(upper_word)) > 0;
}

bool IsSoftKeyword(std::string_view upper_word) {
  for (const char* kw : kSoftKeywords) {
    if (upper_word == kw) return true;
  }
  return false;
}

Result<std::vector<Token>> Tokenize(std::string_view query) {
  std::vector<Token> tokens;
  auto push = [&tokens](TokenType type, std::string text, size_t start,
                        std::string raw = {}) {
    Token t;
    t.type = type;
    t.text = std::move(text);
    t.raw = std::move(raw);
    t.position = start;
    tokens.push_back(std::move(t));
  };
  size_t i = 0;
  const size_t n = query.size();
  while (i < n) {
    const char c = query[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comments.
    if (c == '-' && i + 1 < n && query[i + 1] == '-') {
      while (i < n && query[i] != '\n') ++i;
      continue;
    }
    const size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && (std::isalnum(static_cast<unsigned char>(query[i])) ||
                       query[i] == '_')) {
        ++i;
      }
      std::string word(query.substr(start, i - start));
      std::string upper = ToUpper(word);
      if (IsReservedKeyword(upper)) {
        push(TokenType::kKeyword, std::move(upper), start, std::move(word));
      } else {
        push(TokenType::kIdentifier, std::move(word), start);
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(query[i + 1])))) {
      bool seen_dot = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(query[i])) ||
                       (query[i] == '.' && !seen_dot))) {
        if (query[i] == '.') seen_dot = true;
        ++i;
      }
      // Exponent part.
      bool seen_exp = false;
      if (i < n && (query[i] == 'e' || query[i] == 'E')) {
        size_t j = i + 1;
        if (j < n && (query[j] == '+' || query[j] == '-')) ++j;
        if (j < n && std::isdigit(static_cast<unsigned char>(query[j]))) {
          seen_exp = true;
          i = j;
          while (i < n && std::isdigit(static_cast<unsigned char>(query[i]))) {
            ++i;
          }
        }
      }
      // A letter glued onto the number makes this a duration literal
      // (30s, 5m, 1h, 2d): plain-integer magnitude + one-letter unit.
      if (i < n && (std::isalpha(static_cast<unsigned char>(query[i])) ||
                    query[i] == '_')) {
        const size_t unit_start = i;
        while (i < n && (std::isalnum(static_cast<unsigned char>(query[i])) ||
                         query[i] == '_')) {
          ++i;
        }
        const std::string_view magnitude =
            query.substr(start, unit_start - start);
        const std::string unit =
            ToUpper(std::string(query.substr(unit_start, i - unit_start)));
        if (seen_dot || seen_exp) {
          return Status::ParseError(
              "malformed duration literal '" +
              std::string(query.substr(start, i - start)) +
              "': magnitude must be a plain integer (" +
              PositionText(query, start) + ")");
        }
        int64_t per_unit = 0;
        if (unit == "S") {
          per_unit = 1;
        } else if (unit == "M") {
          per_unit = kSecondsPerMinute;
        } else if (unit == "H") {
          per_unit = kSecondsPerMinute * kMinutesPerHour;
        } else if (unit == "D") {
          per_unit = kSecondsPerMinute * kMinutesPerDay;
        } else {
          return Status::ParseError(
              "unknown duration unit '" + unit + "' in '" +
              std::string(query.substr(start, i - start)) +
              "' (expected s, m, h or d; " + PositionText(query, unit_start) +
              ")");
        }
        int64_t value = 0;
        const auto [ptr, ec] = std::from_chars(
            magnitude.data(), magnitude.data() + magnitude.size(), value);
        if (ec != std::errc() || ptr != magnitude.data() + magnitude.size() ||
            value > std::numeric_limits<int64_t>::max() / per_unit) {
          return Status::ParseError("duration literal '" +
                                    std::string(magnitude) + unit +
                                    "' out of range (" +
                                    PositionText(query, start) + ")");
        }
        Token t;
        t.type = TokenType::kDuration;
        t.text = std::string(query.substr(start, i - start));
        t.seconds = value * per_unit;
        t.position = start;
        tokens.push_back(std::move(t));
        continue;
      }
      push(TokenType::kNumber, std::string(query.substr(start, i - start)),
           start);
      continue;
    }
    if (c == '\'') {
      std::string text;
      ++i;
      bool closed = false;
      while (i < n) {
        if (query[i] == '\'') {
          if (i + 1 < n && query[i + 1] == '\'') {  // escaped quote
            text += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text += query[i++];
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal (" +
                                  PositionText(query, start) + ")");
      }
      push(TokenType::kString, std::move(text), start);
      continue;
    }
    // Two-character operators.
    if (i + 1 < n) {
      const std::string_view two = query.substr(i, 2);
      if (two == "!=" || two == "<=" || two == ">=" || two == "<>") {
        push(TokenType::kOperator, two == "<>" ? "!=" : std::string(two),
             start);
        i += 2;
        continue;
      }
    }
    switch (c) {
      case '=':
      case '<':
      case '>':
      case '+':
      case '-':
      case '*':
      case '/':
      case '%':
      case '(':
      case ')':
      case ',':
      case '.':
      case '[':
      case ']':
        push(TokenType::kOperator, std::string(1, c), start);
        ++i;
        break;
      default:
        return Status::ParseError("unexpected character '" +
                                  std::string(1, c) + "' (" +
                                  PositionText(query, start) + ")");
    }
  }
  push(TokenType::kEnd, "", n);
  // One pass to stamp line/column onto every token (positions ascend).
  size_t line = 1, line_start = 0, ti = 0;
  for (size_t p = 0; p <= n && ti < tokens.size(); ++p) {
    while (ti < tokens.size() && tokens[ti].position == p) {
      tokens[ti].line = line;
      tokens[ti].column = p - line_start + 1;
      ++ti;
    }
    if (p < n && query[p] == '\n') {
      ++line;
      line_start = p + 1;
    }
  }
  return tokens;
}

}  // namespace explainit::sql
