#include "sql/lexer.h"

#include <cctype>
#include <unordered_set>

#include "common/strings.h"

namespace explainit::sql {

namespace {
/// EXPLAIN statement clause keywords. One definition: every entry is
/// both reserved (unioned into Keywords()) and soft (IsSoftKeyword), so
/// the two sets cannot drift apart.
constexpr const char* kSoftKeywords[] = {"EXPLAIN", "GIVEN",
                                         "USING",   "PSEUDOCAUSE",
                                         "SCORE",   "TOP"};

const std::unordered_set<std::string>& Keywords() {
  static const auto* kKeywords = [] {
    auto* set = new std::unordered_set<std::string>{
        "SELECT", "FROM",  "WHERE",  "GROUP",  "BY",    "ORDER",  "ASC",
        "DESC",   "LIMIT", "AS",     "AND",    "OR",    "NOT",    "IN",
        "BETWEEN", "LIKE", "JOIN",   "INNER",  "LEFT",  "RIGHT",  "FULL",
        "OUTER",  "CROSS", "ON",     "UNION",  "ALL",   "NULL",   "IS",
        "HAVING", "DISTINCT", "CASE", "WHEN",  "THEN",  "ELSE",   "END",
        "TRUE",   "FALSE",
    };
    for (const char* kw : kSoftKeywords) set->insert(kw);
    return set;
  }();
  return *kKeywords;
}

/// Line/column (1-based) of byte `offset` within `query`.
void LineColumnAt(std::string_view query, size_t offset, size_t* line,
                  size_t* column) {
  *line = 1;
  size_t line_start = 0;
  const size_t n = std::min(offset, query.size());
  for (size_t i = 0; i < n; ++i) {
    if (query[i] == '\n') {
      ++*line;
      line_start = i + 1;
    }
  }
  *column = offset - line_start + 1;
}

std::string PositionText(std::string_view query, size_t offset) {
  size_t line = 1, column = 1;
  LineColumnAt(query, offset, &line, &column);
  return "line " + std::to_string(line) + ", column " +
         std::to_string(column) + ", offset " + std::to_string(offset);
}
}  // namespace

bool IsReservedKeyword(std::string_view upper_word) {
  return Keywords().count(std::string(upper_word)) > 0;
}

bool IsSoftKeyword(std::string_view upper_word) {
  for (const char* kw : kSoftKeywords) {
    if (upper_word == kw) return true;
  }
  return false;
}

Result<std::vector<Token>> Tokenize(std::string_view query) {
  std::vector<Token> tokens;
  auto push = [&tokens](TokenType type, std::string text, size_t start,
                        std::string raw = {}) {
    Token t;
    t.type = type;
    t.text = std::move(text);
    t.raw = std::move(raw);
    t.position = start;
    tokens.push_back(std::move(t));
  };
  size_t i = 0;
  const size_t n = query.size();
  while (i < n) {
    const char c = query[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comments.
    if (c == '-' && i + 1 < n && query[i + 1] == '-') {
      while (i < n && query[i] != '\n') ++i;
      continue;
    }
    const size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && (std::isalnum(static_cast<unsigned char>(query[i])) ||
                       query[i] == '_')) {
        ++i;
      }
      std::string word(query.substr(start, i - start));
      std::string upper = ToUpper(word);
      if (IsReservedKeyword(upper)) {
        push(TokenType::kKeyword, std::move(upper), start, std::move(word));
      } else {
        push(TokenType::kIdentifier, std::move(word), start);
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(query[i + 1])))) {
      bool seen_dot = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(query[i])) ||
                       (query[i] == '.' && !seen_dot))) {
        if (query[i] == '.') seen_dot = true;
        ++i;
      }
      // Exponent part.
      if (i < n && (query[i] == 'e' || query[i] == 'E')) {
        size_t j = i + 1;
        if (j < n && (query[j] == '+' || query[j] == '-')) ++j;
        if (j < n && std::isdigit(static_cast<unsigned char>(query[j]))) {
          i = j;
          while (i < n && std::isdigit(static_cast<unsigned char>(query[i]))) {
            ++i;
          }
        }
      }
      push(TokenType::kNumber, std::string(query.substr(start, i - start)),
           start);
      continue;
    }
    if (c == '\'') {
      std::string text;
      ++i;
      bool closed = false;
      while (i < n) {
        if (query[i] == '\'') {
          if (i + 1 < n && query[i + 1] == '\'') {  // escaped quote
            text += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text += query[i++];
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal (" +
                                  PositionText(query, start) + ")");
      }
      push(TokenType::kString, std::move(text), start);
      continue;
    }
    // Two-character operators.
    if (i + 1 < n) {
      const std::string_view two = query.substr(i, 2);
      if (two == "!=" || two == "<=" || two == ">=" || two == "<>") {
        push(TokenType::kOperator, two == "<>" ? "!=" : std::string(two),
             start);
        i += 2;
        continue;
      }
    }
    switch (c) {
      case '=':
      case '<':
      case '>':
      case '+':
      case '-':
      case '*':
      case '/':
      case '%':
      case '(':
      case ')':
      case ',':
      case '.':
      case '[':
      case ']':
        push(TokenType::kOperator, std::string(1, c), start);
        ++i;
        break;
      default:
        return Status::ParseError("unexpected character '" +
                                  std::string(1, c) + "' (" +
                                  PositionText(query, start) + ")");
    }
  }
  push(TokenType::kEnd, "", n);
  // One pass to stamp line/column onto every token (positions ascend).
  size_t line = 1, line_start = 0, ti = 0;
  for (size_t p = 0; p <= n && ti < tokens.size(); ++p) {
    while (ti < tokens.size() && tokens[ti].position == p) {
      tokens[ti].line = line;
      tokens[ti].column = p - line_start + 1;
      ++ti;
    }
    if (p < n && query[p] == '\n') {
      ++line;
      line_start = p + 1;
    }
  }
  return tokens;
}

}  // namespace explainit::sql
