#include "sql/lexer.h"

#include <cctype>
#include <unordered_set>

#include "common/strings.h"

namespace explainit::sql {

namespace {
const std::unordered_set<std::string>& Keywords() {
  static const auto* kKeywords = new std::unordered_set<std::string>{
      "SELECT", "FROM",  "WHERE",  "GROUP",  "BY",    "ORDER",  "ASC",
      "DESC",   "LIMIT", "AS",     "AND",    "OR",    "NOT",    "IN",
      "BETWEEN", "LIKE", "JOIN",   "INNER",  "LEFT",  "RIGHT",  "FULL",
      "OUTER",  "CROSS", "ON",     "UNION",  "ALL",   "NULL",   "IS",
      "HAVING", "DISTINCT", "CASE", "WHEN",  "THEN",  "ELSE",   "END",
      "TRUE",   "FALSE",
  };
  return *kKeywords;
}
}  // namespace

bool IsReservedKeyword(std::string_view upper_word) {
  return Keywords().count(std::string(upper_word)) > 0;
}

Result<std::vector<Token>> Tokenize(std::string_view query) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = query.size();
  while (i < n) {
    const char c = query[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comments.
    if (c == '-' && i + 1 < n && query[i + 1] == '-') {
      while (i < n && query[i] != '\n') ++i;
      continue;
    }
    const size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && (std::isalnum(static_cast<unsigned char>(query[i])) ||
                       query[i] == '_')) {
        ++i;
      }
      std::string word(query.substr(start, i - start));
      std::string upper = ToUpper(word);
      if (IsReservedKeyword(upper)) {
        tokens.push_back({TokenType::kKeyword, std::move(upper), start});
      } else {
        tokens.push_back({TokenType::kIdentifier, std::move(word), start});
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(query[i + 1])))) {
      bool seen_dot = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(query[i])) ||
                       (query[i] == '.' && !seen_dot))) {
        if (query[i] == '.') seen_dot = true;
        ++i;
      }
      // Exponent part.
      if (i < n && (query[i] == 'e' || query[i] == 'E')) {
        size_t j = i + 1;
        if (j < n && (query[j] == '+' || query[j] == '-')) ++j;
        if (j < n && std::isdigit(static_cast<unsigned char>(query[j]))) {
          i = j;
          while (i < n && std::isdigit(static_cast<unsigned char>(query[i]))) {
            ++i;
          }
        }
      }
      tokens.push_back({TokenType::kNumber,
                        std::string(query.substr(start, i - start)), start});
      continue;
    }
    if (c == '\'') {
      std::string text;
      ++i;
      bool closed = false;
      while (i < n) {
        if (query[i] == '\'') {
          if (i + 1 < n && query[i + 1] == '\'') {  // escaped quote
            text += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text += query[i++];
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      tokens.push_back({TokenType::kString, std::move(text), start});
      continue;
    }
    // Two-character operators.
    if (i + 1 < n) {
      const std::string_view two = query.substr(i, 2);
      if (two == "!=" || two == "<=" || two == ">=" || two == "<>") {
        tokens.push_back(
            {TokenType::kOperator, two == "<>" ? "!=" : std::string(two),
             start});
        i += 2;
        continue;
      }
    }
    switch (c) {
      case '=':
      case '<':
      case '>':
      case '+':
      case '-':
      case '*':
      case '/':
      case '%':
      case '(':
      case ')':
      case ',':
      case '.':
      case '[':
      case ']':
        tokens.push_back({TokenType::kOperator, std::string(1, c), start});
        ++i;
        break;
      default:
        return Status::ParseError("unexpected character '" +
                                  std::string(1, c) + "' at offset " +
                                  std::to_string(start));
    }
  }
  tokens.push_back({TokenType::kEnd, "", n});
  return tokens;
}

}  // namespace explainit::sql
