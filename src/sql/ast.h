// Abstract syntax tree for the SQL dialect. Built by the parser, consumed
// by the planner/executor.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "table/value.h"

namespace explainit::sql {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kStar,        // SELECT * (or COUNT(*) argument)
  kFunction,    // scalar or aggregate call
  kBinary,
  kUnary,
  kSubscript,   // expr['key'] or expr[0]
  kInList,      // expr IN (a, b, c) / NOT IN
  kBetween,     // expr BETWEEN lo AND hi
  kIsNull,      // expr IS [NOT] NULL
  kCase,        // CASE WHEN ... THEN ... ELSE ... END
};

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
  kLike,
};

enum class UnaryOp { kNot, kNegate };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// One CASE branch.
struct CaseBranch;

/// A SQL expression node (tagged union; only the fields relevant to `kind`
/// are populated).
struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  // kLiteral
  table::Value literal;

  // kColumnRef
  std::string qualifier;  // optional table alias ("FF" in FF.timestamp)
  std::string column;

  // kFunction
  std::string function_name;  // upper-cased
  std::vector<ExprPtr> args;

  // kBinary / kUnary / kInList / kBetween / kIsNull / kSubscript / kCase
  BinaryOp binary_op = BinaryOp::kAdd;
  UnaryOp unary_op = UnaryOp::kNot;
  ExprPtr left;    // also: subject of IN/BETWEEN/IS NULL/subscript
  ExprPtr right;   // also: subscript index
  std::vector<ExprPtr> list;  // IN list
  ExprPtr between_lo;
  ExprPtr between_hi;
  bool negated = false;  // NOT IN / IS NOT NULL / NOT LIKE
  std::vector<CaseBranch> case_branches;
  ExprPtr case_else;

  /// Reconstructs a SQL-ish textual form (used to derive output column
  /// names for unaliased select items).
  std::string ToString() const;

  /// True if this subtree contains an aggregate function call.
  bool ContainsAggregate() const;

  ExprPtr Clone() const;
};

struct CaseBranch {
  ExprPtr condition;
  ExprPtr result;
};

/// True for AVG/SUM/MIN/MAX/COUNT/STDDEV/PERCENTILE, plus the planner's
/// internal __SUM_COUNT (a COUNT partial: sums its argument, finalises
/// as an integer — never produced by the parser).
bool IsAggregateFunction(std::string_view upper_name);

// Convenience constructors used by the parser and tests.
ExprPtr MakeLiteral(table::Value v);
ExprPtr MakeColumnRef(std::string qualifier, std::string column);
ExprPtr MakeStar();
ExprPtr MakeFunction(std::string name, std::vector<ExprPtr> args);
ExprPtr MakeBinary(BinaryOp op, ExprPtr l, ExprPtr r);
ExprPtr MakeUnary(UnaryOp op, ExprPtr operand);
ExprPtr MakeSubscript(ExprPtr base, ExprPtr index);

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StatementKind { kSelect, kExplain, kDropMonitor, kShowMonitors };

/// Base of the statement hierarchy. A parsed query is an ordinary SELECT
/// (with UNION ALL chain), the declarative RCA statement
/// EXPLAIN ... [GIVEN ...] USING ... (§3, Appendix C) — optionally a
/// *standing* one via EVERY / TRIGGERED / INTO — or one of the monitor
/// admin statements DROP MONITOR / SHOW MONITORS.
struct Statement {
  virtual ~Statement() = default;
  virtual StatementKind kind() const = 0;
};

/// One item in the SELECT list.
struct SelectItem {
  ExprPtr expr;        // null for bare `*`
  std::string alias;   // empty when not aliased
  bool is_star = false;
};

enum class JoinType { kInner, kLeft, kFullOuter, kCross };

struct SelectStatement;

/// FROM-clause term: a named table, or a parenthesised subquery; both may
/// carry an alias. Chained joins hang off the first table.
struct TableRef {
  std::string table_name;                      // empty for subqueries
  std::unique_ptr<SelectStatement> subquery;   // set for subqueries
  std::string alias;

  /// Name that qualifies this relation's columns: alias or table name.
  const std::string& EffectiveName() const {
    return alias.empty() ? table_name : alias;
  }
};

struct JoinClause {
  JoinType type = JoinType::kInner;
  TableRef right;
  ExprPtr condition;  // null for CROSS
};

struct OrderByItem {
  ExprPtr expr;
  bool ascending = true;
};

/// A parsed SELECT (with optional chained UNION ALL terms).
struct SelectStatement : Statement {
  std::vector<SelectItem> items;
  std::optional<TableRef> from;
  std::vector<JoinClause> joins;
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderByItem> order_by;
  std::optional<int64_t> limit;
  /// UNION [ALL] chains: additional SELECTs whose results are appended.
  std::vector<std::unique_ptr<SelectStatement>> union_all;

  StatementKind kind() const override { return StatementKind::kSelect; }
};

/// The declarative RCA statement — the paper's headline contribution,
/// reduced to one grammar production:
///
///   EXPLAIN <select>                      -- the target family query (Y)
///   [GIVEN <select> | GIVEN PSEUDOCAUSE]  -- conditioning set (Z), §3.4
///   USING <select>                        -- the search space (X families)
///   [SCORE BY '<scorer>']                 -- §3.5 scorer name
///   [TOP k]                               -- Score Table cutoff
///   [BETWEEN t0 AND t1]                   -- range-to-explain (Figure 2)
///   [EVERY <duration>] [TRIGGERED]        -- standing query (monitor)
///   [INTO <table>]                        -- score-history table
///
/// Each sub-select is an ordinary feature-family-table query compiled
/// through the regular planner; parentheses around a sub-select are
/// accepted and are the canonical printed form (they keep a trailing
/// ORDER BY expression from swallowing the statement-level BETWEEN).
struct ExplainStatement : Statement {
  std::unique_ptr<SelectStatement> target;        // EXPLAIN <select>
  std::unique_ptr<SelectStatement> given;         // GIVEN <select>, else null
  bool given_pseudocause = false;                 // GIVEN PSEUDOCAUSE
  std::unique_ptr<SelectStatement> search_space;  // USING <select>
  std::string scorer;                 // SCORE BY '<name>'; empty = default
  std::optional<int64_t> top_k;       // TOP k
  std::optional<int64_t> between_start;  // BETWEEN t0 AND t1 (inclusive)
  std::optional<int64_t> between_end;

  // Standing-query clauses (the continuous-monitoring subsystem). EVERY
  // makes the statement a periodic monitor whose BETWEEN window slides by
  // the interval each run; TRIGGERED arms it on the online anomaly
  // detector instead of (or, with EVERY, rate-limited by) the timer; INTO
  // names the catalog table each run's Score Table is appended to.
  std::optional<int64_t> every_seconds;  // EVERY <duration>
  bool triggered = false;                // TRIGGERED
  std::string into_table;                // INTO <table>; empty = none

  /// True when any standing-query clause is present — such statements are
  /// handled by a monitor::MonitorService, not one-shot execution.
  bool is_monitor() const {
    return every_seconds.has_value() || triggered || !into_table.empty();
  }

  StatementKind kind() const override { return StatementKind::kExplain; }
};

/// DROP MONITOR <name>: unregisters a standing query.
struct DropMonitorStatement : Statement {
  std::string name;

  StatementKind kind() const override { return StatementKind::kDropMonitor; }
};

/// SHOW MONITORS: one status row per registered standing query.
struct ShowMonitorsStatement : Statement {
  StatementKind kind() const override { return StatementKind::kShowMonitors; }
};

/// Reconstructs parseable SQL text for a statement. Printing is a
/// fixpoint through the parser: Parse(ToSql(s)) prints back to the same
/// text (the fuzz round-trip suite enforces this).
std::string ToSql(const SelectStatement& stmt);
std::string ToSql(const ExplainStatement& stmt);
std::string ToSql(const DropMonitorStatement& stmt);
std::string ToSql(const ShowMonitorsStatement& stmt);
/// Dispatches on the dynamic statement kind.
std::string ToSql(const Statement& stmt);

/// Canonical rendering of a duration in seconds: the largest unit among
/// d/h/m/s that divides it exactly (7200 -> "2h", 90 -> "90s"). The
/// parser+printer fixpoint for EVERY depends on this canonical form.
std::string FormatDuration(int64_t seconds);

}  // namespace explainit::sql
