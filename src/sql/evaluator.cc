#include "sql/evaluator.h"

#include <cmath>

#include "common/strings.h"

namespace explainit::sql {

using table::DataType;
using table::Value;

bool SqlLikeMatch(const std::string& pattern, const std::string& text) {
  // Translate SQL wildcards to the glob matcher: % -> *, _ -> ?.
  std::string glob;
  glob.reserve(pattern.size());
  for (char c : pattern) {
    if (c == '%') {
      glob += '*';
    } else if (c == '_') {
      glob += '?';
    } else {
      glob += c;
    }
  }
  return GlobMatch(glob, text);
}

Result<size_t> Evaluator::ResolveColumn(const Expr& expr) const {
  const table::Schema& schema = *schema_;
  if (!expr.qualifier.empty()) {
    const std::string full = expr.qualifier + "." + expr.column;
    if (auto idx = schema.FieldIndex(full); idx.has_value()) return *idx;
    if (auto idx = schema.FieldIndex(expr.column); idx.has_value()) {
      return *idx;
    }
    return Status::NotFound("column not found: " + full);
  }
  if (auto idx = schema.FieldIndex(expr.column); idx.has_value()) return *idx;
  // Unique suffix match over qualified join-output names.
  const std::string suffix = "." + ToLower(expr.column);
  std::optional<size_t> found;
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    if (EndsWith(ToLower(schema.field(i).name), suffix)) {
      if (found.has_value()) {
        return Status::InvalidArgument("ambiguous column: " + expr.column);
      }
      found = i;
    }
  }
  if (found.has_value()) return *found;
  return Status::NotFound("column not found: " + expr.column);
}

Result<Value> Evaluator::Eval(const Expr& expr, size_t row) const {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kStar:
      return Status::InvalidArgument("'*' is only valid in COUNT(*)");
    case ExprKind::kColumnRef: {
      EXPLAINIT_ASSIGN_OR_RETURN(size_t idx, ResolveColumn(expr));
      return Cell(row, idx);
    }
    case ExprKind::kSubscript: {
      EXPLAINIT_ASSIGN_OR_RETURN(Value base, Eval(*expr.left, row));
      EXPLAINIT_ASSIGN_OR_RETURN(Value index, Eval(*expr.right, row));
      const table::ValueMap* map = base.AsMap();
      if (map == nullptr) {
        if (base.is_null()) return Value::Null();
        return Status::InvalidArgument("subscript on non-map value");
      }
      const std::string key = index.type() == DataType::kString
                                  ? index.AsString()
                                  : std::to_string(index.AsInt());
      auto it = map->find(key);
      return it == map->end() ? Value::Null() : it->second;
    }
    case ExprKind::kFunction: {
      if (IsAggregateFunction(expr.function_name)) {
        return Status::InvalidArgument("aggregate " + expr.function_name +
                                       " in a scalar context");
      }
      if (expr.function_name == "LAG") {
        // LAG(expr [, offset]) over the table's current row order.
        if (expr.args.empty() || expr.args.size() > 2) {
          return Status::InvalidArgument("LAG expects 1 or 2 arguments");
        }
        int64_t offset = 1;
        if (expr.args.size() == 2) {
          EXPLAINIT_ASSIGN_OR_RETURN(Value off, Eval(*expr.args[1], row));
          offset = off.AsInt();
        }
        const int64_t target = static_cast<int64_t>(row) - offset;
        if (target < 0 || target >= static_cast<int64_t>(num_rows())) {
          return Value::Null();
        }
        return Eval(*expr.args[0], static_cast<size_t>(target));
      }
      const ScalarFn* fn = functions_->Find(expr.function_name);
      if (fn == nullptr) {
        return Status::NotFound("unknown function: " + expr.function_name);
      }
      std::vector<Value> args;
      args.reserve(expr.args.size());
      for (const ExprPtr& a : expr.args) {
        EXPLAINIT_ASSIGN_OR_RETURN(Value v, Eval(*a, row));
        args.push_back(std::move(v));
      }
      return (*fn)(args);
    }
    case ExprKind::kUnary: {
      EXPLAINIT_ASSIGN_OR_RETURN(Value v, Eval(*expr.left, row));
      if (expr.unary_op == UnaryOp::kNegate) {
        if (v.is_null()) return Value::Null();
        return Value::Double(-v.AsDouble());
      }
      if (v.is_null()) return Value::Null();
      return Value::Bool(!v.AsBool());
    }
    case ExprKind::kBinary: {
      // AND/OR need lazy-ish null handling; arithmetic propagates null.
      EXPLAINIT_ASSIGN_OR_RETURN(Value l, Eval(*expr.left, row));
      if (expr.binary_op == BinaryOp::kAnd && !l.is_null() && !l.AsBool()) {
        return Value::Bool(false);
      }
      if (expr.binary_op == BinaryOp::kOr && !l.is_null() && l.AsBool()) {
        return Value::Bool(true);
      }
      EXPLAINIT_ASSIGN_OR_RETURN(Value r, Eval(*expr.right, row));
      switch (expr.binary_op) {
        case BinaryOp::kAnd:
          if (l.is_null() || r.is_null()) return Value::Null();
          return Value::Bool(l.AsBool() && r.AsBool());
        case BinaryOp::kOr:
          if (l.is_null() || r.is_null()) return Value::Null();
          return Value::Bool(l.AsBool() || r.AsBool());
        case BinaryOp::kEq:
          if (l.is_null() || r.is_null()) return Value::Null();
          return Value::Bool(l.Equals(r));
        case BinaryOp::kNe:
          if (l.is_null() || r.is_null()) return Value::Null();
          return Value::Bool(!l.Equals(r));
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe: {
          if (l.is_null() || r.is_null()) return Value::Null();
          const int cmp = l.Compare(r);
          switch (expr.binary_op) {
            case BinaryOp::kLt:
              return Value::Bool(cmp < 0);
            case BinaryOp::kLe:
              return Value::Bool(cmp <= 0);
            case BinaryOp::kGt:
              return Value::Bool(cmp > 0);
            default:
              return Value::Bool(cmp >= 0);
          }
        }
        case BinaryOp::kLike:
          if (l.is_null() || r.is_null()) return Value::Null();
          return Value::Bool(SqlLikeMatch(r.AsString(), l.AsString()));
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
        case BinaryOp::kMod: {
          if (l.is_null() || r.is_null()) return Value::Null();
          const double a = l.AsDouble(), b = r.AsDouble();
          switch (expr.binary_op) {
            case BinaryOp::kAdd:
              return Value::Double(a + b);
            case BinaryOp::kSub:
              return Value::Double(a - b);
            case BinaryOp::kMul:
              return Value::Double(a * b);
            case BinaryOp::kDiv:
              if (b == 0.0) return Value::Null();
              return Value::Double(a / b);
            default:
              if (b == 0.0) return Value::Null();
              return Value::Double(std::fmod(a, b));
          }
        }
      }
      return Status::Internal("unhandled binary op");
    }
    case ExprKind::kInList: {
      EXPLAINIT_ASSIGN_OR_RETURN(Value subject, Eval(*expr.left, row));
      if (subject.is_null()) return Value::Null();
      bool found = false;
      for (const ExprPtr& item : expr.list) {
        EXPLAINIT_ASSIGN_OR_RETURN(Value v, Eval(*item, row));
        if (subject.Equals(v)) {
          found = true;
          break;
        }
      }
      return Value::Bool(expr.negated ? !found : found);
    }
    case ExprKind::kBetween: {
      EXPLAINIT_ASSIGN_OR_RETURN(Value subject, Eval(*expr.left, row));
      EXPLAINIT_ASSIGN_OR_RETURN(Value lo, Eval(*expr.between_lo, row));
      EXPLAINIT_ASSIGN_OR_RETURN(Value hi, Eval(*expr.between_hi, row));
      if (subject.is_null() || lo.is_null() || hi.is_null()) {
        return Value::Null();
      }
      const bool in =
          subject.Compare(lo) >= 0 && subject.Compare(hi) <= 0;
      return Value::Bool(expr.negated ? !in : in);
    }
    case ExprKind::kIsNull: {
      EXPLAINIT_ASSIGN_OR_RETURN(Value v, Eval(*expr.left, row));
      return Value::Bool(expr.negated ? !v.is_null() : v.is_null());
    }
    case ExprKind::kCase: {
      for (const CaseBranch& b : expr.case_branches) {
        EXPLAINIT_ASSIGN_OR_RETURN(Value cond, Eval(*b.condition, row));
        if (!cond.is_null() && cond.AsBool()) {
          return Eval(*b.result, row);
        }
      }
      if (expr.case_else) return Eval(*expr.case_else, row);
      return Value::Null();
    }
  }
  return Status::Internal("unhandled expression kind");
}

}  // namespace explainit::sql
