// Shared execution context for one query pipeline: the degree of
// parallelism the executor was configured with, the worker pool that
// the parallel operators (Filter/Project/HashAggregate morsels,
// HashJoin's partitioned build/probe, SortLimit's sharded sort) and the
// executor's chunked result assembly fan out over, and the query's
// cancellation token.
//
// parallelism == 1 (or a null context/pool) means the pipeline runs the
// classic streaming operators; > 1 switches eligible operators to their
// sharded paths. Shard boundaries depend only on (row count, parallelism),
// never on scheduling, so a given parallelism level is deterministic.
//
// The pool is *borrowed* — by default the process-wide
// exec::WorkerPool::Global(), shared with every other session, the
// store's scans and the ranking fan-out — never owned by the pipeline.
#pragma once

#include <cstddef>

#include "common/status.h"
#include "exec/cancel.h"
#include "exec/worker_pool.h"

namespace explainit::sql {

struct ExecContext {
  /// Degree of parallelism operators shard to. 1 = serial pipeline.
  size_t parallelism = 1;
  /// Shared worker pool for sharded execution (borrowed, typically
  /// exec::WorkerPool::Global()). Non-null whenever parallelism > 1.
  exec::WorkerPool* pool = nullptr;
  /// Cooperative cancellation/deadline for the current query; null when
  /// the caller imposes none. Checked at batch boundaries.
  const exec::CancelToken* cancel = nullptr;

  bool parallel() const { return parallelism > 1 && pool != nullptr; }

  /// OK while the current query may keep running.
  Status CheckCancel() const {
    return cancel != nullptr ? cancel->Check() : Status::OK();
  }
};

}  // namespace explainit::sql
