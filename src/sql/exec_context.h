// Shared execution context for one query pipeline: the degree of
// parallelism the executor was configured with and the worker pool that
// the parallel operators (Filter/Project/HashAggregate morsels,
// HashJoin's partitioned build/probe, SortLimit's sharded sort) and the
// executor's chunked result assembly fan out over.
//
// parallelism == 1 (or a null context/pool) means the pipeline runs the
// classic streaming operators; > 1 switches eligible operators to their
// sharded paths. Shard boundaries depend only on (row count, parallelism),
// never on scheduling, so a given parallelism level is deterministic.
#pragma once

#include <cstddef>

#include "exec/thread_pool.h"

namespace explainit::sql {

struct ExecContext {
  /// Degree of parallelism operators shard to. 1 = serial pipeline.
  size_t parallelism = 1;
  /// Worker pool for sharded execution; owned by the sql::Executor.
  /// Non-null whenever parallelism > 1.
  exec::ThreadPool* pool = nullptr;

  bool parallel() const { return parallelism > 1 && pool != nullptr; }
};

}  // namespace explainit::sql
