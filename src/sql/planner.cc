#include "sql/planner.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <set>

#include "common/strings.h"
#include "sql/cost.h"
#include "sql/operators/filter.h"
#include "sql/operators/hash_aggregate.h"
#include "sql/operators/hash_join.h"
#include "sql/operators/nested_loop_join.h"
#include "sql/operators/project.h"
#include "sql/operators/scan.h"
#include "sql/operators/sort_limit.h"

namespace explainit::sql {

using table::DataType;

namespace {

// ---------------------------------------------------------------------------
// Pushdown extraction
// ---------------------------------------------------------------------------

/// Unqualified reference to the scan's time column.
bool IsTimeColumn(const Expr& e) {
  if (e.kind != ExprKind::kColumnRef || !e.qualifier.empty()) return false;
  const std::string lower = ToLower(e.column);
  return lower == "timestamp" || lower == "ts";
}

bool IsMetricNameColumn(const Expr& e) {
  return e.kind == ExprKind::kColumnRef && e.qualifier.empty() &&
         ToLower(e.column) == "metric_name";
}

/// Integer-valued literal (timestamps are integral epoch seconds).
bool IntLiteral(const Expr& e, int64_t* out) {
  if (e.kind != ExprKind::kLiteral) return false;
  const DataType t = e.literal.type();
  if (t != DataType::kInt64 && t != DataType::kTimestamp) return false;
  *out = e.literal.AsInt();
  return true;
}

/// String literal free of glob metacharacters, so SQL equality and the
/// store's glob/tag matching coincide exactly.
bool CleanStringLiteral(const Expr& e, std::string* out) {
  if (e.kind != ExprKind::kLiteral ||
      e.literal.type() != DataType::kString) {
    return false;
  }
  const std::string s = e.literal.AsString();
  if (s.find_first_of("*?[") != std::string::npos) return false;
  *out = s;
  return true;
}

/// Matches tag['key'] over the scan's tag column.
bool IsTagSubscript(const Expr& e, std::string* key) {
  if (e.kind != ExprKind::kSubscript) return false;
  if (e.left == nullptr || e.left->kind != ExprKind::kColumnRef ||
      !e.left->qualifier.empty() || ToLower(e.left->column) != "tag") {
    return false;
  }
  if (e.right == nullptr || e.right->kind != ExprKind::kLiteral ||
      e.right->literal.type() != DataType::kString) {
    return false;
  }
  *key = e.right->literal.AsString();
  return true;
}

/// Derives ScanHints from WHERE conjuncts. The hints only *narrow* what a
/// hint-aware provider materialises; every conjunct stays in the residual
/// filter, so correctness (including "column not found" errors for
/// misnamed time columns) never depends on a provider applying them.
tsdb::ScanHints HintsFromConjuncts(const std::vector<const Expr*>& conjuncts) {
  tsdb::ScanHints hints;
  std::optional<int64_t> lo;  // inclusive
  std::optional<int64_t> hi;  // exclusive
  auto narrow_lo = [&](int64_t v) { lo = lo ? std::max(*lo, v) : v; };
  auto narrow_hi = [&](int64_t v) { hi = hi ? std::min(*hi, v) : v; };
  for (const Expr* c : conjuncts) {
    int64_t a = 0, b = 0;
    std::string s, key;
    // ts BETWEEN a AND b  ->  [a, b+1)
    if (c->kind == ExprKind::kBetween && !c->negated &&
        c->left != nullptr && IsTimeColumn(*c->left) &&
        IntLiteral(*c->between_lo, &a) && IntLiteral(*c->between_hi, &b) &&
        b < INT64_MAX) {
      narrow_lo(a);
      narrow_hi(b + 1);
      continue;
    }
    if (c->kind != ExprKind::kBinary || c->left == nullptr ||
        c->right == nullptr) {
      continue;
    }
    const Expr& l = *c->left;
    const Expr& r = *c->right;
    // Time-column comparisons, either orientation.
    const bool ts_lit = IsTimeColumn(l) && IntLiteral(r, &a);
    const bool lit_ts = IntLiteral(l, &a) && IsTimeColumn(r);
    if ((ts_lit || lit_ts) && a < INT64_MAX) {
      // Normalise to "ts OP a".
      BinaryOp op = c->binary_op;
      if (lit_ts) {
        op = op == BinaryOp::kLt   ? BinaryOp::kGt
             : op == BinaryOp::kLe ? BinaryOp::kGe
             : op == BinaryOp::kGt ? BinaryOp::kLt
             : op == BinaryOp::kGe ? BinaryOp::kLe
                                   : op;
      }
      switch (op) {
        case BinaryOp::kEq:
          narrow_lo(a);
          narrow_hi(a + 1);
          break;
        case BinaryOp::kGe:
          narrow_lo(a);
          break;
        case BinaryOp::kGt:
          narrow_lo(a + 1);
          break;
        case BinaryOp::kLe:
          narrow_hi(a + 1);
          break;
        case BinaryOp::kLt:
          narrow_hi(a);
          break;
        default:
          break;
      }
      continue;
    }
    // metric_name = 'literal' (either orientation).
    if (c->binary_op == BinaryOp::kEq && hints.metric_glob.empty() &&
        ((IsMetricNameColumn(l) && CleanStringLiteral(r, &s)) ||
         (IsMetricNameColumn(r) && CleanStringLiteral(l, &s)))) {
      hints.metric_glob = s;
      continue;
    }
    // tag['k'] = 'literal' (either orientation).
    if (c->binary_op == BinaryOp::kEq &&
        ((IsTagSubscript(l, &key) && CleanStringLiteral(r, &s)) ||
         (IsTagSubscript(r, &key) && CleanStringLiteral(l, &s)))) {
      if (!hints.tag_filter.Has(key)) hints.tag_filter.Set(key, s);
    }
  }
  // Contradictory windows (ts >= 10 AND ts < 5) are left to the filter.
  if ((lo.has_value() || hi.has_value()) &&
      lo.value_or(INT64_MIN) < hi.value_or(INT64_MAX)) {
    hints.range = TimeRange{lo.value_or(INT64_MIN), hi.value_or(INT64_MAX)};
  }
  return hints;
}

tsdb::ScanHints ExtractHints(const Expr* where) {
  std::vector<const Expr*> conjuncts;
  CollectConjuncts(where, &conjuncts);
  return HintsFromConjuncts(conjuncts);
}

void CollectColumnRefs(const Expr& e, std::set<std::string>* out);

// ---------------------------------------------------------------------------
// Rollup resolution hints
// ---------------------------------------------------------------------------
//
// A grid-aligned aggregating query — GROUP BY DATE_TRUNC('minute', ts)
// with SUM/MIN/MAX(value) — never looks below its bucket width, so the
// store may serve sealed segments from a rollup tier: one
// (bucket_start, bucket_aggregate) row per tier bucket in place of the
// raw points. That substitution is invisible exactly when every part of
// the statement that sees scanned rows is invariant under it:
//
//  - every GROUP BY time expression is a grid of step S with
//    tier_step | S (all raw points of a tier bucket then share every
//    group key with the substituted row);
//  - every aggregate is one same kind among SUM/MIN/MAX over the bare
//    `value` column (partial sums/mins/maxes recombine exactly; AVG
//    weights by point count and does not). With `allow_count`, COUNT(*),
//    COUNT(value) and __SUM_COUNT(value) qualify too: the count tier
//    carries per-bucket point counts, raw fallback rows substitute 1.0,
//    and the optimiser rewrites COUNT -> __SUM_COUNT so partial counts
//    recombine by summation;
//  - the residual WHERE evaluates identically on a bucket row and on
//    each of its raw points: time bounds are tier-aligned literals and
//    nothing else in the WHERE reads ts or value;
//  - no other expression reads ts or value at raw resolution.
//
// The derivation below checks those conditions per maintained tier,
// coarsest first, and on success sets hints.min_step_seconds/rollup.
// The hint is advisory for SUM/MIN/MAX: the store re-proves per segment
// (via per-bucket first/last raw timestamps) that the window cuts no
// bucket, falling back to the raw block otherwise, so a hint can only
// ever be cheaper, never wrong. A kCount hint additionally changes what
// `value` *means* (counts, or 1.0 per raw point), so the planner only
// derives it for providers that forward hints verbatim to a SeriesStore
// scan (Catalog::SupportsExactRollups) and rewrites the statement in the
// same breath.

/// Step of a recognised grid expression over the time column:
/// DATE_TRUNC('unit', ts) or ts - ts % k; 0 when not a grid.
int64_t GridStepSeconds(const Expr& e) {
  if (e.kind == ExprKind::kFunction && e.function_name == "DATE_TRUNC" &&
      e.args.size() == 2 && e.args[0] != nullptr && e.args[1] != nullptr &&
      e.args[0]->kind == ExprKind::kLiteral &&
      e.args[0]->literal.type() == DataType::kString &&
      IsTimeColumn(*e.args[1])) {
    return DateTruncStepSeconds(e.args[0]->literal.AsString());
  }
  // ts - ts % k (a bare ts % k folds phases together and is NOT a grid).
  if (e.kind == ExprKind::kBinary && e.binary_op == BinaryOp::kSub &&
      e.left != nullptr && IsTimeColumn(*e.left) && e.right != nullptr &&
      e.right->kind == ExprKind::kBinary &&
      e.right->binary_op == BinaryOp::kMod && e.right->left != nullptr &&
      IsTimeColumn(*e.right->left) && e.right->right != nullptr) {
    int64_t k = 0;
    if (IntLiteral(*e.right->right, &k) && k > 0) return k;
  }
  return 0;
}

/// Detects the rollup shape of one statement: records the grid steps and
/// the (single) aggregate kind, and rejects any raw-resolution use of the
/// time or value column outside those shapes.
struct RollupShapeDetector {
  std::vector<int64_t> grid_steps;
  tsdb::RollupAggregate agg = tsdb::RollupAggregate::kNone;
  bool allow_count = false;
  bool valid = true;

  void Walk(const Expr& e) {
    if (!valid) return;
    const int64_t step = GridStepSeconds(e);
    if (step > 0) {
      grid_steps.push_back(step);
      return;  // the grid expression consumes its ts reference
    }
    if (e.kind == ExprKind::kFunction &&
        IsAggregateFunction(e.function_name)) {
      tsdb::RollupAggregate kind;
      if (e.function_name == "SUM") {
        kind = tsdb::RollupAggregate::kSum;
      } else if (e.function_name == "MIN") {
        kind = tsdb::RollupAggregate::kMin;
      } else if (e.function_name == "MAX") {
        kind = tsdb::RollupAggregate::kMax;
      } else if (allow_count && (e.function_name == "COUNT" ||
                                 e.function_name == "__SUM_COUNT")) {
        kind = tsdb::RollupAggregate::kCount;
      } else {
        valid = false;  // AVG/STDDEV/... weight by point count
        return;
      }
      // Only the bare value column recombines exactly (COUNT also takes
      // *), and all aggregates must agree (the scan returns one bucket
      // aggregate).
      const bool star_arg = kind == tsdb::RollupAggregate::kCount &&
                            e.args.size() == 1 && e.args[0] != nullptr &&
                            e.args[0]->kind == ExprKind::kStar;
      const bool value_arg =
          e.args.size() == 1 && e.args[0] != nullptr &&
          e.args[0]->kind == ExprKind::kColumnRef &&
          ToLower(e.args[0]->column) == "value";
      if ((!star_arg && !value_arg) ||
          (agg != tsdb::RollupAggregate::kNone && agg != kind)) {
        valid = false;
        return;
      }
      agg = kind;
      return;
    }
    if (e.kind == ExprKind::kColumnRef) {
      const std::string lower = ToLower(e.column);
      if (lower == "ts" || lower == "timestamp" || lower == "value") {
        valid = false;  // raw-resolution read outside a recognised shape
      }
      return;
    }
    auto walk = [&](const ExprPtr& c) {
      if (c != nullptr) Walk(*c);
    };
    walk(e.left);
    walk(e.right);
    walk(e.between_lo);
    walk(e.between_hi);
    walk(e.case_else);
    for (const ExprPtr& a : e.args) walk(a);
    for (const ExprPtr& a : e.list) walk(a);
    for (const CaseBranch& b : e.case_branches) {
      walk(b.condition);
      walk(b.result);
    }
  }
};

/// True when the conjunct evaluates identically on a tier bucket row and
/// on every raw point of that bucket: a time bound whose half-open edge
/// is a multiple of `tier_step`, or a predicate reading neither ts nor
/// value (series-constant for the scanned rows).
bool ConjunctRollupInvariant(const Expr& c, int64_t tier_step) {
  auto aligned = [tier_step](int64_t v) { return v % tier_step == 0; };
  int64_t a = 0, b = 0;
  if (c.kind == ExprKind::kBetween && !c.negated && c.left != nullptr &&
      IsTimeColumn(*c.left) && IntLiteral(*c.between_lo, &a) &&
      IntLiteral(*c.between_hi, &b) && b < INT64_MAX) {
    return aligned(a) && aligned(b + 1);
  }
  if (c.kind == ExprKind::kBinary && c.left != nullptr &&
      c.right != nullptr) {
    const bool ts_lit = IsTimeColumn(*c.left) && IntLiteral(*c.right, &a);
    const bool lit_ts = IntLiteral(*c.left, &a) && IsTimeColumn(*c.right);
    if ((ts_lit || lit_ts) && a < INT64_MAX) {
      BinaryOp op = c.binary_op;
      if (lit_ts) {
        op = op == BinaryOp::kLt   ? BinaryOp::kGt
             : op == BinaryOp::kLe ? BinaryOp::kGe
             : op == BinaryOp::kGt ? BinaryOp::kLt
             : op == BinaryOp::kGe ? BinaryOp::kLe
                                   : op;
      }
      switch (op) {
        case BinaryOp::kGe:
        case BinaryOp::kLt:
          return aligned(a);
        case BinaryOp::kGt:
        case BinaryOp::kLe:
          return aligned(a + 1);
        default:
          return false;  // ts = a spans [a, a+1): never tier-aligned
      }
    }
  }
  std::set<std::string> refs;
  CollectColumnRefs(c, &refs);
  return refs.count("ts") == 0 && refs.count("timestamp") == 0 &&
         refs.count("value") == 0;
}

/// Sets hints->min_step_seconds / hints->rollup when the statement is a
/// grid-aligned aggregation the store may serve from a rollup tier.
/// `allow_count` additionally admits COUNT shapes (kCount tier).
void DeriveRollupHint(const SelectStatement& stmt, tsdb::ScanHints* hints,
                      bool allow_count) {
  RollupShapeDetector detector;
  detector.allow_count = allow_count;
  for (const SelectItem& item : stmt.items) {
    if (item.is_star) return;  // star reads ts/value at raw resolution
    detector.Walk(*item.expr);
  }
  for (const ExprPtr& g : stmt.group_by) detector.Walk(*g);
  if (stmt.having != nullptr) detector.Walk(*stmt.having);
  for (const OrderByItem& o : stmt.order_by) detector.Walk(*o.expr);
  if (!detector.valid || detector.agg == tsdb::RollupAggregate::kNone) {
    return;
  }
  std::vector<const Expr*> conjuncts;
  if (stmt.where != nullptr) CollectConjuncts(stmt.where.get(), &conjuncts);
  for (const int64_t tier_step : tsdb::kRollupTierSteps) {
    const bool grids_ok = std::all_of(
        detector.grid_steps.begin(), detector.grid_steps.end(),
        [&](int64_t s) { return s % tier_step == 0; });
    if (!grids_ok) continue;
    const bool where_ok = std::all_of(
        conjuncts.begin(), conjuncts.end(), [&](const Expr* c) {
          return ConjunctRollupInvariant(*c, tier_step);
        });
    if (!where_ok) continue;
    hints->min_step_seconds = tier_step;
    hints->rollup = detector.agg;
    return;  // coarsest qualifying tier wins
  }
}

/// Rewrites every COUNT aggregate of a count-rollup-eligible statement to
/// the internal __SUM_COUNT over the value column: scanned `value` then
/// carries per-bucket point counts (or 1.0 per raw-fallback point), and
/// summing them — finalised as an integer — reproduces COUNT exactly.
/// Unaliased select items keep their original display name.
void ReplaceCountNodes(Expr* e) {
  if (e->kind == ExprKind::kFunction && e->function_name == "COUNT") {
    ExprPtr arg;
    if (e->args.size() == 1 && e->args[0] != nullptr &&
        e->args[0]->kind == ExprKind::kColumnRef) {
      arg = std::move(e->args[0]);  // COUNT(value): keep the reference
    } else {
      arg = MakeColumnRef("", "value");  // COUNT(*)
    }
    e->function_name = "__SUM_COUNT";
    e->args.clear();
    e->args.push_back(std::move(arg));
    return;
  }
  auto walk = [&](const ExprPtr& c) {
    if (c != nullptr) ReplaceCountNodes(c.get());
  };
  walk(e->left);
  walk(e->right);
  walk(e->between_lo);
  walk(e->between_hi);
  walk(e->case_else);
  for (const ExprPtr& a : e->args) walk(a);
  for (const ExprPtr& a : e->list) walk(a);
  for (CaseBranch& b : e->case_branches) {
    walk(b.condition);
    walk(b.result);
  }
}

std::unique_ptr<SelectStatement> RewriteCountAggregates(
    const SelectStatement& stmt) {
  std::unique_ptr<SelectStatement> out = CloneSelect(stmt);
  for (SelectItem& item : out->items) {
    if (item.expr == nullptr) continue;
    if (item.alias.empty()) item.alias = item.expr->ToString();
    ReplaceCountNodes(item.expr.get());
  }
  for (ExprPtr& g : out->group_by) ReplaceCountNodes(g.get());
  if (out->having != nullptr) ReplaceCountNodes(out->having.get());
  for (OrderByItem& o : out->order_by) {
    if (o.expr != nullptr) ReplaceCountNodes(o.expr.get());
  }
  return out;
}

// ---------------------------------------------------------------------------
// Projection pruning
// ---------------------------------------------------------------------------

void CollectColumnRefs(const Expr& e, std::set<std::string>* out) {
  if (e.kind == ExprKind::kColumnRef) {
    out->insert(ToLower(e.column));
  }
  auto walk = [&](const ExprPtr& c) {
    if (c != nullptr) CollectColumnRefs(*c, out);
  };
  walk(e.left);
  walk(e.right);
  walk(e.between_lo);
  walk(e.between_hi);
  walk(e.case_else);
  for (const ExprPtr& a : e.args) walk(a);
  for (const ExprPtr& a : e.list) walk(a);
  for (const CaseBranch& b : e.case_branches) {
    walk(b.condition);
    walk(b.result);
  }
}

/// Columns a single-table statement reads. nullopt when pruning is unsafe
/// (SELECT *).
std::optional<std::vector<std::string>> PrunedColumns(
    const SelectStatement& stmt) {
  std::set<std::string> refs;
  for (const SelectItem& item : stmt.items) {
    if (item.is_star) return std::nullopt;
    CollectColumnRefs(*item.expr, &refs);
  }
  if (stmt.where != nullptr) CollectColumnRefs(*stmt.where, &refs);
  for (const ExprPtr& g : stmt.group_by) CollectColumnRefs(*g, &refs);
  if (stmt.having != nullptr) CollectColumnRefs(*stmt.having, &refs);
  for (const OrderByItem& o : stmt.order_by) {
    CollectColumnRefs(*o.expr, &refs);
  }
  return std::vector<std::string>(refs.begin(), refs.end());
}

bool StatementContainsLag(const SelectStatement& stmt) {
  for (const SelectItem& item : stmt.items) {
    if (item.expr != nullptr && ContainsLag(*item.expr)) return true;
  }
  if (stmt.where != nullptr && ContainsLag(*stmt.where)) return true;
  return false;
}

// ---------------------------------------------------------------------------
// Join-aware pushdown helpers
// ---------------------------------------------------------------------------

/// Collects (lowercased qualifier, lowercased column) pairs of every
/// column reference in the expression tree.
void CollectQualifiedRefs(
    const Expr& e, std::set<std::pair<std::string, std::string>>* out) {
  if (e.kind == ExprKind::kColumnRef) {
    out->insert({ToLower(e.qualifier), ToLower(e.column)});
  }
  auto walk = [&](const ExprPtr& c) {
    if (c != nullptr) CollectQualifiedRefs(*c, out);
  };
  walk(e.left);
  walk(e.right);
  walk(e.between_lo);
  walk(e.between_hi);
  walk(e.case_else);
  for (const ExprPtr& a : e.args) walk(a);
  for (const ExprPtr& a : e.list) walk(a);
  for (const CaseBranch& b : e.case_branches) {
    walk(b.condition);
    walk(b.result);
  }
}

/// Every column reference the whole statement makes, qualified-aware.
/// Sets `star` when a SELECT-list * makes pruning unsafe.
void CollectStatementRefs(
    const SelectStatement& stmt, bool* star,
    std::set<std::pair<std::string, std::string>>* refs) {
  for (const SelectItem& item : stmt.items) {
    if (item.is_star) {
      *star = true;
      continue;
    }
    CollectQualifiedRefs(*item.expr, refs);
  }
  if (stmt.where != nullptr) CollectQualifiedRefs(*stmt.where, refs);
  for (const JoinClause& join : stmt.joins) {
    if (join.condition != nullptr) {
      CollectQualifiedRefs(*join.condition, refs);
    }
  }
  for (const ExprPtr& g : stmt.group_by) CollectQualifiedRefs(*g, refs);
  if (stmt.having != nullptr) CollectQualifiedRefs(*stmt.having, refs);
  for (const OrderByItem& o : stmt.order_by) {
    CollectQualifiedRefs(*o.expr, refs);
  }
}

/// Clears the qualifier of every column reference qualified with
/// `qualifier_lower` (used on cloned conjuncts before hint extraction,
/// which matches unqualified time/metric/tag shapes only).
void StripQualifier(Expr* e, const std::string& qualifier_lower) {
  if (e->kind == ExprKind::kColumnRef &&
      ToLower(e->qualifier) == qualifier_lower) {
    e->qualifier.clear();
  }
  auto walk = [&](const ExprPtr& c) {
    if (c != nullptr) StripQualifier(c.get(), qualifier_lower);
  };
  walk(e->left);
  walk(e->right);
  walk(e->between_lo);
  walk(e->between_hi);
  walk(e->case_else);
  for (const ExprPtr& a : e->args) walk(a);
  for (const ExprPtr& a : e->list) walk(a);
  for (CaseBranch& b : e->case_branches) {
    walk(b.condition);
    walk(b.result);
  }
}

// ---------------------------------------------------------------------------
// Optimiser: shared statement/shape analysis
// ---------------------------------------------------------------------------

/// Qualifier usage of one expression tree.
struct RefInfo {
  bool unqualified = false;           // some reference has no qualifier
  std::set<std::string> quals;        // lowercased qualifiers referenced
};

void CollectRefInfo(const Expr& e, RefInfo* out) {
  if (e.kind == ExprKind::kColumnRef) {
    if (e.qualifier.empty()) {
      out->unqualified = true;
    } else {
      out->quals.insert(ToLower(e.qualifier));
    }
  }
  auto walk = [&](const ExprPtr& c) {
    if (c != nullptr) CollectRefInfo(*c, out);
  };
  walk(e.left);
  walk(e.right);
  walk(e.between_lo);
  walk(e.between_hi);
  walk(e.case_else);
  for (const ExprPtr& a : e.args) walk(a);
  for (const ExprPtr& a : e.list) walk(a);
  for (const CaseBranch& b : e.case_branches) {
    walk(b.condition);
    walk(b.result);
  }
}

/// Topmost aggregate calls of the tree (aggregates cannot nest).
void CollectAggregates(const Expr& e, std::vector<const Expr*>* out) {
  if (e.kind == ExprKind::kFunction && IsAggregateFunction(e.function_name)) {
    out->push_back(&e);
    return;
  }
  auto walk = [&](const ExprPtr& c) {
    if (c != nullptr) CollectAggregates(*c, out);
  };
  walk(e.left);
  walk(e.right);
  walk(e.between_lo);
  walk(e.between_hi);
  walk(e.case_else);
  for (const ExprPtr& a : e.args) walk(a);
  for (const ExprPtr& a : e.list) walk(a);
  for (const CaseBranch& b : e.case_branches) {
    walk(b.condition);
    walk(b.result);
  }
}

/// The left-deep join region of one single-select subtree.
struct JoinSpine {
  struct Leaf {
    std::unique_ptr<LogicalNode>* slot = nullptr;  // owning pointer slot
    LogicalNode* node = nullptr;
    std::string qual_lower;
  };
  std::vector<LogicalNode*> joins;  // top-down (last = bottom join)
  std::vector<Leaf> leaves;         // statement order
  bool valid = false;               // leaves well-formed, aliases unique
};

/// Descends from the subtree root through SortLimit/Aggregate/Project/
/// Filter to the FROM region and collects the join spine. The returned
/// slot (never null for well-formed plans) owns the FROM subtree root.
std::unique_ptr<LogicalNode>* FromSlot(LogicalNode* root) {
  LogicalNode* n = root;
  std::unique_ptr<LogicalNode>* slot = nullptr;
  while (n->op == LogicalOp::kSortLimit || n->op == LogicalOp::kAggregate ||
         n->op == LogicalOp::kProject || n->op == LogicalOp::kFilter) {
    if (n->children.empty()) return nullptr;
    slot = &n->children[0];
    n = slot->get();
  }
  return slot;
}

JoinSpine AnalyzeJoins(std::unique_ptr<LogicalNode>* from_slot) {
  JoinSpine spine;
  if (from_slot == nullptr || (*from_slot)->op != LogicalOp::kJoin) {
    return spine;
  }
  LogicalNode* n = from_slot->get();
  while (n->op == LogicalOp::kJoin) {
    spine.joins.push_back(n);
    n = n->children[0].get();
  }
  LogicalNode* bottom = spine.joins.back();
  spine.leaves.push_back({&bottom->children[0], bottom->children[0].get(),
                          ToLower(bottom->children[0]->qualifier)});
  for (auto it = spine.joins.rbegin(); it != spine.joins.rend(); ++it) {
    LogicalNode* right = (*it)->children[1].get();
    spine.leaves.push_back(
        {&(*it)->children[1], right, ToLower(right->qualifier)});
  }
  std::set<std::string> seen;
  spine.valid = true;
  for (const JoinSpine::Leaf& leaf : spine.leaves) {
    const bool scannable = leaf.node->op == LogicalOp::kScan ||
                           leaf.node->op == LogicalOp::kSubquery;
    if (!scannable || leaf.qual_lower.empty() ||
        !seen.insert(leaf.qual_lower).second) {
      spine.valid = false;
      break;
    }
  }
  return spine;
}

bool AllInnerOrCross(const JoinSpine& spine) {
  return std::all_of(spine.joins.begin(), spine.joins.end(),
                     [](const LogicalNode* j) {
                       return j->join != nullptr &&
                              (j->join->type == JoinType::kInner ||
                               j->join->type == JoinType::kCross);
                     });
}

/// True when an ORDER BY expression is a bare column reference naming a
/// select-item output column — those sort keys resolve against the final
/// output schema, which no plan rewrite changes.
bool OrderKeyNamesOutputColumn(const Expr& e,
                               const std::vector<SelectItem>& items) {
  if (e.kind != ExprKind::kColumnRef) return false;
  const std::string text = ToLower(NormalizedExprText(e));
  for (const SelectItem& item : items) {
    if (item.is_star) continue;
    if (ToLower(ItemName(item)) == text) return true;
  }
  return false;
}

/// True when the expression's value is determined by the group: every
/// non-aggregate path either matches a GROUP BY expression or reaches no
/// column reference. Plan rewrites change which input row represents a
/// group, so grouped statements are only optimised when no expression
/// depends on that representative.
bool GroupDetermined(const Expr& e, const std::set<std::string>& group_texts) {
  if (e.kind == ExprKind::kFunction && IsAggregateFunction(e.function_name)) {
    return true;
  }
  if (group_texts.count(NormalizedExprText(e)) > 0) return true;
  if (e.kind == ExprKind::kColumnRef) return false;
  bool ok = true;
  auto walk = [&](const ExprPtr& c) {
    if (c != nullptr && !GroupDetermined(*c, group_texts)) ok = false;
  };
  walk(e.left);
  walk(e.right);
  walk(e.between_lo);
  walk(e.between_hi);
  walk(e.case_else);
  for (const ExprPtr& a : e.args) walk(a);
  for (const ExprPtr& a : e.list) walk(a);
  for (const CaseBranch& b : e.case_branches) {
    walk(b.condition);
    walk(b.result);
  }
  return ok;
}

std::set<std::string> GroupTexts(const SelectStatement& stmt) {
  std::set<std::string> texts;
  for (const ExprPtr& g : stmt.group_by) {
    if (g != nullptr) texts.insert(NormalizedExprText(*g));
  }
  return texts;
}

/// The shared eligibility gate of the plan-rewriting passes. Both passes
/// change the order in which rows reach downstream operators, so they
/// must not fire when anything observable depends on that order:
///  - every column reference must bind by qualifier to a known relation
///    (the evaluator's unqualified fallback is position-sensitive);
///    ORDER BY references to select-item output names are exempt;
///  - SELECT * exposes position-dependent column order; LAG reads
///    neighbouring rows; LIMIT without ORDER BY keeps "the first k";
///  - grouped statements additionally need every select/HAVING
///    expression group-determined (no representative-row dependence),
///    and ORDER BY keys naming output columns.
bool StatementShapeOptimizable(const SelectStatement& stmt,
                               const std::set<std::string>& leaf_quals,
                               bool aggregated) {
  if (stmt.limit.has_value() && stmt.order_by.empty()) return false;
  bool star = false;
  std::set<std::pair<std::string, std::string>> refs;
  CollectStatementRefs(stmt, &star, &refs);
  if (star) return false;
  // CollectStatementRefs covers ORDER BY too; output-name references are
  // re-admitted below.
  auto lag_in = [](const Expr* e) { return e != nullptr && ContainsLag(*e); };
  for (const SelectItem& item : stmt.items) {
    if (lag_in(item.expr.get())) return false;
  }
  if (lag_in(stmt.where.get()) || lag_in(stmt.having.get())) return false;
  for (const JoinClause& join : stmt.joins) {
    if (lag_in(join.condition.get())) return false;
  }
  for (const ExprPtr& g : stmt.group_by) {
    if (lag_in(g.get())) return false;
  }
  for (const OrderByItem& o : stmt.order_by) {
    if (lag_in(o.expr.get())) return false;
    if (o.expr != nullptr && o.expr->ContainsAggregate()) return false;
    if (aggregated && !OrderKeyNamesOutputColumn(*o.expr, stmt.items)) {
      return false;
    }
  }
  // Output-name ORDER BY keys may be unqualified (aliases) without
  // binding to a relation; drop them before the qualifier check.
  std::set<std::pair<std::string, std::string>> order_exempt;
  for (const OrderByItem& o : stmt.order_by) {
    if (o.expr != nullptr && OrderKeyNamesOutputColumn(*o.expr, stmt.items)) {
      order_exempt.insert(
          {ToLower(o.expr->qualifier), ToLower(o.expr->column)});
    }
  }
  for (const auto& ref : refs) {
    if (order_exempt.count(ref) > 0) continue;
    if (ref.first.empty() || leaf_quals.count(ref.first) == 0) return false;
  }
  if (aggregated) {
    const std::set<std::string> group_texts = GroupTexts(stmt);
    for (const SelectItem& item : stmt.items) {
      if (item.expr != nullptr && !GroupDetermined(*item.expr, group_texts)) {
        return false;
      }
    }
    if (stmt.having != nullptr &&
        !GroupDetermined(*stmt.having, group_texts)) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Optimiser: join reordering machinery
// ---------------------------------------------------------------------------

/// One WHERE/ON conjunct of the join region, with the set of relations it
/// references as a bitmask over statement-order leaf indices.
struct JoinConjunct {
  const Expr* expr = nullptr;
  uint64_t mask = 0;
  bool equality = false;
};

size_t Popcount(uint64_t v) {
  size_t n = 0;
  while (v != 0) {
    v &= v - 1;
    ++n;
  }
  return n;
}

/// Independence-model estimate of the join of the relations in `mask`.
double MaskRows(uint64_t mask, const std::vector<double>& base,
                const std::vector<JoinConjunct>& conjuncts) {
  double rows = 1.0;
  for (size_t i = 0; i < base.size(); ++i) {
    if ((mask >> i) & 1) rows *= cost::KnownOrDefault(base[i]);
  }
  for (const JoinConjunct& c : conjuncts) {
    if (!c.equality || Popcount(c.mask) != 2) continue;
    if ((c.mask & mask) != c.mask) continue;
    double largest = 1.0;
    for (size_t i = 0; i < base.size(); ++i) {
      if ((c.mask >> i) & 1) {
        largest = std::max(largest, cost::KnownOrDefault(base[i]));
      }
    }
    rows /= largest;
  }
  return cost::ClampRows(rows);
}

/// Left-deep DP over all join orders (n <= kJoinReorderDpLimit). Ties are
/// broken deterministically towards statement order (ascending masks and
/// extension indices; strict improvement required to replace).
std::vector<size_t> DpJoinOrder(const std::vector<double>& base,
                                const std::vector<JoinConjunct>& conjuncts) {
  const size_t n = base.size();
  const uint64_t full = (uint64_t{1} << n) - 1;
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> best_cost(full + 1, inf);
  std::vector<std::vector<size_t>> best_order(full + 1);
  for (size_t i = 0; i < n; ++i) {
    best_cost[uint64_t{1} << i] = 0.0;
    best_order[uint64_t{1} << i] = {i};
  }
  for (uint64_t mask = 1; mask <= full; ++mask) {
    if (best_cost[mask] == inf || mask == full) continue;
    const double acc_rows = MaskRows(mask, base, conjuncts);
    for (size_t j = 0; j < n; ++j) {
      const uint64_t bit = uint64_t{1} << j;
      if ((mask & bit) != 0) continue;
      const uint64_t next = mask | bit;
      const double out_rows = MaskRows(next, base, conjuncts);
      const double step = cost::JoinStepCost(
          acc_rows, cost::KnownOrDefault(base[j]), out_rows);
      const double cand = best_cost[mask] + step;
      if (cand < best_cost[next]) {
        best_cost[next] = cand;
        best_order[next] = best_order[mask];
        best_order[next].push_back(j);
      }
    }
  }
  return best_order[full];
}

/// Greedy order for join graphs beyond the DP limit: start from the
/// smallest relation, repeatedly add the connected relation minimising
/// the intermediate estimate (falling back to the smallest unconnected).
std::vector<size_t> GreedyJoinOrder(
    const std::vector<double>& base,
    const std::vector<JoinConjunct>& conjuncts) {
  const size_t n = base.size();
  size_t start = 0;
  for (size_t i = 1; i < n; ++i) {
    if (cost::KnownOrDefault(base[i]) <
        cost::KnownOrDefault(base[start])) {
      start = i;
    }
  }
  std::vector<size_t> order{start};
  uint64_t mask = uint64_t{1} << start;
  while (order.size() < n) {
    std::optional<size_t> best;
    double best_rows = 0.0;
    bool best_connected = false;
    for (size_t j = 0; j < n; ++j) {
      const uint64_t bit = uint64_t{1} << j;
      if ((mask & bit) != 0) continue;
      const bool connected = std::any_of(
          conjuncts.begin(), conjuncts.end(), [&](const JoinConjunct& c) {
            return c.equality && (c.mask & bit) != 0 &&
                   (c.mask & mask) != 0 && (c.mask & ~(mask | bit)) == 0;
          });
      const double rows = connected
                              ? MaskRows(mask | bit, base, conjuncts)
                              : cost::KnownOrDefault(base[j]);
      if (!best.has_value() || (connected && !best_connected) ||
          (connected == best_connected && rows < best_rows)) {
        best = j;
        best_rows = rows;
        best_connected = connected;
      }
    }
    order.push_back(*best);
    mask |= uint64_t{1} << *best;
  }
  return order;
}

// ---------------------------------------------------------------------------
// Optimiser: aggregate pushdown machinery
// ---------------------------------------------------------------------------

/// Rewrite state for one pushdown: the chosen relation R, the partial
/// group keys discovered so far, and the per-aggregate replacement
/// templates for the statement above the join.
struct PushdownCtx {
  std::string r_lower;              // R's qualifier, lowercased
  std::string r_qual;               // R's qualifier as written
  std::map<std::string, size_t> key_map;  // normalized text -> key index
  std::vector<ExprPtr> key_exprs;         // key expressions (R columns)
  std::map<std::string, ExprPtr> agg_repl;  // normalized agg -> template
  size_t pa_count = 0;                      // partial aggregate items
};

ExprPtr KeyRef(const PushdownCtx& ctx, size_t idx) {
  return MakeColumnRef(ctx.r_qual, "__pk" + std::to_string(idx));
}

size_t AddKey(PushdownCtx* ctx, const Expr& e) {
  const std::string norm = NormalizedExprText(e);
  auto it = ctx->key_map.find(norm);
  if (it != ctx->key_map.end()) return it->second;
  const size_t idx = ctx->key_exprs.size();
  ctx->key_exprs.push_back(e.Clone());
  ctx->key_map.emplace(norm, idx);
  return idx;
}

ExprPtr WrapAgg(const std::string& name, ExprPtr arg) {
  std::vector<ExprPtr> args;
  args.push_back(std::move(arg));
  return MakeFunction(name, std::move(args));
}

/// Builds the partial-aggregate select items and the finalising
/// replacement template for every distinct aggregate. Supported shapes:
/// SUM/MIN/MAX recombine through themselves, COUNT through __SUM_COUNT,
/// AVG through a guarded SUM/__SUM_COUNT ratio. Returns false for
/// anything else (STDDEV, PERCENTILE, multi-argument calls).
bool BuildAggRewrites(const std::vector<const Expr*>& aggs, PushdownCtx* ctx,
                      std::vector<SelectItem>* partial_items) {
  for (const Expr* a : aggs) {
    const std::string norm = NormalizedExprText(*a);
    if (ctx->agg_repl.count(norm) > 0) continue;
    if (a->args.size() != 1 || a->args[0] == nullptr) return false;
    const Expr& arg = *a->args[0];
    const bool star = arg.kind == ExprKind::kStar;
    const std::string& fn = a->function_name;
    auto add_partial = [&](const std::string& fname) {
      const size_t idx = ctx->pa_count++;
      SelectItem item;
      item.expr = WrapAgg(fname, star ? MakeStar() : arg.Clone());
      item.alias = "__pa" + std::to_string(idx);
      partial_items->push_back(std::move(item));
      return idx;
    };
    ExprPtr repl;
    if (fn == "SUM" || fn == "MIN" || fn == "MAX") {
      if (star) return false;
      repl = WrapAgg(fn, KeyRef(*ctx, 0));  // placeholder arg, fixed below
      repl->args[0] = MakeColumnRef(
          ctx->r_qual, "__pa" + std::to_string(add_partial(fn)));
    } else if (fn == "COUNT" || fn == "__SUM_COUNT") {
      if (star && fn != "COUNT") return false;
      repl = WrapAgg("__SUM_COUNT",
                     MakeColumnRef(ctx->r_qual,
                                   "__pa" + std::to_string(add_partial(fn))));
    } else if (fn == "AVG") {
      if (star) return false;
      const size_t sum_idx = add_partial("SUM");
      const size_t cnt_idx = add_partial("COUNT");
      auto pa = [&](size_t idx) {
        return MakeColumnRef(ctx->r_qual, "__pa" + std::to_string(idx));
      };
      // CASE WHEN __SUM_COUNT(cnt) > 0 THEN SUM(sum) / __SUM_COUNT(cnt)
      // END — NULL (no ELSE) reproduces AVG over an all-NULL group.
      ExprPtr cond =
          MakeBinary(BinaryOp::kGt, WrapAgg("__SUM_COUNT", pa(cnt_idx)),
                     MakeLiteral(table::Value::Int(0)));
      ExprPtr ratio =
          MakeBinary(BinaryOp::kDiv, WrapAgg("SUM", pa(sum_idx)),
                     WrapAgg("__SUM_COUNT", pa(cnt_idx)));
      repl = std::make_unique<Expr>();
      repl->kind = ExprKind::kCase;
      CaseBranch branch;
      branch.condition = std::move(cond);
      branch.result = std::move(ratio);
      repl->case_branches.push_back(std::move(branch));
    } else {
      return false;
    }
    ctx->agg_repl.emplace(norm, std::move(repl));
  }
  return true;
}

/// Rewrites one expression of the statement above the pushed aggregate:
/// aggregate calls become their replacement templates, maximal R-only
/// subexpressions become partial-key references (added as new keys where
/// the context allows), everything else is cloned unchanged. Sets *ok to
/// false when an R-only subexpression cannot legally become a key.
ExprPtr RewriteAbovePushdown(const Expr& e, PushdownCtx* ctx,
                             bool allow_new_keys, bool* ok) {
  if (!*ok) return nullptr;
  if (e.kind == ExprKind::kFunction && IsAggregateFunction(e.function_name)) {
    auto it = ctx->agg_repl.find(NormalizedExprText(e));
    if (it == ctx->agg_repl.end()) {
      *ok = false;  // aggregate outside the rewritten set (e.g. in WHERE)
      return nullptr;
    }
    return it->second->Clone();
  }
  RefInfo info;
  CollectRefInfo(e, &info);
  const bool r_only = !info.unqualified && info.quals.size() == 1 &&
                      *info.quals.begin() == ctx->r_lower &&
                      !e.ContainsAggregate();
  if (r_only) {
    const std::string norm = NormalizedExprText(e);
    auto it = ctx->key_map.find(norm);
    if (it != ctx->key_map.end()) return KeyRef(*ctx, it->second);
    if (!allow_new_keys) {
      *ok = false;
      return nullptr;
    }
    return KeyRef(*ctx, AddKey(ctx, e));
  }
  if (info.quals.count(ctx->r_lower) == 0) return e.Clone();
  // Mixed: rebuild this node with rewritten children.
  ExprPtr out = e.Clone();
  auto rw = [&](ExprPtr* slot, const ExprPtr& src) {
    if (src != nullptr) {
      *slot = RewriteAbovePushdown(*src, ctx, allow_new_keys, ok);
    }
  };
  rw(&out->left, e.left);
  rw(&out->right, e.right);
  rw(&out->between_lo, e.between_lo);
  rw(&out->between_hi, e.between_hi);
  rw(&out->case_else, e.case_else);
  for (size_t i = 0; i < e.args.size(); ++i) rw(&out->args[i], e.args[i]);
  for (size_t i = 0; i < e.list.size(); ++i) rw(&out->list[i], e.list[i]);
  for (size_t i = 0; i < e.case_branches.size(); ++i) {
    rw(&out->case_branches[i].condition, e.case_branches[i].condition);
    rw(&out->case_branches[i].result, e.case_branches[i].result);
  }
  return out;
}

ExprPtr AndChain(std::vector<ExprPtr> conjuncts) {
  ExprPtr out;
  for (ExprPtr& c : conjuncts) {
    out = out == nullptr
              ? std::move(c)
              : MakeBinary(BinaryOp::kAnd, std::move(out), std::move(c));
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Planner: stage 1 — build (statement-order logical IR)
// ---------------------------------------------------------------------------

tsdb::ScanHints Planner::JoinInputHints(const SelectStatement& stmt,
                                        const TableRef& ref,
                                        const std::string& qualifier) const {
  // Only plain tables with hint-honouring providers benefit, and LAG
  // anywhere in the scan-visible stages disables pushdown (LAG reads
  // neighbouring rows, so the scanned row set must not shrink).
  if (ref.subquery != nullptr || !catalog_->SupportsHints(ref.table_name) ||
      StatementContainsLag(stmt)) {
    return tsdb::ScanHints{};
  }
  const std::string q = ToLower(qualifier);

  // Predicate pushdown: a top-level WHERE conjunct narrows this input
  // when every column it references is qualified with this input's name
  // (unqualified references could bind to either side of the join).
  // Qualifiers are stripped from a clone so the unqualified
  // time/metric/tag shapes of hint extraction match; the original
  // conjunct always stays in the residual filter, and the pushable
  // shapes are all NULL-rejecting, so narrowing either side of an outer
  // join never changes the filtered result.
  std::vector<ExprPtr> stripped;
  if (stmt.where != nullptr) {
    std::vector<const Expr*> conjuncts;
    CollectConjuncts(stmt.where.get(), &conjuncts);
    for (const Expr* c : conjuncts) {
      std::set<std::pair<std::string, std::string>> refs;
      CollectQualifiedRefs(*c, &refs);
      if (refs.empty()) continue;
      const bool all_this_side =
          std::all_of(refs.begin(), refs.end(),
                      [&](const auto& r) { return r.first == q; });
      if (!all_this_side) continue;
      ExprPtr clone = c->Clone();
      StripQualifier(clone.get(), q);
      stripped.push_back(std::move(clone));
    }
  }
  std::vector<const Expr*> ptrs;
  ptrs.reserve(stripped.size());
  for (const ExprPtr& e : stripped) ptrs.push_back(e.get());
  tsdb::ScanHints hints = HintsFromConjuncts(ptrs);

  // Projection pruning: this input needs the columns referenced under its
  // qualifier plus every unqualified reference (which may bind here).
  bool star = false;
  std::set<std::pair<std::string, std::string>> refs;
  CollectStatementRefs(stmt, &star, &refs);
  if (!star) {
    std::set<std::string> cols;
    for (const auto& [rq, col] : refs) {
      if (rq == q || rq.empty()) cols.insert(col);
    }
    hints.projection.assign(cols.begin(), cols.end());
  }
  return hints;
}

Result<std::unique_ptr<LogicalNode>> Planner::BuildSource(
    const TableRef& ref, const std::string& qualifier,
    tsdb::ScanHints hints, LogicalPlan* plan) const {
  if (ref.subquery != nullptr) {
    EXPLAINIT_ASSIGN_OR_RETURN(auto sub,
                               BuildStatement(*ref.subquery, plan));
    auto node = std::make_unique<LogicalNode>(LogicalOp::kSubquery);
    node->qualifier = qualifier;
    node->est_rows = sub->est_rows;
    node->stmt = ref.subquery.get();
    node->children.push_back(std::move(sub));
    return node;
  }
  auto node = std::make_unique<LogicalNode>(LogicalOp::kScan);
  node->table_name = ref.table_name;
  node->qualifier = qualifier;
  // Hinted projections also prune the materialised table (unknown
  // references keep flowing so the evaluator reports them properly).
  if (!hints.projection.empty()) node->projection = hints.projection;
  const std::optional<size_t> rows = catalog_->EstimatedRows(ref.table_name);
  node->est_rows = rows.has_value()
                       ? cost::ClampRows(static_cast<double>(*rows) *
                                         cost::ScanSelectivity(hints))
                       : cost::kUnknownRows;
  node->hints = std::move(hints);
  return node;
}

Result<std::unique_ptr<LogicalNode>> Planner::BuildFrom(
    const SelectStatement& stmt, tsdb::ScanHints base_hints,
    LogicalPlan* plan) const {
  if (!stmt.from.has_value()) {
    return std::make_unique<LogicalNode>(LogicalOp::kSingleRow);
  }
  const TableRef& ref = *stmt.from;
  const bool has_joins = !stmt.joins.empty();

  if (!has_joins) {
    if (ref.subquery != nullptr) {
      EXPLAINIT_ASSIGN_OR_RETURN(auto sub,
                                 BuildStatement(*ref.subquery, plan));
      auto node = std::make_unique<LogicalNode>(LogicalOp::kSubquery);
      node->est_rows = sub->est_rows;
      node->stmt = ref.subquery.get();
      node->children.push_back(std::move(sub));
      return node;
    }
    // Single-table scan: attach pushdown hints and projection pruning.
    auto node = std::make_unique<LogicalNode>(LogicalOp::kScan);
    node->table_name = ref.table_name;
    node->projection = PrunedColumns(stmt);
    tsdb::ScanHints hints = std::move(base_hints);
    if (node->projection.has_value()) hints.projection = *node->projection;
    const std::optional<size_t> rows =
        catalog_->EstimatedRows(ref.table_name);
    node->est_rows = rows.has_value()
                         ? cost::ClampRows(static_cast<double>(*rows) *
                                           cost::ScanSelectivity(hints))
                         : cost::kUnknownRows;
    node->hints = std::move(hints);
    return node;
  }

  // Join tree: left-deep, every input qualified with its effective name.
  // Each plain-table input receives its own pushdown hints, derived from
  // the WHERE conjuncts that bind entirely to it. A duplicated qualifier
  // would make "binds to this input" ambiguous (a conjunct could narrow
  // a relation it does not constrain), so pushdown is disabled outright.
  std::string base_name = ref.EffectiveName();
  if (base_name.empty()) base_name = "_t0";
  bool unique_names = true;
  {
    std::set<std::string> names{ToLower(base_name)};
    for (const JoinClause& join : stmt.joins) {
      const std::string& n = join.right.EffectiveName();
      if (!n.empty() && !names.insert(ToLower(n)).second) {
        unique_names = false;
      }
    }
  }
  auto side_hints = [&](const TableRef& side_ref,
                        const std::string& qualifier) {
    return unique_names ? JoinInputHints(stmt, side_ref, qualifier)
                        : tsdb::ScanHints{};
  };
  EXPLAINIT_ASSIGN_OR_RETURN(
      std::unique_ptr<LogicalNode> acc,
      BuildSource(ref, base_name, side_hints(ref, base_name), plan));
  std::optional<size_t> acc_rows =
      ref.subquery == nullptr ? catalog_->EstimatedRows(ref.table_name)
                              : std::nullopt;
  for (const JoinClause& join : stmt.joins) {
    std::string right_name = join.right.EffectiveName();
    if (right_name.empty()) {
      right_name =
          "_t" + std::to_string(&join - stmt.joins.data() + 1);
    }
    EXPLAINIT_ASSIGN_OR_RETURN(
        auto right,
        BuildSource(join.right, right_name,
                    side_hints(join.right, right_name), plan));
    auto node = std::make_unique<LogicalNode>(LogicalOp::kJoin);
    node->join = &join;
    node->equi = join.condition != nullptr &&
                 HasEqualityConjunct(join.condition.get());
    if (node->equi) {
      // Broadcast heuristic: build on the smaller side when both row
      // counts are known. Outer joins swap too — the join pads
      // unmatched rows by the actual build side, so orientation only
      // affects cost, never results.
      std::optional<size_t> right_rows =
          join.right.subquery == nullptr
              ? catalog_->EstimatedRows(join.right.table_name)
              : std::nullopt;
      if ((join.type == JoinType::kInner ||
           join.type == JoinType::kLeft ||
           join.type == JoinType::kFullOuter) &&
          acc_rows.has_value() && right_rows.has_value() &&
          *acc_rows < *right_rows) {
        node->build_left = true;
      }
    }
    // Cardinality annotation (the cost model; never affects lowering).
    size_t equalities = 0;
    if (join.condition != nullptr) {
      std::vector<const Expr*> conjuncts;
      CollectConjuncts(join.condition.get(), &conjuncts);
      for (const Expr* c : conjuncts) {
        if (c->kind == ExprKind::kBinary && c->binary_op == BinaryOp::kEq) {
          ++equalities;
        }
      }
    }
    if (acc->est_rows >= 0.0 && right->est_rows >= 0.0) {
      node->est_rows =
          cost::JoinOutputRows(acc->est_rows, right->est_rows, equalities);
    }
    node->children.push_back(std::move(acc));
    node->children.push_back(std::move(right));
    acc = std::move(node);
    acc_rows.reset();  // join output size is unknown
  }
  return acc;
}

Result<std::unique_ptr<LogicalNode>> Planner::BuildSingle(
    const SelectStatement& stmt, LogicalPlan* plan) const {
  // Predicate pushdown: single plain table, hint-aware provider, no LAG
  // in the scan-visible stages (LAG reads neighbouring rows, so the
  // scanned row set must not shrink). The filter keeps the full WHERE
  // either way; hints only shrink what the provider materialises.
  const bool pushdown_eligible =
      stmt.from.has_value() && stmt.from->subquery == nullptr &&
      stmt.joins.empty() &&
      catalog_->SupportsHints(stmt.from->table_name) &&
      !StatementContainsLag(stmt);

  // COUNT rollup routing: a grid-aligned COUNT over a store-backed table
  // whose provider forwards hints verbatim rewrites to __SUM_COUNT(value)
  // and reads the count tier (raw fallback rows substitute value = 1.0).
  // The rewrite and the hint travel together: without the hint the value
  // column holds raw samples and the rewritten statement would be wrong,
  // so the probe below requires a qualifying tier first.
  const SelectStatement* eff = &stmt;
  const bool allow_count =
      pushdown_eligible && options_.enabled && options_.count_rollups &&
      catalog_->SupportsExactRollups(stmt.from->table_name);
  if (allow_count) {
    tsdb::ScanHints probe;
    DeriveRollupHint(stmt, &probe, /*allow_count=*/true);
    if (probe.min_step_seconds > 0 &&
        probe.rollup == tsdb::RollupAggregate::kCount) {
      eff = plan->AddStatement(RewriteCountAggregates(stmt));
      ++plan->count_rollup_rewrites;
    }
  }

  tsdb::ScanHints hints;
  if (pushdown_eligible && eff->where != nullptr) {
    hints = ExtractHints(eff->where.get());
  }
  // Resolution hint: grid-aligned aggregations may be served from the
  // store's rollup tiers (see "Rollup resolution hints" above).
  if (pushdown_eligible) DeriveRollupHint(*eff, &hints, allow_count);

  EXPLAINIT_ASSIGN_OR_RETURN(auto node,
                             BuildFrom(*eff, std::move(hints), plan));
  if (eff->where != nullptr) {
    auto filter = std::make_unique<LogicalNode>(LogicalOp::kFilter);
    filter->predicate = eff->where.get();
    filter->est_rows = cost::FilterOutputRows(node->est_rows);
    filter->children.push_back(std::move(node));
    node = std::move(filter);
  }

  const bool aggregated =
      !eff->group_by.empty() ||
      std::any_of(eff->items.begin(), eff->items.end(),
                  [](const SelectItem& i) {
                    return i.expr != nullptr && i.expr->ContainsAggregate();
                  });
  const bool needs_sort_limit =
      !eff->order_by.empty() || eff->limit.has_value();
  // Pre-projection rows are only consulted by an ORDER BY whose keys
  // resolve against neither side; retaining them otherwise would force
  // the aggregate's partial path to re-materialise its input.
  const bool retain = !eff->order_by.empty();

  if (aggregated) {
    auto agg = std::make_unique<LogicalNode>(LogicalOp::kAggregate);
    agg->stmt = eff;
    agg->retain = retain;
    agg->est_rows = eff->group_by.empty()
                        ? 1.0
                        : cost::AggregateOutputRows(node->est_rows);
    agg->children.push_back(std::move(node));
    node = std::move(agg);
  } else {
    auto project = std::make_unique<LogicalNode>(LogicalOp::kProject);
    project->stmt = eff;
    project->retain = retain;
    project->est_rows = node->est_rows;
    project->children.push_back(std::move(node));
    node = std::move(project);
  }
  if (needs_sort_limit) {
    auto sort = std::make_unique<LogicalNode>(LogicalOp::kSortLimit);
    sort->stmt = eff;
    sort->aggregated = aggregated;
    sort->est_rows = node->est_rows;
    if (eff->limit.has_value() && *eff->limit >= 0 &&
        (sort->est_rows < 0.0 ||
         sort->est_rows > static_cast<double>(*eff->limit))) {
      sort->est_rows = static_cast<double>(*eff->limit);
    }
    sort->children.push_back(std::move(node));
    node = std::move(sort);
  }

  if (options_.enabled) OptimizeSingle(node.get(), *eff, plan);
  return node;
}

Result<std::unique_ptr<LogicalNode>> Planner::BuildStatement(
    const SelectStatement& stmt, LogicalPlan* plan) const {
  EXPLAINIT_ASSIGN_OR_RETURN(auto first, BuildSingle(stmt, plan));
  if (stmt.union_all.empty()) return first;
  auto node = std::make_unique<LogicalNode>(LogicalOp::kUnion);
  node->est_rows = first->est_rows;
  node->children.push_back(std::move(first));
  for (const auto& next : stmt.union_all) {
    EXPLAINIT_ASSIGN_OR_RETURN(auto branch, BuildSingle(*next, plan));
    if (node->est_rows >= 0.0) {
      node->est_rows = branch->est_rows >= 0.0
                           ? node->est_rows + branch->est_rows
                           : cost::kUnknownRows;
    }
    node->children.push_back(std::move(branch));
  }
  return node;
}

// ---------------------------------------------------------------------------
// Planner: stage 2 — rule passes
// ---------------------------------------------------------------------------

void Planner::OptimizeSingle(LogicalNode* root, const SelectStatement& stmt,
                             LogicalPlan* plan) const {
  if (options_.reorder_joins) ReorderJoins(root, stmt, plan);
  if (options_.pushdown_aggregates) PushdownAggregate(root, stmt, plan);
}

void Planner::ReorderJoins(LogicalNode* root, const SelectStatement& stmt,
                           LogicalPlan* plan) const {
  std::unique_ptr<LogicalNode>* from_slot = FromSlot(root);
  JoinSpine spine = AnalyzeJoins(from_slot);
  if (!spine.valid || spine.joins.size() < 2) return;  // < 3 relations
  if (!AllInnerOrCross(spine)) return;
  std::set<std::string> leaf_quals;
  for (const JoinSpine::Leaf& leaf : spine.leaves) {
    leaf_quals.insert(leaf.qual_lower);
  }
  bool aggregated = false;
  for (LogicalNode* n = root; n != nullptr;
       n = n->children.empty() ? nullptr : n->children[0].get()) {
    if (n->op == LogicalOp::kAggregate) aggregated = true;
    if (n->op == LogicalOp::kFilter || n->op == LogicalOp::kJoin) break;
  }
  if (!StatementShapeOptimizable(stmt, leaf_quals, aggregated)) return;

  const size_t n = spine.leaves.size();
  if (n > 63) return;
  std::vector<double> base(n);
  for (size_t i = 0; i < n; ++i) base[i] = spine.leaves[i].node->est_rows;

  // Conjuncts of every ON condition, with relation masks by qualifier.
  std::vector<JoinConjunct> conjuncts;
  for (const LogicalNode* j : spine.joins) {
    if (j->join == nullptr || j->join->condition == nullptr) continue;
    std::vector<const Expr*> parts;
    CollectConjuncts(j->join->condition.get(), &parts);
    for (const Expr* c : parts) {
      JoinConjunct jc;
      jc.expr = c;
      RefInfo info;
      CollectRefInfo(*c, &info);
      if (info.unqualified) return;  // gate should have caught; be safe
      for (const std::string& q : info.quals) {
        for (size_t i = 0; i < n; ++i) {
          if (spine.leaves[i].qual_lower == q) jc.mask |= uint64_t{1} << i;
        }
      }
      jc.equality =
          c->kind == ExprKind::kBinary && c->binary_op == BinaryOp::kEq;
      conjuncts.push_back(std::move(jc));
    }
  }

  const std::vector<size_t> order =
      n <= kJoinReorderDpLimit ? DpJoinOrder(base, conjuncts)
                               : GreedyJoinOrder(base, conjuncts);
  bool identity = true;
  for (size_t i = 0; i < n; ++i) {
    if (order[i] != i) identity = false;
  }
  if (identity) return;  // statement order already optimal: keep the tree

  // Detach the leaves, then rebuild the spine left-deep in `order`.
  // Conjuncts re-attach at the earliest join where every referenced
  // relation is available (inner/cross only, so placement is free).
  std::vector<std::unique_ptr<LogicalNode>> leaves(n);
  for (size_t i = 0; i < n; ++i) {
    leaves[i] = std::move(*spine.leaves[i].slot);
  }
  std::vector<bool> placed(conjuncts.size(), false);
  uint64_t mask = uint64_t{1} << order[0];
  std::unique_ptr<LogicalNode> acc = std::move(leaves[order[0]]);
  for (size_t step = 1; step < n; ++step) {
    const size_t j = order[step];
    const uint64_t next_mask = mask | (uint64_t{1} << j);
    std::vector<ExprPtr> cond_parts;
    for (size_t k = 0; k < conjuncts.size(); ++k) {
      if (placed[k] || (conjuncts[k].mask & ~next_mask) != 0) continue;
      placed[k] = true;
      cond_parts.push_back(conjuncts[k].expr->Clone());
    }
    auto clause = std::make_unique<JoinClause>();
    clause->condition = AndChain(std::move(cond_parts));
    clause->type = clause->condition != nullptr ? JoinType::kInner
                                                : JoinType::kCross;
    JoinClause* owned = plan->AddJoin(std::move(clause));
    auto join = std::make_unique<LogicalNode>(LogicalOp::kJoin);
    join->join = owned;
    join->equi = HasEqualityConjunct(owned->condition.get());
    join->reordered = true;
    const double acc_rows = MaskRows(mask, base, conjuncts);
    const double right_rows = cost::KnownOrDefault(base[j]);
    join->build_left = join->equi && acc_rows < right_rows;
    join->est_rows = MaskRows(next_mask, base, conjuncts);
    join->est_cost = cost::JoinStepCost(acc_rows, right_rows, join->est_rows);
    join->children.push_back(std::move(acc));
    join->children.push_back(std::move(leaves[j]));
    acc = std::move(join);
    mask = next_mask;
  }
  *from_slot = std::move(acc);
  ++plan->joins_reordered;
}

void Planner::PushdownAggregate(LogicalNode* root,
                                const SelectStatement& stmt,
                                LogicalPlan* plan) const {
  // Locate the Aggregate -> [Filter] -> join-spine chain.
  LogicalNode* agg_node = root;
  while (agg_node != nullptr && agg_node->op == LogicalOp::kSortLimit) {
    agg_node = agg_node->children[0].get();
  }
  if (agg_node == nullptr || agg_node->op != LogicalOp::kAggregate) return;
  LogicalNode* filter_node = nullptr;
  std::unique_ptr<LogicalNode>* from_slot = &agg_node->children[0];
  if ((*from_slot)->op == LogicalOp::kFilter) {
    filter_node = from_slot->get();
    from_slot = &filter_node->children[0];
  }
  JoinSpine spine = AnalyzeJoins(from_slot);
  if (!spine.valid || spine.joins.empty()) return;
  if (!AllInnerOrCross(spine)) return;  // pad rows break partial counts
  std::set<std::string> leaf_quals;
  for (const JoinSpine::Leaf& leaf : spine.leaves) {
    leaf_quals.insert(leaf.qual_lower);
  }
  if (!StatementShapeOptimizable(stmt, leaf_quals, /*aggregated=*/true)) {
    return;
  }

  // Collect the aggregates and choose R: the single relation every
  // aggregate argument reads (aggregates over constants alone fall to
  // the largest relation, where reduction helps most).
  std::vector<const Expr*> aggs;
  for (const SelectItem& item : stmt.items) {
    if (item.expr != nullptr) CollectAggregates(*item.expr, &aggs);
  }
  if (stmt.having != nullptr) CollectAggregates(*stmt.having, &aggs);
  RefInfo agg_refs;
  for (const Expr* a : aggs) CollectRefInfo(*a, &agg_refs);
  if (agg_refs.unqualified || agg_refs.quals.size() > 1) return;
  const JoinSpine::Leaf* r_leaf = nullptr;
  if (agg_refs.quals.size() == 1) {
    for (const JoinSpine::Leaf& leaf : spine.leaves) {
      if (leaf.qual_lower == *agg_refs.quals.begin()) r_leaf = &leaf;
    }
  } else {
    for (const JoinSpine::Leaf& leaf : spine.leaves) {
      if (r_leaf == nullptr || cost::KnownOrDefault(leaf.node->est_rows) >
                                   cost::KnownOrDefault(
                                       r_leaf->node->est_rows)) {
        r_leaf = &leaf;
      }
    }
  }
  if (r_leaf == nullptr) return;

  PushdownCtx ctx;
  ctx.r_lower = r_leaf->qual_lower;
  ctx.r_qual = r_leaf->node->qualifier;

  // Partial group keys, phase 1: R-only GROUP BY expressions. (Join and
  // residual conjuncts add theirs during rewriting below.)
  for (const ExprPtr& g : stmt.group_by) {
    if (g == nullptr) continue;
    RefInfo info;
    CollectRefInfo(*g, &info);
    if (!info.unqualified && info.quals.size() == 1 &&
        *info.quals.begin() == ctx.r_lower && !g->ContainsAggregate()) {
      AddKey(&ctx, *g);
    }
  }
  std::vector<SelectItem> partial_aggs;
  if (!BuildAggRewrites(aggs, &ctx, &partial_aggs)) return;
  if (ctx.key_exprs.empty() && partial_aggs.empty()) return;

  // Dry-run every rewrite; mutate the tree only after all succeed.
  bool ok = true;
  // (a) GROUP BY (may add keys for R parts of mixed expressions).
  std::vector<ExprPtr> new_group_by;
  for (const ExprPtr& g : stmt.group_by) {
    new_group_by.push_back(
        RewriteAbovePushdown(*g, &ctx, /*allow_new_keys=*/true, &ok));
  }
  // (b) Join conditions referencing R.
  std::vector<std::pair<LogicalNode*, ExprPtr>> new_conditions;
  for (LogicalNode* j : spine.joins) {
    if (j->join == nullptr || j->join->condition == nullptr) continue;
    RefInfo info;
    CollectRefInfo(*j->join->condition, &info);
    if (info.quals.count(ctx.r_lower) == 0) continue;
    new_conditions.emplace_back(
        j, RewriteAbovePushdown(*j->join->condition, &ctx,
                                /*allow_new_keys=*/true, &ok));
  }
  // (c) WHERE conjuncts: R-only ones move below the partial aggregate
  // (they must, their raw columns no longer exist above); the rest stay,
  // rewritten.
  std::vector<ExprPtr> moved_parts;
  std::vector<ExprPtr> kept_parts;
  if (stmt.where != nullptr) {
    std::vector<const Expr*> parts;
    CollectConjuncts(stmt.where.get(), &parts);
    for (const Expr* c : parts) {
      RefInfo info;
      CollectRefInfo(*c, &info);
      const bool r_only = !info.unqualified && info.quals.size() == 1 &&
                          *info.quals.begin() == ctx.r_lower &&
                          !c->ContainsAggregate();
      if (r_only) {
        moved_parts.push_back(c->Clone());
      } else {
        kept_parts.push_back(
            RewriteAbovePushdown(*c, &ctx, /*allow_new_keys=*/true, &ok));
      }
    }
  }
  // (d) Select items and HAVING: every R-only subexpression must already
  // be a key (group-determined — StatementShapeOptimizable guarantees
  // group_by membership, and (a) registered those keys).
  std::vector<SelectItem> new_items;
  for (const SelectItem& item : stmt.items) {
    SelectItem ni;
    ni.is_star = item.is_star;
    ni.alias = item.alias.empty() ? item.expr->ToString() : item.alias;
    ni.expr = RewriteAbovePushdown(*item.expr, &ctx,
                                   /*allow_new_keys=*/false, &ok);
    new_items.push_back(std::move(ni));
  }
  ExprPtr new_having;
  if (stmt.having != nullptr) {
    new_having = RewriteAbovePushdown(*stmt.having, &ctx,
                                      /*allow_new_keys=*/false, &ok);
  }
  if (!ok) return;

  // Assemble the statement above the join and the partial statement
  // below it.
  auto upper = CloneSelect(stmt);
  upper->items = std::move(new_items);
  upper->group_by = std::move(new_group_by);
  upper->having = std::move(new_having);
  upper->where = nullptr;  // the Filter node carries the residual now
  SelectStatement* upper_stmt = plan->AddStatement(std::move(upper));

  auto partial = std::make_unique<SelectStatement>();
  for (size_t i = 0; i < ctx.key_exprs.size(); ++i) {
    SelectItem key_item;
    key_item.expr = ctx.key_exprs[i]->Clone();
    key_item.alias = "__pk" + std::to_string(i);
    partial->items.push_back(std::move(key_item));
    partial->group_by.push_back(ctx.key_exprs[i]->Clone());
  }
  for (SelectItem& item : partial_aggs) partial->items.push_back(std::move(item));
  SelectStatement* partial_stmt = plan->AddStatement(std::move(partial));

  // Mutate the tree: swap the rewritten statements/conditions in, then
  // wrap R's leaf as Subquery(R) <- partial Aggregate <- [Filter] <- leaf.
  for (auto& [join_node, condition] : new_conditions) {
    auto clause = std::make_unique<JoinClause>();
    clause->type = join_node->join->type;
    clause->condition = std::move(condition);
    join_node->join = plan->AddJoin(std::move(clause));
    // Equality conjuncts keep their shape under rewriting, so the
    // hash-vs-nested-loop choice and build side stay valid.
  }
  LogicalNode* sort_node = root->op == LogicalOp::kSortLimit ? root : nullptr;
  for (LogicalNode* s = sort_node; s != nullptr;
       s = s->children[0]->op == LogicalOp::kSortLimit
               ? s->children[0].get()
               : nullptr) {
    s->stmt = upper_stmt;
  }
  agg_node->stmt = upper_stmt;

  const double r_est = r_leaf->node->est_rows;
  std::unique_ptr<LogicalNode> r_sub = std::move(*r_leaf->slot);
  if (!moved_parts.empty()) {
    auto below = std::make_unique<LogicalNode>(LogicalOp::kFilter);
    below->predicate = plan->AddExpr(AndChain(std::move(moved_parts)));
    below->est_rows = cost::FilterOutputRows(r_est);
    below->children.push_back(std::move(r_sub));
    r_sub = std::move(below);
  }
  auto partial_node = std::make_unique<LogicalNode>(LogicalOp::kAggregate);
  partial_node->stmt = partial_stmt;
  partial_node->partial = true;
  partial_node->est_rows = partial_stmt->group_by.empty()
                               ? 1.0
                               : cost::AggregateOutputRows(r_est);
  partial_node->children.push_back(std::move(r_sub));
  auto wrapper = std::make_unique<LogicalNode>(LogicalOp::kSubquery);
  wrapper->qualifier = ctx.r_qual;
  wrapper->stmt = partial_stmt;
  wrapper->est_rows = partial_node->est_rows;
  wrapper->children.push_back(std::move(partial_node));
  *r_leaf->slot = std::move(wrapper);

  if (filter_node != nullptr) {
    if (kept_parts.empty()) {
      // Every conjunct moved below: splice the upper filter out.
      agg_node->children[0] = std::move(filter_node->children[0]);
    } else {
      filter_node->predicate = plan->AddExpr(AndChain(std::move(kept_parts)));
    }
  }
  ++plan->agg_pushdowns;
}

// ---------------------------------------------------------------------------
// Planner: stage 3 — lowering onto physical operators
// ---------------------------------------------------------------------------

Result<std::unique_ptr<Operator>> Planner::Lower(
    const LogicalNode& node) const {
  switch (node.op) {
    case LogicalOp::kScan: {
      tsdb::ScanHints hints = node.hints;
      std::optional<std::vector<std::string>> projection = node.projection;
      return std::unique_ptr<Operator>(std::make_unique<CatalogScanOperator>(
          catalog_, node.table_name, std::move(hints), node.qualifier,
          std::move(projection)));
    }
    case LogicalOp::kSubquery: {
      EXPLAINIT_ASSIGN_OR_RETURN(auto sub, Lower(*node.children[0]));
      return std::unique_ptr<Operator>(std::make_unique<SubqueryScanOperator>(
          std::move(sub), node.qualifier));
    }
    case LogicalOp::kSingleRow:
      return std::unique_ptr<Operator>(std::make_unique<SingleRowOperator>());
    case LogicalOp::kFilter: {
      EXPLAINIT_ASSIGN_OR_RETURN(auto input, Lower(*node.children[0]));
      return std::unique_ptr<Operator>(std::make_unique<FilterOperator>(
          std::move(input), node.predicate->Clone(), functions_, ctx_));
    }
    case LogicalOp::kJoin: {
      EXPLAINIT_ASSIGN_OR_RETURN(auto left, Lower(*node.children[0]));
      EXPLAINIT_ASSIGN_OR_RETURN(auto right, Lower(*node.children[1]));
      if (node.equi) {
        return std::unique_ptr<Operator>(std::make_unique<HashJoinOperator>(
            std::move(left), std::move(right), node.join, functions_,
            node.build_left, ctx_));
      }
      return std::unique_ptr<Operator>(
          std::make_unique<NestedLoopJoinOperator>(
              std::move(left), std::move(right), node.join, functions_));
    }
    case LogicalOp::kAggregate: {
      EXPLAINIT_ASSIGN_OR_RETURN(auto input, Lower(*node.children[0]));
      return std::unique_ptr<Operator>(
          std::make_unique<HashAggregateOperator>(
              std::move(input), node.stmt, functions_, ctx_, node.retain));
    }
    case LogicalOp::kProject: {
      EXPLAINIT_ASSIGN_OR_RETURN(auto input, Lower(*node.children[0]));
      return std::unique_ptr<Operator>(std::make_unique<ProjectOperator>(
          std::move(input), node.stmt, functions_, node.retain, ctx_));
    }
    case LogicalOp::kSortLimit: {
      EXPLAINIT_ASSIGN_OR_RETURN(auto input, Lower(*node.children[0]));
      return std::unique_ptr<Operator>(std::make_unique<SortLimitOperator>(
          std::move(input), node.stmt, functions_, node.aggregated, ctx_));
    }
    case LogicalOp::kUnion: {
      std::vector<std::unique_ptr<Operator>> branches;
      branches.reserve(node.children.size());
      for (const auto& child : node.children) {
        EXPLAINIT_ASSIGN_OR_RETURN(auto branch, Lower(*child));
        branches.push_back(std::move(branch));
      }
      return std::unique_ptr<Operator>(
          std::make_unique<UnionAllOperator>(std::move(branches)));
    }
  }
  return Status::Internal("unknown logical operator");
}

Result<std::unique_ptr<Operator>> Planner::Plan(
    const SelectStatement& stmt) const {
  auto plan = std::make_shared<LogicalPlan>();
  EXPLAINIT_ASSIGN_OR_RETURN(auto root, BuildStatement(stmt, plan.get()));
  plan->root = std::move(root);
  EXPLAINIT_ASSIGN_OR_RETURN(auto op, Lower(*plan->root));
  // The operator tree references AST the plan owns (rewritten statements,
  // synthesised join clauses): tie the plan's lifetime to the tree.
  op->RetainArtifact(std::shared_ptr<const void>(plan));
  last_plan_ = std::move(plan);
  return op;
}

}  // namespace explainit::sql
