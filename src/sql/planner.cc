#include "sql/planner.h"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <set>

#include "common/strings.h"
#include "sql/operators/filter.h"
#include "sql/operators/hash_aggregate.h"
#include "sql/operators/hash_join.h"
#include "sql/operators/nested_loop_join.h"
#include "sql/operators/project.h"
#include "sql/operators/scan.h"
#include "sql/operators/sort_limit.h"

namespace explainit::sql {

using table::DataType;

namespace {

// ---------------------------------------------------------------------------
// Pushdown extraction
// ---------------------------------------------------------------------------

/// Unqualified reference to the scan's time column.
bool IsTimeColumn(const Expr& e) {
  if (e.kind != ExprKind::kColumnRef || !e.qualifier.empty()) return false;
  const std::string lower = ToLower(e.column);
  return lower == "timestamp" || lower == "ts";
}

bool IsMetricNameColumn(const Expr& e) {
  return e.kind == ExprKind::kColumnRef && e.qualifier.empty() &&
         ToLower(e.column) == "metric_name";
}

/// Integer-valued literal (timestamps are integral epoch seconds).
bool IntLiteral(const Expr& e, int64_t* out) {
  if (e.kind != ExprKind::kLiteral) return false;
  const DataType t = e.literal.type();
  if (t != DataType::kInt64 && t != DataType::kTimestamp) return false;
  *out = e.literal.AsInt();
  return true;
}

/// String literal free of glob metacharacters, so SQL equality and the
/// store's glob/tag matching coincide exactly.
bool CleanStringLiteral(const Expr& e, std::string* out) {
  if (e.kind != ExprKind::kLiteral ||
      e.literal.type() != DataType::kString) {
    return false;
  }
  const std::string s = e.literal.AsString();
  if (s.find_first_of("*?[") != std::string::npos) return false;
  *out = s;
  return true;
}

/// Matches tag['key'] over the scan's tag column.
bool IsTagSubscript(const Expr& e, std::string* key) {
  if (e.kind != ExprKind::kSubscript) return false;
  if (e.left == nullptr || e.left->kind != ExprKind::kColumnRef ||
      !e.left->qualifier.empty() || ToLower(e.left->column) != "tag") {
    return false;
  }
  if (e.right == nullptr || e.right->kind != ExprKind::kLiteral ||
      e.right->literal.type() != DataType::kString) {
    return false;
  }
  *key = e.right->literal.AsString();
  return true;
}

/// Derives ScanHints from WHERE conjuncts. The hints only *narrow* what a
/// hint-aware provider materialises; every conjunct stays in the residual
/// filter, so correctness (including "column not found" errors for
/// misnamed time columns) never depends on a provider applying them.
tsdb::ScanHints HintsFromConjuncts(const std::vector<const Expr*>& conjuncts) {
  tsdb::ScanHints hints;
  std::optional<int64_t> lo;  // inclusive
  std::optional<int64_t> hi;  // exclusive
  auto narrow_lo = [&](int64_t v) { lo = lo ? std::max(*lo, v) : v; };
  auto narrow_hi = [&](int64_t v) { hi = hi ? std::min(*hi, v) : v; };
  for (const Expr* c : conjuncts) {
    int64_t a = 0, b = 0;
    std::string s, key;
    // ts BETWEEN a AND b  ->  [a, b+1)
    if (c->kind == ExprKind::kBetween && !c->negated &&
        c->left != nullptr && IsTimeColumn(*c->left) &&
        IntLiteral(*c->between_lo, &a) && IntLiteral(*c->between_hi, &b) &&
        b < INT64_MAX) {
      narrow_lo(a);
      narrow_hi(b + 1);
      continue;
    }
    if (c->kind != ExprKind::kBinary || c->left == nullptr ||
        c->right == nullptr) {
      continue;
    }
    const Expr& l = *c->left;
    const Expr& r = *c->right;
    // Time-column comparisons, either orientation.
    const bool ts_lit = IsTimeColumn(l) && IntLiteral(r, &a);
    const bool lit_ts = IntLiteral(l, &a) && IsTimeColumn(r);
    if ((ts_lit || lit_ts) && a < INT64_MAX) {
      // Normalise to "ts OP a".
      BinaryOp op = c->binary_op;
      if (lit_ts) {
        op = op == BinaryOp::kLt   ? BinaryOp::kGt
             : op == BinaryOp::kLe ? BinaryOp::kGe
             : op == BinaryOp::kGt ? BinaryOp::kLt
             : op == BinaryOp::kGe ? BinaryOp::kLe
                                   : op;
      }
      switch (op) {
        case BinaryOp::kEq:
          narrow_lo(a);
          narrow_hi(a + 1);
          break;
        case BinaryOp::kGe:
          narrow_lo(a);
          break;
        case BinaryOp::kGt:
          narrow_lo(a + 1);
          break;
        case BinaryOp::kLe:
          narrow_hi(a + 1);
          break;
        case BinaryOp::kLt:
          narrow_hi(a);
          break;
        default:
          break;
      }
      continue;
    }
    // metric_name = 'literal' (either orientation).
    if (c->binary_op == BinaryOp::kEq && hints.metric_glob.empty() &&
        ((IsMetricNameColumn(l) && CleanStringLiteral(r, &s)) ||
         (IsMetricNameColumn(r) && CleanStringLiteral(l, &s)))) {
      hints.metric_glob = s;
      continue;
    }
    // tag['k'] = 'literal' (either orientation).
    if (c->binary_op == BinaryOp::kEq &&
        ((IsTagSubscript(l, &key) && CleanStringLiteral(r, &s)) ||
         (IsTagSubscript(r, &key) && CleanStringLiteral(l, &s)))) {
      if (!hints.tag_filter.Has(key)) hints.tag_filter.Set(key, s);
    }
  }
  // Contradictory windows (ts >= 10 AND ts < 5) are left to the filter.
  if ((lo.has_value() || hi.has_value()) &&
      lo.value_or(INT64_MIN) < hi.value_or(INT64_MAX)) {
    hints.range = TimeRange{lo.value_or(INT64_MIN), hi.value_or(INT64_MAX)};
  }
  return hints;
}

tsdb::ScanHints ExtractHints(const Expr* where) {
  std::vector<const Expr*> conjuncts;
  CollectConjuncts(where, &conjuncts);
  return HintsFromConjuncts(conjuncts);
}

void CollectColumnRefs(const Expr& e, std::set<std::string>* out);

// ---------------------------------------------------------------------------
// Rollup resolution hints
// ---------------------------------------------------------------------------
//
// A grid-aligned aggregating query — GROUP BY DATE_TRUNC('minute', ts)
// with SUM/MIN/MAX(value) — never looks below its bucket width, so the
// store may serve sealed segments from a rollup tier: one
// (bucket_start, bucket_aggregate) row per tier bucket in place of the
// raw points. That substitution is invisible exactly when every part of
// the statement that sees scanned rows is invariant under it:
//
//  - every GROUP BY time expression is a grid of step S with
//    tier_step | S (all raw points of a tier bucket then share every
//    group key with the substituted row);
//  - every aggregate is one same kind among SUM/MIN/MAX over the bare
//    `value` column (partial sums/mins/maxes recombine exactly; AVG and
//    COUNT weight by point count and do not);
//  - the residual WHERE evaluates identically on a bucket row and on
//    each of its raw points: time bounds are tier-aligned literals and
//    nothing else in the WHERE reads ts or value;
//  - no other expression reads ts or value at raw resolution.
//
// The derivation below checks those conditions per maintained tier,
// coarsest first, and on success sets hints.min_step_seconds/rollup.
// The hint is advisory: the store re-proves per segment (via per-bucket
// first/last raw timestamps) that the window cuts no bucket, falling
// back to the raw block otherwise, so a hint can only ever be cheaper,
// never wrong.

/// Step of a recognised grid expression over the time column:
/// DATE_TRUNC('unit', ts) or ts - ts % k; 0 when not a grid.
int64_t GridStepSeconds(const Expr& e) {
  if (e.kind == ExprKind::kFunction && e.function_name == "DATE_TRUNC" &&
      e.args.size() == 2 && e.args[0] != nullptr && e.args[1] != nullptr &&
      e.args[0]->kind == ExprKind::kLiteral &&
      e.args[0]->literal.type() == DataType::kString &&
      IsTimeColumn(*e.args[1])) {
    return DateTruncStepSeconds(e.args[0]->literal.AsString());
  }
  // ts - ts % k (a bare ts % k folds phases together and is NOT a grid).
  if (e.kind == ExprKind::kBinary && e.binary_op == BinaryOp::kSub &&
      e.left != nullptr && IsTimeColumn(*e.left) && e.right != nullptr &&
      e.right->kind == ExprKind::kBinary &&
      e.right->binary_op == BinaryOp::kMod && e.right->left != nullptr &&
      IsTimeColumn(*e.right->left) && e.right->right != nullptr) {
    int64_t k = 0;
    if (IntLiteral(*e.right->right, &k) && k > 0) return k;
  }
  return 0;
}

/// Detects the rollup shape of one statement: records the grid steps and
/// the (single) aggregate kind, and rejects any raw-resolution use of the
/// time or value column outside those shapes.
struct RollupShapeDetector {
  std::vector<int64_t> grid_steps;
  tsdb::RollupAggregate agg = tsdb::RollupAggregate::kNone;
  bool valid = true;

  void Walk(const Expr& e) {
    if (!valid) return;
    const int64_t step = GridStepSeconds(e);
    if (step > 0) {
      grid_steps.push_back(step);
      return;  // the grid expression consumes its ts reference
    }
    if (e.kind == ExprKind::kFunction &&
        IsAggregateFunction(e.function_name)) {
      tsdb::RollupAggregate kind;
      if (e.function_name == "SUM") {
        kind = tsdb::RollupAggregate::kSum;
      } else if (e.function_name == "MIN") {
        kind = tsdb::RollupAggregate::kMin;
      } else if (e.function_name == "MAX") {
        kind = tsdb::RollupAggregate::kMax;
      } else {
        valid = false;  // AVG/COUNT/STDDEV/... weight by point count
        return;
      }
      // Only the bare value column recombines exactly, and all
      // aggregates must agree (the scan returns one bucket aggregate).
      if (e.args.size() != 1 || e.args[0] == nullptr ||
          e.args[0]->kind != ExprKind::kColumnRef ||
          ToLower(e.args[0]->column) != "value" ||
          (agg != tsdb::RollupAggregate::kNone && agg != kind)) {
        valid = false;
        return;
      }
      agg = kind;
      return;
    }
    if (e.kind == ExprKind::kColumnRef) {
      const std::string lower = ToLower(e.column);
      if (lower == "ts" || lower == "timestamp" || lower == "value") {
        valid = false;  // raw-resolution read outside a recognised shape
      }
      return;
    }
    auto walk = [&](const ExprPtr& c) {
      if (c != nullptr) Walk(*c);
    };
    walk(e.left);
    walk(e.right);
    walk(e.between_lo);
    walk(e.between_hi);
    walk(e.case_else);
    for (const ExprPtr& a : e.args) walk(a);
    for (const ExprPtr& a : e.list) walk(a);
    for (const CaseBranch& b : e.case_branches) {
      walk(b.condition);
      walk(b.result);
    }
  }
};

/// True when the conjunct evaluates identically on a tier bucket row and
/// on every raw point of that bucket: a time bound whose half-open edge
/// is a multiple of `tier_step`, or a predicate reading neither ts nor
/// value (series-constant for the scanned rows).
bool ConjunctRollupInvariant(const Expr& c, int64_t tier_step) {
  auto aligned = [tier_step](int64_t v) { return v % tier_step == 0; };
  int64_t a = 0, b = 0;
  if (c.kind == ExprKind::kBetween && !c.negated && c.left != nullptr &&
      IsTimeColumn(*c.left) && IntLiteral(*c.between_lo, &a) &&
      IntLiteral(*c.between_hi, &b) && b < INT64_MAX) {
    return aligned(a) && aligned(b + 1);
  }
  if (c.kind == ExprKind::kBinary && c.left != nullptr &&
      c.right != nullptr) {
    const bool ts_lit = IsTimeColumn(*c.left) && IntLiteral(*c.right, &a);
    const bool lit_ts = IntLiteral(*c.left, &a) && IsTimeColumn(*c.right);
    if ((ts_lit || lit_ts) && a < INT64_MAX) {
      BinaryOp op = c.binary_op;
      if (lit_ts) {
        op = op == BinaryOp::kLt   ? BinaryOp::kGt
             : op == BinaryOp::kLe ? BinaryOp::kGe
             : op == BinaryOp::kGt ? BinaryOp::kLt
             : op == BinaryOp::kGe ? BinaryOp::kLe
                                   : op;
      }
      switch (op) {
        case BinaryOp::kGe:
        case BinaryOp::kLt:
          return aligned(a);
        case BinaryOp::kGt:
        case BinaryOp::kLe:
          return aligned(a + 1);
        default:
          return false;  // ts = a spans [a, a+1): never tier-aligned
      }
    }
  }
  std::set<std::string> refs;
  CollectColumnRefs(c, &refs);
  return refs.count("ts") == 0 && refs.count("timestamp") == 0 &&
         refs.count("value") == 0;
}

/// Sets hints->min_step_seconds / hints->rollup when the statement is a
/// grid-aligned aggregation the store may serve from a rollup tier.
void DeriveRollupHint(const SelectStatement& stmt, tsdb::ScanHints* hints) {
  RollupShapeDetector detector;
  for (const SelectItem& item : stmt.items) {
    if (item.is_star) return;  // star reads ts/value at raw resolution
    detector.Walk(*item.expr);
  }
  for (const ExprPtr& g : stmt.group_by) detector.Walk(*g);
  if (stmt.having != nullptr) detector.Walk(*stmt.having);
  for (const OrderByItem& o : stmt.order_by) detector.Walk(*o.expr);
  if (!detector.valid || detector.agg == tsdb::RollupAggregate::kNone) {
    return;
  }
  std::vector<const Expr*> conjuncts;
  if (stmt.where != nullptr) CollectConjuncts(stmt.where.get(), &conjuncts);
  for (const int64_t tier_step : tsdb::kRollupTierSteps) {
    const bool grids_ok = std::all_of(
        detector.grid_steps.begin(), detector.grid_steps.end(),
        [&](int64_t s) { return s % tier_step == 0; });
    if (!grids_ok) continue;
    const bool where_ok = std::all_of(
        conjuncts.begin(), conjuncts.end(), [&](const Expr* c) {
          return ConjunctRollupInvariant(*c, tier_step);
        });
    if (!where_ok) continue;
    hints->min_step_seconds = tier_step;
    hints->rollup = detector.agg;
    return;  // coarsest qualifying tier wins
  }
}

// ---------------------------------------------------------------------------
// Projection pruning
// ---------------------------------------------------------------------------

void CollectColumnRefs(const Expr& e, std::set<std::string>* out) {
  if (e.kind == ExprKind::kColumnRef) {
    out->insert(ToLower(e.column));
  }
  auto walk = [&](const ExprPtr& c) {
    if (c != nullptr) CollectColumnRefs(*c, out);
  };
  walk(e.left);
  walk(e.right);
  walk(e.between_lo);
  walk(e.between_hi);
  walk(e.case_else);
  for (const ExprPtr& a : e.args) walk(a);
  for (const ExprPtr& a : e.list) walk(a);
  for (const CaseBranch& b : e.case_branches) {
    walk(b.condition);
    walk(b.result);
  }
}

/// Columns a single-table statement reads (residual WHERE instead of the
/// full one: fully pushed-down conjuncts free their columns too).
/// nullopt when pruning is unsafe (SELECT *).
std::optional<std::vector<std::string>> PrunedColumns(
    const SelectStatement& stmt, const ExprPtr& residual_where) {
  std::set<std::string> refs;
  for (const SelectItem& item : stmt.items) {
    if (item.is_star) return std::nullopt;
    CollectColumnRefs(*item.expr, &refs);
  }
  if (residual_where != nullptr) CollectColumnRefs(*residual_where, &refs);
  for (const ExprPtr& g : stmt.group_by) CollectColumnRefs(*g, &refs);
  if (stmt.having != nullptr) CollectColumnRefs(*stmt.having, &refs);
  for (const OrderByItem& o : stmt.order_by) {
    CollectColumnRefs(*o.expr, &refs);
  }
  return std::vector<std::string>(refs.begin(), refs.end());
}

bool StatementContainsLag(const SelectStatement& stmt) {
  for (const SelectItem& item : stmt.items) {
    if (item.expr != nullptr && ContainsLag(*item.expr)) return true;
  }
  if (stmt.where != nullptr && ContainsLag(*stmt.where)) return true;
  return false;
}

// ---------------------------------------------------------------------------
// Join-aware pushdown helpers
// ---------------------------------------------------------------------------

/// Collects (lowercased qualifier, lowercased column) pairs of every
/// column reference in the expression tree.
void CollectQualifiedRefs(
    const Expr& e, std::set<std::pair<std::string, std::string>>* out) {
  if (e.kind == ExprKind::kColumnRef) {
    out->insert({ToLower(e.qualifier), ToLower(e.column)});
  }
  auto walk = [&](const ExprPtr& c) {
    if (c != nullptr) CollectQualifiedRefs(*c, out);
  };
  walk(e.left);
  walk(e.right);
  walk(e.between_lo);
  walk(e.between_hi);
  walk(e.case_else);
  for (const ExprPtr& a : e.args) walk(a);
  for (const ExprPtr& a : e.list) walk(a);
  for (const CaseBranch& b : e.case_branches) {
    walk(b.condition);
    walk(b.result);
  }
}

/// Every column reference the whole statement makes, qualified-aware.
/// Sets `star` when a SELECT-list * makes pruning unsafe.
void CollectStatementRefs(
    const SelectStatement& stmt, bool* star,
    std::set<std::pair<std::string, std::string>>* refs) {
  for (const SelectItem& item : stmt.items) {
    if (item.is_star) {
      *star = true;
      continue;
    }
    CollectQualifiedRefs(*item.expr, refs);
  }
  if (stmt.where != nullptr) CollectQualifiedRefs(*stmt.where, refs);
  for (const JoinClause& join : stmt.joins) {
    if (join.condition != nullptr) {
      CollectQualifiedRefs(*join.condition, refs);
    }
  }
  for (const ExprPtr& g : stmt.group_by) CollectQualifiedRefs(*g, refs);
  if (stmt.having != nullptr) CollectQualifiedRefs(*stmt.having, refs);
  for (const OrderByItem& o : stmt.order_by) {
    CollectQualifiedRefs(*o.expr, refs);
  }
}

/// Clears the qualifier of every column reference qualified with
/// `qualifier_lower` (used on cloned conjuncts before hint extraction,
/// which matches unqualified time/metric/tag shapes only).
void StripQualifier(Expr* e, const std::string& qualifier_lower) {
  if (e->kind == ExprKind::kColumnRef &&
      ToLower(e->qualifier) == qualifier_lower) {
    e->qualifier.clear();
  }
  auto walk = [&](const ExprPtr& c) {
    if (c != nullptr) StripQualifier(c.get(), qualifier_lower);
  };
  walk(e->left);
  walk(e->right);
  walk(e->between_lo);
  walk(e->between_hi);
  walk(e->case_else);
  for (const ExprPtr& a : e->args) walk(a);
  for (const ExprPtr& a : e->list) walk(a);
  for (CaseBranch& b : e->case_branches) {
    walk(b.condition);
    walk(b.result);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Planner
// ---------------------------------------------------------------------------

tsdb::ScanHints Planner::JoinInputHints(const SelectStatement& stmt,
                                        const TableRef& ref,
                                        const std::string& qualifier) const {
  // Only plain tables with hint-honouring providers benefit, and LAG
  // anywhere in the scan-visible stages disables pushdown (LAG reads
  // neighbouring rows, so the scanned row set must not shrink).
  if (ref.subquery != nullptr || !catalog_->SupportsHints(ref.table_name) ||
      StatementContainsLag(stmt)) {
    return tsdb::ScanHints{};
  }
  const std::string q = ToLower(qualifier);

  // Predicate pushdown: a top-level WHERE conjunct narrows this input
  // when every column it references is qualified with this input's name
  // (unqualified references could bind to either side of the join).
  // Qualifiers are stripped from a clone so the unqualified
  // time/metric/tag shapes of hint extraction match; the original
  // conjunct always stays in the residual filter, and the pushable
  // shapes are all NULL-rejecting, so narrowing either side of an outer
  // join never changes the filtered result.
  std::vector<ExprPtr> stripped;
  if (stmt.where != nullptr) {
    std::vector<const Expr*> conjuncts;
    CollectConjuncts(stmt.where.get(), &conjuncts);
    for (const Expr* c : conjuncts) {
      std::set<std::pair<std::string, std::string>> refs;
      CollectQualifiedRefs(*c, &refs);
      if (refs.empty()) continue;
      const bool all_this_side =
          std::all_of(refs.begin(), refs.end(),
                      [&](const auto& r) { return r.first == q; });
      if (!all_this_side) continue;
      ExprPtr clone = c->Clone();
      StripQualifier(clone.get(), q);
      stripped.push_back(std::move(clone));
    }
  }
  std::vector<const Expr*> ptrs;
  ptrs.reserve(stripped.size());
  for (const ExprPtr& e : stripped) ptrs.push_back(e.get());
  tsdb::ScanHints hints = HintsFromConjuncts(ptrs);

  // Projection pruning: this input needs the columns referenced under its
  // qualifier plus every unqualified reference (which may bind here).
  bool star = false;
  std::set<std::pair<std::string, std::string>> refs;
  CollectStatementRefs(stmt, &star, &refs);
  if (!star) {
    std::set<std::string> cols;
    for (const auto& [rq, col] : refs) {
      if (rq == q || rq.empty()) cols.insert(col);
    }
    hints.projection.assign(cols.begin(), cols.end());
  }
  return hints;
}

Result<std::unique_ptr<Operator>> Planner::PlanSource(
    const TableRef& ref, const std::string& qualifier,
    tsdb::ScanHints hints) const {
  if (ref.subquery != nullptr) {
    EXPLAINIT_ASSIGN_OR_RETURN(auto sub, Plan(*ref.subquery));
    return std::unique_ptr<Operator>(
        std::make_unique<SubqueryScanOperator>(std::move(sub), qualifier));
  }
  // Hinted projections also prune the materialised table (unknown
  // references keep flowing so the evaluator reports them properly).
  std::optional<std::vector<std::string>> projection;
  if (!hints.projection.empty()) projection = hints.projection;
  return std::unique_ptr<Operator>(std::make_unique<CatalogScanOperator>(
      catalog_, ref.table_name, std::move(hints), qualifier,
      std::move(projection)));
}

Result<std::unique_ptr<Operator>> Planner::PlanFrom(
    const SelectStatement& stmt, tsdb::ScanHints base_hints,
    ExprPtr* residual_where) const {
  if (!stmt.from.has_value()) {
    return std::unique_ptr<Operator>(std::make_unique<SingleRowOperator>());
  }
  const TableRef& ref = *stmt.from;
  const bool has_joins = !stmt.joins.empty();

  if (!has_joins) {
    if (ref.subquery != nullptr) {
      EXPLAINIT_ASSIGN_OR_RETURN(auto sub, Plan(*ref.subquery));
      return std::unique_ptr<Operator>(std::make_unique<SubqueryScanOperator>(
          std::move(sub), std::string{}));
    }
    // Single-table scan: attach pushdown hints and projection pruning.
    std::optional<std::vector<std::string>> projection =
        PrunedColumns(stmt, *residual_where);
    tsdb::ScanHints hints = std::move(base_hints);
    if (projection.has_value()) hints.projection = *projection;
    return std::unique_ptr<Operator>(std::make_unique<CatalogScanOperator>(
        catalog_, ref.table_name, std::move(hints), std::string{},
        std::move(projection)));
  }

  // Join tree: left-deep, every input qualified with its effective name.
  // Each plain-table input receives its own pushdown hints, derived from
  // the WHERE conjuncts that bind entirely to it. A duplicated qualifier
  // would make "binds to this input" ambiguous (a conjunct could narrow
  // a relation it does not constrain), so pushdown is disabled outright.
  std::string base_name = ref.EffectiveName();
  if (base_name.empty()) base_name = "_t0";
  bool unique_names = true;
  {
    std::set<std::string> names{ToLower(base_name)};
    for (const JoinClause& join : stmt.joins) {
      const std::string& n = join.right.EffectiveName();
      if (!n.empty() && !names.insert(ToLower(n)).second) {
        unique_names = false;
      }
    }
  }
  auto side_hints = [&](const TableRef& side_ref,
                        const std::string& qualifier) {
    return unique_names ? JoinInputHints(stmt, side_ref, qualifier)
                        : tsdb::ScanHints{};
  };
  EXPLAINIT_ASSIGN_OR_RETURN(
      std::unique_ptr<Operator> acc,
      PlanSource(ref, base_name, side_hints(ref, base_name)));
  std::optional<size_t> acc_rows =
      ref.subquery == nullptr ? catalog_->EstimatedRows(ref.table_name)
                              : std::nullopt;
  for (const JoinClause& join : stmt.joins) {
    std::string right_name = join.right.EffectiveName();
    if (right_name.empty()) {
      right_name =
          "_t" + std::to_string(&join - stmt.joins.data() + 1);
    }
    EXPLAINIT_ASSIGN_OR_RETURN(
        auto right,
        PlanSource(join.right, right_name,
                   side_hints(join.right, right_name)));
    if (join.condition != nullptr && HasEqualityConjunct(join.condition.get())) {
      // Broadcast heuristic: build on the smaller side when both row
      // counts are known. Outer joins swap too — the join pads
      // unmatched rows by the actual build side, so orientation only
      // affects cost, never results.
      bool build_left = false;
      std::optional<size_t> right_rows =
          join.right.subquery == nullptr
              ? catalog_->EstimatedRows(join.right.table_name)
              : std::nullopt;
      if ((join.type == JoinType::kInner ||
           join.type == JoinType::kLeft ||
           join.type == JoinType::kFullOuter) &&
          acc_rows.has_value() && right_rows.has_value() &&
          *acc_rows < *right_rows) {
        build_left = true;
      }
      acc = std::unique_ptr<Operator>(std::make_unique<HashJoinOperator>(
          std::move(acc), std::move(right), &join, functions_, build_left,
          ctx_));
    } else {
      acc = std::unique_ptr<Operator>(
          std::make_unique<NestedLoopJoinOperator>(
              std::move(acc), std::move(right), &join, functions_));
    }
    acc_rows.reset();  // join output size is unknown
  }
  return acc;
}

Result<std::unique_ptr<Operator>> Planner::PlanSingle(
    const SelectStatement& stmt) const {
  // Predicate pushdown: single plain table, hint-aware provider, no LAG
  // in the scan-visible stages (LAG reads neighbouring rows, so the
  // scanned row set must not shrink). The filter keeps the full WHERE
  // either way; hints only shrink what the provider materialises.
  ExprPtr residual_where;
  tsdb::ScanHints hints;
  const bool pushdown_eligible =
      stmt.from.has_value() && stmt.from->subquery == nullptr &&
      stmt.joins.empty() &&
      catalog_->SupportsHints(stmt.from->table_name) &&
      !StatementContainsLag(stmt);
  if (stmt.where != nullptr) {
    residual_where = stmt.where->Clone();
    if (pushdown_eligible) hints = ExtractHints(stmt.where.get());
  }
  // Resolution hint: grid-aligned aggregations may be served from the
  // store's rollup tiers (see "Rollup resolution hints" above).
  if (pushdown_eligible) DeriveRollupHint(stmt, &hints);

  EXPLAINIT_ASSIGN_OR_RETURN(
      auto source, PlanFrom(stmt, std::move(hints), &residual_where));
  if (residual_where != nullptr) {
    source = std::make_unique<FilterOperator>(
        std::move(source), std::move(residual_where), functions_, ctx_);
  }

  const bool aggregated =
      !stmt.group_by.empty() ||
      std::any_of(stmt.items.begin(), stmt.items.end(),
                  [](const SelectItem& i) {
                    return i.expr != nullptr && i.expr->ContainsAggregate();
                  });
  const bool needs_sort_limit =
      !stmt.order_by.empty() || stmt.limit.has_value();
  // Pre-projection rows are only consulted by an ORDER BY whose keys
  // resolve against neither side; retaining them otherwise would force
  // the aggregate's partial path to re-materialise its input.
  const bool retain = !stmt.order_by.empty();

  if (aggregated) {
    source = std::make_unique<HashAggregateOperator>(std::move(source),
                                                     &stmt, functions_, ctx_,
                                                     retain);
  } else {
    source = std::make_unique<ProjectOperator>(std::move(source), &stmt,
                                               functions_, retain, ctx_);
  }
  if (!needs_sort_limit) return source;
  return std::unique_ptr<Operator>(std::make_unique<SortLimitOperator>(
      std::move(source), &stmt, functions_, aggregated, ctx_));
}

Result<std::unique_ptr<Operator>> Planner::Plan(
    const SelectStatement& stmt) const {
  EXPLAINIT_ASSIGN_OR_RETURN(auto first, PlanSingle(stmt));
  if (stmt.union_all.empty()) return first;
  std::vector<std::unique_ptr<Operator>> branches;
  branches.push_back(std::move(first));
  for (const auto& next : stmt.union_all) {
    EXPLAINIT_ASSIGN_OR_RETURN(auto branch, PlanSingle(*next));
    branches.push_back(std::move(branch));
  }
  return std::unique_ptr<Operator>(
      std::make_unique<UnionAllOperator>(std::move(branches)));
}

}  // namespace explainit::sql
