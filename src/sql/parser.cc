#include "sql/parser.h"

#include <charconv>
#include <cmath>
#include <stdexcept>
#include <system_error>

#include "common/strings.h"

namespace explainit::sql {

namespace {

/// Token-stream cursor with the grammar's productions as methods.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  /// Top-level entry: SELECT (with UNION ALL chain), EXPLAIN, or the
  /// monitor admin statements DROP MONITOR / SHOW MONITORS.
  Result<std::unique_ptr<Statement>> ParseAnyStatement() {
    if (Current().IsKeyword("EXPLAIN")) {
      EXPLAINIT_ASSIGN_OR_RETURN(auto stmt, ParseExplain());
      EXPLAINIT_RETURN_IF_ERROR(ExpectEnd("EXPLAIN statement"));
      return std::unique_ptr<Statement>(std::move(stmt));
    }
    if (Current().IsKeyword("DROP")) {
      Advance();
      EXPLAINIT_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "MONITOR"));
      if (!CurrentIsIdentifierLike()) {
        return Err("expected a monitor name after DROP MONITOR");
      }
      auto stmt = std::make_unique<DropMonitorStatement>();
      stmt->name = CurrentIdentifierText();
      Advance();
      EXPLAINIT_RETURN_IF_ERROR(ExpectEnd("DROP MONITOR statement"));
      return std::unique_ptr<Statement>(std::move(stmt));
    }
    if (Current().IsKeyword("SHOW")) {
      Advance();
      EXPLAINIT_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "MONITORS"));
      EXPLAINIT_RETURN_IF_ERROR(ExpectEnd("SHOW MONITORS statement"));
      return std::unique_ptr<Statement>(std::make_unique<ShowMonitorsStatement>());
    }
    EXPLAINIT_ASSIGN_OR_RETURN(auto stmt, ParseSelectChain());
    EXPLAINIT_RETURN_IF_ERROR(ExpectEnd("statement"));
    return std::unique_ptr<Statement>(std::move(stmt));
  }

  Result<std::unique_ptr<SelectStatement>> ParseStatement() {
    if (Current().IsKeyword("EXPLAIN")) {
      return Err(
          "EXPLAIN is a statement, not a query expression; run it through "
          "the statement API (sql::ParseStatement / Engine::Query)");
    }
    EXPLAINIT_ASSIGN_OR_RETURN(auto stmt, ParseSelectChain());
    EXPLAINIT_RETURN_IF_ERROR(ExpectEnd("statement"));
    return stmt;
  }

  Result<ExprPtr> ParseStandaloneExpression() {
    EXPLAINIT_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (Current().type != TokenType::kEnd) {
      return Err("unexpected trailing input after expression");
    }
    return e;
  }

 private:
  const Token& Current() const { return tokens_[pos_]; }
  const Token& Peek(size_t ahead = 1) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  /// True when the current token can serve as an identifier: a real
  /// identifier or a soft statement keyword (SCORE, TOP, ...) whose
  /// original spelling is recoverable from Token::raw.
  bool CurrentIsIdentifierLike() const {
    return Current().type == TokenType::kIdentifier ||
           (Current().type == TokenType::kKeyword &&
            IsSoftKeyword(Current().text));
  }
  std::string CurrentIdentifierText() const {
    return Current().type == TokenType::kKeyword ? Current().raw
                                                 : Current().text;
  }

  Status Err(const std::string& msg) const {
    const Token& tok = Current();
    return Status::ParseError(
        msg + " (line " + std::to_string(tok.line) + ", column " +
        std::to_string(tok.column) + ", offset " +
        std::to_string(tok.position) + ", token '" + tok.text + "')");
  }

  Status ExpectEnd(const char* what) {
    if (Current().type != TokenType::kEnd) {
      return Err("unexpected trailing input after " + std::string(what));
    }
    return Status::OK();
  }

  Status Expect(TokenType type, std::string_view text) {
    if (Current().type != type || !EqualsIgnoreCase(Current().text, text)) {
      return Err("expected '" + std::string(text) + "'");
    }
    Advance();
    return Status::OK();
  }

  /// SELECT plus any UNION [ALL] continuation (shared by the top level,
  /// FROM-clause subqueries and EXPLAIN sub-selects).
  Result<std::unique_ptr<SelectStatement>> ParseSelectChain() {
    EXPLAINIT_ASSIGN_OR_RETURN(auto stmt, ParseSelect());
    while (Current().IsKeyword("UNION")) {
      Advance();
      if (Current().IsKeyword("ALL")) Advance();
      EXPLAINIT_ASSIGN_OR_RETURN(auto next, ParseSelect());
      stmt->union_all.push_back(std::move(next));
    }
    return stmt;
  }

  // -------------------------------------------------------------------------
  // EXPLAIN statement
  // -------------------------------------------------------------------------

  /// One EXPLAIN operand: a SELECT chain, optionally parenthesised.
  /// `clause` names the owning clause for error messages.
  Result<std::unique_ptr<SelectStatement>> ParseExplainSelect(
      const char* clause) {
    if (Current().IsOperator("(")) {
      Advance();
      EXPLAINIT_ASSIGN_OR_RETURN(auto sel, ParseSelectChain());
      if (!Current().IsOperator(")")) {
        return Err("expected ')' closing the " + std::string(clause) +
                   " clause's subquery");
      }
      Advance();
      return sel;
    }
    if (!Current().IsKeyword("SELECT")) {
      return Err("expected a SELECT (optionally parenthesised) in the " +
                 std::string(clause) + " clause");
    }
    return ParseSelectChain();
  }

  /// Signed integer literal for statement-level TOP / BETWEEN operands.
  Result<int64_t> ParseStatementInt(const char* clause) {
    bool negative = false;
    if (Current().IsOperator("-")) {
      negative = true;
      Advance();
    }
    if (Current().type != TokenType::kNumber ||
        Current().text.find_first_of(".eE") != std::string::npos) {
      return Err("expected an integer in the " + std::string(clause) +
                 " clause");
    }
    int64_t v = 0;
    const char* end = Current().text.data() + Current().text.size();
    const auto [ptr, ec] =
        std::from_chars(Current().text.data(), end, v);
    if (ec != std::errc() || ptr != end) {
      return Err("integer out of range in the " + std::string(clause) +
                 " clause");
    }
    Advance();
    return negative ? -v : v;
  }

  Result<std::unique_ptr<ExplainStatement>> ParseExplain() {
    EXPLAINIT_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "EXPLAIN"));
    auto stmt = std::make_unique<ExplainStatement>();
    EXPLAINIT_ASSIGN_OR_RETURN(stmt->target, ParseExplainSelect("EXPLAIN"));
    if (Current().IsKeyword("GIVEN")) {
      Advance();
      if (Current().IsKeyword("PSEUDOCAUSE")) {
        stmt->given_pseudocause = true;
        Advance();
      } else {
        EXPLAINIT_ASSIGN_OR_RETURN(stmt->given, ParseExplainSelect("GIVEN"));
      }
    }
    if (!Current().IsKeyword("USING")) {
      return Err(
          "expected 'USING <select>' (the search space clause is "
          "mandatory in an EXPLAIN statement)");
    }
    Advance();
    EXPLAINIT_ASSIGN_OR_RETURN(stmt->search_space,
                               ParseExplainSelect("USING"));
    if (Current().IsKeyword("SCORE")) {
      Advance();
      EXPLAINIT_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "BY"));
      if (Current().type != TokenType::kString) {
        return Err("expected a quoted scorer name after SCORE BY");
      }
      stmt->scorer = Current().text;
      Advance();
    }
    if (Current().IsKeyword("TOP")) {
      Advance();
      EXPLAINIT_ASSIGN_OR_RETURN(int64_t k, ParseStatementInt("TOP"));
      if (k <= 0) return Err("TOP requires a positive count");
      stmt->top_k = k;
    }
    if (Current().IsKeyword("BETWEEN")) {
      Advance();
      EXPLAINIT_ASSIGN_OR_RETURN(int64_t lo, ParseStatementInt("BETWEEN"));
      EXPLAINIT_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "AND"));
      EXPLAINIT_ASSIGN_OR_RETURN(int64_t hi, ParseStatementInt("BETWEEN"));
      if (hi < lo) {
        return Err("BETWEEN range is empty (end precedes start)");
      }
      stmt->between_start = lo;
      stmt->between_end = hi;
    }
    // Standing-query clauses: [EVERY <duration>] [TRIGGERED] [INTO name].
    if (Current().IsKeyword("EVERY")) {
      Advance();
      int64_t seconds = 0;
      if (Current().type == TokenType::kDuration) {
        seconds = Current().seconds;
        Advance();
      } else {
        // A bare integer means seconds (EVERY 30 == EVERY 30s).
        EXPLAINIT_ASSIGN_OR_RETURN(seconds, ParseStatementInt("EVERY"));
      }
      if (seconds <= 0) return Err("EVERY requires a positive interval");
      stmt->every_seconds = seconds;
    }
    if (Current().IsKeyword("TRIGGERED")) {
      stmt->triggered = true;
      Advance();
    }
    if (Current().IsKeyword("INTO")) {
      if (!stmt->every_seconds.has_value() && !stmt->triggered) {
        return Err("INTO requires EVERY or TRIGGERED");
      }
      Advance();
      if (!CurrentIsIdentifierLike()) {
        return Err("expected a table name after INTO");
      }
      stmt->into_table = CurrentIdentifierText();
      Advance();
    }
    return stmt;
  }

  // -------------------------------------------------------------------------
  // SELECT
  // -------------------------------------------------------------------------

  Result<std::unique_ptr<SelectStatement>> ParseSelect() {
    EXPLAINIT_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "SELECT"));
    auto stmt = std::make_unique<SelectStatement>();
    if (Current().IsKeyword("DISTINCT")) {
      return Err("DISTINCT is not supported");
    }
    // Select list.
    while (true) {
      SelectItem item;
      if (Current().IsOperator("*")) {
        item.is_star = true;
        Advance();
      } else {
        EXPLAINIT_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (Current().IsKeyword("AS")) {
          Advance();
          if (!CurrentIsIdentifierLike()) {
            return Err("expected alias after AS");
          }
          item.alias = CurrentIdentifierText();
          Advance();
        } else if (Current().type == TokenType::kIdentifier) {
          // Implicit alias: SELECT expr name. Soft keywords are excluded:
          // they delimit EXPLAIN clauses after a sub-select.
          item.alias = Current().text;
          Advance();
        }
      }
      stmt->items.push_back(std::move(item));
      if (!Current().IsOperator(",")) break;
      Advance();
    }
    // FROM.
    if (Current().IsKeyword("FROM")) {
      Advance();
      EXPLAINIT_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
      stmt->from = std::move(ref);
      // Joins.
      while (true) {
        JoinType type;
        bool is_join = false;
        if (Current().IsKeyword("JOIN") || Current().IsKeyword("INNER")) {
          type = JoinType::kInner;
          if (Current().IsKeyword("INNER")) Advance();
          EXPLAINIT_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "JOIN"));
          is_join = true;
        } else if (Current().IsKeyword("LEFT")) {
          type = JoinType::kLeft;
          Advance();
          if (Current().IsKeyword("OUTER")) Advance();
          EXPLAINIT_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "JOIN"));
          is_join = true;
        } else if (Current().IsKeyword("FULL")) {
          type = JoinType::kFullOuter;
          Advance();
          if (Current().IsKeyword("OUTER")) Advance();
          EXPLAINIT_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "JOIN"));
          is_join = true;
        } else if (Current().IsKeyword("CROSS")) {
          type = JoinType::kCross;
          Advance();
          EXPLAINIT_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "JOIN"));
          is_join = true;
        }
        if (!is_join) break;
        JoinClause join;
        join.type = type;
        EXPLAINIT_ASSIGN_OR_RETURN(join.right, ParseTableRef());
        if (type != JoinType::kCross) {
          EXPLAINIT_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "ON"));
          EXPLAINIT_ASSIGN_OR_RETURN(join.condition, ParseExpr());
        }
        stmt->joins.push_back(std::move(join));
      }
    }
    // WHERE.
    if (Current().IsKeyword("WHERE")) {
      Advance();
      EXPLAINIT_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    // GROUP BY.
    if (Current().IsKeyword("GROUP")) {
      Advance();
      EXPLAINIT_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "BY"));
      while (true) {
        EXPLAINIT_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        stmt->group_by.push_back(std::move(e));
        if (!Current().IsOperator(",")) break;
        Advance();
      }
    }
    // HAVING.
    if (Current().IsKeyword("HAVING")) {
      Advance();
      EXPLAINIT_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
    }
    // ORDER BY.
    if (Current().IsKeyword("ORDER")) {
      Advance();
      EXPLAINIT_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "BY"));
      while (true) {
        OrderByItem item;
        EXPLAINIT_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (Current().IsKeyword("ASC")) {
          Advance();
        } else if (Current().IsKeyword("DESC")) {
          item.ascending = false;
          Advance();
        }
        stmt->order_by.push_back(std::move(item));
        if (!Current().IsOperator(",")) break;
        Advance();
      }
    }
    // LIMIT.
    if (Current().IsKeyword("LIMIT")) {
      Advance();
      if (Current().type != TokenType::kNumber) {
        return Err("expected a number after LIMIT");
      }
      // Checked like every other literal: an out-of-range LIMIT must be a
      // parse error, not a silent LIMIT 0.
      int64_t limit = 0;
      const char* end = Current().text.data() + Current().text.size();
      const auto [ptr, ec] =
          std::from_chars(Current().text.data(), end, limit);
      if (ec != std::errc() || ptr != end) {
        return Err("LIMIT count out of range");
      }
      stmt->limit = limit;
      Advance();
    }
    return stmt;
  }

  Result<TableRef> ParseTableRef() {
    TableRef ref;
    if (Current().IsOperator("(")) {
      Advance();
      EXPLAINIT_ASSIGN_OR_RETURN(auto sub, ParseSelectChain());
      EXPLAINIT_RETURN_IF_ERROR(Expect(TokenType::kOperator, ")"));
      ref.subquery = std::move(sub);
    } else if (CurrentIsIdentifierLike()) {
      // Soft keywords stay valid table names too: a Score Table
      // registered as `score` must remain queryable. No ambiguity —
      // EXPLAIN clause keywords never directly follow FROM/JOIN.
      ref.table_name = CurrentIdentifierText();
      Advance();
    } else {
      return Err("expected table name or subquery");
    }
    // Optional alias (with or without AS). Soft keywords only qualify
    // after an explicit AS: bare they delimit EXPLAIN clauses.
    if (Current().IsKeyword("AS")) {
      Advance();
      if (!CurrentIsIdentifierLike()) {
        return Err("expected alias after AS");
      }
      ref.alias = CurrentIdentifierText();
      Advance();
    } else if (Current().type == TokenType::kIdentifier) {
      ref.alias = Current().text;
      Advance();
    }
    return ref;
  }

  // Precedence climbing: OR < AND < NOT < comparison < additive <
  // multiplicative < unary < postfix (subscript).
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    EXPLAINIT_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (Current().IsKeyword("OR")) {
      Advance();
      EXPLAINIT_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = MakeBinary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    EXPLAINIT_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (Current().IsKeyword("AND")) {
      Advance();
      EXPLAINIT_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = MakeBinary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (Current().IsKeyword("NOT")) {
      Advance();
      EXPLAINIT_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return MakeUnary(UnaryOp::kNot, std::move(operand));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    EXPLAINIT_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    // IS [NOT] NULL.
    if (Current().IsKeyword("IS")) {
      Advance();
      bool negated = false;
      if (Current().IsKeyword("NOT")) {
        negated = true;
        Advance();
      }
      EXPLAINIT_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "NULL"));
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kIsNull;
      e->left = std::move(lhs);
      e->negated = negated;
      return e;
    }
    bool negated = false;
    if (Current().IsKeyword("NOT") &&
        (Peek().IsKeyword("IN") || Peek().IsKeyword("BETWEEN") ||
         Peek().IsKeyword("LIKE"))) {
      negated = true;
      Advance();
    }
    if (Current().IsKeyword("BETWEEN")) {
      Advance();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kBetween;
      e->left = std::move(lhs);
      e->negated = negated;
      EXPLAINIT_ASSIGN_OR_RETURN(e->between_lo, ParseAdditive());
      EXPLAINIT_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "AND"));
      EXPLAINIT_ASSIGN_OR_RETURN(e->between_hi, ParseAdditive());
      return e;
    }
    if (Current().IsKeyword("IN")) {
      Advance();
      EXPLAINIT_RETURN_IF_ERROR(Expect(TokenType::kOperator, "("));
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kInList;
      e->left = std::move(lhs);
      e->negated = negated;
      while (true) {
        EXPLAINIT_ASSIGN_OR_RETURN(ExprPtr item, ParseExpr());
        e->list.push_back(std::move(item));
        if (!Current().IsOperator(",")) break;
        Advance();
      }
      EXPLAINIT_RETURN_IF_ERROR(Expect(TokenType::kOperator, ")"));
      return e;
    }
    if (Current().IsKeyword("LIKE")) {
      Advance();
      EXPLAINIT_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      ExprPtr like =
          MakeBinary(BinaryOp::kLike, std::move(lhs), std::move(rhs));
      if (negated) return MakeUnary(UnaryOp::kNot, std::move(like));
      return like;
    }
    struct OpMap {
      const char* text;
      BinaryOp op;
    };
    static constexpr OpMap kOps[] = {
        {"=", BinaryOp::kEq},  {"!=", BinaryOp::kNe}, {"<=", BinaryOp::kLe},
        {">=", BinaryOp::kGe}, {"<", BinaryOp::kLt},  {">", BinaryOp::kGt},
    };
    for (const OpMap& m : kOps) {
      if (Current().IsOperator(m.text)) {
        Advance();
        EXPLAINIT_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
        return MakeBinary(m.op, std::move(lhs), std::move(rhs));
      }
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    EXPLAINIT_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (Current().IsOperator("+") || Current().IsOperator("-")) {
      const BinaryOp op =
          Current().IsOperator("+") ? BinaryOp::kAdd : BinaryOp::kSub;
      Advance();
      EXPLAINIT_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicative() {
    EXPLAINIT_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (Current().IsOperator("*") || Current().IsOperator("/") ||
           Current().IsOperator("%")) {
      BinaryOp op = BinaryOp::kMul;
      if (Current().IsOperator("/")) op = BinaryOp::kDiv;
      if (Current().IsOperator("%")) op = BinaryOp::kMod;
      Advance();
      EXPLAINIT_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (Current().IsOperator("-")) {
      Advance();
      EXPLAINIT_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return MakeUnary(UnaryOp::kNegate, std::move(operand));
    }
    return ParsePostfix();
  }

  Result<ExprPtr> ParsePostfix() {
    EXPLAINIT_ASSIGN_OR_RETURN(ExprPtr e, ParsePrimary());
    while (Current().IsOperator("[")) {
      Advance();
      EXPLAINIT_ASSIGN_OR_RETURN(ExprPtr index, ParseExpr());
      EXPLAINIT_RETURN_IF_ERROR(Expect(TokenType::kOperator, "]"));
      e = MakeSubscript(std::move(e), std::move(index));
    }
    return e;
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& tok = Current();
    if (tok.IsOperator("(")) {
      Advance();
      EXPLAINIT_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      EXPLAINIT_RETURN_IF_ERROR(Expect(TokenType::kOperator, ")"));
      return e;
    }
    if (tok.type == TokenType::kDuration) {
      // Duration literals are integer seconds in expressions, so
      // `ts - ts % 5m` works anywhere `ts - ts % 300` does.
      const int64_t seconds = tok.seconds;
      Advance();
      return MakeLiteral(table::Value::Int(seconds));
    }
    if (tok.type == TokenType::kNumber) {
      // Untrusted literal text: 1e999 must become a parse error with the
      // token's position (std::stod throws std::out_of_range), and an
      // integer past int64 must be rejected, not silently parsed as 0
      // (the old unchecked from_chars). Errors are raised before
      // Advance() so they point at the offending literal.
      const std::string text = tok.text;
      if (text.find('.') != std::string::npos ||
          text.find('e') != std::string::npos ||
          text.find('E') != std::string::npos) {
        double d = 0.0;
        try {
          d = std::stod(text);
        } catch (const std::out_of_range&) {
          return Err("numeric literal out of range");
        } catch (const std::invalid_argument&) {
          return Err("malformed numeric literal");
        }
        if (!std::isfinite(d)) {
          return Err("numeric literal out of range");
        }
        Advance();
        return MakeLiteral(table::Value::Double(d));
      }
      int64_t v = 0;
      const auto [ptr, ec] =
          std::from_chars(text.data(), text.data() + text.size(), v);
      if (ec == std::errc::result_out_of_range) {
        return Err("integer literal out of range (max 9223372036854775807)");
      }
      if (ec != std::errc() || ptr != text.data() + text.size()) {
        return Err("malformed numeric literal");
      }
      Advance();
      return MakeLiteral(table::Value::Int(v));
    }
    if (tok.type == TokenType::kString) {
      std::string s = tok.text;
      Advance();
      return MakeLiteral(table::Value::String(std::move(s)));
    }
    if (tok.IsKeyword("NULL")) {
      Advance();
      return MakeLiteral(table::Value::Null());
    }
    if (tok.IsKeyword("TRUE")) {
      Advance();
      return MakeLiteral(table::Value::Bool(true));
    }
    if (tok.IsKeyword("FALSE")) {
      Advance();
      return MakeLiteral(table::Value::Bool(false));
    }
    if (tok.IsKeyword("CASE")) {
      Advance();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kCase;
      while (Current().IsKeyword("WHEN")) {
        Advance();
        CaseBranch branch;
        EXPLAINIT_ASSIGN_OR_RETURN(branch.condition, ParseExpr());
        EXPLAINIT_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "THEN"));
        EXPLAINIT_ASSIGN_OR_RETURN(branch.result, ParseExpr());
        e->case_branches.push_back(std::move(branch));
      }
      if (e->case_branches.empty()) return Err("CASE requires WHEN branches");
      if (Current().IsKeyword("ELSE")) {
        Advance();
        EXPLAINIT_ASSIGN_OR_RETURN(e->case_else, ParseExpr());
      }
      EXPLAINIT_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "END"));
      return e;
    }
    // Identifiers, plus soft statement keywords (SCORE, TOP, ...) in
    // expression position — the Score Table's own `score` column stays
    // addressable even though SCORE BY is reserved at statement level.
    if (CurrentIsIdentifierLike()) {
      std::string name = CurrentIdentifierText();
      Advance();
      // Function call.
      if (Current().IsOperator("(")) {
        Advance();
        std::vector<ExprPtr> args;
        if (Current().IsOperator("*")) {
          // COUNT(*).
          args.push_back(MakeStar());
          Advance();
        } else if (!Current().IsOperator(")")) {
          while (true) {
            EXPLAINIT_ASSIGN_OR_RETURN(ExprPtr a, ParseExpr());
            args.push_back(std::move(a));
            if (!Current().IsOperator(",")) break;
            Advance();
          }
        }
        EXPLAINIT_RETURN_IF_ERROR(Expect(TokenType::kOperator, ")"));
        return MakeFunction(std::move(name), std::move(args));
      }
      // Qualified column: a.b.
      if (Current().IsOperator(".")) {
        Advance();
        if (Current().type != TokenType::kIdentifier &&
            Current().type != TokenType::kKeyword) {
          return Err("expected column name after '.'");
        }
        std::string col = Current().type == TokenType::kKeyword &&
                                  !Current().raw.empty()
                              ? Current().raw
                              : Current().text;
        Advance();
        return MakeColumnRef(std::move(name), std::move(col));
      }
      return MakeColumnRef("", std::move(name));
    }
    return Err("unexpected token in expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<Statement>> ParseStatement(std::string_view query) {
  EXPLAINIT_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(query));
  Parser parser(std::move(tokens));
  return parser.ParseAnyStatement();
}

Result<std::unique_ptr<SelectStatement>> Parse(std::string_view query) {
  EXPLAINIT_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(query));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

Result<ExprPtr> ParseExpression(std::string_view text) {
  EXPLAINIT_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseStandaloneExpression();
}

}  // namespace explainit::sql
