// Catalog: table name -> data. Tables can be materialised (registered
// once) or provided lazily (a connector that scans the tsdb on demand —
// the role of the paper's Java data-source connectors).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "table/table.h"

namespace explainit::sql {

/// Lazily produces a table when the executor scans it.
using TableProvider = std::function<Result<table::Table>()>;

/// Case-insensitive table registry.
class Catalog {
 public:
  /// Registers a materialised table (replacing any previous binding).
  void RegisterTable(const std::string& name, table::Table table);

  /// Registers a lazy provider (e.g. a tsdb scan).
  void RegisterProvider(const std::string& name, TableProvider provider);

  /// Resolves and materialises a table; NotFound for unknown names.
  Result<table::Table> GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const;
  std::vector<std::string> ListTables() const;

 private:
  std::map<std::string, TableProvider> providers_;
};

}  // namespace explainit::sql
