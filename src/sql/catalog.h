// Catalog: table name -> data. Tables can be materialised (registered
// once) or provided lazily (a connector that scans the tsdb on demand —
// the role of the paper's Java data-source connectors).
//
// Providers come in two flavours. A plain TableProvider materialises the
// whole table on every scan. A HintedTableProvider additionally receives
// the planner's tsdb::ScanHints (time window, metric/tag constraints,
// projection) and should materialise only what they allow. Hints are a
// pure optimisation: the planner keeps every WHERE conjunct in the
// residual filter, so a provider that applies a hint partially (or not
// at all) costs rows, never correctness.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "table/table.h"
#include "tsdb/store.h"

namespace explainit::sql {

/// Lazily produces a table when the executor scans it.
using TableProvider = std::function<Result<table::Table>()>;

/// Lazily produces a table restricted by pushdown hints (e.g. a tsdb scan
/// that narrows its ScanRequest). Must fully honour the hints (see above).
using HintedTableProvider =
    std::function<Result<table::Table>(const tsdb::ScanHints&)>;

/// Capabilities and statistics of a hinted provider, beyond honouring
/// hints.
struct HintedProviderOptions {
  /// Live row-count estimate (e.g. SeriesStore::num_points), consulted by
  /// the cost-based planner on every planning pass. Invoked outside the
  /// catalog lock; must be cheap and thread-safe.
  std::function<size_t()> estimated_rows;
  /// True when the provider forwards ScanHints verbatim to a SeriesStore
  /// scan, so a RollupAggregate::kCount hint returns per-bucket point
  /// counts (with value = 1.0 raw fallbacks) exactly as the store
  /// contracts. Gates the planner's COUNT -> __SUM_COUNT rollup rewrite,
  /// which is only correct under that contract.
  bool exact_rollups = false;
};

/// Case-insensitive table registry.
///
/// Thread-safe: registrations take an exclusive lock, lookups a shared
/// one, so standing monitors can register score-history tables while
/// server sessions resolve scans concurrently. Provider invocation
/// happens outside the lock (the binding's std::function is copied out),
/// so a slow scan never blocks registration.
class Catalog {
 public:
  Catalog() = default;
  /// Copying snapshots the bindings — the monitor subsystem clones the
  /// engine catalog per standing query so it can overlay the shared
  /// window scan without perturbing concurrent sessions.
  Catalog(const Catalog& other);
  Catalog& operator=(const Catalog& other);

  /// Registers a materialised table (replacing any previous binding).
  void RegisterTable(const std::string& name, table::Table table);

  /// Registers a lazy provider (hints are silently ignored).
  void RegisterProvider(const std::string& name, TableProvider provider);

  /// Registers a hint-aware provider (e.g. a pushdown-capable tsdb scan).
  void RegisterHintedProvider(const std::string& name,
                              HintedTableProvider provider);

  /// As above, with a live row estimator and capability flags.
  void RegisterHintedProvider(const std::string& name,
                              HintedTableProvider provider,
                              HintedProviderOptions options);

  /// Resolves and materialises a table; NotFound for unknown names.
  Result<table::Table> GetTable(const std::string& name) const;

  /// As GetTable, passing pushdown hints to hint-aware providers.
  Result<table::Table> GetTable(const std::string& name,
                                const tsdb::ScanHints& hints) const;

  /// True when the named table's provider honours ScanHints — the planner
  /// only drops pushed-down WHERE conjuncts for such tables.
  bool SupportsHints(const std::string& name) const;

  /// True when the table's provider was registered with
  /// HintedProviderOptions::exact_rollups (see there).
  bool SupportsExactRollups(const std::string& name) const;

  /// Row count: exact for materialised tables, live (estimator) for
  /// providers registered with one; nullopt otherwise. Feeds hash-join
  /// build-side selection and the cost-based planner's cardinality
  /// estimates.
  std::optional<size_t> EstimatedRows(const std::string& name) const;

  bool HasTable(const std::string& name) const;
  std::vector<std::string> ListTables() const;

 private:
  struct Entry {
    HintedTableProvider provider;
    bool hinted = false;
    bool exact_rollups = false;
    std::optional<size_t> rows;        // known for materialised tables
    std::function<size_t()> estimator;  // live estimate for providers
  };

  mutable std::shared_mutex mutex_;
  std::map<std::string, Entry> entries_;
};

}  // namespace explainit::sql
