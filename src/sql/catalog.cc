#include "sql/catalog.h"

#include "common/strings.h"

namespace explainit::sql {

void Catalog::RegisterTable(const std::string& name, table::Table table) {
  const size_t rows = table.num_rows();
  auto shared = std::make_shared<table::Table>(std::move(table));
  Entry entry;
  entry.provider = [shared](const tsdb::ScanHints&) -> Result<table::Table> {
    return *shared;
  };
  entry.hinted = false;
  entry.rows = rows;
  entries_[ToUpper(name)] = std::move(entry);
}

void Catalog::RegisterProvider(const std::string& name,
                               TableProvider provider) {
  Entry entry;
  entry.provider =
      [provider = std::move(provider)](
          const tsdb::ScanHints&) -> Result<table::Table> {
    return provider();
  };
  entry.hinted = false;
  entries_[ToUpper(name)] = std::move(entry);
}

void Catalog::RegisterHintedProvider(const std::string& name,
                                     HintedTableProvider provider) {
  Entry entry;
  entry.provider = std::move(provider);
  entry.hinted = true;
  entries_[ToUpper(name)] = std::move(entry);
}

Result<table::Table> Catalog::GetTable(const std::string& name) const {
  return GetTable(name, tsdb::ScanHints{});
}

Result<table::Table> Catalog::GetTable(const std::string& name,
                                       const tsdb::ScanHints& hints) const {
  auto it = entries_.find(ToUpper(name));
  if (it == entries_.end()) {
    return Status::NotFound("table not found: " + name);
  }
  return it->second.provider(hints);
}

bool Catalog::SupportsHints(const std::string& name) const {
  auto it = entries_.find(ToUpper(name));
  return it != entries_.end() && it->second.hinted;
}

std::optional<size_t> Catalog::EstimatedRows(const std::string& name) const {
  auto it = entries_.find(ToUpper(name));
  if (it == entries_.end()) return std::nullopt;
  return it->second.rows;
}

bool Catalog::HasTable(const std::string& name) const {
  return entries_.count(ToUpper(name)) > 0;
}

std::vector<std::string> Catalog::ListTables() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : entries_) out.push_back(k);
  return out;
}

}  // namespace explainit::sql
