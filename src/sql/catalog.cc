#include "sql/catalog.h"

#include "common/strings.h"

namespace explainit::sql {

Catalog::Catalog(const Catalog& other) {
  std::shared_lock<std::shared_mutex> lock(other.mutex_);
  entries_ = other.entries_;
}

Catalog& Catalog::operator=(const Catalog& other) {
  if (this == &other) return *this;
  std::map<std::string, Entry> copy;
  {
    std::shared_lock<std::shared_mutex> lock(other.mutex_);
    copy = other.entries_;
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  entries_ = std::move(copy);
  return *this;
}

void Catalog::RegisterTable(const std::string& name, table::Table table) {
  const size_t rows = table.num_rows();
  auto shared = std::make_shared<table::Table>(std::move(table));
  Entry entry;
  entry.provider = [shared](const tsdb::ScanHints&) -> Result<table::Table> {
    return *shared;
  };
  entry.hinted = false;
  entry.rows = rows;
  std::unique_lock<std::shared_mutex> lock(mutex_);
  entries_[ToUpper(name)] = std::move(entry);
}

void Catalog::RegisterProvider(const std::string& name,
                               TableProvider provider) {
  Entry entry;
  entry.provider =
      [provider = std::move(provider)](
          const tsdb::ScanHints&) -> Result<table::Table> {
    return provider();
  };
  entry.hinted = false;
  std::unique_lock<std::shared_mutex> lock(mutex_);
  entries_[ToUpper(name)] = std::move(entry);
}

void Catalog::RegisterHintedProvider(const std::string& name,
                                     HintedTableProvider provider) {
  RegisterHintedProvider(name, std::move(provider), HintedProviderOptions{});
}

void Catalog::RegisterHintedProvider(const std::string& name,
                                     HintedTableProvider provider,
                                     HintedProviderOptions options) {
  Entry entry;
  entry.provider = std::move(provider);
  entry.hinted = true;
  entry.exact_rollups = options.exact_rollups;
  entry.estimator = std::move(options.estimated_rows);
  std::unique_lock<std::shared_mutex> lock(mutex_);
  entries_[ToUpper(name)] = std::move(entry);
}

Result<table::Table> Catalog::GetTable(const std::string& name) const {
  return GetTable(name, tsdb::ScanHints{});
}

Result<table::Table> Catalog::GetTable(const std::string& name,
                                       const tsdb::ScanHints& hints) const {
  HintedTableProvider provider;
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    auto it = entries_.find(ToUpper(name));
    if (it == entries_.end()) {
      return Status::NotFound("table not found: " + name);
    }
    provider = it->second.provider;
  }
  // Invoked unlocked: a provider may run a full store scan.
  return provider(hints);
}

bool Catalog::SupportsHints(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = entries_.find(ToUpper(name));
  return it != entries_.end() && it->second.hinted;
}

bool Catalog::SupportsExactRollups(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = entries_.find(ToUpper(name));
  return it != entries_.end() && it->second.exact_rollups;
}

std::optional<size_t> Catalog::EstimatedRows(const std::string& name) const {
  std::function<size_t()> estimator;
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    auto it = entries_.find(ToUpper(name));
    if (it == entries_.end()) return std::nullopt;
    if (it->second.rows.has_value()) return it->second.rows;
    estimator = it->second.estimator;
  }
  // Invoked unlocked: an estimator may touch store-internal locks.
  if (estimator != nullptr) return estimator();
  return std::nullopt;
}

bool Catalog::HasTable(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return entries_.count(ToUpper(name)) > 0;
}

std::vector<std::string> Catalog::ListTables() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<std::string> out;
  for (const auto& [k, v] : entries_) out.push_back(k);
  return out;
}

}  // namespace explainit::sql
