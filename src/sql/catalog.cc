#include "sql/catalog.h"

#include "common/strings.h"

namespace explainit::sql {

void Catalog::RegisterTable(const std::string& name, table::Table table) {
  auto shared = std::make_shared<table::Table>(std::move(table));
  providers_[ToUpper(name)] = [shared]() -> Result<table::Table> {
    return *shared;
  };
}

void Catalog::RegisterProvider(const std::string& name,
                               TableProvider provider) {
  providers_[ToUpper(name)] = std::move(provider);
}

Result<table::Table> Catalog::GetTable(const std::string& name) const {
  auto it = providers_.find(ToUpper(name));
  if (it == providers_.end()) {
    return Status::NotFound("table not found: " + name);
  }
  return it->second();
}

bool Catalog::HasTable(const std::string& name) const {
  return providers_.count(ToUpper(name)) > 0;
}

std::vector<std::string> Catalog::ListTables() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : providers_) out.push_back(k);
  return out;
}

}  // namespace explainit::sql
