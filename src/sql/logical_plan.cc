#include "sql/logical_plan.h"

#include <cmath>
#include <sstream>

#include "common/strings.h"

namespace explainit::sql {

namespace {

void LowercaseRefs(Expr* e) {
  if (e->kind == ExprKind::kColumnRef) {
    e->qualifier = ToLower(e->qualifier);
    e->column = ToLower(e->column);
  }
  auto walk = [&](const ExprPtr& c) {
    if (c != nullptr) LowercaseRefs(c.get());
  };
  walk(e->left);
  walk(e->right);
  walk(e->between_lo);
  walk(e->between_hi);
  walk(e->case_else);
  for (const ExprPtr& a : e->args) walk(a);
  for (const ExprPtr& a : e->list) walk(a);
  for (CaseBranch& b : e->case_branches) {
    walk(b.condition);
    walk(b.result);
  }
}

TableRef CloneTableRef(const TableRef& ref) {
  TableRef out;
  out.table_name = ref.table_name;
  out.alias = ref.alias;
  if (ref.subquery != nullptr) out.subquery = CloneSelect(*ref.subquery);
  return out;
}

void AppendRows(std::ostringstream* out, double est_rows) {
  if (est_rows >= 0.0) {
    *out << " rows~" << static_cast<int64_t>(std::llround(est_rows));
  }
}

void PrintNode(const LogicalNode& node, int depth, std::ostringstream* out) {
  for (int i = 0; i < depth * 2; ++i) out->put(' ');
  switch (node.op) {
    case LogicalOp::kScan: {
      *out << "Scan " << node.table_name;
      if (!node.qualifier.empty()) *out << " q=" << node.qualifier;
      if (node.projection.has_value()) {
        *out << " cols=" << node.projection->size();
      }
      if (node.hints.range.has_value()) *out << " range";
      if (!node.hints.metric_glob.empty()) {
        *out << " metric='" << node.hints.metric_glob << "'";
      }
      if (!node.hints.tag_filter.empty()) {
        *out << " tags=" << node.hints.tag_filter.size();
      }
      if (node.hints.min_step_seconds > 0) {
        const char* agg = "?";
        switch (node.hints.rollup) {
          case tsdb::RollupAggregate::kNone: agg = "none"; break;
          case tsdb::RollupAggregate::kMin: agg = "min"; break;
          case tsdb::RollupAggregate::kMax: agg = "max"; break;
          case tsdb::RollupAggregate::kSum: agg = "sum"; break;
          case tsdb::RollupAggregate::kCount: agg = "count"; break;
        }
        *out << " rollup=" << agg << "@" << node.hints.min_step_seconds;
      }
      break;
    }
    case LogicalOp::kSubquery:
      *out << "Subquery";
      if (!node.qualifier.empty()) *out << " q=" << node.qualifier;
      break;
    case LogicalOp::kSingleRow:
      *out << "SingleRow";
      break;
    case LogicalOp::kFilter:
      *out << "Filter";
      if (node.predicate != nullptr) {
        *out << " " << node.predicate->ToString();
      }
      break;
    case LogicalOp::kJoin: {
      *out << (node.equi ? "HashJoin" : "NestedLoopJoin");
      const char* type = "inner";
      if (node.join != nullptr) {
        switch (node.join->type) {
          case JoinType::kInner: type = "inner"; break;
          case JoinType::kLeft: type = "left"; break;
          case JoinType::kFullOuter: type = "fullouter"; break;
          case JoinType::kCross: type = "cross"; break;
        }
      }
      *out << " " << type;
      if (node.join != nullptr && node.join->condition != nullptr) {
        *out << " on " << node.join->condition->ToString();
      }
      if (node.equi) *out << " build=" << (node.build_left ? "left" : "right");
      break;
    }
    case LogicalOp::kAggregate: {
      *out << "Aggregate";
      if (node.stmt != nullptr) {
        *out << " group_by=[";
        for (size_t i = 0; i < node.stmt->group_by.size(); ++i) {
          if (i > 0) *out << ", ";
          *out << node.stmt->group_by[i]->ToString();
        }
        *out << "]";
      }
      break;
    }
    case LogicalOp::kProject:
      *out << "Project";
      if (node.stmt != nullptr) *out << " items=" << node.stmt->items.size();
      break;
    case LogicalOp::kSortLimit:
      *out << "SortLimit";
      if (node.stmt != nullptr) {
        *out << " keys=" << node.stmt->order_by.size();
        if (node.stmt->limit.has_value()) {
          *out << " limit=" << *node.stmt->limit;
        }
      }
      break;
    case LogicalOp::kUnion:
      *out << "UnionAll branches=" << node.children.size();
      break;
  }
  AppendRows(out, node.est_rows);
  if (node.reordered) *out << " [reordered]";
  if (node.partial) *out << " [partial below join]";
  *out << "\n";
  for (const auto& child : node.children) {
    PrintNode(*child, depth + 1, out);
  }
}

}  // namespace

std::string LogicalPlan::ToString() const {
  std::ostringstream out;
  if (root != nullptr) PrintNode(*root, 0, &out);
  return out.str();
}

std::unique_ptr<SelectStatement> CloneSelect(const SelectStatement& stmt) {
  auto out = std::make_unique<SelectStatement>();
  out->items.reserve(stmt.items.size());
  for (const SelectItem& item : stmt.items) {
    SelectItem clone;
    clone.alias = item.alias;
    clone.is_star = item.is_star;
    if (item.expr != nullptr) clone.expr = item.expr->Clone();
    out->items.push_back(std::move(clone));
  }
  if (stmt.from.has_value()) out->from = CloneTableRef(*stmt.from);
  out->joins.reserve(stmt.joins.size());
  for (const JoinClause& join : stmt.joins) {
    JoinClause clone;
    clone.type = join.type;
    clone.right = CloneTableRef(join.right);
    if (join.condition != nullptr) clone.condition = join.condition->Clone();
    out->joins.push_back(std::move(clone));
  }
  if (stmt.where != nullptr) out->where = stmt.where->Clone();
  out->group_by.reserve(stmt.group_by.size());
  for (const ExprPtr& g : stmt.group_by) out->group_by.push_back(g->Clone());
  if (stmt.having != nullptr) out->having = stmt.having->Clone();
  out->order_by.reserve(stmt.order_by.size());
  for (const OrderByItem& o : stmt.order_by) {
    OrderByItem clone;
    clone.ascending = o.ascending;
    if (o.expr != nullptr) clone.expr = o.expr->Clone();
    out->order_by.push_back(std::move(clone));
  }
  out->limit = stmt.limit;
  return out;
}

std::string NormalizedExprText(const Expr& e) {
  ExprPtr clone = e.Clone();
  LowercaseRefs(clone.get());
  return clone->ToString();
}

}  // namespace explainit::sql
