#include "sql/executor.h"

#include <algorithm>
#include <thread>

#include "sql/parser.h"
#include "sql/planner.h"

namespace explainit::sql {

using table::Table;

void Executor::set_parallelism(size_t parallelism) {
  if (parallelism == 0) {
    parallelism = std::max(1u, std::thread::hardware_concurrency());
  }
  parallelism_ = parallelism;
  stats_.parallelism = parallelism_;
  last_stats_.parallelism = parallelism_;
  if (pool_ != nullptr && pool_->num_threads() != parallelism_) {
    pool_.reset();  // recreated lazily at the right size
  }
  ctx_ = ExecContext{parallelism_, pool_.get()};
}

void Executor::EnsurePool() {
  if (parallelism_ > 1 && pool_ == nullptr) {
    pool_ = std::make_unique<exec::ThreadPool>(parallelism_);
    ctx_ = ExecContext{parallelism_, pool_.get()};
  }
}

Result<table::Table> Executor::Query(std::string_view sql) {
  EXPLAINIT_ASSIGN_OR_RETURN(auto stmt, Parse(sql));
  return Execute(*stmt);
}

Result<std::unique_ptr<Operator>> Executor::PlanSelect(
    const SelectStatement& stmt) {
  EnsurePool();
  Planner planner(catalog_, functions_, &ctx_);
  return planner.Plan(stmt);
}

Result<table::Table> Executor::ExecuteTree(Operator* root) {
  EnsurePool();
  EXPLAINIT_RETURN_IF_ERROR(root->Open());
  Table out(root->output_schema());
  bool eof = false;
  while (true) {
    EXPLAINIT_ASSIGN_OR_RETURN(table::ColumnBatch batch, root->Next(&eof));
    if (eof) break;
    batch.AppendTo(&out);
  }

  last_stats_ = ExecStats{};
  last_stats_.parallelism = parallelism_;
  root->AccumulateExecStatsTree(&last_stats_);
  last_stats_.rows_output = out.num_rows();
  root->CollectStats(&last_stats_.operators);

  stats_.tables_scanned += last_stats_.tables_scanned;
  stats_.rows_scanned += last_stats_.rows_scanned;
  stats_.hash_joins += last_stats_.hash_joins;
  stats_.nested_loop_joins += last_stats_.nested_loop_joins;
  stats_.rows_output += last_stats_.rows_output;
  stats_.operators = last_stats_.operators;
  return out;
}

Result<table::Table> Executor::Execute(const SelectStatement& stmt) {
  EXPLAINIT_ASSIGN_OR_RETURN(auto root, PlanSelect(stmt));
  return ExecuteTree(root.get());
}

}  // namespace explainit::sql
