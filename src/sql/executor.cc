#include "sql/executor.h"

#include <algorithm>
#include <thread>

#include "sql/parser.h"
#include "sql/planner.h"

namespace explainit::sql {

using table::Table;

void Executor::set_parallelism(size_t parallelism) {
  if (parallelism == 0) {
    parallelism = std::max(1u, std::thread::hardware_concurrency());
  }
  parallelism_ = parallelism;
  stats_.parallelism = parallelism_;
  last_stats_.parallelism = parallelism_;
  ctx_.parallelism = parallelism_;
  ctx_.pool = parallelism_ > 1 ? pool_ : nullptr;
}

void Executor::EnsurePool() {
  if (parallelism_ > 1 && pool_ == nullptr) {
    // Borrow the process-wide pool: parallel operators shard to
    // parallelism_ tasks but execute on the shared workers, so N
    // concurrent executors never oversubscribe the box.
    pool_ = &exec::WorkerPool::Global();
  }
  ctx_.pool = parallelism_ > 1 ? pool_ : nullptr;
}

Result<table::Table> Executor::Query(std::string_view sql) {
  EXPLAINIT_ASSIGN_OR_RETURN(auto stmt, Parse(sql));
  return Execute(*stmt);
}

Result<std::unique_ptr<Operator>> Executor::PlanSelect(
    const SelectStatement& stmt) {
  EnsurePool();
  Planner planner(catalog_, functions_, &ctx_, optimizer_);
  auto root = planner.Plan(stmt);
  pending_plan_ = root.ok() ? planner.last_plan() : nullptr;
  return root;
}

Result<table::Table> Executor::ExecuteTree(Operator* root) {
  EnsurePool();
  // Thread the context through the subtree so every operator checks the
  // cancellation token at its batch boundaries, then fail fast on a
  // deadline that already expired before doing any work.
  root->BindExecContext(&ctx_);
  EXPLAINIT_RETURN_IF_ERROR(ctx_.CheckCancel());
  EXPLAINIT_RETURN_IF_ERROR(root->Open());
  Table out(root->output_schema());
  bool eof = false;
  size_t materialize_chunks = 1;
  const size_t width = out.num_columns();
  if (parallelism_ > 1 && width > 0 && root->StableBatches()) {
    // Parallel result materialisation: a stable root's batches stay
    // valid until the tree is destroyed, so the drain buffers views and
    // the final table assembles column-wise across the pool — per-batch
    // chunks copy into disjoint row ranges of preallocated columns,
    // replacing the serial per-batch AppendTo copy. Trade-off: batches
    // with owned storage are all held until assembly, so peak transient
    // memory can approach twice the result set (the serial path frees
    // each batch right after appending it).
    std::vector<table::ColumnBatch> batches;
    std::vector<size_t> offsets;
    size_t total = 0;
    while (true) {
      EXPLAINIT_ASSIGN_OR_RETURN(table::ColumnBatch batch,
                                 root->Next(&eof));
      if (eof) break;
      if (batch.num_rows() == 0) continue;
      offsets.push_back(total);
      total += batch.num_rows();
      batches.push_back(std::move(batch));
    }
    std::vector<std::vector<table::Value>> cols(width);
    for (auto& c : cols) c.resize(total);
    EXPLAINIT_RETURN_IF_ERROR(RunSharded(
        &ctx_, batches.size(), [&](size_t b) -> Status {
          const table::ColumnBatch& batch = batches[b];
          const size_t base = offsets[b];
          for (size_t c = 0; c < width; ++c) {
            const table::Value* src = batch.column(c);
            std::vector<table::Value>& dst = cols[c];
            for (size_t r = 0; r < batch.num_rows(); ++r) {
              dst[base + r] = src[r];
            }
          }
          return Status::OK();
        }));
    EXPLAINIT_ASSIGN_OR_RETURN(
        out, Table::FromColumns(root->output_schema(), std::move(cols)));
    materialize_chunks = std::max<size_t>(1, batches.size());
  } else {
    while (true) {
      EXPLAINIT_ASSIGN_OR_RETURN(table::ColumnBatch batch,
                                 root->Next(&eof));
      if (eof) break;
      batch.AppendTo(&out);
    }
  }

  last_stats_ = ExecStats{};
  last_stats_.parallelism = parallelism_;
  last_stats_.materialize_chunks = materialize_chunks;
  root->AccumulateExecStatsTree(&last_stats_);
  last_stats_.rows_output = out.num_rows();
  root->CollectStats(&last_stats_.operators);
  if (pending_plan_ != nullptr) {
    last_stats_.plan_text = pending_plan_->ToString();
    last_stats_.joins_reordered = pending_plan_->joins_reordered;
    last_stats_.agg_pushdowns = pending_plan_->agg_pushdowns;
    last_stats_.count_rollup_rewrites = pending_plan_->count_rollup_rewrites;
    pending_plan_ = nullptr;
  }

  stats_.tables_scanned += last_stats_.tables_scanned;
  stats_.rows_scanned += last_stats_.rows_scanned;
  stats_.hash_joins += last_stats_.hash_joins;
  stats_.nested_loop_joins += last_stats_.nested_loop_joins;
  stats_.rows_output += last_stats_.rows_output;
  stats_.join_build_partitions = std::max(stats_.join_build_partitions,
                                          last_stats_.join_build_partitions);
  stats_.sort_shards =
      std::max(stats_.sort_shards, last_stats_.sort_shards);
  stats_.materialize_chunks =
      std::max(stats_.materialize_chunks, last_stats_.materialize_chunks);
  stats_.rank_gram_ns += last_stats_.rank_gram_ns;
  stats_.rank_factor_ns += last_stats_.rank_factor_ns;
  stats_.rank_solve_ns += last_stats_.rank_solve_ns;
  stats_.rank_predict_ns += last_stats_.rank_predict_ns;
  stats_.rank_cache_hits += last_stats_.rank_cache_hits;
  stats_.rank_cache_misses += last_stats_.rank_cache_misses;
  stats_.joins_reordered += last_stats_.joins_reordered;
  stats_.agg_pushdowns += last_stats_.agg_pushdowns;
  stats_.count_rollup_rewrites += last_stats_.count_rollup_rewrites;
  stats_.plan_text = last_stats_.plan_text;
  stats_.operators = last_stats_.operators;
  return out;
}

Result<table::Table> Executor::Execute(const SelectStatement& stmt) {
  EXPLAINIT_ASSIGN_OR_RETURN(auto root, PlanSelect(stmt));
  return ExecuteTree(root.get());
}

}  // namespace explainit::sql
