#include "server/server.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/time_util.h"
#include "server/protocol.h"

namespace explainit::server {

namespace {

/// send() the whole buffer, restarting on EINTR / short writes.
/// MSG_NOSIGNAL: a peer that hung up must surface as an error, not
/// SIGPIPE (which would kill the whole server process).
bool SendAll(int fd, const uint8_t* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// recv() exactly `size` bytes; false on EOF or error.
bool RecvAll(int fd, uint8_t* data, size_t size) {
  size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n == 0) return false;  // orderly shutdown
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    got += static_cast<size_t>(n);
  }
  return true;
}

std::vector<uint8_t> ErrorFrame(const Status& status) {
  return EncodeFrame(MessageType::kError,
                     EncodeError({static_cast<int32_t>(status.code()),
                                  status.message()}));
}

}  // namespace

Server::Server(core::Engine* engine, ServerOptions options)
    : engine_(engine),
      options_(std::move(options)),
      pool_(options_.worker_pool != nullptr ? options_.worker_pool
                                            : &exec::WorkerPool::Global()) {
  if (options_.max_sessions == 0) options_.max_sessions = 1;
  if (options_.max_concurrent_queries == 0) {
    options_.max_concurrent_queries = pool_->num_threads();
  }
}

Server::~Server() { Stop(); }

Status Server::Start() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (started_) return Status::FailedPrecondition("server already started");
    started_ = true;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status st =
        Status::IOError(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 128) < 0) {
    const Status st =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::Stop() {
  std::vector<std::unique_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ || !started_) {
      if (!started_) return;
      // Already stopping from another caller; fall through to join below
      // only from the first caller (sessions_ is drained exactly once).
    }
    stopping_ = true;
    // Trip every in-flight query so execution unwinds at the next batch
    // boundary instead of holding its session thread open.
    for (exec::CancelToken* token : active_tokens_) token->Cancel();
    // Wake queries parked at the admission gate; they will see stopping_.
    gate_cv_.notify_all();
    // Unblock every session's recv().
    for (auto& s : sessions_) {
      if (s->fd >= 0) ::shutdown(s->fd, SHUT_RDWR);
    }
    sessions.swap(sessions_);
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);  // wakes the blocked accept()
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& s : sessions) {
    if (s->thread.joinable()) s->thread.join();
  }
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void Server::AcceptLoop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listening socket shut down (Stop) or fatal error
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ || active_sessions_ >= options_.max_sessions) {
      // Session cap: tell the client it is backpressure, not an error.
      const std::vector<uint8_t> busy = EncodeFrame(MessageType::kBusy, {});
      SendAll(fd, busy.data(), busy.size());
      ::close(fd);
      ++stats_.sessions_rejected;
      continue;
    }
    ++stats_.sessions_accepted;
    ++active_sessions_;
    auto session = std::make_unique<Session>();
    session->fd = fd;
    Session* raw = session.get();
    sessions_.push_back(std::move(session));
    raw->thread = std::thread([this, fd] { SessionLoop(fd); });
  }
}

void Server::SessionLoop(int fd) {
  // Private executor per session: statistics and the cancel token are
  // session state; catalog, functions, store and worker pool are shared.
  sql::Executor executor(&engine_->catalog(), &engine_->functions(),
                         options_.sql_parallelism, pool_);
  uint8_t header[kFrameHeaderBytes];
  while (true) {
    if (!RecvAll(fd, header, sizeof(header))) break;
    auto frame = DecodeFrameHeader(header, sizeof(header));
    if (!frame.ok()) {
      // Desynchronised stream: report and hang up (no way to resync).
      const std::vector<uint8_t> reply = ErrorFrame(frame.status());
      SendAll(fd, reply.data(), reply.size());
      break;
    }
    std::vector<uint8_t> payload(frame->payload_len);
    if (frame->payload_len != 0 &&
        !RecvAll(fd, payload.data(), payload.size())) {
      break;
    }
    std::vector<uint8_t> reply;
    switch (frame->type) {
      case MessageType::kPing:
        reply = EncodeFrame(MessageType::kPong, {});
        break;
      case MessageType::kQuery:
        reply = HandleQuery(executor, payload.data(), payload.size());
        break;
      default:
        reply = ErrorFrame(Status::InvalidArgument(
            "unexpected frame type from client"));
        break;
    }
    if (!SendAll(fd, reply.data(), reply.size())) break;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  --active_sessions_;
  // Mark the fd closed under the lock so Stop() never shuts down a
  // recycled descriptor; the Session entry itself is joined by Stop().
  for (auto& s : sessions_) {
    if (s->fd == fd) {
      s->fd = -1;
      break;
    }
  }
  ::close(fd);
}

bool Server::AdmitQuery() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (running_queries_ < options_.max_concurrent_queries && !stopping_) {
    ++running_queries_;
    return true;
  }
  if (queued_queries_ >= options_.max_queued_queries || stopping_) {
    ++stats_.queries_busy;
    return false;
  }
  ++queued_queries_;
  gate_cv_.wait(lock, [this] {
    return stopping_ || running_queries_ < options_.max_concurrent_queries;
  });
  --queued_queries_;
  if (stopping_) {
    ++stats_.queries_busy;
    return false;
  }
  ++running_queries_;
  return true;
}

void Server::ReleaseQuery() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --running_queries_;
  }
  gate_cv_.notify_one();
}

std::vector<uint8_t> Server::HandleQuery(sql::Executor& executor,
                                         const uint8_t* payload,
                                         size_t size) {
  auto request = DecodeQuery(payload, size);
  if (!request.ok()) return ErrorFrame(request.status());
  if (!AdmitQuery()) return EncodeFrame(MessageType::kBusy, {});

  exec::CancelToken token;
  if (request->deadline_ms != 0) {
    token.SetDeadlineAfter(std::chrono::milliseconds(request->deadline_ms));
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Re-check stopping_ while holding the same mutex Stop()'s cancel
    // loop takes: a query admitted just before Stop() flipped the flag
    // must not register a token that loop already walked past — it would
    // run to completion uncancelled while Stop() waits to join this
    // session's thread.
    if (stopping_) {
      ++stats_.queries_busy;
      lock.unlock();
      ReleaseQuery();
      return EncodeFrame(MessageType::kBusy, {});
    }
    active_tokens_.insert(&token);
  }
  executor.set_cancel_token(&token);
  const double t0 = MonotonicSeconds();
  auto result = options_.monitors != nullptr
                    ? options_.monitors->Query(executor, request->sql)
                    : engine_->QueryWith(executor, request->sql);
  const double elapsed = MonotonicSeconds() - t0;
  executor.set_cancel_token(nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    active_tokens_.erase(&token);
  }
  ReleaseQuery();

  if (!result.ok()) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.queries_error;
    return ErrorFrame(result.status());
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.queries_ok;
  }
  // Encode outside the lock: result frames can be large.
  QueryReply reply;
  reply.latency_us = static_cast<uint64_t>(elapsed * 1e6);
  reply.parallelism = static_cast<uint32_t>(executor.parallelism());
  reply.rows_output = result->table.num_rows();
  reply.rows_scanned = result->stats.rows_scanned;
  reply.statement_kind = static_cast<uint8_t>(result->kind);
  reply.active_monitors =
      options_.monitors != nullptr
          ? static_cast<uint32_t>(options_.monitors->active_monitors())
          : 0;
  reply.table = std::move(result->table);
  return EncodeFrame(MessageType::kResult, EncodeResult(reply));
}

}  // namespace explainit::server
