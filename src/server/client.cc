#include "server/client.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace explainit::server {

namespace {

bool SendAll(int fd, const uint8_t* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool RecvAll(int fd, uint8_t* data, size_t size) {
  size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n == 0) return false;
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    got += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Result<Client> Client::Connect(const std::string& host, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad server address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status st =
        Status::IOError(std::string("connect: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Client(fd);
}

Client::Client(Client&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::vector<uint8_t>> Client::RoundTrip(
    MessageType type, const std::vector<uint8_t>& payload,
    MessageType* reply_type) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  const std::vector<uint8_t> frame = EncodeFrame(type, payload);
  if (!SendAll(fd_, frame.data(), frame.size())) {
    return Status::IOError("send failed (server closed the connection?)");
  }
  uint8_t header[kFrameHeaderBytes];
  if (!RecvAll(fd_, header, sizeof(header))) {
    return Status::IOError("connection closed while awaiting reply");
  }
  auto parsed = DecodeFrameHeader(header, sizeof(header));
  EXPLAINIT_RETURN_IF_ERROR(parsed.status());
  std::vector<uint8_t> reply(parsed->payload_len);
  if (parsed->payload_len != 0 &&
      !RecvAll(fd_, reply.data(), reply.size())) {
    return Status::IOError("connection closed mid-reply");
  }
  *reply_type = parsed->type;
  return reply;
}

Result<QueryReply> Client::Query(std::string_view sql, uint32_t deadline_ms) {
  QueryRequest request;
  request.deadline_ms = deadline_ms;
  request.sql.assign(sql);
  MessageType reply_type;
  auto payload = RoundTrip(MessageType::kQuery, EncodeQuery(request),
                           &reply_type);
  EXPLAINIT_RETURN_IF_ERROR(payload.status());
  switch (reply_type) {
    case MessageType::kResult:
      return DecodeResult(payload->data(), payload->size());
    case MessageType::kBusy:
      return Status::Unavailable("server busy (admission control)");
    case MessageType::kError: {
      auto err = DecodeError(payload->data(), payload->size());
      EXPLAINIT_RETURN_IF_ERROR(err.status());
      return Status::FromCode(err->code, std::move(err->message));
    }
    default:
      return Status::Internal("unexpected reply frame type");
  }
}

Status Client::Ping() {
  MessageType reply_type;
  auto payload = RoundTrip(MessageType::kPing, {}, &reply_type);
  EXPLAINIT_RETURN_IF_ERROR(payload.status());
  if (reply_type == MessageType::kBusy) {
    return Status::Unavailable("server busy (session cap)");
  }
  if (reply_type != MessageType::kPong) {
    return Status::Internal("unexpected reply to ping");
  }
  return Status::OK();
}

}  // namespace explainit::server
