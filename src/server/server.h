// Concurrent SQL/EXPLAIN front-end over TCP: N sessions share ONE
// core::Engine (catalog, functions, tiered store) and ONE process-wide
// exec::WorkerPool — no per-session thread pools, asserted by the
// integration test via WorkerPool::constructions().
//
// Concurrency model
//   - One accept thread; one lightweight thread per session driving a
//     blocking read loop (sessions are bounded by max_sessions, so the
//     thread count is too). Query *execution* parallelism comes from the
//     shared worker pool, not from session threads.
//   - Each session owns a private sql::Executor built over the engine's
//     catalog + functions: per-session statistics and cancellation state,
//     shared everything else. Results are byte-identical to a direct
//     Engine::Query (the server bench gates on this).
//
// Admission control
//   - max_sessions bounds concurrent connections; over it the server
//     replies kBusy and closes (sessions_rejected).
//   - max_concurrent_queries bounds statements executing at once; at most
//     max_queued_queries more wait at the gate, anything beyond gets an
//     immediate kBusy (backpressure, never unbounded queueing).
//
// Deadlines and cancellation
//   - kQuery carries deadline_ms; the session arms a per-query
//     exec::CancelToken that the executor checks at every operator batch
//     boundary and the ranking fan-out checks per hypothesis. Expiry
//     surfaces as a kError frame with kDeadlineExceeded.
//   - Stop() cancels every in-flight token (kCancelled), wakes the
//     admission gate, shuts down every socket and joins all threads.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "core/engine.h"
#include "exec/cancel.h"
#include "exec/worker_pool.h"
#include "monitor/monitor.h"

namespace explainit::server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; read the bound port back via Server::port().
  uint16_t port = 0;
  /// Concurrent session cap; further connects get kBusy + close.
  size_t max_sessions = 64;
  /// Statements executing at once across all sessions; 0 = the worker
  /// pool's thread count.
  size_t max_concurrent_queries = 0;
  /// Statements allowed to wait at the admission gate before kBusy.
  size_t max_queued_queries = 16;
  /// Degree of SQL parallelism per statement (executor knob); 1 = serial.
  size_t sql_parallelism = 1;
  /// Shared pool; null = exec::WorkerPool::Global().
  exec::WorkerPool* worker_pool = nullptr;
  /// Standing-query service (borrowed; must outlive the server). When
  /// set, every statement routes through MonitorService::Query, so
  /// clients can register standing EXPLAINs (EVERY/TRIGGERED/INTO), DROP
  /// MONITOR and SHOW MONITORS over the wire; result frames then report
  /// the live monitor count. Null = monitor statements are errors.
  monitor::MonitorService* monitors = nullptr;
};

/// Monotonic counters; read via Server::stats() at any time.
struct ServerStats {
  uint64_t sessions_accepted = 0;
  uint64_t sessions_rejected = 0;
  uint64_t queries_ok = 0;
  uint64_t queries_error = 0;   // parse/plan/execute failures (incl. expiry)
  uint64_t queries_busy = 0;    // admission-gate rejections
};

class Server {
 public:
  /// The engine must outlive the server. Does not listen yet — Start().
  explicit Server(core::Engine* engine, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the accept thread. After an OK return,
  /// port() is the bound port.
  Status Start();

  /// Cancels in-flight queries, closes every socket, joins all threads.
  /// Idempotent.
  void Stop();

  uint16_t port() const { return port_; }
  ServerStats stats() const;

 private:
  struct Session {
    int fd = -1;
    std::thread thread;
  };

  void AcceptLoop();
  void SessionLoop(int fd);
  /// Handles one kQuery payload; returns the reply frame to send.
  std::vector<uint8_t> HandleQuery(sql::Executor& executor,
                                   const uint8_t* payload, size_t size);
  /// Blocks at the admission gate. Returns false for kBusy (queue full or
  /// server stopping).
  bool AdmitQuery();
  void ReleaseQuery();

  core::Engine* engine_;
  ServerOptions options_;
  exec::WorkerPool* pool_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;

  mutable std::mutex mutex_;
  std::condition_variable gate_cv_;
  bool started_ = false;
  bool stopping_ = false;
  size_t active_sessions_ = 0;
  size_t running_queries_ = 0;
  size_t queued_queries_ = 0;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::unordered_set<exec::CancelToken*> active_tokens_;
  ServerStats stats_;
};

}  // namespace explainit::server
