// explainit_serverd: stands up the concurrent SQL/EXPLAIN server over the
// hypervisor packet-drop case study (the same world the examples use), so
// a client can run the paper's declarative statements over TCP.
//
//   explainit_serverd [--host=127.0.0.1] [--port=0] [--sessions=64]
//                     [--parallelism=1] [--minutes=480]
//
// Prints "listening on HOST:PORT" once ready (port 0 binds an ephemeral
// port — scripts parse the printed one), then serves until SIGINT/SIGTERM.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/engine.h"
#include "monitor/monitor.h"
#include "server/server.h"
#include "simulator/case_studies.h"

using namespace explainit;

namespace {

/// --name=value (integer) parser; returns fallback when absent.
long ArgInt(int argc, char** argv, const char* name, long fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atol(argv[i] + prefix.size());
    }
  }
  return fallback;
}

std::string ArgStr(int argc, char** argv, const char* name,
                   const std::string& fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  // Block the shutdown signals before any thread spawns so sigwait below
  // is the only receiver.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  const long minutes = ArgInt(argc, argv, "minutes", 480);
  sim::CaseStudyWorld world =
      sim::MakeHypervisorDropCase(static_cast<size_t>(minutes));

  core::Engine engine(world.store);
  engine.RegisterStoreTable("tsdb", world.range);

  // Standing-query service: clients can register EXPLAIN ... EVERY/
  // TRIGGERED/INTO monitors over the wire.
  monitor::MonitorService monitors(&engine);
  monitors.Start();

  server::ServerOptions options;
  options.monitors = &monitors;
  options.host = ArgStr(argc, argv, "host", "127.0.0.1");
  options.port = static_cast<uint16_t>(ArgInt(argc, argv, "port", 0));
  options.max_sessions =
      static_cast<size_t>(ArgInt(argc, argv, "sessions", 64));
  options.sql_parallelism =
      static_cast<size_t>(ArgInt(argc, argv, "parallelism", 1));

  server::Server server(&engine, options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "failed to start: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("listening on %s:%u\n", options.host.c_str(), server.port());
  std::fflush(stdout);

  int sig = 0;
  sigwait(&sigs, &sig);
  std::printf("signal %d: shutting down\n", sig);
  server.Stop();
  monitors.Stop();
  const server::ServerStats stats = server.stats();
  std::printf("served: %llu ok, %llu error, %llu busy over %llu sessions\n",
              static_cast<unsigned long long>(stats.queries_ok),
              static_cast<unsigned long long>(stats.queries_error),
              static_cast<unsigned long long>(stats.queries_busy),
              static_cast<unsigned long long>(stats.sessions_accepted));
  return 0;
}
