// explainit_server_smoke: concurrent-client smoke against a RUNNING
// explainit_serverd (ci/check.sh starts the daemon, parses its printed
// port, and points this at it). Each session pings, runs a SELECT and
// the declarative EXPLAIN, and validates the replies; any failure exits
// non-zero.
//
//   explainit_server_smoke --port=PORT [--host=127.0.0.1] [--sessions=8]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"

using namespace explainit;

namespace {

long ArgInt(int argc, char** argv, const char* name, long fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atol(argv[i] + prefix.size());
    }
  }
  return fallback;
}

std::string ArgStr(int argc, char** argv, const char* name,
                   const std::string& fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

const char* kSelect =
    "SELECT timestamp, AVG(value) AS runtime_sec FROM tsdb "
    "WHERE metric_name = 'overall_runtime' "
    "GROUP BY timestamp ORDER BY timestamp LIMIT 20";

const char* kExplain = R"(
    EXPLAIN (SELECT timestamp, AVG(value) AS runtime_sec
             FROM tsdb WHERE metric_name = 'overall_runtime'
             GROUP BY timestamp)
    USING (SELECT timestamp, CONCAT('net-', tag['host']) AS family,
                  AVG(value) AS v
           FROM tsdb WHERE metric_name = 'tcp_retransmits'
           GROUP BY timestamp, CONCAT('net-', tag['host']))
    SCORE BY 'L2' TOP 5)";

}  // namespace

int main(int argc, char** argv) {
  const long port = ArgInt(argc, argv, "port", 0);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "usage: explainit_server_smoke --port=PORT\n");
    return 2;
  }
  const std::string host = ArgStr(argc, argv, "host", "127.0.0.1");
  const long sessions = ArgInt(argc, argv, "sessions", 8);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (long s = 0; s < sessions; ++s) {
    threads.emplace_back([&, s] {
      auto client =
          server::Client::Connect(host, static_cast<uint16_t>(port));
      if (!client.ok()) {
        std::fprintf(stderr, "session %ld connect: %s\n", s,
                     client.status().ToString().c_str());
        failures.fetch_add(1);
        return;
      }
      if (Status st = client->Ping(); !st.ok()) {
        std::fprintf(stderr, "session %ld ping: %s\n", s,
                     st.ToString().c_str());
        failures.fetch_add(1);
        return;
      }
      for (const char* sql : {kSelect, kExplain}) {
        auto reply = client->Query(sql, /*deadline_ms=*/30000);
        if (!reply.ok() || reply->table.num_rows() == 0) {
          std::fprintf(stderr, "session %ld query failed: %s\n", s,
                       reply.ok() ? "empty result"
                                  : reply.status().ToString().c_str());
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  if (failures.load() != 0) {
    std::fprintf(stderr, "server smoke FAILED (%d sessions)\n",
                 failures.load());
    return 1;
  }
  std::printf("server smoke passed: %ld concurrent sessions ok\n", sessions);
  return 0;
}
