// Wire protocol of the concurrent SQL/EXPLAIN server: length-prefixed
// binary frames over TCP, in the style of the exec/ipc.h matrix codec
// (little-endian, magic-tagged, every decode-side size checked against
// the actual buffer before any arithmetic or allocation).
//
// Frame layout (all integers little-endian):
//
//   u32 magic ("EXSQ") | u8 type | u32 payload_len | payload bytes
//
// Payloads by type:
//   kQuery  u32 deadline_ms (0 = none) | u32 sql_len | sql bytes
//   kResult u64 latency_us | u32 parallelism | u64 rows_output |
//           u64 rows_scanned | u8 statement_kind | u32 active_monitors |
//           encoded table
//   kError  i32 status_code | u32 msg_len | msg bytes
//   kBusy   (empty) — admission control rejected the query
//   kPing   (empty)           kPong  (empty)
//
// Table encoding: u32 ncols | percol{ u32 name_len | name | u8 dtype } |
// u64 nrows | row-major cells. Each cell is a u8 DataType tag followed by
// the value (f64 / i64 / u32-prefixed string / u32-counted map of
// { u32 key_len | key | cell }). Cells are self-describing so dynamically
// typed columns (declared type advisory, see table/table.h) round-trip.
//
// Every length field arriving off the socket is untrusted: ByteReader
// refuses reads past the buffer end, element counts are validated against
// the bytes actually remaining (one cell costs >= 1 byte) before any
// reservation, map recursion is depth-capped, and whole frames are capped
// at kMaxFramePayload. Decoders return InvalidArgument — never throw,
// never over-read.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "table/table.h"

namespace explainit::server {

constexpr uint32_t kFrameMagic = 0x51535845;  // "EXSQ" in LE byte order
/// Hard cap on one frame's payload. A hostile u32 length can claim up to
/// 4 GiB; nothing this server exchanges legitimately exceeds 64 MiB.
constexpr uint32_t kMaxFramePayload = 64u << 20;
/// magic + type + payload_len.
constexpr size_t kFrameHeaderBytes =
    sizeof(uint32_t) + sizeof(uint8_t) + sizeof(uint32_t);
/// Nested-map depth cap for cell decoding (tags and feature vectors are
/// one level deep in practice).
constexpr int kMaxMapDepth = 8;

enum class MessageType : uint8_t {
  kQuery = 1,
  kResult = 2,
  kError = 3,
  kBusy = 4,
  kPing = 5,
  kPong = 6,
};

struct QueryRequest {
  uint32_t deadline_ms = 0;  // per-query deadline; 0 = none
  std::string sql;
};

struct QueryReply {
  uint64_t latency_us = 0;   // server-side wall time for the statement
  uint32_t parallelism = 1;  // degree the statement executed with
  uint64_t rows_output = 0;
  uint64_t rows_scanned = 0;
  uint8_t statement_kind = 0;  // sql::StatementKind
  /// Standing queries registered on the server's monitor service at
  /// reply time (0 when no service is attached).
  uint32_t active_monitors = 0;
  table::Table table;
};

struct ErrorReply {
  int32_t code = 0;  // StatusCode
  std::string message;
};

/// Little-endian append-only buffer builder.
class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(v); }
  void U16(uint16_t v) { AppendLE(&v, sizeof(v)); }
  void U32(uint32_t v) { AppendLE(&v, sizeof(v)); }
  void U64(uint64_t v) { AppendLE(&v, sizeof(v)); }
  void I32(int32_t v) { AppendLE(&v, sizeof(v)); }
  void I64(int64_t v) { AppendLE(&v, sizeof(v)); }
  void F64(double v) { AppendLE(&v, sizeof(v)); }
  /// u32 length prefix + bytes.
  void Str(std::string_view s);

  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  void AppendLE(const void* p, size_t n);
  std::vector<uint8_t> buf_;
};

/// Bounds-checked little-endian reader over a borrowed buffer. Every
/// accessor returns false (without advancing) when the remaining bytes
/// are too short; decoders turn that into InvalidArgument.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : p_(data), size_(size) {}

  bool U8(uint8_t* v) { return Copy(v, sizeof(*v)); }
  bool U16(uint16_t* v) { return Copy(v, sizeof(*v)); }
  bool U32(uint32_t* v) { return Copy(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Copy(v, sizeof(*v)); }
  bool I32(int32_t* v) { return Copy(v, sizeof(*v)); }
  bool I64(int64_t* v) { return Copy(v, sizeof(*v)); }
  bool F64(double* v) { return Copy(v, sizeof(*v)); }
  /// u32 length prefix + bytes; the length is validated against the
  /// remaining buffer before any allocation.
  bool Str(std::string* s);

  size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }

 private:
  bool Copy(void* out, size_t n);
  const uint8_t* p_;
  size_t size_;
  size_t pos_ = 0;
};

/// Wraps a payload into a full frame (header + payload).
std::vector<uint8_t> EncodeFrame(MessageType type,
                                 const std::vector<uint8_t>& payload);

struct FrameHeader {
  MessageType type = MessageType::kPing;
  uint32_t payload_len = 0;
};

/// Parses and validates the 9-byte frame header: magic, a known type,
/// and payload_len <= kMaxFramePayload.
Result<FrameHeader> DecodeFrameHeader(const uint8_t* data, size_t size);

/// Table codec (shared by kResult and any future table-carrying frame).
void EncodeTable(const table::Table& t, ByteWriter* w);
Result<table::Table> DecodeTable(ByteReader* r);

std::vector<uint8_t> EncodeQuery(const QueryRequest& q);
Result<QueryRequest> DecodeQuery(const uint8_t* payload, size_t size);

std::vector<uint8_t> EncodeResult(const QueryReply& r);
Result<QueryReply> DecodeResult(const uint8_t* payload, size_t size);

std::vector<uint8_t> EncodeError(const ErrorReply& e);
Result<ErrorReply> DecodeError(const uint8_t* payload, size_t size);

}  // namespace explainit::server
