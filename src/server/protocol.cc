#include "server/protocol.h"

#include <cstring>

namespace explainit::server {

namespace {

Status Truncated(const char* what) {
  return Status::InvalidArgument(std::string("truncated frame payload: ") +
                                 what);
}

bool ValidType(uint8_t t) {
  return t >= static_cast<uint8_t>(MessageType::kQuery) &&
         t <= static_cast<uint8_t>(MessageType::kPong);
}

void EncodeCell(const table::Value& v, ByteWriter* w) {
  const table::DataType t = v.type();
  w->U8(static_cast<uint8_t>(t));
  switch (t) {
    case table::DataType::kNull:
      break;
    case table::DataType::kDouble:
      w->F64(v.AsDouble());
      break;
    case table::DataType::kInt64:
      w->I64(v.AsInt());
      break;
    case table::DataType::kTimestamp:
      w->I64(v.AsTimestamp());
      break;
    case table::DataType::kString:
      w->Str(*v.TryString());
      break;
    case table::DataType::kMap: {
      const table::ValueMap& m = *v.AsMap();
      w->U32(static_cast<uint32_t>(m.size()));
      for (const auto& [key, value] : m) {
        w->Str(key);
        EncodeCell(value, w);
      }
      break;
    }
  }
}

Result<table::Value> DecodeCell(ByteReader* r, int depth) {
  uint8_t tag = 0;
  if (!r->U8(&tag)) return Truncated("cell tag");
  switch (static_cast<table::DataType>(tag)) {
    case table::DataType::kNull:
      return table::Value::Null();
    case table::DataType::kDouble: {
      double d = 0;
      if (!r->F64(&d)) return Truncated("double cell");
      return table::Value::Double(d);
    }
    case table::DataType::kInt64: {
      int64_t i = 0;
      if (!r->I64(&i)) return Truncated("int cell");
      return table::Value::Int(i);
    }
    case table::DataType::kTimestamp: {
      int64_t i = 0;
      if (!r->I64(&i)) return Truncated("timestamp cell");
      return table::Value::Timestamp(i);
    }
    case table::DataType::kString: {
      std::string s;
      if (!r->Str(&s)) return Truncated("string cell");
      return table::Value::String(std::move(s));
    }
    case table::DataType::kMap: {
      if (depth >= kMaxMapDepth) {
        return Status::InvalidArgument("cell map nesting exceeds depth cap");
      }
      uint32_t n = 0;
      if (!r->U32(&n)) return Truncated("map entry count");
      // Each entry costs >= 5 bytes (key length prefix + cell tag); a
      // hostile count past that cannot be satisfied by the buffer.
      if (static_cast<uint64_t>(n) * 5 > r->remaining()) {
        return Status::InvalidArgument(
            "map entry count exceeds remaining payload");
      }
      table::ValueMap m;
      for (uint32_t i = 0; i < n; ++i) {
        std::string key;
        if (!r->Str(&key)) return Truncated("map key");
        auto value = DecodeCell(r, depth + 1);
        EXPLAINIT_RETURN_IF_ERROR(value.status());
        m.emplace(std::move(key), std::move(value).value());
      }
      return table::Value::Map(std::move(m));
    }
    default:
      return Status::InvalidArgument("unknown cell type tag " +
                                     std::to_string(tag));
  }
}

}  // namespace

void ByteWriter::AppendLE(const void* p, size_t n) {
  // Little-endian host assumed (same as exec/ipc.cc's memcpy codec).
  const uint8_t* b = static_cast<const uint8_t*>(p);
  buf_.insert(buf_.end(), b, b + n);
}

void ByteWriter::Str(std::string_view s) {
  U32(static_cast<uint32_t>(s.size()));
  const uint8_t* b = reinterpret_cast<const uint8_t*>(s.data());
  buf_.insert(buf_.end(), b, b + s.size());
}

bool ByteReader::Copy(void* out, size_t n) {
  if (size_ - pos_ < n) return false;
  std::memcpy(out, p_ + pos_, n);
  pos_ += n;
  return true;
}

bool ByteReader::Str(std::string* s) {
  uint32_t len = 0;
  if (!U32(&len)) return false;
  if (remaining() < len) return false;
  s->assign(reinterpret_cast<const char*>(p_ + pos_), len);
  pos_ += len;
  return true;
}

std::vector<uint8_t> EncodeFrame(MessageType type,
                                 const std::vector<uint8_t>& payload) {
  ByteWriter w;
  w.U32(kFrameMagic);
  w.U8(static_cast<uint8_t>(type));
  w.U32(static_cast<uint32_t>(payload.size()));
  std::vector<uint8_t> out = w.Take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Result<FrameHeader> DecodeFrameHeader(const uint8_t* data, size_t size) {
  ByteReader r(data, size);
  uint32_t magic = 0;
  uint8_t type = 0;
  FrameHeader h;
  if (!r.U32(&magic) || !r.U8(&type) || !r.U32(&h.payload_len)) {
    return Status::InvalidArgument("frame header too short");
  }
  if (magic != kFrameMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  if (!ValidType(type)) {
    return Status::InvalidArgument("unknown frame type " +
                                   std::to_string(type));
  }
  if (h.payload_len > kMaxFramePayload) {
    return Status::InvalidArgument(
        "frame payload exceeds the cap (" + std::to_string(kMaxFramePayload) +
        " bytes): " + std::to_string(h.payload_len));
  }
  h.type = static_cast<MessageType>(type);
  return h;
}

void EncodeTable(const table::Table& t, ByteWriter* w) {
  const table::Schema& schema = t.schema();
  w->U32(static_cast<uint32_t>(schema.num_fields()));
  for (const table::Field& f : schema.fields()) {
    w->Str(f.name);
    w->U8(static_cast<uint8_t>(f.type));
  }
  w->U64(t.num_rows());
  for (size_t row = 0; row < t.num_rows(); ++row) {
    for (size_t col = 0; col < t.num_columns(); ++col) {
      EncodeCell(t.At(row, col), w);
    }
  }
}

Result<table::Table> DecodeTable(ByteReader* r) {
  uint32_t ncols = 0;
  if (!r->U32(&ncols)) return Truncated("column count");
  // A column header costs >= 5 bytes; reject counts the buffer cannot hold
  // before building the schema.
  if (static_cast<uint64_t>(ncols) * 5 > r->remaining()) {
    return Status::InvalidArgument("column count exceeds remaining payload");
  }
  table::Schema schema;
  for (uint32_t c = 0; c < ncols; ++c) {
    std::string name;
    uint8_t dtype = 0;
    if (!r->Str(&name) || !r->U8(&dtype)) return Truncated("column header");
    if (dtype > static_cast<uint8_t>(table::DataType::kMap)) {
      return Status::InvalidArgument("unknown column type tag " +
                                     std::to_string(dtype));
    }
    schema.AddField({std::move(name), static_cast<table::DataType>(dtype)});
  }
  uint64_t nrows = 0;
  if (!r->U64(&nrows)) return Truncated("row count");
  // Each cell costs >= 1 byte, so nrows * ncols must fit in what is left.
  if (ncols != 0 && nrows > r->remaining() / ncols) {
    return Status::InvalidArgument("row count exceeds remaining payload");
  }
  if (ncols == 0 && nrows != 0) {
    return Status::InvalidArgument("rows declared for a zero-column table");
  }
  table::Table t(std::move(schema));
  std::vector<table::Value> row(ncols);
  for (uint64_t i = 0; i < nrows; ++i) {
    for (uint32_t c = 0; c < ncols; ++c) {
      auto cell = DecodeCell(r, 0);
      EXPLAINIT_RETURN_IF_ERROR(cell.status());
      row[c] = std::move(cell).value();
    }
    t.AppendRow(row);
  }
  return t;
}

std::vector<uint8_t> EncodeQuery(const QueryRequest& q) {
  ByteWriter w;
  w.U32(q.deadline_ms);
  w.Str(q.sql);
  return w.Take();
}

Result<QueryRequest> DecodeQuery(const uint8_t* payload, size_t size) {
  ByteReader r(payload, size);
  QueryRequest q;
  if (!r.U32(&q.deadline_ms) || !r.Str(&q.sql)) {
    return Truncated("query request");
  }
  if (!r.exhausted()) {
    return Status::InvalidArgument("trailing bytes after query request");
  }
  return q;
}

std::vector<uint8_t> EncodeResult(const QueryReply& reply) {
  ByteWriter w;
  w.U64(reply.latency_us);
  w.U32(reply.parallelism);
  w.U64(reply.rows_output);
  w.U64(reply.rows_scanned);
  w.U8(reply.statement_kind);
  w.U32(reply.active_monitors);
  EncodeTable(reply.table, &w);
  return w.Take();
}

Result<QueryReply> DecodeResult(const uint8_t* payload, size_t size) {
  ByteReader r(payload, size);
  QueryReply reply;
  if (!r.U64(&reply.latency_us) || !r.U32(&reply.parallelism) ||
      !r.U64(&reply.rows_output) || !r.U64(&reply.rows_scanned) ||
      !r.U8(&reply.statement_kind) || !r.U32(&reply.active_monitors)) {
    return Truncated("result header");
  }
  auto t = DecodeTable(&r);
  EXPLAINIT_RETURN_IF_ERROR(t.status());
  if (!r.exhausted()) {
    return Status::InvalidArgument("trailing bytes after result table");
  }
  reply.table = std::move(t).value();
  return reply;
}

std::vector<uint8_t> EncodeError(const ErrorReply& e) {
  ByteWriter w;
  w.I32(e.code);
  w.Str(e.message);
  return w.Take();
}

Result<ErrorReply> DecodeError(const uint8_t* payload, size_t size) {
  ByteReader r(payload, size);
  ErrorReply e;
  if (!r.I32(&e.code) || !r.Str(&e.message)) return Truncated("error reply");
  if (!r.exhausted()) {
    return Status::InvalidArgument("trailing bytes after error reply");
  }
  return e;
}

}  // namespace explainit::server
