// Blocking client for the SQL/EXPLAIN server protocol. One TCP
// connection = one session on the server; a Client is single-threaded by
// design (one outstanding request), concurrency comes from opening more
// clients.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "server/protocol.h"

namespace explainit::server {

class Client {
 public:
  /// Connects and verifies the server accepted the session (a server at
  /// its session cap replies kBusy before closing; that surfaces as
  /// Unavailable on the first request).
  static Result<Client> Connect(const std::string& host, uint16_t port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Runs one statement. deadline_ms = 0 means no deadline. Server-side
  /// failures come back as the transported Status (ParseError,
  /// DeadlineExceeded, ...); admission rejection as Unavailable.
  Result<QueryReply> Query(std::string_view sql, uint32_t deadline_ms = 0);

  /// Liveness round-trip.
  Status Ping();

 private:
  explicit Client(int fd) : fd_(fd) {}
  /// Sends one frame and reads the reply frame (header + payload).
  Result<std::vector<uint8_t>> RoundTrip(MessageType type,
                                         const std::vector<uint8_t>& payload,
                                         MessageType* reply_type);
  int fd_ = -1;
};

}  // namespace explainit::server
