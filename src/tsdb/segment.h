// Immutable sealed segments: the at-rest form of series data in the
// tiered store. A segment owns one Gorilla CompressedBlock plus the
// rollup tiers built from it at seal time, and never changes after
// construction — scans capture segments by shared_ptr and decode without
// any lock, while writers keep appending to the series head.
#pragma once

#include <memory>
#include <vector>

#include "common/result.h"
#include "common/time_util.h"
#include "tsdb/compression.h"
#include "tsdb/rollup.h"

namespace explainit::tsdb {

class SealedSegment {
 public:
  /// Seals `block` into an immutable segment: decodes it once, records
  /// the time extent and builds every rollup tier. Empty blocks are
  /// invalid (the sealer never seals an empty head).
  static Result<std::shared_ptr<const SealedSegment>> Seal(
      CompressedBlock block);

  /// Compaction: merges older-to-newer segments of one series into a
  /// single segment (re-encoded block, rebuilt rollups). Segments must be
  /// in append order, so their concatenated points stay non-decreasing.
  static Result<std::shared_ptr<const SealedSegment>> Merge(
      const std::vector<std::shared_ptr<const SealedSegment>>& parts);

  const CompressedBlock& block() const { return block_; }
  size_t num_points() const { return num_points_; }
  size_t byte_size() const { return block_.byte_size(); }
  EpochSeconds min_timestamp() const { return min_ts_; }
  EpochSeconds max_timestamp() const { return max_ts_; }

  /// The tier with exactly `step_seconds`; nullptr when not maintained.
  const RollupTier* TierFor(int64_t step_seconds) const;
  const std::vector<RollupTier>& tiers() const { return tiers_; }

 private:
  SealedSegment() = default;

  /// Shared tail of Seal/Merge: wraps the block plus its decoded points.
  static std::shared_ptr<const SealedSegment> Build(
      CompressedBlock block, const std::vector<EpochSeconds>& timestamps,
      const std::vector<double>& values);

  CompressedBlock block_;
  size_t num_points_ = 0;
  EpochSeconds min_ts_ = 0;
  EpochSeconds max_ts_ = 0;
  std::vector<RollupTier> tiers_;  // kRollupTierSteps order
};

}  // namespace explainit::tsdb
