// Gorilla-style time series compression (Pelkonen et al., VLDB'15 — cited
// by the paper as a representative TSDB): delta-of-delta encoded
// timestamps and XOR-encoded doubles over a bit stream.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/time_util.h"

namespace explainit::tsdb {

/// Append-only bit stream writer.
class BitWriter {
 public:
  /// Appends the low `bits` bits of `value` (most significant first).
  void WriteBits(uint64_t value, int bits);
  void WriteBit(bool bit) { WriteBits(bit ? 1 : 0, 1); }

  /// Total bits written.
  size_t bit_count() const { return bit_count_; }
  const std::vector<uint8_t>& bytes() const { return bytes_; }

  /// Restores a writer from a byte image (for snapshot reload).
  void Restore(std::vector<uint8_t> bytes, size_t bit_count) {
    bytes_ = std::move(bytes);
    bit_count_ = bit_count;
  }

 private:
  std::vector<uint8_t> bytes_;
  size_t bit_count_ = 0;
};

/// Sequential bit stream reader.
class BitReader {
 public:
  BitReader(const std::vector<uint8_t>& bytes, size_t bit_count)
      : bytes_(bytes), bit_count_(bit_count) {}

  /// Reads `bits` bits; fails with OutOfRange past the end.
  Result<uint64_t> ReadBits(int bits);
  Result<bool> ReadBit();
  size_t bits_remaining() const { return bit_count_ - position_; }

 private:
  const std::vector<uint8_t>& bytes_;
  size_t bit_count_;
  size_t position_ = 0;
};

/// A compressed block of (timestamp, value) points for one series.
///
/// Timestamps use delta-of-delta encoding with the Gorilla bucket scheme;
/// values use XOR encoding with leading/meaningful-bit reuse.
class CompressedBlock {
 public:
  /// Appends a point; timestamps must be non-decreasing.
  Status Append(EpochSeconds timestamp, double value);

  size_t num_points() const { return num_points_; }
  /// Compressed payload size in bytes.
  size_t byte_size() const { return writer_.bytes().size(); }

  /// Timestamp extent (valid only when num_points() > 0). Timestamps are
  /// appended non-decreasing, so these bound every point in the block.
  EpochSeconds first_timestamp() const { return first_timestamp_; }
  EpochSeconds last_timestamp() const { return prev_timestamp_; }

  /// Decodes every point in the block.
  Result<std::vector<std::pair<EpochSeconds, double>>> Decode() const;

  /// Appends a self-contained binary image of this block (including the
  /// encoder state, so appends can continue after a reload) to `out`.
  void Serialize(std::vector<uint8_t>* out) const;

  /// Parses a block from `data` starting at *offset; advances *offset.
  static Result<CompressedBlock> Deserialize(const std::vector<uint8_t>& data,
                                             size_t* offset);

 private:
  BitWriter writer_;
  size_t num_points_ = 0;
  EpochSeconds first_timestamp_ = 0;
  EpochSeconds prev_timestamp_ = 0;
  int64_t prev_delta_ = 0;
  uint64_t prev_value_bits_ = 0;
  int prev_leading_ = -1;  // -1: no reusable window yet
  int prev_trailing_ = 0;
};

}  // namespace explainit::tsdb
