#include "tsdb/head.h"

#include <utility>

namespace explainit::tsdb {

Status SeriesHead::Append(EpochSeconds timestamp, double value) {
  if (block_.num_points() == 0) {
    first_append_walltime_ = MonotonicSeconds();
  }
  return block_.Append(timestamp, value);
}

double SeriesHead::AgeSeconds() const {
  if (block_.num_points() == 0) return 0.0;
  return MonotonicSeconds() - first_append_walltime_;
}

CompressedBlock SeriesHead::Take() {
  CompressedBlock out = std::move(block_);
  block_ = CompressedBlock{};
  first_append_walltime_ = 0.0;
  return out;
}

void SeriesHead::Restore(CompressedBlock block) {
  block_ = std::move(block);
  first_append_walltime_ = MonotonicSeconds();
}

}  // namespace explainit::tsdb
