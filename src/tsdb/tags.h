// Tag sets: the key-value categorical attributes attached to every metric
// (§2: "an event has an associated timestamp, a list of key-value
// categorical attributes, and a key-value list of numerical measurements").
#pragma once

#include <map>
#include <string>
#include <vector>

namespace explainit::tsdb {

/// An ordered key -> value attribute set, e.g.
/// {host=datanode-1, type=read_latency}.
class TagSet {
 public:
  TagSet() = default;
  TagSet(std::initializer_list<std::pair<const std::string, std::string>> kv)
      : tags_(kv) {}
  explicit TagSet(std::map<std::string, std::string> tags)
      : tags_(std::move(tags)) {}

  /// Value for a key, or empty string when absent.
  const std::string& Get(const std::string& key) const;
  bool Has(const std::string& key) const { return tags_.count(key) > 0; }
  void Set(std::string key, std::string value) {
    tags_[std::move(key)] = std::move(value);
  }

  size_t size() const { return tags_.size(); }
  bool empty() const { return tags_.empty(); }
  const std::map<std::string, std::string>& entries() const { return tags_; }

  /// Canonical encoding "k1=v1,k2=v2" (keys sorted); used as a hash key for
  /// series identity.
  std::string Encode() const;

  /// True when every key in `filter` is present with a glob-matching value
  /// (filter values may contain '*' / '?').
  bool Matches(const TagSet& filter) const;

  bool operator==(const TagSet& other) const = default;
  bool operator<(const TagSet& other) const { return tags_ < other.tags_; }

 private:
  std::map<std::string, std::string> tags_;
};

}  // namespace explainit::tsdb
