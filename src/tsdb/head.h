// The mutable head of one series: the small, append-optimised front of
// the tiered store. All access is synchronised externally by the owning
// stripe's mutex (SeriesStore); the head itself is plain data — an
// in-progress Gorilla encoder plus enough bookkeeping for the sealer's
// size/age thresholds. Scans snapshot the head by copying its (bounded)
// block under the stripe lock and decode the copy lock-free.
#pragma once

#include "common/result.h"
#include "common/time_util.h"
#include "tsdb/compression.h"

namespace explainit::tsdb {

class SeriesHead {
 public:
  /// Appends one observation (timestamps non-decreasing per series).
  Status Append(EpochSeconds timestamp, double value);

  bool empty() const { return block_.num_points() == 0; }
  size_t num_points() const { return block_.num_points(); }
  size_t byte_size() const { return block_.byte_size(); }

  /// Wall-clock seconds since the first append of the current head
  /// generation (0 when empty) — the sealer's age threshold input.
  double AgeSeconds() const;

  /// The in-progress block (copy it under the stripe lock to snapshot).
  const CompressedBlock& block() const { return block_; }

  /// Moves the block out and resets the head (the seal handoff).
  CompressedBlock Take();

  /// Replaces the head's block (snapshot reload; encoder state included
  /// in the serialized block, so appends continue seamlessly).
  void Restore(CompressedBlock block);

 private:
  CompressedBlock block_;
  double first_append_walltime_ = 0.0;
};

}  // namespace explainit::tsdb
