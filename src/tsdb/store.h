// SeriesStore: the embedded time series database that stands in for
// OpenTSDB/Druid as ExplainIt!'s data source. Series are identified by
// (metric name, tag set); points are held in Gorilla-compressed blocks.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/time_util.h"
#include "exec/thread_pool.h"
#include "table/table.h"
#include "tsdb/compression.h"
#include "tsdb/tags.h"

namespace explainit::tsdb {

/// Identity of one univariate series.
struct SeriesMeta {
  std::string metric_name;
  TagSet tags;

  /// "metric{k=v,...}" — the display form used for feature names.
  std::string ToString() const;
};

/// Decoded points for one series in a scan result.
struct SeriesData {
  SeriesMeta meta;
  std::vector<EpochSeconds> timestamps;
  std::vector<double> values;
  /// The tag set rendered as a table::Value map, shared from the store's
  /// per-series cache (built at series creation; shared_ptr copy here).
  /// ScanToTable replicates it per row without rebuilding the map.
  table::Value tags_value;
};

/// Planner-derived scan narrowing, attached to a ScanRequest by the SQL
/// layer's predicate pushdown. Hints only ever *restrict* a scan: the
/// effective window is the intersection of the request range and the hint
/// range, and hinted glob/tag filters apply in addition to the request's.
struct ScanHints {
  /// Narrowed time window (from WHERE ts BETWEEN ... / comparisons).
  std::optional<TimeRange> range;
  /// Extra metric-name constraint ("" = unconstrained).
  std::string metric_glob;
  /// Extra tag constraints (from WHERE tag['k'] = 'v').
  TagSet tag_filter;
  /// Advisory: columns the query actually reads (providers may use this
  /// to skip materialising unused columns).
  std::vector<std::string> projection;

  bool empty() const {
    return !range.has_value() && metric_glob.empty() && tag_filter.empty() &&
           projection.empty();
  }
};

/// A scan request: which series (by metric-name glob and tag filter) and
/// which time window, plus optional pushdown hints.
struct ScanRequest {
  /// Glob over metric names ("disk*", "*" for all).
  std::string metric_glob = "*";
  /// Every entry must glob-match the series tags.
  TagSet tag_filter;
  /// Time window; start == end means "unbounded" (scan everything).
  TimeRange range;
  /// Pushdown narrowing from the query planner.
  ScanHints hints;

  /// The window actually scanned: range ∩ hints.range (a start == end
  /// request range is unbounded, so the hint window wins outright).
  TimeRange EffectiveRange() const;
};

/// Per-store scan observability. `scans`, `points_decoded` and
/// `points_returned` accumulate across scans (ResetScanStats clears);
/// `series_matched`, `last_range` and `last_metric_glob` describe the
/// most recent scan only. Updated by Scan() (best effort under
/// concurrent readers; the store is thread-compatible, not thread-safe).
struct ScanStats {
  size_t scans = 0;
  size_t series_matched = 0;  // most recent scan
  size_t points_decoded = 0;
  size_t points_returned = 0;
  /// Effective window of the most recent scan — the pushdown tests assert
  /// this shrank below the registered table range.
  TimeRange last_range;
  /// Effective metric constraint of the most recent scan ("glob" or
  /// "glob&hint" when both applied).
  std::string last_metric_glob;
};

/// Options for converting scans to a fixed minute grid.
struct GridOptions {
  int64_t step_seconds = kSecondsPerMinute;
  /// Fill policy for grid slots with no observation: interpolate to the
  /// closest non-null observation (Appendix C), or leave NaN.
  bool interpolate_missing = true;
};

/// An in-memory, write-optimised time series store.
///
/// Ingestion appends to per-series compressed blocks; queries decode and
/// filter. Thread-compatible (external synchronisation for writes).
class SeriesStore {
 public:
  SeriesStore() = default;

  /// Appends one observation. Creates the series on first write.
  /// Timestamps must be non-decreasing per series.
  Status Write(const std::string& metric_name, const TagSet& tags,
               EpochSeconds timestamp, double value);

  /// Bulk append of an aligned vector of points for one series.
  Status WriteSeries(const std::string& metric_name, const TagSet& tags,
                     const std::vector<EpochSeconds>& timestamps,
                     const std::vector<double>& values);

  size_t num_series() const { return series_.size(); }
  size_t num_points() const { return num_points_; }
  /// Total compressed payload bytes across all series.
  size_t compressed_bytes() const;

  /// All series metadata (order unspecified but stable per store).
  std::vector<SeriesMeta> ListSeries() const;

  /// Decodes every series matching the request, restricted to the window
  /// (honouring request.hints). Multi-series scans are morsel-parallel:
  /// when enough series match, per-series block decoding fans out over an
  /// internal exec::ThreadPool and the per-morsel results are merged in
  /// store order.
  Result<std::vector<SeriesData>> Scan(const ScanRequest& request) const;

  const ScanStats& scan_stats() const { return scan_stats_; }
  void ResetScanStats() { scan_stats_ = ScanStats{}; }

  /// Scans and aligns to a regular grid over request.range; missing slots
  /// are interpolated to the nearest observation (or NaN). All returned
  /// series share the same timestamps vector length.
  Result<std::vector<SeriesData>> ScanAligned(
      const ScanRequest& request, const GridOptions& options = {}) const;

  /// Renders a scan as a Table with schema
  /// (timestamp: TIMESTAMP, metric_name: STRING, tag: MAP, value: DOUBLE) —
  /// the raw-events shape the Appendix C queries run over (`tsdb` table).
  /// Honours hints.projection: only the referenced standard columns are
  /// materialised (per-row tag maps dominate the cost), falling back to
  /// all four when the projection is empty or names none of them.
  Result<table::Table> ScanToTable(const ScanRequest& request) const;

  /// Writes a binary snapshot of the whole store (compressed blocks plus
  /// encoder state, so writes can continue after a reload).
  Status SaveSnapshot(const std::string& path) const;

  /// Loads a snapshot written by SaveSnapshot, replacing this store's
  /// contents.
  Status LoadSnapshot(const std::string& path);

 private:
  struct Series {
    SeriesMeta meta;
    CompressedBlock block;
    /// meta.tags as a kMap Value, built once at series creation so scans
    /// never rebuild per-row tag maps.
    table::Value tags_value;
  };

  /// Builds the cached tags_value for a fresh series.
  static table::Value MakeTagsValue(const TagSet& tags);

  static std::string Key(const std::string& metric_name, const TagSet& tags);

  std::unordered_map<std::string, std::unique_ptr<Series>> series_;
  std::vector<std::string> insertion_order_;
  size_t num_points_ = 0;
  mutable ScanStats scan_stats_;
  /// Lazily created worker pool for morsel-parallel scans. The once_flag
  /// lives on the heap so the store stays movable.
  mutable std::unique_ptr<exec::ThreadPool> scan_pool_;
  mutable std::unique_ptr<std::once_flag> scan_pool_once_ =
      std::make_unique<std::once_flag>();
};

/// Fills NaN slots with the closest non-NaN neighbour (ties prefer the
/// earlier observation). A series of all-NaN becomes all zero.
void InterpolateMissing(std::vector<double>& values);

}  // namespace explainit::tsdb
