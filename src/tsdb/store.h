// SeriesStore: the embedded time series database that stands in for
// OpenTSDB/Druid as ExplainIt!'s data source. Series are identified by
// (metric name, tag set); points are held in Gorilla-compressed blocks.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/time_util.h"
#include "table/table.h"
#include "tsdb/compression.h"
#include "tsdb/tags.h"

namespace explainit::tsdb {

/// Identity of one univariate series.
struct SeriesMeta {
  std::string metric_name;
  TagSet tags;

  /// "metric{k=v,...}" — the display form used for feature names.
  std::string ToString() const;
};

/// Decoded points for one series in a scan result.
struct SeriesData {
  SeriesMeta meta;
  std::vector<EpochSeconds> timestamps;
  std::vector<double> values;
};

/// A scan request: which series (by metric-name glob and tag filter) and
/// which time window.
struct ScanRequest {
  /// Glob over metric names ("disk*", "*" for all).
  std::string metric_glob = "*";
  /// Every entry must glob-match the series tags.
  TagSet tag_filter;
  TimeRange range;
};

/// Options for converting scans to a fixed minute grid.
struct GridOptions {
  int64_t step_seconds = kSecondsPerMinute;
  /// Fill policy for grid slots with no observation: interpolate to the
  /// closest non-null observation (Appendix C), or leave NaN.
  bool interpolate_missing = true;
};

/// An in-memory, write-optimised time series store.
///
/// Ingestion appends to per-series compressed blocks; queries decode and
/// filter. Thread-compatible (external synchronisation for writes).
class SeriesStore {
 public:
  SeriesStore() = default;

  /// Appends one observation. Creates the series on first write.
  /// Timestamps must be non-decreasing per series.
  Status Write(const std::string& metric_name, const TagSet& tags,
               EpochSeconds timestamp, double value);

  /// Bulk append of an aligned vector of points for one series.
  Status WriteSeries(const std::string& metric_name, const TagSet& tags,
                     const std::vector<EpochSeconds>& timestamps,
                     const std::vector<double>& values);

  size_t num_series() const { return series_.size(); }
  size_t num_points() const { return num_points_; }
  /// Total compressed payload bytes across all series.
  size_t compressed_bytes() const;

  /// All series metadata (order unspecified but stable per store).
  std::vector<SeriesMeta> ListSeries() const;

  /// Decodes every series matching the request, restricted to the window.
  Result<std::vector<SeriesData>> Scan(const ScanRequest& request) const;

  /// Scans and aligns to a regular grid over request.range; missing slots
  /// are interpolated to the nearest observation (or NaN). All returned
  /// series share the same timestamps vector length.
  Result<std::vector<SeriesData>> ScanAligned(
      const ScanRequest& request, const GridOptions& options = {}) const;

  /// Renders a scan as a Table with schema
  /// (timestamp: TIMESTAMP, metric_name: STRING, tag: MAP, value: DOUBLE) —
  /// the raw-events shape the Appendix C queries run over (`tsdb` table).
  Result<table::Table> ScanToTable(const ScanRequest& request) const;

  /// Writes a binary snapshot of the whole store (compressed blocks plus
  /// encoder state, so writes can continue after a reload).
  Status SaveSnapshot(const std::string& path) const;

  /// Loads a snapshot written by SaveSnapshot, replacing this store's
  /// contents.
  Status LoadSnapshot(const std::string& path);

 private:
  struct Series {
    SeriesMeta meta;
    CompressedBlock block;
  };

  static std::string Key(const std::string& metric_name, const TagSet& tags);

  std::unordered_map<std::string, std::unique_ptr<Series>> series_;
  std::vector<std::string> insertion_order_;
  size_t num_points_ = 0;
};

/// Fills NaN slots with the closest non-NaN neighbour (ties prefer the
/// earlier observation). A series of all-NaN becomes all zero.
void InterpolateMissing(std::vector<double>& values);

}  // namespace explainit::tsdb
