// SeriesStore: the embedded time series database that stands in for
// OpenTSDB/Druid as ExplainIt!'s data source — a tiered, concurrency-safe
// engine that ingests while EXPLAIN queries run.
//
// Each series is split into a small *mutable head* (an in-progress
// Gorilla encoder behind a lock stripe) and a list of *immutable sealed
// segments* (reference-counted; built with downsampled rollup tiers,
// raw -> 1m -> 1h, at seal time). A background sealer/compactor on the
// store's worker pool seals heads that exceed a size/age threshold and
// merges segment runs. Scans capture a per-series snapshot (shared_ptr
// segments + a copy of the bounded head block) under the stripe lock and
// decode entirely lock-free, so readers never block writers and every
// scan sees a prefix-consistent view of each series.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/time_util.h"
#include "exec/worker_pool.h"
#include "table/table.h"
#include "tsdb/compression.h"
#include "tsdb/rollup.h"
#include "tsdb/segment.h"
#include "tsdb/tags.h"

namespace explainit::tsdb {

/// Identity of one univariate series.
struct SeriesMeta {
  std::string metric_name;
  TagSet tags;

  /// "metric{k=v,...}" — the display form used for feature names.
  std::string ToString() const;
};

/// Decoded points for one series in a scan result.
struct SeriesData {
  SeriesMeta meta;
  std::vector<EpochSeconds> timestamps;
  std::vector<double> values;
  /// The tag set rendered as a table::Value map, shared from the store's
  /// per-series cache (built at series creation; shared_ptr copy here).
  /// ScanToTable replicates it per row without rebuilding the map.
  table::Value tags_value;
};

/// Planner-derived scan narrowing, attached to a ScanRequest by the SQL
/// layer's predicate pushdown. The range/glob/tag/projection hints only
/// ever *restrict* a scan: the effective window is the intersection of
/// the request range and the hint range, and hinted glob/tag filters
/// apply in addition to the request's.
///
/// min_step_seconds + rollup form the *resolution* hint and are
/// different in kind: they declare that the consumer aggregates each
/// min_step_seconds-wide bucket with `rollup` (SUM/MIN/MAX) and never
/// looks at finer structure, which licenses the store to serve sealed
/// segments from a rollup tier — one (bucket_start, bucket_aggregate)
/// point per covered bucket instead of the raw points. Mixed output is
/// exact for these aggregates (sums of partial sums, mins of partial
/// mins); a provider must either implement that contract fully, as
/// SeriesStore does, or ignore the pair outright.
struct ScanHints {
  /// Narrowed time window (from WHERE ts BETWEEN ... / comparisons).
  std::optional<TimeRange> range;
  /// Extra metric-name constraint ("" = unconstrained).
  std::string metric_glob;
  /// Extra tag constraints (from WHERE tag['k'] = 'v').
  TagSet tag_filter;
  /// Advisory: columns the query actually reads (providers may use this
  /// to skip materialising unused columns).
  std::vector<std::string> projection;
  /// Resolution floor in seconds (0 = raw resolution required). Set
  /// together with `rollup` by the planner for grid-aligned aggregating
  /// queries (date_trunc / ts - ts % k GROUP BY shapes).
  int64_t min_step_seconds = 0;
  /// The per-bucket aggregate the consumer applies (kNone = raw).
  RollupAggregate rollup = RollupAggregate::kNone;

  bool empty() const {
    return !range.has_value() && metric_glob.empty() && tag_filter.empty() &&
           projection.empty() && min_step_seconds == 0;
  }
};

/// A scan request: which series (by metric-name glob and tag filter) and
/// which time window, plus optional pushdown hints.
struct ScanRequest {
  /// Glob over metric names ("disk*", "*" for all).
  std::string metric_glob = "*";
  /// Every entry must glob-match the series tags.
  TagSet tag_filter;
  /// Time window; start == end means "unbounded" (scan everything).
  TimeRange range;
  /// Pushdown narrowing from the query planner.
  ScanHints hints;

  /// The window actually scanned: range ∩ hints.range (a start == end
  /// request range is unbounded, so the hint window wins outright).
  TimeRange EffectiveRange() const;
};

/// Per-store scan observability, now mutex-guarded so concurrent scans
/// stay exact (and TSan-clean). Counters accumulate across scans
/// (ResetScanStats clears); `series_matched`, `last_range` and
/// `last_metric_glob` describe the most recent scan only.
struct ScanStats {
  size_t scans = 0;
  size_t series_matched = 0;  // most recent scan
  /// Raw points decoded from Gorilla blocks (head + raw-served
  /// segments). Rollup-served segments decode nothing raw.
  size_t points_decoded = 0;
  size_t points_returned = 0;
  /// Per-tier breakdown of points_decoded / rollup service.
  size_t head_points_decoded = 0;
  size_t segment_points_decoded = 0;
  /// Bucket rows returned from rollup tiers instead of raw decode.
  size_t rollup_points_returned = 0;
  /// Raw points whose decode the rollup tiers avoided.
  size_t rollup_points_skipped = 0;
  size_t minute_tier_points = 0;
  size_t hour_tier_points = 0;
  /// Segments served from a rollup tier / forced back to raw because a
  /// window-cut bucket made the tier inexact.
  size_t segments_rollup_served = 0;
  size_t segments_raw_fallback = 0;
  /// Effective window of the most recent scan — the pushdown tests assert
  /// this shrank below the registered table range.
  TimeRange last_range;
  /// Effective metric constraint of the most recent scan ("glob" or
  /// "glob&hint" when both applied).
  std::string last_metric_glob;
};

/// Lifetime storage-maintenance counters plus a point-in-time census of
/// the tiers (head vs sealed).
struct StorageStats {
  size_t seals = 0;        // seal operations since construction
  size_t compactions = 0;  // segment-merge operations
  size_t sealed_segments = 0;  // current total across series
  size_t head_points = 0;      // points still in mutable heads
  size_t sealed_points = 0;    // points in sealed segments
  size_t retention_evicted_segments = 0;  // TTL-dropped sealed segments
  size_t retention_evicted_points = 0;    // points inside those segments
};

/// Tiering/maintenance knobs.
struct StoreOptions {
  /// Seal a head once it holds this many points...
  size_t seal_max_points = 4096;
  /// ...or this many compressed bytes...
  size_t seal_max_bytes = 64 * 1024;
  /// ...or once its oldest point is this many wall-clock seconds old
  /// (checked on the next write to the series; 0 disables age sealing).
  double seal_max_age_seconds = 0.0;
  /// Seal on the store's worker pool (false: inline on the writing
  /// thread — deterministic, used by tests).
  bool background_seal = true;
  /// Merge a series' sealed segments into one once it accumulates this
  /// many (0 disables compaction).
  size_t compact_min_segments = 8;
  /// TTL for sealed data, in *data time*: a sealed segment is evicted
  /// once its newest point is older than the store's high-water
  /// timestamp (the max ever written) minus this many seconds. 0
  /// disables retention. The mutable head is never evicted, and a
  /// segment only goes once it is entirely expired, so always-on
  /// ingestion stays bounded without ever cutting a window mid-segment.
  /// Enforced on the background maintenance path (and by EvictExpired).
  int64_t retention_seconds = 0;
  /// Shared worker pool scans fan out over and background maintenance
  /// (sealing/compaction, serialised via a max-concurrency-1 task group)
  /// runs on. Borrowed, never owned; null = exec::WorkerPool::Global().
  /// Stores no longer construct private pools, so a box full of stores
  /// and sessions shares one set of workers.
  exec::WorkerPool* worker_pool = nullptr;
};

/// Options for converting scans to a fixed minute grid.
struct GridOptions {
  int64_t step_seconds = kSecondsPerMinute;
  /// Fill policy for grid slots with no observation: interpolate to the
  /// closest non-null observation (Appendix C), or leave NaN.
  bool interpolate_missing = true;
};

/// An in-memory, write-optimised, concurrency-safe time series store.
///
/// Writes and scans may run concurrently from any number of threads.
/// Moving or destroying the store itself still requires external
/// quiescence (no call may be in flight), as for any C++ object.
class SeriesStore {
 public:
  explicit SeriesStore(StoreOptions options = {});
  ~SeriesStore();

  SeriesStore(SeriesStore&&) noexcept;
  SeriesStore& operator=(SeriesStore&&) noexcept;

  const StoreOptions& options() const;

  /// Appends one observation. Creates the series on first write.
  /// Timestamps must be non-decreasing per series; concurrent writers
  /// must target distinct series for that to hold.
  Status Write(const std::string& metric_name, const TagSet& tags,
               EpochSeconds timestamp, double value);

  /// Bulk append of an aligned vector of points for one series.
  Status WriteSeries(const std::string& metric_name, const TagSet& tags,
                     const std::vector<EpochSeconds>& timestamps,
                     const std::vector<double>& values);

  size_t num_series() const;
  size_t num_points() const;
  /// Total compressed payload bytes across all series (heads + segments).
  size_t compressed_bytes() const;

  /// Seals every non-empty head into a segment and drains any background
  /// maintenance — afterwards the store is quiesced: all data sealed,
  /// rollups built. The lifecycle hook tests and benches use.
  Status Flush();

  /// Observer invoked synchronously after every accepted Write, outside
  /// the series' stripe lock — the monitor subsystem's head tap for the
  /// online anomaly detector. Must be cheap and thread-safe (called
  /// concurrently from writer threads), and must not call back into
  /// SetWriteObserver. An empty function clears it; SetWriteObserver
  /// returns only once no writer is still inside the previous observer
  /// (quiescence barrier).
  using WriteObserver =
      std::function<void(const SeriesMeta& meta, EpochSeconds timestamp,
                         double value)>;
  void SetWriteObserver(WriteObserver observer);

  /// Synchronously drops every sealed segment that is entirely older
  /// than the retention cutoff (see StoreOptions::retention_seconds).
  /// Returns the number of segments evicted; no-op when retention is
  /// disabled. The background maintenance path calls this periodically —
  /// this entry point makes eviction deterministic for tests.
  size_t EvictExpired();

  /// Flush, then merge every series' segments into a single segment.
  Status Compact();

  /// All series metadata (creation order, stable per store).
  std::vector<SeriesMeta> ListSeries() const;

  /// Decodes every series matching the request, restricted to the window
  /// (honouring request.hints). Multi-series scans are morsel-parallel
  /// over the store's pool. Snapshot-isolated: concurrent writers are
  /// never blocked and each series decodes a prefix-consistent snapshot.
  ///
  /// With a resolution hint (hints.min_step_seconds + rollup), sealed
  /// segments fully covered by the window are served from the coarsest
  /// qualifying rollup tier as (bucket_start, aggregate) points; within
  /// such a series, timestamps can repeat a bucket or regress at segment
  /// boundaries — consumers are grid-aligned aggregators by contract.
  Result<std::vector<SeriesData>> Scan(const ScanRequest& request) const;

  ScanStats scan_stats() const;
  void ResetScanStats();
  StorageStats storage_stats() const;

  /// Scans and aligns to a regular grid over request.range; missing slots
  /// are interpolated to the nearest observation (or NaN). All returned
  /// series share the same timestamps vector length.
  Result<std::vector<SeriesData>> ScanAligned(
      const ScanRequest& request, const GridOptions& options = {}) const;

  /// Renders a scan as a Table with schema
  /// (timestamp: TIMESTAMP, metric_name: STRING, tag: MAP, value: DOUBLE) —
  /// the raw-events shape the Appendix C queries run over (`tsdb` table).
  /// Honours hints.projection: only the referenced standard columns are
  /// materialised (per-row tag maps dominate the cost), falling back to
  /// all four when the projection is empty or names none of them.
  Result<table::Table> ScanToTable(const ScanRequest& request) const;

  /// Writes a binary snapshot of the whole store: per series, every
  /// sealed segment block plus the head block with its encoder state, so
  /// writes continue seamlessly after a reload. Concurrent writers make
  /// the snapshot a per-series-consistent (not globally atomic) backup.
  Status SaveSnapshot(const std::string& path) const;

  /// Loads a snapshot written by SaveSnapshot, replacing this store's
  /// contents. Understands both the current tiered format and the
  /// original single-block-per-series seed format (loaded as all-head
  /// stores that reseal under the current thresholds as writes resume).
  /// Not safe against concurrent use of this store.
  Status LoadSnapshot(const std::string& path);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Fills NaN slots with the closest non-NaN neighbour (ties prefer the
/// earlier observation). A series of all-NaN becomes all zero.
void InterpolateMissing(std::vector<double>& values);

}  // namespace explainit::tsdb
