#include "tsdb/rollup.h"

#include <algorithm>

namespace explainit::tsdb {

int64_t EffectiveRollupTierStep(int64_t min_step_seconds) {
  if (min_step_seconds <= 0) return 0;
  for (int64_t step : kRollupTierSteps) {
    if (min_step_seconds % step == 0) return step;
  }
  return 0;
}

RollupTier BuildRollupTier(const std::vector<EpochSeconds>& timestamps,
                           const std::vector<double>& values,
                           int64_t step_seconds) {
  RollupTier tier;
  tier.step_seconds = step_seconds;
  for (size_t i = 0; i < timestamps.size(); ++i) {
    const EpochSeconds t = timestamps[i];
    const double v = values[i];
    const EpochSeconds bucket = AlignToStepStart(t, step_seconds);
    if (tier.points.empty() || tier.points.back().bucket != bucket) {
      RollupPoint p;
      p.bucket = bucket;
      p.first_ts = t;
      p.last_ts = t;
      p.min = v;
      p.max = v;
      p.sum = v;
      p.count = 1;
      tier.points.push_back(p);
      continue;
    }
    RollupPoint& p = tier.points.back();
    p.last_ts = t;
    p.min = std::min(p.min, v);
    p.max = std::max(p.max, v);
    p.sum += v;
    ++p.count;
  }
  return tier;
}

double RollupValue(const RollupPoint& p, RollupAggregate agg) {
  switch (agg) {
    case RollupAggregate::kMin:
      return p.min;
    case RollupAggregate::kMax:
      return p.max;
    case RollupAggregate::kSum:
      return p.sum;
    case RollupAggregate::kCount:
      return static_cast<double>(p.count);
    case RollupAggregate::kNone:
      break;
  }
  return p.sum;
}

}  // namespace explainit::tsdb
