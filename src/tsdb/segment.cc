#include "tsdb/segment.h"

namespace explainit::tsdb {

std::shared_ptr<const SealedSegment> SealedSegment::Build(
    CompressedBlock block, const std::vector<EpochSeconds>& timestamps,
    const std::vector<double>& values) {
  std::shared_ptr<SealedSegment> seg(new SealedSegment());
  seg->block_ = std::move(block);
  seg->num_points_ = timestamps.size();
  seg->min_ts_ = timestamps.front();
  seg->max_ts_ = timestamps.back();
  for (int64_t step : kRollupTierSteps) {
    seg->tiers_.push_back(BuildRollupTier(timestamps, values, step));
  }
  return seg;
}

Result<std::shared_ptr<const SealedSegment>> SealedSegment::Seal(
    CompressedBlock block) {
  if (block.num_points() == 0) {
    return Status::InvalidArgument("cannot seal an empty block");
  }
  EXPLAINIT_ASSIGN_OR_RETURN(auto points, block.Decode());
  std::vector<EpochSeconds> timestamps;
  std::vector<double> values;
  timestamps.reserve(points.size());
  values.reserve(points.size());
  for (const auto& [t, v] : points) {
    timestamps.push_back(t);
    values.push_back(v);
  }
  return Build(std::move(block), timestamps, values);
}

Result<std::shared_ptr<const SealedSegment>> SealedSegment::Merge(
    const std::vector<std::shared_ptr<const SealedSegment>>& parts) {
  if (parts.empty()) {
    return Status::InvalidArgument("cannot merge zero segments");
  }
  std::vector<EpochSeconds> timestamps;
  std::vector<double> values;
  for (const auto& part : parts) {
    EXPLAINIT_ASSIGN_OR_RETURN(auto points, part->block().Decode());
    for (const auto& [t, v] : points) {
      timestamps.push_back(t);
      values.push_back(v);
    }
  }
  CompressedBlock merged;
  for (size_t i = 0; i < timestamps.size(); ++i) {
    EXPLAINIT_RETURN_IF_ERROR(merged.Append(timestamps[i], values[i]));
  }
  return Build(std::move(merged), timestamps, values);
}

const RollupTier* SealedSegment::TierFor(int64_t step_seconds) const {
  for (const RollupTier& tier : tiers_) {
    if (tier.step_seconds == step_seconds) return &tier;
  }
  return nullptr;
}

}  // namespace explainit::tsdb
