#include "tsdb/store.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/strings.h"

namespace explainit::tsdb {

std::string SeriesMeta::ToString() const {
  std::string out = metric_name;
  out += '{';
  out += tags.Encode();
  out += '}';
  return out;
}

std::string SeriesStore::Key(const std::string& metric_name,
                             const TagSet& tags) {
  return metric_name + "{" + tags.Encode() + "}";
}

table::Value SeriesStore::MakeTagsValue(const TagSet& tags) {
  table::ValueMap map;
  for (const auto& [k, v] : tags.entries()) {
    map[k] = table::Value::String(v);
  }
  return table::Value::Map(std::move(map));
}

Status SeriesStore::Write(const std::string& metric_name, const TagSet& tags,
                          EpochSeconds timestamp, double value) {
  const std::string key = Key(metric_name, tags);
  auto it = series_.find(key);
  if (it == series_.end()) {
    auto s = std::make_unique<Series>();
    s->meta.metric_name = metric_name;
    s->meta.tags = tags;
    s->tags_value = MakeTagsValue(tags);
    it = series_.emplace(key, std::move(s)).first;
    insertion_order_.push_back(key);
  }
  EXPLAINIT_RETURN_IF_ERROR(it->second->block.Append(timestamp, value));
  ++num_points_;
  return Status::OK();
}

Status SeriesStore::WriteSeries(const std::string& metric_name,
                                const TagSet& tags,
                                const std::vector<EpochSeconds>& timestamps,
                                const std::vector<double>& values) {
  if (timestamps.size() != values.size()) {
    return Status::InvalidArgument("timestamps/values size mismatch");
  }
  for (size_t i = 0; i < timestamps.size(); ++i) {
    EXPLAINIT_RETURN_IF_ERROR(Write(metric_name, tags, timestamps[i],
                                    values[i]));
  }
  return Status::OK();
}

size_t SeriesStore::compressed_bytes() const {
  size_t total = 0;
  for (const auto& [key, s] : series_) total += s->block.byte_size();
  return total;
}

std::vector<SeriesMeta> SeriesStore::ListSeries() const {
  std::vector<SeriesMeta> out;
  out.reserve(series_.size());
  for (const std::string& key : insertion_order_) {
    out.push_back(series_.at(key)->meta);
  }
  return out;
}

TimeRange ScanRequest::EffectiveRange() const {
  if (!hints.range.has_value()) return range;
  if (range.end == range.start) return *hints.range;
  return TimeRange{std::max(range.start, hints.range->start),
                   std::min(range.end, hints.range->end)};
}

namespace {

/// Minimum matched-series count before a scan fans out over the pool;
/// below this the thread handoff costs more than the decode.
constexpr size_t kParallelScanThreshold = 64;

// Decodes one series block into a SeriesData restricted to `range`
// (unrestricted when `bounded` is false). `decoded` reports how many
// points the block held before windowing.
Result<SeriesData> DecodeSeries(const SeriesMeta& meta,
                                const table::Value& tags_value,
                                const CompressedBlock& block,
                                const TimeRange& range, bool bounded,
                                size_t* decoded) {
  EXPLAINIT_ASSIGN_OR_RETURN(auto points, block.Decode());
  *decoded = points.size();
  SeriesData data;
  data.meta = meta;
  data.tags_value = tags_value;
  data.timestamps.reserve(points.size());
  data.values.reserve(points.size());
  for (const auto& [t, v] : points) {
    if (bounded && !range.Contains(t)) continue;
    data.timestamps.push_back(t);
    data.values.push_back(v);
  }
  return data;
}

}  // namespace

Result<std::vector<SeriesData>> SeriesStore::Scan(
    const ScanRequest& request) const {
  const TimeRange window = request.EffectiveRange();
  const ScanHints& hints = request.hints;
  // The start == end sentinel only means "unbounded" on a hint-free
  // request; a hinted intersection that degenerates to an empty window
  // must scan nothing, not everything.
  const bool bounded =
      hints.range.has_value() || request.range.end != request.range.start;
  const bool empty_window = bounded && window.start >= window.end;

  // Pass 1: match series metadata (cheap, no decoding).
  std::vector<const Series*> matched;
  if (!empty_window) {
    for (const std::string& key : insertion_order_) {
      const Series& s = *series_.at(key);
      if (!GlobMatch(request.metric_glob, s.meta.metric_name)) continue;
      if (!hints.metric_glob.empty() &&
          !GlobMatch(hints.metric_glob, s.meta.metric_name)) {
        continue;
      }
      if (!s.meta.tags.Matches(request.tag_filter)) continue;
      if (!hints.tag_filter.empty() &&
          !s.meta.tags.Matches(hints.tag_filter)) {
        continue;
      }
      matched.push_back(&s);
    }
  }

  ++scan_stats_.scans;
  scan_stats_.series_matched = matched.size();
  scan_stats_.last_range = window;
  scan_stats_.last_metric_glob =
      hints.metric_glob.empty()
          ? request.metric_glob
          : (request.metric_glob == "*"
                 ? hints.metric_glob
                 : request.metric_glob + "&" + hints.metric_glob);

  // Pass 2: decode. One morsel per series; large scans fan out across the
  // pool and the per-morsel results merge back in store order.
  std::vector<SeriesData> slots(matched.size());
  std::vector<size_t> decoded(matched.size(), 0);
  std::vector<Status> statuses(matched.size(), Status::OK());
  auto decode_one = [&](size_t i) {
    auto r = DecodeSeries(matched[i]->meta, matched[i]->tags_value,
                          matched[i]->block, window, bounded, &decoded[i]);
    if (r.ok()) {
      slots[i] = std::move(r).value();
    } else {
      statuses[i] = r.status();
    }
  };
  if (matched.size() >= kParallelScanThreshold) {
    std::call_once(*scan_pool_once_, [this] {
      scan_pool_ = std::make_unique<exec::ThreadPool>();
    });
    // Chunked fan-out: one task per worker-sized run of series instead of
    // one queue round-trip per series (large stores match 100k+ series).
    exec::ParallelForChunks(*scan_pool_, matched.size(), /*min_grain=*/16,
                            [&](size_t begin, size_t end) {
                              for (size_t i = begin; i < end; ++i) {
                                decode_one(i);
                              }
                            });
  } else {
    for (size_t i = 0; i < matched.size(); ++i) decode_one(i);
  }

  std::vector<SeriesData> out;
  out.reserve(matched.size());
  size_t points_decoded = 0, points_returned = 0;
  for (size_t i = 0; i < matched.size(); ++i) {
    EXPLAINIT_RETURN_IF_ERROR(statuses[i]);
    points_decoded += decoded[i];
    points_returned += slots[i].timestamps.size();
    if (!slots[i].timestamps.empty()) out.push_back(std::move(slots[i]));
  }
  scan_stats_.points_decoded += points_decoded;
  scan_stats_.points_returned += points_returned;
  return out;
}

void InterpolateMissing(std::vector<double>& values) {
  const size_t n = values.size();
  // Forward pass records the distance to the previous valid value; the
  // backward pass picks whichever neighbour is nearer.
  std::vector<int64_t> prev_valid(n, -1);
  int64_t last = -1;
  for (size_t i = 0; i < n; ++i) {
    if (!std::isnan(values[i])) last = static_cast<int64_t>(i);
    prev_valid[i] = last;
  }
  int64_t next = -1;
  for (size_t ii = n; ii-- > 0;) {
    if (!std::isnan(values[ii])) {
      next = static_cast<int64_t>(ii);
      continue;
    }
    const int64_t p = prev_valid[ii];
    double fill = 0.0;
    if (p >= 0 && next >= 0) {
      const int64_t dp = static_cast<int64_t>(ii) - p;
      const int64_t dn = next - static_cast<int64_t>(ii);
      fill = dp <= dn ? values[p] : values[next];
    } else if (p >= 0) {
      fill = values[p];
    } else if (next >= 0) {
      fill = values[next];
    }
    values[ii] = fill;
  }
}

Result<std::vector<SeriesData>> SeriesStore::ScanAligned(
    const ScanRequest& request, const GridOptions& options) const {
  if (request.range.end <= request.range.start) {
    return Status::InvalidArgument("ScanAligned requires a non-empty range");
  }
  if (options.step_seconds <= 0) {
    return Status::InvalidArgument("grid step must be positive");
  }
  EXPLAINIT_ASSIGN_OR_RETURN(std::vector<SeriesData> raw, Scan(request));
  const int64_t step = options.step_seconds;
  const size_t slots = static_cast<size_t>(
      (request.range.end - request.range.start + step - 1) / step);
  std::vector<EpochSeconds> grid(slots);
  for (size_t i = 0; i < slots; ++i) {
    grid[i] = request.range.start + static_cast<int64_t>(i) * step;
  }
  for (SeriesData& s : raw) {
    std::vector<double> aligned(slots,
                                std::numeric_limits<double>::quiet_NaN());
    for (size_t i = 0; i < s.timestamps.size(); ++i) {
      const int64_t slot = (s.timestamps[i] - request.range.start) / step;
      if (slot < 0 || static_cast<size_t>(slot) >= slots) continue;
      // Last observation per slot wins.
      aligned[static_cast<size_t>(slot)] = s.values[i];
    }
    if (options.interpolate_missing) InterpolateMissing(aligned);
    s.timestamps = grid;
    s.values = std::move(aligned);
  }
  return raw;
}

Result<table::Table> SeriesStore::ScanToTable(
    const ScanRequest& request) const {
  EXPLAINIT_ASSIGN_OR_RETURN(std::vector<SeriesData> raw, Scan(request));
  // Honour the projection hint: materialise only the standard columns the
  // query references (the planner always includes every referenced
  // column, so skipping the rest can never lose a lookup — it only saves
  // building per-row tag maps / name strings, which dominate the cost).
  // An empty projection, or one naming none of our columns, keeps all
  // four so "column not found" errors still surface naturally.
  const std::vector<std::string>& projection = request.hints.projection;
  auto wanted = [&projection](std::string_view name) {
    for (const std::string& p : projection) {
      if (EqualsIgnoreCase(p, name)) return true;
    }
    return false;
  };
  bool keep_ts = wanted("timestamp");
  bool keep_metric = wanted("metric_name");
  bool keep_tag = wanted("tag");
  bool keep_value = wanted("value");
  if (!keep_ts && !keep_metric && !keep_tag && !keep_value) {
    keep_ts = keep_metric = keep_tag = keep_value = true;
  }

  size_t total = 0;
  for (const SeriesData& s : raw) total += s.timestamps.size();

  table::Schema schema;
  std::vector<std::vector<table::Value>> columns;
  columns.reserve(4);  // keeps add_column's returned pointers stable
  auto add_column = [&](const char* name, table::DataType type) {
    schema.AddField({name, type});
    columns.emplace_back();
    columns.back().reserve(total);
    return &columns.back();
  };
  std::vector<table::Value>* ts_col =
      keep_ts ? add_column("timestamp", table::DataType::kTimestamp)
              : nullptr;
  std::vector<table::Value>* metric_col =
      keep_metric ? add_column("metric_name", table::DataType::kString)
                  : nullptr;
  std::vector<table::Value>* tag_col =
      keep_tag ? add_column("tag", table::DataType::kMap) : nullptr;
  std::vector<table::Value>* value_col =
      keep_value ? add_column("value", table::DataType::kDouble) : nullptr;

  for (const SeriesData& s : raw) {
    const size_t n = s.timestamps.size();
    if (ts_col != nullptr) {
      for (size_t i = 0; i < n; ++i) {
        ts_col->push_back(table::Value::Timestamp(s.timestamps[i]));
      }
    }
    if (metric_col != nullptr) {
      const table::Value name = table::Value::String(s.meta.metric_name);
      metric_col->insert(metric_col->end(), n, name);
    }
    if (tag_col != nullptr) {
      tag_col->insert(tag_col->end(), n, s.tags_value);
    }
    if (value_col != nullptr) {
      for (size_t i = 0; i < n; ++i) {
        value_col->push_back(table::Value::Double(s.values[i]));
      }
    }
  }
  return table::Table::FromColumns(std::move(schema), std::move(columns));
}


namespace {
void PutString(std::vector<uint8_t>* out, const std::string& s) {
  const uint64_t n = s.size();
  const size_t at = out->size();
  out->resize(at + sizeof(n) + s.size());
  std::memcpy(out->data() + at, &n, sizeof(n));
  std::memcpy(out->data() + at + sizeof(n), s.data(), s.size());
}

bool GetString(const std::vector<uint8_t>& data, size_t* offset,
               std::string* s) {
  uint64_t n = 0;
  if (*offset + sizeof(n) > data.size()) return false;
  std::memcpy(&n, data.data() + *offset, sizeof(n));
  *offset += sizeof(n);
  if (*offset + n > data.size()) return false;
  s->assign(reinterpret_cast<const char*>(data.data() + *offset), n);
  *offset += n;
  return true;
}

constexpr uint32_t kSnapshotMagic = 0x45585453;  // "EXTS"
}  // namespace

Status SeriesStore::SaveSnapshot(const std::string& path) const {
  std::vector<uint8_t> buf;
  buf.resize(sizeof(kSnapshotMagic) + sizeof(uint64_t));
  std::memcpy(buf.data(), &kSnapshotMagic, sizeof(kSnapshotMagic));
  const uint64_t count = insertion_order_.size();
  std::memcpy(buf.data() + sizeof(kSnapshotMagic), &count, sizeof(count));
  for (const std::string& key : insertion_order_) {
    const Series& s = *series_.at(key);
    PutString(&buf, s.meta.metric_name);
    PutString(&buf, s.meta.tags.Encode());
    s.block.Serialize(&buf);
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open for writing: " + path);
  }
  const size_t written = std::fwrite(buf.data(), 1, buf.size(), f);
  std::fclose(f);
  if (written != buf.size()) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

Status SeriesStore::LoadSnapshot(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open for reading: " + path);
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> buf(static_cast<size_t>(size));
  const size_t read = std::fread(buf.data(), 1, buf.size(), f);
  std::fclose(f);
  if (read != buf.size()) {
    return Status::IOError("short read from " + path);
  }
  size_t offset = 0;
  uint32_t magic = 0;
  uint64_t count = 0;
  if (buf.size() < sizeof(magic) + sizeof(count)) {
    return Status::ParseError("snapshot too short");
  }
  std::memcpy(&magic, buf.data(), sizeof(magic));
  offset += sizeof(magic);
  if (magic != kSnapshotMagic) {
    return Status::ParseError("bad snapshot magic");
  }
  std::memcpy(&count, buf.data() + offset, sizeof(count));
  offset += sizeof(count);

  std::unordered_map<std::string, std::unique_ptr<Series>> series;
  std::vector<std::string> order;
  size_t points = 0;
  for (uint64_t i = 0; i < count; ++i) {
    std::string metric, tag_encoding;
    if (!GetString(buf, &offset, &metric) ||
        !GetString(buf, &offset, &tag_encoding)) {
      return Status::ParseError("truncated series header");
    }
    auto s = std::make_unique<Series>();
    s->meta.metric_name = metric;
    std::map<std::string, std::string> tags;
    if (!tag_encoding.empty()) {
      for (const std::string& kv : StrSplit(tag_encoding, ',')) {
        const auto parts = StrSplit(kv, '=');
        if (parts.size() != 2) {
          return Status::ParseError("bad tag encoding: " + kv);
        }
        tags[parts[0]] = parts[1];
      }
    }
    s->meta.tags = TagSet(std::move(tags));
    s->tags_value = MakeTagsValue(s->meta.tags);
    EXPLAINIT_ASSIGN_OR_RETURN(s->block,
                               CompressedBlock::Deserialize(buf, &offset));
    points += s->block.num_points();
    const std::string key = Key(s->meta.metric_name, s->meta.tags);
    order.push_back(key);
    series[key] = std::move(s);
  }
  series_ = std::move(series);
  insertion_order_ = std::move(order);
  num_points_ = points;
  return Status::OK();
}

}  // namespace explainit::tsdb
