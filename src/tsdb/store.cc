#include "tsdb/store.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <unordered_map>

#include "common/strings.h"
#include "exec/worker_pool.h"
#include "tsdb/head.h"

namespace explainit::tsdb {

std::string SeriesMeta::ToString() const {
  std::string out = metric_name;
  out += '{';
  out += tags.Encode();
  out += '}';
  return out;
}

TimeRange ScanRequest::EffectiveRange() const {
  if (!hints.range.has_value()) return range;
  if (range.end == range.start) return *hints.range;
  return TimeRange{std::max(range.start, hints.range->start),
                   std::min(range.end, hints.range->end)};
}

namespace {

/// Minimum matched-series count before a scan fans out over the pool;
/// below this the thread handoff costs more than the decode.
constexpr size_t kParallelScanThreshold = 64;

std::string SeriesKey(const std::string& metric_name, const TagSet& tags) {
  return metric_name + "{" + tags.Encode() + "}";
}

table::Value MakeTagsValue(const TagSet& tags) {
  table::ValueMap map;
  for (const auto& [k, v] : tags.entries()) {
    map[k] = table::Value::String(v);
  }
  return table::Value::Map(std::move(map));
}

/// Per-scan counters merged into the store's ScanStats once, at the end.
struct ScanCounters {
  size_t points_decoded = 0;
  size_t points_returned = 0;
  size_t head_points_decoded = 0;
  size_t segment_points_decoded = 0;
  size_t rollup_points_returned = 0;
  size_t rollup_points_skipped = 0;
  size_t minute_tier_points = 0;
  size_t hour_tier_points = 0;
  size_t segments_rollup_served = 0;
  size_t segments_raw_fallback = 0;

  void Merge(const ScanCounters& o) {
    points_decoded += o.points_decoded;
    points_returned += o.points_returned;
    head_points_decoded += o.head_points_decoded;
    segment_points_decoded += o.segment_points_decoded;
    rollup_points_returned += o.rollup_points_returned;
    rollup_points_skipped += o.rollup_points_skipped;
    minute_tier_points += o.minute_tier_points;
    hour_tier_points += o.hour_tier_points;
    segments_rollup_served += o.segments_rollup_served;
    segments_raw_fallback += o.segments_raw_fallback;
  }
};

// Decodes `block` into `data`, keeping points inside `range`
// (unrestricted when `bounded` is false). Returns how many points the
// block held before windowing.
Result<size_t> DecodeBlockInto(const CompressedBlock& block,
                               const TimeRange& range, bool bounded,
                               SeriesData* data) {
  EXPLAINIT_ASSIGN_OR_RETURN(auto points, block.Decode());
  for (const auto& [t, v] : points) {
    if (bounded && !range.Contains(t)) continue;
    data->timestamps.push_back(t);
    data->values.push_back(v);
  }
  return points.size();
}

}  // namespace

/// One series of the tiered store. `meta`/`tags_value`/`stripe` are
/// immutable after creation; the tier state below them is guarded by the
/// owning stripe's mutex in SeriesStore::Impl.
struct SeriesEntry {
  SeriesMeta meta;
  table::Value tags_value;
  size_t stripe = 0;

  SeriesHead head;
  std::vector<std::shared_ptr<const SealedSegment>> segments;
  /// A background maintenance task for this series is queued (suppresses
  /// duplicate submissions from subsequent writes).
  bool maintenance_scheduled = false;
};

struct SeriesStore::Impl {
  static constexpr size_t kStripeCount = 16;

  StoreOptions options;

  /// Guards the series map/order only (not the entries' tier state).
  /// Writers take it shared on the hot path; only first-write-of-a-series
  /// and LoadSnapshot take it exclusive.
  mutable std::shared_mutex map_mutex;
  std::unordered_map<std::string, std::shared_ptr<SeriesEntry>> by_key;
  std::vector<std::shared_ptr<SeriesEntry>> order;  // creation order

  /// Lock stripes for entry tier state; a series maps to a fixed stripe
  /// by key hash. Appends, seals and compactions of a series all run
  /// under its stripe; scans only take it long enough to copy the head
  /// block and the segment pointer vector.
  mutable std::array<std::mutex, kStripeCount> stripe_mutexes;

  std::atomic<size_t> total_points{0};
  std::atomic<size_t> seals{0};
  std::atomic<size_t> compactions{0};

  /// High-water data timestamp across all series (INT64_MIN until the
  /// first write) — the retention cutoff reference, so TTL is measured
  /// in data time, not wall time.
  std::atomic<int64_t> max_timestamp{std::numeric_limits<int64_t>::min()};
  std::atomic<size_t> retention_evicted_segments{0};
  std::atomic<size_t> retention_evicted_points{0};
  /// Writes since the last background retention sweep was queued.
  std::atomic<size_t> writes_since_sweep{0};
  static constexpr size_t kRetentionSweepInterval = 4096;

  /// Post-write observer (the monitor layer's anomaly-detector tap).
  /// has_observer is the hot-path gate: writers pay one relaxed load
  /// when no observer is installed.
  std::shared_mutex observer_mutex;
  std::shared_ptr<const SeriesStore::WriteObserver> observer;
  std::atomic<bool> has_observer{false};

  mutable std::mutex stats_mutex;
  ScanStats scan_stats;  // guarded by stats_mutex

  std::mutex error_mutex;
  Status background_error = Status::OK();  // first background-seal failure

  /// Shared worker pool (borrowed; the process-wide pool unless the
  /// options injected another). Scans fan out over it directly; the
  /// maintenance group below serialises sealing/compaction on it.
  exec::WorkerPool* pool;

  /// Serialised background maintenance (sealing/compaction), used only
  /// when options.background_seal. Declared last so it is destroyed
  /// first: its destructor drains every in-flight task while all the
  /// members those tasks touch are still alive. max_concurrency 1
  /// preserves the old single-threaded maintenance ordering without
  /// dedicating a thread, and keeps a scan's ParallelForChunks from
  /// waiting on (or stealing exceptions from) maintenance work — task
  /// groups are isolated per caller.
  std::unique_ptr<exec::TaskGroup> maintenance_group;

  explicit Impl(StoreOptions opts)
      : options(opts),
        pool(opts.worker_pool != nullptr ? opts.worker_pool
                                         : &exec::WorkerPool::Global()) {
    if (options.background_seal) {
      maintenance_group =
          std::make_unique<exec::TaskGroup>(pool, /*max_concurrency=*/1);
    }
  }

  std::mutex& StripeFor(const SeriesEntry& e) const {
    return stripe_mutexes[e.stripe];
  }

  std::shared_ptr<SeriesEntry> GetOrCreate(const std::string& metric_name,
                                           const TagSet& tags) {
    const std::string key = SeriesKey(metric_name, tags);
    {
      std::shared_lock<std::shared_mutex> lock(map_mutex);
      auto it = by_key.find(key);
      if (it != by_key.end()) return it->second;
    }
    std::unique_lock<std::shared_mutex> lock(map_mutex);
    auto it = by_key.find(key);
    if (it != by_key.end()) return it->second;
    auto e = std::make_shared<SeriesEntry>();
    e->meta.metric_name = metric_name;
    e->meta.tags = tags;
    e->tags_value = MakeTagsValue(tags);
    e->stripe = std::hash<std::string>{}(key) % kStripeCount;
    by_key.emplace(key, e);
    order.push_back(e);
    return e;
  }

  bool ShouldSeal(const SeriesHead& head) const {
    if (head.empty()) return false;
    if (head.num_points() >= options.seal_max_points) return true;
    if (head.byte_size() >= options.seal_max_bytes) return true;
    return options.seal_max_age_seconds > 0 &&
           head.AgeSeconds() >= options.seal_max_age_seconds;
  }

  /// Seals the entry's head into a new segment; stripe lock must be held.
  /// Seals from a copy so a (never-expected) decode failure loses nothing.
  Status SealLocked(SeriesEntry& e) {
    if (e.head.empty()) return Status::OK();
    EXPLAINIT_ASSIGN_OR_RETURN(auto segment,
                               SealedSegment::Seal(e.head.block()));
    e.head.Take();  // reset; the sealed copy now owns the points
    e.segments.push_back(std::move(segment));
    seals.fetch_add(1, std::memory_order_relaxed);
    return MaybeCompactLocked(e, options.compact_min_segments);
  }

  /// Merges the entry's segments into one when it has at least
  /// `min_segments` (0 disables); stripe lock must be held.
  Status MaybeCompactLocked(SeriesEntry& e, size_t min_segments) {
    if (min_segments == 0 || e.segments.size() < min_segments ||
        e.segments.size() < 2) {
      return Status::OK();
    }
    EXPLAINIT_ASSIGN_OR_RETURN(auto merged, SealedSegment::Merge(e.segments));
    e.segments.clear();
    e.segments.push_back(std::move(merged));
    compactions.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }

  void RecordBackgroundError(const Status& status) {
    std::lock_guard<std::mutex> lock(error_mutex);
    if (background_error.ok()) background_error = status;
  }

  /// Retention cutoff in data time; nullopt when retention is disabled
  /// or nothing has been written yet.
  std::optional<EpochSeconds> RetentionCutoff() const {
    if (options.retention_seconds <= 0) return std::nullopt;
    const int64_t high = max_timestamp.load(std::memory_order_relaxed);
    if (high == std::numeric_limits<int64_t>::min()) return std::nullopt;
    return high - options.retention_seconds;
  }

  /// Drops the entry's fully expired sealed segments (newest point older
  /// than `cutoff`); stripe lock must be held. Snapshot scans stay safe:
  /// in-flight readers hold shared_ptr copies of the segment vector.
  size_t EvictExpiredLocked(SeriesEntry& e, EpochSeconds cutoff) {
    size_t evicted = 0;
    size_t points = 0;
    auto& segs = e.segments;
    auto keep = segs.begin();
    for (auto it = segs.begin(); it != segs.end(); ++it) {
      if ((*it)->max_timestamp() < cutoff) {
        ++evicted;
        points += (*it)->num_points();
      } else {
        *keep++ = std::move(*it);
      }
    }
    segs.erase(keep, segs.end());
    if (evicted > 0) {
      retention_evicted_segments.fetch_add(evicted,
                                           std::memory_order_relaxed);
      retention_evicted_points.fetch_add(points, std::memory_order_relaxed);
      total_points.fetch_sub(points, std::memory_order_relaxed);
    }
    return evicted;
  }

  /// Store-wide retention sweep (background task and EvictExpired body).
  size_t SweepRetention() {
    const auto cutoff = RetentionCutoff();
    if (!cutoff.has_value()) return 0;
    size_t evicted = 0;
    for (const auto& e : SnapshotOrder()) {
      std::lock_guard<std::mutex> lock(StripeFor(*e));
      evicted += EvictExpiredLocked(*e, *cutoff);
    }
    return evicted;
  }

  /// The background maintenance task for one series.
  void Maintain(const std::shared_ptr<SeriesEntry>& e) {
    std::lock_guard<std::mutex> lock(StripeFor(*e));
    e->maintenance_scheduled = false;
    if (const auto cutoff = RetentionCutoff(); cutoff.has_value()) {
      EvictExpiredLocked(*e, *cutoff);
    }
    if (!ShouldSeal(e->head)) return;  // a flush got here first
    const Status status = SealLocked(*e);
    if (!status.ok()) RecordBackgroundError(status);
  }

  std::vector<std::shared_ptr<SeriesEntry>> SnapshotOrder() const {
    std::shared_lock<std::shared_mutex> lock(map_mutex);
    return order;
  }
};

SeriesStore::SeriesStore(StoreOptions options)
    : impl_(std::make_unique<Impl>(options)) {}
SeriesStore::~SeriesStore() = default;
SeriesStore::SeriesStore(SeriesStore&&) noexcept = default;
SeriesStore& SeriesStore::operator=(SeriesStore&&) noexcept = default;

const StoreOptions& SeriesStore::options() const { return impl_->options; }

Status SeriesStore::Write(const std::string& metric_name, const TagSet& tags,
                          EpochSeconds timestamp, double value) {
  std::shared_ptr<SeriesEntry> e = impl_->GetOrCreate(metric_name, tags);
  bool schedule = false;
  {
    std::lock_guard<std::mutex> lock(impl_->StripeFor(*e));
    EXPLAINIT_RETURN_IF_ERROR(e->head.Append(timestamp, value));
    if (impl_->ShouldSeal(e->head)) {
      if (impl_->options.background_seal) {
        if (!e->maintenance_scheduled) {
          e->maintenance_scheduled = true;
          schedule = true;
        }
      } else {
        EXPLAINIT_RETURN_IF_ERROR(impl_->SealLocked(*e));
      }
    }
  }
  impl_->total_points.fetch_add(1, std::memory_order_relaxed);
  // High-water timestamp (fetch-max): the retention cutoff reference.
  int64_t seen = impl_->max_timestamp.load(std::memory_order_relaxed);
  while (timestamp > seen &&
         !impl_->max_timestamp.compare_exchange_weak(
             seen, timestamp, std::memory_order_relaxed)) {
  }
  if (impl_->has_observer.load(std::memory_order_acquire)) {
    // Invoked under the shared lock so SetWriteObserver (unique lock)
    // doubles as a quiescence barrier: once it returns, no thread is
    // still inside the old observer.
    std::shared_lock<std::shared_mutex> lock(impl_->observer_mutex);
    if (impl_->observer && *impl_->observer) {
      (*impl_->observer)(e->meta, timestamp, value);
    }
  }
  if (schedule) {
    Impl* impl = impl_.get();
    impl->maintenance_group->Submit(
        [impl, e = std::move(e)] { impl->Maintain(e); }, "tsdb.maintenance");
  }
  // Periodic store-wide retention sweep: series that stopped receiving
  // writes never hit Maintain, so their expired segments are swept here.
  if (impl_->options.retention_seconds > 0 && impl_->maintenance_group &&
      impl_->writes_since_sweep.fetch_add(1, std::memory_order_relaxed) + 1 >=
          Impl::kRetentionSweepInterval) {
    impl_->writes_since_sweep.store(0, std::memory_order_relaxed);
    Impl* impl = impl_.get();
    impl->maintenance_group->Submit([impl] { impl->SweepRetention(); },
                                    "tsdb.maintenance");
  }
  return Status::OK();
}

void SeriesStore::SetWriteObserver(WriteObserver observer) {
  const bool installed = static_cast<bool>(observer);
  auto shared = installed
                    ? std::make_shared<const WriteObserver>(std::move(observer))
                    : nullptr;
  std::unique_lock<std::shared_mutex> lock(impl_->observer_mutex);
  impl_->observer = std::move(shared);
  impl_->has_observer.store(installed, std::memory_order_release);
}

size_t SeriesStore::EvictExpired() { return impl_->SweepRetention(); }

Status SeriesStore::WriteSeries(const std::string& metric_name,
                                const TagSet& tags,
                                const std::vector<EpochSeconds>& timestamps,
                                const std::vector<double>& values) {
  if (timestamps.size() != values.size()) {
    return Status::InvalidArgument("timestamps/values size mismatch");
  }
  for (size_t i = 0; i < timestamps.size(); ++i) {
    EXPLAINIT_RETURN_IF_ERROR(Write(metric_name, tags, timestamps[i],
                                    values[i]));
  }
  return Status::OK();
}

size_t SeriesStore::num_series() const {
  std::shared_lock<std::shared_mutex> lock(impl_->map_mutex);
  return impl_->order.size();
}

size_t SeriesStore::num_points() const {
  return impl_->total_points.load(std::memory_order_relaxed);
}

size_t SeriesStore::compressed_bytes() const {
  size_t total = 0;
  for (const auto& e : impl_->SnapshotOrder()) {
    std::lock_guard<std::mutex> lock(impl_->StripeFor(*e));
    total += e->head.byte_size();
    for (const auto& seg : e->segments) total += seg->byte_size();
  }
  return total;
}

Status SeriesStore::Flush() {
  // Drain queued maintenance first so no task races the inline seals
  // below into double-sealing decisions (Maintain re-checks thresholds
  // under the stripe lock, so the race would be benign — this just makes
  // the post-Flush state deterministic).
  if (impl_->maintenance_group) impl_->maintenance_group->Wait();
  for (const auto& e : impl_->SnapshotOrder()) {
    std::lock_guard<std::mutex> lock(impl_->StripeFor(*e));
    EXPLAINIT_RETURN_IF_ERROR(impl_->SealLocked(*e));
  }
  std::lock_guard<std::mutex> lock(impl_->error_mutex);
  Status first = impl_->background_error;
  impl_->background_error = Status::OK();
  return first;
}

Status SeriesStore::Compact() {
  EXPLAINIT_RETURN_IF_ERROR(Flush());
  for (const auto& e : impl_->SnapshotOrder()) {
    std::lock_guard<std::mutex> lock(impl_->StripeFor(*e));
    EXPLAINIT_RETURN_IF_ERROR(impl_->MaybeCompactLocked(*e, 2));
  }
  return Status::OK();
}

std::vector<SeriesMeta> SeriesStore::ListSeries() const {
  std::vector<SeriesMeta> out;
  auto entries = impl_->SnapshotOrder();
  out.reserve(entries.size());
  for (const auto& e : entries) out.push_back(e->meta);
  return out;
}

StorageStats SeriesStore::storage_stats() const {
  StorageStats stats;
  stats.seals = impl_->seals.load(std::memory_order_relaxed);
  stats.compactions = impl_->compactions.load(std::memory_order_relaxed);
  stats.retention_evicted_segments =
      impl_->retention_evicted_segments.load(std::memory_order_relaxed);
  stats.retention_evicted_points =
      impl_->retention_evicted_points.load(std::memory_order_relaxed);
  for (const auto& e : impl_->SnapshotOrder()) {
    std::lock_guard<std::mutex> lock(impl_->StripeFor(*e));
    stats.sealed_segments += e->segments.size();
    stats.head_points += e->head.num_points();
    for (const auto& seg : e->segments) stats.sealed_points += seg->num_points();
  }
  return stats;
}

namespace {

/// A prefix-consistent snapshot of one series' tier state, captured under
/// its stripe lock: segment pointers (immutable payloads) plus a copy of
/// the in-progress head block. Everything after capture is lock-free.
struct SeriesSnapshot {
  std::vector<std::shared_ptr<const SealedSegment>> segments;
  CompressedBlock head;
};

// Decodes one captured series into `data`. Sealed segments are served
// from the rollup tier with `tier_step` when every window-overlapping
// bucket lies entirely inside the window (tier_step 0: always raw).
Status DecodeSnapshot(const SeriesSnapshot& snap, const TimeRange& window,
                      bool bounded, int64_t tier_step, RollupAggregate agg,
                      SeriesData* data, ScanCounters* counters) {
  for (const auto& seg : snap.segments) {
    // Time pruning: a segment entirely outside the window decodes nothing.
    if (bounded && (seg->max_timestamp() < window.start ||
                    seg->min_timestamp() >= window.end)) {
      continue;
    }
    const RollupTier* tier =
        tier_step > 0 ? seg->TierFor(tier_step) : nullptr;
    bool rollup_ok = tier != nullptr;
    std::vector<const RollupPoint*> rows;
    if (tier != nullptr) {
      rows.reserve(tier->points.size());
      for (const RollupPoint& p : tier->points) {
        if (bounded) {
          if (p.last_ts < window.start || p.first_ts >= window.end) {
            continue;  // bucket entirely outside
          }
          if (p.first_ts < window.start || p.last_ts >= window.end) {
            // The window cuts this bucket: its aggregate mixes in-window
            // and out-of-window points, so the tier is inexact here.
            // Fall back to the raw block for the whole segment.
            rollup_ok = false;
            break;
          }
        }
        rows.push_back(&p);
      }
    }
    if (rollup_ok) {
      for (const RollupPoint* p : rows) {
        data->timestamps.push_back(p->bucket);
        data->values.push_back(RollupValue(*p, agg));
        counters->rollup_points_skipped += p->count;
      }
      counters->rollup_points_returned += rows.size();
      if (tier_step == kSecondsPerMinute) {
        counters->minute_tier_points += rows.size();
      } else {
        counters->hour_tier_points += rows.size();
      }
      ++counters->segments_rollup_served;
    } else {
      const size_t before = data->values.size();
      EXPLAINIT_ASSIGN_OR_RETURN(
          size_t decoded,
          DecodeBlockInto(seg->block(), window, bounded, data));
      counters->points_decoded += decoded;
      counters->segment_points_decoded += decoded;
      if (tier_step > 0) ++counters->segments_raw_fallback;
      if (agg == RollupAggregate::kCount) {
        // A count-routed scan returns point counts, not samples: each
        // raw-fallback point contributes a count of one.
        std::fill(data->values.begin() + before, data->values.end(), 1.0);
      }
    }
  }
  if (snap.head.num_points() > 0) {
    const size_t before = data->values.size();
    EXPLAINIT_ASSIGN_OR_RETURN(
        size_t decoded, DecodeBlockInto(snap.head, window, bounded, data));
    counters->points_decoded += decoded;
    counters->head_points_decoded += decoded;
    if (agg == RollupAggregate::kCount) {
      std::fill(data->values.begin() + before, data->values.end(), 1.0);
    }
  }
  counters->points_returned += data->timestamps.size();
  return Status::OK();
}

}  // namespace

Result<std::vector<SeriesData>> SeriesStore::Scan(
    const ScanRequest& request) const {
  const TimeRange window = request.EffectiveRange();
  const ScanHints& hints = request.hints;
  // The start == end sentinel only means "unbounded" on a hint-free
  // request; a hinted intersection that degenerates to an empty window
  // must scan nothing, not everything.
  const bool bounded =
      hints.range.has_value() || request.range.end != request.range.start;
  const bool empty_window = bounded && window.start >= window.end;
  const int64_t tier_step = hints.rollup != RollupAggregate::kNone
                                ? EffectiveRollupTierStep(hints.min_step_seconds)
                                : 0;

  // Pass 1: match series metadata (immutable after creation — only the
  // map lock is needed, no stripe locks).
  std::vector<std::shared_ptr<SeriesEntry>> matched;
  if (!empty_window) {
    std::shared_lock<std::shared_mutex> lock(impl_->map_mutex);
    for (const auto& e : impl_->order) {
      if (!GlobMatch(request.metric_glob, e->meta.metric_name)) continue;
      if (!hints.metric_glob.empty() &&
          !GlobMatch(hints.metric_glob, e->meta.metric_name)) {
        continue;
      }
      if (!e->meta.tags.Matches(request.tag_filter)) continue;
      if (!hints.tag_filter.empty() &&
          !e->meta.tags.Matches(hints.tag_filter)) {
        continue;
      }
      matched.push_back(e);
    }
  }

  // Pass 2: snapshot + decode, one morsel per series; large scans fan out
  // across the pool and the per-morsel results merge back in store order.
  // Each task holds the stripe lock only while copying the head block and
  // the segment pointers — decoding is entirely lock-free, so scans never
  // block writers (and vice versa).
  std::vector<SeriesData> slots(matched.size());
  std::vector<ScanCounters> counters(matched.size());
  std::vector<Status> statuses(matched.size(), Status::OK());
  auto decode_one = [&](size_t i) {
    const SeriesEntry& e = *matched[i];
    SeriesSnapshot snap;
    {
      std::lock_guard<std::mutex> lock(impl_->StripeFor(e));
      snap.segments = e.segments;
      snap.head = e.head.block();
    }
    slots[i].meta = e.meta;
    slots[i].tags_value = e.tags_value;
    Status s = DecodeSnapshot(snap, window, bounded, tier_step, hints.rollup,
                              &slots[i], &counters[i]);
    if (!s.ok()) statuses[i] = std::move(s);
  };
  if (matched.size() >= kParallelScanThreshold) {
    // Chunked fan-out over the shared pool: one task per worker-sized run
    // of series instead of one queue round-trip per series (large stores
    // match 100k+ series). The calling thread participates, so scans
    // issued from inside a pool task (a morsel-parallel operator) make
    // progress even when every worker is busy.
    exec::ParallelForChunks(*impl_->pool, matched.size(),
                            /*min_grain=*/16, [&](size_t begin, size_t end) {
                              for (size_t i = begin; i < end; ++i) {
                                decode_one(i);
                              }
                            });
  } else {
    for (size_t i = 0; i < matched.size(); ++i) decode_one(i);
  }

  std::vector<SeriesData> out;
  out.reserve(matched.size());
  ScanCounters total;
  for (size_t i = 0; i < matched.size(); ++i) {
    EXPLAINIT_RETURN_IF_ERROR(statuses[i]);
    total.Merge(counters[i]);
    if (!slots[i].timestamps.empty()) out.push_back(std::move(slots[i]));
  }

  {
    std::lock_guard<std::mutex> lock(impl_->stats_mutex);
    ScanStats& st = impl_->scan_stats;
    ++st.scans;
    st.series_matched = matched.size();
    st.last_range = window;
    st.last_metric_glob =
        hints.metric_glob.empty()
            ? request.metric_glob
            : (request.metric_glob == "*"
                   ? hints.metric_glob
                   : request.metric_glob + "&" + hints.metric_glob);
    st.points_decoded += total.points_decoded;
    st.points_returned += total.points_returned;
    st.head_points_decoded += total.head_points_decoded;
    st.segment_points_decoded += total.segment_points_decoded;
    st.rollup_points_returned += total.rollup_points_returned;
    st.rollup_points_skipped += total.rollup_points_skipped;
    st.minute_tier_points += total.minute_tier_points;
    st.hour_tier_points += total.hour_tier_points;
    st.segments_rollup_served += total.segments_rollup_served;
    st.segments_raw_fallback += total.segments_raw_fallback;
  }
  return out;
}

ScanStats SeriesStore::scan_stats() const {
  std::lock_guard<std::mutex> lock(impl_->stats_mutex);
  return impl_->scan_stats;
}

void SeriesStore::ResetScanStats() {
  std::lock_guard<std::mutex> lock(impl_->stats_mutex);
  impl_->scan_stats = ScanStats{};
}

void InterpolateMissing(std::vector<double>& values) {
  const size_t n = values.size();
  // Forward pass records the distance to the previous valid value; the
  // backward pass picks whichever neighbour is nearer.
  std::vector<int64_t> prev_valid(n, -1);
  int64_t last = -1;
  for (size_t i = 0; i < n; ++i) {
    if (!std::isnan(values[i])) last = static_cast<int64_t>(i);
    prev_valid[i] = last;
  }
  int64_t next = -1;
  for (size_t ii = n; ii-- > 0;) {
    if (!std::isnan(values[ii])) {
      next = static_cast<int64_t>(ii);
      continue;
    }
    const int64_t p = prev_valid[ii];
    double fill = 0.0;
    if (p >= 0 && next >= 0) {
      const int64_t dp = static_cast<int64_t>(ii) - p;
      const int64_t dn = next - static_cast<int64_t>(ii);
      fill = dp <= dn ? values[p] : values[next];
    } else if (p >= 0) {
      fill = values[p];
    } else if (next >= 0) {
      fill = values[next];
    }
    values[ii] = fill;
  }
}

Result<std::vector<SeriesData>> SeriesStore::ScanAligned(
    const ScanRequest& request, const GridOptions& options) const {
  if (request.range.end <= request.range.start) {
    return Status::InvalidArgument("ScanAligned requires a non-empty range");
  }
  if (options.step_seconds <= 0) {
    return Status::InvalidArgument("grid step must be positive");
  }
  EXPLAINIT_ASSIGN_OR_RETURN(std::vector<SeriesData> raw, Scan(request));
  const int64_t step = options.step_seconds;
  const size_t slots = static_cast<size_t>(
      (request.range.end - request.range.start + step - 1) / step);
  std::vector<EpochSeconds> grid(slots);
  for (size_t i = 0; i < slots; ++i) {
    grid[i] = request.range.start + static_cast<int64_t>(i) * step;
  }
  for (SeriesData& s : raw) {
    std::vector<double> aligned(slots,
                                std::numeric_limits<double>::quiet_NaN());
    for (size_t i = 0; i < s.timestamps.size(); ++i) {
      const int64_t slot = (s.timestamps[i] - request.range.start) / step;
      if (slot < 0 || static_cast<size_t>(slot) >= slots) continue;
      // Last observation per slot wins.
      aligned[static_cast<size_t>(slot)] = s.values[i];
    }
    if (options.interpolate_missing) InterpolateMissing(aligned);
    s.timestamps = grid;
    s.values = std::move(aligned);
  }
  return raw;
}

Result<table::Table> SeriesStore::ScanToTable(
    const ScanRequest& request) const {
  EXPLAINIT_ASSIGN_OR_RETURN(std::vector<SeriesData> raw, Scan(request));
  // Honour the projection hint: materialise only the standard columns the
  // query references (the planner always includes every referenced
  // column, so skipping the rest can never lose a lookup — it only saves
  // building per-row tag maps / name strings, which dominate the cost).
  // An empty projection, or one naming none of our columns, keeps all
  // four so "column not found" errors still surface naturally.
  const std::vector<std::string>& projection = request.hints.projection;
  auto wanted = [&projection](std::string_view name) {
    for (const std::string& p : projection) {
      if (EqualsIgnoreCase(p, name)) return true;
    }
    return false;
  };
  bool keep_ts = wanted("timestamp");
  bool keep_metric = wanted("metric_name");
  bool keep_tag = wanted("tag");
  bool keep_value = wanted("value");
  if (!keep_ts && !keep_metric && !keep_tag && !keep_value) {
    keep_ts = keep_metric = keep_tag = keep_value = true;
  }

  size_t total = 0;
  for (const SeriesData& s : raw) total += s.timestamps.size();

  table::Schema schema;
  std::vector<std::vector<table::Value>> columns;
  columns.reserve(4);  // keeps add_column's returned pointers stable
  auto add_column = [&](const char* name, table::DataType type) {
    schema.AddField({name, type});
    columns.emplace_back();
    columns.back().reserve(total);
    return &columns.back();
  };
  std::vector<table::Value>* ts_col =
      keep_ts ? add_column("timestamp", table::DataType::kTimestamp)
              : nullptr;
  std::vector<table::Value>* metric_col =
      keep_metric ? add_column("metric_name", table::DataType::kString)
                  : nullptr;
  std::vector<table::Value>* tag_col =
      keep_tag ? add_column("tag", table::DataType::kMap) : nullptr;
  std::vector<table::Value>* value_col =
      keep_value ? add_column("value", table::DataType::kDouble) : nullptr;

  for (const SeriesData& s : raw) {
    const size_t n = s.timestamps.size();
    if (ts_col != nullptr) {
      for (size_t i = 0; i < n; ++i) {
        ts_col->push_back(table::Value::Timestamp(s.timestamps[i]));
      }
    }
    if (metric_col != nullptr) {
      const table::Value name = table::Value::String(s.meta.metric_name);
      metric_col->insert(metric_col->end(), n, name);
    }
    if (tag_col != nullptr) {
      tag_col->insert(tag_col->end(), n, s.tags_value);
    }
    if (value_col != nullptr) {
      for (size_t i = 0; i < n; ++i) {
        value_col->push_back(table::Value::Double(s.values[i]));
      }
    }
  }
  return table::Table::FromColumns(std::move(schema), std::move(columns));
}

namespace {
void PutString(std::vector<uint8_t>* out, const std::string& s) {
  const uint64_t n = s.size();
  const size_t at = out->size();
  out->resize(at + sizeof(n) + s.size());
  std::memcpy(out->data() + at, &n, sizeof(n));
  std::memcpy(out->data() + at + sizeof(n), s.data(), s.size());
}

bool GetString(const std::vector<uint8_t>& data, size_t* offset,
               std::string* s) {
  uint64_t n = 0;
  if (*offset + sizeof(n) > data.size()) return false;
  std::memcpy(&n, data.data() + *offset, sizeof(n));
  *offset += sizeof(n);
  if (*offset + n > data.size()) return false;
  s->assign(reinterpret_cast<const char*>(data.data() + *offset), n);
  *offset += n;
  return true;
}

/// The seed (v1) format: one block per series, no tiers. Still loadable.
constexpr uint32_t kSnapshotMagic = 0x45585453;  // "EXTS"
/// The tiered (v2) format: per series, every sealed segment block then
/// the head block (encoder state included).
constexpr uint32_t kSnapshotMagicV2 = 0x32545845;  // "EXT2"

Result<TagSet> ParseTagEncoding(const std::string& tag_encoding) {
  std::map<std::string, std::string> tags;
  if (!tag_encoding.empty()) {
    for (const std::string& kv : StrSplit(tag_encoding, ',')) {
      const auto parts = StrSplit(kv, '=');
      if (parts.size() != 2) {
        return Status::ParseError("bad tag encoding: " + kv);
      }
      tags[parts[0]] = parts[1];
    }
  }
  return TagSet(std::move(tags));
}
}  // namespace

Status SeriesStore::SaveSnapshot(const std::string& path) const {
  std::vector<uint8_t> buf;
  auto entries = impl_->SnapshotOrder();
  buf.resize(sizeof(kSnapshotMagicV2) + sizeof(uint64_t));
  std::memcpy(buf.data(), &kSnapshotMagicV2, sizeof(kSnapshotMagicV2));
  const uint64_t count = entries.size();
  std::memcpy(buf.data() + sizeof(kSnapshotMagicV2), &count, sizeof(count));
  for (const auto& e : entries) {
    PutString(&buf, e->meta.metric_name);
    PutString(&buf, e->meta.tags.Encode());
    // Capture the tier state under the stripe lock, then serialize
    // outside it (segment payloads are immutable; the head is a copy).
    std::vector<std::shared_ptr<const SealedSegment>> segments;
    CompressedBlock head;
    {
      std::lock_guard<std::mutex> lock(impl_->StripeFor(*e));
      segments = e->segments;
      head = e->head.block();
    }
    const uint64_t num_segments = segments.size();
    const size_t at = buf.size();
    buf.resize(at + sizeof(num_segments));
    std::memcpy(buf.data() + at, &num_segments, sizeof(num_segments));
    for (const auto& seg : segments) seg->block().Serialize(&buf);
    head.Serialize(&buf);
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open for writing: " + path);
  }
  const size_t written = std::fwrite(buf.data(), 1, buf.size(), f);
  std::fclose(f);
  if (written != buf.size()) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

Status SeriesStore::LoadSnapshot(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open for reading: " + path);
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> buf(static_cast<size_t>(size));
  const size_t read = std::fread(buf.data(), 1, buf.size(), f);
  std::fclose(f);
  if (read != buf.size()) {
    return Status::IOError("short read from " + path);
  }
  size_t offset = 0;
  uint32_t magic = 0;
  uint64_t count = 0;
  if (buf.size() < sizeof(magic) + sizeof(count)) {
    return Status::ParseError("snapshot too short");
  }
  std::memcpy(&magic, buf.data(), sizeof(magic));
  offset += sizeof(magic);
  if (magic != kSnapshotMagic && magic != kSnapshotMagicV2) {
    return Status::ParseError("bad snapshot magic");
  }
  const bool tiered = magic == kSnapshotMagicV2;
  std::memcpy(&count, buf.data() + offset, sizeof(count));
  offset += sizeof(count);

  std::unordered_map<std::string, std::shared_ptr<SeriesEntry>> by_key;
  std::vector<std::shared_ptr<SeriesEntry>> order;
  size_t points = 0;
  for (uint64_t i = 0; i < count; ++i) {
    std::string metric, tag_encoding;
    if (!GetString(buf, &offset, &metric) ||
        !GetString(buf, &offset, &tag_encoding)) {
      return Status::ParseError("truncated series header");
    }
    auto e = std::make_shared<SeriesEntry>();
    e->meta.metric_name = metric;
    EXPLAINIT_ASSIGN_OR_RETURN(e->meta.tags, ParseTagEncoding(tag_encoding));
    e->tags_value = MakeTagsValue(e->meta.tags);
    if (tiered) {
      uint64_t num_segments = 0;
      if (offset + sizeof(num_segments) > buf.size()) {
        return Status::ParseError("truncated segment count");
      }
      std::memcpy(&num_segments, buf.data() + offset, sizeof(num_segments));
      offset += sizeof(num_segments);
      for (uint64_t s = 0; s < num_segments; ++s) {
        EXPLAINIT_ASSIGN_OR_RETURN(
            CompressedBlock block, CompressedBlock::Deserialize(buf, &offset));
        // Re-sealing rebuilds the rollup tiers from the raw block —
        // rollups are derived data and stay out of the snapshot format.
        EXPLAINIT_ASSIGN_OR_RETURN(auto segment,
                                   SealedSegment::Seal(std::move(block)));
        points += segment->num_points();
        e->segments.push_back(std::move(segment));
      }
      EXPLAINIT_ASSIGN_OR_RETURN(CompressedBlock head,
                                 CompressedBlock::Deserialize(buf, &offset));
      points += head.num_points();
      if (head.num_points() > 0) e->head.Restore(std::move(head));
    } else {
      // Seed format: the whole series is one block — load it as the head;
      // it reseals under the current thresholds as writes resume.
      EXPLAINIT_ASSIGN_OR_RETURN(CompressedBlock block,
                                 CompressedBlock::Deserialize(buf, &offset));
      points += block.num_points();
      if (block.num_points() > 0) e->head.Restore(std::move(block));
    }
    const std::string key = SeriesKey(e->meta.metric_name, e->meta.tags);
    e->stripe = std::hash<std::string>{}(key) % Impl::kStripeCount;
    order.push_back(e);
    by_key[key] = std::move(e);
  }
  std::unique_lock<std::shared_mutex> lock(impl_->map_mutex);
  impl_->by_key = std::move(by_key);
  impl_->order = std::move(order);
  impl_->total_points.store(points, std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace explainit::tsdb
