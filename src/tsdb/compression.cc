#include "tsdb/compression.h"

#include <bit>
#include <cstring>

namespace explainit::tsdb {

void BitWriter::WriteBits(uint64_t value, int bits) {
  for (int i = bits - 1; i >= 0; --i) {
    const bool bit = (value >> i) & 1;
    const size_t byte_idx = bit_count_ / 8;
    if (byte_idx >= bytes_.size()) bytes_.push_back(0);
    if (bit) bytes_[byte_idx] |= static_cast<uint8_t>(1u << (7 - bit_count_ % 8));
    ++bit_count_;
  }
}

Result<uint64_t> BitReader::ReadBits(int bits) {
  if (position_ + static_cast<size_t>(bits) > bit_count_) {
    return Status::OutOfRange("bit stream exhausted");
  }
  // Byte-chunked extraction (bits are MSB-first within each byte): a
  // 64-bit read touches at most 9 bytes instead of looping per bit —
  // the scan decode path reads millions of bits per query.
  uint64_t out = 0;
  int remaining = bits;
  while (remaining > 0) {
    const uint8_t byte = bytes_[position_ >> 3];
    const int avail = 8 - static_cast<int>(position_ & 7);
    const int take = remaining < avail ? remaining : avail;
    const uint8_t chunk =
        static_cast<uint8_t>(byte >> (avail - take)) &
        static_cast<uint8_t>((1u << take) - 1);
    out = (out << take) | chunk;
    position_ += static_cast<size_t>(take);
    remaining -= take;
  }
  return out;
}

Result<bool> BitReader::ReadBit() {
  if (position_ >= bit_count_) {
    return Status::OutOfRange("bit stream exhausted");
  }
  const bool bit = (bytes_[position_ >> 3] >> (7 - (position_ & 7))) & 1;
  ++position_;
  return bit;
}

namespace {
// Gorilla delta-of-delta buckets: (prefix, prefix_bits, value_bits).
struct DodBucket {
  uint64_t prefix;
  int prefix_bits;
  int value_bits;
  int64_t lo;
  int64_t hi;
};
constexpr DodBucket kBuckets[] = {
    {0b10, 2, 7, -63, 64},
    {0b110, 3, 9, -255, 256},
    {0b1110, 4, 12, -2047, 2048},
};
}  // namespace

Status CompressedBlock::Append(EpochSeconds timestamp, double value) {
  if (num_points_ > 0 && timestamp < prev_timestamp_) {
    return Status::InvalidArgument("timestamps must be non-decreasing");
  }
  uint64_t value_bits = 0;
  std::memcpy(&value_bits, &value, sizeof(value));

  if (num_points_ == 0) {
    first_timestamp_ = timestamp;
    prev_timestamp_ = timestamp;
    prev_delta_ = 0;
    writer_.WriteBits(static_cast<uint64_t>(timestamp), 64);
    writer_.WriteBits(value_bits, 64);
    prev_value_bits_ = value_bits;
    ++num_points_;
    return Status::OK();
  }

  // --- Timestamp: delta of delta. ---
  const int64_t delta = timestamp - prev_timestamp_;
  const int64_t dod = delta - prev_delta_;
  prev_delta_ = delta;
  prev_timestamp_ = timestamp;
  if (dod == 0) {
    writer_.WriteBit(false);
  } else {
    bool written = false;
    for (const DodBucket& b : kBuckets) {
      if (dod >= b.lo && dod <= b.hi) {
        writer_.WriteBits(b.prefix, b.prefix_bits);
        writer_.WriteBits(static_cast<uint64_t>(dod - b.lo), b.value_bits);
        written = true;
        break;
      }
    }
    if (!written) {
      writer_.WriteBits(0b1111, 4);
      writer_.WriteBits(static_cast<uint64_t>(dod), 64);
    }
  }

  // --- Value: XOR. ---
  const uint64_t x = value_bits ^ prev_value_bits_;
  prev_value_bits_ = value_bits;
  if (x == 0) {
    writer_.WriteBit(false);
  } else {
    writer_.WriteBit(true);
    int leading = std::countl_zero(x);
    int trailing = std::countr_zero(x);
    if (leading > 31) leading = 31;  // 5-bit field
    if (prev_leading_ >= 0 && leading >= prev_leading_ &&
        trailing >= prev_trailing_) {
      // Reuse the previous window.
      writer_.WriteBit(false);
      const int meaningful = 64 - prev_leading_ - prev_trailing_;
      writer_.WriteBits(x >> prev_trailing_, meaningful);
    } else {
      writer_.WriteBit(true);
      const int meaningful = 64 - leading - trailing;
      writer_.WriteBits(static_cast<uint64_t>(leading), 5);
      // meaningful in [1, 64]; store 6 bits with 64 encoded as 0... use
      // (meaningful - 1) in 6 bits.
      writer_.WriteBits(static_cast<uint64_t>(meaningful - 1), 6);
      writer_.WriteBits(x >> trailing, meaningful);
      prev_leading_ = leading;
      prev_trailing_ = trailing;
    }
  }
  ++num_points_;
  return Status::OK();
}

Result<std::vector<std::pair<EpochSeconds, double>>> CompressedBlock::Decode()
    const {
  std::vector<std::pair<EpochSeconds, double>> out;
  if (num_points_ == 0) return out;
  out.reserve(num_points_);
  BitReader reader(writer_.bytes(), writer_.bit_count());

  EXPLAINIT_ASSIGN_OR_RETURN(uint64_t ts_bits, reader.ReadBits(64));
  EXPLAINIT_ASSIGN_OR_RETURN(uint64_t val_bits, reader.ReadBits(64));
  EpochSeconds ts = static_cast<EpochSeconds>(ts_bits);
  double value = 0.0;
  std::memcpy(&value, &val_bits, sizeof(value));
  out.emplace_back(ts, value);

  int64_t delta = 0;
  uint64_t prev_bits = val_bits;
  int leading = 0, trailing = 0;
  bool have_window = false;

  for (size_t i = 1; i < num_points_; ++i) {
    // Timestamp.
    EXPLAINIT_ASSIGN_OR_RETURN(bool b0, reader.ReadBit());
    int64_t dod = 0;
    if (b0) {
      int bucket = 0;
      bool found = false;
      for (; bucket < 3; ++bucket) {
        EXPLAINIT_ASSIGN_OR_RETURN(bool bn, reader.ReadBit());
        if (!bn) {
          found = true;
          break;
        }
      }
      if (found) {
        const DodBucket& bk = kBuckets[bucket];
        EXPLAINIT_ASSIGN_OR_RETURN(uint64_t raw,
                                   reader.ReadBits(bk.value_bits));
        dod = static_cast<int64_t>(raw) + bk.lo;
      } else {
        EXPLAINIT_ASSIGN_OR_RETURN(uint64_t raw, reader.ReadBits(64));
        dod = static_cast<int64_t>(raw);
      }
    }
    delta += dod;
    ts += delta;

    // Value.
    EXPLAINIT_ASSIGN_OR_RETURN(bool changed, reader.ReadBit());
    uint64_t x = 0;
    if (changed) {
      EXPLAINIT_ASSIGN_OR_RETURN(bool new_window, reader.ReadBit());
      if (new_window) {
        EXPLAINIT_ASSIGN_OR_RETURN(uint64_t lead_raw, reader.ReadBits(5));
        EXPLAINIT_ASSIGN_OR_RETURN(uint64_t mean_raw, reader.ReadBits(6));
        leading = static_cast<int>(lead_raw);
        const int meaningful = static_cast<int>(mean_raw) + 1;
        trailing = 64 - leading - meaningful;
        have_window = true;
        EXPLAINIT_ASSIGN_OR_RETURN(uint64_t sig, reader.ReadBits(meaningful));
        x = sig << trailing;
      } else {
        if (!have_window) {
          return Status::Internal("XOR window reuse before definition");
        }
        const int meaningful = 64 - leading - trailing;
        EXPLAINIT_ASSIGN_OR_RETURN(uint64_t sig, reader.ReadBits(meaningful));
        x = sig << trailing;
      }
    }
    prev_bits ^= x;
    std::memcpy(&value, &prev_bits, sizeof(value));
    out.emplace_back(ts, value);
  }
  return out;
}

namespace {
// Little-endian fixed-width helpers for the snapshot format.
template <typename T>
void PutScalar(std::vector<uint8_t>* out, T v) {
  const size_t n = out->size();
  out->resize(n + sizeof(T));
  std::memcpy(out->data() + n, &v, sizeof(T));
}

template <typename T>
bool GetScalar(const std::vector<uint8_t>& data, size_t* offset, T* v) {
  if (*offset + sizeof(T) > data.size()) return false;
  std::memcpy(v, data.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}
}  // namespace

void CompressedBlock::Serialize(std::vector<uint8_t>* out) const {
  PutScalar<uint64_t>(out, num_points_);
  PutScalar<int64_t>(out, first_timestamp_);
  PutScalar<int64_t>(out, prev_timestamp_);
  PutScalar<int64_t>(out, prev_delta_);
  PutScalar<uint64_t>(out, prev_value_bits_);
  PutScalar<int32_t>(out, prev_leading_);
  PutScalar<int32_t>(out, prev_trailing_);
  PutScalar<uint64_t>(out, writer_.bit_count());
  PutScalar<uint64_t>(out, writer_.bytes().size());
  out->insert(out->end(), writer_.bytes().begin(), writer_.bytes().end());
}

Result<CompressedBlock> CompressedBlock::Deserialize(
    const std::vector<uint8_t>& data, size_t* offset) {
  CompressedBlock block;
  uint64_t num_points = 0, value_bits = 0, bit_count = 0, payload = 0;
  int64_t first_ts = 0, prev_ts = 0, prev_delta = 0;
  int32_t leading = 0, trailing = 0;
  if (!GetScalar(data, offset, &num_points) ||
      !GetScalar(data, offset, &first_ts) ||
      !GetScalar(data, offset, &prev_ts) ||
      !GetScalar(data, offset, &prev_delta) ||
      !GetScalar(data, offset, &value_bits) ||
      !GetScalar(data, offset, &leading) ||
      !GetScalar(data, offset, &trailing) ||
      !GetScalar(data, offset, &bit_count) ||
      !GetScalar(data, offset, &payload)) {
    return Status::ParseError("truncated block header");
  }
  if (*offset + payload > data.size() || payload < (bit_count + 7) / 8) {
    return Status::ParseError("truncated block payload");
  }
  block.num_points_ = num_points;
  block.first_timestamp_ = first_ts;
  block.prev_timestamp_ = prev_ts;
  block.prev_delta_ = prev_delta;
  block.prev_value_bits_ = value_bits;
  block.prev_leading_ = leading;
  block.prev_trailing_ = trailing;
  std::vector<uint8_t> bytes(data.begin() + *offset,
                             data.begin() + *offset + payload);
  *offset += payload;
  block.writer_.Restore(std::move(bytes), bit_count);
  return block;
}

}  // namespace explainit::tsdb
