// Downsampled rollup tiers over sealed segments, modelled on netdata's
// tiered database: every sealed segment carries, besides its raw Gorilla
// block, per-bucket min/max/sum/count aggregates at fixed coarser steps
// (raw -> 1m -> 1h). A scan whose consumer declared a resolution floor
// (ScanHints::min_step_seconds) is served from the cheapest tier that
// still answers it exactly, decoding no raw points at all for segments
// fully covered by the window.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time_util.h"

namespace explainit::tsdb {

/// The per-bucket aggregate a rollup-routed scan should return as the
/// point value. kNone means "raw points required" (rollups unusable).
///
/// Only aggregates that recombine exactly across mixed granularities are
/// offered: SUM of bucket sums, MIN of bucket mins and MAX of bucket
/// maxes equal the raw answer even when some rows come from rollups and
/// others (head, partially-covered segments) stay raw. AVG does not
/// compose that way and always scans raw.
///
/// kCount serves per-bucket point counts. Unlike the others it changes
/// what a raw-fallback row means: fallbacks substitute value = 1.0 per
/// raw point, so *summing* the returned values reproduces COUNT across
/// mixed granularities (the SQL planner rewrites COUNT -> __SUM_COUNT
/// alongside this hint and only emits it for stores that honour hints
/// verbatim).
enum class RollupAggregate : uint8_t { kNone = 0, kMin, kMax, kSum, kCount };

/// One rollup bucket: aggregates over every raw point of the *owning
/// segment* whose timestamp falls in [bucket, bucket + step).
/// first_ts/last_ts are the extremes of those raw timestamps — the scan
/// uses them to prove a bucket lies entirely inside the query window
/// (buckets cut by the window fall back to the raw block).
struct RollupPoint {
  EpochSeconds bucket = 0;
  EpochSeconds first_ts = 0;
  EpochSeconds last_ts = 0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  uint64_t count = 0;
};

/// All buckets of one tier (fixed step), ascending by bucket start.
struct RollupTier {
  int64_t step_seconds = 0;
  std::vector<RollupPoint> points;
};

/// Tier steps maintained at seal time, coarsest first.
inline constexpr int64_t kRollupTierSteps[] = {kSecondsPerMinute *
                                                   kMinutesPerHour,
                                               kSecondsPerMinute};

/// Floors `t` to its step boundary (correct for negative timestamps).
inline EpochSeconds AlignToStepStart(EpochSeconds t, int64_t step) {
  return t - ((t % step) + step) % step;
}

/// The coarsest maintained tier whose step divides `min_step_seconds`
/// (so re-grouping tier buckets into consumer buckets is exact);
/// 0 when no tier qualifies and the scan must stay raw.
int64_t EffectiveRollupTierStep(int64_t min_step_seconds);

/// Builds one tier over aligned (timestamps, values); timestamps must be
/// non-decreasing (the append order of a series block).
RollupTier BuildRollupTier(const std::vector<EpochSeconds>& timestamps,
                           const std::vector<double>& values,
                           int64_t step_seconds);

/// The bucket value a rollup-routed scan returns for `agg`
/// (kNone is invalid here).
double RollupValue(const RollupPoint& p, RollupAggregate agg);

}  // namespace explainit::tsdb
