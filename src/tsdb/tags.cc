#include "tsdb/tags.h"

#include "common/strings.h"

namespace explainit::tsdb {

const std::string& TagSet::Get(const std::string& key) const {
  static const std::string kEmpty;
  auto it = tags_.find(key);
  return it == tags_.end() ? kEmpty : it->second;
}

std::string TagSet::Encode() const {
  std::string out;
  bool first = true;
  for (const auto& [k, v] : tags_) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

bool TagSet::Matches(const TagSet& filter) const {
  for (const auto& [k, pattern] : filter.entries()) {
    auto it = tags_.find(k);
    if (it == tags_.end()) return false;
    if (!GlobMatch(pattern, it->second)) return false;
  }
  return true;
}

}  // namespace explainit::tsdb
