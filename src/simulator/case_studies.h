// The four §5 case studies as reproducible worlds: a data-centre model, an
// injected fault, the time ranges, and ground-truth labels for evaluating
// the ranking (Tables 3-5, Figures 5-9).
#pragma once

#include <memory>
#include <string>

#include "core/eval_metrics.h"
#include "simulator/datacentre.h"

namespace explainit::sim {

/// One fully-populated case-study world.
struct CaseStudyWorld {
  std::shared_ptr<tsdb::SeriesStore> store;
  DatacentreConfig config;
  TimeRange range;         // total time range for the analysis
  TimeRange fault_window;  // when the fault was active (for Figure 2)
  std::string target_metric = "overall_runtime";
  core::ScenarioLabels labels;  // family names under name-grouping
  std::string description;
};

/// §5.1 / Table 3 / Figure 5: iptables drop of 10% of packets to all
/// datanodes for a window; TCP retransmissions spike cluster-wide.
CaseStudyWorld MakePacketDropCase(size_t steps = 480, uint64_t seed = 101);

/// §5.2 / Figure 6: hypervisor receive-queue drops (an unmonitored
/// counter) recur throughout; input load is the dominant confounder.
/// `fixed` simulates the buffer fix (drops largely eliminated, ~10%
/// lower runtimes).
CaseStudyWorld MakeHypervisorDropCase(size_t steps = 720, uint64_t seed = 202,
                                      bool fixed = false);

/// §5.3 / Table 4 / Figure 7: a service scans the whole filesystem via
/// GetContentSummary every 15 minutes for ~5 minutes; namenode RPC
/// latency and live threads spike, namenode GC anti-correlates.
/// `fix_at_step` stops the periodic scans from that step on (SIZE_MAX =
/// never fixed).
CaseStudyWorld MakeNamenodeScanCase(size_t steps = 480, uint64_t seed = 303,
                                    size_t fix_at_step = SIZE_MAX);

/// §5.4 / Table 5 / Figures 8-9: weekly RAID consistency check (168h
/// period, ~4h duration, default 20% IO share). One step = one hour.
/// The three-segment intervention of Figure 9 is exposed through
/// RaidInterventionSchedule.
struct RaidSchedule {
  double default_share = 0.20;  // io share while scrubbing
  size_t disable_from = SIZE_MAX;  // steps where scrub is off
  size_t disable_to = SIZE_MAX;
  size_t cap_from = SIZE_MAX;  // steps where share drops to cap_share
  double cap_share = 0.05;
};
CaseStudyWorld MakeRaidScrubCase(size_t steps = 840, uint64_t seed = 404,
                                 const RaidSchedule& schedule = {});

}  // namespace explainit::sim
