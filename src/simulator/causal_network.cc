#include "simulator/causal_network.h"

#include <cmath>

namespace explainit::sim {

Result<size_t> CausalNetwork::AddNode(NodeSpec spec) {
  for (const Edge& e : spec.edges) {
    if (e.parent >= nodes_.size()) {
      return Status::InvalidArgument(
          "edge parent " + std::to_string(e.parent) +
          " must reference an earlier node (have " +
          std::to_string(nodes_.size()) + ")");
    }
  }
  nodes_.push_back(std::move(spec));
  return nodes_.size() - 1;
}

la::Matrix CausalNetwork::Simulate(
    size_t steps, Rng& rng,
    const std::vector<Intervention>& interventions) const {
  const size_t n = nodes_.size();
  la::Matrix values(steps, n);
  // Group interventions by node for O(1) lookup.
  std::vector<std::vector<const Intervention*>> by_node(n);
  for (const Intervention& iv : interventions) {
    if (iv.node < n) by_node[iv.node].push_back(&iv);
  }
  for (size_t t = 0; t < steps; ++t) {
    for (size_t i = 0; i < n; ++i) {
      const NodeSpec& spec = nodes_[i];
      double v = spec.base + spec.trend_per_step * static_cast<double>(t);
      if (spec.seasonal_period >= 2) {
        v += spec.seasonal_amp *
             std::sin(2.0 * M_PI *
                      static_cast<double>(t % spec.seasonal_period) /
                      static_cast<double>(spec.seasonal_period));
      }
      v += rng.Normal() * spec.noise_sd;
      for (const Edge& e : spec.edges) {
        if (t < e.lag) continue;
        const double p = values(t - e.lag, e.parent);
        switch (e.fn) {
          case LinkFn::kLinear:
            v += e.weight * p;
            break;
          case LinkFn::kRelu:
            v += e.weight * std::max(0.0, p);
            break;
          case LinkFn::kSaturating:
            v += e.weight * std::tanh(p);
            break;
        }
      }
      if (spec.ar > 0.0 && t > 0) {
        v += spec.ar * (values(t - 1, i) - spec.base);
      }
      // Interventions last: downstream nodes at later evaluation see the
      // faulted value, exactly like a physical fault.
      for (const Intervention* iv : by_node[i]) {
        if (t < iv->begin || t >= iv->end) continue;
        v = v * iv->mul + iv->add;
        if (iv->shape) v += iv->shape(t);
      }
      if (spec.nonnegative && v < 0.0) v = 0.0;
      values(t, i) = v;
    }
  }
  return values;
}

Status CausalNetwork::WriteTo(
    tsdb::SeriesStore* store, size_t steps, EpochSeconds start, Rng& rng,
    const std::vector<Intervention>& interventions) const {
  la::Matrix values = Simulate(steps, rng, interventions);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const NodeSpec& spec = nodes_[i];
    for (size_t t = 0; t < steps; ++t) {
      EXPLAINIT_RETURN_IF_ERROR(
          store->Write(spec.metric_name, spec.tags,
                       start + static_cast<int64_t>(t) * kSecondsPerMinute,
                       values(t, i)));
    }
  }
  return Status::OK();
}

}  // namespace explainit::sim
