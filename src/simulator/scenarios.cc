#include "simulator/scenarios.h"

#include <cmath>

#include "common/logging.h"

namespace explainit::sim {

namespace {

std::vector<EpochSeconds> MinuteGrid(size_t t) {
  std::vector<EpochSeconds> grid(t);
  for (size_t i = 0; i < t; ++i) {
    grid[i] = static_cast<int64_t>(i) * kSecondsPerMinute;
  }
  return grid;
}

// The latent cause signal: AR(1) background plus recurring bursts so that
// every contiguous CV fold observes cause activity. The burst phase is
// randomised so independent latents do not share burst timing.
std::vector<double> LatentCause(size_t t, Rng& rng) {
  std::vector<double> c(t, 0.0);
  double state = 0.0;
  const size_t burst_period = std::max<size_t>(40, t / 8);
  const size_t burst_len = std::max<size_t>(8, t / 30);
  const size_t burst_offset = rng.UniformInt(burst_period);
  for (size_t i = 0; i < t; ++i) {
    state = 0.6 * state + rng.Normal();
    double v = state;
    if (((i + burst_offset) % burst_period) < burst_len) v += 3.0;
    c[i] = v;
  }
  return c;
}

core::FeatureFamily NoiseFamily(const std::string& name, size_t t, size_t f,
                                Rng& rng) {
  core::FeatureFamily fam;
  fam.name = name;
  fam.timestamps = MinuteGrid(t);
  fam.data = la::Matrix(t, f);
  rng.FillNormal(fam.data.data(), fam.data.size());
  fam.feature_names.reserve(f);
  for (size_t c = 0; c < f; ++c) {
    fam.feature_names.push_back(name + "/m" + std::to_string(c));
  }
  return fam;
}

}  // namespace

Scenario GenerateScenario(const ScenarioSpec& spec, size_t t) {
  EXPLAINIT_CHECK(t >= 64, "scenario needs at least 64 steps");
  Rng rng(spec.seed);
  Scenario out;
  out.name = spec.name;

  // --- Latent cause signal(s) ---
  // Multi-factor causes draw one independent latent per feature; the
  // target follows their normalised sum, making the cause signal
  // high-rank. All other kinds share a single latent.
  const bool multi_factor = spec.cause_kind == CauseKind::kMultiFactor;
  std::vector<std::vector<double>> factors;
  std::vector<double> c;
  if (multi_factor) {
    factors.resize(spec.cause_family_size);
    c.assign(t, 0.0);
    for (auto& f : factors) {
      f = LatentCause(t, rng);
      for (size_t i = 0; i < t; ++i) c[i] += f[i];
    }
    const double norm =
        std::sqrt(static_cast<double>(spec.cause_family_size));
    // Normalise the sum to roughly the variance of a single latent.
    for (size_t i = 0; i < t; ++i) c[i] /= norm;
  } else {
    c = LatentCause(t, rng);
  }
  const double target_phase = rng.Uniform(0.0, 2.0 * M_PI);

  // --- Target ---
  out.target.name = "target";
  out.target.feature_names = {"target/kpi"};
  out.target.timestamps = MinuteGrid(t);
  out.target.data = la::Matrix(t, 1);
  for (size_t i = 0; i < t; ++i) {
    double v = rng.Normal();
    const size_t src = i >= spec.cause_lag ? i - spec.cause_lag : 0;
    v += spec.cause_strength * c[src];
    if (spec.target_seasonal_amp > 0.0 && spec.seasonal_period >= 2) {
      v += spec.target_seasonal_amp *
           std::sin(2.0 * M_PI * static_cast<double>(i) /
                        static_cast<double>(spec.seasonal_period) +
                    target_phase);
    }
    out.target.data(i, 0) = v;
  }

  // --- Cause family ---
  {
    core::FeatureFamily cause =
        NoiseFamily("cause", t, spec.cause_family_size, rng);
    size_t informative = 1;
    switch (spec.cause_kind) {
      case CauseKind::kUnivariate:
      case CauseKind::kLagged:
        informative = 1;
        break;
      case CauseKind::kJointDense:
      case CauseKind::kMultiFactor:
        informative = spec.cause_family_size;
        break;
      case CauseKind::kJointSparse:
        informative = std::max<size_t>(2, spec.cause_family_size / 8);
        break;
    }
    // Per-feature noise: dense joint causes get noise that scales with the
    // number of informative features so each marginal correlation is weak
    // while the family average recovers the latent signal.
    double feature_noise = spec.cause_feature_noise;
    if (spec.cause_kind == CauseKind::kJointDense) {
      feature_noise *= std::sqrt(static_cast<double>(informative));
    }
    for (size_t f = 0; f < informative; ++f) {
      const std::vector<double>& src = multi_factor ? factors[f] : c;
      for (size_t i = 0; i < t; ++i) {
        cause.data(i, f) = src[i] + rng.Normal() * feature_noise;
      }
    }
    out.families.push_back(std::move(cause));
    out.labels.causes.insert("cause");
  }

  // --- Effect families (driven by the target) ---
  for (size_t e = 0; e < spec.num_effect_families; ++e) {
    const std::string name = "effect-" + std::to_string(e);
    core::FeatureFamily fam =
        NoiseFamily(name, t, spec.effect_family_size, rng);
    const size_t active = std::max<size_t>(1, spec.effect_family_size / 2);
    // Spread of effect quality: only some effects are crisp mirrors of Y.
    const double family_noise =
        spec.effect_noise *
        rng.Uniform(1.0, std::max(1.0, spec.effect_noise_spread));
    for (size_t f = 0; f < active; ++f) {
      const double w = rng.Uniform(0.6, 1.2);
      for (size_t i = 0; i < t; ++i) {
        fam.data(i, f) =
            w * out.target.data(i, 0) + rng.Normal() * family_noise;
      }
    }
    out.families.push_back(std::move(fam));
    out.labels.effects.insert(name);
  }

  // --- Seasonal confounders ---
  for (size_t s = 0; s < spec.num_seasonal_families; ++s) {
    const std::string name = "seasonal-" + std::to_string(s);
    core::FeatureFamily fam =
        NoiseFamily(name, t, spec.seasonal_family_size, rng);
    // Aligned families share the target's phase: the classic spurious
    // time-correlation (§1's "one can always find a correlation").
    const bool aligned =
        static_cast<double>(s) < spec.aligned_seasonal_fraction *
                                     static_cast<double>(
                                         spec.num_seasonal_families);
    const double family_phase =
        aligned ? target_phase + rng.Normal() * 0.15
                : rng.Uniform(0.0, 2.0 * M_PI);
    for (size_t f = 0; f < spec.seasonal_family_size; ++f) {
      const double phase = family_phase + rng.Normal() * 0.2;
      const double amp = rng.Uniform(0.8, 1.6);
      for (size_t i = 0; i < t; ++i) {
        fam.data(i, f) +=
            amp * std::sin(2.0 * M_PI * static_cast<double>(i) /
                               static_cast<double>(spec.seasonal_period) +
                           phase);
      }
    }
    out.families.push_back(std::move(fam));
  }

  // --- Wide distractors ---
  for (size_t w = 0; w < spec.num_wide_families; ++w) {
    const std::string name = "wide-" + std::to_string(w);
    core::FeatureFamily fam =
        NoiseFamily(name, t, spec.wide_family_size, rng);
    const size_t seasonal_cols = static_cast<size_t>(
        spec.wide_seasonal_fraction *
        static_cast<double>(spec.wide_family_size));
    for (size_t f = 0; f < seasonal_cols; ++f) {
      // Half the seasonal columns phase-lock to the target: at this width
      // some columns always align, which is exactly the joint scorer's
      // size bias (§6.1).
      const double phase = (f % 2 == 0)
                               ? target_phase + rng.Normal() * 0.2
                               : rng.Uniform(0.0, 2.0 * M_PI);
      for (size_t i = 0; i < t; ++i) {
        fam.data(i, f) +=
            std::sin(2.0 * M_PI * static_cast<double>(i) /
                         static_cast<double>(spec.seasonal_period) +
                     phase);
      }
    }
    out.families.push_back(std::move(fam));
  }

  // --- Pure noise families ---
  for (size_t n = 0; n < spec.num_noise_families; ++n) {
    out.families.push_back(NoiseFamily("noise-" + std::to_string(n), t,
                                       spec.noise_family_size, rng));
  }

  for (const core::FeatureFamily& f : out.families) {
    out.total_features += f.num_features();
  }
  out.description = spec.name;
  return out;
}

std::vector<ScenarioSpec> Table6Specs(double feature_scale) {
  auto scale = [&](size_t v) {
    return std::max<size_t>(1, static_cast<size_t>(
                                   static_cast<double>(v) * feature_scale));
  };
  std::vector<ScenarioSpec> specs;

  {  // 1: clean univariate cause, muddy effects — CorrMax's home turf.
    ScenarioSpec s;
    s.name = "s01-univariate-clean";
    s.seed = 9101;
    s.cause_kind = CauseKind::kUnivariate;
    s.cause_family_size = scale(16);
    s.cause_strength = 2.2;
    s.num_effect_families = 3;
    s.effect_noise = 2.0;
    s.num_noise_families = scale(30);
    s.num_seasonal_families = 0;
    specs.push_back(s);
  }
  {  // 2: dense joint cause — univariate methods lack power.
    ScenarioSpec s;
    s.name = "s02-joint-dense";
    s.seed = 9102;
    s.cause_kind = CauseKind::kJointDense;
    s.cause_family_size = scale(32);
    s.cause_feature_noise = 1.4;
    s.cause_strength = 1.6;
    s.num_effect_families = 4;
    s.effect_noise = 2.5;
    s.effect_noise_spread = 2.0;
    s.num_noise_families = scale(25);
    s.num_seasonal_families = scale(4);
    s.target_seasonal_amp = 0.4;
    specs.push_back(s);
  }
  {  // 3: heavy seasonal bait around a univariate cause.
    ScenarioSpec s;
    s.name = "s03-seasonal-bait";
    s.seed = 9103;
    s.cause_kind = CauseKind::kUnivariate;
    s.cause_family_size = scale(12);
    s.cause_strength = 1.4;
    s.target_seasonal_amp = 1.8;
    s.num_seasonal_families = scale(24);
    s.aligned_seasonal_fraction = 0.7;
    s.num_effect_families = 4;
    s.effect_noise = 1.2;
    s.num_noise_families = scale(25);
    specs.push_back(s);
  }
  {  // 4: wide-family bait — the joint-scorer size bias.
    ScenarioSpec s;
    s.name = "s04-wide-bait";
    s.seed = 9104;
    s.cause_kind = CauseKind::kJointDense;
    s.cause_family_size = scale(24);
    s.cause_feature_noise = 1.2;
    s.cause_strength = 1.0;
    s.target_seasonal_amp = 1.5;
    s.num_wide_families = 2;
    s.wide_family_size = scale(600);
    s.wide_seasonal_fraction = 0.2;
    s.num_seasonal_families = scale(8);
    s.num_effect_families = 3;
    s.effect_noise = 2.0;
    s.num_noise_families = scale(20);
    specs.push_back(s);
  }
  {  // 5: high-rank multi-factor cause — projection to d < F loses signal.
    ScenarioSpec s;
    s.name = "s05-multi-factor";
    s.seed = 9105;
    s.cause_kind = CauseKind::kMultiFactor;
    s.cause_family_size = scale(300);
    s.cause_feature_noise = 1.0;
    s.cause_strength = 2.2;
    s.num_effect_families = 4;
    s.effect_noise = 2.4;
    s.num_noise_families = scale(30);
    s.num_seasonal_families = scale(3);
    specs.push_back(s);
  }
  {  // 6: lagged univariate cause, weak effects.
    ScenarioSpec s;
    s.name = "s06-lagged-cause";
    s.seed = 9106;
    s.cause_kind = CauseKind::kLagged;
    s.cause_family_size = scale(10);
    s.cause_lag = 3;
    s.cause_strength = 2.0;
    s.num_effect_families = 2;
    s.effect_noise = 2.5;
    s.num_noise_families = scale(30);
    specs.push_back(s);
  }
  {  // 7: weak cause drowned by crisp effects.
    ScenarioSpec s;
    s.name = "s07-weak-cause";
    s.seed = 9107;
    s.cause_kind = CauseKind::kUnivariate;
    s.cause_family_size = scale(12);
    s.cause_strength = 0.9;
    s.cause_feature_noise = 1.0;
    s.num_effect_families = scale(6);
    s.effect_noise = 0.4;
    s.effect_noise_spread = 1.0;
    s.num_noise_families = scale(30);
    specs.push_back(s);
  }
  {  // 8: many crisp effect families outrank the cause.
    ScenarioSpec s;
    s.name = "s08-many-effects";
    s.seed = 9108;
    s.cause_kind = CauseKind::kJointSparse;
    s.cause_family_size = scale(40);
    s.cause_strength = 1.3;
    s.num_effect_families = scale(10);
    s.effect_noise = 0.5;
    s.effect_noise_spread = 1.0;
    s.num_noise_families = scale(25);
    specs.push_back(s);
  }
  {  // 9: noise-heavy haystack with a clean needle.
    ScenarioSpec s;
    s.name = "s09-noise-heavy";
    s.seed = 9109;
    s.cause_kind = CauseKind::kUnivariate;
    s.cause_family_size = scale(8);
    s.cause_strength = 1.6;
    s.num_effect_families = 2;
    s.effect_noise = 2.2;
    s.num_noise_families = scale(80);
    s.noise_family_size = scale(12);
    specs.push_back(s);
  }
  {  // 10: joint cause plus aligned seasonality — univariate collapse.
    ScenarioSpec s;
    s.name = "s10-seasonal-joint";
    s.seed = 9110;
    s.cause_kind = CauseKind::kJointDense;
    s.cause_family_size = scale(28);
    s.cause_feature_noise = 1.4;
    s.cause_strength = 1.5;
    s.target_seasonal_amp = 1.2;
    s.num_seasonal_families = scale(14);
    s.aligned_seasonal_fraction = 0.6;
    s.num_effect_families = 3;
    s.effect_noise = 1.8;
    s.num_noise_families = scale(20);
    specs.push_back(s);
  }
  {  // 11: adversarial mix — wide + seasonal + weak joint cause.
    ScenarioSpec s;
    s.name = "s11-adversarial-mix";
    s.seed = 9111;
    s.cause_kind = CauseKind::kJointDense;
    s.cause_family_size = scale(20);
    s.cause_feature_noise = 1.3;
    s.cause_strength = 0.9;
    s.target_seasonal_amp = 1.4;
    s.num_wide_families = 2;
    s.wide_family_size = scale(500);
    s.wide_seasonal_fraction = 0.25;
    s.num_seasonal_families = scale(16);
    s.aligned_seasonal_fraction = 0.6;
    s.num_noise_families = scale(25);
    s.num_effect_families = scale(5);
    s.effect_noise = 1.0;
    specs.push_back(s);
  }
  return specs;
}

std::vector<Scenario> MakeTable6Suite(size_t t, double feature_scale) {
  std::vector<Scenario> out;
  for (const ScenarioSpec& spec : Table6Specs(feature_scale)) {
    out.push_back(GenerateScenario(spec, t));
  }
  return out;
}

}  // namespace explainit::sim
