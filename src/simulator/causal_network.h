// Structural-equation causal network over time series — the ground-truth
// data generator standing in for the paper's production clusters. Nodes
// are metrics in a causal Bayesian network (§3.1); edges carry weights,
// lags and link functions; interventions inject faults into windows
// (the do() operations of §5's controlled experiments).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "la/matrix.h"
#include "tsdb/store.h"

namespace explainit::sim {

/// Edge link functions.
enum class LinkFn {
  kLinear,      // w * parent
  kRelu,        // w * max(0, parent)
  kSaturating,  // w * tanh(parent)
};

/// A directed edge from an earlier node (acyclicity by construction).
struct Edge {
  size_t parent = 0;
  double weight = 1.0;
  size_t lag = 0;  // in steps
  LinkFn fn = LinkFn::kLinear;
};

/// One metric node: exogenous components plus parent contributions.
struct NodeSpec {
  std::string metric_name;
  tsdb::TagSet tags;

  double base = 0.0;
  double noise_sd = 1.0;
  double trend_per_step = 0.0;
  /// Sinusoidal seasonality (amplitude, period in steps; 0 = none).
  double seasonal_amp = 0.0;
  size_t seasonal_period = 0;
  /// AR(1) smoothing factor in [0, 1): v_t += ar * (v_{t-1} - base_level).
  double ar = 0.0;
  /// Clamp to non-negative (latencies, counters).
  bool nonnegative = false;

  std::vector<Edge> edges;
};

/// An intervention on a node over [begin, end) steps: additive bump,
/// multiplicative factor, or an arbitrary additive shape(step).
struct Intervention {
  size_t node = 0;
  size_t begin = 0;
  size_t end = 0;
  double add = 0.0;
  double mul = 1.0;
  std::function<double(size_t)> shape;  // optional; added when set
};

/// A causal DAG whose topological order is the insertion order.
class CausalNetwork {
 public:
  /// Adds a node; every edge must reference an earlier node. Returns the
  /// node id.
  Result<size_t> AddNode(NodeSpec spec);

  size_t num_nodes() const { return nodes_.size(); }
  const NodeSpec& node(size_t id) const { return nodes_[id]; }

  /// Simulates `steps` time steps; returns (steps x num_nodes) values.
  /// Interventions apply after structural propagation (so downstream nodes
  /// see intervened parent values, as in a real fault).
  la::Matrix Simulate(size_t steps, Rng& rng,
                      const std::vector<Intervention>& interventions = {}) const;

  /// Simulates and writes every node as a minutely series starting at
  /// `start` into the store.
  Status WriteTo(tsdb::SeriesStore* store, size_t steps, EpochSeconds start,
                 Rng& rng,
                 const std::vector<Intervention>& interventions = {}) const;

 private:
  std::vector<NodeSpec> nodes_;
};

}  // namespace explainit::sim
