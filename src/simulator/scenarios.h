// The Table 6 scenario suite: 11 synthetic incidents with known causal
// structure, spanning the regimes that differentiate the five scorers —
// univariate causes (CorrMax shines), joint causes (L2 shines), seasonal
// confounders (spurious-correlation bait), and very wide distractor
// families (the L2 size bias).
#pragma once

#include <string>
#include <vector>

#include "common/random.h"
#include "core/eval_metrics.h"
#include "core/feature_family.h"

namespace explainit::sim {

/// How the ground-truth cause family drives the target.
enum class CauseKind {
  kUnivariate,   // one strong feature inside the family
  kJointDense,   // every feature weakly informative; jointly strong
  kJointSparse,  // a handful of informative features among many
  kLagged,       // cause leads the target by a few steps
  kMultiFactor,  // each feature is an independent latent factor and the
                 // target follows their sum: the cause signal is genuinely
                 // high-rank, so random projection to d < F loses signal
                 // (differentiates L2 / L2-P500 / L2-P50)
};

/// Generator parameters for one scenario.
struct ScenarioSpec {
  std::string name;
  uint64_t seed = 1;
  CauseKind cause_kind = CauseKind::kUnivariate;
  size_t cause_family_size = 8;
  /// Per-feature noise-to-signal ratio inside the cause family (higher =
  /// weaker marginal correlations).
  double cause_feature_noise = 0.5;
  /// Strength of the cause in the target (target noise has sd 1).
  double cause_strength = 2.0;
  size_t cause_lag = 0;

  size_t num_effect_families = 4;
  size_t effect_family_size = 6;
  double effect_noise = 0.8;
  /// Per-family effect noise is drawn from
  /// [effect_noise, effect_noise * effect_noise_spread]: some effects are
  /// crisp (they top the ranking, as in Tables 3-5), others are muddy.
  double effect_noise_spread = 3.0;

  size_t num_noise_families = 30;
  size_t noise_family_size = 10;

  /// Seasonal confounders: distractors sharing the target's period.
  size_t num_seasonal_families = 6;
  size_t seasonal_family_size = 8;
  double target_seasonal_amp = 0.0;  // >0 puts seasonality into the target
  size_t seasonal_period = 96;
  /// Fraction of seasonal families phase-locked to the target's seasonal
  /// component — the spurious-correlation bait of §1.
  double aligned_seasonal_fraction = 0.4;

  /// Very wide distractors (the joint-scorer bias bait).
  size_t num_wide_families = 0;
  size_t wide_family_size = 600;
  /// Fraction of wide-family columns that carry the seasonal signal.
  double wide_seasonal_fraction = 0.1;
};

/// A generated scenario: target, labelled search space, and metadata.
struct Scenario {
  std::string name;
  std::string description;
  core::FeatureFamily target;
  std::vector<core::FeatureFamily> families;
  core::ScenarioLabels labels;
  size_t total_features = 0;
};

/// Generates one scenario with `t` time steps on a minute grid.
Scenario GenerateScenario(const ScenarioSpec& spec, size_t t);

/// The 11 Table 6 specs. `feature_scale` multiplies family counts/sizes
/// (1.0 = laptop scale; ~8 approaches the paper's feature counts).
std::vector<ScenarioSpec> Table6Specs(double feature_scale = 1.0);

/// Convenience: generate the full suite.
std::vector<Scenario> MakeTable6Suite(size_t t = 480,
                                      double feature_scale = 1.0);

}  // namespace explainit::sim
