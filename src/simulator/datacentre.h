// A synthetic data centre in the image of §2/§5: data-processing pipelines
// feeding HDFS (datanodes + namenode) over a TCP network, with
// infrastructure metrics (CPU, disk, JVM, RAID) — the substrate on which
// the case-study faults are injected.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "simulator/causal_network.h"

namespace explainit::sim {

/// Topology parameters.
struct DatacentreConfig {
  size_t num_pipelines = 4;
  size_t num_datanodes = 6;
  /// Steps per synthetic "day" for seasonal components (minutely grid:
  /// 1440; hourly grid: 24).
  size_t day_period = 1440;
  /// Baseline coupling of runtime to TCP retransmissions (the network
  /// fault path; §5.1 and §5.2 interventions scale activity, not this).
  double retransmit_weight = 0.15;
};

/// A wired-up causal network plus name->node bookkeeping.
class DatacentreModel {
 public:
  explicit DatacentreModel(const DatacentreConfig& config);

  const CausalNetwork& network() const { return network_; }
  const DatacentreConfig& config() const { return config_; }

  /// Node ids by metric name (one per tag combination).
  const std::vector<size_t>& NodesByMetric(const std::string& name) const;
  /// All metric names in the model.
  std::vector<std::string> MetricNames() const;

  /// The overall KPI node ("overall_runtime", §5: "our key performance
  /// indicator is overall runtime").
  size_t kpi_node() const { return kpi_node_; }
  /// Hidden driver of namenode load (the GetContentSummary scan rate).
  size_t scan_rate_node() const { return scan_rate_node_; }
  /// Hidden RAID consistency-check activity node.
  size_t raid_scrub_node() const { return raid_scrub_node_; }
  /// Hidden hypervisor packet-drop node (NOT written to the store —
  /// §5.2's unmonitored counter).
  size_t hypervisor_drop_node() const { return hypervisor_drop_node_; }

  /// Simulates and writes all *monitored* nodes to the store (hidden
  /// nodes — hypervisor drops, scrub activity, scan rate — are omitted,
  /// mirroring the insufficient monitoring of §5.2/§5.4).
  Status WriteTo(tsdb::SeriesStore* store, size_t steps, EpochSeconds start,
                 Rng& rng,
                 const std::vector<Intervention>& interventions = {}) const;

  /// Streaming feed mode: ingests the same trace as WriteTo (identical
  /// values for an identically-seeded Rng) but *time-major* — every
  /// monitored series at step t is written before any at step t+1, the
  /// way a live collector tick lands in the store — invoking `on_step`
  /// (when set) after each tick. Concurrent readers of `store` observe
  /// the data growing with prefix-consistent per-series histories; the
  /// ingest benchmark drives its concurrent write/query load through
  /// this entry point.
  Status StreamTo(tsdb::SeriesStore* store, size_t steps, EpochSeconds start,
                  Rng& rng,
                  const std::vector<Intervention>& interventions = {},
                  const std::function<void(size_t step)>& on_step = {}) const;

 private:
  size_t MustAdd(NodeSpec spec);

  DatacentreConfig config_;
  CausalNetwork network_;
  std::map<std::string, std::vector<size_t>> by_metric_;
  std::vector<bool> hidden_;
  size_t kpi_node_ = 0;
  size_t scan_rate_node_ = 0;
  size_t raid_scrub_node_ = 0;
  size_t hypervisor_drop_node_ = 0;
};

}  // namespace explainit::sim
