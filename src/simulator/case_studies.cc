#include "simulator/case_studies.h"

#include <cmath>

#include "common/logging.h"

namespace explainit::sim {

namespace {

TimeRange StepsToRange(size_t steps) {
  return TimeRange{0, static_cast<int64_t>(steps) * kSecondsPerMinute};
}

// Every family is either a cause or an effect in these worlds; the
// monitored-but-unrelated metrics are effects of nothing and never rank
// high, so they are left unlabelled (scored but irrelevant).
void LabelEffects(const DatacentreModel& model, core::ScenarioLabels* labels) {
  for (const std::string& name : model.MetricNames()) {
    if (labels->causes.count(name) > 0) continue;
    labels->effects.insert(name);
  }
}

}  // namespace

CaseStudyWorld MakePacketDropCase(size_t steps, uint64_t seed) {
  CaseStudyWorld world;
  world.description =
      "§5.1: iptables rule drops 10% of packets to all datanodes; "
      "TCP retransmit counters are the monitored cause.";
  world.config.day_period = 1440;
  // Two pipelines: enough to show the expected runtime/latency effect
  // rows without flooding the whole top-20 with near-duplicate effects.
  world.config.num_pipelines = 2;
  DatacentreModel model(world.config);
  world.range = StepsToRange(steps);
  // Fault window: the drop rule itself plus the stabilisation tail ("we
  // removed the firewall rule and allowed the system to stabilise") — the
  // visible hump of Figure 5 spans well beyond the rule itself.
  const size_t w0 = steps / 2;
  const size_t rule_end = w0 + steps / 10;
  const size_t w1 = rule_end + steps / 10;  // exponential recovery tail
  world.fault_window = TimeRange{
      static_cast<int64_t>(w0) * kSecondsPerMinute,
      static_cast<int64_t>(w1) * kSecondsPerMinute};
  std::vector<Intervention> faults;
  for (size_t node : model.NodesByMetric("tcp_retransmits")) {
    Intervention iv;
    iv.node = node;
    iv.begin = w0;
    iv.end = w1;
    // 10% drop probability -> large retransmit burst, decaying after the
    // rule is removed.
    iv.shape = [rule_end](size_t t) {
      if (t < rule_end) return 35.0;
      return 35.0 * std::exp(-static_cast<double>(t - rule_end) / 12.0);
    };
    faults.push_back(iv);
  }
  world.store = std::make_shared<tsdb::SeriesStore>();
  Rng rng(seed);
  EXPLAINIT_CHECK(
      model.WriteTo(world.store.get(), steps, 0, rng, faults).ok(),
      "packet-drop world generation failed");
  world.labels.causes = {"tcp_retransmits"};
  // Corroborating network evidence also counts as cause-side signal
  // (Table 3 ranks 4, 6, 9 as the useful rows).
  world.labels.causes.insert("network_latency_ms");
  world.labels.causes.insert("hdfs_packet_ack_rtt_ms");
  LabelEffects(model, &world.labels);
  return world;
}

CaseStudyWorld MakeHypervisorDropCase(size_t steps, uint64_t seed,
                                      bool fixed) {
  CaseStudyWorld world;
  world.description =
      "§5.2: hypervisor receive-queue drops (unmonitored) cause "
      "retransmissions; input load is the dominant source of variation.";
  world.config.day_period = 1440;
  DatacentreModel model(world.config);
  world.range = StepsToRange(steps);
  world.fault_window = world.range;  // drops recur throughout
  std::vector<Intervention> faults;
  Intervention iv;
  iv.node = model.hypervisor_drop_node();
  iv.begin = 0;
  iv.end = steps;
  const double magnitude = fixed ? 0.12 : 1.8;
  // Recurring bursts: the software stack runs out of CPU in load spikes.
  iv.shape = [magnitude](size_t t) {
    return (t % 45) < 12 ? magnitude : 0.0;
  };
  faults.push_back(iv);
  world.store = std::make_shared<tsdb::SeriesStore>();
  Rng rng(seed);
  EXPLAINIT_CHECK(
      model.WriteTo(world.store.get(), steps, 0, rng, faults).ok(),
      "hypervisor world generation failed");
  world.labels.causes = {"tcp_retransmits", "network_latency_ms"};
  LabelEffects(model, &world.labels);
  return world;
}

CaseStudyWorld MakeNamenodeScanCase(size_t steps, uint64_t seed,
                                    size_t fix_at_step) {
  CaseStudyWorld world;
  world.description =
      "§5.3: a service calls GetContentSummary (full filesystem scan) "
      "every 15 minutes for ~5 minutes; namenode slows down periodically.";
  world.config.day_period = 1440;
  DatacentreModel model(world.config);
  world.range = StepsToRange(steps);
  const size_t fault_end = std::min(steps, fix_at_step);
  world.fault_window =
      TimeRange{0, static_cast<int64_t>(fault_end) * kSecondsPerMinute};
  std::vector<Intervention> faults;
  Intervention iv;
  iv.node = model.scan_rate_node();
  iv.begin = 0;
  iv.end = fault_end;
  iv.shape = [](size_t t) { return (t % 15) < 5 ? 8.0 : 0.0; };
  faults.push_back(iv);
  world.store = std::make_shared<tsdb::SeriesStore>();
  Rng rng(seed);
  EXPLAINIT_CHECK(
      model.WriteTo(world.store.get(), steps, 0, rng, faults).ok(),
      "namenode world generation failed");
  world.labels.causes = {"namenode_rpc_rate", "namenode_rpc_latency_ms",
                         "namenode_live_threads"};
  LabelEffects(model, &world.labels);
  return world;
}

CaseStudyWorld MakeRaidScrubCase(size_t steps, uint64_t seed,
                                 const RaidSchedule& schedule) {
  CaseStudyWorld world;
  world.description =
      "§5.4: weekly RAID consistency check (period 168h, ~4h, default "
      "20% of IO capacity) slows every pipeline. One step = one hour.";
  // Hourly steps: a "day" of seasonality is 24 steps. A smaller pipeline
  // population keeps the effect families from flooding the entire top-20
  // (the production system monitored far more non-pipeline families).
  world.config.day_period = 24;
  world.config.num_pipelines = 2;
  DatacentreModel model(world.config);
  world.range = StepsToRange(steps);
  world.fault_window = world.range;
  std::vector<Intervention> faults;
  Intervention iv;
  iv.node = model.raid_scrub_node();
  iv.begin = 0;
  iv.end = steps;
  const RaidSchedule sched = schedule;
  iv.shape = [sched](size_t t) {
    const bool scrubbing = (t % (7 * 24)) < 4;  // 4 hours weekly
    if (!scrubbing) return 0.0;
    if (t >= sched.disable_from && t < sched.disable_to) return 0.0;
    if (t >= sched.cap_from) return sched.cap_share;
    return sched.default_share;
  };
  faults.push_back(iv);
  world.store = std::make_shared<tsdb::SeriesStore>();
  Rng rng(seed);
  EXPLAINIT_CHECK(
      model.WriteTo(world.store.get(), steps, 0, rng, faults).ok(),
      "raid world generation failed");
  world.labels.causes = {"disk_utilization", "load_average",
                         "disk_read_latency_ms", "disk_write_latency_ms",
                         "raid_controller_temp_c"};
  LabelEffects(model, &world.labels);
  return world;
}

}  // namespace explainit::sim
