#include "simulator/datacentre.h"

#include "common/logging.h"
#include "common/strings.h"

namespace explainit::sim {

size_t DatacentreModel::MustAdd(NodeSpec spec) {
  const std::string name = spec.metric_name;
  Result<size_t> id = network_.AddNode(std::move(spec));
  EXPLAINIT_CHECK(id.ok(), "bad node wiring: " << id.status().ToString());
  by_metric_[name].push_back(id.value());
  hidden_.push_back(false);
  return id.value();
}

DatacentreModel::DatacentreModel(const DatacentreConfig& config)
    : config_(config) {
  const size_t day = config.day_period;

  // --- Hidden fault drivers (quiescent until an intervention fires). ---
  {
    NodeSpec scan;
    scan.metric_name = "_hidden_scan_rate";
    scan.base = 1.0;
    scan.noise_sd = 0.1;
    scan.nonnegative = true;
    scan_rate_node_ = MustAdd(std::move(scan));
    hidden_.back() = true;

    NodeSpec scrub;
    scrub.metric_name = "_hidden_raid_scrub";
    scrub.base = 0.0;
    scrub.noise_sd = 0.02;
    scrub.nonnegative = true;
    raid_scrub_node_ = MustAdd(std::move(scrub));
    hidden_.back() = true;

    NodeSpec hyp;
    hyp.metric_name = "_hidden_hypervisor_drops";
    hyp.base = 0.0;
    hyp.noise_sd = 0.05;
    hyp.nonnegative = true;
    hypervisor_drop_node_ = MustAdd(std::move(hyp));
    hidden_.back() = true;
  }

  // --- Exogenous cluster-wide load. ---
  std::vector<size_t> input_nodes;
  for (size_t p = 0; p < config.num_pipelines; ++p) {
    NodeSpec input;
    input.metric_name = "input_rate_pipeline" + std::to_string(p);
    input.tags = tsdb::TagSet{{"pipeline", "p" + std::to_string(p)}};
    input.base = 1000.0 + 100.0 * static_cast<double>(p);
    input.noise_sd = 60.0;
    input.seasonal_amp = 150.0;
    input.seasonal_period = day;
    input.ar = 0.4;
    input.nonnegative = true;
    input_nodes.push_back(MustAdd(std::move(input)));
  }

  // --- Network layer: TCP retransmissions per host, driven by the hidden
  // hypervisor drop node (§5.2) and by intervention (§5.1). ---
  std::vector<size_t> retransmit_nodes;
  const size_t num_hosts = config.num_datanodes + 1;  // +1 namenode host
  for (size_t h = 0; h < num_hosts; ++h) {
    const std::string host =
        h < config.num_datanodes ? "datanode-" + std::to_string(h)
                                 : "namenode-0";
    NodeSpec tcp;
    tcp.metric_name = "tcp_retransmits";
    tcp.tags = tsdb::TagSet{{"host", host}};
    tcp.base = 2.0;
    tcp.noise_sd = 0.8;
    tcp.nonnegative = true;
    tcp.edges.push_back(Edge{hypervisor_drop_node_, 8.0, 0, LinkFn::kLinear});
    retransmit_nodes.push_back(MustAdd(std::move(tcp)));

    NodeSpec netlat;
    netlat.metric_name = "network_latency_ms";
    netlat.tags = tsdb::TagSet{{"host", host}};
    netlat.base = 0.5;
    netlat.noise_sd = 0.1;
    netlat.nonnegative = true;
    netlat.edges.push_back(
        Edge{retransmit_nodes.back(), 0.05, 0, LinkFn::kLinear});
    MustAdd(std::move(netlat));
  }

  // --- Datanode infrastructure. ---
  std::vector<size_t> disk_read_nodes;
  for (size_t d = 0; d < config.num_datanodes; ++d) {
    const std::string host = "datanode-" + std::to_string(d);
    const tsdb::TagSet tags{{"host", host}};

    // The scrub node emits its IO share (0..0.2); couplings below convert
    // that into the large latency/utilisation swings of Figure 8.
    NodeSpec read;
    read.metric_name = "disk_read_latency_ms";
    read.tags = tags;
    read.base = 5.0;
    read.noise_sd = 0.6;
    read.nonnegative = true;
    read.edges.push_back(Edge{raid_scrub_node_, 60.0, 0, LinkFn::kLinear});
    disk_read_nodes.push_back(MustAdd(std::move(read)));

    NodeSpec write;
    write.metric_name = "disk_write_latency_ms";
    write.tags = tags;
    write.base = 7.0;
    write.noise_sd = 0.8;
    write.nonnegative = true;
    write.edges.push_back(Edge{raid_scrub_node_, 70.0, 0, LinkFn::kLinear});
    MustAdd(std::move(write));

    NodeSpec util;
    util.metric_name = "disk_utilization";
    util.tags = tags;
    util.base = 30.0;
    util.noise_sd = 3.0;
    util.nonnegative = true;
    util.edges.push_back(Edge{raid_scrub_node_, 150.0, 0, LinkFn::kLinear});
    // Disk work also follows input load slightly.
    for (size_t in : input_nodes) {
      util.edges.push_back(Edge{in, 0.003, 0, LinkFn::kLinear});
    }
    MustAdd(std::move(util));

    NodeSpec cpu;
    cpu.metric_name = "cpu_utilization";
    cpu.tags = tags;
    cpu.base = 35.0;
    cpu.noise_sd = 3.0;
    cpu.nonnegative = true;
    for (size_t in : input_nodes) {
      cpu.edges.push_back(Edge{in, 0.004, 0, LinkFn::kLinear});
    }
    MustAdd(std::move(cpu));

    NodeSpec load;
    load.metric_name = "load_average";
    load.tags = tags;
    load.base = 4.0;
    load.noise_sd = 0.5;
    load.nonnegative = true;
    load.edges.push_back(Edge{raid_scrub_node_, 40.0, 0, LinkFn::kLinear});
    for (size_t in : input_nodes) {
      load.edges.push_back(Edge{in, 0.0008, 0, LinkFn::kLinear});
    }
    MustAdd(std::move(load));

    NodeSpec gc;
    gc.metric_name = "jvm_gc_ms";
    gc.tags = tags;
    gc.base = 25.0;
    gc.noise_sd = 6.0;
    gc.nonnegative = true;
    MustAdd(std::move(gc));

    NodeSpec temp;
    temp.metric_name = "raid_controller_temp_c";
    temp.tags = tags;
    temp.base = 38.0;
    temp.noise_sd = 0.4;
    temp.ar = 0.7;
    temp.edges.push_back(Edge{raid_scrub_node_, 25.0, 0, LinkFn::kLinear});
    MustAdd(std::move(temp));
  }

  // --- Namenode service (§5.3). ---
  const tsdb::TagSet nn_tags{{"host", "namenode-0"}};
  NodeSpec rpc_rate;
  rpc_rate.metric_name = "namenode_rpc_rate";
  rpc_rate.tags = nn_tags;
  rpc_rate.base = 100.0;
  rpc_rate.noise_sd = 8.0;
  rpc_rate.nonnegative = true;
  rpc_rate.edges.push_back(Edge{scan_rate_node_, 50.0, 0, LinkFn::kLinear});
  for (size_t in : input_nodes) {
    rpc_rate.edges.push_back(Edge{in, 0.01, 0, LinkFn::kLinear});
  }
  const size_t rpc_rate_node = MustAdd(std::move(rpc_rate));

  NodeSpec threads;
  threads.metric_name = "namenode_live_threads";
  threads.tags = nn_tags;
  threads.base = 40.0;
  threads.noise_sd = 2.0;
  threads.nonnegative = true;
  threads.edges.push_back(Edge{rpc_rate_node, 0.2, 0, LinkFn::kLinear});
  MustAdd(std::move(threads));

  NodeSpec nn_lat;
  nn_lat.metric_name = "namenode_rpc_latency_ms";
  nn_lat.tags = nn_tags;
  nn_lat.base = 3.0;
  nn_lat.noise_sd = 0.4;
  nn_lat.nonnegative = true;
  nn_lat.edges.push_back(Edge{rpc_rate_node, 0.05, 0, LinkFn::kRelu});
  const size_t nn_lat_node = MustAdd(std::move(nn_lat));

  // Busy namenodes defer GC: negative correlation with scans (§5.3's
  // ruled-out hypothesis).
  NodeSpec nn_gc;
  nn_gc.metric_name = "namenode_gc_ms";
  nn_gc.tags = nn_tags;
  nn_gc.base = 40.0;
  nn_gc.noise_sd = 5.0;
  nn_gc.nonnegative = true;
  nn_gc.edges.push_back(Edge{scan_rate_node_, -6.0, 0, LinkFn::kLinear});
  MustAdd(std::move(nn_gc));

  // HDFS RPC ack round-trip, sensitive to network retransmissions.
  NodeSpec ack;
  ack.metric_name = "hdfs_packet_ack_rtt_ms";
  ack.tags = nn_tags;
  ack.base = 2.0;
  ack.noise_sd = 0.3;
  ack.nonnegative = true;
  for (size_t rn : retransmit_nodes) {
    ack.edges.push_back(Edge{rn, 0.02, 0, LinkFn::kLinear});
  }
  const size_t ack_node = MustAdd(std::move(ack));

  // Database p75 RPC latency (Table 3 rank 6).
  NodeSpec dbp75;
  dbp75.metric_name = "db_p75_latency_ms";
  dbp75.tags = tsdb::TagSet{{"service", "db"}};
  dbp75.base = 4.0;
  dbp75.noise_sd = 0.5;
  dbp75.nonnegative = true;
  for (size_t rn : retransmit_nodes) {
    dbp75.edges.push_back(Edge{rn, 0.015, 0, LinkFn::kLinear});
  }
  MustAdd(std::move(dbp75));

  // Cluster scheduler: active jobs grow when pipelines fall behind.
  NodeSpec jobs;
  jobs.metric_name = "cluster_active_jobs";
  jobs.tags = tsdb::TagSet{{"service", "scheduler"}};
  jobs.base = 20.0;
  jobs.noise_sd = 2.0;
  jobs.nonnegative = true;

  // --- Pipelines: runtime = f(input, disk, namenode, network). ---
  std::vector<size_t> runtime_nodes;
  for (size_t p = 0; p < config.num_pipelines; ++p) {
    const std::string suffix = "_pipeline" + std::to_string(p);
    const tsdb::TagSet tags{{"pipeline", "p" + std::to_string(p)}};
    NodeSpec rt;
    rt.metric_name = "runtime" + suffix;
    rt.tags = tags;
    rt.base = 8.0;
    rt.noise_sd = 1.2;
    rt.nonnegative = true;
    rt.edges.push_back(Edge{input_nodes[p], 0.02, 0, LinkFn::kLinear});
    rt.edges.push_back(Edge{nn_lat_node, 0.8, 0, LinkFn::kRelu});
    rt.edges.push_back(Edge{ack_node, 0.6, 0, LinkFn::kLinear});
    for (size_t rn : retransmit_nodes) {
      rt.edges.push_back(
          Edge{rn, config.retransmit_weight, 0, LinkFn::kLinear});
    }
    // Disk latency on the datanode this pipeline mostly writes to.
    rt.edges.push_back(Edge{disk_read_nodes[p % disk_read_nodes.size()], 1.5,
                            0, LinkFn::kRelu});
    runtime_nodes.push_back(MustAdd(std::move(rt)));

    NodeSpec lat;
    lat.metric_name = "latency" + suffix;
    lat.tags = tags;
    lat.base = 2.0;
    lat.noise_sd = 0.8;
    lat.nonnegative = true;
    lat.edges.push_back(Edge{runtime_nodes.back(), 1.2, 0, LinkFn::kLinear});
    lat.edges.push_back(Edge{runtime_nodes.back(), 0.6, 1, LinkFn::kLinear});
    MustAdd(std::move(lat));

    NodeSpec save;
    save.metric_name = "save_time" + suffix;
    save.tags = tags;
    save.base = 1.0;
    save.noise_sd = 0.4;
    save.nonnegative = true;
    save.edges.push_back(Edge{runtime_nodes.back(), 0.55, 0, LinkFn::kLinear});
    MustAdd(std::move(save));
  }

  // Active jobs pile up when pipelines run long.
  for (size_t rt : runtime_nodes) {
    jobs.edges.push_back(Edge{rt, 0.25, 1, LinkFn::kRelu});
  }
  MustAdd(std::move(jobs));

  // --- The KPI: overall runtime across pipelines (§5). ---
  NodeSpec kpi;
  kpi.metric_name = "overall_runtime";
  kpi.tags = tsdb::TagSet{{"service", "processing"}};
  kpi.base = 1.0;
  kpi.noise_sd = 0.5;
  kpi.nonnegative = true;
  for (size_t rt : runtime_nodes) {
    kpi.edges.push_back(
        Edge{rt, 1.0 / static_cast<double>(config.num_pipelines), 0,
             LinkFn::kLinear});
  }
  kpi_node_ = MustAdd(std::move(kpi));
}

const std::vector<size_t>& DatacentreModel::NodesByMetric(
    const std::string& name) const {
  static const std::vector<size_t> kEmpty;
  auto it = by_metric_.find(name);
  return it == by_metric_.end() ? kEmpty : it->second;
}

std::vector<std::string> DatacentreModel::MetricNames() const {
  std::vector<std::string> out;
  for (const auto& [name, nodes] : by_metric_) {
    if (!StartsWith(name, "_hidden")) out.push_back(name);
  }
  return out;
}

Status DatacentreModel::WriteTo(
    tsdb::SeriesStore* store, size_t steps, EpochSeconds start, Rng& rng,
    const std::vector<Intervention>& interventions) const {
  la::Matrix values = network_.Simulate(steps, rng, interventions);
  const int64_t step_seconds = kSecondsPerMinute;
  for (size_t i = 0; i < network_.num_nodes(); ++i) {
    if (hidden_[i]) continue;  // unmonitored counters stay unmonitored
    const NodeSpec& spec = network_.node(i);
    for (size_t t = 0; t < steps; ++t) {
      EXPLAINIT_RETURN_IF_ERROR(store->Write(
          spec.metric_name, spec.tags,
          start + static_cast<int64_t>(t) * step_seconds, values(t, i)));
    }
  }
  return Status::OK();
}

Status DatacentreModel::StreamTo(
    tsdb::SeriesStore* store, size_t steps, EpochSeconds start, Rng& rng,
    const std::vector<Intervention>& interventions,
    const std::function<void(size_t step)>& on_step) const {
  // Same deterministic trace as WriteTo (the causal simulation consumes
  // the Rng identically); only the ingest order differs: time-major, one
  // collector tick at a time.
  la::Matrix values = network_.Simulate(steps, rng, interventions);
  const int64_t step_seconds = kSecondsPerMinute;
  for (size_t t = 0; t < steps; ++t) {
    const EpochSeconds ts = start + static_cast<int64_t>(t) * step_seconds;
    for (size_t i = 0; i < network_.num_nodes(); ++i) {
      if (hidden_[i]) continue;  // unmonitored counters stay unmonitored
      const NodeSpec& spec = network_.node(i);
      EXPLAINIT_RETURN_IF_ERROR(
          store->Write(spec.metric_name, spec.tags, ts, values(t, i)));
    }
    if (on_step) on_step(t);
  }
  return Status::OK();
}

}  // namespace explainit::sim
