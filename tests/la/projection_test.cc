#include "la/random_projection.h"

#include <gtest/gtest.h>

#include <cmath>

#include "la/blas.h"

namespace explainit::la {
namespace {

TEST(ProjectionTest, ShapeIsNxD) {
  Rng rng(1);
  Matrix p = SampleProjectionMatrix(100, 10, rng);
  EXPECT_EQ(p.rows(), 100u);
  EXPECT_EQ(p.cols(), 10u);
}

TEST(ProjectionTest, EntriesScaledByInvSqrtD) {
  Rng rng(2);
  const size_t d = 25;
  Matrix p = SampleProjectionMatrix(400, d, rng);
  // Var of each entry should be ~ 1/d.
  double sumsq = 0.0;
  for (size_t i = 0; i < p.size(); ++i) sumsq += p.data()[i] * p.data()[i];
  const double var = sumsq / static_cast<double>(p.size());
  EXPECT_NEAR(var, 1.0 / static_cast<double>(d), 0.005);
}

TEST(ProjectionTest, NarrowMatrixPassesThrough) {
  Rng rng(3);
  Matrix x(10, 5);
  rng.FillNormal(x.data(), x.size());
  Matrix p = ProjectIfWide(x, 50, rng);
  EXPECT_EQ(p, x);  // nx <= d: unchanged, matching the paper's definition
}

TEST(ProjectionTest, WideMatrixReduced) {
  Rng rng(4);
  Matrix x(30, 200);
  rng.FillNormal(x.data(), x.size());
  Matrix p = ProjectIfWide(x, 50, rng);
  EXPECT_EQ(p.rows(), 30u);
  EXPECT_EQ(p.cols(), 50u);
}

TEST(ProjectionTest, ApproximatelyPreservesNorms) {
  // Johnson–Lindenstrauss sanity: squared row norms preserved in
  // expectation within a loose tolerance.
  Rng rng(5);
  Matrix x(20, 2000);
  rng.FillNormal(x.data(), x.size());
  Matrix p = ProjectIfWide(x, 500, rng);
  for (size_t r = 0; r < x.rows(); ++r) {
    double orig = 0.0, proj = 0.0;
    for (size_t c = 0; c < x.cols(); ++c) orig += x(r, c) * x(r, c);
    for (size_t c = 0; c < p.cols(); ++c) proj += p(r, c) * p(r, c);
    EXPECT_NEAR(proj / orig, 1.0, 0.25) << "row " << r;
  }
}

TEST(ProjectionTest, DifferentRngStatesGiveDifferentProjections) {
  Rng rng(6);
  Matrix x(5, 100);
  rng.FillNormal(x.data(), x.size());
  Matrix p1 = ProjectIfWide(x, 10, rng);
  Matrix p2 = ProjectIfWide(x, 10, rng);
  EXPECT_NE(p1, p2);  // fresh matrix per projection, as the paper resamples
}

}  // namespace
}  // namespace explainit::la
