// Differential tests of the runtime-dispatched SIMD kernels: every AVX2
// kernel must agree with the always-compiled scalar path to rounding
// tolerance across a sweep of shapes, including non-multiples of the 4x8
// micro-tile, single-row/column edges and all transpose combinations.
// Skipped (except for the dispatch-surface checks) on hosts without AVX2.
#include "la/simd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "common/random.h"
#include "la/blas.h"
#include "la/matrix.h"

namespace explainit::la::simd {
namespace {

// FMA contracts rounding differently than separate mul+add, so results
// between the tables agree only to relative tolerance, never bitwise.
constexpr double kRelTol = 1e-10;

bool HaveAvx2() { return Avx2Table() != nullptr; }

std::vector<double> RandomVec(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  rng.FillNormal(v.data(), n);
  return v;
}

void ExpectNearRel(const double* a, const double* b, size_t n,
                   const std::string& what) {
  for (size_t i = 0; i < n; ++i) {
    const double denom = std::max({std::fabs(a[i]), std::fabs(b[i]), 1.0});
    ASSERT_LT(std::fabs(a[i] - b[i]) / denom, kRelTol)
        << what << " diverges at index " << i << ": " << a[i] << " vs "
        << b[i];
  }
}

struct IsaGuard {
  Isa saved;
  IsaGuard() : saved(ActiveIsa()) {}
  ~IsaGuard() { ForceIsa(saved); }
};

// --- Gemm across shapes and transpose combinations ------------------------

void RunGemmCase(size_t m, size_t n, size_t k, bool at, bool bt,
                 bool upper_only) {
  // Operand buffers sized for the effective (trans-aware) shapes.
  const std::vector<double> abuf =
      RandomVec((at ? k * m : m * k) + 3, 1000 + m * 31 + n * 7 + k);
  const std::vector<double> bbuf =
      RandomVec((bt ? n * k : k * n) + 3, 2000 + m + n * 13 + k * 5);
  GemmOperand a{abuf.data(), at ? m : k, at};
  GemmOperand b{bbuf.data(), bt ? k : n, bt};

  std::vector<double> c_scalar(m * n, 0.0), c_simd(m * n, 0.0);
  ScalarTable().gemm(m, n, k, a, b, c_scalar.data(), n, upper_only);
  Avx2Table()->gemm(m, n, k, a, b, c_simd.data(), n, upper_only);

  const std::string what = "gemm m=" + std::to_string(m) +
                           " n=" + std::to_string(n) +
                           " k=" + std::to_string(k) + (at ? " At" : "") +
                           (bt ? " Bt" : "") + (upper_only ? " upper" : "");
  if (!upper_only) {
    ExpectNearRel(c_scalar.data(), c_simd.data(), m * n, what);
    return;
  }
  // upper_only leaves the strict lower triangle unspecified; compare only
  // j >= i.
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = i < n ? i : n; j < n; ++j) {
      const double s = c_scalar[i * n + j], v = c_simd[i * n + j];
      const double denom = std::max({std::fabs(s), std::fabs(v), 1.0});
      ASSERT_LT(std::fabs(s - v) / denom, kRelTol)
          << what << " diverges at (" << i << "," << j << ")";
    }
  }
}

TEST(SimdKernelsTest, GemmShapeSweep) {
  if (!HaveAvx2()) GTEST_SKIP() << "AVX2 unavailable on this host";
  // Shapes straddle the 4x8 micro-tile and the 96/256/512 cache blocks:
  // exact multiples, off-by-one edges, single rows/cols, tall and wide.
  const size_t dims[] = {1, 2, 3, 4, 5, 7, 8, 9, 16, 31, 96, 97, 130};
  for (size_t m : dims) {
    for (size_t n : dims) {
      const size_t k = (m * 7 + n) % 61 + 1;
      RunGemmCase(m, n, k, false, false, false);
    }
  }
}

TEST(SimdKernelsTest, GemmTransposeCombinations) {
  if (!HaveAvx2()) GTEST_SKIP() << "AVX2 unavailable on this host";
  const size_t shapes[][3] = {{5, 9, 13}, {33, 17, 41}, {64, 64, 64},
                              {1, 100, 7}, {100, 1, 7}, {97, 103, 129}};
  for (const auto& s : shapes) {
    for (bool at : {false, true}) {
      for (bool bt : {false, true}) {
        RunGemmCase(s[0], s[1], s[2], at, bt, false);
      }
    }
  }
}

TEST(SimdKernelsTest, GemmUpperOnly) {
  if (!HaveAvx2()) GTEST_SKIP() << "AVX2 unavailable on this host";
  for (size_t n : {1u, 4u, 7u, 8u, 9u, 32u, 65u, 100u}) {
    RunGemmCase(n, n, 19, /*at=*/true, /*bt=*/false, /*upper_only=*/true);
  }
}

TEST(SimdKernelsTest, GemmAccumulatesIntoC) {
  if (!HaveAvx2()) GTEST_SKIP() << "AVX2 unavailable on this host";
  // The contract is C +=: a pre-filled C must keep its contents added in.
  const size_t m = 13, n = 21, k = 17;
  const std::vector<double> abuf = RandomVec(m * k, 31);
  const std::vector<double> bbuf = RandomVec(k * n, 32);
  GemmOperand a{abuf.data(), k, false};
  GemmOperand b{bbuf.data(), n, false};
  std::vector<double> c_scalar = RandomVec(m * n, 33);
  std::vector<double> c_simd = c_scalar;
  ScalarTable().gemm(m, n, k, a, b, c_scalar.data(), n, false);
  Avx2Table()->gemm(m, n, k, a, b, c_simd.data(), n, false);
  ExpectNearRel(c_scalar.data(), c_simd.data(), m * n, "gemm accumulate");
}

// --- Vector kernels -------------------------------------------------------

TEST(SimdKernelsTest, VectorKernelSweep) {
  if (!HaveAvx2()) GTEST_SKIP() << "AVX2 unavailable on this host";
  const KernelTable& sc = ScalarTable();
  const KernelTable& vx = *Avx2Table();
  for (size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 15u, 16u, 17u, 63u, 64u,
                   100u, 1023u}) {
    const std::vector<double> x = RandomVec(n, 40 + n);
    const std::vector<double> y = RandomVec(n, 41 + n);
    const std::vector<double> mean = RandomVec(n, 42 + n);

    if (n > 0) {
      const double ds = sc.dot(x.data(), y.data(), n);
      const double dv = vx.dot(x.data(), y.data(), n);
      const double denom = std::max({std::fabs(ds), std::fabs(dv), 1.0});
      EXPECT_LT(std::fabs(ds - dv) / denom, kRelTol) << "dot n=" << n;
    }

    std::vector<double> as = y, av = y;
    sc.axpy(1.7, x.data(), as.data(), n);
    vx.axpy(1.7, x.data(), av.data(), n);
    ExpectNearRel(as.data(), av.data(), n, "axpy n=" + std::to_string(n));

    std::vector<double> ss = x, sv = x;
    sc.scale(ss.data(), -0.3, n);
    vx.scale(sv.data(), -0.3, n);
    ExpectNearRel(ss.data(), sv.data(), n, "scale n=" + std::to_string(n));

    std::vector<double> accs = y, accv = y;
    sc.add(x.data(), accs.data(), n);
    vx.add(x.data(), accv.data(), n);
    ExpectNearRel(accs.data(), accv.data(), n, "add n=" + std::to_string(n));

    std::vector<double> qs = y, qv = y;
    sc.sq_diff_accum(x.data(), mean.data(), qs.data(), n);
    vx.sq_diff_accum(x.data(), mean.data(), qv.data(), n);
    ExpectNearRel(qs.data(), qv.data(), n,
                  "sq_diff_accum n=" + std::to_string(n));

    std::vector<double> outs(n), outv(n);
    sc.sub_scale(x.data(), mean.data(), y.data(), outs.data(), n);
    vx.sub_scale(x.data(), mean.data(), y.data(), outv.data(), n);
    ExpectNearRel(outs.data(), outv.data(), n,
                  "sub_scale n=" + std::to_string(n));
  }
}

// --- Determinism ----------------------------------------------------------

TEST(SimdKernelsTest, SameTableIsBitIdentical) {
  // Repeated runs under one table must match bit-for-bit: rankings depend
  // on it being safe to compare scores across threads.
  const Matrix a = [&] {
    Rng rng(77);
    Matrix m(37, 53);
    rng.FillNormal(m.data(), m.size());
    return m;
  }();
  IsaGuard guard;
  for (Isa isa : {Isa::kScalar, Isa::kAvx2}) {
    if (isa == Isa::kAvx2 && !HaveAvx2()) continue;
    ASSERT_TRUE(ForceIsa(isa));
    const Matrix first = Gram(a);
    const Matrix second = Gram(a);
    ASSERT_EQ(first.size(), second.size());
    EXPECT_EQ(0, std::memcmp(first.data(), second.data(),
                             first.size() * sizeof(double)))
        << "table " << IsaName(isa) << " not deterministic";
  }
}

// --- Dispatch surface (runs on every host) --------------------------------

TEST(SimdKernelsTest, ForceIsaSwitchesActiveTable) {
  IsaGuard guard;
  ASSERT_TRUE(ForceIsa(Isa::kScalar));
  EXPECT_EQ(ActiveIsa(), Isa::kScalar);
  EXPECT_EQ(Active().isa, Isa::kScalar);
  if (HaveAvx2()) {
    ASSERT_TRUE(ForceIsa(Isa::kAvx2));
    EXPECT_EQ(ActiveIsa(), Isa::kAvx2);
    EXPECT_EQ(Active().isa, Isa::kAvx2);
  } else {
    EXPECT_FALSE(ForceIsa(Isa::kAvx2));
    EXPECT_EQ(ActiveIsa(), Isa::kScalar);  // rejected request changes nothing
  }
}

TEST(SimdKernelsTest, ParseIsaOverride) {
  bool recognized = false;
  EXPECT_EQ(ParseIsaOverride("scalar", &recognized), Isa::kScalar);
  EXPECT_TRUE(recognized);
  const Isa best = HaveAvx2() ? Isa::kAvx2 : Isa::kScalar;
  EXPECT_EQ(ParseIsaOverride("auto", &recognized), best);
  EXPECT_TRUE(recognized);
  // "avx2" on an incapable host falls back to the best available choice
  // but still counts as recognised (the user named a real mode).
  EXPECT_EQ(ParseIsaOverride("avx2", &recognized), best);
  EXPECT_TRUE(recognized);
  EXPECT_EQ(ParseIsaOverride("bogus", &recognized), best);
  EXPECT_FALSE(recognized);
}

TEST(SimdKernelsTest, TablesMatchTheirIsa) {
  EXPECT_EQ(ScalarTable().isa, Isa::kScalar);
  if (HaveAvx2()) {
    EXPECT_EQ(Avx2Table()->isa, Isa::kAvx2);
    EXPECT_TRUE(CpuSupportsAvx2());
  }
  EXPECT_EQ(&Table(Isa::kScalar), &ScalarTable());
}

}  // namespace
}  // namespace explainit::la::simd
