#include "la/cholesky.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "la/blas.h"

namespace explainit::la {
namespace {

Matrix RandomSpd(size_t n, uint64_t seed, double diag_boost = 0.1) {
  Rng rng(seed);
  Matrix a(n + 5, n);
  rng.FillNormal(a.data(), a.size());
  Matrix spd = Gram(a);
  for (size_t i = 0; i < n; ++i) spd(i, i) += diag_boost;
  return spd;
}

TEST(CholeskyTest, FactorReconstructs) {
  Matrix a = RandomSpd(8, 42);
  auto l = CholeskyFactor(a);
  ASSERT_TRUE(l.ok()) << l.status().ToString();
  Matrix rec = MatMulT(l.value(), l.value());
  for (size_t i = 0; i < 8; ++i) {
    for (size_t j = 0; j < 8; ++j) EXPECT_NEAR(rec(i, j), a(i, j), 1e-9);
  }
}

TEST(CholeskyTest, FactorIsLowerTriangular) {
  Matrix a = RandomSpd(6, 7);
  auto l = CholeskyFactor(a);
  ASSERT_TRUE(l.ok());
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = i + 1; j < 6; ++j) EXPECT_EQ(l.value()(i, j), 0.0);
  }
}

TEST(CholeskyTest, SolveRecoversKnownSolution) {
  Matrix a = RandomSpd(10, 3);
  Rng rng(5);
  Matrix x_true(10, 2);
  rng.FillNormal(x_true.data(), x_true.size());
  Matrix b = MatMul(a, x_true);
  auto l = CholeskyFactor(a);
  ASSERT_TRUE(l.ok());
  Matrix x = CholeskySolve(l.value(), b);
  for (size_t i = 0; i < 10; ++i) {
    for (size_t j = 0; j < 2; ++j) EXPECT_NEAR(x(i, j), x_true(i, j), 1e-8);
  }
}

TEST(CholeskyTest, RejectsNonSquare) {
  Matrix a(3, 4);
  EXPECT_FALSE(CholeskyFactor(a).ok());
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix a(2, 2, {1, 2, 2, 1});  // eigenvalues 3, -1
  EXPECT_FALSE(CholeskyFactor(a).ok());
}

TEST(CholeskyTest, SolveSpdHandlesSingularWithJitter) {
  // Rank-1 matrix: xx^T. Plain Cholesky fails; SolveSpd must recover via
  // jitter escalation.
  Matrix x(3, 1, {1, 2, 3});
  Matrix a = MatMulT(x, x);
  Matrix b(3, 1, {1, 2, 3});
  auto sol = SolveSpd(a, b);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  // The solution should approximately satisfy A s = b in the least-squares
  // sense along the range of A.
  Matrix as = MatMul(a, sol.value());
  EXPECT_NEAR(as(0, 0), 1.0, 1e-2);
}

TEST(CholeskyTest, IdentitySolveReturnsRhs) {
  Matrix i = Matrix::Identity(4);
  Matrix b(4, 3);
  for (size_t r = 0; r < 4; ++r) {
    for (size_t c = 0; c < 3; ++c) b(r, c) = static_cast<double>(r + c);
  }
  auto sol = SolveSpd(i, b);
  ASSERT_TRUE(sol.ok());
  for (size_t r = 0; r < 4; ++r) {
    for (size_t c = 0; c < 3; ++c) EXPECT_NEAR(sol.value()(r, c), b(r, c), 1e-12);
  }
}

class CholeskySizeTest : public ::testing::TestWithParam<int> {};

TEST_P(CholeskySizeTest, RoundTripAcrossSizes) {
  const int n = GetParam();
  Matrix a = RandomSpd(n, 1000 + n);
  Rng rng(2000 + n);
  Matrix xt(n, 1);
  rng.FillNormal(xt.data(), xt.size());
  Matrix b = MatMul(a, xt);
  auto sol = SolveSpd(a, b);
  ASSERT_TRUE(sol.ok());
  for (int i = 0; i < n; ++i) EXPECT_NEAR(sol.value()(i, 0), xt(i, 0), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskySizeTest,
                         ::testing::Values(1, 2, 5, 16, 33, 64, 100));

}  // namespace
}  // namespace explainit::la
