#include "la/matrix.h"

#include <gtest/gtest.h>

namespace explainit::la {
namespace {

TEST(MatrixTest, ZeroInitialised) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 4; ++c) EXPECT_EQ(m(r, c), 0.0);
  }
}

TEST(MatrixTest, FromValuesRowMajor) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(m(0, 0), 1);
  EXPECT_EQ(m(0, 2), 3);
  EXPECT_EQ(m(1, 0), 4);
  EXPECT_EQ(m(1, 2), 6);
}

TEST(MatrixTest, RowPointerIsContiguous) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  const double* row1 = m.Row(1);
  EXPECT_EQ(row1[0], 4);
  EXPECT_EQ(row1[2], 6);
}

TEST(MatrixTest, ColExtractAndSet) {
  Matrix m(3, 2, {1, 2, 3, 4, 5, 6});
  auto col = m.Col(1);
  ASSERT_EQ(col.size(), 3u);
  EXPECT_EQ(col[0], 2);
  EXPECT_EQ(col[2], 6);
  m.SetCol(0, {9, 9, 9});
  EXPECT_EQ(m(2, 0), 9);
}

TEST(MatrixTest, Transposed) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(0, 1), 4);
  EXPECT_EQ(t(2, 0), 3);
  // Double transpose is identity.
  EXPECT_EQ(t.Transposed(), m);
}

TEST(MatrixTest, TransposedLargeBlocked) {
  Matrix m(100, 37);
  for (size_t r = 0; r < 100; ++r) {
    for (size_t c = 0; c < 37; ++c) m(r, c) = static_cast<double>(r * 37 + c);
  }
  Matrix t = m.Transposed();
  for (size_t r = 0; r < 100; ++r) {
    for (size_t c = 0; c < 37; ++c) EXPECT_EQ(t(c, r), m(r, c));
  }
}

TEST(MatrixTest, SliceRows) {
  Matrix m(4, 2, {1, 2, 3, 4, 5, 6, 7, 8});
  Matrix s = m.SliceRows(1, 3);
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_EQ(s(0, 0), 3);
  EXPECT_EQ(s(1, 1), 6);
  Matrix empty = m.SliceRows(2, 2);
  EXPECT_EQ(empty.rows(), 0u);
}

TEST(MatrixTest, SelectCols) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix s = m.SelectCols({2, 0});
  EXPECT_EQ(s.cols(), 2u);
  EXPECT_EQ(s(0, 0), 3);
  EXPECT_EQ(s(0, 1), 1);
  EXPECT_EQ(s(1, 0), 6);
}

TEST(MatrixTest, ConcatCols) {
  Matrix a(2, 1, {1, 2});
  Matrix b(2, 2, {3, 4, 5, 6});
  Matrix c = a.ConcatCols(b);
  EXPECT_EQ(c.cols(), 3u);
  EXPECT_EQ(c(0, 0), 1);
  EXPECT_EQ(c(0, 2), 4);
  EXPECT_EQ(c(1, 1), 5);
  // Concat with empty returns the other operand.
  Matrix empty;
  EXPECT_EQ(empty.ConcatCols(a), a);
  EXPECT_EQ(a.ConcatCols(empty), a);
}

TEST(MatrixTest, ElementwiseOps) {
  Matrix a(2, 2, {1, 2, 3, 4});
  Matrix b(2, 2, {10, 20, 30, 40});
  a.AddInPlace(b);
  EXPECT_EQ(a(1, 1), 44);
  a.SubInPlace(b);
  EXPECT_EQ(a(0, 0), 1);
  a.ScaleInPlace(2.0);
  EXPECT_EQ(a(1, 0), 6);
}

TEST(MatrixTest, FrobeniusSquared) {
  Matrix a(2, 2, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(a.FrobeniusSquared(), 30.0);
}

TEST(MatrixTest, Identity) {
  Matrix i = Matrix::Identity(3);
  EXPECT_EQ(i(0, 0), 1.0);
  EXPECT_EQ(i(1, 1), 1.0);
  EXPECT_EQ(i(0, 1), 0.0);
}

TEST(MatrixTest, ToStringTruncates) {
  Matrix m(20, 20);
  const std::string s = m.ToString(2, 2);
  EXPECT_NE(s.find("Matrix(20x20)"), std::string::npos);
  EXPECT_NE(s.find("..."), std::string::npos);
}

}  // namespace
}  // namespace explainit::la
