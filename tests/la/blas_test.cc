#include "la/blas.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace explainit::la {
namespace {

Matrix RandomMatrix(size_t r, size_t c, uint64_t seed) {
  Rng rng(seed);
  Matrix m(r, c);
  rng.FillNormal(m.data(), m.size());
  return m;
}

// Reference O(n^3) naive multiply for cross-checking the blocked kernels.
Matrix NaiveMatMul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (size_t k = 0; k < a.cols(); ++k) acc += a(i, k) * b(k, j);
      c(i, j) = acc;
    }
  }
  return c;
}

void ExpectMatrixNear(const Matrix& a, const Matrix& b, double tol = 1e-9) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) {
      EXPECT_NEAR(a(r, c), b(r, c), tol) << "at (" << r << "," << c << ")";
    }
  }
}

TEST(BlasTest, MatMulSmallKnown) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix b(3, 2, {7, 8, 9, 10, 11, 12});
  Matrix c = MatMul(a, b);
  EXPECT_EQ(c(0, 0), 58);
  EXPECT_EQ(c(0, 1), 64);
  EXPECT_EQ(c(1, 0), 139);
  EXPECT_EQ(c(1, 1), 154);
}

TEST(BlasTest, MatMulMatchesNaive) {
  Matrix a = RandomMatrix(57, 33, 1);
  Matrix b = RandomMatrix(33, 29, 2);
  ExpectMatrixNear(MatMul(a, b), NaiveMatMul(a, b));
}

TEST(BlasTest, MatTMulMatchesTransposeThenMultiply) {
  Matrix a = RandomMatrix(41, 17, 3);
  Matrix b = RandomMatrix(41, 23, 4);
  ExpectMatrixNear(MatTMul(a, b), NaiveMatMul(a.Transposed(), b));
}

TEST(BlasTest, MatMulTMatchesMultiplyByTranspose) {
  Matrix a = RandomMatrix(19, 31, 5);
  Matrix b = RandomMatrix(27, 31, 6);
  ExpectMatrixNear(MatMulT(a, b), NaiveMatMul(a, b.Transposed()));
}

TEST(BlasTest, GramIsXtX) {
  Matrix a = RandomMatrix(50, 12, 7);
  Matrix g = Gram(a);
  ExpectMatrixNear(g, NaiveMatMul(a.Transposed(), a));
  // Symmetry.
  for (size_t i = 0; i < g.rows(); ++i) {
    for (size_t j = 0; j < g.cols(); ++j) EXPECT_EQ(g(i, j), g(j, i));
  }
}

TEST(BlasTest, GramTIsXXt) {
  Matrix a = RandomMatrix(14, 40, 8);
  ExpectMatrixNear(GramT(a), NaiveMatMul(a, a.Transposed()));
}

TEST(BlasTest, MatVecAndMatTVec) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  std::vector<double> x = {1, 1, 1};
  auto y = MatVec(a, x);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_EQ(y[0], 6);
  EXPECT_EQ(y[1], 15);
  std::vector<double> z = {1, 2};
  auto w = MatTVec(a, z);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w[0], 9);
  EXPECT_EQ(w[1], 12);
  EXPECT_EQ(w[2], 15);
}

TEST(BlasTest, DotAndAxpy) {
  std::vector<double> a = {1, 2, 3};
  std::vector<double> b = {4, 5, 6};
  EXPECT_EQ(Dot(a, b), 32.0);
  Axpy(2.0, a, b);
  EXPECT_EQ(b[0], 6);
  EXPECT_EQ(b[2], 12);
}

TEST(BlasTest, MatMulWithZeroDims) {
  Matrix a(0, 5);
  Matrix b(5, 3);
  Matrix c = MatMul(a, b);
  EXPECT_EQ(c.rows(), 0u);
  EXPECT_EQ(c.cols(), 3u);
}

// Property sweep: MatMul associativity-ish sanity over several shapes.
class BlasShapeTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(BlasShapeTest, BlockedMatchesNaive) {
  auto [m, k, n] = GetParam();
  Matrix a = RandomMatrix(m, k, 100 + m);
  Matrix b = RandomMatrix(k, n, 200 + n);
  ExpectMatrixNear(MatMul(a, b), NaiveMatMul(a, b), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BlasShapeTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(65, 3, 2),
                      std::make_tuple(64, 256, 8), std::make_tuple(3, 300, 3),
                      std::make_tuple(129, 257, 5),
                      std::make_tuple(10, 1, 10)));

}  // namespace
}  // namespace explainit::la
