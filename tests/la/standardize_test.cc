#include "la/standardize.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace explainit::la {
namespace {

TEST(StandardizeTest, StatsOfKnownData) {
  Matrix m(4, 2, {1, 10, 2, 20, 3, 30, 4, 40});
  ColumnStats s = ComputeColumnStats(m);
  EXPECT_DOUBLE_EQ(s.mean[0], 2.5);
  EXPECT_DOUBLE_EQ(s.mean[1], 25.0);
  EXPECT_NEAR(s.stddev[0], std::sqrt(1.25), 1e-12);
  EXPECT_NEAR(s.stddev[1], std::sqrt(125.0), 1e-12);
}

TEST(StandardizeTest, StandardizedHasZeroMeanUnitVar) {
  Rng rng(1);
  Matrix m(500, 3);
  for (size_t r = 0; r < 500; ++r) {
    m(r, 0) = rng.Normal(5.0, 2.0);
    m(r, 1) = rng.Normal(-3.0, 0.5);
    m(r, 2) = rng.Uniform(0, 100);
  }
  Matrix s = Standardize(m);
  ColumnStats post = ComputeColumnStats(s);
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(post.mean[c], 0.0, 1e-12);
    EXPECT_NEAR(post.stddev[c], 1.0, 1e-9);
  }
}

TEST(StandardizeTest, ConstantColumnBecomesZeroNotNan) {
  Matrix m(10, 1);
  for (size_t r = 0; r < 10; ++r) m(r, 0) = 7.0;
  Matrix s = Standardize(m);
  for (size_t r = 0; r < 10; ++r) {
    EXPECT_EQ(s(r, 0), 0.0);
    EXPECT_FALSE(std::isnan(s(r, 0)));
  }
}

TEST(StandardizeTest, StandardizeWithTrainStatsAppliesToValidation) {
  Matrix train(3, 1, {0, 1, 2});
  Matrix val(2, 1, {3, 4});
  ColumnStats stats = ComputeColumnStats(train);
  Matrix sval = StandardizeWith(val, stats);
  // mean 1, sd sqrt(2/3)
  const double sd = std::sqrt(2.0 / 3.0);
  EXPECT_NEAR(sval(0, 0), (3.0 - 1.0) / sd, 1e-12);
  EXPECT_NEAR(sval(1, 0), (4.0 - 1.0) / sd, 1e-12);
}

TEST(StandardizeTest, CenterColumnsLeavesVariance) {
  Matrix m(3, 1, {1, 2, 6});
  Matrix c = CenterColumns(m);
  EXPECT_NEAR(c(0, 0) + c(1, 0) + c(2, 0), 0.0, 1e-12);
  EXPECT_NEAR(c(2, 0) - c(0, 0), 5.0, 1e-12);  // spread preserved
}

TEST(StandardizeTest, EmptyMatrix) {
  Matrix m;
  ColumnStats s = ComputeColumnStats(m);
  EXPECT_TRUE(s.mean.empty());
  Matrix out = Standardize(m);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace explainit::la
